// Kill-and-restart fault injection for the durable store. The "crash" is
// abandoning a durable VersionedObjectStore object (never flushing
// anything beyond what its fsync policy already did — appends are
// unbuffered, so the on-disk state equals what a killed process leaves in
// the page cache), optionally mangling the WAL directory byte-by-byte,
// then rebuilding with store::RecoverStore. The oracle is an in-memory
// reference store replaying the identical pre-generated churn schedule:
// recovered snapshots must digest-match the reference at every version —
// bit-identical served payloads, not just equal sizes.

#include "store/recovery.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "service/query_service.h"
#include "service/trace.h"
#include "store/checkpoint.h"
#include "store/object_store.h"
#include "store/wal.h"
#include "test_shards.h"
#include "workload/churn.h"
#include "workload/generators.h"

namespace updb {
namespace store {
namespace {

using test_util::TestShards;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/updb_recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

StoreOptions BaseOptions() {
  StoreOptions opts;
  opts.num_shards = TestShards();
  opts.snapshot_retention = 64;
  return opts;
}

StoreOptions DurableOptions(const std::string& wal_dir,
                            FsyncPolicy fsync = FsyncPolicy::kEveryPublish,
                            uint64_t checkpoint_every = 2) {
  StoreOptions opts = BaseOptions();
  opts.durability.wal_dir = wal_dir;
  opts.durability.fsync = fsync;
  opts.durability.checkpoint_every = checkpoint_every;
  return opts;
}

std::vector<workload::ChurnStep> MakeSchedule(size_t batches,
                                              uint64_t seed = 91) {
  workload::ChurnConfig cfg;
  cfg.mutations_per_batch = 9;
  cfg.max_extent = 0.08;
  cfg.uncertain_existence_fraction = 0.25;
  Rng rng(seed);
  return workload::MakeChurnSchedule(batches, /*dim=*/2, cfg, rng);
}

/// Served-payload digest of one snapshot: a seed-deterministic trace
/// derived from the snapshot's own database, replayed through the query
/// service. Identical state → identical trace → identical digest; any
/// divergence in contents, dense-id packing, or version number shows up.
uint64_t SnapshotDigest(std::shared_ptr<const StoreSnapshot> snap) {
  if (snap->size() == 0) return 0xE0E0E0E0u ^ snap->version();
  service::TraceConfig tcfg;
  tcfg.num_requests = 6;
  tcfg.query_extent = 0.1;
  tcfg.budget.max_iterations = 3;
  tcfg.seed = 900 + snap->version();
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(*snap->db(), tcfg);
  service::QueryServiceOptions opts;
  opts.num_workers = 2;
  opts.batch_size = 4;
  opts.max_queue = trace.size() + 1;
  service::QueryService svc(std::move(snap), opts);
  const service::ReplayResult result =
      service::ReplayTrace(svc, trace, /*qps=*/0.0);
  return service::ResponseDigest(result.responses);
}

/// Asserts `got` serves states bit-identical to `want`: latest version,
/// live set, pending window, and the digest of every version retained by
/// both stores.
void ExpectStoresEquivalent(VersionedObjectStore& got,
                            VersionedObjectStore& want,
                            const std::string& context) {
  ASSERT_EQ(got.version(), want.version()) << context;
  EXPECT_EQ(got.live_size(), want.live_size()) << context;
  EXPECT_EQ(got.LiveIds(), want.LiveIds()) << context;
  EXPECT_EQ(got.pending_mutations(), want.pending_mutations()) << context;
  size_t compared = 0;
  for (Version v = 0; v <= want.version(); ++v) {
    const auto got_snap = got.snapshot(v);
    const auto want_snap = want.snapshot(v);
    if (got_snap == nullptr || want_snap == nullptr) continue;
    ASSERT_EQ(got_snap->size(), want_snap->size())
        << context << " version " << v;
    EXPECT_EQ(SnapshotDigest(got_snap), SnapshotDigest(want_snap))
        << context << " version " << v;
    ++compared;
  }
  EXPECT_GE(compared, 1u) << context;
}

/// In-memory reference store after the first `steps` schedule entries.
std::unique_ptr<VersionedObjectStore> ReferencePrefix(
    const std::vector<workload::ChurnStep>& schedule, size_t steps) {
  auto ref = std::make_unique<VersionedObjectStore>(BaseOptions());
  EXPECT_TRUE(workload::ApplyChurnPrefix(*ref, schedule, steps).ok());
  return ref;
}

void CorruptByte(const std::string& path, uint64_t at, uint8_t mask) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(at));
  char c = 0;
  f.read(&c, 1);
  f.seekp(static_cast<std::streamoff>(at));
  c = static_cast<char>(c ^ mask);
  f.write(&c, 1);
  ASSERT_TRUE(f.good()) << path;
}

TEST(RecoveryTest, CleanKillAndRestartServesIdenticalPayloads) {
  const std::string dir = FreshDir("clean");
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(6);
  {
    // Cadence 4 over 6 publishes: recovery must combine a mid-history
    // checkpoint with a genuine WAL tail replay.
    StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
        VersionedObjectStore::Open(
            DurableOptions(dir, FsyncPolicy::kEveryPublish,
                           /*checkpoint_every=*/4));
    ASSERT_TRUE(victim.ok()) << victim.status().ToString();
    ASSERT_TRUE(
        workload::ApplyChurnPrefix(**victim, schedule, schedule.size()).ok());
    ASSERT_TRUE((*victim)->wal_status().ok());
  }  // crash: the victim is abandoned

  RecoveryReport report;
  StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
      RecoverStore(dir, BaseOptions(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(report.data_loss) << report.ToJson();
  EXPECT_EQ(report.truncated_bytes, 0u);
  EXPECT_EQ(report.dropped_records, 0u);
  EXPECT_GT(report.replayed_publishes, 0u);

  const auto reference = ReferencePrefix(schedule, schedule.size());
  ExpectStoresEquivalent(**recovered, *reference, "clean restart");
}

TEST(RecoveryTest, EveryKillPointRecoversThatPrefix) {
  // Crash after every schedule step — mid-batch, at batch boundaries,
  // and immediately after publishes — and require the recovered store to
  // equal the reference replay of exactly that prefix. Because Open()
  // starts sequences at 1, step k of the schedule carries sequence k+1,
  // so nothing of an abandoned prefix leaks into the next.
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(3);
  for (size_t kill = 0; kill <= schedule.size(); kill += 1) {
    const std::string dir =
        FreshDir("killpoint_" + std::to_string(kill));
    {
      StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
          VersionedObjectStore::Open(
              DurableOptions(dir, FsyncPolicy::kEveryBatch));
      ASSERT_TRUE(victim.ok());
      ASSERT_TRUE(workload::ApplyChurnPrefix(**victim, schedule, kill).ok());
    }
    RecoveryReport report;
    StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
        RecoverStore(dir, BaseOptions(), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_FALSE(report.data_loss)
        << "kill=" << kill << " " << report.ToJson();
    const auto reference = ReferencePrefix(schedule, kill);
    ExpectStoresEquivalent(**recovered, *reference,
                           "kill point " + std::to_string(kill));
  }
}

/// Frame boundaries of a WAL segment (byte offset of each frame start,
/// plus the end offset), via the public reader contract.
std::vector<uint64_t> FrameOffsets(const std::string& path) {
  std::vector<uint64_t> offsets;
  const StatusOr<WalReadResult> read = ReadWalFile(path);
  EXPECT_TRUE(read.ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  uint64_t pos = 0;
  while (pos + 8 <= read->valid_bytes) {
    offsets.push_back(pos);
    uint32_t len = 0;
    for (int b = 3; b >= 0; --b) {
      len = (len << 8) | static_cast<uint8_t>(data[pos + b]);
    }
    pos += 8 + len;
  }
  offsets.push_back(pos);
  return offsets;
}

TEST(RecoveryTest, TornTailRecoversCleanlyAtEveryTruncationOffset) {
  // Shear the final record of shard 0's segment at *every* byte offset.
  // Shard 0 carries the publish markers, so with a single-shard victim
  // its file is the global WAL; the expected recovered state is the
  // schedule prefix that excludes exactly the sheared record.
  const std::string pristine = FreshDir("torn_pristine");
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(3);
  StoreOptions victim_options = DurableOptions(pristine);
  victim_options.num_shards = 1;
  {
    StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
        VersionedObjectStore::Open(victim_options);
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(
        workload::ApplyChurnPrefix(**victim, schedule, schedule.size()).ok());
  }
  const std::string segment = pristine + "/" + WalShardFileName(0);
  const std::vector<uint64_t> offsets = FrameOffsets(segment);
  ASSERT_GE(offsets.size(), 3u);
  const uint64_t last_start = offsets[offsets.size() - 2];
  const uint64_t file_end = offsets.back();
  // Sequence numbers are 1:1 with schedule steps, so dropping the final
  // record leaves the prefix of all but the last step.
  const auto reference = ReferencePrefix(schedule, schedule.size() - 1);

  for (uint64_t cut = last_start; cut < file_end; ++cut) {
    const std::string dir = FreshDir("torn_cut");
    std::filesystem::copy(pristine, dir);
    std::filesystem::resize_file(dir + "/" + WalShardFileName(0), cut);
    RecoveryReport report;
    StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
        RecoverStore(dir, BaseOptions(), &report);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << " " << recovered.status().ToString();
    if (cut > last_start) {
      EXPECT_EQ(report.truncated_bytes, cut - last_start) << "cut=" << cut;
      EXPECT_TRUE(report.data_loss) << "cut=" << cut;
    } else {
      EXPECT_EQ(report.truncated_bytes, 0u);
    }
    ExpectStoresEquivalent(**recovered, *reference,
                           "truncation at byte " + std::to_string(cut));
  }
}

TEST(RecoveryTest, BitFlipInFinalRecordDropsOnlyThatRecord) {
  const std::string pristine = FreshDir("flip_pristine");
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(2);
  // Cadence larger than the history: only the attach-time (empty)
  // checkpoint exists, so the recovered state depends purely on the WAL
  // and the flipped record cannot hide behind a checkpoint.
  StoreOptions victim_options =
      DurableOptions(pristine, FsyncPolicy::kEveryPublish,
                     /*checkpoint_every=*/100);
  victim_options.num_shards = 1;
  {
    StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
        VersionedObjectStore::Open(victim_options);
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(
        workload::ApplyChurnPrefix(**victim, schedule, schedule.size()).ok());
  }
  const std::string segment = pristine + "/" + WalShardFileName(0);
  const std::vector<uint64_t> offsets = FrameOffsets(segment);
  const uint64_t last_start = offsets[offsets.size() - 2];
  const uint64_t file_end = offsets.back();
  const auto reference = ReferencePrefix(schedule, schedule.size() - 1);

  for (uint64_t at = last_start; at < file_end; ++at) {
    const std::string dir = FreshDir("flip_at");
    std::filesystem::copy(pristine, dir);
    CorruptByte(dir + "/" + WalShardFileName(0), at, 0x20);
    RecoveryReport report;
    StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
        RecoverStore(dir, BaseOptions(), &report);
    ASSERT_TRUE(recovered.ok()) << "at=" << at;
    EXPECT_TRUE(report.data_loss) << "at=" << at;
    ExpectStoresEquivalent(**recovered, *reference,
                           "bit flip at byte " + std::to_string(at));
  }
}

TEST(RecoveryTest, CorruptNewestCheckpointFallsBackToOlder) {
  const std::string dir = FreshDir("ck_fallback");
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(5);
  {
    // checkpoint_every=1: one checkpoint per publish, two retained.
    StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
        VersionedObjectStore::Open(
            DurableOptions(dir, FsyncPolicy::kEveryPublish,
                           /*checkpoint_every=*/1));
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(
        workload::ApplyChurnPrefix(**victim, schedule, schedule.size()).ok());
  }
  std::vector<std::string> checkpoints;
  for (const auto& it : std::filesystem::directory_iterator(dir)) {
    const std::string name = it.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0) checkpoints.push_back(name);
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  ASSERT_EQ(checkpoints.size(), 2u);
  // A stale .tmp from a crash mid-checkpoint must be ignored too.
  std::ofstream(dir + "/checkpoint-99999.updbck.tmp") << "garbage";
  CorruptByte(dir + "/" + checkpoints.back(), 40, 0xFF);

  RecoveryReport report;
  StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
      RecoverStore(dir, BaseOptions(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.data_loss);      // a newer checkpoint was rejected
  EXPECT_FALSE(report.warnings.empty());
  // The WAL covers everything since Open(), so the older checkpoint plus
  // a longer replay still reaches the exact final state.
  const auto reference = ReferencePrefix(schedule, schedule.size());
  ExpectStoresEquivalent(**recovered, *reference, "checkpoint fallback");

  // All checkpoints corrupt: degrade to empty start + full WAL replay.
  // (CorruptByte XORs, so hit a byte the first phase did not touch —
  // re-XORing byte 40 of the newest file would restore it.)
  for (const std::string& name : checkpoints) {
    CorruptByte(dir + "/" + name, 41, 0xFF);
  }
  RecoveryReport full_replay;
  recovered = RecoverStore(dir, BaseOptions(), &full_replay);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(full_replay.data_loss);
  EXPECT_EQ(full_replay.checkpoint_version, 0u);
  ExpectStoresEquivalent(**recovered, *reference, "all checkpoints corrupt");
}

TEST(RecoveryTest, ShardCountIsInvisibleAcrossRecovery) {
  // Histories written at num_shards 1, 2 and 7 — and recovered at
  // TestShards() — must all serve payloads identical to the in-memory
  // unsharded reference: durability must not leak the segment layout into
  // served state.
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(4);
  StoreOptions unsharded = BaseOptions();
  unsharded.num_shards = 1;
  VersionedObjectStore reference(unsharded);
  ASSERT_TRUE(
      workload::ApplyChurnPrefix(reference, schedule, schedule.size()).ok());

  for (size_t write_shards : {size_t{1}, size_t{2}, size_t{7}}) {
    const std::string dir =
        FreshDir("shards_" + std::to_string(write_shards));
    StoreOptions victim_options = DurableOptions(dir);
    victim_options.num_shards = write_shards;
    {
      StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
          VersionedObjectStore::Open(victim_options);
      ASSERT_TRUE(victim.ok());
      ASSERT_TRUE(
          workload::ApplyChurnPrefix(**victim, schedule, schedule.size())
              .ok());
    }
    RecoveryReport report;
    StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
        RecoverStore(dir, BaseOptions(), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_FALSE(report.data_loss) << report.ToJson();
    ExpectStoresEquivalent(
        **recovered, reference,
        "written at " + std::to_string(write_shards) + " shards");
  }
}

TEST(RecoveryTest, ResumeAfterRecoveryAndCrashAgain) {
  // Crash mid-history, recover, re-attach durability, finish the
  // schedule, crash again, recover again: the double-recovered store must
  // match the uninterrupted reference.
  const std::string dir = FreshDir("resume");
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(4);
  const size_t first_kill = schedule.size() / 2;
  {
    StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
        VersionedObjectStore::Open(DurableOptions(dir));
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(
        workload::ApplyChurnPrefix(**victim, schedule, first_kill).ok());
  }
  {
    RecoveryReport report;
    StatusOr<std::unique_ptr<VersionedObjectStore>> resumed =
        RecoverStore(dir, DurableOptions(dir), &report);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_FALSE(report.data_loss);
    ASSERT_TRUE(
        (*resumed)->AttachDurability(DurableOptions(dir).durability).ok());
    EXPECT_TRUE((*resumed)->durable());
    // Continue exactly where the schedule left off.
    for (size_t i = first_kill; i < schedule.size(); ++i) {
      const workload::ChurnStep& step = schedule[i];
      if (step.publish) {
        (*resumed)->Publish();
      } else {
        ASSERT_TRUE((*resumed)->Apply(step.mutation).ok()) << "step " << i;
      }
    }
    ASSERT_TRUE((*resumed)->wal_status().ok());
  }  // second crash
  RecoveryReport report;
  StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
      RecoverStore(dir, BaseOptions(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(report.data_loss) << report.ToJson();
  const auto reference = ReferencePrefix(schedule, schedule.size());
  ExpectStoresEquivalent(**recovered, *reference, "double recovery");
}

TEST(RecoveryTest, StatusCodesOnBadInputs) {
  EXPECT_EQ(RecoverStore("/nonexistent/updb-wal", BaseOptions()).status()
                .code(),
            StatusCode::kNotFound);

  StoreOptions no_dir = BaseOptions();
  EXPECT_EQ(VersionedObjectStore::Open(no_dir).status().code(),
            StatusCode::kInvalidArgument);

  const std::string dir = FreshDir("statuses");
  StatusOr<std::unique_ptr<VersionedObjectStore>> first =
      VersionedObjectStore::Open(DurableOptions(dir));
  ASSERT_TRUE(first.ok());
  // Re-opening a directory that already holds data must refuse rather
  // than overwrite.
  EXPECT_EQ(VersionedObjectStore::Open(DurableOptions(dir)).status().code(),
            StatusCode::kFailedPrecondition);
  // Double attach refuses too.
  EXPECT_EQ((*first)->AttachDurability(DurableOptions(dir).durability)
                .code(),
            StatusCode::kFailedPrecondition);

  // Recovery-support hooks refuse once durability is attached.
  WalRecord r;
  r.kind = WalRecordKind::kRemove;
  r.sequence = 1;
  r.id = 0;
  EXPECT_EQ((*first)->ApplyForRecovery(r).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*first)->PublishForRecovery(5).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, WalStatsAndRecoveryCountersReachTheRegistry) {
  const std::string dir = FreshDir("obs");
  const std::vector<workload::ChurnStep> schedule = MakeSchedule(3);
  obs::MetricsRegistry registry;
  {
    StoreOptions opts = DurableOptions(dir);
    opts.metrics_registry = &registry;
    StatusOr<std::unique_ptr<VersionedObjectStore>> victim =
        VersionedObjectStore::Open(opts);
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(
        workload::ApplyChurnPrefix(**victim, schedule, schedule.size()).ok());

    // The store's own aggregate agrees with the shared registry series.
    const WalStats stats = (*victim)->wal_stats();
    EXPECT_TRUE(stats.durable);
    EXPECT_EQ(stats.fsync, FsyncPolicy::kEveryPublish);
    EXPECT_GT(stats.appends, 0u);
    EXPECT_GT(stats.appended_bytes, 0u);
    EXPECT_GT(stats.fsyncs, 0u);
    EXPECT_GT(stats.checkpoint_writes, 0u);
    EXPECT_EQ(stats.checkpoint_failures, 0u);
    EXPECT_EQ(registry.Counter("updb_wal_appends_total", "")->Value(),
              stats.appends);
    EXPECT_EQ(
        registry.Counter("updb_wal_appended_bytes_total", "")->Value(),
        stats.appended_bytes);
    EXPECT_EQ(registry.Counter("updb_checkpoint_writes_total", "")->Value(),
              stats.checkpoint_writes);

    const std::string json = stats.ToJson((*victim)->wal_status());
    EXPECT_NE(json.find("\"durable\":true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"fsync_policy\":\"every_publish\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);
  }  // crash

  // Recovery publishes its outcome to the registry it was given.
  StoreOptions ropts = BaseOptions();
  ropts.metrics_registry = &registry;
  RecoveryReport report;
  StatusOr<std::unique_ptr<VersionedObjectStore>> recovered =
      RecoverStore(dir, ropts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(registry.Counter("updb_recovery_runs_total", "")->Value(), 1u);
  EXPECT_EQ(
      registry.Counter("updb_recovery_replayed_mutations_total", "")->Value(),
      report.replayed_mutations);
  EXPECT_EQ(
      registry.Counter("updb_recovery_data_loss_total", "")->Value(), 0u);

  // An in-memory store reports all-zero WAL stats.
  const WalStats memory_stats = VersionedObjectStore(BaseOptions()).wal_stats();
  EXPECT_FALSE(memory_stats.durable);
  EXPECT_EQ(memory_stats.appends, 0u);
}

TEST(RecoveryTest, RecoverCommandReportShape) {
  RecoveryReport report;
  report.checkpoint_version = 3;
  report.recovered_version = 5;
  report.truncated_bytes = 17;
  report.data_loss = true;
  report.warnings.push_back("a \"quoted\" warning");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"checkpoint_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"recovered_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"truncated_bytes\":17"), std::string::npos);
  EXPECT_NE(json.find("\"data_loss\":true"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace store
}  // namespace updb
