#include "domination/pdom.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "mc/monte_carlo.h"

namespace updb {
namespace {

std::unique_ptr<UniformPdf> MakeUniform(double x0, double y0, double x1,
                                        double y1) {
  return std::make_unique<UniformPdf>(Rect(Point{x0, y0}, Point{x1, y1}));
}

std::vector<Partition> Whole(const Pdf& pdf) {
  return {Partition{pdf.bounds(), 1.0}};
}

std::vector<Partition> DecomposeTo(const Pdf& pdf, int depth) {
  DecompositionTree tree(&pdf);
  tree.DeepenTo(depth);
  return tree.frontier();
}

TEST(ProbabilityBoundsTest, NormalizeClampsAndRepairs) {
  ProbabilityBounds b{-0.1, 1.3};
  b.Normalize();
  EXPECT_DOUBLE_EQ(b.lb, 0.0);
  EXPECT_DOUBLE_EQ(b.ub, 1.0);
  ProbabilityBounds crossed{0.6, 0.5999999};
  crossed.Normalize();
  EXPECT_LE(crossed.lb, crossed.ub);
  EXPECT_NEAR(crossed.lb, 0.6, 1e-6);
}

TEST(ProbabilityBoundsTest, WidthAndContains) {
  ProbabilityBounds b{0.2, 0.7};
  EXPECT_DOUBLE_EQ(b.width(), 0.5);
  EXPECT_TRUE(b.Contains(0.2));
  EXPECT_TRUE(b.Contains(0.7));
  EXPECT_FALSE(b.Contains(0.1));
}

TEST(PDomWholeObjectsTest, CompleteCasesAreExact) {
  auto r = MakeUniform(0, 0, 1, 1);
  auto a = MakeUniform(1.5, 0, 2, 1);
  auto b = MakeUniform(9, 0, 10, 1);
  const ProbabilityBounds dom =
      PDomWholeObjects(a->bounds(), b->bounds(), r->bounds());
  EXPECT_DOUBLE_EQ(dom.lb, 1.0);
  EXPECT_DOUBLE_EQ(dom.ub, 1.0);
  const ProbabilityBounds dominated =
      PDomWholeObjects(b->bounds(), a->bounds(), r->bounds());
  EXPECT_DOUBLE_EQ(dominated.lb, 0.0);
  EXPECT_DOUBLE_EQ(dominated.ub, 0.0);
}

TEST(PDomWholeObjectsTest, UndecidedIsVacuous) {
  auto r = MakeUniform(0, 0, 1, 1);
  auto a = MakeUniform(1, 0, 3, 1);
  auto b = MakeUniform(2, 0, 4, 1);
  const ProbabilityBounds p =
      PDomWholeObjects(a->bounds(), b->bounds(), r->bounds());
  EXPECT_DOUBLE_EQ(p.lb, 0.0);
  EXPECT_DOUBLE_EQ(p.ub, 1.0);
}

TEST(ComputePDomBoundsTest, Lemma2DualityHoldsByConstruction) {
  auto r = MakeUniform(0, 0, 1, 1);
  auto a = MakeUniform(0.5, 0, 2.5, 1);
  auto b = MakeUniform(1.5, 0, 3.5, 1);
  const auto da = DecomposeTo(*a, 3);
  const auto db = DecomposeTo(*b, 3);
  const auto dr = DecomposeTo(*r, 3);
  const ProbabilityBounds ab = ComputePDomBounds(da, db, dr);
  const ProbabilityBounds ba = ComputePDomBounds(db, da, dr);
  EXPECT_NEAR(ab.ub, 1.0 - ba.lb, 1e-9);
  EXPECT_NEAR(ba.ub, 1.0 - ab.lb, 1e-9);
}

TEST(ComputePDomBoundsTest, PaperFigure3Example) {
  // Certain A1 = A2 and certain B; uncertain R spanning the bisector so
  // that PDom(A, B, R) = 50% exactly. With R decomposed finely the bounds
  // must close onto 0.5.
  auto a = std::make_unique<DiscreteSamplePdf>(
      std::vector<Point>{Point{2.0, 0.5}});
  auto b = std::make_unique<DiscreteSamplePdf>(
      std::vector<Point>{Point{0.0, 0.5}});
  // R uniform on [0,2] x [0.5, 0.5]: dist to A wins iff r_x > 1.
  auto r = std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.5}, Point{2.0, 0.5}));
  const auto da = Whole(*a);
  const auto db = Whole(*b);
  const auto dr = DecomposeTo(*r, 8);
  const ProbabilityBounds p = ComputePDomBounds(da, db, dr);
  EXPECT_NEAR(p.lb, 0.5, 0.01);
  EXPECT_NEAR(p.ub, 0.5, 0.01);
}

TEST(ComputePDomBoundsTest, BoundsTightenMonotonicallyWithDepth) {
  auto r = MakeUniform(0, 0, 1, 1);
  auto a = MakeUniform(0.5, 0.2, 2.0, 1.2);
  auto b = MakeUniform(1.0, 0.0, 2.8, 1.0);
  ProbabilityBounds prev{0.0, 1.0};
  for (int depth = 0; depth <= 5; ++depth) {
    const ProbabilityBounds p = ComputePDomBounds(
        DecomposeTo(*a, depth), DecomposeTo(*b, depth), DecomposeTo(*r, depth));
    EXPECT_GE(p.lb, prev.lb - 1e-9) << "depth=" << depth;
    EXPECT_LE(p.ub, prev.ub + 1e-9) << "depth=" << depth;
    prev = p;
  }
  EXPECT_LT(prev.width(), 0.5);  // must have made real progress
}

TEST(PDomGivenPairTest, MatchesComputePDomBoundsOnSingletonPair) {
  auto r = MakeUniform(0, 0, 1, 1);
  auto a = MakeUniform(0.5, 0.2, 2.0, 1.2);
  auto b = MakeUniform(1.0, 0.0, 2.8, 1.0);
  const auto da = DecomposeTo(*a, 4);
  const ProbabilityBounds via_pair =
      PDomGivenPair(da, b->bounds(), r->bounds());
  const ProbabilityBounds via_full =
      ComputePDomBounds(da, Whole(*b), Whole(*r));
  EXPECT_NEAR(via_pair.lb, via_full.lb, 1e-12);
  EXPECT_NEAR(via_pair.ub, via_full.ub, 1e-12);
}

// Property: PDom bounds bracket a Monte-Carlo estimate for random
// configurations across object models.
class PDomBracketsTruthTest : public ::testing::TestWithParam<int> {};

TEST_P(PDomBracketsTruthTest, BoundsBracketSampledTruth) {
  const int depth = GetParam();
  Rng rng(800 + depth);
  for (int trial = 0; trial < 30; ++trial) {
    auto make = [&rng]() {
      const double x = rng.Uniform(0, 2);
      const double y = rng.Uniform(0, 2);
      return std::make_unique<UniformPdf>(Rect(
          Point{x, y}, Point{x + rng.Uniform(0.1, 1.5),
                             y + rng.Uniform(0.1, 1.5)}));
    };
    auto a = make();
    auto b = make();
    auto r = make();
    const ProbabilityBounds p = ComputePDomBounds(
        DecomposeTo(*a, depth), DecomposeTo(*b, depth), DecomposeTo(*r, depth));
    Rng mc_rng(trial * 31 + depth);
    const double truth = EstimatePDom(*a, *b, *r, 20000, mc_rng);
    // 20k trials: ~0.01 standard error; allow 4 sigma.
    EXPECT_GE(truth, p.lb - 0.02) << "trial=" << trial;
    EXPECT_LE(truth, p.ub + 0.02) << "trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PDomBracketsTruthTest,
                         ::testing::Values(0, 2, 4));

TEST(PDomDiscreteTest, FullDecompositionReachesExactness) {
  // Small discrete objects decompose down to points, so the bounds must
  // collapse to the exact probability.
  auto a = std::make_unique<DiscreteSamplePdf>(
      std::vector<Point>{Point{1.0, 0.0}, Point{3.0, 0.0}});
  auto b = std::make_unique<DiscreteSamplePdf>(
      std::vector<Point>{Point{2.0, 0.0}, Point{4.0, 0.0}});
  auto r = std::make_unique<DiscreteSamplePdf>(
      std::vector<Point>{Point{0.0, 0.0}});
  // Exact: P(a < b) over the 4 equally likely worlds w.r.t. r = 0:
  // (1,2):yes (1,4):yes (3,2):no (3,4):yes -> 0.75.
  const ProbabilityBounds p = ComputePDomBounds(
      DecomposeTo(*a, 8), DecomposeTo(*b, 8), DecomposeTo(*r, 8));
  EXPECT_NEAR(p.lb, 0.75, 1e-9);
  EXPECT_NEAR(p.ub, 0.75, 1e-9);
}

}  // namespace
}  // namespace updb
