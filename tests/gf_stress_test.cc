// Stress and algebraic-property tests for the generating-function layer:
// order invariance, numerical stability at large factor counts, and
// consistency between all three bound constructions.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "gf/poisson_binomial.h"
#include "gf/ugf.h"

namespace updb {
namespace {

struct Bracket {
  double lb, ub;
};

std::vector<Bracket> RandomBrackets(size_t n, Rng& rng) {
  std::vector<Bracket> out(n);
  for (auto& b : out) {
    b.lb = rng.NextDouble();
    b.ub = b.lb + (1.0 - b.lb) * rng.NextDouble();
  }
  return out;
}

TEST(UgfStressTest, FactorOrderDoesNotMatter) {
  Rng rng(211);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.NextBounded(10);
    auto brackets = RandomBrackets(n, rng);
    UncertainGeneratingFunction forward;
    for (const auto& b : brackets) forward.Multiply(b.lb, b.ub);
    rng.Shuffle(brackets);
    UncertainGeneratingFunction shuffled;
    for (const auto& b : brackets) shuffled.Multiply(b.lb, b.ub);
    const CountDistributionBounds a = forward.Bounds();
    const CountDistributionBounds c = shuffled.Bounds();
    for (size_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(a.lb(k), c.lb(k), 1e-12);
      EXPECT_NEAR(a.ub(k), c.ub(k), 1e-12);
    }
  }
}

TEST(UgfStressTest, ManyFactorsRemainNormalized) {
  Rng rng(223);
  UncertainGeneratingFunction ugf;
  const size_t n = 300;
  for (size_t i = 0; i < n; ++i) {
    const double lb = rng.NextDouble() * 0.3;
    ugf.Multiply(lb, lb + 0.1);
  }
  double total = 0.0;
  for (size_t i = 0; i <= n; ++i) {
    for (size_t j = 0; i + j <= n; ++j) total += ugf.Coefficient(i, j);
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  const CountDistributionBounds b = ugf.Bounds();
  double lb_sum = 0.0;
  for (size_t k = 0; k <= n; ++k) lb_sum += b.lb(k);
  EXPECT_LE(lb_sum, 1.0 + 1e-6);
}

TEST(UgfStressTest, TruncatedOrderInvariance) {
  Rng rng(227);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5 + rng.NextBounded(20);
    const size_t k = 1 + rng.NextBounded(6);
    auto brackets = RandomBrackets(n, rng);
    UncertainGeneratingFunction a(k);
    for (const auto& b : brackets) a.Multiply(b.lb, b.ub);
    rng.Shuffle(brackets);
    UncertainGeneratingFunction c(k);
    for (const auto& b : brackets) c.Multiply(b.lb, b.ub);
    const ProbabilityBounds pa = a.ProbLessThan(k);
    const ProbabilityBounds pc = c.ProbLessThan(k);
    EXPECT_NEAR(pa.lb, pc.lb, 1e-12);
    EXPECT_NEAR(pa.ub, pc.ub, 1e-12);
    EXPECT_NEAR(a.OverflowMass(), c.OverflowMass(), 1e-12);
  }
}

TEST(UgfStressTest, MonotoneInK) {
  // P(Count < k) bounds are monotonically non-decreasing in k.
  Rng rng(229);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.NextBounded(12);
    const auto brackets = RandomBrackets(n, rng);
    UncertainGeneratingFunction ugf;
    for (const auto& b : brackets) ugf.Multiply(b.lb, b.ub);
    ProbabilityBounds prev{0.0, 0.0};
    for (size_t m = 0; m <= n + 1; ++m) {
      const ProbabilityBounds p = ugf.ProbLessThan(m);
      EXPECT_GE(p.lb, prev.lb - 1e-12) << "m=" << m;
      EXPECT_GE(p.ub, prev.ub - 1e-12) << "m=" << m;
      prev = p;
    }
    EXPECT_NEAR(prev.lb, 1.0, 1e-9);
  }
}

TEST(UgfStressTest, AllThreeConstructionsNest) {
  // For any instance: UGF bounds ⊆ regular-GF-pair bounds, and both
  // bracket any consistent exact Poisson binomial.
  Rng rng(233);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.NextBounded(12);
    const auto brackets = RandomBrackets(n, rng);
    std::vector<double> lbs(n), ubs(n), truth(n);
    UncertainGeneratingFunction ugf;
    for (size_t i = 0; i < n; ++i) {
      lbs[i] = brackets[i].lb;
      ubs[i] = brackets[i].ub;
      truth[i] = lbs[i] + (ubs[i] - lbs[i]) * rng.NextDouble();
      ugf.Multiply(lbs[i], ubs[i]);
    }
    const CountDistributionBounds u = ugf.Bounds();
    const CountDistributionBounds pair = RegularGfPairBounds(lbs, ubs);
    const std::vector<double> pdf = PoissonBinomialPdf(truth);
    EXPECT_TRUE(u.Brackets(pdf, 1e-9));
    EXPECT_TRUE(pair.Brackets(pdf, 1e-9));
    for (size_t k = 0; k <= n; ++k) {
      EXPECT_GE(u.lb(k), pair.lb(k) - 1e-9);
      EXPECT_LE(u.ub(k), pair.ub(k) + 1e-9);
    }
  }
}

TEST(PoissonBinomialStressTest, LargeInputStaysNormalized) {
  Rng rng(239);
  std::vector<double> probs(2000);
  for (double& p : probs) p = rng.NextDouble();
  const std::vector<double> pdf = PoissonBinomialPdf(probs);
  double total = 0.0;
  for (double v : pdf) {
    EXPECT_GE(v, -1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PoissonBinomialStressTest, PrefixConsistentAcrossK) {
  Rng rng(241);
  std::vector<double> probs(64);
  for (double& p : probs) p = rng.NextDouble();
  const std::vector<double> full = PoissonBinomialPdf(probs);
  for (size_t k = 1; k <= 64; k += 7) {
    const std::vector<double> prefix = PoissonBinomialPrefix(probs, k);
    double tail = 0.0;
    for (size_t x = 0; x < full.size(); ++x) {
      if (x < k) {
        EXPECT_NEAR(prefix[x], full[x], 1e-12);
      } else {
        tail += full[x];
      }
    }
    EXPECT_NEAR(prefix[k], tail, 1e-12);
  }
}

TEST(UgfEdgeTest, ZeroWidthAtBoundaries) {
  // Brackets exactly at {0,0} and {1,1} interleaved with unknowns.
  UncertainGeneratingFunction ugf;
  ugf.Multiply(0.0, 0.0);
  ugf.Multiply(1.0, 1.0);
  ugf.Multiply(0.0, 1.0);
  ugf.Multiply(1.0, 1.0);
  const CountDistributionBounds b = ugf.Bounds();
  // Two definite + one unknown: count in {2, 3}.
  EXPECT_DOUBLE_EQ(b.ub(0), 0.0);
  EXPECT_DOUBLE_EQ(b.ub(1), 0.0);
  EXPECT_DOUBLE_EQ(b.lb(2), 0.0);
  EXPECT_DOUBLE_EQ(b.ub(2), 1.0);
  EXPECT_DOUBLE_EQ(b.ub(3), 1.0);
  EXPECT_DOUBLE_EQ(b.ub(4), 0.0);
  const ProbabilityBounds lt3 = ugf.ProbLessThan(3);
  EXPECT_DOUBLE_EQ(lt3.lb, 0.0);
  EXPECT_DOUBLE_EQ(lt3.ub, 1.0);
  const ProbabilityBounds lt2 = ugf.ProbLessThan(2);
  EXPECT_DOUBLE_EQ(lt2.ub, 0.0);
}

TEST(CountBoundsEdgeTest, SingleRankDistribution) {
  CountDistributionBounds b = CountDistributionBounds::Exact({1.0});
  EXPECT_DOUBLE_EQ(b.ProbLessThan(1).lb, 1.0);
  EXPECT_DOUBLE_EQ(b.ProbLessThan(0).ub, 0.0);
  const ProbabilityBounds er = b.ExpectedRank();
  EXPECT_DOUBLE_EQ(er.lb, 1.0);
  EXPECT_DOUBLE_EQ(er.ub, 1.0);
}

}  // namespace
}  // namespace updb
