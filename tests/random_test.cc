#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace updb {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(99);
  const uint64_t first = a.Next();
  a.Next();
  a.Reseed(99);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_DOUBLE_EQ(rng.Uniform(4.0, 4.0), 4.0);
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.NextBounded(7)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  Rng rng2(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.Bernoulli(0.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> s = rng.SampleWithoutReplacement(20, 10);
    ASSERT_EQ(s.size(), 10u);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    EXPECT_LT(s.back(), 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(41);
  std::vector<size_t> s = rng.SampleWithoutReplacement(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(SplitMix64Test, KnownFirstValue) {
  // Reference value of splitmix64(0) from the published algorithm.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace updb
