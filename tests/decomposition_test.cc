#include "uncertain/decomposition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"

namespace updb {
namespace {

Rect UnitSquare() { return Rect(Point{0.0, 0.0}, Point{1.0, 1.0}); }

double FrontierMass(const DecompositionTree& tree) {
  double m = 0.0;
  for (const Partition& p : tree.frontier()) m += p.mass;
  return m;
}

TEST(DecompositionTest, RootIsWholeObject) {
  UniformPdf pdf(UnitSquare());
  DecompositionTree tree(&pdf);
  ASSERT_EQ(tree.frontier().size(), 1u);
  EXPECT_EQ(tree.frontier()[0].region, pdf.bounds());
  EXPECT_DOUBLE_EQ(tree.frontier()[0].mass, 1.0);
  EXPECT_EQ(tree.depth(), 0);
}

TEST(DecompositionTest, UniformMedianSplitHalvesMass) {
  UniformPdf pdf(UnitSquare());
  DecompositionTree tree(&pdf);
  EXPECT_EQ(tree.Deepen(), 1u);
  ASSERT_EQ(tree.frontier().size(), 2u);
  EXPECT_DOUBLE_EQ(tree.frontier()[0].mass, 0.5);
  EXPECT_DOUBLE_EQ(tree.frontier()[1].mass, 0.5);
  EXPECT_EQ(tree.depth(), 1);
}

TEST(DecompositionTest, MassPerLevelIsTwoToMinusLevel) {
  // The Section V property: with median splits each level-h node carries
  // mass 0.5^h.
  UniformPdf pdf(UnitSquare());
  DecompositionTree tree(&pdf);
  for (int h = 1; h <= 5; ++h) {
    tree.Deepen();
    ASSERT_EQ(tree.frontier().size(), size_t{1} << h);
    for (const Partition& p : tree.frontier()) {
      EXPECT_NEAR(p.mass, std::pow(0.5, h), 1e-12);
    }
  }
}

TEST(DecompositionTest, RoundRobinAlternatesAxes) {
  UniformPdf pdf(UnitSquare());
  DecompositionTree tree(&pdf, SplitPolicy::kRoundRobin);
  tree.Deepen();  // splits axis 0
  for (const Partition& p : tree.frontier()) {
    EXPECT_DOUBLE_EQ(p.region.side(0).length(), 0.5);
    EXPECT_DOUBLE_EQ(p.region.side(1).length(), 1.0);
  }
  tree.Deepen();  // splits axis 1
  for (const Partition& p : tree.frontier()) {
    EXPECT_DOUBLE_EQ(p.region.side(0).length(), 0.5);
    EXPECT_DOUBLE_EQ(p.region.side(1).length(), 0.5);
  }
}

TEST(DecompositionTest, LongestSidePolicySplitsLongAxis) {
  UniformPdf pdf(Rect(Point{0.0, 0.0}, Point{4.0, 1.0}));
  DecompositionTree tree(&pdf, SplitPolicy::kLongestSide);
  tree.Deepen();
  for (const Partition& p : tree.frontier()) {
    EXPECT_DOUBLE_EQ(p.region.side(0).length(), 2.0);
    EXPECT_DOUBLE_EQ(p.region.side(1).length(), 1.0);
  }
}

TEST(DecompositionTest, FrontierRegionsAreDisjointAndCover) {
  UniformPdf pdf(UnitSquare());
  DecompositionTree tree(&pdf);
  tree.DeepenTo(4);
  double volume = 0.0;
  const auto& frontier = tree.frontier();
  for (size_t i = 0; i < frontier.size(); ++i) {
    volume += frontier[i].region.Volume();
    for (size_t j = i + 1; j < frontier.size(); ++j) {
      // Regions may touch at boundaries but not overlap with volume.
      Rect a = frontier[i].region;
      Rect b = frontier[j].region;
      if (a.Intersects(b)) {
        double overlap = 1.0;
        for (size_t d = 0; d < 2; ++d) {
          overlap *= std::max(
              0.0, std::min(a.side(d).hi(), b.side(d).hi()) -
                       std::max(a.side(d).lo(), b.side(d).lo()));
        }
        EXPECT_NEAR(overlap, 0.0, 1e-12);
      }
    }
  }
  EXPECT_NEAR(volume, 1.0, 1e-12);
}

TEST(DecompositionTest, MassesAlwaysSumToOne) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.4, 0.6}, {0.25, 0.15});
  DecompositionTree tree(&pdf);
  for (int h = 0; h < 6; ++h) {
    EXPECT_NEAR(FrontierMass(tree), 1.0, 1e-9) << "depth=" << h;
    tree.Deepen();
  }
}

TEST(DecompositionTest, GaussianMedianSplitsHalveMass) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.3, 0.7}, {0.2, 0.2});
  DecompositionTree tree(&pdf);
  tree.Deepen();
  ASSERT_EQ(tree.frontier().size(), 2u);
  EXPECT_NEAR(tree.frontier()[0].mass, 0.5, 1e-6);
  EXPECT_NEAR(tree.frontier()[1].mass, 0.5, 1e-6);
}

TEST(DecompositionTest, PointObjectIsTerminal) {
  DiscreteSamplePdf pdf({Point{0.5, 0.5}});
  DecompositionTree tree(&pdf);
  EXPECT_EQ(tree.Deepen(), 0u);
  EXPECT_EQ(tree.frontier().size(), 1u);
  EXPECT_EQ(tree.depth(), 0);
  // Further calls remain no-ops.
  EXPECT_EQ(tree.Deepen(), 0u);
}

TEST(DecompositionTest, DiscreteMassesPartitionSamples) {
  Rng rng(55);
  std::vector<Point> samples;
  for (int i = 0; i < 64; ++i) {
    samples.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  DiscreteSamplePdf pdf(std::move(samples));
  DecompositionTree tree(&pdf);
  for (int h = 1; h <= 5; ++h) {
    tree.Deepen();
    EXPECT_NEAR(FrontierMass(tree), 1.0, 1e-9) << "depth=" << h;
    for (const Partition& p : tree.frontier()) EXPECT_GT(p.mass, 0.0);
  }
}

TEST(DecompositionTest, DiscreteDuplicateSamplesTerminate) {
  // All samples identical: no split can make progress.
  std::vector<Point> samples(10, Point{0.25, 0.75});
  DiscreteSamplePdf pdf(std::move(samples));
  DecompositionTree tree(&pdf);
  EXPECT_EQ(tree.Deepen(), 0u);
  EXPECT_EQ(tree.frontier().size(), 1u);
  EXPECT_DOUBLE_EQ(tree.frontier()[0].mass, 1.0);
}

TEST(DecompositionTest, DiscreteSkewedDuplicatesStillSplit) {
  // Median coincides with the minimum; the midpoint fallback must split.
  std::vector<Point> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(Point{0.0});
  samples.push_back(Point{1.0});
  DiscreteSamplePdf pdf(std::move(samples));
  DecompositionTree tree(&pdf);
  EXPECT_EQ(tree.Deepen(), 1u);
  ASSERT_EQ(tree.frontier().size(), 2u);
  EXPECT_NEAR(tree.frontier()[0].mass + tree.frontier()[1].mass, 1.0, 1e-12);
  EXPECT_NEAR(tree.frontier()[0].mass, 8.0 / 9.0, 1e-12);
}

TEST(DecompositionTest, DeepenToStopsWhenExhausted) {
  DiscreteSamplePdf pdf({Point{0.0}, Point{1.0}});
  DecompositionTree tree(&pdf);
  tree.DeepenTo(10);
  // Two distinct points: after one split both children are single points.
  EXPECT_EQ(tree.frontier().size(), 2u);
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecompositionTest, DegenerateUniformSlabSplitsOtherAxis) {
  // Zero extent on axis 0; round-robin must skip to axis 1.
  UniformPdf pdf(Rect(Point{0.5, 0.0}, Point{0.5, 1.0}));
  DecompositionTree tree(&pdf, SplitPolicy::kRoundRobin);
  EXPECT_EQ(tree.Deepen(), 1u);
  ASSERT_EQ(tree.frontier().size(), 2u);
  EXPECT_DOUBLE_EQ(tree.frontier()[0].region.side(1).length(), 0.5);
}

TEST(DecompositionTest, NodeCountGrows) {
  UniformPdf pdf(UnitSquare());
  DecompositionTree tree(&pdf);
  EXPECT_EQ(tree.node_count(), 1u);
  tree.Deepen();
  EXPECT_EQ(tree.node_count(), 3u);
  tree.Deepen();
  EXPECT_EQ(tree.node_count(), 7u);
}

TEST(DecompositionTest, MixtureDecomposesWithMassConservation) {
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.0}, Point{0.3, 1.0})));
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.7, 0.0}, Point{1.0, 1.0})));
  MixturePdf mix(std::move(comps), {1.0, 1.0});
  DecompositionTree tree(&mix);
  tree.DeepenTo(4);
  EXPECT_NEAR(FrontierMass(tree), 1.0, 1e-9);
  EXPECT_GT(tree.frontier().size(), 8u);
}

}  // namespace
}  // namespace updb
