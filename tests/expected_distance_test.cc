#include "queries/expected_distance.h"

#include <gtest/gtest.h>

#include "mc/monte_carlo.h"
#include "workload/generators.h"

namespace updb {
namespace {

std::shared_ptr<DiscreteSamplePdf> PointObject(double x, double y) {
  return std::make_shared<DiscreteSamplePdf>(std::vector<Point>{Point{x, y}});
}

TEST(ExpectedDistanceTest, CertainObjectsGiveExactDistance) {
  DiscreteSamplePdf a({Point{3.0, 4.0}});
  DiscreteSamplePdf q({Point{0.0, 0.0}});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EstimateExpectedDistance(a, q, 16, rng), 5.0);
}

TEST(ExpectedDistanceTest, UniformMatchesClosedFormApproximately) {
  // 1-d uniform on [0, 2] against a point at 0: E[dist] = 1.
  UniformPdf a(Rect(Point{0.0}, Point{2.0}));
  DiscreteSamplePdf q({Point{0.0}});
  Rng rng(2);
  EXPECT_NEAR(EstimateExpectedDistance(a, q, 100000, rng), 1.0, 0.01);
}

TEST(ExpectedDistanceKnnTest, CertainChainReducesToPlainKnn) {
  UncertainDatabase db;
  db.Add(PointObject(3.0, 0.0));
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  db.Add(PointObject(9.0, 0.0));
  DiscreteSamplePdf q({Point{0.0, 0.0}});
  const auto knn = ExpectedDistanceKnn(db, q, 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].id, 1u);
  EXPECT_EQ(knn[1].id, 2u);
  EXPECT_NEAR(knn[0].expected_distance, 1.0, 1e-9);
}

TEST(ExpectedDistanceKnnTest, ViolatesPossibleWorldSemantics) {
  // The paper's Section II motivation, concretely. Query at the origin:
  //   X1 = {1 or 11}  (E[dist] = 6)
  //   X2 = {2 or 12}  (E[dist] = 7)
  //   Y  = point at 5 (E[dist] = 5)
  // Expected distance ranks Y first. But under possible-world semantics
  // X1 is the most probable 1NN: it wins outright whenever it realizes at
  // 1 (probability 1/2), while Y needs BOTH X1 = 11 and X2 = 12
  // (probability 1/4).
  UncertainDatabase db;
  db.Add(std::make_shared<DiscreteSamplePdf>(
      std::vector<Point>{Point{1.0, 0.0}, Point{11.0, 0.0}}));  // X1
  db.Add(std::make_shared<DiscreteSamplePdf>(
      std::vector<Point>{Point{2.0, 0.0}, Point{12.0, 0.0}}));  // X2
  db.Add(PointObject(5.0, 0.0));                                // Y
  DiscreteSamplePdf q({Point{0.0, 0.0}});

  const auto ed = ExpectedDistanceKnn(db, q, 1);
  ASSERT_EQ(ed.size(), 1u);
  EXPECT_EQ(ed[0].id, 2u);  // the baseline answers Y

  MonteCarloEngine mc(db, {});
  const double p_x1 = mc.ProbDomCountLessThan(0, q, 1);
  const double p_y = mc.ProbDomCountLessThan(2, q, 1);
  EXPECT_NEAR(p_x1, 0.5, 1e-9);
  EXPECT_NEAR(p_y, 0.25, 1e-9);
  EXPECT_GT(p_x1, p_y);  // the possible-world answer is X1, not Y
}

TEST(ExpectedDistanceKnnTest, KLargerThanDatabaseReturnsAll) {
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  DiscreteSamplePdf q({Point{0.0, 0.0}});
  const auto knn = ExpectedDistanceKnn(db, q, 10);
  EXPECT_EQ(knn.size(), 2u);
}

TEST(ExpectedDistanceKnnTest, DeterministicForSeed) {
  workload::SyntheticConfig cfg;
  cfg.num_objects = 30;
  cfg.max_extent = 0.1;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  UniformPdf q(Rect::Centered(Point{0.5, 0.5}, {0.05, 0.05}));
  const auto a = ExpectedDistanceKnn(db, q, 5, 64, 42);
  const auto b = ExpectedDistanceKnn(db, q, 5, 64, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].expected_distance, b[i].expected_distance);
  }
}

}  // namespace
}  // namespace updb
