// Existential uncertainty (Section I-A: objects whose PDF integrates to
// less than 1 may not exist at all). updb models this as a per-object
// existence probability; domination probabilities scale by it.

#include <gtest/gtest.h>

#include "updb.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

std::shared_ptr<DiscreteSamplePdf> PointObject(double x, double y) {
  return std::make_shared<DiscreteSamplePdf>(std::vector<Point>{Point{x, y}});
}

TEST(ExistentialObjectTest, DefaultsToCertain) {
  UncertainObject o(0, PointObject(0, 0));
  EXPECT_DOUBLE_EQ(o.existence(), 1.0);
  EXPECT_TRUE(o.existentially_certain());
}

TEST(ExistentialObjectTest, CarriesExistence) {
  UncertainObject o(0, PointObject(0, 0), 0.4);
  EXPECT_DOUBLE_EQ(o.existence(), 0.4);
  EXPECT_FALSE(o.existentially_certain());
}

TEST(ExistentialIdcaTest, BinomialDominationCount) {
  // Two certain-position dominators, each existing with probability 0.5:
  // DomCount(B) ~ Binomial(2, 0.5) exactly.
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0), 0.5);
  db.Add(PointObject(1.5, 0.0), 0.5);
  db.Add(PointObject(3.0, 0.0));  // B, certain
  IdcaConfig config;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  const auto r = PointObject(0.0, 0.0);
  const IdcaResult result = engine.ComputeDomCount(2, *r);
  EXPECT_EQ(result.complete_domination_count, 0u);  // e < 1: not complete
  EXPECT_EQ(result.influence_count, 2u);
  EXPECT_NEAR(result.bounds.lb(0), 0.25, 1e-9);
  EXPECT_NEAR(result.bounds.ub(0), 0.25, 1e-9);
  EXPECT_NEAR(result.bounds.lb(1), 0.50, 1e-9);
  EXPECT_NEAR(result.bounds.ub(1), 0.50, 1e-9);
  EXPECT_NEAR(result.bounds.lb(2), 0.25, 1e-9);
  EXPECT_NEAR(result.bounds.ub(2), 0.25, 1e-9);
}

TEST(ExistentialIdcaTest, CompletelyDominatedObjectsDropRegardless) {
  // An object completely dominated by B dominates in no world, whatever
  // its existence probability — it must not appear as influence.
  UncertainDatabase db;
  db.Add(PointObject(9.0, 0.0), 0.5);  // far behind B
  db.Add(PointObject(2.0, 0.0));       // B
  IdcaEngine engine(db);
  const auto r = PointObject(0.0, 0.0);
  const IdcaResult result = engine.ComputeDomCount(1, *r);
  EXPECT_EQ(result.influence_count, 0u);
  EXPECT_DOUBLE_EQ(result.bounds.lb(0), 1.0);
}

TEST(ExistentialIdcaTest, MixedExistenceBracketsMcTruth) {
  SyntheticConfig cfg;
  cfg.num_objects = 40;
  cfg.max_extent = 0.08;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 16;
  const UncertainDatabase base = MakeSyntheticDatabase(cfg);
  // Rebuild with random existence values.
  UncertainDatabase db;
  Rng rng(51);
  for (const UncertainObject& o : base.objects()) {
    db.Add(o.shared_pdf(), rng.Bernoulli(0.5) ? 1.0 : rng.Uniform(0.2, 0.9));
  }
  const auto q = MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kDiscrete,
                                 16, rng);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 16;
  MonteCarloEngine mc(db, mc_cfg);
  IdcaConfig config;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  for (ObjectId b : {ObjectId{2}, ObjectId{19}, ObjectId{33}}) {
    const IdcaResult idca = engine.ComputeDomCount(b, *q);
    const MonteCarloResult truth = mc.DomCountPdf(b, *q);
    EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9)) << "b=" << b;
  }
}

TEST(ExistentialIdcaTest, ConvergesToExactOnDiscreteData) {
  UncertainDatabase db;
  db.Add(std::make_shared<DiscreteSamplePdf>(
             std::vector<Point>{Point{1.0, 0.0}, Point{5.0, 0.0}}),
         0.8);                         // dominates B in half its worlds
  db.Add(PointObject(3.0, 0.0));       // B
  IdcaConfig config;
  config.max_iterations = 8;
  IdcaEngine engine(db, config);
  const auto r = PointObject(0.0, 0.0);
  const IdcaResult result = engine.ComputeDomCount(1, *r);
  // P(dominate) = P(exists) * P(at x=1) = 0.8 * 0.5 = 0.4.
  EXPECT_NEAR(result.bounds.lb(1), 0.4, 1e-9);
  EXPECT_NEAR(result.bounds.ub(1), 0.4, 1e-9);
  EXPECT_NEAR(result.bounds.lb(0), 0.6, 1e-9);
}

TEST(ExistentialIdcaTest, PredicateModeScalesByExistence) {
  // One potential dominator with existence 0.3 that dominates B for sure
  // when present: P(DomCount < 1) = 0.7.
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0), 0.3);
  db.Add(PointObject(2.0, 0.0));  // B
  IdcaConfig config;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  const auto r = PointObject(0.0, 0.0);
  const IdcaResult result =
      engine.ComputeDomCount(1, *r, IdcaPredicate{1, 0.5});
  EXPECT_EQ(result.decision, PredicateDecision::kTrue);
  EXPECT_NEAR(result.predicate_prob.lb, 0.7, 1e-9);
  EXPECT_NEAR(result.predicate_prob.ub, 0.7, 1e-9);
}

TEST(ExistentialMcTest, MatchesClosedForm) {
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0), 0.25);
  db.Add(PointObject(2.0, 0.0));  // B
  MonteCarloEngine mc(db, {});
  const auto r = PointObject(0.0, 0.0);
  const MonteCarloResult result = mc.DomCountPdf(1, *r);
  EXPECT_NEAR(result.pdf[0], 0.75, 1e-12);
  EXPECT_NEAR(result.pdf[1], 0.25, 1e-12);
}

TEST(ExistentialQueriesTest, KnnProbabilitiesReflectExistence) {
  // B is 2nd closest; the closest object exists with probability 0.1, so
  // P(B is 1NN) = 0.9.
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0), 0.1);
  db.Add(PointObject(2.0, 0.0));
  db.Add(PointObject(9.0, 0.0));
  const RTree index = BuildRTree(db.objects());
  const auto q = PointObject(0.0, 0.0);
  IdcaConfig config;
  config.max_iterations = 4;
  const auto results =
      ProbabilisticThresholdKnn(db, index, *q, 1, 0.5, config);
  bool found = false;
  for (const auto& r : results) {
    if (r.id == 1) {
      found = true;
      EXPECT_EQ(r.decision, PredicateDecision::kTrue);
      EXPECT_NEAR(r.prob.lb, 0.9, 1e-9);
      EXPECT_NEAR(r.prob.ub, 0.9, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace updb
