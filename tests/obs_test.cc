// Copyright 2026 The updb Authors.
// Observability substrate tests: histogram quantile accuracy against
// exact known answers, registry export formats, span nesting and
// timestamp monotonicity, and concurrent recording (the TSan job runs
// this binary to prove the lock-free hot paths are race-free).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace updb {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram

/// Exact quantile of a sorted sample (nearest-rank).
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t rank = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size())));
  return values[rank];
}

TEST(HistogramTest, QuantileKnownAnswerWithinDocumentedError) {
  HistogramOptions options;  // min=1e-5, growth=1.2, buckets=100
  Histogram h(options);
  // 10000 samples spanning four decades inside the bucket range.
  std::vector<double> values;
  values.reserve(10000);
  uint64_t state = 42;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(state >> 11) / 9007199254740992.0;
    const double v = 1e-4 * std::pow(10.0, 3.0 * u);  // log-uniform [1e-4, 1e-1]
    values.push_back(v);
    h.Record(v);
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_NEAR(snap.min, *std::min_element(values.begin(), values.end()), 0.0);
  EXPECT_NEAR(snap.max, *std::max_element(values.begin(), values.end()), 0.0);
  // The documented relative error bound is growth - 1.
  const double bound = options.growth - 1.0;
  for (double q : {0.5, 0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    const double approx = snap.Quantile(q);
    EXPECT_LE(std::abs(approx - exact) / exact, bound)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  // Quantile(1.0) is clamped to the exact maximum.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), snap.max);
}

TEST(HistogramTest, DegenerateAndOutOfRangeValues) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);  // empty

  // Everything in one bucket: quantiles are clamped into [min, max].
  for (int i = 0; i < 100; ++i) h.Record(3e-3);
  const HistogramSnapshot one = h.Snapshot();
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 3e-3);
  EXPECT_DOUBLE_EQ(one.min, 3e-3);
  EXPECT_DOUBLE_EQ(one.max, 3e-3);

  // Below-min and above-max land in the first/last bucket; the exact
  // extremes are still reported.
  Histogram wide;
  wide.Record(1e-9);
  wide.Record(1e9);
  const HistogramSnapshot extremes = wide.Snapshot();
  EXPECT_EQ(extremes.count, 2u);
  EXPECT_DOUBLE_EQ(extremes.min, 1e-9);
  EXPECT_DOUBLE_EQ(extremes.max, 1e9);
  EXPECT_DOUBLE_EQ(extremes.Quantile(1.0), 1e9);
}

TEST(HistogramTest, MemoryIsIndependentOfSampleCount) {
  // The snapshot's bucket vectors are sized by the options, not by the
  // number of recorded samples — the O(1)-in-request-count contract.
  HistogramOptions options;
  options.buckets = 16;
  Histogram h(options);
  for (int i = 0; i < 100000; ++i) h.Record(1e-3);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.counts.size(), 16u);
  EXPECT_EQ(snap.upper_edges.size(), 16u);
  EXPECT_EQ(snap.count, 100000u);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1e-4 * static_cast<double>(1 + ((t + i) % 7)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetMaxNeverLowers) {
  Gauge g;
  g.Set(10);
  g.SetMax(5);
  EXPECT_EQ(g.Value(), 10);
  g.SetMax(25);
  EXPECT_EQ(g.Value(), 25);
  g.Add(-5);
  EXPECT_EQ(g.Value(), 20);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.Counter("updb_test_total", "help");
  Counter* b = registry.Counter("updb_test_total", "help");
  EXPECT_EQ(a, b);
  // A {label} suffix is a distinct series.
  Counter* labeled = registry.Counter("updb_test_total{shard=\"1\"}", "help");
  EXPECT_NE(a, labeled);
}

TEST(MetricsRegistryTest, JsonAndPrometheusExports) {
  MetricsRegistry registry;
  registry.Counter("updb_unit_requests_total", "Requests")->Add(3);
  registry.Gauge("updb_unit_depth", "Depth")->Set(7);
  Histogram* h =
      registry.Histogram("updb_unit_latency_seconds", "Latency");
  h->Record(1e-3);
  h->Record(2e-3);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"updb_unit_requests_total\": 3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"updb_unit_depth\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"updb_unit_latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE updb_unit_requests_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("updb_unit_requests_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE updb_unit_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE updb_unit_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("updb_unit_latency_seconds_count 2"),
            std::string::npos);
  // Cumulative buckets end with the catch-all +Inf series.
  EXPECT_NE(prom.find("updb_unit_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus exposition conformance (known answers against the spec)

TEST(PrometheusTest, EscapeLabelValueHandlesAllSpecialCharacters) {
  // The exposition format escapes exactly backslash, double quote and
  // newline inside label values.
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("quo\"te"), "quo\\\"te");
  EXPECT_EQ(EscapeLabelValue("new\nline"), "new\\nline");
  EXPECT_EQ(EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusTest, LabeledSeriesComposesEscapedLabels) {
  EXPECT_EQ(LabeledSeries("updb_x_total", {}), "updb_x_total");
  EXPECT_EQ(LabeledSeries("updb_x_total", {{"class", "slow"}}),
            "updb_x_total{class=\"slow\"}");
  EXPECT_EQ(
      LabeledSeries("updb_x_total", {{"a", "1"}, {"b", "two\nlines"}}),
      "updb_x_total{a=\"1\",b=\"two\\nlines\"}");
}

TEST(PrometheusTest, HelpTextEscapesBackslashAndNewline) {
  MetricsRegistry registry;
  registry.Counter("updb_esc_total", "line one\nline \\two")->Add(1);
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(
      prom.find("# HELP updb_esc_total line one\\nline \\\\two\n"),
      std::string::npos)
      << prom;
}

TEST(PrometheusTest, LabeledFamilySharesOneHelpAndTypePair) {
  MetricsRegistry registry;
  // Register out of lexical order, with an unlabeled name that would sort
  // between the family's labeled series under a naive string sort
  // ("updb_fam_total{" > "updb_fam_totals" as raw strings).
  registry.Counter("updb_fam_total{class=\"b\"}", "Family")->Add(2);
  registry.Counter("updb_fam_totals", "Other")->Add(5);
  registry.Counter("updb_fam_total{class=\"a\"}", "Family")->Add(1);

  const std::string prom = registry.ToPrometheus();
  // Exactly one HELP/TYPE pair for the family, immediately followed by
  // both series in label order.
  const std::string expected =
      "# HELP updb_fam_total Family\n"
      "# TYPE updb_fam_total counter\n"
      "updb_fam_total{class=\"a\"} 1\n"
      "updb_fam_total{class=\"b\"} 2\n";
  EXPECT_NE(prom.find(expected), std::string::npos) << prom;
  size_t occurrences = 0;
  for (size_t pos = prom.find("# TYPE updb_fam_total counter");
       pos != std::string::npos;
       pos = prom.find("# TYPE updb_fam_total counter", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
  EXPECT_NE(prom.find("# TYPE updb_fam_totals counter"), std::string::npos);
}

TEST(PrometheusTest, HistogramEmitsCumulativeBucketsSumAndCount) {
  MetricsRegistry registry;
  HistogramOptions hopts;
  hopts.buckets = 3;
  hopts.min = 1.0;
  hopts.growth = 10.0;  // upper edges: 1, 10, +Inf
  Histogram* h = registry.Histogram("updb_h_seconds", "H", hopts);
  h->Record(0.5);
  h->Record(5.0);
  h->Record(5.0);
  h->Record(50.0);

  const std::string prom = registry.ToPrometheus();
  const std::string expected =
      "# HELP updb_h_seconds H\n"
      "# TYPE updb_h_seconds histogram\n"
      "updb_h_seconds_bucket{le=\"1\"} 1\n"
      "updb_h_seconds_bucket{le=\"10\"} 3\n"
      "updb_h_seconds_bucket{le=\"+Inf\"} 4\n"
      "updb_h_seconds_sum 60.5\n"
      "updb_h_seconds_count 4\n";
  EXPECT_NE(prom.find(expected), std::string::npos) << prom;
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateAndRecord) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.Counter("updb_race_total", "h")->Add();
        registry.Histogram("updb_race_seconds", "h")->Record(1e-3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.Counter("updb_race_total", "h")->Value(),
            static_cast<uint64_t>(kThreads) * 1000);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, SpanNestingAndMonotonicTimestamps) {
  TraceRecorder recorder;
  {
    TraceSpan outer(&recorder, "outer", "test");
    outer.AddArg("k", 1);
    {
      TraceSpan inner(&recorder, "inner", "test");
      inner.AddArg("k", 2);
    }
    recorder.RecordInstant("mark", "test");
  }
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: inner closes first, then the instant, then outer.
  const TraceEvent& inner = events[0];
  const TraceEvent& mark = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(mark.name, "mark");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(mark.dur_ns, TraceEvent::kInstant);
  // Nesting: the inner interval lies within the outer interval.
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  // The instant fired after the inner span closed, before outer closed.
  EXPECT_GE(mark.ts_ns, inner.ts_ns + inner.dur_ns);
  EXPECT_LE(mark.ts_ns, outer.ts_ns + outer.dur_ns);
  // Args survived.
  ASSERT_EQ(outer.num_args, 1u);
  EXPECT_STREQ(outer.args[0].key, "k");
  EXPECT_EQ(outer.args[0].value, 1u);
}

TEST(TraceTest, NowNsIsMonotonic) {
  TraceRecorder recorder;
  uint64_t prev = recorder.NowNs();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = recorder.NowNs();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(TraceTest, BackdatedSpanClampsStartAndDurationTogether) {
  TraceRecorder recorder;

  // An in-timeline backdated span keeps its full interval.
  recorder.RecordBackdatedSpan("wait", "test", /*end_ns=*/1000,
                               /*dur_ns=*/400);
  // A duration longer than the recorder's life so far truncates to the
  // in-timeline portion: start clamps to the epoch AND the duration
  // shrinks with it — never a zeroed start with the full duration kept,
  // which would overstate the wait.
  recorder.RecordBackdatedSpan("wait", "test", /*end_ns=*/300,
                               /*dur_ns=*/5000);

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_ns, 600u);
  EXPECT_EQ(events[0].dur_ns, 400u);
  EXPECT_EQ(events[1].ts_ns, 0u);
  EXPECT_EQ(events[1].dur_ns, 300u);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.ts_ns + e.dur_ns, e.dur_ns == 400u ? 1000u : 300u);
  }
}

TEST(TraceTest, BoundedBufferCountsDrops) {
  TraceRecorder recorder(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.RecordInstant("e", "test");
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
}

TEST(TraceTest, ChromeJsonHeaderReportsCapacityAndDrops) {
  TraceRecorder recorder(/*max_events=*/4);
  for (int i = 0; i < 7; ++i) {
    recorder.RecordInstant("e", "test");
  }
  // Drops are visible in the export itself, not only via dropped(): a
  // truncated trace must announce its own truncation.
  const std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"updbTrace\": {\"maxEvents\": 4, "
                      "\"recordedEvents\": 4, \"droppedEvents\": 3}"),
            std::string::npos)
      << json;
}

TEST(TraceTest, RegisterGaugesMirrorsCapacityAndDrops) {
  MetricsRegistry registry;
  TraceRecorder recorder(/*max_events=*/2);
  recorder.RecordInstant("kept", "test");
  recorder.RegisterGauges(&registry);
  // Registration back-fills drops that happened before it...
  recorder.RecordInstant("kept", "test");
  recorder.RecordInstant("dropped", "test");
  recorder.RecordInstant("dropped", "test");
  // ...and tracks the ones after it.
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("updb_trace_buffer_capacity 2"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("updb_trace_dropped_events 2"), std::string::npos);
  EXPECT_EQ(recorder.max_events(), 2u);
}

TEST(TraceTest, ChromeJsonShape) {
  TraceRecorder recorder;
  {
    TraceSpan span(&recorder, "work", "unit");
    span.AddArg("n", 7);
  }
  recorder.RecordInstant("tick", "unit");
  const std::string json = recorder.ToChromeJson();
  EXPECT_EQ(json.rfind("{\"updbTrace\": ", 0), 0u) << json;
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 7"), std::string::npos);
  // Ends with the closing brace (plus a trailing newline).
  const size_t last = json.find_last_not_of('\n');
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
}

TEST(TraceTest, ConcurrentRecordingKeepsDenseThreadIds) {
  TraceRecorder recorder;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < 500; ++i) {
        TraceSpan span(&recorder, "worker", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<TraceEvent> events = recorder.Events();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * 500);
  for (const TraceEvent& e : events) {
    EXPECT_GT(e.tid, 0u);
    EXPECT_NE(e.dur_ns, TraceEvent::kInstant);
  }
}

TEST(TraceTest, NullRecorderSpansAreNoOps) {
  // The disabled path: no recorder, spans must not crash or record.
  TraceSpan span(nullptr, "ghost", "test");
  span.AddArg("k", 1);
  // Destruction with a null recorder is the payload-invariance fast path.
}

}  // namespace
}  // namespace obs
}  // namespace updb
