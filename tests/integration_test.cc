// End-to-end scenarios across all modules: workload generation -> index ->
// IDCA -> queries, cross-checked against the Monte-Carlo oracle. These are
// scaled-down versions of the experiment pipelines in bench/.

#include <gtest/gtest.h>

#include "updb.h"

namespace updb {
namespace {

using workload::IipConfig;
using workload::MakeIipLikeDataset;
using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::PickByMinDistRank;
using workload::SyntheticConfig;

TEST(IntegrationTest, PaperDefaultPipelineScaledDown) {
  // The paper's default setup, scaled: synthetic DB, query object R, B =
  // the object with the 10th smallest MinDist to R (Section VII).
  SyntheticConfig cfg;
  cfg.num_objects = 500;
  cfg.max_extent = 0.02;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(31);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.02, ObjectModel::kUniform, 0, rng);
  const ObjectId b = PickByMinDistRank(index, r->bounds(), 10);

  IdcaConfig config;
  config.max_iterations = 5;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(b, *r);

  // The filter must prune the overwhelming majority of 500 objects.
  EXPECT_LT(result.influence_count, 50u);
  // B is the 10th-closest by MinDist: its domination count must
  // concentrate near 9 (complete dominators lower-bound the count).
  EXPECT_LE(result.complete_domination_count, 9u + result.influence_count);
  // Uncertainty must have decreased substantially from iteration 0.
  ASSERT_GE(result.iterations.size(), 2u);
  EXPECT_LT(result.iterations.back().total_uncertainty,
            result.iterations.front().total_uncertainty);
}

TEST(IntegrationTest, IipPipelineProducesConsistentBounds) {
  IipConfig cfg;
  cfg.num_objects = 400;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 16;
  const UncertainDatabase db = MakeIipLikeDataset(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(32);
  // Query near the sighting concentration.
  const auto r = MakeQueryObject(Point{0.3, 0.5}, cfg.max_extent,
                                 ObjectModel::kDiscrete, 16, rng);
  const ObjectId b = PickByMinDistRank(index, r->bounds(), 10);

  IdcaConfig config;
  config.max_iterations = 8;
  IdcaEngine engine(db, config);
  const IdcaResult idca = engine.ComputeDomCount(b, *r);

  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 16;
  MonteCarloEngine mc(db, mc_cfg);
  const MonteCarloResult truth = mc.DomCountPdf(b, *r);
  EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9));
}

TEST(IntegrationTest, KnnConsistentWithInverseRanking) {
  // P_kNN(B,Q) = P(Rank(B,Q) <= k): the kNN predicate bracket and the
  // prefix of the inverse-ranking distribution must agree.
  SyntheticConfig cfg;
  cfg.num_objects = 80;
  cfg.max_extent = 0.05;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(33);
  const auto q =
      MakeQueryObject(Point{0.5, 0.5}, 0.05, ObjectModel::kUniform, 0, rng);
  const ObjectId b = PickByMinDistRank(index, q->bounds(), 4);
  IdcaConfig config;
  config.max_iterations = 5;
  const size_t k = 5;

  IdcaEngine engine(db, config);
  const IdcaResult with_predicate =
      engine.ComputeDomCount(b, *q, IdcaPredicate{k, 0.5});
  const CountDistributionBounds rank_dist =
      ProbabilisticInverseRanking(db, b, *q, config);
  const ProbabilityBounds from_ranking = rank_dist.ProbLessThan(k);
  // The predicate-mode bracket must be consistent (both bracket the same
  // truth); the scalar aggregation is at least as tight as the per-rank
  // array route.
  EXPECT_GE(with_predicate.predicate_prob.lb, from_ranking.lb - 1e-9);
  EXPECT_LE(with_predicate.predicate_prob.ub, from_ranking.ub + 1e-9);
}

TEST(IntegrationTest, RknnAndKnnDualityOnCertainData) {
  // On certain (point) data, B is an RkNN of Q iff Q is within B's k
  // nearest neighbors among {Q} ∪ DB \ {B}.
  UncertainDatabase db;
  Rng rng(34);
  std::vector<Point> positions;
  for (int i = 0; i < 20; ++i) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    positions.push_back(p);
    db.Add(std::make_shared<DiscreteSamplePdf>(std::vector<Point>{p}));
  }
  const RTree index = BuildRTree(db.objects());
  const Point qp{0.5, 0.5};
  const auto q =
      std::make_shared<DiscreteSamplePdf>(std::vector<Point>{qp});
  const size_t k = 3;
  const auto results = ProbabilisticThresholdRknn(db, index, *q, k, 0.5);
  std::vector<bool> is_rknn(db.size(), false);
  for (const auto& r : results) {
    if (r.decision == PredicateDecision::kTrue) is_rknn[r.id] = true;
  }
  const LpNorm norm;
  for (ObjectId id = 0; id < db.size(); ++id) {
    const double dq = norm.Dist(positions[id], qp);
    size_t closer = 0;
    for (ObjectId other = 0; other < db.size(); ++other) {
      if (other != id && norm.Dist(positions[other], positions[id]) < dq) {
        ++closer;
      }
    }
    EXPECT_EQ(is_rknn[id], closer < k) << "id=" << id;
  }
}

TEST(IntegrationTest, GaussianAndUniformModelsAgreeOnCoarseStructure) {
  // Same MBRs, different PDFs: complete-domination counts (region-only)
  // must be identical; refined bounds may differ but both bracket their
  // own MC truth.
  SyntheticConfig cfg;
  cfg.num_objects = 100;
  cfg.max_extent = 0.05;
  cfg.seed = 77;
  cfg.model = ObjectModel::kUniform;
  const UncertainDatabase uniform_db = MakeSyntheticDatabase(cfg);
  cfg.model = ObjectModel::kGaussian;
  const UncertainDatabase gauss_db = MakeSyntheticDatabase(cfg);
  ASSERT_EQ(uniform_db.size(), gauss_db.size());
  for (size_t i = 0; i < uniform_db.size(); ++i) {
    ASSERT_EQ(uniform_db.object(i).mbr(), gauss_db.object(i).mbr());
  }
  Rng rng(35);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.05, ObjectModel::kUniform, 0, rng);
  IdcaConfig config;
  config.max_iterations = 0;  // filter only
  const IdcaResult u = IdcaEngine(uniform_db, config).ComputeDomCount(7, *r);
  const IdcaResult g = IdcaEngine(gauss_db, config).ComputeDomCount(7, *r);
  EXPECT_EQ(u.complete_domination_count, g.complete_domination_count);
  EXPECT_EQ(u.influence_count, g.influence_count);
}

TEST(IntegrationTest, ExpectedRankOrderRespectsSpatialOrder) {
  // Far-apart tiny objects: expected-rank order must equal MinDist order.
  UncertainDatabase db;
  Rng rng(36);
  for (int i = 1; i <= 8; ++i) {
    const double x = 0.1 * i;
    db.Add(std::make_shared<UniformPdf>(
        Rect::Centered(Point{x, 0.0}, {0.001, 0.001})));
  }
  const auto q = std::make_shared<UniformPdf>(
      Rect::Centered(Point{0.0, 0.0}, {0.001, 0.001}));
  const auto order = ExpectedRankOrder(db, *q);
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i].id, static_cast<ObjectId>(i));
  }
}

TEST(IntegrationTest, MixturePdfObjectsWorkEndToEnd) {
  // Bimodal objects exercise the generic ConditionalMedian bisection path
  // inside the full IDCA loop.
  UncertainDatabase db;
  auto make_bimodal = [](double x, double y) {
    std::vector<std::unique_ptr<Pdf>> comps;
    comps.push_back(std::make_unique<UniformPdf>(
        Rect::Centered(Point{x - 0.02, y}, {0.005, 0.005})));
    comps.push_back(std::make_unique<UniformPdf>(
        Rect::Centered(Point{x + 0.02, y}, {0.005, 0.005})));
    return std::make_shared<MixturePdf>(std::move(comps),
                                        std::vector<double>{1.0, 1.0});
  };
  for (int i = 0; i < 10; ++i) {
    db.Add(make_bimodal(0.1 * (i + 1), 0.5));
  }
  const auto q = std::make_shared<UniformPdf>(
      Rect::Centered(Point{0.0, 0.5}, {0.01, 0.01}));
  IdcaConfig config;
  config.max_iterations = 6;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(4, *q);
  // Object 4 is 5th closest: its count must concentrate around 4.
  EXPECT_GT(result.bounds.lb(4), 0.5);
  Rng rng(37);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 200;
  MonteCarloEngine mc(db, mc_cfg);
  const MonteCarloResult truth = mc.DomCountPdf(4, *q);
  // Sampled truth: allow sampling noise.
  EXPECT_TRUE(result.bounds.Brackets(truth.pdf, 0.05));
}

}  // namespace
}  // namespace updb
