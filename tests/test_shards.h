// Shared helper of the shard-parameterized suites (store_test,
// service_test): UPDB_TEST_SHARDS selects the store shard count — the CI
// sharded re-run drives both suites at 4 — defaulting to 1. Payloads are
// shard-count-invariant, so the suites assert identical results at every
// value.

#ifndef UPDB_TESTS_TEST_SHARDS_H_
#define UPDB_TESTS_TEST_SHARDS_H_

#include <cstddef>
#include <cstdlib>

namespace updb {
namespace test_util {

inline size_t TestShards() {
  const char* env = std::getenv("UPDB_TEST_SHARDS");
  if (env == nullptr) return 1;
  const long v = std::atol(env);
  return v >= 1 ? static_cast<size_t>(v) : 1;
}

}  // namespace test_util
}  // namespace updb

#endif  // UPDB_TESTS_TEST_SHARDS_H_
