#include "gf/ugf.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "gf/poisson_binomial.h"

namespace updb {
namespace {

TEST(UgfTest, EmptyFunctionIsUnit) {
  UncertainGeneratingFunction ugf;
  EXPECT_EQ(ugf.num_factors(), 0u);
  EXPECT_DOUBLE_EQ(ugf.Coefficient(0, 0), 1.0);
  const CountDistributionBounds b = ugf.Bounds();
  ASSERT_EQ(b.num_ranks(), 1u);
  EXPECT_DOUBLE_EQ(b.lb(0), 1.0);
  EXPECT_DOUBLE_EQ(b.ub(0), 1.0);
}

TEST(UgfTest, PaperExample3Coefficients) {
  // Example 3: PLB = (0.2, 0.6), PUB = (0.5, 0.8).
  // F2 = 0.12 x^2 + 0.34 x + 0.1 + 0.22 xy + 0.16 y + 0.06 y^2.
  UncertainGeneratingFunction ugf;
  ugf.Multiply(0.2, 0.5);
  ugf.Multiply(0.6, 0.8);
  EXPECT_NEAR(ugf.Coefficient(2, 0), 0.12, 1e-12);
  EXPECT_NEAR(ugf.Coefficient(1, 0), 0.34, 1e-12);
  EXPECT_NEAR(ugf.Coefficient(0, 0), 0.10, 1e-12);
  EXPECT_NEAR(ugf.Coefficient(1, 1), 0.22, 1e-12);
  EXPECT_NEAR(ugf.Coefficient(0, 1), 0.16, 1e-12);
  EXPECT_NEAR(ugf.Coefficient(0, 2), 0.06, 1e-12);
}

TEST(UgfTest, PaperExample3Bounds) {
  // The bounds the paper derives: P(=2) in [12%, 40%], P(=1) in
  // [34%, 78%], P(=0) in [10%, 32%].
  UncertainGeneratingFunction ugf;
  ugf.Multiply(0.2, 0.5);
  ugf.Multiply(0.6, 0.8);
  const CountDistributionBounds b = ugf.Bounds();
  ASSERT_EQ(b.num_ranks(), 3u);
  EXPECT_NEAR(b.lb(2), 0.12, 1e-12);
  EXPECT_NEAR(b.ub(2), 0.40, 1e-12);
  EXPECT_NEAR(b.lb(1), 0.34, 1e-12);
  EXPECT_NEAR(b.ub(1), 0.78, 1e-12);
  EXPECT_NEAR(b.lb(0), 0.10, 1e-12);
  EXPECT_NEAR(b.ub(0), 0.32, 1e-12);
}

TEST(UgfTest, DegenerateBracketsMatchPoissonBinomial) {
  Rng rng(47);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.NextBounded(10);
    std::vector<double> probs(n);
    UncertainGeneratingFunction ugf;
    for (double& p : probs) {
      p = rng.NextDouble();
      ugf.Multiply(p, p);
    }
    const std::vector<double> pdf = PoissonBinomialPdf(probs);
    const CountDistributionBounds b = ugf.Bounds();
    ASSERT_EQ(b.num_ranks(), pdf.size());
    for (size_t k = 0; k < pdf.size(); ++k) {
      EXPECT_NEAR(b.lb(k), pdf[k], 1e-12);
      EXPECT_NEAR(b.ub(k), pdf[k], 1e-12);
    }
  }
}

TEST(UgfTest, DefiniteFactorsShiftTheDistribution) {
  UncertainGeneratingFunction ugf;
  ugf.Multiply(1.0, 1.0);  // definite dominator
  ugf.Multiply(1.0, 1.0);
  ugf.Multiply(0.0, 0.0);  // definite non-dominator
  const CountDistributionBounds b = ugf.Bounds();
  ASSERT_EQ(b.num_ranks(), 4u);
  EXPECT_DOUBLE_EQ(b.lb(2), 1.0);
  EXPECT_DOUBLE_EQ(b.ub(2), 1.0);
  EXPECT_DOUBLE_EQ(b.ub(0), 0.0);
  EXPECT_DOUBLE_EQ(b.ub(3), 0.0);
}

TEST(UgfTest, TotallyUnknownFactorsGiveVacuousBounds) {
  UncertainGeneratingFunction ugf;
  ugf.Multiply(0.0, 1.0);
  ugf.Multiply(0.0, 1.0);
  const CountDistributionBounds b = ugf.Bounds();
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(b.lb(k), 0.0);
    EXPECT_DOUBLE_EQ(b.ub(k), 1.0);
  }
}

TEST(UgfTest, BoundsBracketAnyConsistentTruth) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.NextBounded(8);
    std::vector<double> truth(n);
    UncertainGeneratingFunction ugf;
    for (size_t i = 0; i < n; ++i) {
      const double lb = rng.NextDouble();
      const double ub = lb + (1.0 - lb) * rng.NextDouble();
      truth[i] = lb + (ub - lb) * rng.NextDouble();
      ugf.Multiply(lb, ub);
    }
    const std::vector<double> pdf = PoissonBinomialPdf(truth);
    EXPECT_TRUE(ugf.Bounds().Brackets(pdf, 1e-9)) << "trial=" << trial;
  }
}

TEST(UgfTest, TighterInputBracketsGiveTighterBounds) {
  // Shrinking every factor's bracket must not loosen any rank bound.
  Rng rng(59);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.NextBounded(6);
    UncertainGeneratingFunction loose, tight;
    for (size_t i = 0; i < n; ++i) {
      const double lb = rng.NextDouble() * 0.5;
      const double ub = 0.5 + rng.NextDouble() * 0.5;
      const double mid = 0.5 * (lb + ub);
      loose.Multiply(lb, ub);
      tight.Multiply(0.5 * (lb + mid), 0.5 * (ub + mid));
    }
    const CountDistributionBounds lb_bounds = loose.Bounds();
    const CountDistributionBounds tb = tight.Bounds();
    for (size_t k = 0; k <= n; ++k) {
      EXPECT_GE(tb.lb(k), lb_bounds.lb(k) - 1e-12);
      EXPECT_LE(tb.ub(k), lb_bounds.ub(k) + 1e-12);
    }
  }
}

TEST(UgfTest, UgfAtLeastAsTightAsRegularGfPair) {
  // The technical-report claim: the UGF bounds are never looser than the
  // two-regular-generating-functions construction.
  Rng rng(61);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.NextBounded(8);
    std::vector<double> lbs(n), ubs(n);
    UncertainGeneratingFunction ugf;
    for (size_t i = 0; i < n; ++i) {
      lbs[i] = rng.NextDouble();
      ubs[i] = lbs[i] + (1.0 - lbs[i]) * rng.NextDouble();
      ugf.Multiply(lbs[i], ubs[i]);
    }
    const CountDistributionBounds u = ugf.Bounds();
    const CountDistributionBounds pair = RegularGfPairBounds(lbs, ubs);
    for (size_t k = 0; k <= n; ++k) {
      EXPECT_GE(u.lb(k), pair.lb(k) - 1e-9) << "k=" << k;
      EXPECT_LE(u.ub(k), pair.ub(k) + 1e-9) << "k=" << k;
    }
  }
}

TEST(UgfTest, CoefficientMassSumsToOne) {
  Rng rng(67);
  UncertainGeneratingFunction ugf;
  for (int i = 0; i < 10; ++i) {
    const double lb = rng.NextDouble() * 0.6;
    ugf.Multiply(lb, lb + 0.3);
  }
  double total = 0.0;
  for (size_t i = 0; i <= 10; ++i) {
    for (size_t j = 0; j + i <= 10; ++j) total += ugf.Coefficient(i, j);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ------------------------------------------------------ truncated mode

TEST(TruncatedUgfTest, MatchesFullOnRanksBelowK) {
  Rng rng(71);
  for (size_t k : {size_t{1}, size_t{2}, size_t{5}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const size_t n = 1 + rng.NextBounded(12);
      UncertainGeneratingFunction full;
      UncertainGeneratingFunction trunc(k);
      for (size_t i = 0; i < n; ++i) {
        const double lb = rng.NextDouble();
        const double ub = lb + (1.0 - lb) * rng.NextDouble();
        full.Multiply(lb, ub);
        trunc.Multiply(lb, ub);
      }
      const CountDistributionBounds fb = full.Bounds();
      const CountDistributionBounds tb = trunc.Bounds();
      ASSERT_EQ(tb.num_ranks(), std::min(k, n + 1));
      for (size_t x = 0; x < tb.num_ranks(); ++x) {
        EXPECT_NEAR(tb.lb(x), fb.lb(x), 1e-12) << "k=" << k << " x=" << x;
        EXPECT_NEAR(tb.ub(x), fb.ub(x), 1e-12) << "k=" << k << " x=" << x;
      }
    }
  }
}

TEST(TruncatedUgfTest, ProbLessThanMatchesFull) {
  Rng rng(73);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextBounded(12);
    const size_t k = 1 + rng.NextBounded(6);
    UncertainGeneratingFunction full;
    UncertainGeneratingFunction trunc(k);
    for (size_t i = 0; i < n; ++i) {
      const double lb = rng.NextDouble();
      const double ub = lb + (1.0 - lb) * rng.NextDouble();
      full.Multiply(lb, ub);
      trunc.Multiply(lb, ub);
    }
    for (size_t m = 0; m <= k; ++m) {
      const ProbabilityBounds pf = full.ProbLessThan(m);
      const ProbabilityBounds pt = trunc.ProbLessThan(m);
      EXPECT_NEAR(pt.lb, pf.lb, 1e-12) << "m=" << m;
      EXPECT_NEAR(pt.ub, pf.ub, 1e-12) << "m=" << m;
    }
  }
}

TEST(TruncatedUgfTest, OverflowAccountsForHighCounts) {
  UncertainGeneratingFunction trunc(2);
  trunc.Multiply(1.0, 1.0);
  trunc.Multiply(1.0, 1.0);
  trunc.Multiply(1.0, 1.0);
  EXPECT_NEAR(trunc.OverflowMass(), 1.0, 1e-12);
  const ProbabilityBounds p = trunc.ProbLessThan(2);
  EXPECT_DOUBLE_EQ(p.lb, 0.0);
  EXPECT_DOUBLE_EQ(p.ub, 0.0);
}

TEST(TruncatedUgfTest, ProbLessThanBracketsTruth) {
  Rng rng(79);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.NextBounded(10);
    const size_t k = 1 + rng.NextBounded(5);
    std::vector<double> truth(n);
    UncertainGeneratingFunction trunc(k);
    for (size_t i = 0; i < n; ++i) {
      const double lb = rng.NextDouble();
      const double ub = lb + (1.0 - lb) * rng.NextDouble();
      truth[i] = lb + (ub - lb) * rng.NextDouble();
      trunc.Multiply(lb, ub);
    }
    const std::vector<double> pdf = PoissonBinomialPdf(truth);
    double p_true = 0.0;
    for (size_t x = 0; x < std::min(k, pdf.size()); ++x) p_true += pdf[x];
    const ProbabilityBounds p = trunc.ProbLessThan(k);
    EXPECT_GE(p_true, p.lb - 1e-9);
    EXPECT_LE(p_true, p.ub + 1e-9);
  }
}

// ------------------------------------- degenerate-factor fast paths

/// Total coefficient mass materialized by a k-truncated UGF.
double TruncatedMass(const UncertainGeneratingFunction& ugf, size_t k) {
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j <= k - i; ++j) total += ugf.Coefficient(i, j);
  }
  return total;
}

TEST(UgfFastPathTest, ZeroFactorOnlyExtendsTheRankRange) {
  // A (0,0) factor multiplies by exactly 1: coefficients stay put, the
  // count gains one more (impossible) rank.
  UncertainGeneratingFunction ugf;
  ugf.Multiply(0.2, 0.5);
  ugf.Multiply(0.0, 0.0);
  ugf.Multiply(0.6, 0.8);
  EXPECT_EQ(ugf.num_factors(), 3u);
  const CountDistributionBounds b = ugf.Bounds();
  ASSERT_EQ(b.num_ranks(), 4u);
  // Example 3 values are unchanged; rank 3 is impossible.
  EXPECT_NEAR(ugf.Coefficient(2, 0), 0.12, 1e-12);
  EXPECT_NEAR(ugf.Coefficient(1, 1), 0.22, 1e-12);
  EXPECT_DOUBLE_EQ(b.lb(3), 0.0);
  EXPECT_DOUBLE_EQ(b.ub(3), 0.0);
  EXPECT_NEAR(b.lb(1), 0.34, 1e-12);
  EXPECT_NEAR(b.ub(1), 0.78, 1e-12);
}

TEST(UgfFastPathTest, OneFactorShiftsEveryRank) {
  // A (1,1) factor shifts the whole distribution up one rank, whatever
  // its position in the factor sequence.
  UncertainGeneratingFunction shifted, plain;
  shifted.Multiply(0.2, 0.5);
  shifted.Multiply(1.0, 1.0);
  shifted.Multiply(0.6, 0.8);
  plain.Multiply(0.2, 0.5);
  plain.Multiply(0.6, 0.8);
  EXPECT_EQ(shifted.num_factors(), 3u);
  const CountDistributionBounds bs = shifted.Bounds();
  const CountDistributionBounds bp = plain.Bounds();
  ASSERT_EQ(bs.num_ranks(), 4u);
  EXPECT_DOUBLE_EQ(bs.lb(0), 0.0);
  EXPECT_DOUBLE_EQ(bs.ub(0), 0.0);
  for (size_t x = 0; x < bp.num_ranks(); ++x) {
    EXPECT_EQ(bs.lb(x + 1), bp.lb(x)) << "x=" << x;
    EXPECT_EQ(bs.ub(x + 1), bp.ub(x)) << "x=" << x;
  }
  EXPECT_EQ(shifted.Coefficient(2, 1), plain.Coefficient(1, 1));
  EXPECT_EQ(shifted.Coefficient(0, 1), 0.0);
  // ProbLessThan shifts with the ranks.
  const ProbabilityBounds ps = shifted.ProbLessThan(2);
  const ProbabilityBounds pp = plain.ProbLessThan(1);
  EXPECT_EQ(ps.lb, pp.lb);
  EXPECT_EQ(ps.ub, pp.ub);
  EXPECT_DOUBLE_EQ(shifted.ProbLessThan(0).ub, 0.0);
  EXPECT_DOUBLE_EQ(shifted.ProbLessThan(1).ub, 0.0);
}

TEST(UgfFastPathTest, DegenerateFactorsAloneGiveAPointMass) {
  UncertainGeneratingFunction ugf;
  ugf.Multiply(1.0, 1.0);
  ugf.Multiply(0.0, 0.0);
  ugf.Multiply(1.0, 1.0);
  const CountDistributionBounds b = ugf.Bounds();
  ASSERT_EQ(b.num_ranks(), 4u);
  for (size_t x = 0; x < 4; ++x) {
    EXPECT_DOUBLE_EQ(b.lb(x), x == 2 ? 1.0 : 0.0) << "x=" << x;
    EXPECT_DOUBLE_EQ(b.ub(x), x == 2 ? 1.0 : 0.0) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(ugf.ProbLessThan(2).ub, 0.0);
  EXPECT_DOUBLE_EQ(ugf.ProbLessThan(3).lb, 1.0);
}

TEST(UgfFastPathTest, TruncatedDegenerateFactorsMatchSemantics) {
  // Truncated at k = 2: two definite dominators push all mass to the
  // overflow; a (0,0) factor changes nothing.
  UncertainGeneratingFunction trunc(2);
  trunc.Multiply(0.0, 0.0);
  EXPECT_DOUBLE_EQ(trunc.OverflowMass(), 0.0);
  EXPECT_DOUBLE_EQ(trunc.Coefficient(0, 0), 1.0);
  trunc.Multiply(1.0, 1.0);
  trunc.Multiply(1.0, 1.0);
  EXPECT_NEAR(trunc.OverflowMass(), 1.0, 1e-12);
  const ProbabilityBounds p = trunc.ProbLessThan(2);
  EXPECT_DOUBLE_EQ(p.lb, 0.0);
  EXPECT_DOUBLE_EQ(p.ub, 0.0);
}

TEST(UgfFastPathTest, ResetRewindsToTheUnitFunction) {
  UncertainGeneratingFunction ugf;
  ugf.Multiply(0.3, 0.9);
  ugf.Multiply(1.0, 1.0);
  ugf.Reset();
  EXPECT_EQ(ugf.num_factors(), 0u);
  EXPECT_DOUBLE_EQ(ugf.Coefficient(0, 0), 1.0);
  const CountDistributionBounds b = ugf.Bounds();
  ASSERT_EQ(b.num_ranks(), 1u);
  EXPECT_DOUBLE_EQ(b.lb(0), 1.0);
  // Reset(k) switches to truncated mode on the same workspace.
  ugf.Reset(2);
  ugf.Multiply(0.5, 0.5);
  ugf.Multiply(0.5, 0.5);
  ugf.Multiply(0.5, 0.5);
  EXPECT_NEAR(TruncatedMass(ugf, 2) + ugf.OverflowMass(), 1.0, 1e-12);
}

TEST(TruncatedUgfTest, ExactInputsDecideProbLessThanExactly) {
  // With lb == ub the truncated UGF must reproduce the exact prefix sum.
  Rng rng(83);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.NextBounded(10);
    const size_t k = 1 + rng.NextBounded(5);
    std::vector<double> probs(n);
    UncertainGeneratingFunction trunc(k);
    for (double& p : probs) {
      p = rng.NextDouble();
      trunc.Multiply(p, p);
    }
    const std::vector<double> pdf = PoissonBinomialPdf(probs);
    double expect = 0.0;
    for (size_t x = 0; x < std::min(k, pdf.size()); ++x) expect += pdf[x];
    const ProbabilityBounds p = trunc.ProbLessThan(k);
    EXPECT_NEAR(p.lb, expect, 1e-9);
    EXPECT_NEAR(p.ub, expect, 1e-9);
  }
}

}  // namespace
}  // namespace updb
