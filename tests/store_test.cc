#include "store/object_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "queries/queries.h"
#include "service/query_service.h"
#include "service/trace.h"
#include "test_shards.h"
#include "workload/churn.h"
#include "workload/generators.h"

namespace updb {
namespace store {
namespace {

using test_util::TestShards;

StoreOptions TestOptions() {
  StoreOptions opts;
  opts.num_shards = TestShards();
  return opts;
}

UncertainDatabase MakeDb(size_t n, double extent, uint64_t seed = 7) {
  workload::SyntheticConfig cfg;
  cfg.num_objects = n;
  cfg.max_extent = extent;
  cfg.seed = seed;
  return workload::MakeSyntheticDatabase(cfg);
}

std::shared_ptr<const Pdf> MakePdf(double x, double y, double extent,
                                   uint64_t seed = 5) {
  Rng rng(seed);
  return workload::MakeQueryObject(Point{x, y}, extent,
                                   workload::ObjectModel::kUniform, 0, rng);
}

/// Replays `trace` against a service pinned to `snap` and returns the
/// combined response digest.
uint64_t PinnedDigest(std::shared_ptr<const StoreSnapshot> snap,
                      const std::vector<service::QueryRequest>& trace,
                      size_t workers = 2, size_t batch = 4) {
  service::QueryServiceOptions opts;
  opts.num_workers = workers;
  opts.batch_size = batch;
  opts.max_queue = trace.size() + 1;
  service::QueryService svc(std::move(snap), opts);
  const service::ReplayResult result =
      service::ReplayTrace(svc, trace, /*qps=*/0.0);
  return service::ResponseDigest(result.responses);
}

TEST(VersionedObjectStoreTest, InsertUpdateRemoveAndWal) {
  VersionedObjectStore s(TestOptions());
  EXPECT_EQ(s.version(), 0u);
  EXPECT_EQ(s.live_size(), 0u);
  EXPECT_EQ(s.dim(), 0u);

  const StatusOr<ObjectId> a = s.Insert(MakePdf(0.2, 0.2, 0.02));
  const StatusOr<ObjectId> b = s.Insert(MakePdf(0.8, 0.8, 0.02));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(s.dim(), 2u);
  EXPECT_EQ(s.pending_mutations(), 2u);

  // The write-ahead window records application order and assigned ids.
  const std::vector<LogRecord> wal = s.PendingLog();
  ASSERT_EQ(wal.size(), 2u);
  EXPECT_EQ(wal[0].sequence, 1u);
  EXPECT_EQ(wal[0].assigned_id, 0u);
  EXPECT_EQ(wal[1].sequence, 2u);
  EXPECT_EQ(wal[1].mutation.kind, Mutation::Kind::kInsert);

  EXPECT_TRUE(s.Update(*a, MakePdf(0.3, 0.3, 0.02)).ok());
  EXPECT_TRUE(s.Remove(*b).ok());
  EXPECT_EQ(s.live_size(), 1u);
  EXPECT_EQ(s.pending_mutations(), 4u);
  EXPECT_EQ(s.total_mutations(), 4u);

  // Rejected mutations leave state and WAL untouched.
  EXPECT_EQ(s.Remove(*b).code(), StatusCode::kNotFound);
  EXPECT_EQ(s.Update(99, MakePdf(0.1, 0.1, 0.02)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(s.Insert(nullptr).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Insert(MakePdf(0.5, 0.5, 0.02), 1.5).status().code(),
            StatusCode::kInvalidArgument);
  const auto three_d = std::make_shared<UniformPdf>(
      Rect(Point{0, 0, 0}, Point{1, 1, 1}));
  EXPECT_EQ(s.Insert(three_d).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.pending_mutations(), 4u);

  const auto snap = s.Publish();
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(snap->size(), 1u);
  EXPECT_EQ(s.pending_mutations(), 0u);
  // Stable ids are never reused.
  const StatusOr<ObjectId> c = s.Insert(MakePdf(0.6, 0.6, 0.02));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 2u);
}

TEST(VersionedObjectStoreTest, DenseStableTranslation) {
  VersionedObjectStore s(MakeDb(5, 0.05), TestOptions());
  ASSERT_TRUE(s.Remove(2).ok());
  const auto snap = s.Publish();
  ASSERT_EQ(snap->size(), 4u);
  // Dense ids re-pack in ascending stable order: 0,1,3,4.
  EXPECT_EQ(snap->StableId(0), 0u);
  EXPECT_EQ(snap->StableId(2), 3u);
  EXPECT_EQ(snap->StableId(3), 4u);
  EXPECT_EQ(*snap->DenseId(4), 3u);
  EXPECT_EQ(snap->DenseId(2).status().code(), StatusCode::kNotFound);
  // The materialized database and the index agree on the dense space.
  EXPECT_EQ(snap->db()->size(), 4u);
  EXPECT_EQ(snap->index().entry_count(), 4u);
  EXPECT_TRUE(snap->index().Validate());
}

TEST(VersionedObjectStoreTest, SnapshotIsolationUnderMutation) {
  auto store =
      std::make_shared<VersionedObjectStore>(MakeDb(25, 0.08), TestOptions());
  const auto pinned = store->latest();
  ASSERT_EQ(pinned->version(), 1u);

  service::TraceConfig tcfg;
  tcfg.num_requests = 12;
  tcfg.seed = 42;
  tcfg.query_extent = 0.08;
  tcfg.budget.max_iterations = 3;
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(*pinned->db(), tcfg);
  const uint64_t before = PinnedDigest(pinned, trace);

  // Heavy churn after the snapshot was taken.
  Rng rng(9);
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 20;
  ccfg.max_extent = 0.08;
  for (int i = 0; i < 4; ++i) {
    workload::ApplyMutationBatch(
        *store,
        workload::MakeMutationBatch(store->LiveIds(), 2, ccfg, rng));
    store->Publish();
  }
  EXPECT_GT(store->version(), 1u);

  // The old snapshot is untouched: same size, same payloads, bit-identical
  // digest — and it answers even though newer versions exist.
  EXPECT_EQ(pinned->size(), 25u);
  EXPECT_EQ(PinnedDigest(pinned, trace), before);
}

/// Acceptance: a delta-overlay snapshot and an always-rebuilt snapshot of
/// the same mutation history are indistinguishable — identical index
/// enumeration and bit-identical response payloads at every version.
TEST(VersionedObjectStoreTest, OverlayMatchesRebuiltIndex) {
  StoreOptions overlay_opts = TestOptions();
  overlay_opts.compact_delta_fraction = 10.0;  // never compact
  overlay_opts.snapshot_retention = 16;
  StoreOptions rebuild_opts = TestOptions();
  rebuild_opts.compact_delta_fraction = 0.0;  // rebuild every publish
  rebuild_opts.snapshot_retention = 16;
  const UncertainDatabase seed_db = MakeDb(40, 0.08);
  VersionedObjectStore overlay_store(seed_db, overlay_opts);
  VersionedObjectStore rebuild_store(seed_db, rebuild_opts);

  Rng rng(31);
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 14;
  ccfg.max_extent = 0.08;
  ccfg.uncertain_existence_fraction = 0.2;
  service::TraceConfig tcfg;
  tcfg.num_requests = 10;
  tcfg.query_extent = 0.08;
  tcfg.budget.max_iterations = 3;

  for (int round = 0; round < 5; ++round) {
    // One deterministic batch, applied to both stores.
    const std::vector<Mutation> batch =
        workload::MakeMutationBatch(overlay_store.LiveIds(), 2, ccfg, rng);
    ASSERT_TRUE(workload::ApplyMutationBatch(overlay_store, batch).ok());
    ASSERT_TRUE(workload::ApplyMutationBatch(rebuild_store, batch).ok());
    const auto snap_overlay = overlay_store.Publish();
    const auto snap_rebuild = rebuild_store.Publish();
    ASSERT_EQ(snap_overlay->version(), snap_rebuild->version());
    ASSERT_EQ(snap_overlay->size(), snap_rebuild->size());
    EXPECT_TRUE(snap_overlay->index().Validate());
    EXPECT_TRUE(snap_rebuild->index().Validate());
    EXPECT_GT(snap_overlay->index().delta_entries(), 0u);
    EXPECT_TRUE(snap_rebuild->index().compacted());

    // Index enumeration agrees in the dense-id space.
    const Rect everything(Point{-1.0, -1.0}, Point{2.0, 2.0});
    std::vector<ObjectId> ids_overlay, ids_rebuild;
    snap_overlay->index().ForEachIntersecting(
        everything, [&ids_overlay](const RTreeEntry& e) {
          ids_overlay.push_back(e.id);
          return true;
        });
    snap_rebuild->index().ForEachIntersecting(
        everything, [&ids_rebuild](const RTreeEntry& e) {
          ids_rebuild.push_back(e.id);
          return true;
        });
    std::sort(ids_overlay.begin(), ids_overlay.end());
    std::sort(ids_rebuild.begin(), ids_rebuild.end());
    ASSERT_EQ(ids_overlay, ids_rebuild);

    // Best-first scans stream the same (distance, id) sequence modulo
    // equal-distance ties; distances must be identical and monotone.
    std::vector<std::pair<double, ObjectId>> scan_overlay, scan_rebuild;
    const Rect probe = Rect::FromPoint(Point{0.5, 0.5});
    snap_overlay->index().ScanByMinDist(
        probe, [&scan_overlay](const RTreeEntry& e, double d) {
          scan_overlay.emplace_back(d, e.id);
          return true;
        });
    snap_rebuild->index().ScanByMinDist(
        probe, [&scan_rebuild](const RTreeEntry& e, double d) {
          scan_rebuild.emplace_back(d, e.id);
          return true;
        });
    ASSERT_EQ(scan_overlay.size(), scan_rebuild.size());
    for (size_t i = 1; i < scan_overlay.size(); ++i) {
      EXPECT_GE(scan_overlay[i].first, scan_overlay[i - 1].first);
    }
    std::sort(scan_overlay.begin(), scan_overlay.end());
    std::sort(scan_rebuild.begin(), scan_rebuild.end());
    EXPECT_EQ(scan_overlay, scan_rebuild);

    // Served payloads are bit-identical (digest covers the version, which
    // matches by construction).
    tcfg.seed = 100 + static_cast<uint64_t>(round);
    const std::vector<service::QueryRequest> trace =
        service::MakeTrace(*snap_overlay->db(), tcfg);
    EXPECT_EQ(PinnedDigest(snap_overlay, trace),
              PinnedDigest(snap_rebuild, trace))
        << "round=" << round;
  }
}

TEST(VersionedObjectStoreTest, CompactionTriggersPastThreshold) {
  StoreOptions opts;
  opts.compact_delta_fraction = 0.25;
  VersionedObjectStore s(MakeDb(40, 0.05), opts);
  ASSERT_TRUE(s.latest()->index().compacted());
  // A small batch stays an overlay; repeated batches cross 0.25 * 40 and
  // compact back to delta 0.
  Rng rng(3);
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 6;
  ccfg.max_extent = 0.05;
  bool saw_overlay = false, saw_compaction = false;
  for (int i = 0; i < 6; ++i) {
    workload::ApplyMutationBatch(
        s, workload::MakeMutationBatch(s.LiveIds(), 2, ccfg, rng));
    const auto snap = s.Publish();
    EXPECT_TRUE(snap->index().Validate());
    if (snap->index().compacted()) {
      saw_compaction = true;
    } else {
      saw_overlay = true;
    }
  }
  EXPECT_TRUE(saw_overlay);
  EXPECT_TRUE(saw_compaction);
}

TEST(VersionedObjectStoreTest, SnapshotRetentionEvictsFifo) {
  StoreOptions opts;
  opts.snapshot_retention = 2;
  VersionedObjectStore s(MakeDb(5, 0.05), opts);  // publishes version 1
  s.Insert(MakePdf(0.5, 0.5, 0.02)).status();
  s.Publish();  // version 2
  s.Publish();  // version 3 (empty window is allowed)
  EXPECT_EQ(s.version(), 3u);
  EXPECT_NE(s.snapshot(3), nullptr);
  EXPECT_NE(s.snapshot(2), nullptr);
  EXPECT_EQ(s.snapshot(1), nullptr);  // evicted
  EXPECT_EQ(s.snapshot(99), nullptr);
  // An evicted version a reader still holds stays alive via shared_ptr
  // (checked implicitly by SnapshotIsolationUnderMutation).
}

/// Acceptance: the shard count is invisible in snapshot contents — the
/// same mutation history served at num_shards ∈ {1, 2, 7} yields the same
/// dense materialization, identical index enumeration, and bit-identical
/// response payloads at every version.
TEST(VersionedObjectStoreTest, ShardedMatchesUnshardedDigests) {
  constexpr size_t kShardCounts[] = {1, 2, 7};
  const UncertainDatabase seed_db = MakeDb(40, 0.08);
  std::vector<std::unique_ptr<VersionedObjectStore>> stores;
  for (size_t shards : kShardCounts) {
    StoreOptions opts;
    opts.num_shards = shards;
    stores.push_back(
        std::make_unique<VersionedObjectStore>(seed_db, opts));
  }

  Rng rng(47);
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 14;
  ccfg.max_extent = 0.08;
  ccfg.uncertain_existence_fraction = 0.2;
  service::TraceConfig tcfg;
  tcfg.num_requests = 10;
  tcfg.query_extent = 0.08;
  tcfg.budget.max_iterations = 3;

  for (int round = 0; round < 4; ++round) {
    const std::vector<Mutation> batch =
        workload::MakeMutationBatch(stores[0]->LiveIds(), 2, ccfg, rng);
    std::vector<std::shared_ptr<const StoreSnapshot>> snaps;
    for (auto& store : stores) {
      ASSERT_TRUE(workload::ApplyMutationBatch(*store, batch).ok());
      snaps.push_back(store->Publish());
    }
    tcfg.seed = 300 + static_cast<uint64_t>(round);
    const std::vector<service::QueryRequest> trace =
        service::MakeTrace(*snaps[0]->db(), tcfg);
    const uint64_t reference = PinnedDigest(snaps[0], trace);
    const Rect everything(Point{-1.0, -1.0}, Point{2.0, 2.0});
    std::vector<ObjectId> reference_ids;
    snaps[0]->index().ForEachIntersecting(
        everything, [&reference_ids](const RTreeEntry& e) {
          reference_ids.push_back(e.id);
          return true;
        });
    std::sort(reference_ids.begin(), reference_ids.end());
    for (size_t i = 1; i < snaps.size(); ++i) {
      ASSERT_EQ(snaps[i]->size(), snaps[0]->size());
      ASSERT_EQ(snaps[i]->num_shards(), kShardCounts[i]);
      EXPECT_TRUE(snaps[i]->index().Validate());
      // Same dense space: identical stable↔dense translation.
      for (ObjectId d = 0; d < snaps[0]->size(); ++d) {
        ASSERT_EQ(snaps[i]->StableId(d), snaps[0]->StableId(d));
      }
      // Same enumeration set in the dense-id space.
      std::vector<ObjectId> ids;
      snaps[i]->index().ForEachIntersecting(everything,
                                            [&ids](const RTreeEntry& e) {
                                              ids.push_back(e.id);
                                              return true;
                                            });
      std::sort(ids.begin(), ids.end());
      ASSERT_EQ(ids, reference_ids);
      // Bit-identical served payloads.
      EXPECT_EQ(PinnedDigest(snaps[i], trace), reference)
          << "round=" << round << " shards=" << kShardCounts[i];
    }
  }
}

TEST(VersionedObjectStoreTest, ShardRoutingAndCounts) {
  StoreOptions opts;
  opts.num_shards = 3;
  VersionedObjectStore s(MakeDb(10, 0.05), opts);
  ASSERT_TRUE(s.Remove(4).ok());  // shard 1
  const auto snap = s.Publish();
  ASSERT_EQ(snap->num_shards(), 3u);
  // Stable ids 0..9 minus 4: shard 0 holds {0,3,6,9}, shard 1 {1,7},
  // shard 2 {2,5,8}.
  EXPECT_EQ(snap->shard_size(0), 4u);
  EXPECT_EQ(snap->shard_size(1), 2u);
  EXPECT_EQ(snap->shard_size(2), 3u);
  const std::vector<size_t> counts = s.ShardLiveCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 3u);
  // The best-first merge across shards is globally distance-sorted.
  const Rect probe = Rect::FromPoint(Point{0.5, 0.5});
  double last = 0.0;
  size_t seen = 0;
  snap->index().ScanByMinDist(probe, [&](const RTreeEntry& e, double d) {
    EXPECT_GE(d, last);
    EXPECT_LT(e.id, snap->size());
    last = d;
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, snap->size());
}

TEST(VersionedObjectStoreTest, PublishStatsSplitDrainFromBuild) {
  StoreOptions opts = TestOptions();
  VersionedObjectStore s(MakeDb(30, 0.05), opts);
  Rng rng(5);
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 12;
  ccfg.max_extent = 0.05;
  workload::ApplyMutationBatch(
      s, workload::MakeMutationBatch(s.LiveIds(), 2, ccfg, rng));
  PublishStats stats;
  s.Publish(&stats);
  EXPECT_EQ(stats.drained_mutations, 12u);
  EXPECT_GE(stats.drain_ms, 0.0);
  EXPECT_GE(stats.build_ms, 0.0);
  const PublishMetrics metrics = s.publish_metrics();
  EXPECT_EQ(metrics.publishes, 2u);  // seed publish + this one
  EXPECT_GE(metrics.max_drain_ms, stats.drain_ms);
  EXPECT_GE(metrics.max_build_ms, stats.build_ms);
  EXPECT_GE(metrics.total_drain_ms, stats.drain_ms);
}

/// TSan surface: readers iterate snapshots — including the latest,
/// re-acquired mid-publish — while a writer mutates and publishes through
/// the copy-on-write drain/merge/install cycle. Every acquired snapshot
/// must stay internally consistent (index enumeration matches its
/// database size) no matter where publishing is in its cycle.
TEST(VersionedObjectStoreTest, CowPublishOverlapsConcurrentReaders) {
  StoreOptions opts = TestOptions();
  auto store =
      std::make_shared<VersionedObjectStore>(MakeDb(60, 0.05), opts);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(23);
    workload::ChurnConfig ccfg;
    ccfg.mutations_per_batch = 10;
    ccfg.max_extent = 0.05;
    while (!stop.load()) {
      workload::ApplyMutationBatch(
          *store,
          workload::MakeMutationBatch(store->LiveIds(), 2, ccfg, rng));
      store->Publish();
    }
  });

  constexpr size_t kReaders = 3;
  std::vector<std::thread> readers;
  std::atomic<size_t> snapshots_checked{0};
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      const Rect everything(Point{-1.0, -1.0}, Point{2.0, 2.0});
      for (int i = 0; i < 40; ++i) {
        const auto snap = store->latest();
        size_t enumerated = 0;
        snap->index().ForEachIntersecting(everything,
                                          [&enumerated](const RTreeEntry&) {
                                            ++enumerated;
                                            return true;
                                          });
        ASSERT_EQ(enumerated, snap->size());
        ASSERT_EQ(snap->db()->size(), snap->size());
        double last = 0.0;
        const Rect probe =
            Rect::FromPoint(Point{0.3 * static_cast<double>(t), 0.5});
        snap->index().ScanByMinDist(probe,
                                    [&last](const RTreeEntry&, double d) {
                                      EXPECT_GE(d, last);
                                      last = d;
                                      return true;
                                    });
        // Writer-side live views stay readable mid-publish too.
        store->LiveIds();
        store->live_size();
        ++snapshots_checked;
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(snapshots_checked.load(), kReaders * 40);
  EXPECT_GT(store->version(), 1u);
}

TEST(VersionedObjectStoreTest, EmptyStoreComesUpAndServes) {
  auto store = std::make_shared<VersionedObjectStore>(TestOptions());
  service::QueryServiceOptions opts;
  opts.num_workers = 2;
  service::QueryService svc(store, opts);

  // Threshold query against the unpublished (empty, version-0) snapshot:
  // admitted, completes with an empty payload.
  service::QueryRequest req;
  req.kind = service::QueryKind::kThresholdKnn;
  req.query = MakePdf(0.5, 0.5, 0.05);
  req.k = 2;
  const StatusOr<uint64_t> ticket = svc.Submit(req);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  const service::QueryResponse empty_response = svc.Take(*ticket);
  EXPECT_EQ(empty_response.status, service::ResponseStatus::kOk);
  EXPECT_EQ(empty_response.snapshot_version, 0u);
  EXPECT_TRUE(empty_response.threshold.empty());

  // Inverse ranking cannot name a valid target on an empty database.
  service::QueryRequest inverse;
  inverse.kind = service::QueryKind::kInverseRanking;
  inverse.query = MakePdf(0.5, 0.5, 0.05);
  inverse.target = 0;
  EXPECT_EQ(svc.Submit(inverse).status().code(),
            StatusCode::kInvalidArgument);

  // First publish brings data online; the same request now does work.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        store->Insert(MakePdf(0.1 * i, 0.5, 0.03, /*seed=*/50 + i)).ok());
  }
  store->Publish();
  const StatusOr<uint64_t> ticket2 = svc.Submit(req);
  ASSERT_TRUE(ticket2.ok());
  const service::QueryResponse live_response = svc.Take(*ticket2);
  EXPECT_EQ(live_response.snapshot_version, 1u);
  EXPECT_FALSE(live_response.threshold.empty());
}

TEST(VersionedObjectStoreTest, LiveServiceObservesPublishedVersions) {
  auto store =
      std::make_shared<VersionedObjectStore>(MakeDb(20, 0.08), TestOptions());
  service::QueryServiceOptions opts;
  opts.start_paused = true;
  service::QueryService svc(store, opts);

  service::QueryRequest req;
  req.kind = service::QueryKind::kThresholdKnn;
  req.query = MakePdf(0.5, 0.5, 0.08);
  req.k = 2;
  req.budget.max_iterations = 2;
  const StatusOr<uint64_t> t = svc.Submit(req);
  ASSERT_TRUE(t.ok());

  // Publish two more versions while dispatch is paused; the round then
  // serves the latest.
  store->Insert(MakePdf(0.9, 0.9, 0.02)).status();
  store->Publish();
  store->Publish();
  EXPECT_EQ(store->version(), 3u);
  svc.Resume();
  const service::QueryResponse r = svc.Take(*t);
  EXPECT_EQ(r.snapshot_version, 3u);
  EXPECT_EQ(r.status, service::ResponseStatus::kOk);
}

TEST(VersionedObjectStoreTest, ExecutionRevalidatesAgainstRoundSnapshot) {
  // An inverse-ranking target valid at admission but outside the snapshot
  // the round serves terminates as kInvalid, not as a crash or a wrong
  // payload.
  auto store =
      std::make_shared<VersionedObjectStore>(MakeDb(10, 0.05), TestOptions());
  service::QueryServiceOptions opts;
  opts.start_paused = true;
  service::QueryService svc(store, opts);

  service::QueryRequest req;
  req.kind = service::QueryKind::kInverseRanking;
  req.query = MakePdf(0.5, 0.5, 0.05);
  req.target = 9;  // valid against version 1
  const StatusOr<uint64_t> t = svc.Submit(req);
  ASSERT_TRUE(t.ok());

  for (ObjectId id = 5; id < 10; ++id) ASSERT_TRUE(store->Remove(id).ok());
  store->Publish();  // version 2: only 5 objects remain
  svc.Resume();
  const service::QueryResponse r = svc.Take(*t);
  EXPECT_EQ(r.snapshot_version, 2u);
  EXPECT_EQ(r.status, service::ResponseStatus::kInvalid);
  EXPECT_EQ(r.rank_bounds.num_ranks(), 0u);
  // Execution-time invalidation is observable: counted separately from
  // admission-time validation failures.
  const service::MetricsSnapshot m = svc.metrics().Snapshot();
  EXPECT_EQ(m.invalidated, 1u);
  EXPECT_EQ(m.invalid, 0u);
}

TEST(VersionedObjectStoreTest, InverseTargetTracksStableIdAcrossVersions) {
  // The request's target is a stable id: removing a *lower* id before the
  // round executes shifts every dense id, and the service must still rank
  // the object the client named — never whichever object inherited the
  // dense slot.
  auto store =
      std::make_shared<VersionedObjectStore>(MakeDb(10, 0.08), TestOptions());
  service::QueryServiceOptions opts;
  opts.start_paused = true;
  service::QueryService svc(store, opts);

  const auto query = MakePdf(0.5, 0.5, 0.08);
  service::QueryRequest req;
  req.kind = service::QueryKind::kInverseRanking;
  req.query = query;
  req.target = 3;  // stable id
  req.budget.max_iterations = 3;
  const StatusOr<uint64_t> t = svc.Submit(req);
  ASSERT_TRUE(t.ok());

  ASSERT_TRUE(store->Remove(0).ok());
  const auto snap = store->Publish();  // stable 3 now lives at dense 2
  ASSERT_EQ(*snap->DenseId(3), 2u);
  svc.Resume();
  const service::QueryResponse r = svc.Take(*t);
  EXPECT_EQ(r.snapshot_version, 2u);
  ASSERT_EQ(r.status, service::ResponseStatus::kOk);

  IdcaConfig direct_cfg;
  direct_cfg.max_iterations = 3;
  const CountDistributionBounds expected =
      ProbabilisticInverseRanking(*snap->db(), 2, *query, direct_cfg);
  ASSERT_EQ(r.rank_bounds.num_ranks(), expected.num_ranks());
  for (size_t k = 0; k < expected.num_ranks(); ++k) {
    EXPECT_EQ(r.rank_bounds.lb(k), expected.lb(k));
    EXPECT_EQ(r.rank_bounds.ub(k), expected.ub(k));
  }
}

/// Acceptance: with writers mutating and publishing concurrently, two
/// replays of the same request list pinned to the same snapshot_version
/// produce bit-identical payloads. The TSan CI job drives this test.
TEST(VersionedObjectStoreTest, VersionPinnedDeterminismUnderChurn) {
  StoreOptions opts = TestOptions();
  opts.snapshot_retention = 64;
  auto store =
      std::make_shared<VersionedObjectStore>(MakeDb(30, 0.08), opts);
  const auto pinned = store->latest();

  service::TraceConfig tcfg;
  tcfg.num_requests = 10;
  tcfg.seed = 77;
  tcfg.query_extent = 0.08;
  tcfg.budget.max_iterations = 2;
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(*pinned->db(), tcfg);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(13);
    workload::ChurnConfig ccfg;
    ccfg.mutations_per_batch = 8;
    ccfg.max_extent = 0.08;
    while (!stop.load()) {
      workload::ApplyMutationBatch(
          *store,
          workload::MakeMutationBatch(store->LiveIds(), 2, ccfg, rng));
      store->Publish();
    }
  });

  uint64_t digest_a = 0, digest_b = 0;
  std::thread replay_a(
      [&] { digest_a = PinnedDigest(pinned, trace, /*workers=*/2); });
  std::thread replay_b(
      [&] { digest_b = PinnedDigest(pinned, trace, /*workers=*/1); });
  replay_a.join();
  replay_b.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(digest_a, digest_b);
  EXPECT_GT(store->version(), 1u);  // the writer really was publishing
}

/// Concurrent writers + live readers, the store/churn TSan surface: all
/// submissions complete and every response names a version that was
/// published at some point.
TEST(VersionedObjectStoreTest, ConcurrentWritersAndLiveReaders) {
  auto store =
      std::make_shared<VersionedObjectStore>(MakeDb(20, 0.05), TestOptions());
  service::QueryServiceOptions opts;
  opts.num_workers = 2;
  opts.batch_size = 2;
  service::QueryService svc(store, opts);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(17);
    workload::ChurnConfig ccfg;
    ccfg.mutations_per_batch = 4;
    ccfg.max_extent = 0.05;
    while (!stop.load()) {
      workload::ApplyMutationBatch(
          *store,
          workload::MakeMutationBatch(store->LiveIds(), 2, ccfg, rng));
      store->Publish();
    }
  });

  constexpr size_t kThreads = 3;
  constexpr size_t kPerThread = 6;
  std::vector<std::vector<uint64_t>> tickets(kThreads);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        service::QueryRequest req;
        req.kind = service::QueryKind::kThresholdKnn;
        req.query = MakePdf(0.2 + 0.2 * static_cast<double>(t), 0.5, 0.05,
                            /*seed=*/t * 100 + i);
        req.k = 1;
        req.budget.max_iterations = 2;
        const StatusOr<uint64_t> ticket = svc.Submit(req);
        ASSERT_TRUE(ticket.ok());
        tickets[t].push_back(*ticket);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  svc.Flush();
  stop.store(true);
  writer.join();

  const uint64_t final_version = store->version();
  for (const auto& per_thread : tickets) {
    for (uint64_t ticket : per_thread) {
      const service::QueryResponse r = svc.Take(ticket);
      EXPECT_TRUE(r.status == service::ResponseStatus::kOk ||
                  r.status == service::ResponseStatus::kExpired);
      EXPECT_GE(r.snapshot_version, 1u);
      EXPECT_LE(r.snapshot_version, final_version);
    }
  }
}

TEST(ChurnWorkloadTest, MutationBatchesAreSeedDeterministic) {
  const std::vector<ObjectId> live = {0, 1, 2, 3, 4, 5, 6, 7};
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 16;
  ccfg.uncertain_existence_fraction = 0.3;
  Rng rng_a(99), rng_b(99);
  const std::vector<Mutation> a =
      workload::MakeMutationBatch(live, 2, ccfg, rng_a);
  const std::vector<Mutation> b =
      workload::MakeMutationBatch(live, 2, ccfg, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].existence, b[i].existence);
    if (a[i].pdf != nullptr) {
      ASSERT_NE(b[i].pdf, nullptr);
      EXPECT_EQ(a[i].pdf->bounds(), b[i].pdf->bounds());
    } else {
      EXPECT_EQ(b[i].pdf, nullptr);
    }
  }
}

TEST(ChurnWorkloadTest, TargetsDrawnWithoutReplacement) {
  const std::vector<ObjectId> live = {3, 5, 9};
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 40;
  ccfg.insert_weight = 0.0;  // update/remove only: pool drains after 3
  Rng rng(1);
  const std::vector<Mutation> batch =
      workload::MakeMutationBatch(live, 2, ccfg, rng);
  EXPECT_EQ(batch.size(), 3u);
  std::vector<ObjectId> targets;
  for (const Mutation& m : batch) targets.push_back(m.id);
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, live);
}

TEST(ChurnWorkloadTest, EmptyLiveSetFallsBackToInserts) {
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 5;
  ccfg.insert_weight = 0.1;
  ccfg.update_weight = 10.0;
  ccfg.remove_weight = 10.0;
  Rng rng(2);
  const std::vector<Mutation> batch =
      workload::MakeMutationBatch({}, 2, ccfg, rng);
  ASSERT_EQ(batch.size(), 5u);
  for (const Mutation& m : batch) {
    EXPECT_EQ(m.kind, Mutation::Kind::kInsert);
  }
}

TEST(ChurnWorkloadTest, ShardTargetedBatchesRouteToOneShard) {
  std::vector<ObjectId> live(20);
  for (ObjectId id = 0; id < 20; ++id) live[id] = id;
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 30;
  ccfg.insert_weight = 0.0;  // update/remove only: every target observable
  ccfg.num_shards = 4;
  ccfg.target_shard = 2;
  Rng rng(8);
  const std::vector<Mutation> batch =
      workload::MakeMutationBatch(live, 2, ccfg, rng);
  // The pool is the 5 live ids of shard 2 (2, 6, 10, 14, 18), drawn
  // without replacement.
  EXPECT_EQ(batch.size(), 5u);
  for (const Mutation& m : batch) {
    EXPECT_EQ(m.id % 4, 2u);
  }
}

}  // namespace
}  // namespace store
}  // namespace updb
