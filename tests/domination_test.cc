#include "domination/criteria.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace updb {
namespace {

Rect MakeRect(double x0, double y0, double x1, double y1) {
  return Rect(Point{x0, y0}, Point{x1, y1});
}

/// Independent oracle for complete domination on rectangles: A dominates B
/// w.r.t. R iff for every corner r of R the farthest point of A from r is
/// still strictly closer than the closest point of B to r. (Derived
/// directly from Definition 2; implemented without the per-dimension
/// decomposition used by OptimalDominates.)
bool OracleDominates(const Rect& a, const Rect& b, const Rect& r,
                     const LpNorm& norm) {
  for (const Point& corner : r.Corners()) {
    if (norm.MaxDist(a, corner) >= norm.MinDist(b, corner)) return false;
  }
  return true;
}

TEST(MinMaxDominatesTest, ClearSeparation) {
  // A close to R, B far away.
  Rect r = MakeRect(0.0, 0.0, 1.0, 1.0);
  Rect a = MakeRect(1.5, 0.0, 2.0, 1.0);
  Rect b = MakeRect(8.0, 0.0, 9.0, 1.0);
  EXPECT_TRUE(MinMaxDominates(a, b, r));
  EXPECT_FALSE(MinMaxDominates(b, a, r));
}

TEST(MinMaxDominatesTest, OverlappingNeverDominates) {
  Rect r = MakeRect(0.0, 0.0, 1.0, 1.0);
  Rect a = MakeRect(1.0, 0.0, 3.0, 1.0);
  Rect b = MakeRect(2.0, 0.0, 4.0, 1.0);
  EXPECT_FALSE(MinMaxDominates(a, b, r));
  EXPECT_FALSE(MinMaxDominates(b, a, r));
}

TEST(OptimalDominatesTest, DetectsCasesMinMaxMisses) {
  // The classic configuration from Emrich et al.: A and B on opposite
  // sides of a *small* R. MinMax fails because MaxDist(A,R) >
  // MinDist(B,R) when measured against the whole of R, but for every
  // individual position of r, A is closer.
  Rect r = MakeRect(0.0, 0.0, 0.2, 2.0);    // tall thin reference
  Rect a = MakeRect(0.5, 0.9, 0.7, 1.1);    // hugging R's right side
  Rect b = MakeRect(3.0, 0.0, 3.2, 2.0);    // far right
  ASSERT_TRUE(OracleDominates(a, b, r, LpNorm::Euclidean()));
  EXPECT_TRUE(OptimalDominates(a, b, r));
}

TEST(OptimalDominatesTest, MatchesPaperFigure1Shape) {
  // Figure 1: A near R, B further out; A dominates B with high
  // probability but regions are arranged so complete domination holds.
  Rect r = MakeRect(0.0, 0.0, 1.0, 1.0);
  Rect a = MakeRect(1.2, 0.2, 1.8, 0.8);
  Rect b = MakeRect(5.0, 3.0, 6.0, 4.0);
  EXPECT_TRUE(OptimalDominates(a, b, r));
  EXPECT_FALSE(OptimalDominates(b, a, r));
}

TEST(OptimalDominatesTest, PointObjects) {
  // Certain (point) objects: domination is a plain distance comparison.
  Rect r = Rect::FromPoint(Point{0.0, 0.0});
  Rect a = Rect::FromPoint(Point{1.0, 0.0});
  Rect b = Rect::FromPoint(Point{2.0, 0.0});
  EXPECT_TRUE(OptimalDominates(a, b, r));
  EXPECT_FALSE(OptimalDominates(b, a, r));
  // Equal distance: strictly-closer fails both ways.
  Rect c = Rect::FromPoint(Point{0.0, 1.0});
  EXPECT_FALSE(OptimalDominates(a, c, r));
  EXPECT_FALSE(OptimalDominates(c, a, r));
}

TEST(OptimalDominatesTest, SelfDominationNeverHolds) {
  Rect r = MakeRect(0.0, 0.0, 1.0, 1.0);
  Rect a = MakeRect(2.0, 2.0, 3.0, 3.0);
  EXPECT_FALSE(OptimalDominates(a, a, r));
}

TEST(ClassifyDominationTest, ThreeWayOutcomes) {
  Rect r = MakeRect(0.0, 0.0, 1.0, 1.0);
  Rect near = MakeRect(1.5, 0.0, 2.0, 1.0);
  Rect far = MakeRect(9.0, 0.0, 10.0, 1.0);
  Rect overlap = MakeRect(1.8, 0.0, 9.5, 1.0);
  EXPECT_EQ(ClassifyDomination(near, far, r, DominationCriterion::kOptimal),
            DominationClass::kDominates);
  EXPECT_EQ(ClassifyDomination(far, near, r, DominationCriterion::kOptimal),
            DominationClass::kDominated);
  EXPECT_EQ(
      ClassifyDomination(near, overlap, r, DominationCriterion::kOptimal),
      DominationClass::kUndecided);
}

TEST(DominatesDispatchTest, MatchesUnderlyingCriteria) {
  Rng rng(71);
  for (int trial = 0; trial < 100; ++trial) {
    Rect r = MakeRect(rng.Uniform(0, 1), rng.Uniform(0, 1),
                      rng.Uniform(1, 2), rng.Uniform(1, 2));
    Rect a = MakeRect(rng.Uniform(0, 4), rng.Uniform(0, 4),
                      rng.Uniform(4, 6), rng.Uniform(4, 6));
    Rect b = MakeRect(rng.Uniform(0, 4), rng.Uniform(0, 4),
                      rng.Uniform(4, 6), rng.Uniform(4, 6));
    EXPECT_EQ(Dominates(a, b, r, DominationCriterion::kMinMax),
              MinMaxDominates(a, b, r));
    EXPECT_EQ(Dominates(a, b, r, DominationCriterion::kOptimal),
              OptimalDominates(a, b, r));
  }
}

// Property sweeps over random rectangle configurations and norms.
class DominationPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  LpNorm norm() const { return LpNorm(GetParam()); }

  Rect RandomRect(Rng& rng, double span) {
    const double x0 = rng.Uniform(0, span);
    const double y0 = rng.Uniform(0, span);
    return MakeRect(x0, y0, x0 + rng.Uniform(0, 1.0), y0 + rng.Uniform(0, 1.0));
  }
};

TEST_P(DominationPropertyTest, OptimalAgreesWithCornerOracle) {
  Rng rng(300 + GetParam());
  int dominated = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    Rect r = RandomRect(rng, 3.0);
    Rect a = RandomRect(rng, 3.0);
    Rect b = RandomRect(rng, 3.0);
    const bool expect = OracleDominates(a, b, r, norm());
    EXPECT_EQ(OptimalDominates(a, b, r, norm()), expect)
        << "A=" << a.ToString() << " B=" << b.ToString()
        << " R=" << r.ToString();
    dominated += expect;
  }
  EXPECT_GT(dominated, 0);  // the sweep must exercise both outcomes
}

TEST_P(DominationPropertyTest, MinMaxImpliesOptimal) {
  Rng rng(400 + GetParam());
  int minmax_hits = 0, optimal_hits = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    Rect r = RandomRect(rng, 2.0);
    Rect a = RandomRect(rng, 4.0);
    Rect b = RandomRect(rng, 4.0);
    const bool mm = MinMaxDominates(a, b, r, norm());
    const bool opt = OptimalDominates(a, b, r, norm());
    if (mm) {
      EXPECT_TRUE(opt) << "MinMax fired but Optimal did not";
    }
    minmax_hits += mm;
    optimal_hits += opt;
  }
  // Optimal must be strictly more powerful on this sweep (the ~20% gain
  // of Figure 6(a) comes from such cases).
  EXPECT_GT(optimal_hits, minmax_hits);
}

TEST_P(DominationPropertyTest, DominationIsSoundOnSampledWorlds) {
  Rng rng(500 + GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    Rect r = RandomRect(rng, 2.0);
    Rect a = RandomRect(rng, 4.0);
    Rect b = RandomRect(rng, 4.0);
    if (!OptimalDominates(a, b, r, norm())) continue;
    for (int s = 0; s < 50; ++s) {
      Point pa(2), pb(2), pr(2);
      for (size_t i = 0; i < 2; ++i) {
        pa[i] = rng.Uniform(a.side(i).lo(), a.side(i).hi());
        pb[i] = rng.Uniform(b.side(i).lo(), b.side(i).hi());
        pr[i] = rng.Uniform(r.side(i).lo(), r.side(i).hi());
      }
      EXPECT_LT(norm().Dist(pa, pr), norm().Dist(pb, pr));
    }
  }
}

TEST_P(DominationPropertyTest, Corollary2Duality) {
  // PDom(A,B,R)=1 implies PDom(B,A,R)=0: if A completely dominates B then
  // B cannot dominate A (not even partially, so certainly not completely).
  Rng rng(600 + GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    Rect r = RandomRect(rng, 2.0);
    Rect a = RandomRect(rng, 4.0);
    Rect b = RandomRect(rng, 4.0);
    if (OptimalDominates(a, b, r, norm())) {
      EXPECT_FALSE(OptimalDominates(b, a, r, norm()));
    }
    if (MinMaxDominates(a, b, r, norm())) {
      EXPECT_FALSE(MinMaxDominates(b, a, r, norm()));
    }
  }
}

TEST_P(DominationPropertyTest, ShrinkingPreservesDomination) {
  // Domination is monotone: sub-rectangles of A, B, R preserve a complete
  // domination verdict (the refinement loop depends on this).
  Rng rng(700 + GetParam());
  for (int trial = 0; trial < 1000; ++trial) {
    Rect r = RandomRect(rng, 2.0);
    Rect a = RandomRect(rng, 3.0);
    Rect b = RandomRect(rng, 3.0);
    if (!OptimalDominates(a, b, r, norm())) continue;
    auto shrink = [&rng](const Rect& x) {
      std::vector<Interval> sides;
      for (size_t i = 0; i < x.dim(); ++i) {
        const double lo = rng.Uniform(x.side(i).lo(), x.side(i).mid());
        const double hi = rng.Uniform(x.side(i).mid(), x.side(i).hi());
        sides.emplace_back(lo, hi);
      }
      return Rect(sides);
    };
    EXPECT_TRUE(OptimalDominates(shrink(a), shrink(b), shrink(r), norm()));
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, DominationPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace updb
