// Verifies the flat-buffer UGF's zero-allocation contract: once the
// workspace has been grown to its high-water mark and rewound with
// Reset(), replaying a factor sequence of the same (or smaller) size calls
// the allocator exactly zero times. This is the property that lets the
// IDCA refinement loop reuse one workspace across every (B', R')
// partition pair without touching the heap.
//
// The global operator new/delete overrides below count every allocation in
// the process, which is why this test lives in its own binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/random.h"
#include "gf/ugf.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace updb {
namespace {

/// Replays `factors` into the workspace and returns the number of heap
/// allocations the replay performed.
size_t AllocationsDuringReplay(UncertainGeneratingFunction& ugf,
                               const std::vector<ProbabilityBounds>& factors) {
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  for (const ProbabilityBounds& f : factors) ugf.Multiply(f);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

std::vector<ProbabilityBounds> RandomFactors(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ProbabilityBounds> factors;
  factors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double kind = rng.NextDouble();
    if (kind < 0.15) {
      factors.push_back(ProbabilityBounds{0.0, 0.0});
    } else if (kind < 0.3) {
      factors.push_back(ProbabilityBounds{1.0, 1.0});
    } else {
      const double lb = rng.NextDouble();
      factors.push_back(
          ProbabilityBounds{lb, lb + (1.0 - lb) * rng.NextDouble()});
    }
  }
  return factors;
}

TEST(UgfAllocTest, UntruncatedMultiplyIsAllocationFreeOnReuse) {
  const std::vector<ProbabilityBounds> factors = RandomFactors(96, 211);
  UncertainGeneratingFunction ugf;
  // Warm-up pass: grows the workspace to its high-water mark.
  for (const ProbabilityBounds& f : factors) ugf.Multiply(f);
  ugf.Reset();
  EXPECT_EQ(AllocationsDuringReplay(ugf, factors), 0u);
  // And again — Reset() itself must not shrink anything.
  ugf.Reset();
  EXPECT_EQ(AllocationsDuringReplay(ugf, factors), 0u);
}

TEST(UgfAllocTest, TruncatedMultiplyIsAllocationFreeOnReuse) {
  const std::vector<ProbabilityBounds> factors = RandomFactors(96, 223);
  for (size_t k : {size_t{1}, size_t{3}, size_t{9}}) {
    UncertainGeneratingFunction ugf(k);
    for (const ProbabilityBounds& f : factors) ugf.Multiply(f);
    ugf.Reset();
    EXPECT_EQ(AllocationsDuringReplay(ugf, factors), 0u) << "k=" << k;
  }
}

TEST(UgfAllocTest, SmallerReplayAfterLargeWarmupIsAllocationFree) {
  const std::vector<ProbabilityBounds> big = RandomFactors(120, 227);
  const std::vector<ProbabilityBounds> small = RandomFactors(40, 229);
  UncertainGeneratingFunction ugf;
  for (const ProbabilityBounds& f : big) ugf.Multiply(f);
  ugf.Reset();
  EXPECT_EQ(AllocationsDuringReplay(ugf, small), 0u);
}

}  // namespace
}  // namespace updb
