// Verifies the UGF engines' zero-allocation contract: once a workspace has
// been grown to its high-water mark and rewound with Reset()/Begin(),
// replaying a factor sequence of the same (or smaller) size calls the
// allocator exactly zero times. This is the property that lets the IDCA
// refinement loop reuse one workspace across every (B', R') partition pair
// without touching the heap. Also verifies the 32-byte alignment the
// AVX2 kernels rely on for their aligned accumulator spills.
//
// The global operator new/delete overrides below count every allocation in
// the process — including the aligned overloads gf::AlignedVec uses —
// which is why this test lives in its own binary.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/random.h"
#include "gf/aligned_vec.h"
#include "gf/ugf.h"
#include "gf/ugf_batch.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const size_t a = static_cast<size_t>(align);
  const size_t rounded = (size + a - 1) & ~(a - 1);  // aligned_alloc demands
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new[](size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace updb {
namespace {

/// Replays `factors` into the workspace and returns the number of heap
/// allocations the replay performed.
size_t AllocationsDuringReplay(UncertainGeneratingFunction& ugf,
                               const std::vector<ProbabilityBounds>& factors) {
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  for (const ProbabilityBounds& f : factors) ugf.Multiply(f);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

std::vector<ProbabilityBounds> RandomFactors(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ProbabilityBounds> factors;
  factors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double kind = rng.NextDouble();
    if (kind < 0.15) {
      factors.push_back(ProbabilityBounds{0.0, 0.0});
    } else if (kind < 0.3) {
      factors.push_back(ProbabilityBounds{1.0, 1.0});
    } else {
      const double lb = rng.NextDouble();
      factors.push_back(
          ProbabilityBounds{lb, lb + (1.0 - lb) * rng.NextDouble()});
    }
  }
  return factors;
}

TEST(UgfAllocTest, UntruncatedMultiplyIsAllocationFreeOnReuse) {
  const std::vector<ProbabilityBounds> factors = RandomFactors(96, 211);
  UncertainGeneratingFunction ugf;
  // Warm-up pass: grows the workspace to its high-water mark.
  for (const ProbabilityBounds& f : factors) ugf.Multiply(f);
  ugf.Reset();
  EXPECT_EQ(AllocationsDuringReplay(ugf, factors), 0u);
  // And again — Reset() itself must not shrink anything.
  ugf.Reset();
  EXPECT_EQ(AllocationsDuringReplay(ugf, factors), 0u);
}

TEST(UgfAllocTest, TruncatedMultiplyIsAllocationFreeOnReuse) {
  const std::vector<ProbabilityBounds> factors = RandomFactors(96, 223);
  for (size_t k : {size_t{1}, size_t{3}, size_t{9}}) {
    UncertainGeneratingFunction ugf(k);
    for (const ProbabilityBounds& f : factors) ugf.Multiply(f);
    ugf.Reset();
    EXPECT_EQ(AllocationsDuringReplay(ugf, factors), 0u) << "k=" << k;
  }
}

TEST(UgfAllocTest, SmallerReplayAfterLargeWarmupIsAllocationFree) {
  const std::vector<ProbabilityBounds> big = RandomFactors(120, 227);
  const std::vector<ProbabilityBounds> small = RandomFactors(40, 229);
  UncertainGeneratingFunction ugf;
  for (const ProbabilityBounds& f : big) ugf.Multiply(f);
  ugf.Reset();
  EXPECT_EQ(AllocationsDuringReplay(ugf, small), 0u);
}

TEST(UgfAllocTest, BatchReplayIsAllocationFreeOnReuse) {
  // One warmed-up UgfBatch serves every later chunk flush for free: after
  // Begin() the replay — multiplies, bounds finish, lane emission and
  // ProbLessThanAll — must not allocate, truncated or not.
  const std::vector<ProbabilityBounds> factors = RandomFactors(80, 233);
  for (size_t k : {UgfBatch::kNoTruncation, size_t{9}}) {
    UgfBatch batch;
    const size_t nr = std::min(k, factors.size() + 1);
    CountDistributionBounds out = CountDistributionBounds::Zero(nr);
    auto replay = [&] {
      batch.Begin(k, UgfBatch::kLanes);
      for (const ProbabilityBounds& f : factors) {
        double lb4[UgfBatch::kLanes];
        double ub4[UgfBatch::kLanes];
        for (size_t l = 0; l < UgfBatch::kLanes; ++l) {
          lb4[l] = f.lb;
          ub4[l] = f.ub;
        }
        batch.MultiplyFactors(lb4, ub4);
      }
      batch.FinishBounds();
      for (size_t l = 0; l < UgfBatch::kLanes; ++l) {
        batch.EmitBounds(l, &out);
      }
      ProbabilityBounds lt[UgfBatch::kLanes];
      batch.ProbLessThanAll(1, lt);
    };
    // Warm-up passes: the first grows the double buffers to their
    // high-water marks, the second lets Begin() equalize their capacities
    // (the trailing swap leaves the scratch buffer one growth step behind).
    replay();
    replay();
    const size_t before = g_allocations.load(std::memory_order_relaxed);
    replay();
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << "k=" << k;
  }
}

TEST(UgfAllocTest, WorkspacesAre32ByteAligned) {
  // The AVX2 kernels spill their accumulator vector with an aligned store;
  // every coefficient workspace (gf::AlignedVec) must start on a 32-byte
  // boundary, across fresh allocations, growth and swaps.
  gf::AlignedVec v;
  for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
    v.resize(n, 0.0);
    ASSERT_NE(v.data(), nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 32, 0u) << "n=" << n;
  }
  gf::AlignedVec w;
  w.assign(129, 0.5);
  v.swap(w);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(w.data()) % 32, 0u);
}

}  // namespace
}  // namespace updb
