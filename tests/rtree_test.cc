#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "uncertain/database.h"

namespace updb {
namespace {

std::vector<RTreeEntry> RandomEntries(size_t n, Rng& rng,
                                      double max_extent = 0.05) {
  std::vector<RTreeEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point center{rng.NextDouble(), rng.NextDouble()};
    const double ex = rng.Uniform(0, max_extent);
    const double ey = rng.Uniform(0, max_extent);
    entries.push_back(RTreeEntry{
        Rect::Centered(center, {ex / 2, ey / 2}), static_cast<ObjectId>(i)});
  }
  return entries;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeIntersect(Rect(Point{0.0, 0.0}, Point{1.0, 1.0}))
                  .empty());
  EXPECT_TRUE(
      tree.KnnByMinDist(Rect(Point{0.0, 0.0}, Point{1.0, 1.0}), 3).empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree({RTreeEntry{Rect(Point{0.4, 0.4}, Point{0.6, 0.6}), 7}});
  EXPECT_EQ(tree.size(), 1u);
  const auto hits = tree.RangeIntersect(Rect(Point{0.0, 0.0}, Point{0.5, 0.5}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
  EXPECT_TRUE(
      tree.RangeIntersect(Rect(Point{0.7, 0.7}, Point{1.0, 1.0})).empty());
}

TEST(RTreeTest, RangeMatchesBruteForce) {
  Rng rng(111);
  const auto entries = RandomEntries(500, rng);
  RTree tree(entries);
  for (int trial = 0; trial < 50; ++trial) {
    const Point lo{rng.NextDouble(), rng.NextDouble()};
    const Rect query = Rect::Centered(
        Point{lo[0], lo[1]}, {rng.Uniform(0, 0.2), rng.Uniform(0, 0.2)});
    std::vector<ObjectId> expected;
    for (const auto& e : entries) {
      if (e.mbr.Intersects(query)) expected.push_back(e.id);
    }
    std::vector<ObjectId> actual = tree.RangeIntersect(query);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "trial=" << trial;
  }
}

TEST(RTreeTest, KnnMatchesBruteForce) {
  Rng rng(113);
  const auto entries = RandomEntries(400, rng);
  RTree tree(entries);
  const LpNorm norm;
  for (int trial = 0; trial < 30; ++trial) {
    const Rect query = Rect::Centered(
        Point{rng.NextDouble(), rng.NextDouble()}, {0.01, 0.01});
    std::vector<std::pair<double, ObjectId>> expected;
    for (const auto& e : entries) {
      expected.emplace_back(norm.MinDist(e.mbr, query), e.id);
    }
    std::sort(expected.begin(), expected.end());
    const size_t k = 1 + rng.NextBounded(20);
    const auto actual = tree.KnnByMinDist(query, k, norm);
    ASSERT_EQ(actual.size(), k);
    for (size_t i = 0; i < k; ++i) {
      // Compare distances, not ids (ties can reorder equal-distance hits).
      EXPECT_NEAR(norm.MinDist(actual[i].mbr, query), expected[i].first,
                  1e-12)
          << "trial=" << trial << " i=" << i;
    }
  }
}

TEST(RTreeTest, ScanByMinDistIsMonotone) {
  Rng rng(117);
  const auto entries = RandomEntries(300, rng);
  RTree tree(entries);
  const Rect query = Rect::Centered(Point{0.5, 0.5}, {0.0, 0.0});
  double last = -1.0;
  size_t count = 0;
  tree.ScanByMinDist(query, [&](const RTreeEntry&, double dist) {
    EXPECT_GE(dist, last - 1e-12);
    last = dist;
    ++count;
    return true;
  });
  EXPECT_EQ(count, entries.size());
}

TEST(RTreeTest, ScanStopsOnFalse) {
  Rng rng(119);
  const auto entries = RandomEntries(100, rng);
  RTree tree(entries);
  size_t count = 0;
  tree.ScanByMinDist(Rect::Centered(Point{0.5, 0.5}, {0.0, 0.0}),
                     [&count](const RTreeEntry&, double) {
                       ++count;
                       return count < 5;
                     });
  EXPECT_EQ(count, 5u);
}

TEST(RTreeTest, ForEachIntersectingEarlyStop) {
  Rng rng(121);
  const auto entries = RandomEntries(200, rng, 0.5);
  RTree tree(entries);
  size_t count = 0;
  tree.ForEachIntersecting(Rect(Point{0.0, 0.0}, Point{1.0, 1.0}),
                           [&count](const RTreeEntry&) {
                             ++count;
                             return false;
                           });
  EXPECT_EQ(count, 1u);
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  Rng rng(123);
  RTree small(RandomEntries(10, rng), 16);
  EXPECT_EQ(small.height(), 1u);
  RTree medium(RandomEntries(200, rng), 16);
  EXPECT_EQ(medium.height(), 2u);
  // 5000 entries -> 313 leaves -> 20 -> 2 -> 1: four levels.
  RTree large(RandomEntries(5000, rng), 16);
  EXPECT_EQ(large.height(), 4u);
}

TEST(RTreeTest, SmallLeafCapacity) {
  Rng rng(127);
  const auto entries = RandomEntries(64, rng);
  RTree tree(entries, 2);
  // All entries reachable.
  Rect everything(Point{-1.0, -1.0}, Point{2.0, 2.0});
  EXPECT_EQ(tree.RangeIntersect(everything).size(), 64u);
}

TEST(RTreeTest, EntryCountAndValidate) {
  Rng rng(133);
  EXPECT_TRUE(RTree({}).Validate());
  for (size_t n : {1u, 7u, 64u, 500u}) {
    RTree tree(RandomEntries(n, rng), 4);
    EXPECT_EQ(tree.entry_count(), n);
    EXPECT_EQ(tree.entry_count(), tree.size());
    EXPECT_TRUE(tree.Validate()) << "n=" << n;
  }
}

// Classification traversal over degenerate geometry: zero-area (point)
// MBRs and duplicate entries. Previously only exercised indirectly via the
// service filters; the store's overlay maintenance leans on this surface.

TEST(RTreeTest, TraverseZeroAreaMbrs) {
  // All entries are points; several coincide exactly.
  std::vector<RTreeEntry> entries;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.1 * static_cast<double>(i % 5);
    const double y = 0.1 * static_cast<double>(i / 5);
    entries.push_back(
        RTreeEntry{Rect::FromPoint(Point{x, y}), static_cast<ObjectId>(i)});
  }
  RTree tree(entries, 4);
  EXPECT_TRUE(tree.Validate());

  // Classify by containment in [0, 0.25]^2: point MBRs are either fully
  // inside (kTakeAll) or fully outside (kSkip) — never undecided.
  const Rect region(Point{0.0, 0.0}, Point{0.25, 0.25});
  std::vector<ObjectId> taken;
  tree.Traverse(
      [&region](const Rect& mbr) {
        if (region.Contains(mbr)) return RTree::VisitDecision::kTakeAll;
        if (!region.Intersects(mbr)) return RTree::VisitDecision::kSkip;
        return RTree::VisitDecision::kDescend;
      },
      [&taken](const RTreeEntry& e, RTree::VisitDecision decision) {
        EXPECT_EQ(decision, RTree::VisitDecision::kTakeAll);
        taken.push_back(e.id);
      });
  std::sort(taken.begin(), taken.end());
  std::vector<ObjectId> expected;
  for (const RTreeEntry& e : entries) {
    if (region.Contains(e.mbr)) expected.push_back(e.id);
  }
  EXPECT_EQ(taken, expected);
  EXPECT_FALSE(taken.empty());
}

TEST(RTreeTest, TraverseDuplicateEntriesAllEmitted) {
  // The same zero-area rect indexed under many distinct ids, plus one
  // far-away entry that must be pruned as a subtree.
  std::vector<RTreeEntry> entries;
  const Rect dup = Rect::FromPoint(Point{0.5, 0.5});
  for (ObjectId id = 0; id < 9; ++id) entries.push_back(RTreeEntry{dup, id});
  entries.push_back(RTreeEntry{Rect::FromPoint(Point{10.0, 10.0}), 9});
  RTree tree(entries, 3);
  EXPECT_TRUE(tree.Validate());

  const Rect region(Point{0.4, 0.4}, Point{0.6, 0.6});
  size_t emitted = 0;
  size_t classified_nodes = 0;
  tree.Traverse(
      [&](const Rect& mbr) {
        ++classified_nodes;
        if (region.Contains(mbr)) return RTree::VisitDecision::kTakeAll;
        if (!region.Intersects(mbr)) return RTree::VisitDecision::kSkip;
        return RTree::VisitDecision::kDescend;
      },
      [&emitted](const RTreeEntry& e, RTree::VisitDecision) {
        EXPECT_EQ(e.mbr, Rect::FromPoint(Point{0.5, 0.5}));
        ++emitted;
      });
  // Every duplicate is reported individually; the far entry is pruned.
  EXPECT_EQ(emitted, 9u);
  EXPECT_GE(classified_nodes, 1u);

  // A scan query at the duplicate point sees all nine at distance zero.
  size_t zero_dist = 0;
  tree.ScanByMinDist(Rect::FromPoint(Point{0.5, 0.5}),
                     [&zero_dist](const RTreeEntry&, double dist) {
                       if (dist == 0.0) ++zero_dist;
                       return true;
                     });
  EXPECT_EQ(zero_dist, 9u);
}

TEST(RTreeTest, TraverseDescendOnUndecidedEntries) {
  // Mixed extents around a region boundary: entries straddling the region
  // must surface as individually-undecided (kDescend) emissions.
  Rng rng(137);
  const auto entries = RandomEntries(120, rng, 0.3);
  RTree tree(entries, 4);
  const Rect region(Point{0.25, 0.25}, Point{0.75, 0.75});
  size_t take_all = 0, undecided = 0;
  tree.Traverse(
      [&region](const Rect& mbr) {
        if (region.Contains(mbr)) return RTree::VisitDecision::kTakeAll;
        if (!region.Intersects(mbr)) return RTree::VisitDecision::kSkip;
        return RTree::VisitDecision::kDescend;
      },
      [&](const RTreeEntry& e, RTree::VisitDecision decision) {
        if (decision == RTree::VisitDecision::kTakeAll) {
          EXPECT_TRUE(region.Contains(e.mbr));
          ++take_all;
        } else {
          EXPECT_EQ(decision, RTree::VisitDecision::kDescend);
          EXPECT_TRUE(region.Intersects(e.mbr));
          EXPECT_FALSE(region.Contains(e.mbr));
          ++undecided;
        }
      });
  size_t expected_in_or_straddling = 0;
  for (const RTreeEntry& e : entries) {
    if (region.Intersects(e.mbr)) ++expected_in_or_straddling;
  }
  EXPECT_EQ(take_all + undecided, expected_in_or_straddling);
  EXPECT_GT(take_all, 0u);
  EXPECT_GT(undecided, 0u);
}

TEST(RTreeTest, BuildFromObjects) {
  UncertainDatabase db;
  Rng rng(131);
  for (int i = 0; i < 50; ++i) {
    db.Add(std::make_shared<UniformPdf>(Rect::Centered(
        Point{rng.NextDouble(), rng.NextDouble()}, {0.01, 0.01})));
  }
  RTree tree = BuildRTree(db.objects());
  EXPECT_EQ(tree.size(), 50u);
  const auto knn =
      tree.KnnByMinDist(Rect::Centered(Point{0.5, 0.5}, {0.0, 0.0}), 5);
  EXPECT_EQ(knn.size(), 5u);
}

}  // namespace
}  // namespace updb
