#include "gf/count_bounds.h"

#include <gtest/gtest.h>

#include <utility>

#include "common/random.h"
#include "gf/kernels.h"

namespace updb {
namespace {

TEST(CountBoundsTest, VacuousConstruction) {
  CountDistributionBounds b(4);
  EXPECT_EQ(b.num_ranks(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(b.lb(k), 0.0);
    EXPECT_DOUBLE_EQ(b.ub(k), 1.0);
  }
  EXPECT_DOUBLE_EQ(b.TotalUncertainty(), 4.0);
}

TEST(CountBoundsTest, ZeroConstruction) {
  CountDistributionBounds b = CountDistributionBounds::Zero(3);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(b.ub(k), 0.0);
  }
  EXPECT_DOUBLE_EQ(b.TotalUncertainty(), 0.0);
}

TEST(CountBoundsTest, ExactConstruction) {
  CountDistributionBounds b =
      CountDistributionBounds::Exact({0.5, 0.3, 0.2});
  EXPECT_DOUBLE_EQ(b.lb(1), 0.3);
  EXPECT_DOUBLE_EQ(b.ub(1), 0.3);
  EXPECT_DOUBLE_EQ(b.TotalUncertainty(), 0.0);
}

TEST(CountBoundsTest, ProbLessThanExact) {
  CountDistributionBounds b =
      CountDistributionBounds::Exact({0.5, 0.3, 0.2});
  const ProbabilityBounds p = b.ProbLessThan(2);
  EXPECT_NEAR(p.lb, 0.8, 1e-12);
  EXPECT_NEAR(p.ub, 0.8, 1e-12);
  const ProbabilityBounds p0 = b.ProbLessThan(0);
  EXPECT_DOUBLE_EQ(p0.lb, 0.0);
  EXPECT_DOUBLE_EQ(p0.ub, 0.0);
  const ProbabilityBounds pall = b.ProbLessThan(10);
  EXPECT_DOUBLE_EQ(pall.lb, 1.0);
}

TEST(CountBoundsTest, ProbLessThanUsesComplementForTightness) {
  // lb sums are weak (0) but the complement of the upper tail is strong.
  CountDistributionBounds b(3);
  b.Set(0, 0.0, 1.0);
  b.Set(1, 0.0, 1.0);
  b.Set(2, 0.0, 0.1);  // at most 10% of mass at rank 2
  const ProbabilityBounds p = b.ProbLessThan(2);
  EXPECT_NEAR(p.lb, 0.9, 1e-12);
  EXPECT_NEAR(p.ub, 1.0, 1e-12);
}

TEST(CountBoundsTest, ShiftRightEmbedsWindow) {
  CountDistributionBounds b = CountDistributionBounds::Exact({0.4, 0.6});
  const CountDistributionBounds shifted = b.ShiftRight(3, 6);
  EXPECT_EQ(shifted.num_ranks(), 6u);
  for (size_t k : {size_t{0}, size_t{1}, size_t{2}, size_t{5}}) {
    EXPECT_DOUBLE_EQ(shifted.lb(k), 0.0);
    EXPECT_DOUBLE_EQ(shifted.ub(k), 0.0);
  }
  EXPECT_DOUBLE_EQ(shifted.lb(3), 0.4);
  EXPECT_DOUBLE_EQ(shifted.ub(4), 0.6);
}

TEST(CountBoundsTest, AccumulateWeightedMixesBounds) {
  CountDistributionBounds acc = CountDistributionBounds::Zero(2);
  CountDistributionBounds a = CountDistributionBounds::Exact({1.0, 0.0});
  CountDistributionBounds b = CountDistributionBounds::Exact({0.0, 1.0});
  acc.AccumulateWeighted(a, 0.25);
  acc.AccumulateWeighted(b, 0.75);
  EXPECT_DOUBLE_EQ(acc.lb(0), 0.25);
  EXPECT_DOUBLE_EQ(acc.lb(1), 0.75);
  EXPECT_DOUBLE_EQ(acc.TotalUncertainty(), 0.0);
}

TEST(CountBoundsTest, NormalizeRepairsNoise) {
  CountDistributionBounds b(2);
  b.Set(0, 1.0 + 1e-13, 1.0 + 2e-13);
  b.Set(1, 0.5, 0.5 - 1e-13);
  b.Normalize();
  EXPECT_LE(b.lb(0), 1.0);
  EXPECT_LE(b.lb(1), b.ub(1));
}

TEST(CountBoundsTest, ExpectedRankOfExactDistribution) {
  // Ranks are count+1: E = 1*0.5 + 2*0.3 + 3*0.2 = 1.7.
  CountDistributionBounds b =
      CountDistributionBounds::Exact({0.5, 0.3, 0.2});
  const ProbabilityBounds er = b.ExpectedRank();
  EXPECT_NEAR(er.lb, 1.7, 1e-12);
  EXPECT_NEAR(er.ub, 1.7, 1e-12);
}

TEST(CountBoundsTest, ExpectedRankOfVacuousBounds) {
  CountDistributionBounds b(3);
  const ProbabilityBounds er = b.ExpectedRank();
  EXPECT_NEAR(er.lb, 1.0, 1e-12);  // all mass could sit at rank 1
  EXPECT_NEAR(er.ub, 3.0, 1e-12);  // or at rank 3
}

TEST(CountBoundsTest, ExpectedRankRespectsCapacities) {
  CountDistributionBounds b(3);
  b.Set(0, 0.0, 0.25);  // at most a quarter of the mass at rank 1
  b.Set(1, 0.0, 1.0);
  b.Set(2, 0.0, 1.0);
  const ProbabilityBounds er = b.ExpectedRank();
  // Lower bound: 0.25 at rank 1 + 0.75 at rank 2 = 1.75.
  EXPECT_NEAR(er.lb, 1.75, 1e-12);
  EXPECT_NEAR(er.ub, 3.0, 1e-12);
}

TEST(CountBoundsTest, BracketsChecksPerRank) {
  CountDistributionBounds b(2);
  b.Set(0, 0.3, 0.7);
  b.Set(1, 0.3, 0.7);
  const std::vector<double> inside{0.5, 0.5};
  const std::vector<double> outside{0.9, 0.1};
  const std::vector<double> wrong_size{0.5};
  EXPECT_TRUE(b.Brackets(inside, 0.0));
  EXPECT_FALSE(b.Brackets(outside, 0.0));
  EXPECT_FALSE(b.Brackets(wrong_size, 0.0));
  EXPECT_TRUE(b.Brackets(outside, 0.21));  // tolerance widens the check
}

TEST(CountBoundsTest, ProbLessThanBracketsTruthForRandomBounds) {
  Rng rng(97);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + rng.NextBounded(6);
    // A random true PDF plus widened bounds around it.
    std::vector<double> pdf(n);
    double total = 0.0;
    for (double& v : pdf) {
      v = rng.NextDouble();
      total += v;
    }
    CountDistributionBounds b(n);
    for (size_t k = 0; k < n; ++k) {
      pdf[k] /= total;
      const double slack_lo = rng.NextDouble() * pdf[k];
      const double slack_hi = rng.NextDouble() * (1.0 - pdf[k]);
      b.Set(k, pdf[k] - slack_lo, pdf[k] + slack_hi);
    }
    for (size_t m = 0; m <= n; ++m) {
      double truth = 0.0;
      for (size_t x = 0; x < m; ++x) truth += pdf[x];
      const ProbabilityBounds p = b.ProbLessThan(m);
      EXPECT_GE(truth, p.lb - 1e-9) << "m=" << m;
      EXPECT_LE(truth, p.ub + 1e-9) << "m=" << m;
    }
  }
}

TEST(CountBoundsTest, KernelDispatchParityOnReductions) {
  // ProbLessThan and AccumulateWeighted route through the gf kernel table;
  // the scalar and vector tables must produce identical bits on both.
  if (!gf::VectorKernelsAvailable()) GTEST_SKIP() << "no vector kernels";
  const bool was_scalar = &gf::ActiveKernels() == &gf::ScalarKernels();
  Rng rng(1117);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.NextBounded(40);
    CountDistributionBounds base(n);
    CountDistributionBounds delta(n);
    for (size_t k = 0; k < n; ++k) {
      const double p = rng.NextDouble();
      base.Set(k, p * rng.NextDouble(), p);
      const double q = rng.NextDouble();
      delta.Set(k, q * rng.NextDouble(), q);
    }
    const double w = rng.NextDouble();
    const size_t m = rng.NextBounded(n + 1);
    auto eval = [&](bool scalar) {
      gf::ForceScalarKernels(scalar);
      CountDistributionBounds acc = base;
      acc.AccumulateWeighted(delta, w);
      return std::pair<ProbabilityBounds, CountDistributionBounds>(
          acc.ProbLessThan(m), acc);
    };
    const auto s = eval(true);
    const auto v = eval(false);
    ASSERT_EQ(s.first.lb, v.first.lb) << "m=" << m;
    ASSERT_EQ(s.first.ub, v.first.ub) << "m=" << m;
    for (size_t k = 0; k < n; ++k) {
      ASSERT_EQ(s.second.lb(k), v.second.lb(k)) << "k=" << k;
      ASSERT_EQ(s.second.ub(k), v.second.ub(k)) << "k=" << k;
    }
  }
  gf::ForceScalarKernels(was_scalar);
}

}  // namespace
}  // namespace updb
