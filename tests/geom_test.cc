#include <gtest/gtest.h>

#include "geom/interval.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace updb {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
  p[1] = 5.0;
  EXPECT_DOUBLE_EQ(p[1], 5.0);
}

TEST(PointTest, ZeroConstruction) {
  Point p(4);
  EXPECT_EQ(p.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p[i], 0.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_NE((Point{1.0, 2.0}), (Point{1.0, 2.1}));
}

TEST(IntervalTest, BasicProperties) {
  Interval i(1.0, 3.0);
  EXPECT_DOUBLE_EQ(i.lo(), 1.0);
  EXPECT_DOUBLE_EQ(i.hi(), 3.0);
  EXPECT_DOUBLE_EQ(i.length(), 2.0);
  EXPECT_DOUBLE_EQ(i.mid(), 2.0);
  EXPECT_FALSE(i.degenerate());
  EXPECT_TRUE(Interval::FromPoint(2.0).degenerate());
}

TEST(IntervalTest, Contains) {
  Interval i(0.0, 1.0);
  EXPECT_TRUE(i.Contains(0.0));
  EXPECT_TRUE(i.Contains(0.5));
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_FALSE(i.Contains(-0.1));
  EXPECT_FALSE(i.Contains(1.1));
  EXPECT_TRUE(i.Contains(Interval(0.2, 0.8)));
  EXPECT_FALSE(i.Contains(Interval(0.2, 1.2)));
}

TEST(IntervalTest, Intersects) {
  EXPECT_TRUE(Interval(0, 1).Intersects(Interval(1, 2)));  // touching counts
  EXPECT_TRUE(Interval(0, 2).Intersects(Interval(1, 3)));
  EXPECT_FALSE(Interval(0, 1).Intersects(Interval(1.5, 2)));
}

TEST(IntervalTest, MinMaxDistToScalar) {
  Interval i(2.0, 5.0);
  EXPECT_DOUBLE_EQ(i.MinDist(1.0), 1.0);
  EXPECT_DOUBLE_EQ(i.MinDist(3.0), 0.0);
  EXPECT_DOUBLE_EQ(i.MinDist(7.0), 2.0);
  EXPECT_DOUBLE_EQ(i.MaxDist(1.0), 4.0);
  EXPECT_DOUBLE_EQ(i.MaxDist(3.0), 2.0);
  EXPECT_DOUBLE_EQ(i.MaxDist(7.0), 5.0);
  EXPECT_DOUBLE_EQ(i.MaxDist(3.5), 1.5);
}

TEST(IntervalTest, MinMaxDistToInterval) {
  Interval a(0.0, 1.0);
  Interval b(3.0, 5.0);
  EXPECT_DOUBLE_EQ(a.MinDist(b), 2.0);
  EXPECT_DOUBLE_EQ(b.MinDist(a), 2.0);
  EXPECT_DOUBLE_EQ(a.MaxDist(b), 5.0);
  EXPECT_DOUBLE_EQ(a.MinDist(Interval(0.5, 2.0)), 0.0);
}

TEST(IntervalTest, SplitAt) {
  auto [lo, hi] = Interval(0.0, 4.0).SplitAt(1.0);
  EXPECT_EQ(lo, Interval(0.0, 1.0));
  EXPECT_EQ(hi, Interval(1.0, 4.0));
}

TEST(IntervalTest, HullAndClamp) {
  EXPECT_EQ(Interval::Hull(Interval(0, 1), Interval(3, 4)), Interval(0, 4));
  EXPECT_EQ(Interval::Hull(Interval(0, 5), Interval(1, 2)), Interval(0, 5));
  EXPECT_DOUBLE_EQ(Interval(0, 1).Clamp(2.0), 1.0);
  EXPECT_DOUBLE_EQ(Interval(0, 1).Clamp(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(Interval(0, 1).Clamp(0.4), 0.4);
}

TEST(RectTest, CornerConstruction) {
  Rect r(Point{1.0, 5.0}, Point{3.0, 2.0});
  EXPECT_EQ(r.side(0), Interval(1.0, 3.0));
  EXPECT_EQ(r.side(1), Interval(2.0, 5.0));  // min/max swapped per dim
}

TEST(RectTest, CenteredConstruction) {
  Rect r = Rect::Centered(Point{1.0, 2.0}, {0.5, 1.0});
  EXPECT_EQ(r.side(0), Interval(0.5, 1.5));
  EXPECT_EQ(r.side(1), Interval(1.0, 3.0));
  EXPECT_EQ(r.Center(), (Point{1.0, 2.0}));
}

TEST(RectTest, FromPointIsDegenerate) {
  Rect r = Rect::FromPoint(Point{1.0, 2.0});
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);
  EXPECT_TRUE(r.Contains(Point{1.0, 2.0}));
  EXPECT_FALSE(r.Contains(Point{1.0, 2.1}));
}

TEST(RectTest, VolumeAndLongestSide) {
  Rect r(Point{0.0, 0.0, 0.0}, Point{2.0, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(r.Volume(), 6.0);
  EXPECT_EQ(r.LongestSide(), 1u);
}

TEST(RectTest, ContainsAndIntersects) {
  Rect a(Point{0.0, 0.0}, Point{2.0, 2.0});
  Rect b(Point{0.5, 0.5}, Point{1.5, 1.5});
  Rect c(Point{3.0, 3.0}, Point{4.0, 4.0});
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  // Touching boundary intersects.
  Rect d(Point{2.0, 0.0}, Point{3.0, 2.0});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(RectTest, SplitProducesHalves) {
  Rect r(Point{0.0, 0.0}, Point{2.0, 2.0});
  auto [lo, hi] = r.Split(0, 0.5);
  EXPECT_EQ(lo.side(0), Interval(0.0, 0.5));
  EXPECT_EQ(hi.side(0), Interval(0.5, 2.0));
  EXPECT_EQ(lo.side(1), r.side(1));
  EXPECT_EQ(hi.side(1), r.side(1));
  EXPECT_DOUBLE_EQ(lo.Volume() + hi.Volume(), r.Volume());
}

TEST(RectTest, Hull) {
  Rect a(Point{0.0, 0.0}, Point{1.0, 1.0});
  Rect b(Point{2.0, -1.0}, Point{3.0, 0.5});
  Rect h = Rect::Hull(a, b);
  EXPECT_EQ(h.side(0), Interval(0.0, 3.0));
  EXPECT_EQ(h.side(1), Interval(-1.0, 1.0));
  EXPECT_TRUE(h.Contains(a));
  EXPECT_TRUE(h.Contains(b));
}

TEST(RectTest, CornersEnumerateAll) {
  Rect r(Point{0.0, 0.0}, Point{1.0, 2.0});
  std::vector<Point> corners = r.Corners();
  ASSERT_EQ(corners.size(), 4u);
  for (const Point& c : corners) EXPECT_TRUE(r.Contains(c));
  // All corners distinct.
  for (size_t i = 0; i < corners.size(); ++i) {
    for (size_t j = i + 1; j < corners.size(); ++j) {
      EXPECT_NE(corners[i], corners[j]);
    }
  }
}

TEST(RectTest, CenterLowerUpper) {
  Rect r(Point{0.0, 2.0}, Point{4.0, 6.0});
  EXPECT_EQ(r.Center(), (Point{2.0, 4.0}));
  EXPECT_EQ(r.LowerCorner(), (Point{0.0, 2.0}));
  EXPECT_EQ(r.UpperCorner(), (Point{4.0, 6.0}));
}

TEST(RectTest, ToStringIsReadable) {
  Rect r(Point{0.0}, Point{1.0});
  EXPECT_NE(r.ToString().find("["), std::string::npos);
  EXPECT_NE(Point({1.0, 2.0}).ToString().find("("), std::string::npos);
}

}  // namespace
}  // namespace updb
