#include "queries/queries.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mc/monte_carlo.h"
#include "workload/generators.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

std::shared_ptr<DiscreteSamplePdf> PointObject(double x, double y) {
  return std::make_shared<DiscreteSamplePdf>(std::vector<Point>{Point{x, y}});
}

struct Fixture {
  UncertainDatabase db;
  RTree index{std::vector<RTreeEntry>{}};

  explicit Fixture(const SyntheticConfig& cfg)
      : db(MakeSyntheticDatabase(cfg)), index(BuildRTree(db.objects())) {}
};

TEST(KnnQueryTest, CertainLineDatabase) {
  UncertainDatabase db;
  for (int i = 1; i <= 10; ++i) {
    db.Add(PointObject(static_cast<double>(i), 0.0));
  }
  RTree index = BuildRTree(db.objects());
  const auto q = PointObject(0.0, 0.0);
  const auto results =
      ProbabilisticThresholdKnn(db, index, *q, 3, 0.5);
  // Exactly objects at x=1,2,3 qualify with probability 1.
  std::vector<ObjectId> qualified;
  for (const auto& r : results) {
    if (r.decision == PredicateDecision::kTrue) qualified.push_back(r.id);
  }
  std::sort(qualified.begin(), qualified.end());
  EXPECT_EQ(qualified, (std::vector<ObjectId>{0, 1, 2}));
  for (const auto& r : results) {
    EXPECT_NE(r.decision, PredicateDecision::kUndecided);
  }
}

TEST(KnnQueryTest, AgreesWithMonteCarloOnDiscreteData) {
  SyntheticConfig cfg;
  cfg.num_objects = 60;
  cfg.max_extent = 0.05;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 24;
  Fixture f(cfg);
  Rng rng(21);
  const auto q = MakeQueryObject(Point{0.5, 0.5}, 0.05, ObjectModel::kDiscrete,
                                 24, rng);
  const size_t k = 5;
  const double tau = 0.5;
  IdcaConfig config;
  config.max_iterations = 16;
  QueryStats stats;
  const auto results =
      ProbabilisticThresholdKnn(f.db, f.index, *q, k, tau, config, &stats);
  EXPECT_GT(stats.candidates, 0u);

  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 24;
  MonteCarloEngine mc(f.db, mc_cfg);
  for (const auto& r : results) {
    const double truth = mc.ProbDomCountLessThan(r.id, *q, k);
    EXPECT_GE(truth, r.prob.lb - 1e-9) << "id=" << r.id;
    EXPECT_LE(truth, r.prob.ub + 1e-9) << "id=" << r.id;
    if (r.decision == PredicateDecision::kTrue) {
      EXPECT_GT(truth, tau) << "id=" << r.id;
    } else if (r.decision == PredicateDecision::kFalse) {
      EXPECT_LE(truth, tau + 1e-9) << "id=" << r.id;
    }
  }
}

TEST(KnnQueryTest, PrunedObjectsAreTrueNegatives) {
  SyntheticConfig cfg;
  cfg.num_objects = 100;
  cfg.max_extent = 0.02;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 16;
  Fixture f(cfg);
  Rng rng(22);
  const auto q = MakeQueryObject(Point{0.5, 0.5}, 0.02, ObjectModel::kDiscrete,
                                 16, rng);
  const size_t k = 3;
  const auto results = ProbabilisticThresholdKnn(f.db, f.index, *q, k, 0.25);
  std::vector<bool> reported(f.db.size(), false);
  for (const auto& r : results) reported[r.id] = true;
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 16;
  MonteCarloEngine mc(f.db, mc_cfg);
  // Every object the filter pruned must have zero probability.
  for (ObjectId id = 0; id < f.db.size(); ++id) {
    if (!reported[id]) {
      EXPECT_NEAR(mc.ProbDomCountLessThan(id, *q, k), 0.0, 1e-9)
          << "id=" << id;
    }
  }
}

TEST(KnnQueryTest, LargerKKeepsMoreCandidates) {
  SyntheticConfig cfg;
  cfg.num_objects = 200;
  cfg.max_extent = 0.02;
  Fixture f(cfg);
  Rng rng(23);
  const auto q =
      MakeQueryObject(Point{0.5, 0.5}, 0.02, ObjectModel::kUniform, 0, rng);
  QueryStats s1, s10;
  ProbabilisticThresholdKnn(f.db, f.index, *q, 1, 0.5, {}, &s1);
  ProbabilisticThresholdKnn(f.db, f.index, *q, 10, 0.5, {}, &s10);
  EXPECT_GE(s10.candidates, s1.candidates);
  EXPECT_GE(s1.candidates, 1u);
}

TEST(RknnQueryTest, CertainLineDatabase) {
  // Objects at x = 1, 2.5, 4, 5.5, 7, 8.5; query at 0. Neighbor spacing
  // is 1.5, so only the object at x=1 (distance 1 to Q, nearest other
  // object at distance 1.5) has Q as its strict 1NN.
  UncertainDatabase db;
  for (int i = 0; i < 6; ++i) {
    db.Add(PointObject(1.0 + 1.5 * i, 0.0));
  }
  RTree index = BuildRTree(db.objects());
  const auto q = PointObject(0.0, 0.0);
  const auto results = ProbabilisticThresholdRknn(db, index, *q, 1, 0.5);
  std::vector<ObjectId> qualified;
  for (const auto& r : results) {
    if (r.decision == PredicateDecision::kTrue) qualified.push_back(r.id);
  }
  EXPECT_EQ(qualified, (std::vector<ObjectId>{0}));
}

TEST(RknnQueryTest, AgreesWithBruteForceIdca) {
  SyntheticConfig cfg;
  cfg.num_objects = 40;
  cfg.max_extent = 0.05;
  Fixture f(cfg);
  Rng rng(24);
  const auto q =
      MakeQueryObject(Point{0.5, 0.5}, 0.05, ObjectModel::kUniform, 0, rng);
  const size_t k = 2;
  const double tau = 0.5;
  IdcaConfig config;
  config.max_iterations = 6;
  const auto results =
      ProbabilisticThresholdRknn(f.db, f.index, *q, k, tau, config);
  // Brute force: evaluate the predicate for every object directly.
  IdcaEngine engine(f.db, config);
  std::vector<ObjectId> expected;
  for (ObjectId id = 0; id < f.db.size(); ++id) {
    const IdcaResult r =
        engine.ComputeDomCountOfQuery(*q, id, IdcaPredicate{k, tau});
    if (r.decision == PredicateDecision::kTrue) expected.push_back(id);
  }
  std::vector<ObjectId> actual;
  for (const auto& r : results) {
    if (r.decision == PredicateDecision::kTrue) actual.push_back(r.id);
  }
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(InverseRankingTest, CertainChainHasDeterministicRank) {
  UncertainDatabase db;
  for (int i = 1; i <= 5; ++i) {
    db.Add(PointObject(static_cast<double>(i), 0.0));
  }
  const auto r = PointObject(0.0, 0.0);
  // Object 2 (x=3) has exactly 2 closer objects: rank 3 (0-based entry 2).
  const CountDistributionBounds dist = ProbabilisticInverseRanking(db, 2, *r);
  ASSERT_EQ(dist.num_ranks(), 5u);
  EXPECT_DOUBLE_EQ(dist.lb(2), 1.0);
  EXPECT_DOUBLE_EQ(dist.ub(2), 1.0);
  EXPECT_DOUBLE_EQ(dist.ub(0), 0.0);
}

TEST(InverseRankingTest, RankDistributionSumsToOneWhenConverged) {
  SyntheticConfig cfg;
  cfg.num_objects = 30;
  cfg.max_extent = 0.08;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 8;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(25);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kDiscrete, 8, rng);
  IdcaConfig config;
  config.max_iterations = 24;
  const CountDistributionBounds dist =
      ProbabilisticInverseRanking(db, 4, *r, config);
  double lb_total = 0.0, ub_total = 0.0;
  for (size_t k = 0; k < dist.num_ranks(); ++k) {
    lb_total += dist.lb(k);
    ub_total += dist.ub(k);
  }
  EXPECT_NEAR(lb_total, 1.0, 1e-6);
  EXPECT_NEAR(ub_total, 1.0, 1e-6);
}

TEST(ExpectedRankTest, CertainChainOrdersByDistance) {
  UncertainDatabase db;
  db.Add(PointObject(3.0, 0.0));
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  const auto q = PointObject(0.0, 0.0);
  const auto order = ExpectedRankOrder(db, *q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].id, 1u);  // x=1 -> rank 1
  EXPECT_EQ(order[1].id, 2u);  // x=2 -> rank 2
  EXPECT_EQ(order[2].id, 0u);  // x=3 -> rank 3
  EXPECT_NEAR(order[0].expected_rank.lb, 1.0, 1e-9);
  EXPECT_NEAR(order[2].expected_rank.ub, 3.0, 1e-9);
}

TEST(ExpectedRankTest, ExpectedRanksSumToTriangleNumber) {
  // Sum of expected ranks over all objects = N(N+1)/2 for any
  // distribution (ranks are a permutation in every world). With bounds,
  // the bracket must contain that invariant total.
  SyntheticConfig cfg;
  cfg.num_objects = 12;
  cfg.max_extent = 0.2;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 6;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(26);
  const auto q =
      MakeQueryObject(Point{0.5, 0.5}, 0.2, ObjectModel::kDiscrete, 6, rng);
  IdcaConfig config;
  config.max_iterations = 20;
  const auto order = ExpectedRankOrder(db, *q, config);
  double lo = 0.0, hi = 0.0;
  for (const auto& e : order) {
    lo += e.expected_rank.lb;
    hi += e.expected_rank.ub;
  }
  const double expect = 12.0 * 13.0 / 2.0;
  EXPECT_LE(lo, expect + 1e-6);
  EXPECT_GE(hi, expect - 1e-6);
}

}  // namespace
}  // namespace updb
