// Equivalence of the flat-buffer UncertainGeneratingFunction against the
// nested-vector reference oracle (gf/ugf_reference.h). Both accumulate
// floating-point contributions in the same order, so every comparison here
// is exact (EXPECT_EQ on doubles) — no tolerances. Randomized factor
// sequences deliberately mix general brackets with the degenerate (0,0)
// and (1,1) factors that take the flat implementation's fast paths, and
// with exact (p,p) factors that keep whole diagonals at zero.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "gf/ugf.h"
#include "gf/ugf_reference.h"

namespace updb {
namespace {

struct Factor {
  double lb;
  double ub;
};

/// Draws a factor: ~20% definite non-dominator (0,0), ~20% definite
/// dominator (1,1), ~20% exact (p,p), rest a general bracket.
Factor DrawFactor(Rng& rng) {
  const double kind = rng.NextDouble();
  if (kind < 0.2) return {0.0, 0.0};
  if (kind < 0.4) return {1.0, 1.0};
  if (kind < 0.6) {
    const double p = rng.NextDouble();
    return {p, p};
  }
  const double lb = rng.NextDouble();
  return {lb, lb + (1.0 - lb) * rng.NextDouble()};
}

void ExpectIdentical(const UncertainGeneratingFunction& flat,
                     const NestedVectorUgf& ref, size_t max_rank) {
  ASSERT_EQ(flat.num_factors(), ref.num_factors());
  EXPECT_EQ(flat.OverflowMass(), ref.OverflowMass());
  for (size_t i = 0; i <= max_rank; ++i) {
    for (size_t j = 0; j <= max_rank; ++j) {
      EXPECT_EQ(flat.Coefficient(i, j), ref.Coefficient(i, j))
          << "i=" << i << " j=" << j;
    }
  }
  const CountDistributionBounds fb = flat.Bounds();
  const CountDistributionBounds rb = ref.Bounds();
  ASSERT_EQ(fb.num_ranks(), rb.num_ranks());
  for (size_t x = 0; x < fb.num_ranks(); ++x) {
    EXPECT_EQ(fb.lb(x), rb.lb(x)) << "x=" << x;
    EXPECT_EQ(fb.ub(x), rb.ub(x)) << "x=" << x;
  }
}

TEST(UgfEquivalenceTest, UntruncatedBitIdenticalOnRandomSequences) {
  Rng rng(131);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 1 + rng.NextBounded(24);
    UncertainGeneratingFunction flat;
    NestedVectorUgf ref;
    for (size_t i = 0; i < n; ++i) {
      const Factor f = DrawFactor(rng);
      flat.Multiply(f.lb, f.ub);
      ref.Multiply(f.lb, f.ub);
    }
    ExpectIdentical(flat, ref, n);
    for (size_t m = 0; m <= n + 1; ++m) {
      const ProbabilityBounds pf = flat.ProbLessThan(m);
      const ProbabilityBounds pr = ref.ProbLessThan(m);
      EXPECT_EQ(pf.lb, pr.lb) << "m=" << m;
      EXPECT_EQ(pf.ub, pr.ub) << "m=" << m;
    }
  }
}

TEST(UgfEquivalenceTest, TruncatedBitIdenticalOnRandomSequences) {
  Rng rng(137);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 1 + rng.NextBounded(24);
    const size_t k = 1 + rng.NextBounded(8);
    UncertainGeneratingFunction flat(k);
    NestedVectorUgf ref(k);
    for (size_t i = 0; i < n; ++i) {
      const Factor f = DrawFactor(rng);
      flat.Multiply(f.lb, f.ub);
      ref.Multiply(f.lb, f.ub);
    }
    ExpectIdentical(flat, ref, k);
    for (size_t m = 0; m <= k; ++m) {
      const ProbabilityBounds pf = flat.ProbLessThan(m);
      const ProbabilityBounds pr = ref.ProbLessThan(m);
      EXPECT_EQ(pf.lb, pr.lb) << "m=" << m;
      EXPECT_EQ(pf.ub, pr.ub) << "m=" << m;
    }
  }
}

TEST(UgfEquivalenceTest, ReusedWorkspaceStaysBitIdentical) {
  // The same workspace replays different sequences via Reset(); results
  // must not depend on what the buffers held before.
  Rng rng(139);
  UncertainGeneratingFunction flat;
  for (int trial = 0; trial < 40; ++trial) {
    const bool truncated = rng.Bernoulli(0.5);
    const size_t k = 1 + rng.NextBounded(6);
    if (truncated) {
      flat.Reset(k);
    } else {
      flat.Reset(UncertainGeneratingFunction::kNoTruncation);
    }
    NestedVectorUgf ref(truncated ? k : NestedVectorUgf::kNoTruncation);
    const size_t n = 1 + rng.NextBounded(20);
    for (size_t i = 0; i < n; ++i) {
      const Factor f = DrawFactor(rng);
      flat.Multiply(f.lb, f.ub);
      ref.Multiply(f.lb, f.ub);
    }
    ExpectIdentical(flat, ref, truncated ? k : n);
  }
}

}  // namespace
}  // namespace updb
