// Bit-identity of every UGF implementation against every other: the flat
// workspace UGF (gf/ugf.h), the nested-vector reference oracle
// (gf/ugf_reference.h) and the lane-batched SoA engine (gf/ugf_batch.h)
// all follow the blocked accumulation order of gf/kernels.h, so every
// comparison here is exact (EXPECT_EQ on doubles) — no tolerances. Every
// check runs under both dispatch tables (ForceScalarKernels on/off), which
// is the contract the AVX2+FMA kernels are held to: identical bits to the
// scalar kernels on every input, not merely close.
//
// Coverage: every factor-sequence size 1..130 (untruncated and a spread of
// truncation depths including k = 1), the degenerate (0,0)/(1,1) fast
// paths in isolation and interleaved, batch lane counts 1..4 with
// deliberately mixed degenerate/general lanes, and a seeded randomized
// long-run stress mix.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "gf/kernels.h"
#include "gf/ugf.h"
#include "gf/ugf_batch.h"
#include "gf/ugf_reference.h"

namespace updb {
namespace {

struct Factor {
  double lb;
  double ub;
};

/// Draws a factor: ~20% definite non-dominator (0,0), ~20% definite
/// dominator (1,1), ~20% exact (p,p), rest a general bracket.
Factor DrawFactor(Rng& rng) {
  const double kind = rng.NextDouble();
  if (kind < 0.2) return {0.0, 0.0};
  if (kind < 0.4) return {1.0, 1.0};
  if (kind < 0.6) {
    const double p = rng.NextDouble();
    return {p, p};
  }
  const double lb = rng.NextDouble();
  return {lb, lb + (1.0 - lb) * rng.NextDouble()};
}

std::vector<Factor> DrawSequence(Rng& rng, size_t n) {
  std::vector<Factor> factors;
  factors.reserve(n);
  for (size_t i = 0; i < n; ++i) factors.push_back(DrawFactor(rng));
  return factors;
}

/// Runs `fn` once pinned to the scalar table and once on the auto-selected
/// table (the vector table wherever this host supports it), restoring the
/// prior dispatch mode afterwards so later tests — and the CI leg that
/// sets UPDB_FORCE_SCALAR for the whole binary — see what they expect.
template <typename Fn>
void ForEachDispatchMode(Fn&& fn) {
  const bool was_scalar = &gf::ActiveKernels() == &gf::ScalarKernels();
  gf::ForceScalarKernels(true);
  ASSERT_STREQ(gf::ActiveKernelName(), "scalar");
  fn();
  gf::ForceScalarKernels(false);
  if (gf::VectorKernelsAvailable()) {
    ASSERT_STRNE(gf::ActiveKernelName(), "scalar");
    fn();
  }
  gf::ForceScalarKernels(was_scalar);
}

void ExpectIdentical(const UncertainGeneratingFunction& flat,
                     const NestedVectorUgf& ref, size_t max_rank) {
  ASSERT_EQ(flat.num_factors(), ref.num_factors());
  EXPECT_EQ(flat.OverflowMass(), ref.OverflowMass());
  for (size_t i = 0; i <= max_rank; ++i) {
    for (size_t j = 0; j <= max_rank - i; ++j) {
      ASSERT_EQ(flat.Coefficient(i, j), ref.Coefficient(i, j))
          << "i=" << i << " j=" << j;
    }
  }
  const CountDistributionBounds fb = flat.Bounds();
  const CountDistributionBounds rb = ref.Bounds();
  ASSERT_EQ(fb.num_ranks(), rb.num_ranks());
  for (size_t x = 0; x < fb.num_ranks(); ++x) {
    ASSERT_EQ(fb.lb(x), rb.lb(x)) << "x=" << x;
    ASSERT_EQ(fb.ub(x), rb.ub(x)) << "x=" << x;
  }
}

/// Full flat-vs-reference check of one factor sequence under one
/// truncation setting, including ProbLessThan at every admissible m.
void CheckFlatAgainstReference(const std::vector<Factor>& factors, size_t k) {
  const bool truncated = k != UncertainGeneratingFunction::kNoTruncation;
  UncertainGeneratingFunction flat(k);
  NestedVectorUgf ref(k);
  for (const Factor& f : factors) {
    flat.Multiply(f.lb, f.ub);
    ref.Multiply(f.lb, f.ub);
  }
  ExpectIdentical(flat, ref, truncated ? k : factors.size());
  const size_t m_max = truncated ? k : factors.size() + 1;
  for (size_t m = 0; m <= m_max; ++m) {
    const ProbabilityBounds pf = flat.ProbLessThan(m);
    const ProbabilityBounds pr = ref.ProbLessThan(m);
    ASSERT_EQ(pf.lb, pr.lb) << "m=" << m;
    ASSERT_EQ(pf.ub, pr.ub) << "m=" << m;
  }
}

/// Runs `lanes` factor sequences through one UgfBatch and through `lanes`
/// scalar flat UGFs; every lane must reproduce its scalar UGF bit for bit
/// in coefficients, overflow, per-rank bounds and ProbLessThan.
void CheckBatchAgainstFlat(const std::vector<std::vector<Factor>>& seqs,
                           size_t k) {
  const size_t lanes = seqs.size();
  const size_t n = seqs[0].size();
  const bool truncated = k != UncertainGeneratingFunction::kNoTruncation;

  UgfBatch batch;
  batch.Begin(truncated ? k : UgfBatch::kNoTruncation, lanes);
  std::vector<UncertainGeneratingFunction> singles(lanes);
  for (size_t l = 0; l < lanes; ++l) {
    singles[l].Reset(truncated ? k
                               : UncertainGeneratingFunction::kNoTruncation);
  }
  for (size_t i = 0; i < n; ++i) {
    double lb4[UgfBatch::kLanes] = {};
    double ub4[UgfBatch::kLanes] = {};
    for (size_t l = 0; l < lanes; ++l) {
      lb4[l] = seqs[l][i].lb;
      ub4[l] = seqs[l][i].ub;
      singles[l].Multiply(seqs[l][i].lb, seqs[l][i].ub);
    }
    batch.MultiplyFactors(lb4, ub4);
  }

  ASSERT_EQ(batch.num_factors(), n);
  const size_t nr = batch.num_ranks();
  batch.FinishBounds();
  ProbabilityBounds lt[UgfBatch::kLanes];
  const size_t max_rank = truncated ? k : n;
  for (size_t l = 0; l < lanes; ++l) {
    EXPECT_EQ(batch.OverflowMass(l), singles[l].OverflowMass()) << "l=" << l;
    for (size_t i = 0; i <= max_rank; ++i) {
      for (size_t j = 0; j <= max_rank - i; ++j) {
        ASSERT_EQ(batch.Coefficient(l, i, j), singles[l].Coefficient(i, j))
            << "l=" << l << " i=" << i << " j=" << j;
      }
    }
    CountDistributionBounds bb = CountDistributionBounds::Zero(nr);
    batch.EmitBounds(l, &bb);
    const CountDistributionBounds sb = singles[l].Bounds();
    ASSERT_EQ(sb.num_ranks(), nr);
    for (size_t x = 0; x < nr; ++x) {
      ASSERT_EQ(bb.lb(x), sb.lb(x)) << "l=" << l << " x=" << x;
      ASSERT_EQ(bb.ub(x), sb.ub(x)) << "l=" << l << " x=" << x;
    }
  }
  const size_t m_max = truncated ? k : n + 1;
  for (size_t m = 0; m <= m_max; ++m) {
    batch.ProbLessThanAll(m, lt);
    for (size_t l = 0; l < lanes; ++l) {
      const ProbabilityBounds ps = singles[l].ProbLessThan(m);
      ASSERT_EQ(lt[l].lb, ps.lb) << "l=" << l << " m=" << m;
      ASSERT_EQ(lt[l].ub, ps.ub) << "l=" << l << " m=" << m;
    }
  }
}

TEST(UgfEquivalenceTest, EverySizeUntruncated) {
  ForEachDispatchMode([] {
    for (size_t n = 1; n <= 130; ++n) {
      Rng rng(1000 + n);
      CheckFlatAgainstReference(DrawSequence(rng, n),
                                UncertainGeneratingFunction::kNoTruncation);
      if (HasFatalFailure()) return;
    }
  });
}

TEST(UgfEquivalenceTest, EverySizeTruncated) {
  ForEachDispatchMode([] {
    for (size_t n = 1; n <= 130; ++n) {
      Rng rng(5000 + n);
      const std::vector<Factor> factors = DrawSequence(rng, n);
      for (size_t k : {size_t{1}, size_t{2}, size_t{7}, n / 2 + 1, n + 1}) {
        CheckFlatAgainstReference(factors, k);
        if (HasFatalFailure()) return;
      }
    }
  });
}

TEST(UgfEquivalenceTest, DegenerateFastPathSequences) {
  // All-(0,0), all-(1,1) and strict alternations exercise the flat and
  // batch symbolic fast paths; a degenerate prefix before a general tail
  // exercises the transition out of them.
  ForEachDispatchMode([] {
    for (size_t n : {size_t{1}, size_t{2}, size_t{5}, size_t{33}}) {
      std::vector<std::vector<Factor>> shapes;
      shapes.push_back(std::vector<Factor>(n, Factor{0.0, 0.0}));
      shapes.push_back(std::vector<Factor>(n, Factor{1.0, 1.0}));
      std::vector<Factor> alt;
      for (size_t i = 0; i < n; ++i) {
        alt.push_back(i % 2 == 0 ? Factor{1.0, 1.0} : Factor{0.0, 0.0});
      }
      shapes.push_back(alt);
      Rng rng(77 * n + 3);
      std::vector<Factor> mixed(n, Factor{0.0, 0.0});
      for (size_t i = n / 2; i < n; ++i) mixed[i] = DrawFactor(rng);
      shapes.push_back(mixed);
      for (const std::vector<Factor>& factors : shapes) {
        CheckFlatAgainstReference(factors,
                                  UncertainGeneratingFunction::kNoTruncation);
        CheckFlatAgainstReference(factors, size_t{1});
        CheckFlatAgainstReference(factors, n / 2 + 1);
        CheckBatchAgainstFlat({factors},
                              UncertainGeneratingFunction::kNoTruncation);
        if (HasFatalFailure()) return;
      }
    }
  });
}

TEST(UgfEquivalenceTest, BatchLanesMatchScalarLaneByLane) {
  // Every lane count 1..4, with lanes deliberately mixing all-degenerate
  // sequences against general ones so group fast paths, materialized
  // degenerate factors and padding lanes all get hit.
  ForEachDispatchMode([] {
    Rng rng(4242);
    for (int trial = 0; trial < 24; ++trial) {
      const size_t lanes = 1 + trial % UgfBatch::kLanes;
      const size_t n = 1 + rng.NextBounded(48);
      std::vector<std::vector<Factor>> seqs;
      for (size_t l = 0; l < lanes; ++l) {
        const double shape = rng.NextDouble();
        if (shape < 0.15) {
          seqs.push_back(std::vector<Factor>(n, Factor{0.0, 0.0}));
        } else if (shape < 0.3) {
          seqs.push_back(std::vector<Factor>(n, Factor{1.0, 1.0}));
        } else {
          seqs.push_back(DrawSequence(rng, n));
        }
      }
      CheckBatchAgainstFlat(seqs, UncertainGeneratingFunction::kNoTruncation);
      CheckBatchAgainstFlat(seqs, size_t{1});
      CheckBatchAgainstFlat(seqs, 1 + rng.NextBounded(n + 1));
      if (HasFatalFailure()) return;
    }
  });
}

TEST(UgfEquivalenceTest, BatchWorkspaceReuseStaysBitIdentical) {
  // The same UgfBatch replays sequences of varying size and truncation via
  // Begin(); results must not depend on what the buffers held before.
  ForEachDispatchMode([] {
    Rng rng(515);
    UgfBatch batch;
    for (int trial = 0; trial < 16; ++trial) {
      const size_t lanes = 1 + rng.NextBounded(UgfBatch::kLanes);
      const size_t n = 1 + rng.NextBounded(40);
      const bool truncated = rng.Bernoulli(0.5);
      const size_t k =
          truncated ? 1 + rng.NextBounded(12) : UgfBatch::kNoTruncation;
      std::vector<std::vector<Factor>> seqs;
      std::vector<UncertainGeneratingFunction> singles(lanes);
      for (size_t l = 0; l < lanes; ++l) {
        seqs.push_back(DrawSequence(rng, n));
        singles[l].Reset(truncated
                             ? k
                             : UncertainGeneratingFunction::kNoTruncation);
      }
      batch.Begin(k, lanes);
      for (size_t i = 0; i < n; ++i) {
        double lb4[UgfBatch::kLanes] = {};
        double ub4[UgfBatch::kLanes] = {};
        for (size_t l = 0; l < lanes; ++l) {
          lb4[l] = seqs[l][i].lb;
          ub4[l] = seqs[l][i].ub;
          singles[l].Multiply(seqs[l][i].lb, seqs[l][i].ub);
        }
        batch.MultiplyFactors(lb4, ub4);
      }
      batch.FinishBounds();
      const size_t nr = batch.num_ranks();
      for (size_t l = 0; l < lanes; ++l) {
        CountDistributionBounds bb = CountDistributionBounds::Zero(nr);
        batch.EmitBounds(l, &bb);
        const CountDistributionBounds sb = singles[l].Bounds();
        ASSERT_EQ(sb.num_ranks(), nr);
        for (size_t x = 0; x < nr; ++x) {
          ASSERT_EQ(bb.lb(x), sb.lb(x)) << "l=" << l << " x=" << x;
          ASSERT_EQ(bb.ub(x), sb.ub(x)) << "l=" << l << " x=" << x;
        }
      }
    }
  });
}

TEST(UgfEquivalenceTest, ScalarAndVectorDispatchProduceIdenticalBits) {
  // Direct scalar-vs-vector comparison (not via the reference): the same
  // sequence evaluated under both tables must agree bit for bit on bounds
  // and coefficients. Skipped where no vector table exists.
  if (!gf::VectorKernelsAvailable()) GTEST_SKIP() << "no vector kernels";
  const bool was_scalar = &gf::ActiveKernels() == &gf::ScalarKernels();
  Rng rng(8080);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextBounded(100);
    const bool truncated = rng.Bernoulli(0.5);
    const size_t k = truncated ? 1 + rng.NextBounded(16)
                               : UncertainGeneratingFunction::kNoTruncation;
    const std::vector<Factor> factors = DrawSequence(rng, n);
    auto eval = [&](bool scalar) {
      gf::ForceScalarKernels(scalar);
      UncertainGeneratingFunction ugf(k);
      for (const Factor& f : factors) ugf.Multiply(f.lb, f.ub);
      return ugf.Bounds();
    };
    const CountDistributionBounds s = eval(true);
    const CountDistributionBounds v = eval(false);
    ASSERT_EQ(s.num_ranks(), v.num_ranks());
    for (size_t x = 0; x < s.num_ranks(); ++x) {
      ASSERT_EQ(s.lb(x), v.lb(x)) << "x=" << x;
      ASSERT_EQ(s.ub(x), v.ub(x)) << "x=" << x;
    }
  }
  gf::ForceScalarKernels(was_scalar);
}

TEST(UgfEquivalenceTest, RandomizedLongRunStress) {
  // Long mixed sequences with random truncation, flat vs reference vs a
  // single-lane batch, everything bit-exact.
  ForEachDispatchMode([] {
    Rng rng(997);
    for (int trial = 0; trial < 12; ++trial) {
      const size_t n = 60 + rng.NextBounded(71);  // 60..130
      const bool truncated = rng.Bernoulli(0.5);
      const size_t k = truncated ? 1 + rng.NextBounded(24)
                                 : UncertainGeneratingFunction::kNoTruncation;
      const std::vector<Factor> factors = DrawSequence(rng, n);
      CheckFlatAgainstReference(factors, k);
      CheckBatchAgainstFlat({factors}, k);
      if (HasFatalFailure()) return;
    }
  });
}

}  // namespace
}  // namespace updb
