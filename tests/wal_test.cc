#include "store/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "uncertain/pdf.h"

namespace updb {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::remove(path.c_str());
  return path;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::shared_ptr<const Pdf> MakePdf(double lo, double hi) {
  return std::make_shared<UniformPdf>(Rect(Point{lo, lo}, Point{hi, hi}));
}

WalRecord InsertRecord(uint64_t sequence, ObjectId id) {
  WalRecord r;
  r.kind = WalRecordKind::kInsert;
  r.sequence = sequence;
  r.id = id;
  r.existence = 0.75;
  r.pdf = MakePdf(0.1, 0.3);
  return r;
}

TEST(Crc32cTest, KnownAnswer) {
  // The CRC32C check value: crc of the ASCII digits "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Any single-bit flip changes the sum.
  EXPECT_NE(Crc32c("123456788", 9), 0xE3069283u);
}

TEST(FsyncPolicyTest, NamesRoundTrip) {
  for (FsyncPolicy p : {FsyncPolicy::kNever, FsyncPolicy::kEveryPublish,
                        FsyncPolicy::kEveryBatch}) {
    const StatusOr<FsyncPolicy> parsed = ParseFsyncPolicy(FsyncPolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(ParseFsyncPolicy("sometimes").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalRecordRegistryTest, BuiltinKindsRegisteredUnknownRejected) {
  const WalRecordRegistry& registry = WalRecordRegistry::Instance();
  const WalRecordCodec* insert =
      registry.Find(static_cast<uint8_t>(WalRecordKind::kInsert));
  ASSERT_NE(insert, nullptr);
  EXPECT_STREQ(insert->name, "insert");
  EXPECT_STREQ(
      registry.Find(static_cast<uint8_t>(WalRecordKind::kUpdate))->name,
      "update");
  EXPECT_STREQ(
      registry.Find(static_cast<uint8_t>(WalRecordKind::kRemove))->name,
      "remove");
  EXPECT_STREQ(
      registry.Find(static_cast<uint8_t>(WalRecordKind::kPublish))->name,
      "publish");
  EXPECT_EQ(registry.Find(0), nullptr);
  EXPECT_EQ(registry.Find(99), nullptr);
}

TEST(WalFrameTest, AllKindsRoundTripThroughAFile) {
  std::vector<WalRecord> originals;
  originals.push_back(InsertRecord(1, 7));
  {
    WalRecord update;
    update.kind = WalRecordKind::kUpdate;
    update.sequence = 2;
    update.id = 7;
    update.existence = 1.0;
    update.pdf = MakePdf(0.4, 0.9);
    originals.push_back(update);
  }
  {
    WalRecord publish;
    publish.kind = WalRecordKind::kPublish;
    publish.sequence = 3;
    publish.version = 11;
    originals.push_back(publish);
  }
  {
    WalRecord remove;
    remove.kind = WalRecordKind::kRemove;
    remove.sequence = 4;
    remove.id = 7;
    originals.push_back(remove);
  }

  const std::string path = TempPath("wal_roundtrip.log");
  {
    StatusOr<std::unique_ptr<WalShardWriter>> writer =
        WalShardWriter::Open(path, /*truncate=*/true);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const WalRecord& r : originals) {
      ASSERT_TRUE((*writer)->Append(r).ok());
    }
    EXPECT_EQ((*writer)->appended_records(), originals.size());
    EXPECT_TRUE((*writer)->dirty());
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_FALSE((*writer)->dirty());
  }

  const StatusOr<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->truncated_bytes, 0u);
  EXPECT_TRUE(read->truncation_reason.empty());
  ASSERT_EQ(read->records.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    const WalRecord& got = read->records[i];
    const WalRecord& want = originals[i];
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.sequence, want.sequence);
    if (want.kind == WalRecordKind::kPublish) {
      EXPECT_EQ(got.version, want.version);
      continue;
    }
    EXPECT_EQ(got.id, want.id);
    if (want.kind == WalRecordKind::kRemove) continue;
    ASSERT_NE(got.pdf, nullptr);
    // The dataset_io line format prints %.17g — bit-exact round trip.
    EXPECT_EQ(got.existence, want.existence);
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(got.pdf->bounds().side(d).lo(),
                want.pdf->bounds().side(d).lo());
      EXPECT_EQ(got.pdf->bounds().side(d).hi(),
                want.pdf->bounds().side(d).hi());
    }
  }
}

TEST(WalReadTest, EmptyAndMissingFiles) {
  const std::string path = TempPath("wal_empty.log");
  WriteBytes(path, "");
  const StatusOr<WalReadResult> empty = ReadWalFile(path);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());
  EXPECT_EQ(empty->truncated_bytes, 0u);

  EXPECT_EQ(ReadWalFile(TempPath("wal_missing.log")).status().code(),
            StatusCode::kUnavailable);
}

TEST(WalReadTest, TornTailTruncatesAtEveryOffset) {
  // Two whole records plus a third whose frame we shear at every possible
  // byte offset: the reader must always return exactly the first two and
  // report the damage, never error or mis-parse.
  const std::string path = TempPath("wal_torn.log");
  std::string full;
  uint64_t two_records_bytes = 0;
  for (uint64_t s = 1; s <= 3; ++s) {
    const StatusOr<std::string> frame =
        EncodeWalFrame(InsertRecord(s, static_cast<ObjectId>(s - 1)));
    ASSERT_TRUE(frame.ok());
    if (s == 2) two_records_bytes = full.size() + frame->size();
    full += *frame;
  }
  for (size_t cut = two_records_bytes; cut < full.size(); ++cut) {
    WriteBytes(path, full.substr(0, cut));
    const StatusOr<WalReadResult> read = ReadWalFile(path);
    ASSERT_TRUE(read.ok()) << "cut=" << cut;
    ASSERT_EQ(read->records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(read->records[1].sequence, 2u);
    EXPECT_EQ(read->valid_bytes, two_records_bytes);
    EXPECT_EQ(read->truncated_bytes, cut - two_records_bytes);
    if (cut > two_records_bytes) {
      EXPECT_FALSE(read->truncation_reason.empty()) << "cut=" << cut;
    }
  }
}

TEST(WalReadTest, BitFlipInAnyTailByteIsDetected) {
  const std::string path = TempPath("wal_bitflip.log");
  std::string full;
  uint64_t one_record_bytes = 0;
  for (uint64_t s = 1; s <= 2; ++s) {
    const StatusOr<std::string> frame =
        EncodeWalFrame(InsertRecord(s, static_cast<ObjectId>(s - 1)));
    ASSERT_TRUE(frame.ok());
    if (s == 1) one_record_bytes = frame->size();
    full += *frame;
  }
  for (size_t at = one_record_bytes; at < full.size(); ++at) {
    std::string corrupt = full;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    WriteBytes(path, corrupt);
    const StatusOr<WalReadResult> read = ReadWalFile(path);
    ASSERT_TRUE(read.ok()) << "at=" << at;
    // The flip lands in the second frame: either its header now
    // mis-frames the tail or the CRC/codec rejects it — the first record
    // always survives untouched.
    ASSERT_EQ(read->records.size(), 1u) << "at=" << at;
    EXPECT_EQ(read->records[0].sequence, 1u);
    EXPECT_FALSE(read->truncation_reason.empty()) << "at=" << at;
    EXPECT_GT(read->truncated_bytes, 0u);
  }
}

TEST(WalReadTest, UnknownKindAndZeroLengthFramesStopReplay) {
  const std::string path = TempPath("wal_badkinds.log");
  const StatusOr<std::string> good = EncodeWalFrame(InsertRecord(1, 0));
  ASSERT_TRUE(good.ok());

  // A CRC-valid frame of an unregistered kind byte.
  std::string body;
  body.push_back(static_cast<char>(0xEE));
  body += "future";
  std::string unknown;
  const uint32_t len = static_cast<uint32_t>(body.size());
  const uint32_t crc = Crc32c(body.data(), body.size());
  unknown.append(reinterpret_cast<const char*>(&len), sizeof(len));
  unknown.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  unknown += body;

  WriteBytes(path, *good + unknown);
  StatusOr<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
  EXPECT_NE(read->truncation_reason.find("unknown record kind"),
            std::string::npos);

  // An all-zero header (e.g. preallocated-but-unwritten tail).
  WriteBytes(path, *good + std::string(8, '\0'));
  read = ReadWalFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
  EXPECT_NE(read->truncation_reason.find("zero-length"), std::string::npos);
}

TEST(WalFrameTest, EncodeRejectsMutationWithoutPdf) {
  WalRecord r;
  r.kind = WalRecordKind::kInsert;
  r.sequence = 1;
  r.id = 0;
  r.pdf = nullptr;
  EXPECT_FALSE(EncodeWalFrame(r).ok());
}

TEST(WalShardFileNameTest, RoundTripAndRejections) {
  size_t shard = 99;
  EXPECT_TRUE(ParseWalShardFileName(WalShardFileName(0), &shard));
  EXPECT_EQ(shard, 0u);
  EXPECT_TRUE(ParseWalShardFileName(WalShardFileName(17), &shard));
  EXPECT_EQ(shard, 17u);
  EXPECT_FALSE(ParseWalShardFileName("wal-shard-.log", &shard));
  EXPECT_FALSE(ParseWalShardFileName("wal-shard-3.txt", &shard));
  EXPECT_FALSE(ParseWalShardFileName("checkpoint-3.updbck", &shard));
  EXPECT_FALSE(ParseWalShardFileName("wal-shard-x3.log", &shard));
}

}  // namespace
}  // namespace store
}  // namespace updb
