#include "uncertain/pdf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace updb {
namespace {

Rect UnitSquare() { return Rect(Point{0.0, 0.0}, Point{1.0, 1.0}); }

// ------------------------------------------------------------- Uniform

TEST(UniformPdfTest, TotalMassIsOne) {
  UniformPdf pdf(UnitSquare());
  EXPECT_DOUBLE_EQ(pdf.Mass(UnitSquare()), 1.0);
}

TEST(UniformPdfTest, MassIsVolumeFraction) {
  UniformPdf pdf(UnitSquare());
  Rect half(Point{0.0, 0.0}, Point{0.5, 1.0});
  EXPECT_DOUBLE_EQ(pdf.Mass(half), 0.5);
  Rect quarter(Point{0.0, 0.0}, Point{0.5, 0.5});
  EXPECT_DOUBLE_EQ(pdf.Mass(quarter), 0.25);
}

TEST(UniformPdfTest, MassOutsideIsZero) {
  UniformPdf pdf(UnitSquare());
  Rect outside(Point{2.0, 2.0}, Point{3.0, 3.0});
  EXPECT_DOUBLE_EQ(pdf.Mass(outside), 0.0);
}

TEST(UniformPdfTest, MassClipsToSupport) {
  UniformPdf pdf(UnitSquare());
  Rect big(Point{-1.0, -1.0}, Point{0.5, 2.0});
  EXPECT_DOUBLE_EQ(pdf.Mass(big), 0.5);
}

TEST(UniformPdfTest, DegenerateDimensionCarriesMass) {
  // A "slab" object: zero extent in dimension 1.
  Rect slab(Point{0.0, 0.5}, Point{1.0, 0.5});
  UniformPdf pdf(slab);
  EXPECT_DOUBLE_EQ(pdf.Mass(slab), 1.0);
  Rect covering(Point{0.0, 0.0}, Point{1.0, 1.0});
  EXPECT_DOUBLE_EQ(pdf.Mass(covering), 1.0);
  Rect missing(Point{0.0, 0.6}, Point{1.0, 1.0});
  EXPECT_DOUBLE_EQ(pdf.Mass(missing), 0.0);
}

TEST(UniformPdfTest, SamplesStayInBounds) {
  UniformPdf pdf(UnitSquare());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(pdf.bounds().Contains(pdf.Sample(rng)));
  }
}

TEST(UniformPdfTest, SampleFrequencyMatchesMass) {
  UniformPdf pdf(UnitSquare());
  Rng rng(2);
  Rect region(Point{0.2, 0.3}, Point{0.7, 0.9});
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += region.Contains(pdf.Sample(rng));
  EXPECT_NEAR(static_cast<double>(hits) / n, pdf.Mass(region), 0.01);
}

TEST(UniformPdfTest, DensityIsInverseVolume) {
  UniformPdf pdf(UnitSquare());
  EXPECT_DOUBLE_EQ(pdf.Density(Point{0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(pdf.Density(Point{2.0, 2.0}), 0.0);
  UniformPdf pdf2(Rect(Point{0.0, 0.0}, Point{2.0, 2.0}));
  EXPECT_DOUBLE_EQ(pdf2.Density(Point{1.0, 1.0}), 0.25);
}

TEST(UniformPdfTest, ConditionalMedianIsRegionMidpoint) {
  UniformPdf pdf(UnitSquare());
  EXPECT_DOUBLE_EQ(pdf.ConditionalMedian(UnitSquare(), 0), 0.5);
  Rect region(Point{0.0, 0.0}, Point{0.5, 1.0});
  EXPECT_DOUBLE_EQ(pdf.ConditionalMedian(region, 0), 0.25);
}

TEST(UniformPdfTest, CloneIsIndependentCopy) {
  UniformPdf pdf(UnitSquare());
  auto clone = pdf.Clone();
  EXPECT_EQ(clone->bounds(), pdf.bounds());
  EXPECT_DOUBLE_EQ(clone->Mass(UnitSquare()), 1.0);
}

// --------------------------------------------------- TruncatedGaussian

TEST(TruncatedGaussianTest, TotalMassIsOne) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.5, 0.5}, {0.2, 0.2});
  EXPECT_NEAR(pdf.Mass(UnitSquare()), 1.0, 1e-12);
}

TEST(TruncatedGaussianTest, MassConcentratesNearMean) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.5, 0.5}, {0.1, 0.1});
  Rect center(Point{0.4, 0.4}, Point{0.6, 0.6});
  Rect corner(Point{0.0, 0.0}, Point{0.2, 0.2});
  EXPECT_GT(pdf.Mass(center), 0.4);
  EXPECT_LT(pdf.Mass(corner), 0.01);
}

TEST(TruncatedGaussianTest, SymmetricHalvesSplitEvenly) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.5, 0.5}, {0.15, 0.15});
  Rect left(Point{0.0, 0.0}, Point{0.5, 1.0});
  EXPECT_NEAR(pdf.Mass(left), 0.5, 1e-9);
}

TEST(TruncatedGaussianTest, SamplesInsideBoundsAndCentered) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.5, 0.5}, {0.15, 0.15});
  Rng rng(3);
  double sx = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Point p = pdf.Sample(rng);
    EXPECT_TRUE(pdf.bounds().Contains(p));
    sx += p[0];
  }
  EXPECT_NEAR(sx / n, 0.5, 0.01);
}

TEST(TruncatedGaussianTest, SampleFrequencyMatchesMass) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.4, 0.6}, {0.2, 0.1});
  Rng rng(4);
  Rect region(Point{0.3, 0.5}, Point{0.8, 0.8});
  const double mass = pdf.Mass(region);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += region.Contains(pdf.Sample(rng));
  EXPECT_NEAR(static_cast<double>(hits) / n, mass, 0.01);
}

TEST(TruncatedGaussianTest, ConditionalMedianSplitsMassInHalf) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.3, 0.5}, {0.2, 0.2});
  const double med = pdf.ConditionalMedian(UnitSquare(), 0);
  Rect lower(Point{0.0, 0.0}, Point{med, 1.0});
  EXPECT_NEAR(pdf.Mass(lower), 0.5, 1e-6);
}

TEST(TruncatedGaussianTest, DegenerateSigmaIsPointMass) {
  TruncatedGaussianPdf pdf(Rect(Point{0.0, 0.5}, Point{1.0, 0.5}),
                           {0.5, 0.5}, {0.2, 0.0});
  EXPECT_NEAR(pdf.Mass(pdf.bounds()), 1.0, 1e-12);
  Rng rng(5);
  const Point p = pdf.Sample(rng);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(TruncatedGaussianTest, DensityIntegratesRoughlyToMass) {
  TruncatedGaussianPdf pdf(UnitSquare(), {0.5, 0.5}, {0.2, 0.2});
  // Riemann sum over a sub-rectangle.
  Rect region(Point{0.3, 0.3}, Point{0.7, 0.7});
  const int g = 64;
  double sum = 0.0;
  for (int i = 0; i < g; ++i) {
    for (int j = 0; j < g; ++j) {
      Point p{0.3 + 0.4 * (i + 0.5) / g, 0.3 + 0.4 * (j + 0.5) / g};
      sum += pdf.Density(p);
    }
  }
  sum *= (0.4 / g) * (0.4 / g);
  EXPECT_NEAR(sum, pdf.Mass(region), 1e-3);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

// ------------------------------------------------------------- Mixture

TEST(MixturePdfTest, BoundsAreHullAndMassIsWeighted) {
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.0}, Point{1.0, 1.0})));
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{2.0, 0.0}, Point{3.0, 1.0})));
  MixturePdf mix(std::move(comps), {1.0, 3.0});
  EXPECT_EQ(mix.bounds(), Rect(Point{0.0, 0.0}, Point{3.0, 1.0}));
  EXPECT_NEAR(mix.Mass(Rect(Point{0.0, 0.0}, Point{1.0, 1.0})), 0.25, 1e-12);
  EXPECT_NEAR(mix.Mass(Rect(Point{2.0, 0.0}, Point{3.0, 1.0})), 0.75, 1e-12);
  EXPECT_NEAR(mix.Mass(mix.bounds()), 1.0, 1e-12);
}

TEST(MixturePdfTest, SampleFrequencyMatchesWeights) {
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.0}, Point{1.0, 1.0})));
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{2.0, 0.0}, Point{3.0, 1.0})));
  MixturePdf mix(std::move(comps), {1.0, 1.0});
  Rng rng(6);
  int left = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) left += mix.Sample(rng)[0] <= 1.0;
  EXPECT_NEAR(static_cast<double>(left) / n, 0.5, 0.02);
}

TEST(MixturePdfTest, ConditionalMedianViaGenericBisection) {
  // Two spatially separated uniform components with weights 1:3 — the
  // median along x must fall in the right-hand component.
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.0}, Point{1.0, 1.0})));
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{2.0, 0.0}, Point{3.0, 1.0})));
  MixturePdf mix(std::move(comps), {1.0, 3.0});
  const double med = mix.ConditionalMedian(mix.bounds(), 0);
  Rect lower(Point{0.0, 0.0}, Point{med, 1.0});
  EXPECT_NEAR(mix.Mass(lower), 0.5, 1e-6);
  EXPECT_GT(med, 2.0);
}

TEST(MixturePdfTest, CloneDeepCopies) {
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.push_back(std::make_unique<UniformPdf>(UnitSquare()));
  MixturePdf mix(std::move(comps), {2.0});
  auto clone = mix.Clone();
  EXPECT_NEAR(clone->Mass(UnitSquare()), 1.0, 1e-12);
}

// ------------------------------------------------------------ Discrete

TEST(DiscreteSamplePdfTest, UniformWeightsByDefault) {
  DiscreteSamplePdf pdf({Point{0.0, 0.0}, Point{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(pdf.weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(pdf.weights()[1], 0.5);
  EXPECT_EQ(pdf.bounds(), UnitSquare());
}

TEST(DiscreteSamplePdfTest, WeightsAreNormalized) {
  DiscreteSamplePdf pdf({Point{0.0, 0.0}, Point{1.0, 1.0}}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(pdf.weights()[0], 0.25);
  EXPECT_DOUBLE_EQ(pdf.weights()[1], 0.75);
}

TEST(DiscreteSamplePdfTest, MassCountsWeightedSamples) {
  DiscreteSamplePdf pdf(
      {Point{0.1, 0.1}, Point{0.9, 0.9}, Point{0.5, 0.5}});
  Rect left(Point{0.0, 0.0}, Point{0.5, 1.0});
  // Closed regions: the sample at x=0.5 on the boundary is inside.
  EXPECT_NEAR(pdf.Mass(left), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pdf.Mass(pdf.bounds()), 1.0, 1e-12);
}

TEST(DiscreteSamplePdfTest, SplitMassesPartitionExactly) {
  Rng rng(7);
  std::vector<Point> samples;
  for (int i = 0; i < 101; ++i) {
    samples.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  DiscreteSamplePdf pdf(std::move(samples));
  for (double at : {0.25, 0.5, 0.75}) {
    auto [lo, hi] = pdf.bounds().Split(0, at);
    EXPECT_NEAR(pdf.Mass(lo) + pdf.Mass(hi), 1.0, 1e-12) << "at=" << at;
  }
}

TEST(DiscreteSamplePdfTest, ConditionalMedianAvoidsSampleCoordinates) {
  // Splitting at the returned coordinate must never cut through a sample,
  // so the two parts always partition the mass exactly.
  DiscreteSamplePdf pdf({Point{0.0}, Point{0.5}, Point{1.0}});
  const double at = pdf.ConditionalMedian(pdf.bounds(), 0);
  EXPECT_DOUBLE_EQ(at, 0.75);  // between median (0.5) and next (1.0)
  auto [lo, hi] = pdf.bounds().Split(0, at);
  EXPECT_NEAR(pdf.Mass(lo), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pdf.Mass(hi), 1.0 / 3.0, 1e-12);
}

TEST(DiscreteSamplePdfTest, SupportMbrShrinksToSamples) {
  DiscreteSamplePdf pdf({Point{0.2, 0.3}, Point{0.4, 0.8}, Point{0.9, 0.5}});
  const Rect left(Point{0.0, 0.0}, Point{0.5, 1.0});
  const Rect support = pdf.SupportMbr(left);
  EXPECT_EQ(support, Rect(Point{0.2, 0.3}, Point{0.4, 0.8}));
  // Empty region: falls back to the region itself.
  const Rect empty(Point{0.6, 0.0}, Point{0.7, 0.1});
  EXPECT_EQ(pdf.SupportMbr(empty), empty);
}

TEST(DiscreteSamplePdfTest, SampleDrawsFromTheCloud) {
  DiscreteSamplePdf pdf({Point{0.0, 0.0}, Point{1.0, 1.0}}, {1.0, 9.0});
  Rng rng(8);
  int heavy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heavy += pdf.Sample(rng)[0] == 1.0;
  EXPECT_NEAR(static_cast<double>(heavy) / n, 0.9, 0.01);
}

TEST(DiscreteSamplePdfTest, ConditionalMedianIsBetweenMedianAndNext) {
  DiscreteSamplePdf pdf({Point{0.0}, Point{0.2}, Point{0.8}},
                        {1.0, 1.0, 2.0});
  // Cumulative weights: 0.25, 0.5, 1.0 -> median coordinate 0.2, next
  // distinct coordinate 0.8 -> split point 0.5.
  EXPECT_DOUBLE_EQ(pdf.ConditionalMedian(pdf.bounds(), 0), 0.5);
}

TEST(DiscreteSamplePdfTest, DensityIsZero) {
  DiscreteSamplePdf pdf({Point{0.0}});
  EXPECT_DOUBLE_EQ(pdf.Density(Point{0.0}), 0.0);
}

TEST(DiscreteSamplePdfTest, SinglePointObject) {
  DiscreteSamplePdf pdf({Point{0.3, 0.7}});
  EXPECT_TRUE(pdf.bounds().Volume() == 0.0);
  EXPECT_NEAR(pdf.Mass(pdf.bounds()), 1.0, 1e-12);
  Rng rng(9);
  EXPECT_EQ(pdf.Sample(rng), (Point{0.3, 0.7}));
}

// Property sweep: for every PDF model, Mass of a random split partition
// sums to the parent mass.
class PdfMassAdditivityTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Pdf> MakePdf(Rng& rng) {
    switch (GetParam()) {
      case 0:
        return std::make_unique<UniformPdf>(UnitSquare());
      case 1:
        return std::make_unique<TruncatedGaussianPdf>(
            UnitSquare(), std::vector<double>{0.4, 0.6},
            std::vector<double>{0.2, 0.3});
      case 2: {
        std::vector<Point> samples;
        for (int i = 0; i < 37; ++i) {
          samples.push_back(Point{rng.NextDouble(), rng.NextDouble()});
        }
        return std::make_unique<DiscreteSamplePdf>(std::move(samples));
      }
      default: {
        std::vector<std::unique_ptr<Pdf>> comps;
        comps.push_back(std::make_unique<UniformPdf>(
            Rect(Point{0.0, 0.0}, Point{0.5, 1.0})));
        comps.push_back(std::make_unique<TruncatedGaussianPdf>(
            Rect(Point{0.5, 0.0}, Point{1.0, 1.0}),
            std::vector<double>{0.75, 0.5}, std::vector<double>{0.1, 0.2}));
        return std::make_unique<MixturePdf>(std::move(comps),
                                            std::vector<double>{1.0, 2.0});
      }
    }
  }
};

TEST_P(PdfMassAdditivityTest, NestedSplitsPartitionMass) {
  Rng rng(100 + GetParam());
  auto pdf = MakePdf(rng);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t axis = rng.NextBounded(2);
    const Interval side = pdf->bounds().side(axis);
    if (side.degenerate()) continue;
    const double at = rng.Uniform(side.lo(), side.hi());
    if (at <= side.lo() || at >= side.hi()) continue;
    auto [lo, hi] = pdf->bounds().Split(axis, at);
    EXPECT_NEAR(pdf->Mass(lo) + pdf->Mass(hi), pdf->Mass(pdf->bounds()),
                1e-9);
    // Second-level split of the lower part.
    const size_t axis2 = 1 - axis;
    const Interval side2 = lo.side(axis2);
    if (!side2.degenerate()) {
      const double at2 = rng.Uniform(side2.lo(), side2.hi());
      if (at2 > side2.lo() && at2 < side2.hi()) {
        auto [a, b] = lo.Split(axis2, at2);
        EXPECT_NEAR(pdf->Mass(a) + pdf->Mass(b), pdf->Mass(lo), 1e-9);
      }
    }
  }
}

TEST_P(PdfMassAdditivityTest, MedianSplitsMassInHalfForContinuous) {
  if (GetParam() == 2) GTEST_SKIP() << "discrete medians land on samples";
  Rng rng(200 + GetParam());
  auto pdf = MakePdf(rng);
  for (size_t axis = 0; axis < 2; ++axis) {
    const double med = pdf->ConditionalMedian(pdf->bounds(), axis);
    auto [lo, hi] = pdf->bounds().Split(axis, med);
    EXPECT_NEAR(pdf->Mass(lo), 0.5, 1e-6) << "axis=" << axis;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, PdfMassAdditivityTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace updb
