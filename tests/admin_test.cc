// Copyright 2026 The updb Authors.
// Introspection-plane tests: the slow-request audit ring (threshold,
// sampling, wraparound, seqlock reads under concurrency), the HTTP
// responder's protocol edges (405/400/431, HEAD, connection shedding),
// all five admin endpoints over a real loopback client, the /readyz flip
// when a durable store's WAL poisons its sticky status, and the digest
// oracle proving auditing never changes a served payload. The TSan job
// runs this binary to prove the mutex-free record path is race-free.

#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "service/introspection.h"
#include "service/query_service.h"
#include "service/trace.h"
#include "store/object_store.h"
#include "test_shards.h"
#include "workload/generators.h"

namespace updb {
namespace obs {
namespace {

using test_util::TestShards;

AuditRecord MakeRecord(uint64_t ticket, double total_seconds) {
  AuditRecord r;
  r.ticket = ticket;
  r.kind = "knn";
  r.status = "ok";
  r.snapshot_version = 1;
  r.exec_seconds = total_seconds;
  r.total_seconds = total_seconds;
  return r;
}

// ---------------------------------------------------------------------------
// RequestAuditLog

TEST(AuditLogTest, CapacityRoundsUpToPowerOfTwo) {
  AuditLogOptions opts;
  opts.capacity = 5;
  RequestAuditLog log(opts);
  EXPECT_EQ(log.capacity(), 8u);

  AuditLogOptions tiny;
  tiny.capacity = 0;
  EXPECT_EQ(RequestAuditLog(tiny).capacity(), 2u);
}

TEST(AuditLogTest, ThresholdAlwaysAdmitsSlowRequests) {
  AuditLogOptions opts;
  opts.slow_threshold_seconds = 0.010;
  opts.sample_every = 0;  // no sampling: slow requests only
  RequestAuditLog log(opts);

  EXPECT_TRUE(log.Record(MakeRecord(1, 0.020)));
  EXPECT_TRUE(log.Record(MakeRecord(2, 0.010)));  // at-threshold is slow
  EXPECT_FALSE(log.Record(MakeRecord(3, 0.001)));
  EXPECT_EQ(log.observed(), 3u);
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.slow_recorded(), 2u);

  const std::vector<AuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].ticket, 2u);  // newest first
  EXPECT_EQ(records[1].ticket, 1u);
  EXPECT_TRUE(records[0].slow);
}

TEST(AuditLogTest, SamplingAdmitsEveryNthFastRequest) {
  AuditLogOptions opts;
  opts.slow_threshold_seconds = 1.0;  // nothing qualifies as slow
  opts.sample_every = 4;
  RequestAuditLog log(opts);

  size_t admitted = 0;
  for (uint64_t i = 0; i < 16; ++i) {
    if (log.Record(MakeRecord(i, 0.001))) ++admitted;
  }
  EXPECT_EQ(admitted, 4u);  // observations 0, 4, 8, 12
  EXPECT_EQ(log.observed(), 16u);
  EXPECT_EQ(log.recorded(), 4u);
  EXPECT_EQ(log.slow_recorded(), 0u);
  for (const AuditRecord& r : log.Snapshot()) EXPECT_FALSE(r.slow);
}

TEST(AuditLogTest, WraparoundKeepsTheNewestRecords) {
  AuditLogOptions opts;
  opts.capacity = 4;
  opts.slow_threshold_seconds = 0.0;  // everything is slow
  RequestAuditLog log(opts);

  for (uint64_t i = 0; i < 11; ++i) {
    EXPECT_TRUE(log.Record(MakeRecord(i, 0.020)));
  }
  EXPECT_EQ(log.observed(), 11u);
  EXPECT_EQ(log.recorded(), 11u);

  // The ring holds exactly capacity records: the newest four, newest
  // first — bounded memory no matter how many requests completed.
  const std::vector<AuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ticket, 10u - i);
  }
}

TEST(AuditLogTest, RegistryMirrorsObservedAndRecordedClasses) {
  MetricsRegistry registry;
  AuditLogOptions opts;
  opts.capacity = 8;
  opts.slow_threshold_seconds = 0.010;
  opts.sample_every = 2;
  opts.registry = &registry;
  RequestAuditLog log(opts);

  log.Record(MakeRecord(1, 0.020));  // slow
  log.Record(MakeRecord(2, 0.001));  // fast, observation 1 -> dropped
  log.Record(MakeRecord(3, 0.001));  // fast, observation 2 -> sampled
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("updb_audit_observed_total 3"), std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("updb_audit_recorded_total{class=\"slow\"} 1"),
      std::string::npos);
  EXPECT_NE(
      prom.find("updb_audit_recorded_total{class=\"sampled\"} 1"),
      std::string::npos);
  EXPECT_NE(prom.find("updb_audit_capacity 8"), std::string::npos);
}

TEST(AuditLogTest, JsonCarriesHeaderAndPerStageAttribution) {
  AuditLogOptions opts;
  opts.capacity = 4;
  opts.slow_threshold_seconds = 0.010;
  RequestAuditLog log(opts);
  AuditRecord r = MakeRecord(42, 0.030);
  r.queue_seconds = 0.005;
  r.candidates = 17;
  r.idca_iterations = 3;
  ASSERT_TRUE(log.Record(r));

  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slow_threshold_seconds\": 0.01"), std::string::npos);
  EXPECT_NE(json.find("\"observed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ticket\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"knn\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_seconds\": 0.005"), std::string::npos);
  EXPECT_NE(json.find("\"candidates\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"idca_iterations\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"slow\": true"), std::string::npos);
}

TEST(AuditLogTest, ConcurrentRecordersAndReadersStayConsistent) {
  AuditLogOptions opts;
  opts.capacity = 16;
  opts.slow_threshold_seconds = 0.0;
  RequestAuditLog log(opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Tag the payload with the ticket so a torn read (same ticket,
        // mismatched candidates) is detectable below.
        AuditRecord r = MakeRecord(
            static_cast<uint64_t>(t) * kPerThread + i, 0.020);
        r.candidates = r.ticket * 3;
        log.Record(r);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&log, &done] {
    while (!done.load(std::memory_order_acquire)) {
      for (const AuditRecord& r : log.Snapshot()) {
        ASSERT_EQ(r.candidates, r.ticket * 3);
      }
    }
  });
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(log.observed(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.recorded() + log.collisions(), log.observed());
  for (const AuditRecord& r : log.Snapshot()) {
    EXPECT_EQ(r.candidates, r.ticket * 3);
  }
}

// ---------------------------------------------------------------------------
// net::HttpServer protocol edges

/// Sends raw bytes to 127.0.0.1:port and returns everything the server
/// wrote back (the admin server always closes after one response).
std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

net::HttpResponse EchoHandler(const net::HttpRequest& request) {
  net::HttpResponse response;
  response.body = request.method + " " + request.Path() + "\n";
  return response;
}

TEST(HttpServerTest, RejectsUnsupportedMethodsAndMalformedRequests) {
  net::HttpServer server({}, EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  const std::string post =
      RawRequest(server.port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;
  EXPECT_NE(post.find("Connection: close"), std::string::npos);

  const std::string garbage = RawRequest(server.port(), "not-http\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos) << garbage;
}

TEST(HttpServerTest, OversizedRequestHeadDraws431) {
  net::HttpServerOptions opts;
  opts.max_request_bytes = 128;
  net::HttpServer server(opts, EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  const std::string huge = "GET / HTTP/1.1\r\nX-Pad: " +
                           std::string(512, 'x') + "\r\n\r\n";
  const std::string response = RawRequest(server.port(), huge);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
}

TEST(HttpServerTest, HeadElidesBodyButKeepsContentLength) {
  net::HttpServer server({}, EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  const std::string head =
      RawRequest(server.port(), "HEAD /x HTTP/1.1\r\n\r\n");
  // The GET body would be "HEAD /x\n" (8 bytes); HEAD advertises that
  // length but sends no payload after the blank line.
  EXPECT_NE(head.find("200"), std::string::npos) << head;
  EXPECT_NE(head.find("Content-Length: 8"), std::string::npos) << head;
  const size_t blank = head.find("\r\n\r\n");
  ASSERT_NE(blank, std::string::npos);
  EXPECT_EQ(head.substr(blank + 4), "");
}

TEST(HttpServerTest, ShedsConnectionsBeyondTheCap) {
  net::HttpServerOptions opts;
  opts.max_connections = 1;
  net::HttpServer server(opts, EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single slot with an idle connection, and wait until the
  // server has actually accepted it into its table.
  const int idle = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(idle, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(idle, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  for (int i = 0; i < 500 && server.connections_accepted() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.connections_accepted(), 1u);

  // The next connection is shed: accepted then closed with no response.
  const std::string shed =
      RawRequest(server.port(), "GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(shed, "");
  for (int i = 0; i < 500 && server.connections_rejected() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(server.connections_rejected(), 1u);
  ::close(idle);
}

// ---------------------------------------------------------------------------
// AdminServer endpoints over a real loopback client

TEST(AdminServerTest, ServesAllEndpointsOverLoopback) {
  MetricsRegistry registry;
  registry.Counter("updb_admin_unit_total", "Unit counter")->Add(5);
  AuditLogOptions audit_opts;
  audit_opts.slow_threshold_seconds = 0.0;
  RequestAuditLog audit(audit_opts);
  ASSERT_TRUE(audit.Record(MakeRecord(7, 0.020)));

  AdminServerOptions opts;
  opts.registry = &registry;
  opts.audit_log = &audit;
  opts.build_info = "admin_test";
  opts.statusz_fields = [] { return std::string("\"unit\": 1"); };
  AdminServer admin(opts);
  ASSERT_TRUE(admin.Start().ok());
  ASSERT_NE(admin.port(), 0);

  const auto get = [&admin](const std::string& target) {
    const StatusOr<net::HttpResponse> response =
        net::HttpGet(admin.port(), target);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : net::HttpResponse{};
  };

  const net::HttpResponse index = get("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  const net::HttpResponse healthz = get("/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "ok\n");
  EXPECT_NE(healthz.content_type.find("text/plain"), std::string::npos);

  // No readiness callback configured: a store-less process is ready.
  const net::HttpResponse readyz = get("/readyz");
  EXPECT_EQ(readyz.status, 200);

  const net::HttpResponse metrics = get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("# TYPE updb_admin_unit_total counter"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("updb_admin_unit_total 5"), std::string::npos);

  const net::HttpResponse statusz = get("/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.content_type, "application/json");
  EXPECT_NE(statusz.body.find("\"build\": \"admin_test\""),
            std::string::npos)
      << statusz.body;
  EXPECT_NE(statusz.body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"unit\": 1"), std::string::npos);

  const net::HttpResponse requestz = get("/requestz");
  EXPECT_EQ(requestz.status, 200);
  EXPECT_EQ(requestz.content_type, "application/json");
  EXPECT_NE(requestz.body.find("\"ticket\": 7"), std::string::npos)
      << requestz.body;

  const net::HttpResponse missing = get("/nope");
  EXPECT_EQ(missing.status, 404);

  // Query strings are routed by path.
  EXPECT_EQ(get("/healthz?verbose=1").status, 200);

  admin.Stop();
  EXPECT_FALSE(admin.running());
}

TEST(AdminServerTest, RequestzWrapsAroundAndFiltersByThreshold) {
  AuditLogOptions audit_opts;
  audit_opts.capacity = 4;
  audit_opts.slow_threshold_seconds = 0.010;
  audit_opts.sample_every = 0;
  RequestAuditLog audit(audit_opts);
  for (uint64_t i = 0; i < 10; ++i) {
    audit.Record(MakeRecord(i, 0.020));   // slow: admitted
    audit.Record(MakeRecord(100 + i, 0.001));  // fast: filtered out
  }

  AdminServerOptions opts;
  opts.audit_log = &audit;
  const AdminServer admin(opts);
  net::HttpRequest request;
  request.method = "GET";
  request.target = "/requestz";
  const net::HttpResponse response = admin.Handle(request);
  EXPECT_EQ(response.status, 200);
  // Only the newest capacity-many slow tickets survive the wraparound;
  // no fast ticket (>= 100) was ever admitted.
  for (uint64_t kept : {9u, 8u, 7u, 6u}) {
    EXPECT_NE(
        response.body.find("\"ticket\": " + std::to_string(kept)),
        std::string::npos)
        << response.body;
  }
  EXPECT_EQ(response.body.find("\"ticket\": 5"), std::string::npos);
  EXPECT_EQ(response.body.find("\"ticket\": 10"), std::string::npos);
  EXPECT_NE(response.body.find("\"observed\": 20"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Store-backed readiness and /statusz

/// A PDF type io/dataset_io.cc cannot serialize: inserting it into a
/// durable store fails the WAL append encoding and poisons the sticky
/// wal_status() — the cheapest deterministic WAL failure available.
class UnserializablePdf : public Pdf {
 public:
  UnserializablePdf() : bounds_(Point{0.4, 0.4}, Point{0.6, 0.6}) {}
  const Rect& bounds() const override { return bounds_; }
  double Mass(const Rect&) const override { return 1.0; }
  Point Sample(Rng&) const override { return Point{0.5, 0.5}; }
  double Density(const Point&) const override { return 25.0; }
  std::unique_ptr<Pdf> Clone() const override {
    return std::make_unique<UnserializablePdf>();
  }

 private:
  Rect bounds_;
};

std::string FreshDir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/updb_admin_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(AdminServerTest, ReadyzFlipsWhenTheWalFails) {
  store::StoreOptions sopts;
  sopts.num_shards = TestShards();
  sopts.durability.wal_dir = FreshDir("readyz");
  StatusOr<std::unique_ptr<store::VersionedObjectStore>> opened =
      store::VersionedObjectStore::Open(sopts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  store::VersionedObjectStore& s = **opened;

  obs::AdminServerOptions opts =
      service::MakeAdminOptions(nullptr, &s, nullptr);
  AdminServer admin(opts);
  ASSERT_TRUE(admin.Start().ok());

  const StatusOr<net::HttpResponse> before =
      net::HttpGet(admin.port(), "/readyz");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->status, 200);

  // Poison the WAL: the unencodable insert is rejected AND the sticky
  // wal_status() latches the failure. The very next probe must flip.
  EXPECT_FALSE(s.Insert(std::make_shared<UnserializablePdf>()).ok());
  ASSERT_FALSE(s.wal_status().ok());

  const StatusOr<net::HttpResponse> after =
      net::HttpGet(admin.port(), "/readyz");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 503);
  EXPECT_NE(after->body.find("wal failed"), std::string::npos)
      << after->body;

  std::filesystem::remove_all(sopts.durability.wal_dir);
}

TEST(AdminServerTest, ReadyzRequiresAStore) {
  const obs::AdminReadiness none = service::StoreReadiness(nullptr, nullptr);
  EXPECT_FALSE(none.ready);
  EXPECT_NE(none.reason.find("no store"), std::string::npos);

  store::RecoveryReport lossy;
  lossy.data_loss = true;
  store::StoreOptions sopts;
  sopts.num_shards = TestShards();
  const store::VersionedObjectStore s(sopts);
  const obs::AdminReadiness lost = service::StoreReadiness(&s, &lossy);
  EXPECT_FALSE(lost.ready);
  EXPECT_NE(lost.reason.find("data loss"), std::string::npos);
  EXPECT_TRUE(service::StoreReadiness(&s, nullptr).ready);
}

TEST(AdminServerTest, StatuszReportsStoreAndServiceSections) {
  workload::SyntheticConfig cfg;
  cfg.num_objects = 12;
  cfg.max_extent = 0.05;
  cfg.seed = 7;
  store::StoreOptions sopts;
  sopts.num_shards = TestShards();
  const store::VersionedObjectStore s(workload::MakeSyntheticDatabase(cfg),
                                      sopts);
  service::QueryServiceOptions qopts;
  qopts.num_workers = 1;
  const service::QueryService svc(s.latest(), qopts);

  const obs::AdminServerOptions opts =
      service::MakeAdminOptions(&svc, &s, nullptr);
  const AdminServer admin(opts);
  net::HttpRequest request;
  request.method = "GET";
  request.target = "/statusz";
  const net::HttpResponse response = admin.Handle(request);
  EXPECT_EQ(response.status, 200);
  const std::string& body = response.body;
  EXPECT_NE(body.find("\"ready\": true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"snapshot_version\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"live_objects\": 12"), std::string::npos);
  EXPECT_NE(body.find("\"shard_live_counts\""), std::string::npos);
  EXPECT_NE(body.find("\"durable\": false"), std::string::npos);
  EXPECT_NE(body.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(body.find("\"admitted\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Digest oracle: auditing never changes a served payload

TEST(AdminServerTest, AuditOnOffDigestsAreIdentical) {
  workload::SyntheticConfig cfg;
  cfg.num_objects = 30;
  cfg.max_extent = 0.08;
  cfg.seed = 7;
  const auto db = std::make_shared<const UncertainDatabase>(
      workload::MakeSyntheticDatabase(cfg));
  store::StoreOptions sopts;
  sopts.num_shards = TestShards();

  service::TraceConfig tcfg;
  tcfg.num_requests = 14;
  tcfg.seed = 99;
  tcfg.query_extent = 0.08;
  tcfg.k_max = 4;
  tcfg.budget.max_iterations = 3;
  const std::vector<service::QueryRequest> trace = MakeTrace(*db, tcfg);

  auto run = [&](RequestAuditLog* audit) {
    service::QueryServiceOptions opts;
    opts.num_workers = 2;
    opts.batch_size = 4;
    opts.max_queue = trace.size();
    opts.audit_log = audit;
    service::QueryService svc(
        store::VersionedObjectStore(*db, sopts).latest(), opts);
    const service::ReplayResult result =
        service::ReplayTrace(svc, trace, /*qps=*/0.0);
    EXPECT_EQ(result.admitted, trace.size());
    return service::ResponseDigest(result.responses);
  };

  const uint64_t off = run(nullptr);
  AuditLogOptions audit_opts;
  audit_opts.slow_threshold_seconds = 0.0;  // record everything
  RequestAuditLog audit(audit_opts);
  const uint64_t on = run(&audit);
  EXPECT_EQ(on, off);

  // The enabled run really audited: every completed request was observed
  // and recorded with identity and per-stage attribution.
  EXPECT_EQ(audit.observed(), trace.size());
  EXPECT_EQ(audit.recorded(), trace.size());
  const std::vector<AuditRecord> records = audit.Snapshot();
  ASSERT_FALSE(records.empty());
  for (const AuditRecord& r : records) {
    EXPECT_STRNE(r.kind, "");
    EXPECT_STREQ(r.status, "ok");
    EXPECT_EQ(r.snapshot_version, 1u);
    EXPECT_GE(r.total_seconds, r.exec_seconds);
  }
}

}  // namespace
}  // namespace obs
}  // namespace updb
