#include "gf/poisson_binomial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "gf/kernels.h"

namespace updb {
namespace {

/// Brute-force Poisson-binomial PDF by enumerating all 2^N outcomes.
std::vector<double> BruteForcePdf(const std::vector<double>& probs) {
  const size_t n = probs.size();
  std::vector<double> pdf(n + 1, 0.0);
  for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
    double p = 1.0;
    size_t ones = 0;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        p *= probs[i];
        ++ones;
      } else {
        p *= 1.0 - probs[i];
      }
    }
    pdf[ones] += p;
  }
  return pdf;
}

TEST(PoissonBinomialTest, EmptyInputIsPointMassAtZero) {
  const std::vector<double> pdf = PoissonBinomialPdf({});
  ASSERT_EQ(pdf.size(), 1u);
  EXPECT_DOUBLE_EQ(pdf[0], 1.0);
}

TEST(PoissonBinomialTest, SingleVariable) {
  const std::vector<double> probs{0.3};
  const std::vector<double> pdf = PoissonBinomialPdf(probs);
  ASSERT_EQ(pdf.size(), 2u);
  EXPECT_DOUBLE_EQ(pdf[0], 0.7);
  EXPECT_DOUBLE_EQ(pdf[1], 0.3);
}

TEST(PoissonBinomialTest, PaperExample2) {
  // Example 2 of the paper: P = {0.2, 0.1, 0.3}. Note the paper's printed
  // expansion contains an arithmetic slip: it reports 0.418 x^1 where
  // 0.26 * 0.7 + 0.72 * 0.3 = 0.398 (and consequently P(DomCount < 2) =
  // 0.902, not the 92.2% stated). P(DomCount = 0) = 0.504 matches.
  const std::vector<double> probs{0.2, 0.1, 0.3};
  const std::vector<double> pdf = PoissonBinomialPdf(probs);
  ASSERT_EQ(pdf.size(), 4u);
  EXPECT_NEAR(pdf[0], 0.504, 1e-12);
  EXPECT_NEAR(pdf[1], 0.398, 1e-12);
  EXPECT_NEAR(pdf[0] + pdf[1], 0.902, 1e-9);
}

TEST(PoissonBinomialTest, MatchesBruteForce) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextBounded(10);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.NextDouble();
    const std::vector<double> expected = BruteForcePdf(probs);
    const std::vector<double> actual = PoissonBinomialPdf(probs);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_NEAR(actual[k], expected[k], 1e-12) << "k=" << k;
    }
  }
}

TEST(PoissonBinomialTest, IdenticalProbsGiveBinomial) {
  const double p = 0.4;
  const size_t n = 8;
  const std::vector<double> probs(n, p);
  const std::vector<double> pdf = PoissonBinomialPdf(probs);
  for (size_t k = 0; k <= n; ++k) {
    double binom = 1.0;
    for (size_t i = 0; i < k; ++i) {
      binom *= static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    const double expected =
        binom * std::pow(p, k) * std::pow(1 - p, static_cast<double>(n - k));
    EXPECT_NEAR(pdf[k], expected, 1e-12);
  }
}

TEST(PoissonBinomialTest, PdfSumsToOne) {
  Rng rng(23);
  std::vector<double> probs(64);
  for (double& p : probs) p = rng.NextDouble();
  const std::vector<double> pdf = PoissonBinomialPdf(probs);
  double sum = 0.0;
  for (double v : pdf) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PoissonBinomialPrefixTest, MatchesFullExpansionBelowK) {
  Rng rng(29);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 5 + rng.NextBounded(20);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.NextDouble();
    const std::vector<double> full = PoissonBinomialPdf(probs);
    for (size_t k : {size_t{1}, size_t{3}, n}) {
      const std::vector<double> prefix = PoissonBinomialPrefix(probs, k);
      ASSERT_EQ(prefix.size(), k + 1);
      for (size_t x = 0; x < k && x < full.size(); ++x) {
        EXPECT_NEAR(prefix[x], full[x], 1e-12);
      }
      double tail = 0.0;
      for (size_t x = k; x < full.size(); ++x) tail += full[x];
      EXPECT_NEAR(prefix[k], tail, 1e-12);
    }
  }
}

TEST(PoissonBinomialPrefixTest, DegenerateProbabilities) {
  const std::vector<double> probs{1.0, 1.0, 0.0};
  const std::vector<double> prefix = PoissonBinomialPrefix(probs, 2);
  EXPECT_DOUBLE_EQ(prefix[0], 0.0);
  EXPECT_DOUBLE_EQ(prefix[1], 0.0);
  EXPECT_DOUBLE_EQ(prefix[2], 1.0);  // count is exactly 2 -> all in tail
}

TEST(RegularGfPairBoundsTest, DegenerateBracketsAreExact) {
  const std::vector<double> probs{0.2, 0.5, 0.9};
  const CountDistributionBounds b = RegularGfPairBounds(probs, probs);
  const std::vector<double> pdf = PoissonBinomialPdf(probs);
  for (size_t k = 0; k < pdf.size(); ++k) {
    EXPECT_NEAR(b.lb(k), pdf[k], 1e-9);
    EXPECT_NEAR(b.ub(k), pdf[k], 1e-9);
  }
}

TEST(RegularGfPairBoundsTest, BracketsAnyConsistentTruth) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextBounded(8);
    std::vector<double> lb(n), ub(n), truth(n);
    for (size_t i = 0; i < n; ++i) {
      lb[i] = rng.NextDouble();
      ub[i] = lb[i] + (1.0 - lb[i]) * rng.NextDouble();
      truth[i] = lb[i] + (ub[i] - lb[i]) * rng.NextDouble();
    }
    const CountDistributionBounds bounds = RegularGfPairBounds(lb, ub);
    const std::vector<double> pdf = PoissonBinomialPdf(truth);
    EXPECT_TRUE(bounds.Brackets(pdf, 1e-9)) << "trial=" << trial;
  }
}

TEST(PoissonBinomialTest, KernelDispatchParityOnPdfAndPrefix) {
  // The in-place two-term convolution routes through the gf kernel table
  // (shift_mul_add); scalar and vector tables must agree bit for bit.
  if (!gf::VectorKernelsAvailable()) GTEST_SKIP() << "no vector kernels";
  const bool was_scalar = &gf::ActiveKernels() == &gf::ScalarKernels();
  Rng rng(271);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.NextBounded(64);
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.NextDouble();
    const size_t upto = 1 + rng.NextBounded(n);
    gf::ForceScalarKernels(true);
    const std::vector<double> pdf_s = PoissonBinomialPdf(probs);
    const std::vector<double> pre_s = PoissonBinomialPrefix(probs, upto);
    gf::ForceScalarKernels(false);
    const std::vector<double> pdf_v = PoissonBinomialPdf(probs);
    const std::vector<double> pre_v = PoissonBinomialPrefix(probs, upto);
    ASSERT_EQ(pdf_s.size(), pdf_v.size());
    for (size_t k = 0; k < pdf_s.size(); ++k) {
      ASSERT_EQ(pdf_s[k], pdf_v[k]) << "k=" << k;
    }
    ASSERT_EQ(pre_s.size(), pre_v.size());
    for (size_t k = 0; k < pre_s.size(); ++k) {
      ASSERT_EQ(pre_s[k], pre_v[k]) << "k=" << k;
    }
  }
  gf::ForceScalarKernels(was_scalar);
}

}  // namespace
}  // namespace updb
