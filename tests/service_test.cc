#include "service/query_service.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "gf/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "queries/queries.h"
#include "service/trace.h"
#include "store/object_store.h"
#include "test_shards.h"
#include "workload/generators.h"

namespace updb {
namespace service {
namespace {

using test_util::TestShards;

/// What the plain-database QueryService constructor does internally, but
/// honoring TestShards(): wraps `db` into a store sharded N ways and pins
/// its first published version.
std::shared_ptr<const store::StoreSnapshot> PinnedSnapshot(
    const std::shared_ptr<const UncertainDatabase>& db) {
  store::StoreOptions sopts;
  sopts.num_shards = TestShards();
  if (db == nullptr || db->empty()) {
    return store::VersionedObjectStore(sopts).latest();
  }
  return store::VersionedObjectStore(*db, sopts).latest();
}

std::shared_ptr<const UncertainDatabase> MakeDb(size_t n, double extent,
                                                uint64_t seed = 7) {
  workload::SyntheticConfig cfg;
  cfg.num_objects = n;
  cfg.max_extent = extent;
  cfg.seed = seed;
  return std::make_shared<const UncertainDatabase>(
      workload::MakeSyntheticDatabase(cfg));
}

std::shared_ptr<const Pdf> MakeQuery(double x, double y, double extent,
                                     uint64_t seed = 5) {
  Rng rng(seed);
  return workload::MakeQueryObject(Point{x, y}, extent,
                                   workload::ObjectModel::kUniform, 0, rng);
}

QueryRequest KnnRequest(std::shared_ptr<const Pdf> q, size_t k, double tau,
                        int iterations) {
  QueryRequest req;
  req.kind = QueryKind::kThresholdKnn;
  req.query = std::move(q);
  req.k = k;
  req.tau = tau;
  req.budget.max_iterations = iterations;
  return req;
}

/// Runs one request through a fresh service and returns its response.
QueryResponse RunOne(std::shared_ptr<const UncertainDatabase> db,
                     QueryRequest req, QueryServiceOptions options = {}) {
  QueryService service(PinnedSnapshot(db), options);
  const StatusOr<uint64_t> ticket = service.Submit(std::move(req));
  EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
  return service.Take(*ticket);
}

TEST(QueryServiceTest, KnnMatchesDirectQuery) {
  const auto db = MakeDb(40, 0.08);
  const auto q = MakeQuery(0.5, 0.5, 0.08);
  IdcaConfig direct_cfg;
  direct_cfg.max_iterations = 4;
  const RTree index = BuildRTree(db->objects());
  std::vector<ThresholdQueryResult> direct =
      ProbabilisticThresholdKnn(*db, index, *q, 3, 0.5, direct_cfg);
  std::sort(direct.begin(), direct.end(),
            [](const ThresholdQueryResult& a, const ThresholdQueryResult& b) {
              return a.id < b.id;
            });

  const QueryResponse response = RunOne(db, KnnRequest(q, 3, 0.5, 4));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.threshold.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(response.threshold[i].id, direct[i].id);
    EXPECT_EQ(response.threshold[i].decision, direct[i].decision);
    EXPECT_EQ(response.threshold[i].prob.lb, direct[i].prob.lb);
    EXPECT_EQ(response.threshold[i].prob.ub, direct[i].prob.ub);
  }
}

TEST(QueryServiceTest, RknnMatchesDirectQuery) {
  const auto db = MakeDb(30, 0.08);
  const auto q = MakeQuery(0.4, 0.6, 0.08);
  IdcaConfig direct_cfg;
  direct_cfg.max_iterations = 3;
  const RTree index = BuildRTree(db->objects());
  const std::vector<ThresholdQueryResult> direct =
      ProbabilisticThresholdRknn(*db, index, *q, 2, 0.5, direct_cfg);
  // The direct RkNN filter iterates objects in id order already.
  QueryRequest req;
  req.kind = QueryKind::kThresholdRknn;
  req.query = q;
  req.k = 2;
  req.tau = 0.5;
  req.budget.max_iterations = 3;
  const QueryResponse response = RunOne(db, std::move(req));
  ASSERT_EQ(response.threshold.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(response.threshold[i].id, direct[i].id);
    EXPECT_EQ(response.threshold[i].decision, direct[i].decision);
    EXPECT_EQ(response.threshold[i].prob.lb, direct[i].prob.lb);
    EXPECT_EQ(response.threshold[i].prob.ub, direct[i].prob.ub);
  }
}

TEST(QueryServiceTest, InverseRankingAndExpectedRankMatchDirect) {
  const auto db = MakeDb(25, 0.1);
  const auto q = MakeQuery(0.5, 0.5, 0.1);
  IdcaConfig direct_cfg;
  direct_cfg.max_iterations = 3;

  QueryRequest inv;
  inv.kind = QueryKind::kInverseRanking;
  inv.query = q;
  inv.target = 7;
  inv.budget.max_iterations = 3;
  const QueryResponse inv_response = RunOne(db, std::move(inv));
  const CountDistributionBounds direct_bounds =
      ProbabilisticInverseRanking(*db, 7, *q, direct_cfg);
  ASSERT_EQ(inv_response.rank_bounds.num_ranks(), direct_bounds.num_ranks());
  for (size_t k = 0; k < direct_bounds.num_ranks(); ++k) {
    EXPECT_EQ(inv_response.rank_bounds.lb(k), direct_bounds.lb(k));
    EXPECT_EQ(inv_response.rank_bounds.ub(k), direct_bounds.ub(k));
  }

  QueryRequest er;
  er.kind = QueryKind::kExpectedRank;
  er.query = q;
  er.budget.max_iterations = 2;
  direct_cfg.max_iterations = 2;
  const QueryResponse er_response = RunOne(db, std::move(er));
  const std::vector<ExpectedRankEntry> direct_order =
      ExpectedRankOrder(*db, *q, direct_cfg);
  ASSERT_EQ(er_response.expected.size(), direct_order.size());
  for (size_t i = 0; i < direct_order.size(); ++i) {
    EXPECT_EQ(er_response.expected[i].id, direct_order[i].id);
    EXPECT_EQ(er_response.expected[i].expected_rank.lb,
              direct_order[i].expected_rank.lb);
    EXPECT_EQ(er_response.expected[i].expected_rank.ub,
              direct_order[i].expected_rank.ub);
  }
}

/// Acceptance: responses are bit-identical across num_workers in {1,2,8},
/// and also across batch sizes — batching may regroup work but must never
/// change a result.
TEST(QueryServiceTest, DeterministicAcrossWorkersAndBatchSizes) {
  const auto db = MakeDb(35, 0.08);
  TraceConfig tcfg;
  tcfg.num_requests = 18;
  tcfg.seed = 99;
  tcfg.query_extent = 0.08;
  tcfg.k_max = 4;
  tcfg.budget.max_iterations = 3;
  tcfg.deadline_fraction = 0.3;
  tcfg.deadline_ms = 10.0;
  const std::vector<QueryRequest> trace = MakeTrace(*db, tcfg);

  auto run = [&](size_t workers, size_t batch) {
    QueryServiceOptions opts;
    opts.num_workers = workers;
    opts.batch_size = batch;
    opts.max_queue = trace.size();
    QueryService service(PinnedSnapshot(db), opts);
    const ReplayResult result = ReplayTrace(service, trace, /*qps=*/0.0);
    EXPECT_EQ(result.admitted, trace.size());
    return ResponseDigest(result.responses);
  };

  const uint64_t base = run(1, 4);
  EXPECT_EQ(run(2, 4), base);
  EXPECT_EQ(run(8, 4), base);
  EXPECT_EQ(run(2, 1), base);
  EXPECT_EQ(run(2, 8), base);
}

/// Observability is payload-invariant: running the same trace with the
/// span recorder and a metrics registry attached produces bit-identical
/// response payloads (digest oracle), while the recorder actually captures
/// the span tree down to IDCA iterations.
TEST(QueryServiceTest, TracingOnOffDigestsAreIdentical) {
  const auto db = MakeDb(35, 0.08);
  TraceConfig tcfg;
  tcfg.num_requests = 18;
  tcfg.seed = 99;
  tcfg.query_extent = 0.08;
  tcfg.k_max = 4;
  tcfg.budget.max_iterations = 3;
  const std::vector<QueryRequest> trace = MakeTrace(*db, tcfg);

  auto run = [&](obs::TraceRecorder* recorder,
                 obs::MetricsRegistry* registry) {
    QueryServiceOptions opts;
    opts.num_workers = 2;
    opts.batch_size = 4;
    opts.max_queue = trace.size();
    opts.trace = recorder;
    opts.metrics_registry = registry;
    QueryService service(PinnedSnapshot(db), opts);
    const ReplayResult result = ReplayTrace(service, trace, /*qps=*/0.0);
    EXPECT_EQ(result.admitted, trace.size());
    return ResponseDigest(result.responses);
  };

  const uint64_t off = run(nullptr, nullptr);
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  const uint64_t on = run(&recorder, &registry);
  EXPECT_EQ(on, off);

  // The enabled run recorded the whole span tree: submit instants, queue
  // waits, batches, per-request execution, engine iterations.
  size_t submits = 0, queue_waits = 0, batches = 0, iters = 0;
  for (const obs::TraceEvent& e : recorder.Events()) {
    if (std::string_view(e.name) == "submit") ++submits;
    if (std::string_view(e.name) == "queue_wait") ++queue_waits;
    if (std::string_view(e.name) == "batch") ++batches;
    if (std::string_view(e.name) == "idca_iter") ++iters;
  }
  EXPECT_EQ(submits, trace.size());
  EXPECT_EQ(queue_waits, trace.size());
  EXPECT_GT(batches, 0u);
  EXPECT_GT(iters, 0u);

  // And the registry's counters agree with the service's own snapshot.
  EXPECT_EQ(
      registry.Counter("updb_service_completed_total", "")->Value(),
      trace.size());
}

/// The engine work counters surfaced in RequestStats are deterministic and
/// thread-count-invariant (they are pure functions of request, snapshot
/// and budget — the chunk partition never depends on the worker count).
TEST(QueryServiceTest, EngineCountersAreThreadCountInvariant) {
  const auto db = MakeDb(30, 0.09);
  TraceConfig tcfg;
  tcfg.num_requests = 12;
  tcfg.seed = 123;
  tcfg.query_extent = 0.09;
  tcfg.k_max = 3;
  tcfg.budget.max_iterations = 3;
  const std::vector<QueryRequest> trace = MakeTrace(*db, tcfg);

  struct CounterRow {
    uint64_t id, ugf, hits, misses;
  };
  auto run = [&](size_t workers) {
    QueryServiceOptions opts;
    opts.num_workers = workers;
    opts.batch_size = 4;
    opts.max_queue = trace.size();
    QueryService service(PinnedSnapshot(db), opts);
    const ReplayResult result = ReplayTrace(service, trace, /*qps=*/0.0);
    std::vector<CounterRow> rows;
    for (const QueryResponse& r : result.responses) {
      rows.push_back({r.id, r.stats.ugf_multiplies,
                      r.stats.verdict_cache_hits,
                      r.stats.verdict_cache_misses});
    }
    std::sort(rows.begin(), rows.end(),
              [](const CounterRow& a, const CounterRow& b) {
                return a.id < b.id;
              });
    return rows;
  };

  const std::vector<CounterRow> serial = run(1);
  uint64_t total_multiplies = 0;
  for (const CounterRow& row : serial) total_multiplies += row.ugf;
  EXPECT_GT(total_multiplies, 0u);
  for (size_t workers : {2u, 8u}) {
    const std::vector<CounterRow> parallel = run(workers);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].ugf, serial[i].ugf) << "ticket " << i;
      EXPECT_EQ(parallel[i].hits, serial[i].hits) << "ticket " << i;
      EXPECT_EQ(parallel[i].misses, serial[i].misses) << "ticket " << i;
    }
  }
}

/// A budget-expired query must return kUndecided with a valid bracket that
/// is consistent with the converged ground truth — never a wrong decision.
TEST(QueryServiceTest, ExpiredBudgetYieldsValidBracketNeverWrongDecision) {
  const auto db = MakeDb(22, 0.12);
  const auto q = MakeQuery(0.5, 0.5, 0.12);

  // Ground truth: generous budget.
  const QueryResponse truth = RunOne(db, KnnRequest(q, 3, 0.5, 6));

  // Tiny deadline: compiles to 1 iteration (est 5 ms/iter, 5 ms deadline).
  QueryRequest starved = KnnRequest(q, 3, 0.5, 6);
  starved.budget.deadline_ms = 5.0;
  const QueryResponse response = RunOne(db, std::move(starved));
  EXPECT_EQ(response.stats.iterations_granted, 1);

  ASSERT_EQ(response.threshold.size(), truth.threshold.size());
  bool any_undecided = false;
  for (size_t i = 0; i < response.threshold.size(); ++i) {
    const ThresholdQueryResult& fast = response.threshold[i];
    const ThresholdQueryResult& slow = truth.threshold[i];
    ASSERT_EQ(fast.id, slow.id);
    // Bracket validity.
    EXPECT_LE(fast.prob.lb, fast.prob.ub);
    EXPECT_GE(fast.prob.lb, 0.0);
    EXPECT_LE(fast.prob.ub, 1.0);
    // The starved bracket must contain the converged one (refinement only
    // tightens), up to floating noise.
    EXPECT_LE(fast.prob.lb, slow.prob.lb + 1e-12);
    EXPECT_GE(fast.prob.ub, slow.prob.ub - 1e-12);
    // Never a wrong decision.
    if (fast.decision == PredicateDecision::kTrue) {
      EXPECT_NE(slow.decision, PredicateDecision::kFalse);
    }
    if (fast.decision == PredicateDecision::kFalse) {
      EXPECT_NE(slow.decision, PredicateDecision::kTrue);
    }
    any_undecided |= fast.decision == PredicateDecision::kUndecided;
  }
  if (any_undecided) {
    EXPECT_EQ(response.status, ResponseStatus::kExpired);
  }
}

TEST(QueryServiceTest, ZeroIterationDeadlineStillAnswers) {
  const auto db = MakeDb(20, 0.1);
  // Deadline below one estimated iteration: filter phase only.
  QueryRequest req = KnnRequest(MakeQuery(0.5, 0.5, 0.1), 2, 0.5, 8);
  req.budget.deadline_ms = 1.0;
  const QueryResponse response = RunOne(db, std::move(req));
  EXPECT_EQ(response.stats.iterations_granted, 0);
  for (const ThresholdQueryResult& r : response.threshold) {
    EXPECT_LE(r.prob.lb, r.prob.ub);
  }
}

TEST(QueryServiceTest, RejectsWhenAdmissionQueueFull) {
  const auto db = MakeDb(15, 0.05);
  QueryServiceOptions opts;
  opts.max_queue = 2;
  opts.start_paused = true;
  QueryService service(PinnedSnapshot(db), opts);
  const auto q = MakeQuery(0.5, 0.5, 0.05);
  const StatusOr<uint64_t> t0 = service.Submit(KnnRequest(q, 1, 0.5, 2));
  const StatusOr<uint64_t> t1 = service.Submit(KnnRequest(q, 1, 0.5, 2));
  const StatusOr<uint64_t> t2 = service.Submit(KnnRequest(q, 1, 0.5, 2));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_FALSE(t2.ok());
  EXPECT_EQ(t2.status().code(), StatusCode::kResourceExhausted);
  service.Resume();
  service.Flush();
  EXPECT_EQ(service.Take(*t0).status, ResponseStatus::kOk);
  EXPECT_EQ(service.Take(*t1).status, ResponseStatus::kOk);
  const MetricsSnapshot m = service.metrics().Snapshot();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.admitted, 2u);
  EXPECT_EQ(m.completed, 2u);
}

TEST(QueryServiceTest, RejectsInvalidRequests) {
  const auto db = MakeDb(10, 0.05);
  QueryService service(PinnedSnapshot(db), {});
  QueryRequest no_query;
  EXPECT_EQ(service.Submit(std::move(no_query)).status().code(),
            StatusCode::kInvalidArgument);
  QueryRequest bad_target;
  bad_target.kind = QueryKind::kInverseRanking;
  bad_target.query = MakeQuery(0.5, 0.5, 0.05);
  bad_target.target = 1000;
  EXPECT_EQ(service.Submit(std::move(bad_target)).status().code(),
            StatusCode::kInvalidArgument);
  QueryRequest bad_k = KnnRequest(MakeQuery(0.5, 0.5, 0.05), 0, 0.5, 2);
  EXPECT_EQ(service.Submit(std::move(bad_k)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.metrics().Snapshot().invalid, 3u);
}

TEST(QueryServiceTest, MetricsSnapshotAndJson) {
  const auto db = MakeDb(25, 0.06);
  TraceConfig tcfg;
  tcfg.num_requests = 10;
  tcfg.seed = 3;
  tcfg.query_extent = 0.06;
  tcfg.budget.max_iterations = 2;
  const std::vector<QueryRequest> trace = MakeTrace(*db, tcfg);
  QueryServiceOptions opts;
  opts.num_workers = 2;
  opts.batch_size = 4;
  QueryService service(PinnedSnapshot(db), opts);
  const ReplayResult result = ReplayTrace(service, trace, /*qps=*/0.0);
  EXPECT_EQ(result.responses.size(), trace.size());

  const MetricsSnapshot m = service.metrics().Snapshot();
  EXPECT_EQ(m.admitted, trace.size());
  EXPECT_EQ(m.completed, trace.size());
  EXPECT_GE(m.batches, 1u);
  EXPECT_GT(m.mean_batch_fill, 0.0);
  EXPECT_LE(m.latency_p50_ms, m.latency_p95_ms);
  EXPECT_LE(m.latency_p95_ms, m.latency_p99_ms);
  EXPECT_LE(m.latency_p99_ms, m.latency_max_ms);
  EXPECT_GT(m.throughput_qps, 0.0);

  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"throughput_qps\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

/// Concurrent submitters — the TSan CI job drives this test.
TEST(QueryServiceTest, ConcurrentSubmittersAllComplete) {
  const auto db = MakeDb(20, 0.05);
  QueryServiceOptions opts;
  opts.num_workers = 2;
  opts.batch_size = 2;
  QueryService service(PinnedSnapshot(db), opts);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 5;
  std::vector<std::vector<uint64_t>> tickets(kThreads);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const auto q = MakeQuery(0.2 + 0.15 * static_cast<double>(t), 0.5,
                                 0.05, /*seed=*/t * 100 + i);
        const StatusOr<uint64_t> ticket =
            service.Submit(KnnRequest(q, 1, 0.5, 2));
        ASSERT_TRUE(ticket.ok());
        tickets[t].push_back(*ticket);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  service.Flush();
  for (const auto& per_thread : tickets) {
    for (uint64_t ticket : per_thread) {
      const QueryResponse r = service.Take(ticket);
      EXPECT_EQ(r.status, ResponseStatus::kOk);
    }
  }
  EXPECT_EQ(service.metrics().Snapshot().completed, kThreads * kPerThread);
}

TEST(QueryServiceTest, ResponsesStampSnapshotVersion) {
  // The plain-database constructor wraps the db into a store and publishes
  // version 1; every response names it.
  const auto db = MakeDb(15, 0.05);
  const QueryResponse r =
      RunOne(db, KnnRequest(MakeQuery(0.5, 0.5, 0.05), 1, 0.5, 2));
  EXPECT_EQ(r.snapshot_version, 1u);
}

TEST(QueryServiceTest, NullAndEmptyDatabasesComeUpGracefully) {
  // No more hard "db must be non-null and non-empty": both an absent and
  // an empty database yield the empty version-0 snapshot, and threshold
  // queries complete with empty payloads.
  for (const auto& db :
       {std::shared_ptr<const UncertainDatabase>(),
        std::make_shared<const UncertainDatabase>()}) {
    QueryService service(PinnedSnapshot(db), {});
    const StatusOr<uint64_t> ticket =
        service.Submit(KnnRequest(MakeQuery(0.5, 0.5, 0.05), 1, 0.5, 2));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    const QueryResponse r = service.Take(*ticket);
    EXPECT_EQ(r.status, ResponseStatus::kOk);
    EXPECT_EQ(r.snapshot_version, 0u);
    EXPECT_TRUE(r.threshold.empty());
    // Inverse ranking stays invalid: no target can exist.
    QueryRequest inverse;
    inverse.kind = QueryKind::kInverseRanking;
    inverse.query = MakeQuery(0.5, 0.5, 0.05);
    inverse.target = 0;
    EXPECT_EQ(service.Submit(std::move(inverse)).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(QueryServiceTest, ZeroIterationDeadlineAnswersEveryKind) {
  // Satellite of the zero-grant contract: a deadline below one estimated
  // iteration compiles to an explicit 0-iteration grant for *every* query
  // kind — the filter phase still runs, every payload carries a valid
  // (vacuous-or-better) bracket, and nothing crashes or degrades to an
  // unexecuted request.
  const auto db = MakeDb(20, 0.1);
  const auto q = MakeQuery(0.5, 0.5, 0.1);
  for (const QueryKind kind :
       {QueryKind::kThresholdKnn, QueryKind::kThresholdRknn,
        QueryKind::kInverseRanking, QueryKind::kExpectedRank}) {
    QueryRequest req;
    req.kind = kind;
    req.query = q;
    req.k = 2;
    req.tau = 0.5;
    req.target = 3;
    req.budget.max_iterations = 8;
    req.budget.deadline_ms = 1.0;  // below est_iteration_ms (5.0)
    const QueryResponse response = RunOne(db, std::move(req));
    EXPECT_EQ(response.stats.iterations_granted, 0) << QueryKindName(kind);
    EXPECT_NE(response.status, ResponseStatus::kInvalid)
        << QueryKindName(kind);
    for (const ThresholdQueryResult& r : response.threshold) {
      EXPECT_LE(r.prob.lb, r.prob.ub);
      EXPECT_GE(r.prob.lb, 0.0);
      EXPECT_LE(r.prob.ub, 1.0);
    }
    for (size_t k = 0; k < response.rank_bounds.num_ranks(); ++k) {
      EXPECT_LE(response.rank_bounds.lb(k), response.rank_bounds.ub(k));
    }
    for (const ExpectedRankEntry& e : response.expected) {
      EXPECT_LE(e.expected_rank.lb, e.expected_rank.ub);
    }
  }
}

// ------------------------------------------------- cross-request caching

/// Tentpole acceptance: enabling the response cache (and the verdict
/// memo with it) never changes a payload byte. Two back-to-back replays
/// of one trace — the second fully warm — digest identically to the
/// cache-off run, across worker counts and batch sizes.
TEST(QueryServiceTest, ResponseCacheOnOffDigestsAreIdentical) {
  const auto db = MakeDb(30, 0.08);
  TraceConfig tcfg;
  tcfg.num_requests = 12;
  tcfg.seed = 77;
  tcfg.query_extent = 0.08;
  tcfg.k_max = 3;
  tcfg.budget.max_iterations = 3;
  const std::vector<QueryRequest> trace = MakeTrace(*db, tcfg);

  auto run = [&](size_t workers, size_t batch, bool caches) {
    QueryServiceOptions opts;
    opts.num_workers = workers;
    opts.batch_size = batch;
    opts.max_queue = trace.size();
    if (caches) {
      opts.response_cache_capacity = 256;
      opts.verdict_memo_capacity = 1 << 14;
    }
    QueryService service(PinnedSnapshot(db), opts);
    // ReplayTrace drains every ticket before returning, so the second
    // replay probes a fully-populated cache.
    const ReplayResult cold = ReplayTrace(service, trace, /*qps=*/0.0);
    const ReplayResult warm = ReplayTrace(service, trace, /*qps=*/0.0);
    EXPECT_EQ(cold.admitted, trace.size());
    EXPECT_EQ(warm.admitted, trace.size());
    std::vector<QueryResponse> all = cold.responses;
    all.insert(all.end(), warm.responses.begin(), warm.responses.end());
    if (caches) {
      EXPECT_EQ(service.response_cache()->hits(), trace.size());
      EXPECT_LE(service.response_cache()->size(),
                service.response_cache()->capacity());
      size_t warm_hits = 0;
      for (const QueryResponse& r : warm.responses) {
        warm_hits += r.stats.cache_hit ? 1 : 0;
      }
      EXPECT_EQ(warm_hits, trace.size());
    }
    return ResponseDigest(all);
  };

  const uint64_t off = run(2, 4, /*caches=*/false);
  EXPECT_EQ(run(2, 4, /*caches=*/true), off);
  EXPECT_EQ(run(1, 4, /*caches=*/true), off);
  EXPECT_EQ(run(8, 4, /*caches=*/true), off);
  EXPECT_EQ(run(2, 1, /*caches=*/true), off);
  EXPECT_EQ(run(2, 8, /*caches=*/true), off);
}

/// Verdict-memo monotonicity: with only the memo on (no response cache),
/// the warm replay re-executes every request but replays decided verdicts
/// from the memo — and still digests identically to the memo-off run.
/// The per-request deterministic counters are also unchanged: a memo hit
/// counts as a domination test exactly like the geometry call it elides.
TEST(QueryServiceTest, VerdictMemoOnOffDigestsAreIdentical) {
  const auto db = MakeDb(30, 0.08);
  TraceConfig tcfg;
  tcfg.num_requests = 10;
  tcfg.seed = 41;
  tcfg.query_extent = 0.08;
  tcfg.k_max = 3;
  tcfg.budget.max_iterations = 3;
  const std::vector<QueryRequest> trace = MakeTrace(*db, tcfg);

  struct RunResult {
    uint64_t digest = 0;
    std::vector<uint64_t> tests;  // per ticket, sorted by id
  };
  auto run = [&](size_t workers, size_t memo_capacity) {
    QueryServiceOptions opts;
    opts.num_workers = workers;
    opts.batch_size = 4;
    opts.max_queue = trace.size();
    opts.verdict_memo_capacity = memo_capacity;
    QueryService service(PinnedSnapshot(db), opts);
    const ReplayResult cold = ReplayTrace(service, trace, /*qps=*/0.0);
    const ReplayResult warm = ReplayTrace(service, trace, /*qps=*/0.0);
    if (memo_capacity > 0) {
      // The warm pass re-derives the same triples, so the memo must
      // actually serve hits (no response cache to shortcut it).
      EXPECT_GT(service.verdict_memo()->hits(), 0u);
    }
    RunResult out;
    std::vector<QueryResponse> all = cold.responses;
    all.insert(all.end(), warm.responses.begin(), warm.responses.end());
    out.digest = ResponseDigest(all);
    std::sort(all.begin(), all.end(),
              [](const QueryResponse& a, const QueryResponse& b) {
                return a.id < b.id;
              });
    for (const QueryResponse& r : all) {
      out.tests.push_back(r.stats.verdict_cache_misses);
    }
    return out;
  };

  const RunResult off = run(2, 0);
  const RunResult on = run(2, 1 << 15);
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.tests, off.tests);
  EXPECT_EQ(run(8, 1 << 15).digest, off.digest);
}

/// The scalar and AVX2+FMA kernel tables follow one blocked accumulation
/// order (gf/kernels.h), so a full service run — refinement loops, memo,
/// reductions and all — must produce bit-identical response digests under
/// either dispatch mode. This is the end-to-end face of the equivalence
/// sweeps in ugf_equivalence_test.cc, and the in-process twin of the CI
/// leg that re-runs the suite with UPDB_FORCE_SCALAR=1.
TEST(QueryServiceTest, ScalarAndVectorKernelDigestsAreIdentical) {
  if (!gf::VectorKernelsAvailable()) GTEST_SKIP() << "no vector kernels";
  const bool was_scalar = &gf::ActiveKernels() == &gf::ScalarKernels();
  const auto db = MakeDb(30, 0.08);
  TraceConfig tcfg;
  tcfg.num_requests = 12;
  tcfg.seed = 47;
  tcfg.query_extent = 0.08;
  tcfg.k_max = 3;
  tcfg.budget.max_iterations = 3;
  const std::vector<QueryRequest> trace = MakeTrace(*db, tcfg);

  auto run = [&](bool force_scalar) {
    gf::ForceScalarKernels(force_scalar);
    QueryServiceOptions opts;
    opts.num_workers = 2;
    opts.batch_size = 4;
    opts.max_queue = trace.size();
    QueryService service(PinnedSnapshot(db), opts);
    return ResponseDigest(ReplayTrace(service, trace, /*qps=*/0.0).responses);
  };

  const uint64_t scalar_digest = run(true);
  const uint64_t vector_digest = run(false);
  EXPECT_EQ(scalar_digest, vector_digest);
  gf::ForceScalarKernels(was_scalar);
}

/// A response-cache hit bypasses execution: fresh ticket, zero measured
/// queue/exec time, cache_hit stamped, payload byte-identical to the
/// original up to the ticket id, and the hit flows through the service
/// completion metrics and the unified registry export.
TEST(QueryServiceTest, ResponseCacheHitBypassesExecution) {
  const auto db = MakeDb(25, 0.07);
  QueryServiceOptions opts;
  opts.response_cache_capacity = 8;
  QueryService service(PinnedSnapshot(db), opts);
  const auto q = MakeQuery(0.5, 0.5, 0.07);

  const StatusOr<uint64_t> t0 = service.Submit(KnnRequest(q, 2, 0.5, 3));
  ASSERT_TRUE(t0.ok());
  const QueryResponse r0 = service.Take(*t0);
  EXPECT_FALSE(r0.stats.cache_hit);

  const StatusOr<uint64_t> t1 = service.Submit(KnnRequest(q, 2, 0.5, 3));
  ASSERT_TRUE(t1.ok());
  const QueryResponse r1 = service.Take(*t1);
  EXPECT_TRUE(r1.stats.cache_hit);
  EXPECT_EQ(r1.id, *t1);
  EXPECT_EQ(r1.stats.queue_seconds, 0.0);
  EXPECT_EQ(r1.stats.exec_seconds, 0.0);

  // Byte-identical payload modulo the ticket.
  QueryResponse renamed = r1;
  renamed.id = r0.id;
  EXPECT_EQ(ResponseDigest(renamed), ResponseDigest(r0));

  EXPECT_EQ(service.response_cache()->hits(), 1u);
  EXPECT_EQ(service.metrics().Snapshot().completed, 2u);
  const std::string prom = service.metrics().registry().ToPrometheus();
  EXPECT_NE(prom.find("updb_response_cache_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("updb_response_cache_entries"), std::string::npos);
  const std::string json = service.metrics().registry().ToJson();
  EXPECT_NE(json.find("updb_response_cache_hits_total"), std::string::npos);
}

/// Churn staleness oracle: a publish stamps a new snapshot_version, and
/// the very next identical request recomputes against it — the cache can
/// never serve a payload from the previous version, because the version
/// is part of the key.
TEST(QueryServiceTest, PublishNeverServesStaleCachedPayload) {
  const auto db = MakeDb(20, 0.08);
  store::StoreOptions sopts;
  sopts.num_shards = TestShards();
  auto live = std::make_shared<store::VersionedObjectStore>(*db, sopts);
  QueryServiceOptions opts;
  opts.response_cache_capacity = 16;
  opts.verdict_memo_capacity = 1 << 12;
  QueryService service(live, opts);
  const auto q = MakeQuery(0.5, 0.5, 0.08);
  auto submit = [&] {
    const StatusOr<uint64_t> t = service.Submit(KnnRequest(q, 2, 0.5, 3));
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return service.Take(*t);
  };

  const QueryResponse v1 = submit();
  EXPECT_EQ(v1.snapshot_version, 1u);
  EXPECT_FALSE(v1.stats.cache_hit);
  const QueryResponse v1_hit = submit();
  EXPECT_TRUE(v1_hit.stats.cache_hit);
  EXPECT_EQ(v1_hit.snapshot_version, 1u);

  // Remove an object the v1 answer mentioned (so a stale replay would be
  // observably wrong), publish version 2, and re-ask.
  const ObjectId victim =
      v1.threshold.empty() ? ObjectId{0} : v1.threshold.front().id;
  ASSERT_TRUE(live->Remove(victim).ok());
  live->Publish();
  const QueryResponse v2 = submit();
  EXPECT_EQ(v2.snapshot_version, 2u);
  EXPECT_FALSE(v2.stats.cache_hit);
  for (const ThresholdQueryResult& r : v2.threshold) {
    EXPECT_NE(r.id, victim);
  }

  // The recomputed payload matches a cache-free service pinned to the new
  // version, bit for bit (modulo the ticket id).
  QueryService fresh(live->latest(), {});
  const StatusOr<uint64_t> ft = fresh.Submit(KnnRequest(q, 2, 0.5, 3));
  ASSERT_TRUE(ft.ok());
  const QueryResponse truth = fresh.Take(*ft);
  QueryResponse renamed = v2;
  renamed.id = truth.id;
  EXPECT_EQ(ResponseDigest(renamed), ResponseDigest(truth));

  // And the v2 payload is what later identical requests now hit.
  const QueryResponse v2_hit = submit();
  EXPECT_TRUE(v2_hit.stats.cache_hit);
  EXPECT_EQ(v2_hit.snapshot_version, 2u);
  QueryResponse renamed_hit = v2_hit;
  renamed_hit.id = v2.id;
  EXPECT_EQ(ResponseDigest(renamed_hit), ResponseDigest(v2));
}

TEST(QueryServiceTest, SubmitAfterShutdownFails) {
  const auto db = MakeDb(10, 0.05);
  QueryService service(PinnedSnapshot(db), {});
  service.Shutdown();
  const StatusOr<uint64_t> ticket =
      service.Submit(KnnRequest(MakeQuery(0.5, 0.5, 0.05), 1, 0.5, 2));
  EXPECT_EQ(ticket.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace service
}  // namespace updb
