#include "mc/monte_carlo.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace updb {
namespace {

using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

std::shared_ptr<DiscreteSamplePdf> PointObject(double x, double y) {
  return std::make_shared<DiscreteSamplePdf>(std::vector<Point>{Point{x, y}});
}

TEST(MaterializeCloudTest, DiscretePdfPassesThrough) {
  DiscreteSamplePdf pdf({Point{0.0, 0.0}, Point{1.0, 1.0}}, {1.0, 3.0});
  Rng rng(1);
  const SampleCloud cloud = MaterializeCloud(pdf, 999, rng);
  ASSERT_EQ(cloud.points.size(), 2u);
  EXPECT_DOUBLE_EQ(cloud.weights[1], 0.75);
  EXPECT_EQ(cloud.mbr, pdf.bounds());
}

TEST(MaterializeCloudTest, ContinuousPdfIsSampled) {
  UniformPdf pdf(Rect(Point{0.0, 0.0}, Point{1.0, 1.0}));
  Rng rng(2);
  const SampleCloud cloud = MaterializeCloud(pdf, 128, rng);
  EXPECT_EQ(cloud.points.size(), 128u);
  for (const Point& p : cloud.points) {
    EXPECT_TRUE(pdf.bounds().Contains(p));
  }
  EXPECT_TRUE(pdf.bounds().Contains(cloud.mbr));
}

TEST(MonteCarloTest, CertainObjectsGiveDeterministicCounts) {
  // Four point objects on a line; reference at origin. Distances: B at 2,
  // dominators at 1; non-dominator at 3.
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0));   // closer -> dominates
  db.Add(PointObject(2.0, 0.0));   // B
  db.Add(PointObject(3.0, 0.0));   // farther
  db.Add(PointObject(1.5, 0.0));   // closer -> dominates
  MonteCarloEngine engine(db, {});
  const auto r = PointObject(0.0, 0.0);
  const MonteCarloResult result = engine.DomCountPdf(1, *r);
  ASSERT_EQ(result.pdf.size(), 4u);
  EXPECT_NEAR(result.pdf[2], 1.0, 1e-12);  // exactly 2 dominators
  EXPECT_NEAR(result.pdf[0], 0.0, 1e-12);
}

TEST(MonteCarloTest, FiftyFiftyDomination) {
  // B at distance 2; A uniform over two positions, one closer one farther.
  UncertainDatabase db;
  db.Add(std::make_shared<DiscreteSamplePdf>(
      std::vector<Point>{Point{1.0, 0.0}, Point{3.0, 0.0}}));  // A
  db.Add(PointObject(2.0, 0.0));                               // B
  MonteCarloEngine engine(db, {});
  const auto r = PointObject(0.0, 0.0);
  const MonteCarloResult result = engine.DomCountPdf(1, *r);
  EXPECT_NEAR(result.pdf[0], 0.5, 1e-12);
  EXPECT_NEAR(result.pdf[1], 0.5, 1e-12);
}

TEST(MonteCarloTest, UncertainReferenceAverages) {
  // Paper Figure 3 shape: A1 = A2 certain; R uniform over two positions.
  // In one position both dominate, in the other neither does — counts are
  // perfectly correlated: P(0) = P(2) = 0.5, P(1) = 0.
  UncertainDatabase db;
  db.Add(PointObject(2.0, 0.0));  // A1
  db.Add(PointObject(2.0, 0.0));  // A2
  db.Add(PointObject(0.0, 0.0));  // B
  MonteCarloEngine engine(db, {});
  DiscreteSamplePdf r({Point{-1.0, 0.0}, Point{4.0, 0.0}});
  // r = -1: dist(A)=3 > dist(B)=1 -> neither dominates.
  // r = 4:  dist(A)=2 < dist(B)=4 -> both dominate.
  const MonteCarloResult result = engine.DomCountPdf(2, r);
  EXPECT_NEAR(result.pdf[0], 0.5, 1e-12);
  EXPECT_NEAR(result.pdf[1], 0.0, 1e-12);
  EXPECT_NEAR(result.pdf[2], 0.5, 1e-12);
}

TEST(MonteCarloTest, PdfSumsToOne) {
  SyntheticConfig cfg;
  cfg.num_objects = 60;
  cfg.max_extent = 0.05;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 40;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 40;
  MonteCarloEngine engine(db, mc_cfg);
  Rng rng(5);
  const auto r = workload::MakeQueryObject(Point{0.5, 0.5}, 0.05,
                                           ObjectModel::kDiscrete, 40, rng);
  const MonteCarloResult result = engine.DomCountPdf(10, *r);
  double total = 0.0;
  for (double v : result.pdf) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MonteCarloTest, ReferenceSubsamplingApproximates) {
  SyntheticConfig cfg;
  cfg.num_objects = 40;
  cfg.max_extent = 0.05;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 50;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(6);
  const auto r = workload::MakeQueryObject(Point{0.5, 0.5}, 0.05,
                                           ObjectModel::kDiscrete, 50, rng);
  MonteCarloConfig full_cfg;
  full_cfg.samples_per_object = 50;
  MonteCarloEngine full(db, full_cfg);
  MonteCarloConfig sub_cfg = full_cfg;
  sub_cfg.reference_samples = 10;
  MonteCarloEngine sub(db, sub_cfg);
  const auto pdf_full = full.DomCountPdf(5, *r).pdf;
  const auto pdf_sub = sub.DomCountPdf(5, *r).pdf;
  double l1 = 0.0;
  for (size_t k = 0; k < pdf_full.size(); ++k) {
    l1 += std::abs(pdf_full[k] - pdf_sub[k]);
  }
  EXPECT_LT(l1, 0.8);  // a rough approximation, but the same distribution
}

TEST(MonteCarloTest, PrefilterDoesNotChangeResult) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.max_extent = 0.03;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 30;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(7);
  const auto r = workload::MakeQueryObject(Point{0.3, 0.3}, 0.03,
                                           ObjectModel::kDiscrete, 30, rng);
  MonteCarloConfig a_cfg;
  a_cfg.samples_per_object = 30;
  a_cfg.prefilter = DominationCriterion::kMinMax;
  MonteCarloConfig b_cfg = a_cfg;
  b_cfg.prefilter = DominationCriterion::kOptimal;
  MonteCarloEngine a(db, a_cfg), b(db, b_cfg);
  const auto pdf_a = a.DomCountPdf(8, *r).pdf;
  const auto pdf_b = b.DomCountPdf(8, *r).pdf;
  ASSERT_EQ(pdf_a.size(), pdf_b.size());
  for (size_t k = 0; k < pdf_a.size(); ++k) {
    EXPECT_NEAR(pdf_a[k], pdf_b[k], 1e-9) << "k=" << k;
  }
  // The optimal prefilter must leave no more candidates than MinMax.
  EXPECT_LE(b.DomCountPdf(8, *r).avg_candidates,
            a.DomCountPdf(8, *r).avg_candidates + 1e-9);
}

TEST(MonteCarloTest, ProbDomCountLessThanIsPrefixSum) {
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  db.Add(PointObject(3.0, 0.0));
  MonteCarloEngine engine(db, {});
  const auto r = PointObject(0.0, 0.0);
  // B = object 1 has exactly 1 dominator.
  EXPECT_NEAR(engine.ProbDomCountLessThan(1, *r, 1), 0.0, 1e-12);
  EXPECT_NEAR(engine.ProbDomCountLessThan(1, *r, 2), 1.0, 1e-12);
}

TEST(EstimatePDomTest, MatchesClosedForm) {
  // Certain B at x=2, certain R at origin, A uniform on [1,3]:
  // P(dist(A,R) < 2) = P(A < 2) = 0.5.
  UniformPdf a(Rect(Point{1.0, 0.0}, Point{3.0, 0.0}));
  DiscreteSamplePdf b({Point{2.0, 0.0}});
  DiscreteSamplePdf r({Point{0.0, 0.0}});
  Rng rng(8);
  const double p = EstimatePDom(a, b, r, 100000, rng);
  EXPECT_NEAR(p, 0.5, 0.01);
}

}  // namespace
}  // namespace updb
