// Edge cases and stress sweeps for the IDCA engine: degenerate databases,
// extreme geometry, higher dimensionality, non-Euclidean norms, and
// randomized multi-seed consistency against the Monte-Carlo oracle.

#include <gtest/gtest.h>

#include "updb.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

std::shared_ptr<DiscreteSamplePdf> PointObject(double x, double y) {
  return std::make_shared<DiscreteSamplePdf>(std::vector<Point>{Point{x, y}});
}

TEST(IdcaEdgeTest, SingleObjectDatabase) {
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0));
  IdcaEngine engine(db);
  const auto r = PointObject(0.0, 0.0);
  const IdcaResult result = engine.ComputeDomCount(0, *r);
  ASSERT_EQ(result.bounds.num_ranks(), 1u);
  EXPECT_DOUBLE_EQ(result.bounds.lb(0), 1.0);  // nothing can dominate
  EXPECT_EQ(result.influence_count, 0u);
}

TEST(IdcaEdgeTest, TwoIdenticalObjects) {
  // A and B share the same uncertainty region: neither can completely
  // dominate; bounds must stay consistent and contain the truth.
  UncertainDatabase db;
  const Rect region = Rect::Centered(Point{0.5, 0.5}, {0.05, 0.05});
  db.Add(std::make_shared<UniformPdf>(region));
  db.Add(std::make_shared<UniformPdf>(region));
  IdcaConfig config;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  const auto r = PointObject(0.0, 0.0);
  const IdcaResult result = engine.ComputeDomCount(1, *r);
  EXPECT_EQ(result.influence_count, 1u);
  // By symmetry the true P(DomCount = 1) is 1/2; the bracket must contain
  // it and be symmetric-ish.
  EXPECT_LE(result.bounds.lb(1), 0.5 + 1e-9);
  EXPECT_GE(result.bounds.ub(1), 0.5 - 1e-9);
}

TEST(IdcaEdgeTest, ReferenceInsideObjectCloud) {
  // R's region overlaps B's own region — everything is an influence
  // object; the engine must still produce consistent bounds.
  UncertainDatabase db;
  Rng rng(311);
  for (int i = 0; i < 20; ++i) {
    db.Add(std::make_shared<UniformPdf>(Rect::Centered(
        Point{0.5 + 0.01 * rng.NextGaussian(),
              0.5 + 0.01 * rng.NextGaussian()},
        {0.02, 0.02})));
  }
  const auto r = std::make_shared<UniformPdf>(
      Rect::Centered(Point{0.5, 0.5}, {0.02, 0.02}));
  IdcaConfig config;
  config.max_iterations = 3;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(0, *r);
  double lb_total = 0.0, ub_total = 0.0;
  for (size_t k = 0; k < result.bounds.num_ranks(); ++k) {
    lb_total += result.bounds.lb(k);
    ub_total += result.bounds.ub(k);
  }
  EXPECT_LE(lb_total, 1.0 + 1e-9);
  EXPECT_GE(ub_total, 1.0 - 1e-9);
}

TEST(IdcaEdgeTest, ThreeDimensionalDatabase) {
  SyntheticConfig cfg;
  cfg.num_objects = 40;
  cfg.dim = 3;
  cfg.max_extent = 0.1;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 16;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(313);
  // Build a 3-d discrete query object by hand.
  std::vector<Point> samples;
  for (int i = 0; i < 16; ++i) {
    samples.push_back(Point{0.5 + 0.05 * rng.NextDouble(),
                            0.5 + 0.05 * rng.NextDouble(),
                            0.5 + 0.05 * rng.NextDouble()});
  }
  DiscreteSamplePdf r(std::move(samples));
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 16;
  MonteCarloEngine mc(db, mc_cfg);
  IdcaConfig config;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  for (ObjectId b : {ObjectId{1}, ObjectId{20}}) {
    const IdcaResult idca = engine.ComputeDomCount(b, r);
    const MonteCarloResult truth = mc.DomCountPdf(b, r);
    EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9)) << "b=" << b;
  }
}

TEST(IdcaEdgeTest, ManhattanNormEndToEnd) {
  SyntheticConfig cfg;
  cfg.num_objects = 30;
  cfg.max_extent = 0.1;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 12;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(317);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.1, ObjectModel::kDiscrete, 12, rng);
  IdcaConfig config;
  config.norm = LpNorm::Manhattan();
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  MonteCarloConfig mc_cfg;
  mc_cfg.norm = LpNorm::Manhattan();
  mc_cfg.samples_per_object = 12;
  MonteCarloEngine mc(db, mc_cfg);
  const IdcaResult idca = engine.ComputeDomCount(5, *r);
  const MonteCarloResult truth = mc.DomCountPdf(5, *r);
  EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9));
}

TEST(IdcaEdgeTest, ZeroIterationsIsFilterOnly) {
  SyntheticConfig cfg;
  cfg.num_objects = 100;
  cfg.max_extent = 0.02;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(331);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.02, ObjectModel::kUniform, 0, rng);
  IdcaConfig config;
  config.max_iterations = 0;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(3, *r);
  ASSERT_EQ(result.iterations.size(), 1u);  // only the filter entry
  // Window structure: exact zeros outside [complete, complete+C].
  const size_t lo = result.complete_domination_count;
  const size_t hi = lo + result.influence_count;
  for (size_t k = 0; k < result.bounds.num_ranks(); ++k) {
    if (k < lo || k > hi) {
      EXPECT_DOUBLE_EQ(result.bounds.ub(k), 0.0) << "k=" << k;
    }
  }
}

TEST(IdcaEdgeTest, PredicateTauZeroAndOne) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.max_extent = 0.02;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(337);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.02, ObjectModel::kUniform, 0, rng);
  const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 3);
  IdcaConfig config;
  config.max_iterations = 6;
  IdcaEngine engine(db, config);
  // tau = 0: decided true as soon as any lower bound is positive.
  const IdcaResult zero =
      engine.ComputeDomCount(b, *r, IdcaPredicate{10, 0.0});
  EXPECT_EQ(zero.decision, PredicateDecision::kTrue);
  // tau = 1: P > 1 is impossible unless the bound collapses above... it
  // can only be decided false (ub <= 1 always, lb > 1 never).
  const IdcaResult one = engine.ComputeDomCount(b, *r, IdcaPredicate{1, 1.0});
  EXPECT_NE(one.decision, PredicateDecision::kTrue);
}

class IdcaSeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdcaSeedSweepTest, BracketsOracleAcrossSeeds) {
  SyntheticConfig cfg;
  cfg.num_objects = 30;
  cfg.max_extent = 0.1;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 12;
  cfg.seed = GetParam();
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(GetParam() * 13 + 1);
  const auto r = MakeQueryObject(
      Point{rng.NextDouble(), rng.NextDouble()}, 0.1,
      ObjectModel::kDiscrete, 12, rng);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 12;
  MonteCarloEngine mc(db, mc_cfg);
  IdcaConfig config;
  config.max_iterations = 5;
  IdcaEngine engine(db, config);
  const ObjectId b = static_cast<ObjectId>(GetParam() % db.size());
  const IdcaResult idca = engine.ComputeDomCount(b, *r);
  const MonteCarloResult truth = mc.DomCountPdf(b, *r);
  EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9));
  // Expected-rank bracket must contain the oracle's expected rank.
  double expected_rank = 0.0;
  for (size_t k = 0; k < truth.pdf.size(); ++k) {
    expected_rank += truth.pdf[k] * static_cast<double>(k + 1);
  }
  const ProbabilityBounds er = idca.bounds.ExpectedRank();
  EXPECT_GE(expected_rank, er.lb - 1e-6);
  EXPECT_LE(expected_rank, er.ub + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdcaSeedSweepTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace updb
