// Determinism and equivalence properties of the parallel IDCA engine:
//
//  * num_threads = 1 vs N produce bit-identical IdcaResult bounds. The
//    pair loop accumulates into a fixed number of chunk partials reduced
//    in chunk order, so nothing may depend on the schedule. The
//    comparisons below are therefore tolerance-free (EXPECT_EQ).
//  * cache_verdicts on/off agree. Verdict inheritance relies on the
//    monotonicity of complete domination under shrinking rectangles, so a
//    cached verdict can only replace a re-test that would have decided the
//    same way; the aggregated sums group the identical masses differently,
//    which admits floating-point noise — hence a tiny tolerance here.

#include "core/idca.h"

#include <gtest/gtest.h>

#include "queries/queries.h"
#include "workload/generators.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

UncertainDatabase TestDatabase(size_t n, double extent, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_objects = n;
  cfg.max_extent = extent;
  cfg.seed = seed;
  return MakeSyntheticDatabase(cfg);
}

void ExpectIdenticalCounters(const IdcaCounters& a, const IdcaCounters& b) {
  EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated);
  EXPECT_EQ(a.pairs_frozen, b.pairs_frozen);
  EXPECT_EQ(a.domination_tests, b.domination_tests);
  EXPECT_EQ(a.verdict_cache_hits, b.verdict_cache_hits);
  EXPECT_EQ(a.verdict_cache_misses, b.verdict_cache_misses);
  EXPECT_EQ(a.ugf_multiplies, b.ugf_multiplies);
}

void ExpectIdenticalResults(const IdcaResult& a, const IdcaResult& b) {
  EXPECT_EQ(a.complete_domination_count, b.complete_domination_count);
  EXPECT_EQ(a.influence_count, b.influence_count);
  ASSERT_EQ(a.bounds.num_ranks(), b.bounds.num_ranks());
  for (size_t k = 0; k < a.bounds.num_ranks(); ++k) {
    EXPECT_EQ(a.bounds.lb(k), b.bounds.lb(k)) << "k=" << k;
    EXPECT_EQ(a.bounds.ub(k), b.bounds.ub(k)) << "k=" << k;
  }
  ASSERT_EQ(a.influence_pdom.size(), b.influence_pdom.size());
  for (size_t i = 0; i < a.influence_pdom.size(); ++i) {
    EXPECT_EQ(a.influence_pdom[i].lb, b.influence_pdom[i].lb) << "i=" << i;
    EXPECT_EQ(a.influence_pdom[i].ub, b.influence_pdom[i].ub) << "i=" << i;
  }
  EXPECT_EQ(a.predicate_prob.lb, b.predicate_prob.lb);
  EXPECT_EQ(a.predicate_prob.ub, b.predicate_prob.ub);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.iterations.size(), b.iterations.size());
  // The profiling counters are part of the determinism contract too: the
  // chunk partition depends only on the pair count, never on the thread
  // count, so summed per-chunk work is schedule-independent.
  ExpectIdenticalCounters(a.counters, b.counters);
}

TEST(IdcaParallelTest, ThreadCountDoesNotChangeBounds) {
  const UncertainDatabase db = TestDatabase(60, 0.08, 77);
  Rng rng(21);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kUniform, 0, rng);
  IdcaConfig serial;
  serial.max_iterations = 5;
  serial.num_threads = 1;
  const IdcaResult base = IdcaEngine(db, serial).ComputeDomCount(7, *r);
  for (int threads : {2, 4, 7}) {
    IdcaConfig parallel = serial;
    parallel.num_threads = threads;
    const IdcaResult got = IdcaEngine(db, parallel).ComputeDomCount(7, *r);
    SCOPED_TRACE(threads);
    ExpectIdenticalResults(base, got);
  }
}

TEST(IdcaParallelTest, ThreadCountDoesNotChangePredicateBounds) {
  const UncertainDatabase db = TestDatabase(80, 0.05, 79);
  Rng rng(22);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.05, ObjectModel::kUniform, 0, rng);
  IdcaConfig serial;
  serial.max_iterations = 4;
  serial.num_threads = 1;
  const IdcaResult base =
      IdcaEngine(db, serial).ComputeDomCount(11, *r, IdcaPredicate{6, 0.5});
  for (int threads : {3, 8}) {
    IdcaConfig parallel = serial;
    parallel.num_threads = threads;
    const IdcaResult got =
        IdcaEngine(db, parallel)
            .ComputeDomCount(11, *r, IdcaPredicate{6, 0.5});
    SCOPED_TRACE(threads);
    ExpectIdenticalResults(base, got);
  }
}

TEST(IdcaParallelTest, VerdictCacheMatchesFullRecomputation) {
  const UncertainDatabase db = TestDatabase(50, 0.08, 83);
  Rng rng(23);
  const auto r =
      MakeQueryObject(Point{0.45, 0.55}, 0.08, ObjectModel::kUniform, 0, rng);
  IdcaConfig cached;
  cached.max_iterations = 5;
  IdcaConfig recompute = cached;
  recompute.cache_verdicts = false;
  for (ObjectId b : {ObjectId{3}, ObjectId{12}, ObjectId{31}}) {
    const IdcaResult with = IdcaEngine(db, cached).ComputeDomCount(b, *r);
    const IdcaResult without =
        IdcaEngine(db, recompute).ComputeDomCount(b, *r);
    ASSERT_EQ(with.bounds.num_ranks(), without.bounds.num_ranks());
    for (size_t k = 0; k < with.bounds.num_ranks(); ++k) {
      EXPECT_NEAR(with.bounds.lb(k), without.bounds.lb(k), 1e-12) << k;
      EXPECT_NEAR(with.bounds.ub(k), without.bounds.ub(k), 1e-12) << k;
    }
    // The cache must do strictly less testing work after iteration 1.
    ASSERT_GE(with.iterations.size(), 3u);
    EXPECT_LT(with.iterations.back().candidate_partitions,
              without.iterations.back().candidate_partitions);
  }
}

/// The engine's work counters are populated, self-consistent, and a cache
/// hit actually replaces a fresh domination test.
TEST(IdcaParallelTest, CountersArePopulatedAndConsistent) {
  const UncertainDatabase db = TestDatabase(50, 0.08, 83);
  Rng rng(25);
  const auto r =
      MakeQueryObject(Point{0.45, 0.55}, 0.08, ObjectModel::kUniform, 0, rng);
  IdcaConfig cached;
  cached.max_iterations = 5;
  const IdcaResult with = IdcaEngine(db, cached).ComputeDomCount(12, *r);
  EXPECT_GT(with.counters.pairs_evaluated, 0u);
  EXPECT_GT(with.counters.domination_tests, 0u);
  EXPECT_GT(with.counters.ugf_multiplies, 0u);
  // Every fresh test is a cache miss by definition.
  EXPECT_EQ(with.counters.verdict_cache_misses,
            with.counters.domination_tests);

  IdcaConfig recompute = cached;
  recompute.cache_verdicts = false;
  const IdcaResult without =
      IdcaEngine(db, recompute).ComputeDomCount(12, *r);
  EXPECT_EQ(without.counters.verdict_cache_hits, 0u);
  // Inheriting resolved mass must save domination tests, never add them.
  EXPECT_GT(with.counters.verdict_cache_hits, 0u);
  EXPECT_LT(with.counters.domination_tests,
            without.counters.domination_tests);
}

TEST(IdcaParallelTest, QueriesAreThreadCountInvariant) {
  const UncertainDatabase db = TestDatabase(70, 0.05, 89);
  const RTree index = BuildRTree(db.objects());
  Rng rng(24);
  const auto q =
      MakeQueryObject(Point{0.5, 0.5}, 0.05, ObjectModel::kUniform, 0, rng);
  IdcaConfig serial;
  serial.max_iterations = 4;
  serial.num_threads = 1;
  IdcaConfig parallel = serial;
  parallel.num_threads = 4;

  const auto knn_s = ProbabilisticThresholdKnn(db, index, *q, 5, 0.5, serial);
  const auto knn_p =
      ProbabilisticThresholdKnn(db, index, *q, 5, 0.5, parallel);
  ASSERT_EQ(knn_s.size(), knn_p.size());
  for (size_t i = 0; i < knn_s.size(); ++i) {
    EXPECT_EQ(knn_s[i].id, knn_p[i].id);
    EXPECT_EQ(knn_s[i].prob.lb, knn_p[i].prob.lb);
    EXPECT_EQ(knn_s[i].prob.ub, knn_p[i].prob.ub);
    EXPECT_EQ(knn_s[i].decision, knn_p[i].decision);
  }

  const auto er_s = ExpectedRankOrder(db, *q, serial);
  const auto er_p = ExpectedRankOrder(db, *q, parallel);
  ASSERT_EQ(er_s.size(), er_p.size());
  for (size_t i = 0; i < er_s.size(); ++i) {
    EXPECT_EQ(er_s[i].id, er_p[i].id);
    EXPECT_EQ(er_s[i].expected_rank.lb, er_p[i].expected_rank.lb);
    EXPECT_EQ(er_s[i].expected_rank.ub, er_p[i].expected_rank.ub);
  }
}

}  // namespace
}  // namespace updb
