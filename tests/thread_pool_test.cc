#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace updb {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, 4, [&](size_t i, size_t /*worker*/) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreDenseAndBounded) {
  ThreadPool pool(8);
  const size_t parallelism = 4;
  std::vector<std::atomic<int>> used(parallelism);
  for (auto& u : used) u.store(0);
  pool.ParallelFor(512, parallelism, [&](size_t /*i*/, size_t worker) {
    ASSERT_LT(worker, parallelism);
    used[worker].fetch_add(1, std::memory_order_relaxed);
  });
  // Indices are handed out dynamically, so no particular participant is
  // guaranteed any work — only that all of it was done within bounds.
  int total = 0;
  for (auto& u : used) total += u.load();
  EXPECT_EQ(total, 512);
}

TEST(ThreadPoolTest, SerialParallelismRunsInline) {
  ThreadPool pool(2);
  size_t sum = 0;  // unsynchronized on purpose: must run on this thread
  pool.ParallelFor(100, 1, [&](size_t i, size_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, NestedCallsRunInline) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, 4, [&](size_t /*i*/, size_t /*worker*/) {
    // Nested region: must execute inline on the calling participant and
    // see worker id 0 without deadlocking the pool.
    pool.ParallelFor(16, 4, [&](size_t /*j*/, size_t inner_worker) {
      EXPECT_EQ(inner_worker, 0u);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, ZeroIndicesIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, PoolWithoutWorkersStillCompletes) {
  ThreadPool pool(0);
  std::atomic<size_t> count{0};
  pool.ParallelFor(64, 8, [&](size_t, size_t worker) {
    EXPECT_EQ(worker, 0u);
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolTest, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(16, 5, [&](size_t, size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 16u) << "round=" << round;
  }
}

TEST(ThreadPoolTest, EffectiveParallelismResolvesConfig) {
  EXPECT_EQ(ThreadPool::EffectiveParallelism(1), 1u);
  EXPECT_EQ(ThreadPool::EffectiveParallelism(6), 6u);
  // 0 = all hardware threads.
  EXPECT_GE(ThreadPool::EffectiveParallelism(0), 1u);
}

TEST(ThreadPoolTest, SingleIndexLoopIsNotAParallelRegion) {
  // A 1-element loop must not mark a parallel region: the nested loop
  // below has to be able to fan out to real workers.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> inner_workers(4);
  for (auto& u : inner_workers) u.store(0);
  pool.ParallelFor(1, 4, [&](size_t /*i*/, size_t worker) {
    EXPECT_EQ(worker, 0u);
    pool.ParallelFor(256, 4, [&](size_t /*j*/, size_t inner) {
      inner_workers[inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  int total = 0;
  for (auto& u : inner_workers) total += u.load();
  EXPECT_EQ(total, 256);
}

}  // namespace
}  // namespace updb
