#include "geom/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace updb {
namespace {

TEST(LpNormTest, EuclideanPointDistance) {
  LpNorm l2 = LpNorm::Euclidean();
  EXPECT_DOUBLE_EQ(l2.Dist(Point{0.0, 0.0}, Point{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(l2.Dist(Point{1.0, 1.0}, Point{1.0, 1.0}), 0.0);
}

TEST(LpNormTest, ManhattanPointDistance) {
  LpNorm l1 = LpNorm::Manhattan();
  EXPECT_DOUBLE_EQ(l1.Dist(Point{0.0, 0.0}, Point{3.0, 4.0}), 7.0);
}

TEST(LpNormTest, HigherOrderNorm) {
  LpNorm l3(3);
  EXPECT_NEAR(l3.Dist(Point{0.0, 0.0}, Point{1.0, 1.0}), std::cbrt(2.0),
              1e-12);
}

TEST(LpNormTest, PowAndRootAreInverse) {
  for (int p : {1, 2, 3, 4}) {
    LpNorm norm(p);
    for (double v : {0.0, 0.5, 1.7, 42.0}) {
      EXPECT_NEAR(norm.Root(norm.Pow(v)), v, 1e-9) << "p=" << p;
    }
  }
}

TEST(LpNormTest, MinDistRectPointInsideIsZero) {
  LpNorm l2;
  Rect r(Point{0.0, 0.0}, Point{2.0, 2.0});
  EXPECT_DOUBLE_EQ(l2.MinDist(r, Point{1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(l2.MinDist(r, Point{2.0, 2.0}), 0.0);  // boundary
}

TEST(LpNormTest, MinDistRectPointOutside) {
  LpNorm l2;
  Rect r(Point{0.0, 0.0}, Point{2.0, 2.0});
  EXPECT_DOUBLE_EQ(l2.MinDist(r, Point{5.0, 1.0}), 3.0);
  EXPECT_DOUBLE_EQ(l2.MinDist(r, Point{5.0, 6.0}), 5.0);  // corner: 3-4-5
}

TEST(LpNormTest, MaxDistRectPoint) {
  LpNorm l2;
  Rect r(Point{0.0, 0.0}, Point{2.0, 2.0});
  // Farthest corner from (0,0) is (2,2).
  EXPECT_DOUBLE_EQ(l2.MaxDist(r, Point{0.0, 0.0}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(l2.MaxDist(r, Point{1.0, 1.0}), std::sqrt(2.0));
}

TEST(LpNormTest, MinDistRectRectIntersectingIsZero) {
  LpNorm l2;
  Rect a(Point{0.0, 0.0}, Point{2.0, 2.0});
  Rect b(Point{1.0, 1.0}, Point{3.0, 3.0});
  EXPECT_DOUBLE_EQ(l2.MinDist(a, b), 0.0);
}

TEST(LpNormTest, MinMaxDistRectRectSeparated) {
  LpNorm l2;
  Rect a(Point{0.0, 0.0}, Point{1.0, 1.0});
  Rect b(Point{4.0, 0.0}, Point{5.0, 1.0});
  EXPECT_DOUBLE_EQ(l2.MinDist(a, b), 3.0);
  EXPECT_DOUBLE_EQ(l2.MaxDist(a, b), std::sqrt(25.0 + 1.0));
}

TEST(LpNormTest, DegenerateRectsBehaveLikePoints) {
  LpNorm l2;
  Rect a = Rect::FromPoint(Point{0.0, 0.0});
  Rect b = Rect::FromPoint(Point{3.0, 4.0});
  EXPECT_DOUBLE_EQ(l2.MinDist(a, b), 5.0);
  EXPECT_DOUBLE_EQ(l2.MaxDist(a, b), 5.0);
}

// Property sweep: MinDist/MaxDist of rects bound the distance of any
// contained point pair, across several Lp norms.
class LpNormPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LpNormPropertyTest, RectDistancesBracketSampledPointDistances) {
  const LpNorm norm(GetParam());
  Rng rng(991 + GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = 1 + rng.NextBounded(4);
    Point alo(dim), ahi(dim), blo(dim), bhi(dim);
    for (size_t i = 0; i < dim; ++i) {
      alo[i] = rng.Uniform(-5, 5);
      ahi[i] = alo[i] + rng.Uniform(0, 3);
      blo[i] = rng.Uniform(-5, 5);
      bhi[i] = blo[i] + rng.Uniform(0, 3);
    }
    Rect a(alo, ahi), b(blo, bhi);
    const double min_d = norm.MinDist(a, b);
    const double max_d = norm.MaxDist(a, b);
    EXPECT_LE(min_d, max_d + 1e-12);
    for (int s = 0; s < 20; ++s) {
      Point pa(dim), pb(dim);
      for (size_t i = 0; i < dim; ++i) {
        pa[i] = rng.Uniform(a.side(i).lo(), a.side(i).hi());
        pb[i] = rng.Uniform(b.side(i).lo(), b.side(i).hi());
      }
      const double d = norm.Dist(pa, pb);
      EXPECT_GE(d, min_d - 1e-9);
      EXPECT_LE(d, max_d + 1e-9);
    }
  }
}

TEST_P(LpNormPropertyTest, PointRectDistancesBracketSampledPoints) {
  const LpNorm norm(GetParam());
  Rng rng(4242 + GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = 1 + rng.NextBounded(3);
    Point lo(dim), hi(dim), q(dim);
    for (size_t i = 0; i < dim; ++i) {
      lo[i] = rng.Uniform(-5, 5);
      hi[i] = lo[i] + rng.Uniform(0, 3);
      q[i] = rng.Uniform(-8, 8);
    }
    Rect r(lo, hi);
    const double min_d = norm.MinDist(r, q);
    const double max_d = norm.MaxDist(r, q);
    for (int s = 0; s < 20; ++s) {
      Point p(dim);
      for (size_t i = 0; i < dim; ++i) {
        p[i] = rng.Uniform(r.side(i).lo(), r.side(i).hi());
      }
      const double d = norm.Dist(p, q);
      EXPECT_GE(d, min_d - 1e-9);
      EXPECT_LE(d, max_d + 1e-9);
    }
    // MaxDist is attained at a corner.
    double best = 0.0;
    for (const Point& c : r.Corners()) best = std::max(best, norm.Dist(c, q));
    EXPECT_NEAR(best, max_d, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, LpNormPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace updb
