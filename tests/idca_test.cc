#include "core/idca.h"

#include <gtest/gtest.h>

#include "mc/monte_carlo.h"
#include "workload/generators.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

std::shared_ptr<DiscreteSamplePdf> PointObject(double x, double y) {
  return std::make_shared<DiscreteSamplePdf>(std::vector<Point>{Point{x, y}});
}

TEST(IdcaTest, CertainObjectsResolveImmediately) {
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));  // B
  db.Add(PointObject(3.0, 0.0));
  db.Add(PointObject(1.5, 0.0));
  IdcaEngine engine(db);
  const auto r = PointObject(0.0, 0.0);
  const IdcaResult result = engine.ComputeDomCount(1, *r);
  EXPECT_EQ(result.complete_domination_count, 2u);
  EXPECT_EQ(result.influence_count, 0u);
  ASSERT_EQ(result.bounds.num_ranks(), 4u);
  EXPECT_DOUBLE_EQ(result.bounds.lb(2), 1.0);
  EXPECT_DOUBLE_EQ(result.bounds.ub(2), 1.0);
  EXPECT_DOUBLE_EQ(result.bounds.TotalUncertainty(), 0.0);
}

TEST(IdcaTest, PaperFigure3DependenceHandledCorrectly) {
  // A1 = A2 certain at x=2, B certain at x=0, R uniform over {-1, 4}.
  // The naive independent combination would give P(count=1) = 0.5; the
  // correct answer is P(0) = P(2) = 0.5, P(1) = 0. IDCA's bounds must
  // contain the correct answer and EXCLUDE count=1 once converged.
  UncertainDatabase db;
  db.Add(PointObject(2.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  db.Add(PointObject(0.0, 0.0));  // B
  IdcaConfig config;
  config.max_iterations = 12;
  IdcaEngine engine(db, config);
  DiscreteSamplePdf r({Point{-1.0, 0.0}, Point{4.0, 0.0}});
  const IdcaResult result = engine.ComputeDomCount(2, r);
  EXPECT_NEAR(result.bounds.lb(0), 0.5, 1e-9);
  EXPECT_NEAR(result.bounds.ub(0), 0.5, 1e-9);
  EXPECT_NEAR(result.bounds.lb(1), 0.0, 1e-9);
  EXPECT_NEAR(result.bounds.ub(1), 0.0, 1e-9);
  EXPECT_NEAR(result.bounds.lb(2), 0.5, 1e-9);
  EXPECT_NEAR(result.bounds.ub(2), 0.5, 1e-9);
}

TEST(IdcaTest, BoundsBracketMonteCarloTruth) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.max_extent = 0.08;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 32;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(9);
  const auto r = MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kDiscrete,
                                 32, rng);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 32;
  MonteCarloEngine mc(db, mc_cfg);
  IdcaConfig config;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  for (ObjectId b : {ObjectId{3}, ObjectId{17}, ObjectId{42}}) {
    const IdcaResult idca = engine.ComputeDomCount(b, *r);
    const MonteCarloResult truth = mc.DomCountPdf(b, *r);
    EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9)) << "b=" << b;
  }
}

TEST(IdcaTest, UncertaintyDecreasesMonotonically) {
  SyntheticConfig cfg;
  cfg.num_objects = 80;
  cfg.max_extent = 0.06;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(10);
  const auto r =
      MakeQueryObject(Point{0.4, 0.6}, 0.06, ObjectModel::kUniform, 0, rng);
  IdcaConfig config;
  config.max_iterations = 6;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(5, *r);
  ASSERT_GE(result.iterations.size(), 2u);
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].total_uncertainty,
              result.iterations[i - 1].total_uncertainty + 1e-9)
        << "iteration " << i;
    EXPECT_LE(result.iterations[i].avg_influence_uncertainty,
              result.iterations[i - 1].avg_influence_uncertainty + 1e-9);
  }
}

TEST(IdcaTest, DiscreteObjectsConvergeToExactness) {
  SyntheticConfig cfg;
  cfg.num_objects = 30;
  cfg.max_extent = 0.1;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 4;  // tiny clouds decompose fully
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(11);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.1, ObjectModel::kDiscrete, 4, rng);
  IdcaConfig config;
  config.max_iterations = 32;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(7, *r);
  EXPECT_NEAR(result.bounds.TotalUncertainty(), 0.0, 1e-9);
  // And the exact result matches MC on the same model.
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 4;
  MonteCarloEngine mc(db, mc_cfg);
  const MonteCarloResult truth = mc.DomCountPdf(7, *r);
  for (size_t k = 0; k < truth.pdf.size(); ++k) {
    EXPECT_NEAR(result.bounds.lb(k), truth.pdf[k], 1e-9) << "k=" << k;
  }
}

TEST(IdcaTest, OptimalFiltersAtLeastAsWellAsMinMax) {
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.max_extent = 0.05;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(12);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.05, ObjectModel::kUniform, 0, rng);
  IdcaConfig optimal;
  optimal.criterion = DominationCriterion::kOptimal;
  optimal.max_iterations = 0;
  IdcaConfig minmax;
  minmax.criterion = DominationCriterion::kMinMax;
  minmax.max_iterations = 0;
  const IdcaResult opt = IdcaEngine(db, optimal).ComputeDomCount(4, *r);
  const IdcaResult mm = IdcaEngine(db, minmax).ComputeDomCount(4, *r);
  EXPECT_LE(opt.influence_count, mm.influence_count);
}

TEST(IdcaTest, PredicateDecidesEarly) {
  SyntheticConfig cfg;
  cfg.num_objects = 120;
  cfg.max_extent = 0.02;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(13);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.02, ObjectModel::kUniform, 0, rng);
  // B very close to R: almost surely within the 20 nearest.
  const ObjectId close_b = workload::PickByMinDistRank(index, r->bounds(), 1);
  IdcaConfig config;
  config.max_iterations = 10;
  IdcaEngine engine(db, config);
  const IdcaResult hit =
      engine.ComputeDomCount(close_b, *r, IdcaPredicate{20, 0.5});
  EXPECT_EQ(hit.decision, PredicateDecision::kTrue);
  // B very far: certainly not within the nearest 3.
  const ObjectId far_b =
      workload::PickByMinDistRank(index, r->bounds(), db.size());
  const IdcaResult miss =
      engine.ComputeDomCount(far_b, *r, IdcaPredicate{3, 0.5});
  EXPECT_EQ(miss.decision, PredicateDecision::kFalse);
  EXPECT_DOUBLE_EQ(miss.predicate_prob.ub, 0.0);
}

TEST(IdcaTest, PredicateProbBracketsMcTruth) {
  SyntheticConfig cfg;
  cfg.num_objects = 40;
  cfg.max_extent = 0.08;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 24;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(14);
  const auto r = MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kDiscrete,
                                 24, rng);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 24;
  MonteCarloEngine mc(db, mc_cfg);
  IdcaConfig config;
  config.max_iterations = 3;  // stop while still undecided
  IdcaEngine engine(db, config);
  const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 5);
  for (size_t k : {size_t{3}, size_t{5}, size_t{8}}) {
    const IdcaResult result =
        engine.ComputeDomCount(b, *r, IdcaPredicate{k, 0.5});
    const double truth = mc.ProbDomCountLessThan(b, *r, k);
    EXPECT_GE(truth, result.predicate_prob.lb - 1e-9) << "k=" << k;
    EXPECT_LE(truth, result.predicate_prob.ub + 1e-9) << "k=" << k;
  }
}

TEST(IdcaTest, PredicateShortCircuitsOnFilterOnlyCases) {
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  db.Add(PointObject(5.0, 0.0));  // B with 2 certain dominators
  IdcaEngine engine(db);
  const auto r = PointObject(0.0, 0.0);
  // k = 1: already >= 1 dominators in every world -> P = 0.
  const IdcaResult r1 = engine.ComputeDomCount(2, *r, IdcaPredicate{1, 0.25});
  EXPECT_EQ(r1.decision, PredicateDecision::kFalse);
  EXPECT_DOUBLE_EQ(r1.predicate_prob.ub, 0.0);
  // k = 3: at most 2 dominators exist -> P = 1.
  const IdcaResult r3 = engine.ComputeDomCount(2, *r, IdcaPredicate{3, 0.25});
  EXPECT_EQ(r3.decision, PredicateDecision::kTrue);
  EXPECT_DOUBLE_EQ(r3.predicate_prob.lb, 1.0);
}

TEST(IdcaTest, ComputeDomCountOfQuerySwapsRoles) {
  // Q external at x=2; reference object B at x=0. A at x=1 is closer to B
  // than Q is (1 < 2): DomCount(Q, B) = 1.
  UncertainDatabase db;
  db.Add(PointObject(0.0, 0.0));  // B (reference role)
  db.Add(PointObject(1.0, 0.0));  // A
  IdcaEngine engine(db);
  const auto q = PointObject(2.0, 0.0);
  const IdcaResult result = engine.ComputeDomCountOfQuery(*q, 0);
  ASSERT_EQ(result.bounds.num_ranks(), 2u);
  EXPECT_DOUBLE_EQ(result.bounds.lb(1), 1.0);
  EXPECT_DOUBLE_EQ(result.bounds.ub(1), 1.0);
}

TEST(IdcaTest, StatsAreRecordedPerIteration) {
  SyntheticConfig cfg;
  cfg.num_objects = 60;
  cfg.max_extent = 0.06;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(15);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.06, ObjectModel::kUniform, 0, rng);
  IdcaConfig config;
  config.max_iterations = 3;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(9, *r);
  ASSERT_GE(result.iterations.size(), 1u);
  EXPECT_EQ(result.iterations[0].iteration, 0);
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_EQ(result.iterations[i].iteration, static_cast<int>(i));
    EXPECT_GT(result.iterations[i].pairs, 0u);
    EXPECT_GE(result.iterations[i].cumulative_seconds,
              result.iterations[i - 1].cumulative_seconds);
  }
}

TEST(IdcaTest, UncertaintyEpsilonStopsEarly) {
  SyntheticConfig cfg;
  cfg.num_objects = 80;
  cfg.max_extent = 0.06;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(16);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.06, ObjectModel::kUniform, 0, rng);
  IdcaConfig strict;
  strict.max_iterations = 8;
  strict.uncertainty_epsilon = 0.0;
  IdcaConfig lax = strict;
  lax.uncertainty_epsilon = 3.0;
  const IdcaResult full = IdcaEngine(db, strict).ComputeDomCount(5, *r);
  const IdcaResult early = IdcaEngine(db, lax).ComputeDomCount(5, *r);
  EXPECT_LE(early.iterations.size(), full.iterations.size());
}

TEST(IdcaTest, MinMaxCriterionBoundsAlsoBracketTruth) {
  SyntheticConfig cfg;
  cfg.num_objects = 40;
  cfg.max_extent = 0.08;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 16;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(17);
  const auto r = MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kDiscrete,
                                 16, rng);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 16;
  MonteCarloEngine mc(db, mc_cfg);
  IdcaConfig config;
  config.criterion = DominationCriterion::kMinMax;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  const IdcaResult idca = engine.ComputeDomCount(11, *r);
  const MonteCarloResult truth = mc.DomCountPdf(11, *r);
  EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9));
}

TEST(IdcaTest, InfluencePdomBoundsAreValid) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.max_extent = 0.08;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(18);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kUniform, 0, rng);
  IdcaConfig config;
  config.max_iterations = 4;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(3, *r);
  for (const ProbabilityBounds& p : result.influence_pdom) {
    EXPECT_GE(p.lb, 0.0);
    EXPECT_LE(p.ub, 1.0);
    EXPECT_LE(p.lb, p.ub + 1e-12);
  }
}

}  // namespace
}  // namespace updb
