// Copyright 2026 The updb Authors.
// Unit and concurrency tests of the cross-request caching layer
// (cache/verdict_memo.h, cache/response_cache.h). The concurrent cases
// run in the TSan CI matrix: the memo's lock-free slot protocol and the
// response cache's striped locking must hold under racing readers and
// writers.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cache/response_cache.h"
#include "cache/verdict_memo.h"
#include "obs/metrics.h"
#include "service/request.h"

namespace updb {
namespace cache {
namespace {

// --------------------------------------------------------------- VerdictMemo

VerdictMemo::Key KeyFor(const VerdictMemo& memo, uint64_t run_ctx,
                        uint64_t candidate, uint32_t level, uint32_t node) {
  return memo.MakeKey(run_ctx, candidate, level, node, node + 1, node + 2);
}

TEST(VerdictMemoTest, InsertThenLookupRoundTrips) {
  VerdictMemo memo(1 << 10);
  const uint64_t ctx = VerdictMemo::MixRun(
      VerdictMemo::MixContext(/*snapshot_version=*/1, /*query_token=*/42),
      /*object_id=*/7, /*target_is_database_object=*/true,
      /*config_fingerprint=*/3);
  VerdictMemoTally tally;

  const VerdictMemo::Key a = KeyFor(memo, ctx, 1, 0, 0);
  const VerdictMemo::Key b = KeyFor(memo, ctx, 2, 1, 5);
  EXPECT_EQ(memo.Lookup(a, tally), 0);
  memo.Insert(a, VerdictMemo::kDominates, tally);
  memo.Insert(b, VerdictMemo::kDominated, tally);
  EXPECT_EQ(memo.Lookup(a, tally), VerdictMemo::kDominates);
  EXPECT_EQ(memo.Lookup(b, tally), VerdictMemo::kDominated);
  EXPECT_EQ(tally.hits, 2u);
  EXPECT_EQ(tally.misses, 1u);
  EXPECT_EQ(tally.inserts, 2u);
  EXPECT_EQ(tally.evictions, 0u);
}

TEST(VerdictMemoTest, DistinctTripleCoordinatesAreDistinctKeys) {
  // Every coordinate of the (level, B'-node, R'-node, candidate-node)
  // tuple must separate keys — a collapsed coordinate would replay a
  // verdict for the wrong triple.
  VerdictMemo memo(1 << 10);
  VerdictMemoTally tally;
  const uint64_t ctx = VerdictMemo::MixRun(VerdictMemo::MixContext(1, 42), 7,
                                           true, 3);
  const VerdictMemo::Key base = memo.MakeKey(ctx, 1, 2, 3, 4, 5);
  memo.Insert(base, VerdictMemo::kDominates, tally);
  EXPECT_EQ(memo.Lookup(memo.MakeKey(ctx, 1, 2, 3, 4, 5), tally),
            VerdictMemo::kDominates);
  EXPECT_EQ(memo.Lookup(memo.MakeKey(ctx, 2, 2, 3, 4, 5), tally), 0);
  EXPECT_EQ(memo.Lookup(memo.MakeKey(ctx, 1, 3, 3, 4, 5), tally), 0);
  EXPECT_EQ(memo.Lookup(memo.MakeKey(ctx, 1, 2, 4, 4, 5), tally), 0);
  EXPECT_EQ(memo.Lookup(memo.MakeKey(ctx, 1, 2, 3, 5, 5), tally), 0);
  EXPECT_EQ(memo.Lookup(memo.MakeKey(ctx, 1, 2, 3, 4, 6), tally), 0);
}

TEST(VerdictMemoTest, SnapshotVersionScopesTheKeySpace) {
  // Invalidation-by-version: the same triple under a new published
  // version derives a different key, so a publish can never replay a
  // verdict computed against the old snapshot.
  VerdictMemo memo(1 << 10);
  VerdictMemoTally tally;
  const uint64_t token = 42;
  const uint64_t v1 = VerdictMemo::MixRun(VerdictMemo::MixContext(1, token),
                                          7, true, 3);
  const uint64_t v2 = VerdictMemo::MixRun(VerdictMemo::MixContext(2, token),
                                          7, true, 3);
  memo.Insert(KeyFor(memo, v1, 1, 0, 0), VerdictMemo::kDominates, tally);
  EXPECT_EQ(memo.Lookup(KeyFor(memo, v1, 1, 0, 0), tally),
            VerdictMemo::kDominates);
  EXPECT_EQ(memo.Lookup(KeyFor(memo, v2, 1, 0, 0), tally), 0);
}

TEST(VerdictMemoTest, OperandDirectionScopesTheKeySpace) {
  // kNN runs test (cand, B=obj, R=q); RkNN runs test (cand, B=q, R=obj).
  // The same ids with flipped direction are different geometry.
  VerdictMemo memo(1 << 10);
  VerdictMemoTally tally;
  const uint64_t c = VerdictMemo::MixContext(1, 42);
  const uint64_t knn = VerdictMemo::MixRun(c, 7, true, 3);
  const uint64_t rknn = VerdictMemo::MixRun(c, 7, false, 3);
  memo.Insert(KeyFor(memo, knn, 1, 0, 0), VerdictMemo::kDominates, tally);
  EXPECT_EQ(memo.Lookup(KeyFor(memo, rknn, 1, 0, 0), tally), 0);
}

TEST(VerdictMemoTest, CapacityIsFixedAndFullTableEvictsInPlace) {
  obs::MetricsRegistry registry;
  VerdictMemo memo(/*capacity=*/64, &registry);  // minimum table
  EXPECT_EQ(memo.capacity(), 64u);
  VerdictMemoTally tally;
  const uint64_t ctx = VerdictMemo::MixRun(VerdictMemo::MixContext(1, 42), 7,
                                           true, 3);
  // Way more distinct keys than slots: the table must overwrite, never
  // grow, and count the overwrites.
  constexpr uint32_t kKeys = 4096;
  for (uint32_t i = 0; i < kKeys; ++i) {
    memo.Insert(KeyFor(memo, ctx, i, i & 7, i), VerdictMemo::kDominates,
                tally);
  }
  EXPECT_GT(tally.evictions, 0u);
  // Every key was recorded; all but at most `capacity` of those records
  // had to overwrite a live slot.
  EXPECT_EQ(tally.inserts, static_cast<uint64_t>(kKeys));
  EXPECT_GE(tally.evictions,
            static_cast<uint64_t>(kKeys) - memo.capacity());
  // Whatever still hits must return the verdict that was inserted.
  uint32_t live = 0;
  for (uint32_t i = 0; i < kKeys; ++i) {
    const int v = memo.Lookup(KeyFor(memo, ctx, i, i & 7, i), tally);
    if (v != 0) {
      EXPECT_EQ(v, VerdictMemo::kDominates);
      ++live;
    }
  }
  EXPECT_LE(live, memo.capacity());

  // Flush publishes the tally to the registry series.
  memo.Flush(tally);
  EXPECT_EQ(memo.hits(), tally.hits);
  EXPECT_EQ(memo.misses(), tally.misses);
  EXPECT_EQ(memo.inserts(), tally.inserts);
  EXPECT_EQ(memo.evictions(), tally.evictions);
  EXPECT_NE(registry.ToPrometheus().find("updb_verdict_memo_hits_total"),
            std::string::npos);
}

TEST(VerdictMemoTest, CapacityRoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(VerdictMemo(1).capacity(), 64u);
  EXPECT_EQ(VerdictMemo(65).capacity(), 128u);
  EXPECT_EQ(VerdictMemo(1 << 12).capacity(), size_t{1} << 12);
}

/// TSan case: racing inserters and readers over overlapping key ranges.
/// Hits must return the exact verdict keyed for that triple (the verdict
/// is derived from the key index, so a torn or misrouted read would
/// surface as a wrong value, not just a race report).
TEST(VerdictMemoTest, ConcurrentInsertAndLookupNeverReturnWrongVerdict) {
  VerdictMemo memo(1 << 8);
  const uint64_t ctx = VerdictMemo::MixRun(VerdictMemo::MixContext(1, 42), 7,
                                           true, 3);
  auto verdict_for = [](uint32_t i) {
    return (i & 1) != 0 ? VerdictMemo::kDominates : VerdictMemo::kDominated;
  };
  constexpr uint32_t kKeys = 2048;
  constexpr size_t kThreads = 4;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      VerdictMemoTally tally;
      for (uint32_t round = 0; round < 2; ++round) {
        for (uint32_t i = static_cast<uint32_t>(t); i < kKeys;
             i += kThreads) {
          const VerdictMemo::Key key = KeyFor(memo, ctx, i, i & 3, i);
          const int seen = memo.Lookup(key, tally);
          if (seen != 0) {
            EXPECT_EQ(seen, verdict_for(i));
          }
          memo.Insert(key, verdict_for(i), tally);
        }
        // Also read the other threads' ranges.
        for (uint32_t i = 0; i < kKeys; i += 17) {
          const VerdictMemo::Key key = KeyFor(memo, ctx, i, i & 3, i);
          const int seen = memo.Lookup(key, tally);
          if (seen != 0) {
            EXPECT_EQ(seen, verdict_for(i));
          }
        }
      }
      memo.Flush(tally);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_GT(memo.inserts(), 0u);
}

// ------------------------------------------------------------ ResponseCache

service::QueryResponse MakeResponse(uint64_t id, double lb, double ub) {
  service::QueryResponse r;
  r.id = id;
  r.kind = service::QueryKind::kThresholdKnn;
  r.status = service::ResponseStatus::kOk;
  r.snapshot_version = 1;
  ThresholdQueryResult tr;
  tr.id = 3;
  tr.prob.lb = lb;
  tr.prob.ub = ub;
  tr.decision = PredicateDecision::kUndecided;
  r.threshold.push_back(tr);
  return r;
}

TEST(ResponseCacheTest, MissThenInsertThenHitCopiesThePayload) {
  obs::MetricsRegistry registry;
  ResponseCache cache(/*capacity=*/16, &registry);
  service::QueryResponse out;
  EXPECT_FALSE(cache.Lookup("k=1", 1, &out));
  cache.Insert("k=1", 1, MakeResponse(5, 0.25, 0.75));
  ASSERT_TRUE(cache.Lookup("k=1", 1, &out));
  EXPECT_EQ(service::ResponseDigest(out),
            service::ResponseDigest(MakeResponse(5, 0.25, 0.75)));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(registry.ToJson().find("updb_response_cache_hits_total"),
            std::string::npos);
}

TEST(ResponseCacheTest, SnapshotVersionIsPartOfTheKey) {
  ResponseCache cache(16);
  cache.Insert("k=1", 1, MakeResponse(5, 0.25, 0.75));
  service::QueryResponse out;
  EXPECT_FALSE(cache.Lookup("k=1", 2, &out));  // new published version
  EXPECT_TRUE(cache.Lookup("k=1", 1, &out));
}

TEST(ResponseCacheTest, ReinsertRefreshesWithoutDuplicating) {
  ResponseCache cache(16);
  cache.Insert("k=1", 1, MakeResponse(5, 0.25, 0.75));
  cache.Insert("k=1", 1, MakeResponse(5, 0.25, 0.75));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResponseCacheTest, LruEvictionKeepsTheSizeBounded) {
  // Single-stripe geometry (capacity < 8) makes LRU order observable.
  ResponseCache cache(/*capacity=*/3);
  EXPECT_EQ(cache.capacity(), 3u);
  cache.Insert("a", 1, MakeResponse(1, 0.1, 0.9));
  cache.Insert("b", 1, MakeResponse(2, 0.1, 0.9));
  cache.Insert("c", 1, MakeResponse(3, 0.1, 0.9));
  service::QueryResponse out;
  ASSERT_TRUE(cache.Lookup("a", 1, &out));  // refresh "a"
  cache.Insert("d", 1, MakeResponse(4, 0.1, 0.9));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup("b", 1, &out));  // LRU victim
  EXPECT_TRUE(cache.Lookup("a", 1, &out));
  EXPECT_TRUE(cache.Lookup("c", 1, &out));
  EXPECT_TRUE(cache.Lookup("d", 1, &out));
}

TEST(ResponseCacheTest, StripedCapacityBoundsTotalEntries) {
  ResponseCache cache(/*capacity=*/32);
  EXPECT_EQ(cache.capacity(), 32u);
  for (int i = 0; i < 500; ++i) {
    cache.Insert("k=" + std::to_string(i), 1, MakeResponse(i, 0.1, 0.9));
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.evictions(), 0u);
}

/// TSan case: concurrent lookups and inserts across stripes.
TEST(ResponseCacheTest, ConcurrentLookupInsertIsSafe) {
  ResponseCache cache(/*capacity=*/64);
  constexpr size_t kThreads = 4;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 128; ++i) {
          const std::string key = "k=" + std::to_string(i);
          service::QueryResponse out;
          if (cache.Lookup(key, 1, &out)) {
            EXPECT_EQ(out.id, static_cast<uint64_t>(i));
          }
          if ((i % kThreads) == t) {
            cache.Insert(key, 1, MakeResponse(i, 0.1, 0.9));
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.size(), cache.capacity());
}

}  // namespace
}  // namespace cache
}  // namespace updb
