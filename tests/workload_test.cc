#include "workload/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace updb {
namespace {

using workload::IipConfig;
using workload::MakeIipLikeDataset;
using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::PickByMinDistRank;
using workload::SyntheticConfig;

TEST(SyntheticTest, GeneratesRequestedCount) {
  SyntheticConfig cfg;
  cfg.num_objects = 123;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  EXPECT_EQ(db.size(), 123u);
  EXPECT_EQ(db.dim(), 2u);
}

TEST(SyntheticTest, ExtentsRespectMaximum) {
  SyntheticConfig cfg;
  cfg.num_objects = 500;
  cfg.max_extent = 0.01;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  for (const UncertainObject& o : db.objects()) {
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_LE(o.mbr().side(i).length(), cfg.max_extent + 1e-12);
      EXPECT_GE(o.mbr().side(i).lo(), 0.0);
      EXPECT_LE(o.mbr().side(i).hi(), 1.0);
    }
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.seed = 77;
  const UncertainDatabase a = MakeSyntheticDatabase(cfg);
  const UncertainDatabase b = MakeSyntheticDatabase(cfg);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.object(i).mbr(), b.object(i).mbr());
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig cfg;
  cfg.num_objects = 10;
  cfg.seed = 1;
  const UncertainDatabase a = MakeSyntheticDatabase(cfg);
  cfg.seed = 2;
  const UncertainDatabase b = MakeSyntheticDatabase(cfg);
  bool any_diff = false;
  for (size_t i = 0; i < 10; ++i) {
    any_diff |= !(a.object(i).mbr() == b.object(i).mbr());
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, DiscreteModelCarriesSamples) {
  SyntheticConfig cfg;
  cfg.num_objects = 20;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 64;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  for (const UncertainObject& o : db.objects()) {
    const auto* discrete = dynamic_cast<const DiscreteSamplePdf*>(&o.pdf());
    ASSERT_NE(discrete, nullptr);
    EXPECT_EQ(discrete->samples().size(), 64u);
  }
}

TEST(SyntheticTest, GaussianModelNormalizes) {
  SyntheticConfig cfg;
  cfg.num_objects = 20;
  cfg.model = ObjectModel::kGaussian;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  for (const UncertainObject& o : db.objects()) {
    EXPECT_NEAR(o.pdf().Mass(o.mbr()), 1.0, 1e-9);
  }
}

TEST(IipTest, MatchesPaperScale) {
  IipConfig cfg;
  cfg.num_objects = 500;  // scaled for test speed
  const UncertainDatabase db = MakeIipLikeDataset(cfg);
  EXPECT_EQ(db.size(), 500u);
  double max_extent = 0.0;
  for (const UncertainObject& o : db.objects()) {
    for (size_t i = 0; i < 2; ++i) {
      max_extent = std::max(max_extent, o.mbr().side(i).length());
    }
  }
  EXPECT_LE(max_extent, cfg.max_extent + 1e-12);
  EXPECT_GT(max_extent, 0.5 * cfg.max_extent);  // normalization reaches max
}

TEST(IipTest, PositionsAreClustered) {
  // Clustered positions have materially lower mean nearest-neighbor
  // distance than a uniform scatter of the same size.
  IipConfig cfg;
  cfg.num_objects = 400;
  const UncertainDatabase db = MakeIipLikeDataset(cfg);
  SyntheticConfig ucfg;
  ucfg.num_objects = 400;
  const UncertainDatabase uniform = MakeSyntheticDatabase(ucfg);
  const LpNorm norm;
  auto mean_nn = [&norm](const UncertainDatabase& d) {
    double total = 0.0;
    for (const UncertainObject& a : d.objects()) {
      double best = 1e9;
      for (const UncertainObject& b : d.objects()) {
        if (a.id() == b.id()) continue;
        best = std::min(best, norm.Dist(a.mbr().Center(), b.mbr().Center()));
      }
      total += best;
    }
    return total / static_cast<double>(d.size());
  };
  EXPECT_LT(mean_nn(db), 0.8 * mean_nn(uniform));
}

TEST(IipTest, StalenessDrivesExtentSpread) {
  IipConfig cfg;
  cfg.num_objects = 300;
  const UncertainDatabase db = MakeIipLikeDataset(cfg);
  // Exponential staleness: most objects much smaller than the max extent.
  size_t small = 0;
  for (const UncertainObject& o : db.objects()) {
    if (o.mbr().side(0).length() < 0.5 * cfg.max_extent) ++small;
  }
  EXPECT_GT(small, db.size() / 2);
}

TEST(MakeQueryObjectTest, ModelsAndExtent) {
  Rng rng(3);
  const auto uni =
      MakeQueryObject(Point{0.5, 0.5}, 0.01, ObjectModel::kUniform, 0, rng);
  EXPECT_NEAR(uni->bounds().side(0).length(), 0.01, 1e-12);
  const auto disc =
      MakeQueryObject(Point{0.5, 0.5}, 0.01, ObjectModel::kDiscrete, 32, rng);
  EXPECT_NE(dynamic_cast<const DiscreteSamplePdf*>(disc.get()), nullptr);
  const auto gauss =
      MakeQueryObject(Point{0.5, 0.5}, 0.01, ObjectModel::kGaussian, 0, rng);
  EXPECT_NEAR(gauss->Mass(gauss->bounds()), 1.0, 1e-9);
}

TEST(PickByMinDistRankTest, RanksAgainstBruteForce) {
  SyntheticConfig cfg;
  cfg.num_objects = 200;
  cfg.max_extent = 0.01;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  const Rect q = Rect::Centered(Point{0.5, 0.5}, {0.005, 0.005});
  const LpNorm norm;
  std::vector<std::pair<double, ObjectId>> dists;
  for (const UncertainObject& o : db.objects()) {
    dists.emplace_back(norm.MinDist(o.mbr(), q), o.id());
  }
  std::sort(dists.begin(), dists.end());
  for (size_t rank : {size_t{1}, size_t{10}, size_t{50}}) {
    const ObjectId id = PickByMinDistRank(index, q, rank);
    EXPECT_NEAR(norm.MinDist(db.object(id).mbr(), q), dists[rank - 1].first,
                1e-12)
        << "rank=" << rank;
  }
}

}  // namespace
}  // namespace updb
