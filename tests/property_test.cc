// Randomized property sweeps over the paper's central invariants, run
// across object models, domination criteria, and split policies via
// parameterized gtest.

#include <gtest/gtest.h>

#include <tuple>

#include "updb.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

// (model, criterion, split policy)
using Config = std::tuple<ObjectModel, DominationCriterion, SplitPolicy>;

class IdcaInvariantTest : public ::testing::TestWithParam<Config> {
 protected:
  ObjectModel model() const { return std::get<0>(GetParam()); }
  DominationCriterion criterion() const { return std::get<1>(GetParam()); }
  SplitPolicy policy() const { return std::get<2>(GetParam()); }

  UncertainDatabase MakeDb(uint64_t seed, size_t n = 40) const {
    SyntheticConfig cfg;
    cfg.num_objects = n;
    cfg.max_extent = 0.08;
    cfg.model = model();
    cfg.samples_per_object = 16;
    cfg.seed = seed;
    return MakeSyntheticDatabase(cfg);
  }

  IdcaConfig MakeConfig(int iterations) const {
    IdcaConfig config;
    config.criterion = criterion();
    config.split_policy = policy();
    config.max_iterations = iterations;
    return config;
  }
};

TEST_P(IdcaInvariantTest, BoundsAreAlwaysConsistent) {
  const UncertainDatabase db = MakeDb(101);
  Rng rng(1);
  const auto r = MakeQueryObject(Point{0.5, 0.5}, 0.08, model(), 16, rng);
  IdcaEngine engine(db, MakeConfig(3));
  for (ObjectId b : {ObjectId{0}, ObjectId{13}, ObjectId{39}}) {
    const IdcaResult result = engine.ComputeDomCount(b, *r);
    double lb_total = 0.0, ub_total = 0.0;
    for (size_t k = 0; k < result.bounds.num_ranks(); ++k) {
      EXPECT_GE(result.bounds.lb(k), 0.0);
      EXPECT_LE(result.bounds.ub(k), 1.0);
      EXPECT_LE(result.bounds.lb(k), result.bounds.ub(k) + 1e-12);
      lb_total += result.bounds.lb(k);
      ub_total += result.bounds.ub(k);
    }
    // The true PDF sums to 1; the bounds must admit that.
    EXPECT_LE(lb_total, 1.0 + 1e-9);
    EXPECT_GE(ub_total, 1.0 - 1e-9);
  }
}

TEST_P(IdcaInvariantTest, UncertaintyNeverIncreases) {
  const UncertainDatabase db = MakeDb(102);
  Rng rng(2);
  const auto r = MakeQueryObject(Point{0.4, 0.6}, 0.08, model(), 16, rng);
  IdcaEngine engine(db, MakeConfig(5));
  const IdcaResult result = engine.ComputeDomCount(11, *r);
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].total_uncertainty,
              result.iterations[i - 1].total_uncertainty + 1e-9);
  }
}

TEST_P(IdcaInvariantTest, DiscreteTruthIsBracketed) {
  if (model() != ObjectModel::kDiscrete) {
    GTEST_SKIP() << "exact oracle only for the discrete model";
  }
  const UncertainDatabase db = MakeDb(103);
  Rng rng(3);
  const auto r =
      MakeQueryObject(Point{0.5, 0.5}, 0.08, ObjectModel::kDiscrete, 16, rng);
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 16;
  MonteCarloEngine mc(db, mc_cfg);
  IdcaEngine engine(db, MakeConfig(4));
  for (ObjectId b = 0; b < db.size(); b += 7) {
    const IdcaResult idca = engine.ComputeDomCount(b, *r);
    const MonteCarloResult truth = mc.DomCountPdf(b, *r);
    EXPECT_TRUE(idca.bounds.Brackets(truth.pdf, 1e-9)) << "b=" << b;
  }
}

TEST_P(IdcaInvariantTest, PredicateModeAgreesWithFullMode) {
  const UncertainDatabase db = MakeDb(104);
  Rng rng(4);
  const auto r = MakeQueryObject(Point{0.5, 0.5}, 0.08, model(), 16, rng);
  IdcaConfig config = MakeConfig(3);
  config.uncertainty_epsilon = -1.0;  // force all iterations in both modes
  IdcaEngine engine(db, config);
  for (size_t k : {size_t{2}, size_t{6}}) {
    const IdcaResult full = engine.ComputeDomCount(9, *r);
    const IdcaResult pred =
        engine.ComputeDomCount(9, *r, IdcaPredicate{k, 2.0});  // undecidable
    // tau = 2.0 can never be decided, so predicate mode runs all
    // iterations too; its scalar bracket must be at least as tight as the
    // one derived from the full per-rank arrays.
    const ProbabilityBounds from_full = full.bounds.ProbLessThan(k);
    EXPECT_GE(pred.predicate_prob.lb, from_full.lb - 1e-9) << "k=" << k;
    EXPECT_LE(pred.predicate_prob.ub, from_full.ub + 1e-9) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IdcaInvariantTest,
    ::testing::Combine(
        ::testing::Values(ObjectModel::kUniform, ObjectModel::kGaussian,
                          ObjectModel::kDiscrete),
        ::testing::Values(DominationCriterion::kOptimal,
                          DominationCriterion::kMinMax),
        ::testing::Values(SplitPolicy::kRoundRobin,
                          SplitPolicy::kLongestSide)));

// --------------------------------------------------------------------
// PDom invariants across decomposition depths.

class PDomDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(PDomDepthTest, DualityAndMonotonicityAcrossRandomTriples) {
  const int depth = GetParam();
  Rng rng(500 + depth);
  for (int trial = 0; trial < 20; ++trial) {
    auto make = [&rng]() {
      const double x = rng.Uniform(0, 2);
      const double y = rng.Uniform(0, 2);
      return std::make_unique<UniformPdf>(
          Rect(Point{x, y},
               Point{x + rng.Uniform(0.2, 1.0), y + rng.Uniform(0.2, 1.0)}));
    };
    const auto a = make();
    const auto b = make();
    const auto r = make();
    DecompositionTree ta(a.get()), tb(b.get()), tr(r.get());
    ta.DeepenTo(depth);
    tb.DeepenTo(depth);
    tr.DeepenTo(depth);
    const ProbabilityBounds ab =
        ComputePDomBounds(ta.frontier(), tb.frontier(), tr.frontier());
    const ProbabilityBounds ba =
        ComputePDomBounds(tb.frontier(), ta.frontier(), tr.frontier());
    // Lemma 2: ub(A,B) = 1 - lb(B,A).
    EXPECT_NEAR(ab.ub, 1.0 - ba.lb, 1e-9);
    // Deeper decomposition tightens.
    DecompositionTree ta2(a.get()), tb2(b.get()), tr2(r.get());
    ta2.DeepenTo(depth + 1);
    tb2.DeepenTo(depth + 1);
    tr2.DeepenTo(depth + 1);
    const ProbabilityBounds ab2 =
        ComputePDomBounds(ta2.frontier(), tb2.frontier(), tr2.frontier());
    EXPECT_GE(ab2.lb, ab.lb - 1e-9);
    EXPECT_LE(ab2.ub, ab.ub + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PDomDepthTest, ::testing::Values(0, 1, 2, 3));

// --------------------------------------------------------------------
// UGF vs exhaustive three-state enumeration.

class UgfEnumerationTest : public ::testing::TestWithParam<size_t> {};

TEST_P(UgfEnumerationTest, CoefficientsMatchThreeStateEnumeration) {
  const size_t n = GetParam();
  Rng rng(900 + n);
  std::vector<double> lbs(n), ubs(n);
  UncertainGeneratingFunction ugf;
  for (size_t i = 0; i < n; ++i) {
    lbs[i] = rng.NextDouble();
    ubs[i] = lbs[i] + (1.0 - lbs[i]) * rng.NextDouble();
    ugf.Multiply(lbs[i], ubs[i]);
  }
  // Enumerate all 3^n assignments (definite-1, definite-0, unknown).
  std::vector<std::vector<double>> expected(n + 1,
                                            std::vector<double>(n + 1, 0.0));
  size_t total_states = 1;
  for (size_t i = 0; i < n; ++i) total_states *= 3;
  for (size_t code = 0; code < total_states; ++code) {
    size_t c = code;
    double p = 1.0;
    size_t ones = 0, unknowns = 0;
    for (size_t i = 0; i < n; ++i) {
      switch (c % 3) {
        case 0:
          p *= lbs[i];
          ++ones;
          break;
        case 1:
          p *= 1.0 - ubs[i];
          break;
        default:
          p *= ubs[i] - lbs[i];
          ++unknowns;
          break;
      }
      c /= 3;
    }
    expected[ones][unknowns] += p;
  }
  for (size_t i = 0; i <= n; ++i) {
    for (size_t j = 0; i + j <= n; ++j) {
      EXPECT_NEAR(ugf.Coefficient(i, j), expected[i][j], 1e-12)
          << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UgfEnumerationTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// --------------------------------------------------------------------
// Decomposition invariants across PDF models and policies.

class DecompositionInvariantTest
    : public ::testing::TestWithParam<std::tuple<ObjectModel, SplitPolicy>> {};

TEST_P(DecompositionInvariantTest, MassConservedAndRegionsNested) {
  const auto [model, policy] = GetParam();
  Rng rng(1000);
  const auto pdf = MakeQueryObject(Point{0.5, 0.5}, 0.3, model, 64, rng);
  DecompositionTree tree(pdf.get(), policy);
  const Rect root = pdf->bounds();
  for (int depth = 0; depth < 6; ++depth) {
    double mass = 0.0;
    for (const Partition& p : tree.frontier()) {
      EXPECT_TRUE(root.Contains(p.region));
      EXPECT_GT(p.mass, 0.0);
      mass += p.mass;
    }
    EXPECT_NEAR(mass, 1.0, 1e-9) << "depth=" << depth;
    tree.Deepen();
  }
}

TEST_P(DecompositionInvariantTest, SampledPointsLandInExactlyOnePartition) {
  const auto [model, policy] = GetParam();
  if (model == ObjectModel::kDiscrete) {
    GTEST_SKIP() << "half-open membership is a counting rule, not geometric";
  }
  Rng rng(1001);
  const auto pdf = MakeQueryObject(Point{0.5, 0.5}, 0.3, model, 64, rng);
  DecompositionTree tree(pdf.get(), policy);
  tree.DeepenTo(5);
  for (int s = 0; s < 200; ++s) {
    const Point p = pdf->Sample(rng);
    size_t containing = 0;
    for (const Partition& part : tree.frontier()) {
      containing += part.region.Contains(p);
    }
    // Interior points land in exactly one region; boundary points (measure
    // zero, but floating rounding can hit them) in at most two.
    EXPECT_GE(containing, 1u);
    EXPECT_LE(containing, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompositionInvariantTest,
    ::testing::Combine(::testing::Values(ObjectModel::kUniform,
                                         ObjectModel::kGaussian,
                                         ObjectModel::kDiscrete),
                       ::testing::Values(SplitPolicy::kRoundRobin,
                                         SplitPolicy::kLongestSide)));

}  // namespace
}  // namespace updb
