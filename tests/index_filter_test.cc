// The R-tree-backed complete-domination filter (the paper's "integrate
// into index supported query algorithms" future work). Must be exactly
// equivalent to the linear scan — same complete counts, same influence
// sets, same final bounds — while touching fewer objects.

#include <gtest/gtest.h>

#include <algorithm>

#include "updb.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::PickByMinDistRank;
using workload::SyntheticConfig;

TEST(RTreeTraverseTest, TakeAllEmitsEverySubtreeEntry) {
  Rng rng(61);
  std::vector<RTreeEntry> entries;
  for (ObjectId i = 0; i < 100; ++i) {
    entries.push_back(RTreeEntry{
        Rect::Centered(Point{rng.NextDouble(), rng.NextDouble()},
                       {0.01, 0.01}),
        i});
  }
  RTree tree(entries);
  size_t taken = 0;
  tree.Traverse(
      [](const Rect&) { return RTree::VisitDecision::kTakeAll; },
      [&taken](const RTreeEntry&, RTree::VisitDecision d) {
        EXPECT_EQ(d, RTree::VisitDecision::kTakeAll);
        ++taken;
      });
  EXPECT_EQ(taken, 100u);
}

TEST(RTreeTraverseTest, SkipPrunesEverything) {
  Rng rng(62);
  std::vector<RTreeEntry> entries;
  for (ObjectId i = 0; i < 50; ++i) {
    entries.push_back(RTreeEntry{
        Rect::Centered(Point{rng.NextDouble(), rng.NextDouble()},
                       {0.01, 0.01}),
        i});
  }
  RTree tree(entries);
  size_t taken = 0;
  tree.Traverse([](const Rect&) { return RTree::VisitDecision::kSkip; },
                [&taken](const RTreeEntry&, RTree::VisitDecision) { ++taken; });
  EXPECT_EQ(taken, 0u);
}

TEST(RTreeTraverseTest, DescendClassifiesEntriesIndividually) {
  // Classify by a half-plane on MBR centers: descend everywhere, accept
  // entries left of 0.5, skip the rest.
  Rng rng(63);
  std::vector<RTreeEntry> entries;
  size_t expected = 0;
  for (ObjectId i = 0; i < 200; ++i) {
    const Point c{rng.NextDouble(), rng.NextDouble()};
    entries.push_back(RTreeEntry{Rect::Centered(c, {0.001, 0.001}), i});
    expected += c[0] < 0.5;
  }
  RTree tree(entries);
  size_t taken = 0;
  tree.Traverse(
      [](const Rect& mbr) {
        if (mbr.side(0).hi() < 0.5) return RTree::VisitDecision::kTakeAll;
        if (mbr.side(0).lo() >= 0.5) return RTree::VisitDecision::kSkip;
        return RTree::VisitDecision::kDescend;
      },
      [&taken](const RTreeEntry&, RTree::VisitDecision) { ++taken; });
  EXPECT_EQ(taken, expected);
}

class IndexFilterEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(IndexFilterEquivalenceTest, SameBoundsAsLinearScan) {
  SyntheticConfig cfg;
  cfg.num_objects = 2000;
  cfg.max_extent = GetParam();
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());

  IdcaConfig scan_cfg;
  scan_cfg.max_iterations = 2;
  IdcaConfig index_cfg = scan_cfg;
  index_cfg.use_index_filter = true;
  IdcaEngine scan(db, scan_cfg);
  IdcaEngine indexed(db, &index, index_cfg);

  Rng rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    const Point center{rng.NextDouble(), rng.NextDouble()};
    const auto r = MakeQueryObject(center, cfg.max_extent,
                                   ObjectModel::kUniform, 0, rng);
    const ObjectId b = PickByMinDistRank(index, r->bounds(), 10);
    const IdcaResult a = scan.ComputeDomCount(b, *r);
    const IdcaResult c = indexed.ComputeDomCount(b, *r);
    EXPECT_EQ(a.complete_domination_count, c.complete_domination_count);
    EXPECT_EQ(a.influence_count, c.influence_count);
    ASSERT_EQ(a.bounds.num_ranks(), c.bounds.num_ranks());
    for (size_t k = 0; k < a.bounds.num_ranks(); ++k) {
      EXPECT_NEAR(a.bounds.lb(k), c.bounds.lb(k), 1e-9) << "k=" << k;
      EXPECT_NEAR(a.bounds.ub(k), c.bounds.ub(k), 1e-9) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Extents, IndexFilterEquivalenceTest,
                         ::testing::Values(0.002, 0.01, 0.05));

TEST(IndexFilterTest, WorksWithExistentialObjects) {
  UncertainDatabase db;
  Rng rng(65);
  for (int i = 0; i < 300; ++i) {
    db.Add(std::make_shared<UniformPdf>(Rect::Centered(
               Point{rng.NextDouble(), rng.NextDouble()}, {0.005, 0.005})),
           rng.Bernoulli(0.7) ? 1.0 : 0.5);
  }
  const RTree index = BuildRTree(db.objects());
  IdcaConfig scan_cfg;
  scan_cfg.max_iterations = 1;
  IdcaConfig index_cfg = scan_cfg;
  index_cfg.use_index_filter = true;
  const auto q = workload::MakeQueryObject(Point{0.5, 0.5}, 0.01,
                                           ObjectModel::kUniform, 0, rng);
  const IdcaResult a = IdcaEngine(db, scan_cfg).ComputeDomCount(7, *q);
  const IdcaResult b =
      IdcaEngine(db, &index, index_cfg).ComputeDomCount(7, *q);
  EXPECT_EQ(a.complete_domination_count, b.complete_domination_count);
  EXPECT_EQ(a.influence_count, b.influence_count);
}

TEST(IndexFilterTest, WorksForRknnRoleSwap) {
  SyntheticConfig cfg;
  cfg.num_objects = 500;
  cfg.max_extent = 0.01;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  IdcaConfig scan_cfg;
  scan_cfg.max_iterations = 2;
  IdcaConfig index_cfg = scan_cfg;
  index_cfg.use_index_filter = true;
  Rng rng(66);
  const auto q = workload::MakeQueryObject(Point{0.4, 0.6}, 0.01,
                                           ObjectModel::kUniform, 0, rng);
  for (ObjectId b_ref : {ObjectId{3}, ObjectId{99}}) {
    const IdcaResult a =
        IdcaEngine(db, scan_cfg).ComputeDomCountOfQuery(*q, b_ref);
    const IdcaResult b =
        IdcaEngine(db, &index, index_cfg).ComputeDomCountOfQuery(*q, b_ref);
    EXPECT_EQ(a.complete_domination_count, b.complete_domination_count);
    EXPECT_EQ(a.influence_count, b.influence_count);
    for (size_t k = 0; k < a.bounds.num_ranks(); ++k) {
      EXPECT_NEAR(a.bounds.lb(k), b.bounds.lb(k), 1e-9);
      EXPECT_NEAR(a.bounds.ub(k), b.bounds.ub(k), 1e-9);
    }
  }
}

TEST(IndexFilterTest, RequiresIndexWhenEnabled) {
  // The scan constructor rejects use_index_filter (programming error
  // guarded by UPDB_CHECK -> process death).
  UncertainDatabase db;
  db.Add(std::make_shared<UniformPdf>(
      Rect::Centered(Point{0.5, 0.5}, {0.1, 0.1})));
  IdcaConfig config;
  config.use_index_filter = true;
  EXPECT_DEATH(IdcaEngine(db, config), "UPDB_CHECK");
}

}  // namespace
}  // namespace updb
