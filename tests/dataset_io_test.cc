#include "io/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/idca.h"
#include "workload/generators.h"

namespace updb {
namespace {

using io::LoadDatabase;
using io::ParseObject;
using io::SaveDatabase;
using io::SerializeObject;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeObjectTest, UniformRoundTrip) {
  UncertainObject o(0,
                    std::make_shared<UniformPdf>(
                        Rect(Point{0.25, 0.5}, Point{0.75, 1.0})),
                    0.8);
  const StatusOr<std::string> line = SerializeObject(o);
  ASSERT_TRUE(line.ok());
  const StatusOr<io::ParsedObject> parsed = ParseObject(*line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->existence, 0.8);
  EXPECT_EQ(parsed->pdf->bounds(), o.mbr());
  EXPECT_NE(dynamic_cast<const UniformPdf*>(parsed->pdf.get()), nullptr);
}

TEST(SerializeObjectTest, GaussianRoundTripPreservesMass) {
  auto pdf = std::make_shared<TruncatedGaussianPdf>(
      Rect(Point{0.0, 0.0}, Point{1.0, 1.0}), std::vector<double>{0.4, 0.6},
      std::vector<double>{0.2, 0.1});
  UncertainObject o(0, pdf);
  const StatusOr<std::string> line = SerializeObject(o);
  ASSERT_TRUE(line.ok());
  const StatusOr<io::ParsedObject> parsed = ParseObject(*line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Same mass on a probe region.
  const Rect probe(Point{0.2, 0.3}, Point{0.7, 0.9});
  EXPECT_NEAR(parsed->pdf->Mass(probe), pdf->Mass(probe), 1e-12);
}

TEST(SerializeObjectTest, DiscreteRoundTripPreservesSamples) {
  auto pdf = std::make_shared<DiscreteSamplePdf>(
      std::vector<Point>{Point{0.1, 0.2}, Point{0.3, 0.4}},
      std::vector<double>{1.0, 3.0});
  UncertainObject o(0, pdf);
  const StatusOr<std::string> line = SerializeObject(o);
  ASSERT_TRUE(line.ok());
  const StatusOr<io::ParsedObject> parsed = ParseObject(*line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* d = dynamic_cast<const DiscreteSamplePdf*>(parsed->pdf.get());
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->samples().size(), 2u);
  EXPECT_EQ(d->samples()[1], (Point{0.3, 0.4}));
  EXPECT_DOUBLE_EQ(d->weights()[1], 0.75);
}

TEST(SerializeObjectTest, MixtureRoundTripPreservesMass) {
  // Bimodal mixture: a uniform mode, a Gaussian mode, and a discrete mode
  // — one of each serializable component type.
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.0}, Point{0.4, 0.4})));
  comps.push_back(std::make_unique<TruncatedGaussianPdf>(
      Rect(Point{0.6, 0.6}, Point{1.0, 1.0}), std::vector<double>{0.8, 0.7},
      std::vector<double>{0.1, 0.05}));
  comps.push_back(std::make_unique<DiscreteSamplePdf>(
      std::vector<Point>{Point{0.5, 0.5}, Point{0.55, 0.52}},
      std::vector<double>{2.0, 1.0}));
  auto pdf = std::make_shared<MixturePdf>(std::move(comps),
                                          std::vector<double>{0.5, 0.3, 0.2});
  UncertainObject o(0, pdf, 0.9);
  const StatusOr<std::string> line = SerializeObject(o);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  const StatusOr<io::ParsedObject> parsed = ParseObject(*line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->existence, 0.9);
  const auto* m = dynamic_cast<const MixturePdf*>(parsed->pdf.get());
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->num_components(), 3u);
  EXPECT_EQ(parsed->pdf->bounds(), pdf->bounds());
  for (const Rect& probe :
       {Rect(Point{0.0, 0.0}, Point{0.5, 0.5}),
        Rect(Point{0.5, 0.5}, Point{1.0, 1.0}),
        Rect(Point{0.2, 0.3}, Point{0.7, 0.9})}) {
    EXPECT_NEAR(parsed->pdf->Mass(probe), pdf->Mass(probe), 1e-12);
  }
}

TEST(SerializeObjectTest, NestedMixtureRoundTrips) {
  std::vector<std::unique_ptr<Pdf>> inner;
  inner.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.0}, Point{0.2, 0.2})));
  inner.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.3, 0.3}, Point{0.5, 0.5})));
  std::vector<std::unique_ptr<Pdf>> outer;
  outer.push_back(std::make_unique<MixturePdf>(std::move(inner),
                                               std::vector<double>{1.0, 3.0}));
  outer.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.8, 0.8}, Point{1.0, 1.0})));
  auto pdf = std::make_shared<MixturePdf>(std::move(outer),
                                          std::vector<double>{0.6, 0.4});
  UncertainObject o(0, pdf);
  const StatusOr<std::string> line = SerializeObject(o);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  const StatusOr<io::ParsedObject> parsed = ParseObject(*line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Rect probe(Point{0.25, 0.25}, Point{0.9, 0.9});
  EXPECT_NEAR(parsed->pdf->Mass(probe), pdf->Mass(probe), 1e-12);
}

TEST(SerializeObjectTest, OverDeepMixtureFailsAtSaveTime) {
  // Deeper than the parser's nesting limit: serialization must refuse,
  // never produce a line LoadDatabase would reject.
  auto pdf = std::unique_ptr<Pdf>(std::make_unique<UniformPdf>(
      Rect(Point{0.0, 0.0}, Point{1.0, 1.0})));
  for (int level = 0; level < 20; ++level) {
    std::vector<std::unique_ptr<Pdf>> comps;
    comps.push_back(std::move(pdf));
    pdf = std::make_unique<MixturePdf>(std::move(comps),
                                       std::vector<double>{1.0});
  }
  UncertainObject o(0, std::shared_ptr<const Pdf>(std::move(pdf)));
  const StatusOr<std::string> line = SerializeObject(o);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kUnimplemented);
}

TEST(DatabaseIoTest, MixtureDatabaseRoundTripsThroughFile) {
  UncertainDatabase db;
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.1, 0.1}, Point{0.3, 0.3})));
  comps.push_back(std::make_unique<UniformPdf>(
      Rect(Point{0.6, 0.6}, Point{0.9, 0.9})));
  db.Add(std::make_shared<MixturePdf>(std::move(comps),
                                      std::vector<double>{1.0, 1.0}),
         0.75);
  db.Add(std::make_shared<UniformPdf>(Rect(Point{0.0, 0.0}, Point{1.0, 1.0})));
  const std::string path = TempPath("mixture.updb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  const StatusOr<UncertainDatabase> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_NE(dynamic_cast<const MixturePdf*>(&loaded->object(0).pdf()),
            nullptr);
  EXPECT_DOUBLE_EQ(loaded->object(0).existence(), 0.75);
  EXPECT_EQ(loaded->object(0).mbr(), db.object(0).mbr());
  std::remove(path.c_str());
}

TEST(ParseObjectTest, RejectsMalformedInput) {
  struct Case {
    const char* line;
    const char* why;
  };
  const Case cases[] = {
      {"", "empty"},
      {"bogus,1,2,0,1,0,1", "unknown type"},
      {"uniform,1,2,0,1,0", "missing field"},
      {"uniform,1,2,0,1,0,1,9", "trailing field"},
      {"uniform,0,2,0,1,0,1", "existence 0"},
      {"uniform,1.5,2,0,1,0,1", "existence > 1"},
      {"uniform,1,0", "dimension 0"},
      {"uniform,1,2,1,0,0,1", "lo > hi"},
      {"uniform,1,2,x,1,0,1", "non-numeric"},
      {"gaussian,1,1,0,1,0.5,-0.1", "negative sigma"},
      {"discrete,1,2,0", "no samples"},
      {"discrete,1,2,2,0.5,0.1,0.2", "field count mismatch"},
      {"discrete,1,1,1,-1,0.5", "negative weight"},
      {"mixture,1,2,0", "no components"},
      {"mixture,1,2,1,0.5", "missing component type"},
      {"mixture,1,2,1,-1,uniform,0,1,0,1", "negative component weight"},
      {"mixture,1,2,1,1,bogus,0,1", "unknown component type"},
      {"mixture,1,2,1,1,uniform,0,1,0,1,9", "trailing component field"},
      {"discrete,1,2,99999999999,0.5,0.1,0.2", "hostile sample count"},
      {"mixture,1,2,99999999999,1,uniform,0,1,0,1", "hostile component count"},
  };
  for (const Case& c : cases) {
    const StatusOr<io::ParsedObject> parsed = ParseObject(c.line);
    EXPECT_FALSE(parsed.ok()) << c.why;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << c.why;
    }
  }
}

TEST(DatabaseIoTest, SaveLoadRoundTrip) {
  workload::SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.model = workload::ObjectModel::kDiscrete;
  cfg.samples_per_object = 8;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const std::string path = TempPath("roundtrip.updb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  const StatusOr<UncertainDatabase> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded->object(i).mbr(), db.object(i).mbr()) << "i=" << i;
    EXPECT_DOUBLE_EQ(loaded->object(i).existence(),
                     db.object(i).existence());
  }
  std::remove(path.c_str());
}

TEST(DatabaseIoTest, RoundTripPreservesQueryResults) {
  // Stronger check: IDCA bounds on the loaded database are identical.
  workload::SyntheticConfig cfg;
  cfg.num_objects = 30;
  cfg.max_extent = 0.1;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const std::string path = TempPath("query.updb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  const StatusOr<UncertainDatabase> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  Rng rng(71);
  const auto q = workload::MakeQueryObject(
      Point{0.5, 0.5}, 0.1, workload::ObjectModel::kUniform, 0, rng);
  IdcaConfig config;
  config.max_iterations = 3;
  const IdcaResult a = IdcaEngine(db, config).ComputeDomCount(5, *q);
  const IdcaResult b = IdcaEngine(*loaded, config).ComputeDomCount(5, *q);
  for (size_t k = 0; k < a.bounds.num_ranks(); ++k) {
    EXPECT_DOUBLE_EQ(a.bounds.lb(k), b.bounds.lb(k));
    EXPECT_DOUBLE_EQ(a.bounds.ub(k), b.bounds.ub(k));
  }
  std::remove(path.c_str());
}

TEST(DatabaseIoTest, LoadMissingFileIsNotFound) {
  const StatusOr<UncertainDatabase> loaded =
      LoadDatabase("/nonexistent/dir/file.updb");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseIoTest, LoadReportsLineNumbers) {
  const std::string path = TempPath("bad.updb");
  std::ofstream out(path);
  out << "# header\n";
  out << "uniform,1,2,0,1,0,1\n";
  out << "uniform,1,2,1,0,0,1\n";  // lo > hi on line 3
  out.close();
  const StatusOr<UncertainDatabase> loaded = LoadDatabase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatabaseIoTest, LoadRejectsDimensionMismatch) {
  const std::string path = TempPath("dims.updb");
  std::ofstream out(path);
  out << "uniform,1,2,0,1,0,1\n";
  out << "uniform,1,1,0,1\n";
  out.close();
  const StatusOr<UncertainDatabase> loaded = LoadDatabase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("dimension"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatabaseIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = TempPath("comments.updb");
  std::ofstream out(path);
  out << "# comment\n\n";
  out << "uniform,1,2,0,1,0,1\n";
  out << "\n# trailing comment\n";
  out.close();
  const StatusOr<UncertainDatabase> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace updb
