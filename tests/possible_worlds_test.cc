// The strongest correctness oracle in the suite: for tiny discrete
// databases, enumerate EVERY possible world exhaustively (all sample
// combinations of all objects and the reference, including existential
// presence/absence), compute the exact domination-count distribution by
// definition (Definitions 2-3), and require both the Monte-Carlo engine
// and fully-converged IDCA to match it. This is independent of the
// generating-function machinery both engines share.

#include <gtest/gtest.h>

#include "updb.h"

namespace updb {
namespace {

struct WorldObject {
  std::vector<Point> positions;   // alternatives, uniformly weighted
  double existence = 1.0;
};

/// Exact domination-count PDF of object `b` w.r.t. discrete reference `r`
/// by brute-force world enumeration.
std::vector<double> ExactDomCountPdf(const std::vector<WorldObject>& objects,
                                     size_t b,
                                     const std::vector<Point>& r_positions,
                                     const LpNorm& norm = LpNorm::Euclidean()) {
  const size_t n = objects.size();
  std::vector<double> pdf(n, 0.0);

  // Enumerate positions via mixed-radix counter; existence via bitmask
  // over the existentially uncertain objects.
  std::vector<size_t> radix(n);
  size_t position_worlds = 1;
  for (size_t i = 0; i < n; ++i) {
    radix[i] = objects[i].positions.size();
    position_worlds *= radix[i];
  }
  for (const Point& rp : r_positions) {
    const double r_w = 1.0 / static_cast<double>(r_positions.size());
    for (size_t pw = 0; pw < position_worlds; ++pw) {
      // Decode positions and their joint probability.
      std::vector<const Point*> pos(n);
      double p_w = r_w;
      size_t code = pw;
      for (size_t i = 0; i < n; ++i) {
        pos[i] = &objects[i].positions[code % radix[i]];
        p_w /= static_cast<double>(radix[i]);
        code /= radix[i];
      }
      // Existence bitmask over others (B conditioned on existing).
      std::vector<size_t> uncertain;
      for (size_t i = 0; i < n; ++i) {
        if (i != b && objects[i].existence < 1.0) uncertain.push_back(i);
      }
      const size_t masks = size_t{1} << uncertain.size();
      for (size_t mask = 0; mask < masks; ++mask) {
        double e_w = p_w;
        std::vector<bool> present(n, true);
        for (size_t u = 0; u < uncertain.size(); ++u) {
          const bool exists = (mask >> u) & 1;
          present[uncertain[u]] = exists;
          const double e = objects[uncertain[u]].existence;
          e_w *= exists ? e : 1.0 - e;
        }
        const double bd = norm.Dist(*pos[b], rp);
        size_t count = 0;
        for (size_t i = 0; i < n; ++i) {
          if (i == b || !present[i]) continue;
          if (norm.Dist(*pos[i], rp) < bd) ++count;
        }
        pdf[count] += e_w;
      }
    }
  }
  return pdf;
}

/// Builds the updb database from the world spec.
UncertainDatabase MakeDb(const std::vector<WorldObject>& objects) {
  UncertainDatabase db;
  for (const WorldObject& o : objects) {
    db.Add(std::make_shared<DiscreteSamplePdf>(o.positions), o.existence);
  }
  return db;
}

class PossibleWorldsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PossibleWorldsTest, McAndIdcaMatchExhaustiveEnumeration) {
  Rng rng(GetParam());
  // Random tiny instance: 3-5 objects, 1-3 alternatives each, random
  // existences, 1-2 reference alternatives.
  const size_t n = 3 + rng.NextBounded(3);
  std::vector<WorldObject> objects(n);
  for (WorldObject& o : objects) {
    const size_t alts = 1 + rng.NextBounded(3);
    for (size_t a = 0; a < alts; ++a) {
      o.positions.push_back(
          Point{rng.Uniform(0, 4), rng.Uniform(0, 4)});
    }
    o.existence = rng.Bernoulli(0.5) ? 1.0 : rng.Uniform(0.3, 0.9);
  }
  std::vector<Point> r_positions;
  const size_t r_alts = 1 + rng.NextBounded(2);
  for (size_t a = 0; a < r_alts; ++a) {
    r_positions.push_back(Point{rng.Uniform(0, 4), rng.Uniform(0, 4)});
  }

  const size_t b = rng.NextBounded(n);
  // B is conditioned on existing in the queries: force it certain in the
  // spec so the oracle and engines agree on semantics.
  objects[b].existence = 1.0;

  const std::vector<double> exact =
      ExactDomCountPdf(objects, b, r_positions);
  const UncertainDatabase db = MakeDb(objects);
  const DiscreteSamplePdf r(r_positions);

  // Monte-Carlo engine (exact for discrete models).
  MonteCarloEngine mc(db, {});
  const MonteCarloResult mc_result =
      mc.DomCountPdf(static_cast<ObjectId>(b), r);
  ASSERT_EQ(mc_result.pdf.size(), exact.size());
  for (size_t k = 0; k < exact.size(); ++k) {
    EXPECT_NEAR(mc_result.pdf[k], exact[k], 1e-9)
        << "seed=" << GetParam() << " k=" << k;
  }

  // IDCA, run to convergence (discrete objects exhaust their trees).
  IdcaConfig config;
  config.max_iterations = 16;
  IdcaEngine engine(db, config);
  const IdcaResult idca = engine.ComputeDomCount(static_cast<ObjectId>(b), r);
  // Where positions collide the criterion cannot decide strict ties, so
  // assert bracketing always, exactness when no residual uncertainty.
  EXPECT_TRUE(idca.bounds.Brackets(exact, 1e-9)) << "seed=" << GetParam();
  if (idca.bounds.TotalUncertainty() < 1e-9) {
    for (size_t k = 0; k < exact.size(); ++k) {
      EXPECT_NEAR(idca.bounds.lb(k), exact[k], 1e-9)
          << "seed=" << GetParam() << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PossibleWorldsTest,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

TEST(PossibleWorldsTest, HandWorkedExample) {
  // Worked instance: B certain at (2,0); A1 in {(1,0),(3,0)}; A2 in
  // {(1.5,0)} with existence 0.5; R certain at origin.
  // Dominators of B: A1 iff at 1 (p = .5); A2 iff present (p = .5),
  // independent -> counts: P(0)=.25, P(1)=.5, P(2)=.25.
  std::vector<WorldObject> objects(3);
  objects[0].positions = {Point{1.0, 0.0}, Point{3.0, 0.0}};
  objects[1].positions = {Point{1.5, 0.0}};
  objects[1].existence = 0.5;
  objects[2].positions = {Point{2.0, 0.0}};
  const std::vector<double> exact =
      ExactDomCountPdf(objects, 2, {Point{0.0, 0.0}});
  EXPECT_NEAR(exact[0], 0.25, 1e-12);
  EXPECT_NEAR(exact[1], 0.50, 1e-12);
  EXPECT_NEAR(exact[2], 0.25, 1e-12);
  const UncertainDatabase db = MakeDb(objects);
  IdcaConfig config;
  config.max_iterations = 8;
  const IdcaResult idca =
      IdcaEngine(db, config).ComputeDomCount(2, DiscreteSamplePdf(
                                                    {Point{0.0, 0.0}}));
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(idca.bounds.lb(k), exact[k], 1e-9);
    EXPECT_NEAR(idca.bounds.ub(k), exact[k], 1e-9);
  }
}

}  // namespace
}  // namespace updb
