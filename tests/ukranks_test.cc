#include <gtest/gtest.h>

#include <algorithm>

#include "mc/monte_carlo.h"
#include "queries/queries.h"
#include "workload/generators.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

std::shared_ptr<DiscreteSamplePdf> PointObject(double x, double y) {
  return std::make_shared<DiscreteSamplePdf>(std::vector<Point>{Point{x, y}});
}

TEST(UkRanksTest, CertainChainAssignsRanksInOrder) {
  UncertainDatabase db;
  db.Add(PointObject(3.0, 0.0));
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  db.Add(PointObject(4.0, 0.0));
  const RTree index = BuildRTree(db.objects());
  const auto q = PointObject(0.0, 0.0);
  const auto winners = UkRanksQuery(db, index, *q, 3);
  ASSERT_EQ(winners.size(), 3u);
  EXPECT_EQ(winners[0].winner, 1u);  // x=1 -> rank 1
  EXPECT_EQ(winners[1].winner, 2u);  // x=2 -> rank 2
  EXPECT_EQ(winners[2].winner, 0u);  // x=3 -> rank 3
  for (const RankWinner& w : winners) {
    EXPECT_TRUE(w.decided) << "rank " << w.rank;
    EXPECT_NEAR(w.prob.lb, 1.0, 1e-9);
  }
}

TEST(UkRanksTest, DecidedWinnersMatchMcArgmax) {
  SyntheticConfig cfg;
  cfg.num_objects = 40;
  cfg.max_extent = 0.05;
  cfg.model = ObjectModel::kDiscrete;
  cfg.samples_per_object = 16;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(411);
  const auto q = MakeQueryObject(Point{0.5, 0.5}, 0.05,
                                 ObjectModel::kDiscrete, 16, rng);
  IdcaConfig config;
  config.max_iterations = 12;
  const size_t max_rank = 5;
  const auto winners = UkRanksQuery(db, index, *q, max_rank, config);
  ASSERT_EQ(winners.size(), max_rank);

  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 16;
  MonteCarloEngine mc(db, mc_cfg);
  for (const RankWinner& w : winners) {
    if (!w.decided || w.winner == kInvalidObjectId) continue;
    // The decided winner's exact probability must exceed every other
    // object's exact probability for that rank.
    const size_t count = w.rank - 1;
    const double winner_p = mc.DomCountPdf(w.winner, *q).pdf[count];
    EXPECT_GE(winner_p, w.prob.lb - 1e-9);
    for (ObjectId other = 0; other < db.size(); ++other) {
      if (other == w.winner) continue;
      const double other_p = mc.DomCountPdf(other, *q).pdf[count];
      EXPECT_LE(other_p, winner_p + 1e-9)
          << "rank " << w.rank << " other " << other;
    }
  }
}

TEST(UkRanksTest, ProbBoundsAreConsistent) {
  SyntheticConfig cfg;
  cfg.num_objects = 60;
  cfg.max_extent = 0.03;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(413);
  const auto q =
      MakeQueryObject(Point{0.4, 0.4}, 0.03, ObjectModel::kUniform, 0, rng);
  IdcaConfig config;
  config.max_iterations = 4;
  const auto winners = UkRanksQuery(db, index, *q, 4, config);
  for (const RankWinner& w : winners) {
    EXPECT_NE(w.winner, kInvalidObjectId) << "rank " << w.rank;
    EXPECT_GE(w.prob.lb, 0.0);
    EXPECT_LE(w.prob.ub, 1.0);
    EXPECT_LE(w.prob.lb, w.prob.ub + 1e-12);
  }
}

TEST(UkRanksTest, MaxRankBeyondDatabaseSize) {
  UncertainDatabase db;
  db.Add(PointObject(1.0, 0.0));
  db.Add(PointObject(2.0, 0.0));
  const RTree index = BuildRTree(db.objects());
  const auto q = PointObject(0.0, 0.0);
  const auto winners = UkRanksQuery(db, index, *q, 5);
  ASSERT_EQ(winners.size(), 5u);
  EXPECT_EQ(winners[0].winner, 0u);
  EXPECT_EQ(winners[1].winner, 1u);
  // Ranks beyond the database size have no possible occupant with
  // positive probability; the reported bracket must be [~0, ~0] or the
  // winner invalid.
  for (size_t i = 2; i < 5; ++i) {
    if (winners[i].winner != kInvalidObjectId) {
      EXPECT_NEAR(winners[i].prob.ub, 0.0, 1e-9) << "rank " << i + 1;
    }
  }
}

}  // namespace
}  // namespace updb
