#include "common/status.h"

#include <gtest/gtest.h>

namespace updb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("u").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("i").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("re").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DataLoss("dl").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("ua").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("object 7").ToString(), "NotFound: object 7");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, DataLossAndUnavailableCarryMessages) {
  EXPECT_EQ(Status::DataLoss("torn tail").ToString(), "DataLoss: torn tail");
  EXPECT_EQ(Status::Unavailable("no such dir").ToString(),
            "Unavailable: no such dir");
  EXPECT_FALSE(Status::DataLoss("x") == Status::Unavailable("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusIsRejected) {
  StatusOr<int> v{Status::OK()};
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MutableValueAccess) {
  StatusOr<std::string> v(std::string("ab"));
  v.value() += "c";
  EXPECT_EQ(*v, "abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  UPDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace updb
