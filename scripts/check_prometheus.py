#!/usr/bin/env python3
# Copyright 2026 The updb Authors.
"""Validates a Prometheus text-exposition scrape (format version 0.0.4).

Reads the scrape from stdin or a file argument and exits non-zero on the
first class of malformed content found. CI pipes the live /metrics payload
of a serving updb_cli through this, so a regression in the exposition
writer (missing HELP/TYPE, repeated family headers, bad escaping, broken
histogram shape) fails the build instead of a scraper at deploy time.

Checked per the exposition-format spec:
  * every line is a comment (# HELP / # TYPE), a sample, or blank;
  * metric and label names match the allowed character sets;
  * HELP/TYPE appear at most once per family, before its samples, with a
    TYPE among counter/gauge/histogram/summary/untyped;
  * label values use only the legal escapes (\\\\, \\", \\n);
  * sample values parse as floats (including +Inf/-Inf/NaN);
  * histogram families expose _bucket series with non-decreasing
    cumulative counts ending in an le="+Inf" bucket that equals _count;
  * no duplicate sample line for the same series.

Usage: check_prometheus.py [scrape.txt]
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# A label value with only legal escape sequences.
LABEL_VALUE = re.compile(r'^(?:[^"\\\n]|\\\\|\\"|\\n)*$')
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def base_family(name):
    """Family a _bucket/_sum/_count sample belongs to, else the name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(lines):
    errors = []
    helps, types = {}, {}
    families_with_samples = set()
    seen_series = set()
    # family -> list of (le_value, cumulative_count), family -> counts.
    buckets, counts = {}, {}

    def error(lineno, message):
        errors.append("line %d: %s" % (lineno, message))

    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Other comments are legal and ignored.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    error(lineno, "truncated %s comment" % parts[1])
                continue
            kind, name = parts[1], parts[2]
            if not METRIC_NAME.match(name):
                error(lineno, "bad metric name in %s: %r" % (kind, name))
                continue
            registry = helps if kind == "HELP" else types
            if name in registry:
                error(lineno, "repeated # %s for %s" % (kind, name))
            if name in families_with_samples:
                error(lineno, "# %s for %s after its samples" % (kind, name))
            if kind == "TYPE":
                if len(parts) < 4 or parts[3] not in TYPES:
                    error(lineno, "bad TYPE for %s: %r"
                          % (name, parts[3] if len(parts) > 3 else ""))
                types[name] = parts[3] if len(parts) > 3 else ""
            else:
                helps[name] = parts[3] if len(parts) > 3 else ""
            continue

        m = SAMPLE.match(line)
        if not m:
            error(lineno, "unparseable sample line: %r" % line)
            continue
        name = m.group("name")
        families_with_samples.add(base_family(name))

        labels = {}
        if m.group("labels") is not None:
            body = m.group("labels")
            consumed = 0
            for pair in LABEL_PAIR.finditer(body):
                key, value = pair.group(1), pair.group(2)
                if not LABEL_NAME.match(key):
                    error(lineno, "bad label name %r" % key)
                if not LABEL_VALUE.match(value):
                    error(lineno, "illegal escape in label value %r" % value)
                if key in labels:
                    error(lineno, "duplicate label %r" % key)
                labels[key] = value
                consumed = pair.end()
                # Skip a separating comma (a trailing comma is legal).
                if consumed < len(body) and body[consumed] == ",":
                    consumed += 1
            if consumed != len(body):
                error(lineno, "trailing junk in label set: %r"
                      % body[consumed:])

        try:
            value = parse_value(m.group("value"))
        except ValueError:
            error(lineno, "unparseable value %r" % m.group("value"))
            continue

        series = (name, tuple(sorted(labels.items())))
        if series in seen_series:
            error(lineno, "duplicate sample for %s%s" % (name, dict(labels)))
        seen_series.add(series)

        family = base_family(name)
        if name.endswith("_bucket"):
            if "le" not in labels:
                error(lineno, "_bucket sample without an le label")
            else:
                key = (family,
                       tuple(sorted((k, v) for k, v in labels.items()
                                    if k != "le")))
                buckets.setdefault(key, []).append(
                    (labels["le"], value, lineno))
        elif name.endswith("_count"):
            key = (family, tuple(sorted(labels.items())))
            counts[key] = (value, lineno)

    # Histogram shape: cumulative, ending in +Inf == _count.
    for family, declared in types.items():
        if declared != "histogram":
            continue
        for (fam, label_key), entries in buckets.items():
            if fam != family:
                continue
            last = -math.inf
            for le, cumulative, lineno in entries:
                if cumulative < last:
                    error(lineno, "%s buckets not cumulative" % family)
                last = cumulative
            if entries[-1][0] != "+Inf":
                error(entries[-1][2],
                      "%s buckets do not end in le=\"+Inf\"" % family)
            count = counts.get((fam, label_key))
            if count is not None and entries[-1][1] != count[0]:
                error(count[1], "%s +Inf bucket %g != _count %g"
                      % (family, entries[-1][1], count[0]))

    # Every family with samples should be typed and documented (our
    # exposition writer always emits both; their absence is a regression).
    for family in sorted(families_with_samples):
        if family not in types:
            errors.append("family %s has samples but no # TYPE" % family)
        if family not in helps:
            errors.append("family %s has samples but no # HELP" % family)

    return errors


def main(argv):
    if len(argv) > 2 or (len(argv) == 2 and argv[1] in ("-h", "--help")):
        sys.stderr.write(__doc__)
        return 2
    if len(argv) == 2:
        with open(argv[1], "r", encoding="utf-8") as f:
            lines = f.readlines()
    else:
        lines = sys.stdin.readlines()

    sample_count = sum(
        1 for l in lines if l.strip() and not l.startswith("#"))
    errors = check(lines)
    for message in errors:
        sys.stderr.write("check_prometheus: %s\n" % message)
    if errors:
        return 1
    if sample_count == 0:
        sys.stderr.write("check_prometheus: scrape contains no samples\n")
        return 1
    print("check_prometheus: OK (%d samples, %d families)"
          % (sample_count, len({base_family(l.split("{")[0].split(" ")[0])
                                for l in lines
                                if l.strip() and not l.startswith("#")})))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
