// Copyright 2026 The updb Authors.
// Umbrella header: the full public API of updb, the reproduction of
// "A Novel Probabilistic Pruning Approach to Speed Up Similarity Queries
// in Uncertain Databases" (ICDE 2011).

#ifndef UPDB_UPDB_H_
#define UPDB_UPDB_H_

#include "cache/response_cache.h"
#include "cache/verdict_memo.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/idca.h"
#include "domination/criteria.h"
#include "domination/pdom.h"
#include "geom/distance.h"
#include "geom/interval.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "gf/count_bounds.h"
#include "gf/poisson_binomial.h"
#include "gf/ugf.h"
#include "gf/ugf_reference.h"
#include "index/rtree.h"
#include "io/dataset_io.h"
#include "mc/monte_carlo.h"
#include "net/http.h"
#include "obs/admin_server.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "queries/expected_distance.h"
#include "queries/queries.h"
#include "service/introspection.h"
#include "service/metrics.h"
#include "service/query_service.h"
#include "service/request.h"
#include "service/trace.h"
#include "store/checkpoint.h"
#include "store/object_store.h"
#include "store/recovery.h"
#include "store/snapshot_index.h"
#include "store/wal.h"
#include "uncertain/database.h"
#include "uncertain/decomposition.h"
#include "uncertain/object.h"
#include "uncertain/pdf.h"
#include "workload/churn.h"
#include "workload/generators.h"

#endif  // UPDB_UPDB_H_
