// Copyright 2026 The updb Authors.
// Textual serialization of uncertain databases, so workloads can be
// exported, inspected and re-loaded deterministically (e.g. to share an
// experiment's dataset or to feed external plotting).
//
// Format (one object per line, comma separated; lines starting with '#'
// are comments):
//
//   uniform,<existence>,<dim>,<lo_0>,<hi_0>,...,<lo_d-1>,<hi_d-1>
//   gaussian,<existence>,<dim>,<lo_0>,<hi_0>,...,<mean_0>,...,<sigma_0>,...
//   discrete,<existence>,<dim>,<n>,<w_1>,<x_1_0>,...,<x_1_d-1>,<w_2>,...
//   mixture,<existence>,<dim>,<n>,<w_1>,<component_1>,...,<w_n>,<component_n>
//
// A mixture component is a nested <type>,<payload> sequence using the same
// payloads as the top-level formats (without the existence/dim header);
// components may themselves be mixtures, up to a fixed nesting depth.
// Weights are serialized normalized (as MixturePdf stores them).

#ifndef UPDB_IO_DATASET_IO_H_
#define UPDB_IO_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "uncertain/database.h"

namespace updb {
namespace io {

/// Serializes one object to its line format (no trailing newline).
/// Fails with Unimplemented for PDF types without a line format.
StatusOr<std::string> SerializeObject(const UncertainObject& object);

/// Parses one line into an object PDF + existence. Fails with
/// InvalidArgument on malformed input.
struct ParsedObject {
  std::shared_ptr<const Pdf> pdf;
  double existence = 1.0;
};
StatusOr<ParsedObject> ParseObject(const std::string& line);

/// Writes the whole database to `path`. Fails with the first
/// serialization error, or Internal on I/O failure.
Status SaveDatabase(const UncertainDatabase& db, const std::string& path);

/// Loads a database written by SaveDatabase. Fails with NotFound when the
/// file cannot be opened and InvalidArgument on malformed content.
StatusOr<UncertainDatabase> LoadDatabase(const std::string& path);

}  // namespace io
}  // namespace updb

#endif  // UPDB_IO_DATASET_IO_H_
