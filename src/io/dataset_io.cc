#include "io/dataset_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace updb {
namespace io {

namespace {

/// Appends a double with full round-trip precision.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Splits a CSV line into fields.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

/// Cursor over parsed fields with typed, Status-producing accessors.
class FieldCursor {
 public:
  explicit FieldCursor(std::vector<std::string> fields)
      : fields_(std::move(fields)) {}

  Status NextString(std::string* out) {
    if (pos_ >= fields_.size()) {
      return Status::InvalidArgument("unexpected end of line");
    }
    *out = fields_[pos_++];
    return Status::OK();
  }

  Status NextDouble(double* out) {
    if (pos_ >= fields_.size()) {
      return Status::InvalidArgument("unexpected end of line");
    }
    errno = 0;
    char* end = nullptr;
    const std::string& f = fields_[pos_];
    const double v = std::strtod(f.c_str(), &end);
    if (end == f.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("not a number: '" + f + "'");
    }
    ++pos_;
    *out = v;
    return Status::OK();
  }

  Status NextSize(size_t* out) {
    double v = 0.0;
    UPDB_RETURN_IF_ERROR(NextDouble(&v));
    if (v < 0 || v != static_cast<double>(static_cast<size_t>(v))) {
      return Status::InvalidArgument("not a non-negative integer");
    }
    *out = static_cast<size_t>(v);
    return Status::OK();
  }

  bool exhausted() const { return pos_ >= fields_.size(); }
  size_t remaining() const { return fields_.size() - pos_; }

 private:
  std::vector<std::string> fields_;
  size_t pos_ = 1;  // field 0 is the type tag
};

Status ValidateHeader(double existence, size_t dim) {
  if (existence <= 0.0 || existence > 1.0) {
    return Status::InvalidArgument("existence must be in (0, 1]");
  }
  if (dim == 0) return Status::InvalidArgument("dimension must be >= 1");
  return Status::OK();
}

StatusOr<Rect> ParseRect(FieldCursor& cursor, size_t dim) {
  std::vector<Interval> sides;
  sides.reserve(dim);
  for (size_t i = 0; i < dim; ++i) {
    double lo = 0.0, hi = 0.0;
    UPDB_RETURN_IF_ERROR(cursor.NextDouble(&lo));
    UPDB_RETURN_IF_ERROR(cursor.NextDouble(&hi));
    if (lo > hi) return Status::InvalidArgument("interval with lo > hi");
    sides.emplace_back(lo, hi);
  }
  return Rect(std::move(sides));
}

/// Mixtures may nest; bound the recursion so a hostile line cannot blow
/// the stack.
constexpr int kMaxMixtureDepth = 16;

/// Line-format tag of a PDF type; nullptr when it has no line format.
const char* PdfTag(const Pdf& pdf) {
  if (dynamic_cast<const UniformPdf*>(&pdf) != nullptr) return "uniform";
  if (dynamic_cast<const TruncatedGaussianPdf*>(&pdf) != nullptr) {
    return "gaussian";
  }
  if (dynamic_cast<const DiscreteSamplePdf*>(&pdf) != nullptr) {
    return "discrete";
  }
  if (dynamic_cast<const MixturePdf*>(&pdf) != nullptr) return "mixture";
  return nullptr;
}

void AppendRect(const Rect& r, std::string& out) {
  for (size_t i = 0; i < r.dim(); ++i) {
    out += ',';
    AppendDouble(out, r.side(i).lo());
    out += ',';
    AppendDouble(out, r.side(i).hi());
  }
}

/// Appends the type-specific payload (the fields after the tag). Shared
/// between top-level lines and mixture components, so mixtures nest —
/// bounded by the same depth limit the parser enforces, so everything
/// SaveDatabase accepts is guaranteed loadable.
Status AppendPayload(const Pdf& pdf, std::string& out, int depth) {
  if (const auto* u = dynamic_cast<const UniformPdf*>(&pdf)) {
    AppendRect(u->bounds(), out);
    return Status::OK();
  }
  if (const auto* g = dynamic_cast<const TruncatedGaussianPdf*>(&pdf)) {
    AppendRect(g->bounds(), out);
    // Recovering mean/sigma via Mass() is not possible; serialize the
    // moments we can reconstruct the object from. TruncatedGaussianPdf
    // exposes them for this purpose.
    for (double m : g->mean()) {
      out += ',';
      AppendDouble(out, m);
    }
    for (double s : g->sigma()) {
      out += ',';
      AppendDouble(out, s);
    }
    return Status::OK();
  }
  if (const auto* d = dynamic_cast<const DiscreteSamplePdf*>(&pdf)) {
    const size_t dim = d->bounds().dim();
    out += ',';
    AppendDouble(out, static_cast<double>(d->samples().size()));
    for (size_t s = 0; s < d->samples().size(); ++s) {
      out += ',';
      AppendDouble(out, d->weights()[s]);
      for (size_t i = 0; i < dim; ++i) {
        out += ',';
        AppendDouble(out, d->samples()[s][i]);
      }
    }
    return Status::OK();
  }
  if (const auto* m = dynamic_cast<const MixturePdf*>(&pdf)) {
    if (depth >= kMaxMixtureDepth) {
      return Status::Unimplemented("mixture nesting too deep for the line "
                                   "format");
    }
    out += ',';
    AppendDouble(out, static_cast<double>(m->num_components()));
    for (size_t c = 0; c < m->num_components(); ++c) {
      out += ',';
      AppendDouble(out, m->weights()[c]);
      const Pdf& comp = *m->components()[c];
      const char* tag = PdfTag(comp);
      if (tag == nullptr) {
        return Status::Unimplemented(
            "mixture component type has no line format");
      }
      out += ',';
      out += tag;
      UPDB_RETURN_IF_ERROR(AppendPayload(comp, out, depth + 1));
    }
    return Status::OK();
  }
  return Status::Unimplemented("PDF type has no line format");
}

/// Parses the payload of one `type`-tagged PDF (top-level line or mixture
/// component) of dimensionality `dim`.
StatusOr<std::unique_ptr<Pdf>> ParsePayload(FieldCursor& cursor, size_t dim,
                                            const std::string& type,
                                            int depth) {
  if (type == "uniform") {
    StatusOr<Rect> rect = ParseRect(cursor, dim);
    if (!rect.ok()) return rect.status();
    return std::unique_ptr<Pdf>(
        std::make_unique<UniformPdf>(std::move(rect).value()));
  }
  if (type == "gaussian") {
    StatusOr<Rect> rect = ParseRect(cursor, dim);
    if (!rect.ok()) return rect.status();
    std::vector<double> mean(dim), sigma(dim);
    for (double& m : mean) UPDB_RETURN_IF_ERROR(cursor.NextDouble(&m));
    for (double& s : sigma) {
      UPDB_RETURN_IF_ERROR(cursor.NextDouble(&s));
      if (s < 0.0) return Status::InvalidArgument("negative sigma");
    }
    return std::unique_ptr<Pdf>(std::make_unique<TruncatedGaussianPdf>(
        std::move(rect).value(), std::move(mean), std::move(sigma)));
  }
  if (type == "discrete") {
    size_t n = 0;
    UPDB_RETURN_IF_ERROR(cursor.NextSize(&n));
    if (n == 0) {
      return Status::InvalidArgument("discrete object without samples");
    }
    // Each sample needs dim+1 fields; a hostile count must fail here, not
    // in an attacker-sized reserve (division avoids n*(dim+1) overflow).
    if (n > cursor.remaining() / (dim + 1)) {
      return Status::InvalidArgument("discrete field count mismatch");
    }
    std::vector<Point> samples;
    std::vector<double> weights;
    samples.reserve(n);
    weights.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      double w = 0.0;
      UPDB_RETURN_IF_ERROR(cursor.NextDouble(&w));
      if (w <= 0.0) return Status::InvalidArgument("non-positive weight");
      weights.push_back(w);
      Point p(dim);
      for (size_t i = 0; i < dim; ++i) {
        UPDB_RETURN_IF_ERROR(cursor.NextDouble(&p[i]));
      }
      samples.push_back(std::move(p));
    }
    return std::unique_ptr<Pdf>(std::make_unique<DiscreteSamplePdf>(
        std::move(samples), std::move(weights)));
  }
  if (type == "mixture") {
    if (depth >= kMaxMixtureDepth) {
      return Status::InvalidArgument("mixture nesting too deep");
    }
    size_t n = 0;
    UPDB_RETURN_IF_ERROR(cursor.NextSize(&n));
    if (n == 0) {
      return Status::InvalidArgument("mixture without components");
    }
    // Each component needs at least a weight and a type tag.
    if (n > cursor.remaining() / 2) {
      return Status::InvalidArgument("mixture component count mismatch");
    }
    std::vector<std::unique_ptr<Pdf>> components;
    std::vector<double> weights;
    components.reserve(n);
    weights.reserve(n);
    for (size_t c = 0; c < n; ++c) {
      double w = 0.0;
      UPDB_RETURN_IF_ERROR(cursor.NextDouble(&w));
      if (w <= 0.0) return Status::InvalidArgument("non-positive weight");
      weights.push_back(w);
      std::string comp_type;
      UPDB_RETURN_IF_ERROR(cursor.NextString(&comp_type));
      StatusOr<std::unique_ptr<Pdf>> comp =
          ParsePayload(cursor, dim, comp_type, depth + 1);
      if (!comp.ok()) return comp.status();
      components.push_back(std::move(comp).value());
    }
    return std::unique_ptr<Pdf>(std::make_unique<MixturePdf>(
        std::move(components), std::move(weights)));
  }
  return Status::InvalidArgument("unknown object type '" + type + "'");
}

}  // namespace

StatusOr<std::string> SerializeObject(const UncertainObject& object) {
  const Pdf& pdf = object.pdf();
  const char* tag = PdfTag(pdf);
  if (tag == nullptr) {
    return Status::Unimplemented("PDF type has no line format");
  }
  std::string out = tag;
  out += ',';
  AppendDouble(out, object.existence());
  out += ',';
  AppendDouble(out, static_cast<double>(object.dim()));
  UPDB_RETURN_IF_ERROR(AppendPayload(pdf, out, /*depth=*/0));
  return out;
}

StatusOr<ParsedObject> ParseObject(const std::string& line) {
  std::vector<std::string> fields = SplitFields(line);
  if (fields.empty() || fields[0].empty()) {
    return Status::InvalidArgument("empty line");
  }
  const std::string type = fields[0];
  FieldCursor cursor(std::move(fields));

  double existence = 1.0;
  size_t dim = 0;
  UPDB_RETURN_IF_ERROR(cursor.NextDouble(&existence));
  UPDB_RETURN_IF_ERROR(cursor.NextSize(&dim));
  UPDB_RETURN_IF_ERROR(ValidateHeader(existence, dim));

  StatusOr<std::unique_ptr<Pdf>> pdf =
      ParsePayload(cursor, dim, type, /*depth=*/0);
  if (!pdf.ok()) return pdf.status();
  if (!cursor.exhausted()) {
    return Status::InvalidArgument("trailing fields on " + type + " object");
  }
  ParsedObject out;
  out.existence = existence;
  out.pdf = std::shared_ptr<const Pdf>(std::move(pdf).value());
  return out;
}

Status SaveDatabase(const UncertainDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << "# updb dataset v1, " << db.size() << " objects\n";
  for (const UncertainObject& o : db.objects()) {
    StatusOr<std::string> line = SerializeObject(o);
    if (!line.ok()) return line.status();
    out << *line << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<UncertainDatabase> LoadDatabase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  UncertainDatabase db;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    StatusOr<ParsedObject> parsed = ParseObject(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": " +
          parsed.status().message());
    }
    if (!db.empty() && parsed->pdf->bounds().dim() != db.dim()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": dimension mismatch");
    }
    db.Add(parsed->pdf, parsed->existence);
  }
  return db;
}

}  // namespace io
}  // namespace updb
