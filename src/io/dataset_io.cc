#include "io/dataset_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace updb {
namespace io {

namespace {

/// Appends a double with full round-trip precision.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Splits a CSV line into fields.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

/// Cursor over parsed fields with typed, Status-producing accessors.
class FieldCursor {
 public:
  explicit FieldCursor(std::vector<std::string> fields)
      : fields_(std::move(fields)) {}

  Status NextDouble(double* out) {
    if (pos_ >= fields_.size()) {
      return Status::InvalidArgument("unexpected end of line");
    }
    errno = 0;
    char* end = nullptr;
    const std::string& f = fields_[pos_];
    const double v = std::strtod(f.c_str(), &end);
    if (end == f.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("not a number: '" + f + "'");
    }
    ++pos_;
    *out = v;
    return Status::OK();
  }

  Status NextSize(size_t* out) {
    double v = 0.0;
    UPDB_RETURN_IF_ERROR(NextDouble(&v));
    if (v < 0 || v != static_cast<double>(static_cast<size_t>(v))) {
      return Status::InvalidArgument("not a non-negative integer");
    }
    *out = static_cast<size_t>(v);
    return Status::OK();
  }

  bool exhausted() const { return pos_ >= fields_.size(); }
  size_t remaining() const { return fields_.size() - pos_; }

 private:
  std::vector<std::string> fields_;
  size_t pos_ = 1;  // field 0 is the type tag
};

Status ValidateHeader(double existence, size_t dim) {
  if (existence <= 0.0 || existence > 1.0) {
    return Status::InvalidArgument("existence must be in (0, 1]");
  }
  if (dim == 0) return Status::InvalidArgument("dimension must be >= 1");
  return Status::OK();
}

StatusOr<Rect> ParseRect(FieldCursor& cursor, size_t dim) {
  std::vector<Interval> sides;
  sides.reserve(dim);
  for (size_t i = 0; i < dim; ++i) {
    double lo = 0.0, hi = 0.0;
    UPDB_RETURN_IF_ERROR(cursor.NextDouble(&lo));
    UPDB_RETURN_IF_ERROR(cursor.NextDouble(&hi));
    if (lo > hi) return Status::InvalidArgument("interval with lo > hi");
    sides.emplace_back(lo, hi);
  }
  return Rect(std::move(sides));
}

}  // namespace

StatusOr<std::string> SerializeObject(const UncertainObject& object) {
  std::string out;
  const Pdf& pdf = object.pdf();
  const size_t dim = object.dim();
  auto header = [&out, &object, dim](const char* tag) {
    out += tag;
    out += ',';
    AppendDouble(out, object.existence());
    out += ',';
    AppendDouble(out, static_cast<double>(dim));
  };
  auto append_rect = [&out](const Rect& r) {
    for (size_t i = 0; i < r.dim(); ++i) {
      out += ',';
      AppendDouble(out, r.side(i).lo());
      out += ',';
      AppendDouble(out, r.side(i).hi());
    }
  };

  if (dynamic_cast<const UniformPdf*>(&pdf) != nullptr) {
    header("uniform");
    append_rect(pdf.bounds());
    return out;
  }
  if (const auto* g = dynamic_cast<const TruncatedGaussianPdf*>(&pdf)) {
    header("gaussian");
    append_rect(g->bounds());
    // Recover mean/sigma via the public API is not possible; serialize the
    // moments we can reconstruct the object from. TruncatedGaussianPdf
    // exposes them for this purpose.
    for (double m : g->mean()) {
      out += ',';
      AppendDouble(out, m);
    }
    for (double s : g->sigma()) {
      out += ',';
      AppendDouble(out, s);
    }
    return out;
  }
  if (const auto* d = dynamic_cast<const DiscreteSamplePdf*>(&pdf)) {
    header("discrete");
    out += ',';
    AppendDouble(out, static_cast<double>(d->samples().size()));
    for (size_t s = 0; s < d->samples().size(); ++s) {
      out += ',';
      AppendDouble(out, d->weights()[s]);
      for (size_t i = 0; i < dim; ++i) {
        out += ',';
        AppendDouble(out, d->samples()[s][i]);
      }
    }
    return out;
  }
  return Status::Unimplemented("PDF type has no line format");
}

StatusOr<ParsedObject> ParseObject(const std::string& line) {
  std::vector<std::string> fields = SplitFields(line);
  if (fields.empty() || fields[0].empty()) {
    return Status::InvalidArgument("empty line");
  }
  const std::string type = fields[0];
  FieldCursor cursor(std::move(fields));

  double existence = 1.0;
  size_t dim = 0;
  UPDB_RETURN_IF_ERROR(cursor.NextDouble(&existence));
  UPDB_RETURN_IF_ERROR(cursor.NextSize(&dim));
  UPDB_RETURN_IF_ERROR(ValidateHeader(existence, dim));

  ParsedObject out;
  out.existence = existence;
  if (type == "uniform") {
    StatusOr<Rect> rect = ParseRect(cursor, dim);
    if (!rect.ok()) return rect.status();
    if (!cursor.exhausted()) {
      return Status::InvalidArgument("trailing fields on uniform object");
    }
    out.pdf = std::make_shared<UniformPdf>(std::move(rect).value());
    return out;
  }
  if (type == "gaussian") {
    StatusOr<Rect> rect = ParseRect(cursor, dim);
    if (!rect.ok()) return rect.status();
    std::vector<double> mean(dim), sigma(dim);
    for (double& m : mean) UPDB_RETURN_IF_ERROR(cursor.NextDouble(&m));
    for (double& s : sigma) {
      UPDB_RETURN_IF_ERROR(cursor.NextDouble(&s));
      if (s < 0.0) return Status::InvalidArgument("negative sigma");
    }
    if (!cursor.exhausted()) {
      return Status::InvalidArgument("trailing fields on gaussian object");
    }
    out.pdf = std::make_shared<TruncatedGaussianPdf>(
        std::move(rect).value(), std::move(mean), std::move(sigma));
    return out;
  }
  if (type == "discrete") {
    size_t n = 0;
    UPDB_RETURN_IF_ERROR(cursor.NextSize(&n));
    if (n == 0) return Status::InvalidArgument("discrete object without samples");
    if (cursor.remaining() != n * (dim + 1)) {
      return Status::InvalidArgument("discrete field count mismatch");
    }
    std::vector<Point> samples;
    std::vector<double> weights;
    samples.reserve(n);
    weights.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      double w = 0.0;
      UPDB_RETURN_IF_ERROR(cursor.NextDouble(&w));
      if (w <= 0.0) return Status::InvalidArgument("non-positive weight");
      weights.push_back(w);
      Point p(dim);
      for (size_t i = 0; i < dim; ++i) {
        UPDB_RETURN_IF_ERROR(cursor.NextDouble(&p[i]));
      }
      samples.push_back(std::move(p));
    }
    out.pdf = std::make_shared<DiscreteSamplePdf>(std::move(samples),
                                                  std::move(weights));
    return out;
  }
  return Status::InvalidArgument("unknown object type '" + type + "'");
}

Status SaveDatabase(const UncertainDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << "# updb dataset v1, " << db.size() << " objects\n";
  for (const UncertainObject& o : db.objects()) {
    StatusOr<std::string> line = SerializeObject(o);
    if (!line.ok()) return line.status();
    out << *line << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<UncertainDatabase> LoadDatabase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  UncertainDatabase db;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    StatusOr<ParsedObject> parsed = ParseObject(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": " +
          parsed.status().message());
    }
    if (!db.empty() && parsed->pdf->bounds().dim() != db.dim()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": dimension mismatch");
    }
    db.Add(parsed->pdf, parsed->existence);
  }
  return db;
}

}  // namespace io
}  // namespace updb
