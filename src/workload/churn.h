// Copyright 2026 The updb Authors.
// Mixed read/write workload support: seed-deterministic mutation batches
// against a versioned object store. The query side of a mixed trace comes
// from service::MakeTrace (the layering puts request shapes above this
// file); this half generates the write side — insert/update/remove
// streams whose targets are drawn deterministically from a live-id list —
// so churn experiments (updb_cli mutate / serve --churn,
// bench_store_churn) replay exactly from their logged seed.

#ifndef UPDB_WORKLOAD_CHURN_H_
#define UPDB_WORKLOAD_CHURN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "store/object_store.h"
#include "workload/generators.h"

namespace updb {
namespace workload {

/// Shape of a generated mutation batch. Kind weights need not sum to 1; a
/// weight of 0 removes the kind from the mix. When the live set is empty,
/// update/remove weights are ignored (insert-only).
struct ChurnConfig {
  size_t mutations_per_batch = 32;
  double insert_weight = 0.4;
  double update_weight = 0.4;
  double remove_weight = 0.2;
  /// Relative extent of inserted/updated uncertainty regions (drawn
  /// uniform in [0, max_extent] per dimension, like the synthetic
  /// generator).
  double max_extent = 0.01;
  ObjectModel model = ObjectModel::kUniform;
  /// Samples per object for ObjectModel::kDiscrete.
  size_t samples_per_object = 64;
  /// Fraction of inserted/updated objects carrying existential
  /// uncertainty; their existence is uniform in [0.5, 1).
  double uncertain_existence_fraction = 0.0;
  /// Shard-aware targeting (multi-tenant / partitioned churn): when
  /// num_shards > 0, update/remove targets are drawn only from live ids
  /// routing to `target_shard` (stable id % num_shards — the store's
  /// routing). Inserts are unaffected: the store assigns stable ids, so
  /// an insert's shard is not the generator's to choose. 0 disables the
  /// filter.
  size_t num_shards = 0;
  size_t target_shard = 0;
};

/// Generates one mutation batch. Deterministic in (live_ids, dim, config,
/// rng state): the same inputs always yield the same batch, which is what
/// makes churn runs replayable from a seed. `live_ids` is the sorted
/// stable-id list mutations may target (VersionedObjectStore::LiveIds());
/// update/remove targets are drawn from it without replacement within the
/// batch, so a batch never removes the same id twice or updates a
/// just-removed id. `dim` is the dimensionality of generated PDFs (must
/// match the store's once fixed). Inserted objects leave Mutation::id
/// unset — the store assigns stable ids at Apply time.
std::vector<store::Mutation> MakeMutationBatch(
    const std::vector<ObjectId>& live_ids, size_t dim,
    const ChurnConfig& config, Rng& rng);

/// Applies a batch in order against `object_store`, without publishing.
/// Returns the first non-OK status (remaining mutations are still
/// applied); callers that generated the batch with MakeMutationBatch
/// against the store's current LiveIds() never see a failure. On a
/// durable store configured with FsyncPolicy::kEveryBatch, the WAL is
/// synced once after the batch (store::VersionedObjectStore::SyncWal).
Status ApplyMutationBatch(store::VersionedObjectStore& object_store,
                          const std::vector<store::Mutation>& batch);

/// One step of a pre-generated churn schedule: either a single mutation
/// or a publish boundary.
struct ChurnStep {
  /// True for a Publish() boundary; `mutation` is unused then.
  bool publish = false;
  store::Mutation mutation;
};

/// Pre-generates a flat, fully deterministic schedule of `batches`
/// mutation batches, each followed by one publish step. Unlike the
/// incremental MakeMutationBatch loop, the whole history is fixed up
/// front (a scratch store predicts the stable ids inserts will receive),
/// so two independent runs — e.g. a crash-recovery victim and its
/// in-memory reference oracle — replay the *identical* history, and any
/// step index is a reproducible kill point for fault-injection tests.
std::vector<ChurnStep> MakeChurnSchedule(size_t batches, size_t dim,
                                         const ChurnConfig& config, Rng& rng);

/// Applies the first `steps` entries of `schedule` (clamped to its
/// length) against `object_store`: mutation steps via Apply, publish
/// steps via Publish. Under FsyncPolicy::kEveryBatch the WAL is synced at
/// each batch boundary (before every publish step and after a trailing
/// partial batch). Returns the first non-OK status; remaining steps are
/// still applied.
Status ApplyChurnPrefix(store::VersionedObjectStore& object_store,
                        const std::vector<ChurnStep>& schedule, size_t steps);

}  // namespace workload
}  // namespace updb

#endif  // UPDB_WORKLOAD_CHURN_H_
