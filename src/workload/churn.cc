#include "workload/churn.h"

#include <algorithm>

namespace updb {
namespace workload {

std::vector<store::Mutation> MakeMutationBatch(
    const std::vector<ObjectId>& live_ids, size_t dim,
    const ChurnConfig& config, Rng& rng) {
  UPDB_CHECK(dim >= 1);
  UPDB_CHECK(config.insert_weight >= 0.0 && config.update_weight >= 0.0 &&
             config.remove_weight >= 0.0);
  UPDB_CHECK(config.insert_weight + config.update_weight +
                 config.remove_weight >
             0.0);

  std::vector<ObjectId> pool;  // ids still targetable
  if (config.num_shards > 0) {
    UPDB_CHECK(config.target_shard < config.num_shards);
    for (ObjectId id : live_ids) {
      if (id % config.num_shards == config.target_shard) pool.push_back(id);
    }
  } else {
    pool = live_ids;
  }
  std::vector<store::Mutation> batch;
  batch.reserve(config.mutations_per_batch);
  for (size_t n = 0; n < config.mutations_per_batch; ++n) {
    const double targeted_weight =
        pool.empty() ? 0.0 : config.update_weight + config.remove_weight;
    const double total = config.insert_weight + targeted_weight;
    if (total <= 0.0) break;  // pool drained and inserts disabled
    const double pick = rng.NextDouble() * total;

    store::Mutation m;
    if (pick < config.insert_weight) {
      m.kind = store::Mutation::Kind::kInsert;
    } else if (pick < config.insert_weight + config.update_weight) {
      m.kind = store::Mutation::Kind::kUpdate;
    } else {
      m.kind = store::Mutation::Kind::kRemove;
    }
    if (m.kind != store::Mutation::Kind::kInsert) {
      const size_t at = static_cast<size_t>(rng.NextBounded(pool.size()));
      m.id = pool[at];
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(at));
    }
    if (m.kind != store::Mutation::Kind::kRemove) {
      Point center(dim);
      for (size_t i = 0; i < dim; ++i) center[i] = rng.NextDouble();
      const double extent = rng.Uniform(0.0, config.max_extent);
      m.pdf = MakeQueryObject(center, extent, config.model,
                              config.samples_per_object, rng);
      m.existence = 1.0;
      if (config.uncertain_existence_fraction > 0.0 &&
          rng.Bernoulli(config.uncertain_existence_fraction)) {
        m.existence = rng.Uniform(0.5, 1.0);
      }
    }
    batch.push_back(std::move(m));
  }
  return batch;
}

Status ApplyMutationBatch(store::VersionedObjectStore& object_store,
                          const std::vector<store::Mutation>& batch) {
  Status first_error;
  for (const store::Mutation& m : batch) {
    const Status status = object_store.Apply(m).status();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

}  // namespace workload
}  // namespace updb
