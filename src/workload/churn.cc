#include "workload/churn.h"

#include <algorithm>

namespace updb {
namespace workload {

std::vector<store::Mutation> MakeMutationBatch(
    const std::vector<ObjectId>& live_ids, size_t dim,
    const ChurnConfig& config, Rng& rng) {
  UPDB_CHECK(dim >= 1);
  UPDB_CHECK(config.insert_weight >= 0.0 && config.update_weight >= 0.0 &&
             config.remove_weight >= 0.0);
  UPDB_CHECK(config.insert_weight + config.update_weight +
                 config.remove_weight >
             0.0);

  std::vector<ObjectId> pool;  // ids still targetable
  if (config.num_shards > 0) {
    UPDB_CHECK(config.target_shard < config.num_shards);
    for (ObjectId id : live_ids) {
      if (id % config.num_shards == config.target_shard) pool.push_back(id);
    }
  } else {
    pool = live_ids;
  }
  std::vector<store::Mutation> batch;
  batch.reserve(config.mutations_per_batch);
  for (size_t n = 0; n < config.mutations_per_batch; ++n) {
    const double targeted_weight =
        pool.empty() ? 0.0 : config.update_weight + config.remove_weight;
    const double total = config.insert_weight + targeted_weight;
    if (total <= 0.0) break;  // pool drained and inserts disabled
    const double pick = rng.NextDouble() * total;

    store::Mutation m;
    if (pick < config.insert_weight) {
      m.kind = store::Mutation::Kind::kInsert;
    } else if (pick < config.insert_weight + config.update_weight) {
      m.kind = store::Mutation::Kind::kUpdate;
    } else {
      m.kind = store::Mutation::Kind::kRemove;
    }
    if (m.kind != store::Mutation::Kind::kInsert) {
      const size_t at = static_cast<size_t>(rng.NextBounded(pool.size()));
      m.id = pool[at];
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(at));
    }
    if (m.kind != store::Mutation::Kind::kRemove) {
      Point center(dim);
      for (size_t i = 0; i < dim; ++i) center[i] = rng.NextDouble();
      const double extent = rng.Uniform(0.0, config.max_extent);
      m.pdf = MakeQueryObject(center, extent, config.model,
                              config.samples_per_object, rng);
      m.existence = 1.0;
      if (config.uncertain_existence_fraction > 0.0 &&
          rng.Bernoulli(config.uncertain_existence_fraction)) {
        m.existence = rng.Uniform(0.5, 1.0);
      }
    }
    batch.push_back(std::move(m));
  }
  return batch;
}

namespace {

/// True when `object_store` wants a WAL sync per applied batch.
bool SyncsEveryBatch(const store::VersionedObjectStore& object_store) {
  return object_store.durable() &&
         object_store.options().durability.fsync ==
             store::FsyncPolicy::kEveryBatch;
}

}  // namespace

Status ApplyMutationBatch(store::VersionedObjectStore& object_store,
                          const std::vector<store::Mutation>& batch) {
  Status first_error;
  for (const store::Mutation& m : batch) {
    const Status status = object_store.Apply(m).status();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  if (SyncsEveryBatch(object_store)) {
    const Status synced = object_store.SyncWal();
    if (!synced.ok() && first_error.ok()) first_error = synced;
  }
  return first_error;
}

std::vector<ChurnStep> MakeChurnSchedule(size_t batches, size_t dim,
                                         const ChurnConfig& config,
                                         Rng& rng) {
  // The scratch store only tracks the live-id set (so update/remove
  // targets and predicted insert ids are exact); it never publishes.
  store::VersionedObjectStore scratch;
  std::vector<ChurnStep> schedule;
  schedule.reserve(batches * (config.mutations_per_batch + 1));
  for (size_t b = 0; b < batches; ++b) {
    const std::vector<store::Mutation> batch =
        MakeMutationBatch(scratch.LiveIds(), dim, config, rng);
    for (const store::Mutation& m : batch) {
      UPDB_CHECK(scratch.Apply(m).ok());
      ChurnStep step;
      step.mutation = m;
      schedule.push_back(std::move(step));
    }
    ChurnStep boundary;
    boundary.publish = true;
    schedule.push_back(std::move(boundary));
  }
  return schedule;
}

Status ApplyChurnPrefix(store::VersionedObjectStore& object_store,
                        const std::vector<ChurnStep>& schedule,
                        size_t steps) {
  const bool sync_batches = SyncsEveryBatch(object_store);
  Status first_error;
  const auto note = [&first_error](const Status& status) {
    if (!status.ok() && first_error.ok()) first_error = status;
  };
  bool batch_open = false;  // mutations applied since the last boundary
  const size_t count = std::min(steps, schedule.size());
  for (size_t i = 0; i < count; ++i) {
    const ChurnStep& step = schedule[i];
    if (step.publish) {
      if (sync_batches && batch_open) note(object_store.SyncWal());
      batch_open = false;
      object_store.Publish();
    } else {
      note(object_store.Apply(step.mutation).status());
      batch_open = true;
    }
  }
  if (sync_batches && batch_open) note(object_store.SyncWal());
  return first_error;
}

}  // namespace workload
}  // namespace updb
