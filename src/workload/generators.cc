#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace updb {
namespace workload {

namespace {

/// Builds the PDF for one object given its uncertainty rectangle.
std::shared_ptr<const Pdf> MakeObjectPdf(const Rect& region, ObjectModel model,
                                         size_t samples_per_object, Rng& rng) {
  switch (model) {
    case ObjectModel::kUniform:
      return std::make_shared<UniformPdf>(region);
    case ObjectModel::kGaussian: {
      std::vector<double> mean(region.dim());
      std::vector<double> sigma(region.dim());
      for (size_t i = 0; i < region.dim(); ++i) {
        mean[i] = region.side(i).mid();
        // 2-sigma truncation: most of the Gaussian mass lies inside the
        // region, as after the tail-truncation preprocessing the paper
        // describes in Section I-A.
        sigma[i] = region.side(i).length() / 4.0;
      }
      // A fully degenerate region degrades to a point mass, which the
      // Gaussian model handles via sigma = 0.
      return std::make_shared<TruncatedGaussianPdf>(region, std::move(mean),
                                                    std::move(sigma));
    }
    case ObjectModel::kDiscrete: {
      UPDB_CHECK(samples_per_object >= 1);
      UniformPdf base(region);
      std::vector<Point> samples;
      samples.reserve(samples_per_object);
      for (size_t s = 0; s < samples_per_object; ++s) {
        samples.push_back(base.Sample(rng));
      }
      return std::make_shared<DiscreteSamplePdf>(std::move(samples));
    }
  }
  UPDB_CHECK(false);
  return nullptr;
}

/// Uncertainty rectangle with the given center and per-dimension extents,
/// clipped into the unit cube so datasets stay inside the data space.
Rect MakeRegion(const Point& center, const std::vector<double>& extents) {
  std::vector<Interval> sides;
  sides.reserve(center.dim());
  for (size_t i = 0; i < center.dim(); ++i) {
    const double lo = std::clamp(center[i] - 0.5 * extents[i], 0.0, 1.0);
    const double hi = std::clamp(center[i] + 0.5 * extents[i], 0.0, 1.0);
    sides.emplace_back(lo, hi);
  }
  return Rect(std::move(sides));
}

}  // namespace

UncertainDatabase MakeSyntheticDatabase(const SyntheticConfig& config) {
  UPDB_CHECK(config.dim >= 1);
  UPDB_CHECK(config.max_extent >= 0.0);
  Rng rng(config.seed);
  UncertainDatabase db;
  for (size_t n = 0; n < config.num_objects; ++n) {
    Point center(config.dim);
    std::vector<double> extents(config.dim);
    for (size_t i = 0; i < config.dim; ++i) {
      center[i] = rng.NextDouble();
      extents[i] = rng.Uniform(0.0, config.max_extent);
    }
    db.Add(MakeObjectPdf(MakeRegion(center, extents), config.model,
                         config.samples_per_object, rng));
  }
  return db;
}

UncertainDatabase MakeIipLikeDataset(const IipConfig& config) {
  UPDB_CHECK(config.num_clusters >= 1);
  Rng rng(config.seed);

  // Cluster seeds: drift corridors across the (normalized) North Atlantic
  // box. A slight bias toward the Labrador current edge (x near 0.3)
  // mimics the real sighting concentration without needing the raw data.
  std::vector<Point> seeds;
  seeds.reserve(config.num_clusters);
  for (size_t c = 0; c < config.num_clusters; ++c) {
    const double x = std::clamp(0.3 + 0.25 * rng.NextGaussian(), 0.0, 1.0);
    const double y = rng.NextDouble();
    seeds.push_back(Point{x, y});
  }

  // Staleness (days since last sighting) -> extent. Exponentially
  // distributed staleness, normalized so the maximum extent over the
  // dataset equals config.max_extent, as in Section VII.
  std::vector<double> staleness(config.num_objects);
  double max_staleness = 0.0;
  for (double& s : staleness) {
    s = rng.Exponential(1.0 / config.mean_staleness_days);
    max_staleness = std::max(max_staleness, s);
  }
  UPDB_CHECK(max_staleness > 0.0);

  UncertainDatabase db;
  for (size_t n = 0; n < config.num_objects; ++n) {
    const Point& seed = seeds[rng.NextBounded(config.num_clusters)];
    Point center{
        std::clamp(seed[0] + config.cluster_spread * rng.NextGaussian(), 0.0,
                   1.0),
        std::clamp(seed[1] + config.cluster_spread * rng.NextGaussian(), 0.0,
                   1.0)};
    const double extent =
        config.max_extent * (staleness[n] / max_staleness);
    std::vector<double> extents{extent, extent};
    db.Add(MakeObjectPdf(MakeRegion(center, extents), config.model,
                         config.samples_per_object, rng));
  }
  return db;
}

std::shared_ptr<const Pdf> MakeQueryObject(const Point& center, double extent,
                                           ObjectModel model,
                                           size_t samples_per_object,
                                           Rng& rng) {
  std::vector<double> extents(center.dim(), extent);
  return MakeObjectPdf(MakeRegion(center, extents), model, samples_per_object,
                       rng);
}

ObjectId PickByMinDistRank(const RTree& index, const Rect& r, size_t rank,
                           const LpNorm& norm) {
  UPDB_CHECK(rank >= 1 && rank <= index.size());
  const std::vector<RTreeEntry> nearest = index.KnnByMinDist(r, rank, norm);
  UPDB_CHECK(nearest.size() == rank);
  return nearest.back().id;
}

}  // namespace workload
}  // namespace updb
