// Copyright 2026 The updb Authors.
// Dataset generators reproducing the experimental setups of Section VII.
//
//  * Synthetic: N objects in [0,1]^d, uncertainty regions are rectangles
//    whose relative extent per dimension is uniform in [0, max_extent]
//    (paper default: N = 10,000, d = 2, max_extent = 0.004).
//  * IIP-like: a simulation of the International Ice Patrol Iceberg
//    Sightings 2009 dataset (6,216 objects). The raw sightings are not
//    redistributable/offline here, so we synthesize the properties the
//    experiments rely on: clustered 2-d positions (icebergs drift along
//    currents in the North Atlantic box), Gaussian per-object PDFs, and
//    extents driven by a "days since last sighting" staleness model,
//    normalized so the maximum extent is 0.0004 of the data space. See
//    DESIGN.md §4 for the substitution rationale.

#ifndef UPDB_WORKLOAD_GENERATORS_H_
#define UPDB_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "common/random.h"
#include "index/rtree.h"
#include "uncertain/database.h"

namespace updb {
namespace workload {

/// Which PDF model the generated objects carry.
enum class ObjectModel {
  /// Uniform density over the uncertainty rectangle.
  kUniform,
  /// Axis-independent Gaussian truncated to the rectangle.
  kGaussian,
  /// Discrete sample clouds (the model used for the fair comparison with
  /// the Monte-Carlo partner; Section VII uses 1000 samples/object).
  kDiscrete,
};

/// Parameters of the synthetic dataset.
struct SyntheticConfig {
  size_t num_objects = 10000;
  size_t dim = 2;
  /// Maximum relative extent per dimension; actual extents are uniform in
  /// [0, max_extent].
  double max_extent = 0.004;
  ObjectModel model = ObjectModel::kUniform;
  /// Samples per object for ObjectModel::kDiscrete.
  size_t samples_per_object = 1000;
  uint64_t seed = 42;
};

/// Generates the synthetic database of Section VII.
UncertainDatabase MakeSyntheticDatabase(const SyntheticConfig& config);

/// Parameters of the simulated IIP iceberg dataset.
struct IipConfig {
  /// The 2009 dataset has 6,216 sightings.
  size_t num_objects = 6216;
  /// Maximum extent of an object in either dimension, relative to the data
  /// space (paper: 0.0004 after normalization).
  double max_extent = 0.0004;
  /// Iceberg positions cluster along drift corridors; this controls how
  /// many cluster seeds the simulation scatters.
  size_t num_clusters = 48;
  /// Spatial std-dev of positions around their cluster seed.
  double cluster_spread = 0.06;
  /// Mean of the exponential "days since last sighting" staleness driving
  /// the extent (larger staleness -> larger uncertainty region).
  double mean_staleness_days = 20.0;
  ObjectModel model = ObjectModel::kGaussian;
  size_t samples_per_object = 1000;
  uint64_t seed = 2009;
};

/// Generates the simulated IIP iceberg database.
UncertainDatabase MakeIipLikeDataset(const IipConfig& config);

/// Builds one uncertain reference/query object (not part of a database):
/// a rectangle of relative extent `extent` centered at `center`, carrying
/// the requested PDF model.
std::shared_ptr<const Pdf> MakeQueryObject(const Point& center, double extent,
                                           ObjectModel model,
                                           size_t samples_per_object,
                                           Rng& rng);

/// Returns the id of the object with the `rank`-th smallest MinDist to the
/// rect `r` (rank 1 = closest). The paper's default experiment object B is
/// rank 10. Requires rank <= number of indexed objects.
ObjectId PickByMinDistRank(const RTree& index, const Rect& r, size_t rank,
                           const LpNorm& norm = LpNorm::Euclidean());

}  // namespace workload
}  // namespace updb

#endif  // UPDB_WORKLOAD_GENERATORS_H_
