// Copyright 2026 The updb Authors.
// Minimal HTTP/1.1 responder for the introspection plane (ROADMAP: live
// introspection). One dedicated thread multiplexes a loopback listener and
// a bounded set of connections over poll(2): no worker pool, no TLS, no
// keep-alive — every request is answered with `Connection: close`. The
// server exists to serve /metrics-style scrapes and health probes, so the
// design goals are bounded memory (max_connections live sockets, each with
// a max_request_bytes read buffer), zero interaction with the query hot
// path, and a clean Stop() via a self-pipe wakeup.
//
// Security posture: the listener binds 127.0.0.1 only. The admin plane is
// diagnostics for the local operator, never an application edge.

#ifndef UPDB_NET_HTTP_H_
#define UPDB_NET_HTTP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace updb {
namespace net {

/// Parsed request line of an accepted HTTP request. Headers beyond the
/// request line are read (to find the end of the head) but not surfaced:
/// the admin endpoints key on method + target only.
struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string target;  // "/metrics", "/statusz?verbose=1", ...

  /// Target with any "?query" suffix removed.
  std::string Path() const {
    const size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
  }
};

/// Response produced by a handler. The server adds the status line,
/// Content-Type, Content-Length and Connection headers.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Standard reason phrase for the handful of status codes the admin plane
/// uses ("OK", "Not Found", ...); "Unknown" otherwise.
const char* HttpStatusReason(int status);

struct HttpServerOptions {
  /// TCP port to bind on 127.0.0.1. 0 picks an ephemeral port; read the
  /// bound port back via HttpServer::port() after Start().
  uint16_t port = 0;
  /// Live connections beyond this are accepted and immediately closed
  /// (counted in connections_rejected) so a misbehaving scraper cannot
  /// grow server memory.
  size_t max_connections = 32;
  /// Request heads larger than this draw 431 and a close.
  size_t max_request_bytes = 8 * 1024;
};

/// Single-threaded poll(2) HTTP server. Start() binds and spawns the
/// serving thread; the handler runs on that thread, so it must not block
/// on the query service. Stop() (and the destructor) joins the thread.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(HttpServerOptions options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:port, starts listening and spawns the serving thread.
  /// Fails with kUnavailable when the port cannot be bound.
  Status Start();

  /// Stops the serving thread and closes every socket. Idempotent.
  void Stop();

  /// The bound port (resolves option port 0), valid after Start().
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Lifetime totals, for the admin plane's own telemetry.
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void ServeLoop();
  void AcceptPending();
  /// Reads from one connection; returns false when it should be closed.
  bool ReadAndMaybeRespond(Connection& conn);
  void CloseAll();

  const HttpServerOptions options_;
  const Handler handler_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written by Stop
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::vector<Connection*> connections_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> served_{0};
};

/// Blocking loopback HTTP GET, for tests, benches and CI probes: connects
/// to 127.0.0.1:port, sends `GET target HTTP/1.1` and returns the parsed
/// response. Fails with kUnavailable on connect/IO errors and
/// kDeadlineExceeded-style kUnavailable on timeout.
StatusOr<HttpResponse> HttpGet(uint16_t port, const std::string& target,
                               int timeout_ms = 5000);

}  // namespace net
}  // namespace updb

#endif  // UPDB_NET_HTTP_H_
