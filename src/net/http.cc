#include "net/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace updb {
namespace net {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetCloexec(int fd) {
  const int flags = fcntl(fd, F_GETFD, 0);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Serializes a response head + body. HEAD gets the full head (including
/// the real Content-Length) with the body elided, per RFC 9110 §9.3.2.
std::string SerializeResponse(const HttpResponse& resp, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    HttpStatusReason(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += resp.body;
  return out;
}

HttpResponse PlainResponse(int status, const std::string& body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = body;
  return resp;
}

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

/// Per-connection read buffer plus the unwritten tail of a response. A
/// connection lives until its response is fully flushed or an error/cap
/// trips; there is no keep-alive, so at most one request per connection.
struct HttpServer::Connection {
  int fd = -1;
  std::string in;    // bytes read so far, until "\r\n\r\n"
  std::string out;   // serialized response, drained by POLLOUT
  size_t sent = 0;   // prefix of `out` already written
  bool responding = false;
};

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(options), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  SetCloexec(listen_fd_);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind 127.0.0.1:" +
                               std::to_string(options_.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen: " + err);
  }
  SetNonBlocking(listen_fd_);

  if (pipe(wake_fds_) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("pipe: ") + std::strerror(errno));
  }
  SetNonBlocking(wake_fds_[0]);
  SetCloexec(wake_fds_[0]);
  SetCloexec(wake_fds_[1]);

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Wake the poll loop; the write end stays valid until the thread joins.
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  CloseAll();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

void HttpServer::CloseAll() {
  for (Connection* conn : connections_) {
    close(conn->fd);
    delete conn;
  }
  connections_.clear();
}

void HttpServer::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: try again next poll
    if (connections_.size() >= options_.max_connections) {
      // Over the cap: shed load by closing immediately rather than
      // queueing unbounded sockets.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    SetCloexec(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto* conn = new Connection();
    conn->fd = fd;
    connections_.push_back(conn);
  }
}

bool HttpServer::ReadAndMaybeRespond(Connection& conn) {
  char buf[1024];
  for (;;) {
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      if (conn.in.size() > options_.max_request_bytes) {
        conn.out = SerializeResponse(
            PlainResponse(431, "request too large\n"), /*head_only=*/false);
        conn.responding = true;
        return true;
      }
      continue;
    }
    if (n == 0) return conn.responding;  // peer closed before a full head
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // hard read error
  }
  const size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) return true;  // keep reading

  // Parse the request line: METHOD SP TARGET SP VERSION.
  HttpRequest req;
  const size_t line_end = conn.in.find("\r\n");
  const std::string line = conn.in.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  HttpResponse resp;
  bool head_only = false;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = PlainResponse(400, "malformed request line\n");
  } else {
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    head_only = req.method == "HEAD";
    if (req.method != "GET" && req.method != "HEAD") {
      resp = PlainResponse(405, "only GET and HEAD are served\n");
    } else {
      resp = handler_(req);
      served_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  conn.out = SerializeResponse(resp, head_only);
  conn.responding = true;
  return true;
}

void HttpServer::ServeLoop() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const Connection* conn : connections_) {
      fds.push_back(
          {conn->fd, static_cast<short>(conn->responding ? POLLOUT : POLLIN),
           0});
    }
    const int ready = poll(fds.data(), fds.size(), /*timeout_ms=*/250);
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;

    // Connections accepted below were not part of this poll round and
    // have no pollfd entry — the walk must stop at the polled count.
    const size_t polled = connections_.size();
    if (fds[0].revents & POLLIN) AcceptPending();

    // Walk the polled connections against their pollfd (offset by the two
    // fixed fds); compact closed entries in place.
    size_t keep = 0;
    for (size_t i = 0; i < polled; ++i) {
      Connection* conn = connections_[i];
      const pollfd& pfd = fds[i + 2];
      bool alive = true;
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        alive = false;
      } else if (!conn->responding &&
                 (pfd.revents & (POLLIN | POLLHUP)) != 0) {
        alive = ReadAndMaybeRespond(*conn);
      }
      if (alive && conn->responding) {
        // Drain the response; short writes resume on the next POLLOUT.
        while (conn->sent < conn->out.size()) {
          const ssize_t n = write(conn->fd, conn->out.data() + conn->sent,
                                  conn->out.size() - conn->sent);
          if (n > 0) {
            conn->sent += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          alive = false;
          break;
        }
        if (conn->sent == conn->out.size()) alive = false;  // done: close
      }
      if (alive) {
        connections_[keep++] = conn;
      } else {
        close(conn->fd);
        delete conn;
      }
    }
    // Slide the freshly-accepted tail down over the compacted gap.
    for (size_t i = polled; i < connections_.size(); ++i) {
      connections_[keep++] = connections_[i];
    }
    connections_.resize(keep);
  }
}

StatusOr<HttpResponse> HttpGet(uint16_t port, const std::string& target,
                               int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Unavailable("connect 127.0.0.1:" + std::to_string(port) +
                               ": " + err);
  }

  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      close(fd);
      return Status::Unavailable("write failed");
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    close(fd);
    return Status::Unavailable(std::string("read: ") + std::strerror(errno));
  }
  close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Unavailable("malformed HTTP response");
  }
  HttpResponse resp;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::Unavailable("malformed status line");
  }
  resp.status = std::atoi(raw.c_str() + sp + 1);
  // Scan head lines for Content-Type (case-insensitive field name).
  size_t pos = raw.find("\r\n") + 2;
  while (pos < head_end) {
    const size_t eol = raw.find("\r\n", pos);
    const std::string line = raw.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      for (char& c : key) c = static_cast<char>(std::tolower(c));
      if (key == "content-type") {
        size_t v = colon + 1;
        while (v < line.size() && line[v] == ' ') ++v;
        resp.content_type = line.substr(v);
      }
    }
    pos = eol + 2;
  }
  resp.body = raw.substr(head_end + 4);
  return resp;
}

}  // namespace net
}  // namespace updb
