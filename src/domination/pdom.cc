#include "domination/pdom.h"

#include <algorithm>

namespace updb {

void ProbabilityBounds::Normalize() {
  lb = std::clamp(lb, 0.0, 1.0);
  ub = std::clamp(ub, 0.0, 1.0);
  if (lb > ub) {
    // Only floating noise can cause this; collapse to the midpoint.
    const double mid = 0.5 * (lb + ub);
    lb = ub = mid;
  }
}

ProbabilityBounds ComputePDomBounds(std::span<const Partition> a,
                                    std::span<const Partition> b,
                                    std::span<const Partition> r,
                                    DominationCriterion criterion,
                                    const LpNorm& norm) {
  double lb = 0.0;          // mass of triples where A' dominates B'
  double dominated = 0.0;   // mass of triples where B' dominates A'
  for (const Partition& rp : r) {
    for (const Partition& bp : b) {
      const double wrb = rp.mass * bp.mass;
      for (const Partition& ap : a) {
        if (Dominates(ap.region, bp.region, rp.region, criterion, norm)) {
          lb += wrb * ap.mass;
        } else if (Dominates(bp.region, ap.region, rp.region, criterion,
                             norm)) {
          dominated += wrb * ap.mass;
        }
      }
    }
  }
  ProbabilityBounds out{lb, 1.0 - dominated};
  out.Normalize();
  return out;
}

ProbabilityBounds PDomGivenPair(std::span<const Partition> a_parts,
                                const Rect& b, const Rect& r,
                                DominationCriterion criterion,
                                const LpNorm& norm) {
  double lb = 0.0;
  double dominated = 0.0;
  for (const Partition& ap : a_parts) {
    if (Dominates(ap.region, b, r, criterion, norm)) {
      lb += ap.mass;
    } else if (Dominates(b, ap.region, r, criterion, norm)) {
      dominated += ap.mass;
    }
  }
  ProbabilityBounds out{lb, 1.0 - dominated};
  out.Normalize();
  return out;
}

ProbabilityBounds PDomWholeObjects(const Rect& a, const Rect& b,
                                   const Rect& r,
                                   DominationCriterion criterion,
                                   const LpNorm& norm) {
  switch (ClassifyDomination(a, b, r, criterion, norm)) {
    case DominationClass::kDominates:
      return ProbabilityBounds{1.0, 1.0};
    case DominationClass::kDominated:
      return ProbabilityBounds{0.0, 0.0};
    case DominationClass::kUndecided:
      return ProbabilityBounds{0.0, 1.0};
  }
  UPDB_CHECK(false);
  return ProbabilityBounds{};
}

}  // namespace updb
