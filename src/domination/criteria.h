// Copyright 2026 The updb Authors.
// Complete spatial domination on rectangular uncertainty regions
// (Section III-A). Two decision criteria are provided:
//
//  * MinMax  — the classic MaxDist(A,R) < MinDist(B,R) test. Correct but
//              not tight: it ignores that both distances depend on the same
//              (unique) location of R.
//  * Optimal — Corollary 1, adopted from Emrich et al. (SIGMOD 2010):
//              per-dimension evaluation at the corners of R's projection,
//              Sum_i max_{r in {Rmin_i, Rmax_i}}
//                    (MaxDist(A_i, r)^p - MinDist(B_i, r)^p) < 0.
//              Detects every complete domination on rectangles.
//
// Both criteria decide PDom(A,B,R) = 1 regardless of the PDFs inside the
// rectangles (only the regions matter), which is what makes them usable as
// a filter under possible-world semantics.

#ifndef UPDB_DOMINATION_CRITERIA_H_
#define UPDB_DOMINATION_CRITERIA_H_

#include "geom/distance.h"
#include "geom/rect.h"

namespace updb {

/// Which complete-domination decision procedure to use. The experiments of
/// Figure 6 compare the two.
enum class DominationCriterion {
  kMinMax,
  kOptimal,
};

/// MinMax criterion: true iff MaxDist(A, R) < MinDist(B, R).
bool MinMaxDominates(const Rect& a, const Rect& b, const Rect& r,
                     const LpNorm& norm = LpNorm::Euclidean());

/// Optimal criterion (Corollary 1): true iff A is closer to R than B in
/// every possible world, i.e. PDom(A,B,R) = 1.
bool OptimalDominates(const Rect& a, const Rect& b, const Rect& r,
                      const LpNorm& norm = LpNorm::Euclidean());

/// Dispatches on `criterion`.
bool Dominates(const Rect& a, const Rect& b, const Rect& r,
               DominationCriterion criterion,
               const LpNorm& norm = LpNorm::Euclidean());

/// Three-way classification of the domination relation between A and B
/// w.r.t. R on complete regions.
enum class DominationClass {
  /// PDom(A,B,R) = 1: A dominates B in every possible world.
  kDominates,
  /// PDom(A,B,R) = 0: B dominates A in every world (Corollary 2 duality).
  kDominated,
  /// 0 < PDom(A,B,R) < 1 possible: neither region test fires.
  kUndecided,
};

/// Classifies A vs B w.r.t. R using `criterion` for both directions.
DominationClass ClassifyDomination(
    const Rect& a, const Rect& b, const Rect& r, DominationCriterion criterion,
    const LpNorm& norm = LpNorm::Euclidean());

}  // namespace updb

#endif  // UPDB_DOMINATION_CRITERIA_H_
