// Copyright 2026 The updb Authors.
// Probabilistic domination bounds (Section III-B). Given disjunctive
// decompositions of the three objects, Lemma 1 accumulates the mass of
// subregion triples for which complete domination holds into a lower bound
// of PDom(A,B,R); Lemma 2 derives the matching upper bound as
// 1 - PDomLB(B,A,R).

#ifndef UPDB_DOMINATION_PDOM_H_
#define UPDB_DOMINATION_PDOM_H_

#include <span>

#include "domination/criteria.h"
#include "uncertain/decomposition.h"

namespace updb {

/// A conservative/progressive bracket [lb, ub] of a probability.
struct ProbabilityBounds {
  double lb = 0.0;
  double ub = 1.0;

  double width() const { return ub - lb; }
  bool Contains(double p) const { return lb <= p && p <= ub; }

  /// Clamps both ends into [0, 1] and enforces lb <= ub (floating noise
  /// from summing many partition masses can push slightly past).
  void Normalize();
};

/// Lemma 1 + Lemma 2 with arbitrary disjunctive decompositions of all
/// three objects. Cost is O(|a| * |b| * |r|) domination tests.
ProbabilityBounds ComputePDomBounds(
    std::span<const Partition> a, std::span<const Partition> b,
    std::span<const Partition> r,
    DominationCriterion criterion = DominationCriterion::kOptimal,
    const LpNorm& norm = LpNorm::Euclidean());

/// Specialization used inside the IDCA pair loop: B and R are fixed single
/// regions (a pair (B', R') of Section IV-E) and only A is decomposed.
/// Per Lemma 3/5 the resulting bounds are mutually independent across
/// candidate objects, which is what licenses the generating-function step.
ProbabilityBounds PDomGivenPair(
    std::span<const Partition> a_parts, const Rect& b, const Rect& r,
    DominationCriterion criterion = DominationCriterion::kOptimal,
    const LpNorm& norm = LpNorm::Euclidean());

/// Convenience overload on whole (undecomposed) objects: returns
/// [1,1] / [0,0] / [0,1] according to the complete-domination classification.
ProbabilityBounds PDomWholeObjects(
    const Rect& a, const Rect& b, const Rect& r,
    DominationCriterion criterion = DominationCriterion::kOptimal,
    const LpNorm& norm = LpNorm::Euclidean());

}  // namespace updb

#endif  // UPDB_DOMINATION_PDOM_H_
