#include "domination/criteria.h"

#include <algorithm>
#include <limits>

namespace updb {

bool MinMaxDominates(const Rect& a, const Rect& b, const Rect& r,
                     const LpNorm& norm) {
  return norm.MaxDist(a, r) < norm.MinDist(b, r);
}

bool OptimalDominates(const Rect& a, const Rect& b, const Rect& r,
                      const LpNorm& norm) {
  UPDB_DCHECK(a.dim() == b.dim() && b.dim() == r.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const Interval& ai = a.side(i);
    const Interval& bi = b.side(i);
    const Interval& ri = r.side(i);
    // max over the two endpoints of R's projection interval; for points
    // in between, the expression is dominated by one of the endpoints
    // (shown in Emrich et al.), so checking the endpoints is exact.
    double worst = -std::numeric_limits<double>::infinity();
    for (double rv : {ri.lo(), ri.hi()}) {
      const double term = norm.Pow(ai.MaxDist(rv)) - norm.Pow(bi.MinDist(rv));
      worst = std::max(worst, term);
    }
    sum += worst;
  }
  return sum < 0.0;
}

bool Dominates(const Rect& a, const Rect& b, const Rect& r,
               DominationCriterion criterion, const LpNorm& norm) {
  switch (criterion) {
    case DominationCriterion::kMinMax:
      return MinMaxDominates(a, b, r, norm);
    case DominationCriterion::kOptimal:
      return OptimalDominates(a, b, r, norm);
  }
  UPDB_CHECK(false);
  return false;
}

DominationClass ClassifyDomination(const Rect& a, const Rect& b,
                                   const Rect& r,
                                   DominationCriterion criterion,
                                   const LpNorm& norm) {
  if (Dominates(a, b, r, criterion, norm)) return DominationClass::kDominates;
  if (Dominates(b, a, r, criterion, norm)) return DominationClass::kDominated;
  return DominationClass::kUndecided;
}

}  // namespace updb
