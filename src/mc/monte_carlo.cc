#include "mc/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "gf/poisson_binomial.h"

namespace updb {

SampleCloud MaterializeCloud(const Pdf& pdf, size_t samples, Rng& rng) {
  SampleCloud cloud;
  if (const auto* discrete = dynamic_cast<const DiscreteSamplePdf*>(&pdf)) {
    cloud.points = discrete->samples();
    cloud.weights = discrete->weights();
  } else {
    UPDB_CHECK(samples >= 1);
    cloud.points.reserve(samples);
    for (size_t s = 0; s < samples; ++s) cloud.points.push_back(pdf.Sample(rng));
    cloud.weights.assign(samples, 1.0 / static_cast<double>(samples));
  }
  cloud.mbr = Rect::FromPoint(cloud.points[0]);
  for (size_t i = 1; i < cloud.points.size(); ++i) {
    cloud.mbr = Rect::Hull(cloud.mbr, Rect::FromPoint(cloud.points[i]));
  }
  return cloud;
}

MonteCarloEngine::MonteCarloEngine(const UncertainDatabase& db,
                                   MonteCarloConfig config)
    : db_(db), config_(config) {
  Rng rng(config_.seed);
  clouds_.reserve(db_.size());
  for (const UncertainObject& o : db_.objects()) {
    clouds_.push_back(
        MaterializeCloud(o.pdf(), config_.samples_per_object, rng));
  }
}

MonteCarloResult MonteCarloEngine::DomCountPdf(ObjectId b,
                                               const Pdf& r) const {
  UPDB_CHECK(b < db_.size());
  Stopwatch timer;
  Rng rng(config_.seed ^ 0xA5A5A5A5ULL);
  const SampleCloud r_cloud =
      MaterializeCloud(r, config_.samples_per_object, rng);
  const SampleCloud& b_cloud = clouds_[b];
  const LpNorm& norm = config_.norm;

  // Which reference samples to average over.
  size_t num_r = r_cloud.points.size();
  if (config_.reference_samples > 0) {
    num_r = std::min(num_r, config_.reference_samples);
  }
  double total_r_weight = 0.0;
  for (size_t ri = 0; ri < num_r; ++ri) total_r_weight += r_cloud.weights[ri];
  UPDB_CHECK(total_r_weight > 0.0);

  const size_t num_ranks = db_.size();
  std::vector<double> pdf(num_ranks, 0.0);
  double candidate_accum = 0.0;

  // Reused per reference sample: sorted (distance, cumulative weight)
  // arrays of each candidate object.
  std::vector<std::vector<std::pair<double, double>>> cand_dists;
  std::vector<double> probs;

  for (size_t ri = 0; ri < num_r; ++ri) {
    const Point& rp = r_cloud.points[ri];
    const double r_weight = r_cloud.weights[ri] / total_r_weight;
    const Rect r_rect = Rect::FromPoint(rp);

    // Spatial prefilter on the sample-cloud MBRs: objects that dominate B
    // in every world only shift the count; dominated ones are dropped.
    size_t complete_count = 0;
    std::vector<ObjectId> candidates;
    for (ObjectId id = 0; id < db_.size(); ++id) {
      if (id == b) continue;
      switch (ClassifyDomination(clouds_[id].mbr, b_cloud.mbr, r_rect,
                                 config_.prefilter, norm)) {
        case DominationClass::kDominates:
          // An existentially uncertain object only dominates in worlds
          // where it exists; keep it as a (Bernoulli) candidate.
          if (db_.object(id).existentially_certain()) {
            ++complete_count;
          } else {
            candidates.push_back(id);
          }
          break;
        case DominationClass::kDominated:
          break;
        case DominationClass::kUndecided:
          candidates.push_back(id);
          break;
      }
    }
    candidate_accum += static_cast<double>(candidates.size());

    // Sorted distance arrays with cumulative weights per candidate.
    cand_dists.assign(candidates.size(), {});
    for (size_t c = 0; c < candidates.size(); ++c) {
      const SampleCloud& cloud = clouds_[candidates[c]];
      auto& arr = cand_dists[c];
      arr.reserve(cloud.points.size());
      for (size_t s = 0; s < cloud.points.size(); ++s) {
        arr.emplace_back(norm.Dist(cloud.points[s], rp), cloud.weights[s]);
      }
      std::sort(arr.begin(), arr.end());
      double acc = 0.0;
      for (auto& [d, w] : arr) {
        acc += w;
        // Clamp: summing the normalized weights can overshoot 1 by a few
        // ulps, and the cumulative value is consumed as a probability.
        w = std::min(acc, 1.0);
      }
    }

    // For each sample of B: exact Poisson-binomial over the candidates'
    // strictly-closer probabilities, then weight into the average.
    for (size_t bs = 0; bs < b_cloud.points.size(); ++bs) {
      const double bd = norm.Dist(b_cloud.points[bs], rp);
      probs.assign(candidates.size(), 0.0);
      for (size_t c = 0; c < candidates.size(); ++c) {
        const auto& arr = cand_dists[c];
        // Cumulative weight of samples with distance strictly below bd,
        // scaled by the candidate's existence probability.
        auto it = std::lower_bound(
            arr.begin(), arr.end(), bd,
            [](const std::pair<double, double>& e, double v) {
              return e.first < v;
            });
        const double closer = it == arr.begin() ? 0.0 : std::prev(it)->second;
        probs[c] = closer * db_.object(candidates[c]).existence();
      }
      const std::vector<double> local = PoissonBinomialPdf(probs);
      const double w = r_weight * b_cloud.weights[bs];
      for (size_t k = 0; k < local.size(); ++k) {
        const size_t rank = complete_count + k;
        UPDB_DCHECK(rank < num_ranks);
        pdf[rank] += w * local[k];
      }
    }
  }

  MonteCarloResult result;
  result.pdf = std::move(pdf);
  result.avg_candidates = candidate_accum / static_cast<double>(num_r);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

double MonteCarloEngine::ProbDomCountLessThan(ObjectId b, const Pdf& r,
                                              size_t k) const {
  const MonteCarloResult result = DomCountPdf(b, r);
  double p = 0.0;
  for (size_t x = 0; x < std::min(k, result.pdf.size()); ++x) {
    p += result.pdf[x];
  }
  return std::min(p, 1.0);
}

double EstimatePDom(const Pdf& a, const Pdf& b, const Pdf& r, size_t trials,
                    Rng& rng, const LpNorm& norm) {
  UPDB_CHECK(trials >= 1);
  size_t hits = 0;
  for (size_t t = 0; t < trials; ++t) {
    const Point ap = a.Sample(rng);
    const Point bp = b.Sample(rng);
    const Point rp = r.Sample(rng);
    if (norm.Dist(ap, rp) < norm.Dist(bp, rp)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace updb
