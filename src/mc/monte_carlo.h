// Copyright 2026 The updb Authors.
// The Monte-Carlo comparison partner "MC" of Section VII-A: the closest
// prior work (Lian & Chen, DASFAA'09) computes exact domination counts for
// a *certain* query over *discrete* object distributions. The paper adapts
// it to uncertain queries by sampling: draw S samples per object, compute
// for each reference sample the exact domination-count PDF of B via
// generating functions over the per-object sample fractions, and average
// the resulting PDFs.
//
// Under the discrete uncertainty model (objects given by S weighted
// samples), the result is the *exact* domination-count PDF, which makes
// this module double as the ground-truth oracle for the test suite.

#ifndef UPDB_MC_MONTE_CARLO_H_
#define UPDB_MC_MONTE_CARLO_H_

#include <vector>

#include "domination/criteria.h"
#include "uncertain/database.h"

namespace updb {

/// Parameters of the MC engine.
struct MonteCarloConfig {
  LpNorm norm = LpNorm::Euclidean();
  /// Samples drawn per object when an object's PDF is continuous; discrete
  /// PDFs contribute their own samples (paper default 1000).
  size_t samples_per_object = 1000;
  /// Number of reference-object samples averaged over; 0 means all of R's
  /// samples (the paper's setting; smaller values trade accuracy for time).
  size_t reference_samples = 0;
  /// Spatial prefilter applied per reference sample so the generating
  /// function only runs over undecided objects (mirrors what any practical
  /// implementation of the comparison partner must do to terminate).
  DominationCriterion prefilter = DominationCriterion::kMinMax;
  uint64_t seed = 7;
};

/// Output of one MC domination-count computation.
struct MonteCarloResult {
  /// pdf[k] = P(DomCount(B, R) = k); length = database size (ranks
  /// 0..N-1). Exact under the discrete sample model.
  std::vector<double> pdf;
  /// Average number of objects surviving the per-sample spatial prefilter.
  double avg_candidates = 0.0;
  /// Wall-clock seconds spent.
  double seconds = 0.0;
};

/// A weighted sample cloud standing in for one object.
struct SampleCloud {
  std::vector<Point> points;
  std::vector<double> weights;  // normalized
  Rect mbr;
};

/// Materializes the sample cloud of a PDF: discrete PDFs pass through
/// their own samples/weights; continuous PDFs are sampled `samples` times.
SampleCloud MaterializeCloud(const Pdf& pdf, size_t samples, Rng& rng);

/// MC engine; caches sample clouds for all database objects once.
class MonteCarloEngine {
 public:
  MonteCarloEngine(const UncertainDatabase& db, MonteCarloConfig config);

  /// Exact (under the sample model) domination-count PDF of object `b`
  /// w.r.t. reference PDF `r`.
  MonteCarloResult DomCountPdf(ObjectId b, const Pdf& r) const;

  /// P(DomCount(B,R) < k) — the threshold-kNN predicate probability
  /// (Corollary 4); computed from DomCountPdf.
  double ProbDomCountLessThan(ObjectId b, const Pdf& r, size_t k) const;

  const SampleCloud& cloud(ObjectId id) const { return clouds_[id]; }

 private:
  const UncertainDatabase& db_;
  MonteCarloConfig config_;
  std::vector<SampleCloud> clouds_;
};

/// Triple-sampling estimator of PDom(A,B,R) (Definition 4) used as a
/// ground-truth oracle by the property tests: draws `trials` independent
/// (a, b, r) triples and returns the fraction where dist(a,r) < dist(b,r).
double EstimatePDom(const Pdf& a, const Pdf& b, const Pdf& r, size_t trials,
                    Rng& rng, const LpNorm& norm = LpNorm::Euclidean());

}  // namespace updb

#endif  // UPDB_MC_MONTE_CARLO_H_
