// Copyright 2026 The updb Authors.
// kd-tree-style progressive decomposition of an uncertain object's
// uncertainty region into disjoint subregions with known probability mass
// (Section V of the paper). The tree is deepened one level per IDCA
// iteration; the current frontier is the disjunctive decomposition used by
// the probabilistic domination bounds (Lemmas 1-2).

#ifndef UPDB_UNCERTAIN_DECOMPOSITION_H_
#define UPDB_UNCERTAIN_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "uncertain/pdf.h"

namespace updb {

/// How the split axis for a node is chosen.
enum class SplitPolicy {
  /// Cycle through dimensions by tree level (the paper's kd-tree scheme).
  kRoundRobin,
  /// Always split the longest side of the node's region (ablation 3).
  kLongestSide,
};

/// One element of a disjunctive decomposition: a subregion and the
/// probability that the object realizes inside it. Masses of a frontier
/// sum to 1 (up to floating error).
struct Partition {
  Rect region;
  double mass;
};

/// Progressive median-split decomposition of one object.
///
/// Level 0 is the whole uncertainty region with mass 1. Deepen() splits
/// every frontier node at the conditional median along the policy-chosen
/// axis (so for median splits each child carries half the parent's mass,
/// matching the 0.5^level property in Section V); nodes that cannot make
/// progress (degenerate regions, point masses) remain in the frontier
/// untouched. Children with zero mass are discarded.
class DecompositionTree {
 public:
  /// `pdf` must outlive the tree.
  explicit DecompositionTree(const Pdf* pdf,
                             SplitPolicy policy = SplitPolicy::kRoundRobin);

  /// Splits the current frontier one level deeper. Returns the number of
  /// nodes that were actually split (0 means the decomposition is
  /// exhausted and further calls are no-ops).
  size_t Deepen();

  /// Deepens until the frontier is `level` levels deep (or exhausted).
  void DeepenTo(int level);

  /// Current depth (number of successful Deepen calls with progress).
  int depth() const { return depth_; }

  /// The current disjunctive decomposition. Masses sum to 1.
  const std::vector<Partition>& frontier() const { return frontier_; }

  /// Parent-to-child frontier mapping of the most recent Deepen(): the
  /// pre-Deepen frontier node o expanded into the current frontier index
  /// range [child_offsets()[o], child_offsets()[o+1]) — itself when it was
  /// terminal or unsplittable, its two children otherwise. This is what
  /// lets IDCA's domination-verdict cache push per-node verdicts down the
  /// tree instead of re-testing whole frontiers. Empty before the first
  /// Deepen() call.
  const std::vector<uint32_t>& child_offsets() const { return child_offsets_; }

  /// Total number of nodes ever created (diagnostics).
  size_t node_count() const { return node_count_; }

 private:
  struct FrontierNode {
    Rect region;
    double mass;
    int level;
    bool terminal;  // no further split possible
  };

  /// Attempts to split `node` along `axis` at the conditional median or,
  /// failing that, the midpoint. Returns true and appends children to
  /// `out` on success.
  bool TrySplitAxis(const FrontierNode& node, size_t axis,
                    std::vector<FrontierNode>& out) const;

  const Pdf* pdf_;
  SplitPolicy policy_;
  int depth_ = 0;
  size_t node_count_ = 1;
  std::vector<FrontierNode> nodes_;
  std::vector<Partition> frontier_;
  std::vector<uint32_t> child_offsets_;

  void RebuildFrontierView();
};

}  // namespace updb

#endif  // UPDB_UNCERTAIN_DECOMPOSITION_H_
