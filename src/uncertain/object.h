// Copyright 2026 The updb Authors.

#ifndef UPDB_UNCERTAIN_OBJECT_H_
#define UPDB_UNCERTAIN_OBJECT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "uncertain/pdf.h"

namespace updb {

/// Identifier of an uncertain object within an UncertainDatabase.
using ObjectId = uint32_t;

/// Sentinel id for objects that are not database members (e.g. an external
/// query object).
inline constexpr ObjectId kInvalidObjectId = ~ObjectId{0};

/// An uncertain database object: an id plus a bounded multi-dimensional
/// PDF (Definition 1). The minimal bounding rectangle of the PDF's support
/// is the object's uncertainty region.
///
/// Objects may additionally be *existentially uncertain* (Section I-A of
/// the paper: Integral f_i < 1 means the object may not exist at all):
/// `existence` is the probability that the object is present in a possible
/// world; conditioned on existing, its location follows the PDF. The
/// domination machinery scales every domination probability of the object
/// by `existence` (an absent object dominates nothing).
class UncertainObject {
 public:
  /// Wraps a PDF; `pdf` must be non-null and `existence` in (0, 1].
  UncertainObject(ObjectId id, std::shared_ptr<const Pdf> pdf,
                  double existence = 1.0)
      : id_(id), pdf_(std::move(pdf)), existence_(existence) {
    UPDB_CHECK(pdf_ != nullptr);
    UPDB_CHECK(existence_ > 0.0 && existence_ <= 1.0);
  }

  ObjectId id() const { return id_; }
  const Pdf& pdf() const { return *pdf_; }
  const std::shared_ptr<const Pdf>& shared_pdf() const { return pdf_; }

  /// Probability that the object exists at all (1 = certainly present).
  double existence() const { return existence_; }
  bool existentially_certain() const { return existence_ == 1.0; }

  /// The rectangular uncertainty region.
  const Rect& mbr() const { return pdf_->bounds(); }

  size_t dim() const { return pdf_->bounds().dim(); }

 private:
  ObjectId id_;
  std::shared_ptr<const Pdf> pdf_;
  double existence_;
};

}  // namespace updb

#endif  // UPDB_UNCERTAIN_OBJECT_H_
