#include "uncertain/pdf.h"

#include <algorithm>
#include <cmath>

namespace updb {

double NormalCdf(double z) { return 0.5 * std::erfc(-z * M_SQRT1_2); }

double Pdf::ConditionalMedian(const Rect& region, size_t axis) const {
  UPDB_DCHECK(axis < region.dim());
  const double total = Mass(region);
  UPDB_DCHECK(total > 0.0);
  double lo = region.side(axis).lo();
  double hi = region.side(axis).hi();
  // Bisect the split coordinate until the lower half carries half the mass
  // (or the interval is numerically exhausted).
  Rect lower = region;
  for (int iter = 0; iter < 64 && hi - lo > 0.0; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // numeric fixpoint
    lower.side(axis) = Interval(region.side(axis).lo(), mid);
    const double m = Mass(lower);
    if (m < 0.5 * total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

// ---------------------------------------------------------------- Uniform

UniformPdf::UniformPdf(Rect bounds) : bounds_(std::move(bounds)) {
  UPDB_CHECK(bounds_.dim() >= 1);
}

double UniformPdf::Mass(const Rect& region) const {
  UPDB_DCHECK(region.dim() == bounds_.dim());
  double frac = 1.0;
  for (size_t i = 0; i < bounds_.dim(); ++i) {
    const Interval& b = bounds_.side(i);
    const Interval& r = region.side(i);
    if (b.degenerate()) {
      // All mass of this dimension sits on the point b.lo().
      if (!r.Contains(b.lo())) return 0.0;
      continue;
    }
    const double lo = std::max(b.lo(), r.lo());
    const double hi = std::min(b.hi(), r.hi());
    if (hi <= lo) return 0.0;
    frac *= (hi - lo) / b.length();
  }
  return frac;
}

Point UniformPdf::Sample(Rng& rng) const {
  Point p(bounds_.dim());
  for (size_t i = 0; i < bounds_.dim(); ++i) {
    p[i] = rng.Uniform(bounds_.side(i).lo(), bounds_.side(i).hi());
  }
  return p;
}

double UniformPdf::Density(const Point& p) const {
  if (!bounds_.Contains(p)) return 0.0;
  const double vol = bounds_.Volume();
  UPDB_DCHECK(vol > 0.0);  // density undefined for degenerate bounds
  return 1.0 / vol;
}

double UniformPdf::ConditionalMedian(const Rect& region, size_t axis) const {
  UPDB_DCHECK(axis < bounds_.dim());
  // Conditional on the region, the distribution along `axis` is uniform on
  // the intersection with the bounds, so the median is its midpoint.
  const Interval& b = bounds_.side(axis);
  const Interval& r = region.side(axis);
  const double lo = std::max(b.lo(), r.lo());
  const double hi = std::min(b.hi(), r.hi());
  UPDB_DCHECK(lo <= hi);
  return 0.5 * (lo + hi);
}

std::unique_ptr<Pdf> UniformPdf::Clone() const {
  return std::make_unique<UniformPdf>(bounds_);
}

// ------------------------------------------------------ TruncatedGaussian

TruncatedGaussianPdf::TruncatedGaussianPdf(Rect bounds,
                                           std::vector<double> mean,
                                           std::vector<double> sigma)
    : bounds_(std::move(bounds)),
      mean_(std::move(mean)),
      sigma_(std::move(sigma)) {
  UPDB_CHECK(bounds_.dim() == mean_.size());
  UPDB_CHECK(bounds_.dim() == sigma_.size());
  dim_norm_.resize(bounds_.dim());
  for (size_t i = 0; i < bounds_.dim(); ++i) {
    UPDB_CHECK(sigma_[i] >= 0.0);
    const Interval& b = bounds_.side(i);
    if (sigma_[i] == 0.0) {
      UPDB_CHECK(b.Contains(mean_[i]));
      dim_norm_[i] = 1.0;
    } else {
      dim_norm_[i] = DimCdf(i, b.hi()) - DimCdf(i, b.lo());
      UPDB_CHECK(dim_norm_[i] > 0.0);
    }
  }
}

double TruncatedGaussianPdf::DimCdf(size_t i, double x) const {
  return NormalCdf((x - mean_[i]) / sigma_[i]);
}

double TruncatedGaussianPdf::DimMass(size_t i, double lo, double hi) const {
  const Interval& b = bounds_.side(i);
  if (sigma_[i] == 0.0) {
    return (lo <= mean_[i] && mean_[i] <= hi) ? 1.0 : 0.0;
  }
  const double clo = std::max(lo, b.lo());
  const double chi = std::min(hi, b.hi());
  if (chi <= clo) return 0.0;
  return (DimCdf(i, chi) - DimCdf(i, clo)) / dim_norm_[i];
}

double TruncatedGaussianPdf::Mass(const Rect& region) const {
  UPDB_DCHECK(region.dim() == bounds_.dim());
  double mass = 1.0;
  for (size_t i = 0; i < bounds_.dim(); ++i) {
    mass *= DimMass(i, region.side(i).lo(), region.side(i).hi());
    if (mass == 0.0) return 0.0;
  }
  return mass;
}

Point TruncatedGaussianPdf::Sample(Rng& rng) const {
  Point p(bounds_.dim());
  for (size_t i = 0; i < bounds_.dim(); ++i) {
    const Interval& b = bounds_.side(i);
    if (sigma_[i] == 0.0) {
      p[i] = mean_[i];
      continue;
    }
    // Inverse-CDF sampling restricted to the truncation interval, by
    // bisection on the monotone per-dimension CDF.
    const double target =
        DimCdf(i, b.lo()) + rng.NextDouble() * dim_norm_[i];
    double lo = b.lo(), hi = b.hi();
    for (int iter = 0; iter < 64 && hi - lo > 0.0; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (mid <= lo || mid >= hi) break;
      if (DimCdf(i, mid) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    p[i] = 0.5 * (lo + hi);
  }
  return p;
}

double TruncatedGaussianPdf::Density(const Point& p) const {
  if (!bounds_.Contains(p)) return 0.0;
  double d = 1.0;
  for (size_t i = 0; i < bounds_.dim(); ++i) {
    UPDB_DCHECK(sigma_[i] > 0.0);  // no density for degenerate dims
    const double z = (p[i] - mean_[i]) / sigma_[i];
    d *= std::exp(-0.5 * z * z) /
         (sigma_[i] * std::sqrt(2.0 * M_PI) * dim_norm_[i]);
  }
  return d;
}

double TruncatedGaussianPdf::ConditionalMedian(const Rect& region,
                                               size_t axis) const {
  UPDB_DCHECK(axis < bounds_.dim());
  if (sigma_[axis] == 0.0) return mean_[axis];
  // Direct 1-d bisection on the per-dimension CDF — cheaper and more
  // accurate than the generic multi-dimensional Mass() bisection.
  const Interval& b = bounds_.side(axis);
  const Interval& r = region.side(axis);
  double lo = std::max(b.lo(), r.lo());
  double hi = std::min(b.hi(), r.hi());
  UPDB_DCHECK(lo <= hi);
  const double target = 0.5 * (DimCdf(axis, lo) + DimCdf(axis, hi));
  for (int iter = 0; iter < 64 && hi - lo > 0.0; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;
    if (DimCdf(axis, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::unique_ptr<Pdf> TruncatedGaussianPdf::Clone() const {
  return std::make_unique<TruncatedGaussianPdf>(bounds_, mean_, sigma_);
}

// ---------------------------------------------------------------- Mixture

MixturePdf::MixturePdf(std::vector<std::unique_ptr<Pdf>> components,
                       std::vector<double> weights)
    : components_(std::move(components)), weights_(std::move(weights)) {
  UPDB_CHECK(!components_.empty());
  UPDB_CHECK(components_.size() == weights_.size());
  double total = 0.0;
  for (double w : weights_) {
    UPDB_CHECK(w > 0.0);
    total += w;
  }
  for (double& w : weights_) w /= total;
  bounds_ = components_[0]->bounds();
  for (size_t i = 1; i < components_.size(); ++i) {
    UPDB_CHECK(components_[i]->bounds().dim() == bounds_.dim());
    bounds_ = Rect::Hull(bounds_, components_[i]->bounds());
  }
}

double MixturePdf::Mass(const Rect& region) const {
  double m = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    m += weights_[i] * components_[i]->Mass(region);
  }
  return m;
}

Point MixturePdf::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  for (size_t i = 0; i < components_.size(); ++i) {
    if (u < weights_[i] || i + 1 == components_.size()) {
      return components_[i]->Sample(rng);
    }
    u -= weights_[i];
  }
  return components_.back()->Sample(rng);  // unreachable
}

double MixturePdf::Density(const Point& p) const {
  double d = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    d += weights_[i] * components_[i]->Density(p);
  }
  return d;
}

std::unique_ptr<Pdf> MixturePdf::Clone() const {
  std::vector<std::unique_ptr<Pdf>> comps;
  comps.reserve(components_.size());
  for (const auto& c : components_) comps.push_back(c->Clone());
  return std::make_unique<MixturePdf>(std::move(comps), weights_);
}

// ----------------------------------------------------------- Discrete

DiscreteSamplePdf::DiscreteSamplePdf(std::vector<Point> samples)
    : DiscreteSamplePdf(std::move(samples), {}) {}

DiscreteSamplePdf::DiscreteSamplePdf(std::vector<Point> samples,
                                     std::vector<double> weights)
    : samples_(std::move(samples)), weights_(std::move(weights)) {
  UPDB_CHECK(!samples_.empty());
  if (weights_.empty()) {
    weights_.assign(samples_.size(), 1.0 / static_cast<double>(samples_.size()));
  } else {
    UPDB_CHECK(weights_.size() == samples_.size());
    double total = 0.0;
    for (double w : weights_) {
      UPDB_CHECK(w > 0.0);
      total += w;
    }
    for (double& w : weights_) w /= total;
  }
  bounds_ = Rect::FromPoint(samples_[0]);
  for (size_t i = 1; i < samples_.size(); ++i) {
    UPDB_CHECK(samples_[i].dim() == bounds_.dim());
    bounds_ = Rect::Hull(bounds_, Rect::FromPoint(samples_[i]));
  }
}

bool DiscreteSamplePdf::InRegion(const Point& p, const Rect& region) const {
  return region.Contains(p);
}

double DiscreteSamplePdf::Mass(const Rect& region) const {
  UPDB_DCHECK(region.dim() == bounds_.dim());
  double m = 0.0;
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (InRegion(samples_[i], region)) m += weights_[i];
  }
  return m;
}

Point DiscreteSamplePdf::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (u < weights_[i] || i + 1 == samples_.size()) return samples_[i];
    u -= weights_[i];
  }
  return samples_.back();  // unreachable
}

double DiscreteSamplePdf::ConditionalMedian(const Rect& region,
                                            size_t axis) const {
  // Weighted median coordinate of the samples inside the region, then
  // moved to the midpoint toward the adjacent distinct coordinate so the
  // split plane never carries a sample.
  std::vector<std::pair<double, double>> coord_weight;
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (InRegion(samples_[i], region)) {
      coord_weight.emplace_back(samples_[i][axis], weights_[i]);
    }
  }
  UPDB_DCHECK(!coord_weight.empty());
  std::sort(coord_weight.begin(), coord_weight.end());
  double total = 0.0;
  for (const auto& [c, w] : coord_weight) total += w;
  double median = coord_weight.back().first;
  double acc = 0.0;
  for (const auto& [c, w] : coord_weight) {
    acc += w;
    if (acc >= 0.5 * total) {
      median = c;
      break;
    }
  }
  // Adjacent distinct coordinate above the median (prefer splitting the
  // upper gap; if the median is the maximum, split the gap below).
  for (const auto& entry : coord_weight) {
    if (entry.first > median) return 0.5 * (median + entry.first);
  }
  for (auto it = coord_weight.rbegin(); it != coord_weight.rend(); ++it) {
    if (it->first < median) return 0.5 * (median + it->first);
  }
  return median;  // single distinct coordinate: caller's split will fail
}

Rect DiscreteSamplePdf::SupportMbr(const Rect& region) const {
  Rect mbr;
  bool first = true;
  for (const Point& p : samples_) {
    if (!InRegion(p, region)) continue;
    if (first) {
      mbr = Rect::FromPoint(p);
      first = false;
    } else {
      mbr = Rect::Hull(mbr, Rect::FromPoint(p));
    }
  }
  return first ? region : mbr;
}

std::unique_ptr<Pdf> DiscreteSamplePdf::Clone() const {
  return std::make_unique<DiscreteSamplePdf>(samples_, weights_);
}

}  // namespace updb
