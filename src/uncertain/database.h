// Copyright 2026 The updb Authors.

#ifndef UPDB_UNCERTAIN_DATABASE_H_
#define UPDB_UNCERTAIN_DATABASE_H_

#include <vector>

#include "common/status.h"
#include "uncertain/object.h"

namespace updb {

/// An in-memory collection of uncertain objects with dense ids 0..N-1.
/// All objects must share one dimensionality.
class UncertainDatabase {
 public:
  UncertainDatabase() = default;

  /// Adds an object PDF with optional existential probability; the object
  /// receives the next dense id, which is returned. The first insertion
  /// fixes the database dimensionality.
  ObjectId Add(std::shared_ptr<const Pdf> pdf, double existence = 1.0) {
    UPDB_CHECK(pdf != nullptr);
    if (!objects_.empty()) {
      UPDB_CHECK(pdf->bounds().dim() == dim());
    }
    ObjectId id = static_cast<ObjectId>(objects_.size());
    objects_.emplace_back(id, std::move(pdf), existence);
    return id;
  }

  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  /// Dimensionality; requires a non-empty database.
  size_t dim() const {
    UPDB_CHECK(!objects_.empty());
    return objects_[0].dim();
  }

  const UncertainObject& object(ObjectId id) const {
    UPDB_CHECK(id < objects_.size());
    return objects_[id];
  }

  const std::vector<UncertainObject>& objects() const { return objects_; }

 private:
  std::vector<UncertainObject> objects_;
};

}  // namespace updb

#endif  // UPDB_UNCERTAIN_DATABASE_H_
