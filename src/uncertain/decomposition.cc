#include "uncertain/decomposition.h"

#include <algorithm>

namespace updb {

namespace {

// Masses below this are treated as zero: such subregions cannot influence
// domination bounds beyond floating noise and would otherwise clutter the
// frontier (e.g. empty halves of discrete objects).
constexpr double kMassEpsilon = 1e-15;

}  // namespace

DecompositionTree::DecompositionTree(const Pdf* pdf, SplitPolicy policy)
    : pdf_(pdf), policy_(policy) {
  UPDB_CHECK(pdf_ != nullptr);
  nodes_.push_back(FrontierNode{pdf_->bounds(), 1.0, /*level=*/0,
                                /*terminal=*/false});
  RebuildFrontierView();
}

bool DecompositionTree::TrySplitAxis(const FrontierNode& node, size_t axis,
                                     std::vector<FrontierNode>& out) const {
  const Interval& side = node.region.side(axis);
  if (side.degenerate()) return false;

  // Candidate split coordinates: conditional median first (keeps child
  // masses balanced, the paper's scheme), then the geometric midpoint as a
  // fallback for skewed discrete distributions whose median coincides with
  // a region boundary.
  const double median = pdf_->ConditionalMedian(node.region, axis);
  const double mid = side.mid();
  for (double at : {median, mid}) {
    if (at <= side.lo() || at >= side.hi()) continue;
    auto [lower, upper] = node.region.Split(axis, at);
    const double lower_mass = pdf_->Mass(lower);
    const double upper_mass = pdf_->Mass(upper);
    // Both children must carry mass for the split to make progress;
    // otherwise the node would reappear unchanged one level deeper.
    if (lower_mass <= kMassEpsilon || upper_mass <= kMassEpsilon) continue;
    // Shrink to the support: tightens every subsequent domination test and
    // lets discrete objects converge to exact (point) partitions.
    out.push_back(FrontierNode{pdf_->SupportMbr(lower), lower_mass,
                               node.level + 1, /*terminal=*/false});
    out.push_back(FrontierNode{pdf_->SupportMbr(upper), upper_mass,
                               node.level + 1, /*terminal=*/false});
    return true;
  }
  return false;
}

size_t DecompositionTree::Deepen() {
  std::vector<FrontierNode> next;
  next.reserve(nodes_.size() * 2);
  child_offsets_.clear();
  child_offsets_.reserve(nodes_.size() + 1);
  child_offsets_.push_back(0);
  size_t splits = 0;
  for (FrontierNode& node : nodes_) {
    if (node.terminal) {
      next.push_back(std::move(node));
      child_offsets_.push_back(static_cast<uint32_t>(next.size()));
      continue;
    }
    const size_t dim = node.region.dim();
    const size_t first_axis = policy_ == SplitPolicy::kRoundRobin
                                  ? static_cast<size_t>(node.level) % dim
                                  : node.region.LongestSide();
    bool split_done = false;
    for (size_t k = 0; k < dim && !split_done; ++k) {
      split_done = TrySplitAxis(node, (first_axis + k) % dim, next);
    }
    if (split_done) {
      ++splits;
      node_count_ += 2;
    } else {
      node.terminal = true;
      next.push_back(std::move(node));
    }
    child_offsets_.push_back(static_cast<uint32_t>(next.size()));
  }
  nodes_ = std::move(next);
  if (splits > 0) ++depth_;
  RebuildFrontierView();
  return splits;
}

void DecompositionTree::DeepenTo(int level) {
  while (depth_ < level) {
    if (Deepen() == 0) break;
  }
}

void DecompositionTree::RebuildFrontierView() {
  frontier_.clear();
  frontier_.reserve(nodes_.size());
  for (const FrontierNode& node : nodes_) {
    frontier_.push_back(Partition{node.region, node.mass});
  }
}

}  // namespace updb
