// Copyright 2026 The updb Authors.
// Probability density models for uncertain attributes (Definition 1 of the
// paper). Every PDF is bounded by a rectangular uncertainty region
// (Section I-A): f(x) = 0 outside bounds() and the total mass inside is 1.
//
// The decomposition machinery (Section V) only needs three capabilities
// from a PDF: the bounding rect, the probability mass of a sub-rectangle,
// and a conditional median along an axis (for median splits). Sampling
// supports the Monte-Carlo comparison partner and the test suite.

#ifndef UPDB_UNCERTAIN_PDF_H_
#define UPDB_UNCERTAIN_PDF_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "geom/rect.h"

namespace updb {

/// Abstract bounded multi-dimensional probability density.
///
/// Mass() treats regions as closed rectangles. For discrete models a
/// sample lying exactly on a shared boundary of two query regions would be
/// counted by both; the decomposition machinery avoids this by always
/// splitting strictly between distinct sample coordinates (see
/// DiscreteSamplePdf::ConditionalMedian) and by shrinking subregions to
/// their support (SupportMbr). Continuous models are indifferent
/// (boundaries carry zero mass).
class Pdf {
 public:
  virtual ~Pdf() = default;

  /// Minimal bounding rectangle of the support (the uncertainty region).
  virtual const Rect& bounds() const = 0;

  /// P(X in region). `region` need not be contained in bounds(); mass
  /// outside the bounds is zero. Result is within [0, 1].
  virtual double Mass(const Rect& region) const = 0;

  /// Draws one realization of the object.
  virtual Point Sample(Rng& rng) const = 0;

  /// Density at `p`. Discrete models return 0 (no density exists); the
  /// value is used only by tests and diagnostics, never by the algorithms.
  virtual double Density(const Point& p) const = 0;

  /// Coordinate m on `axis` such that the mass of `region` restricted to
  /// {x : x_axis <= m} is (approximately) half of Mass(region). Requires
  /// Mass(region) > 0. The default implementation bisects on Mass().
  virtual double ConditionalMedian(const Rect& region, size_t axis) const;

  /// Minimal bounding rectangle of the support within `region` — the
  /// tightest region that still carries Mass(region). The decomposition
  /// shrinks every partition to this rect, which is what lets bounds on
  /// discrete objects converge to the exact result. Default: `region`
  /// itself (correct for continuous models with full support).
  virtual Rect SupportMbr(const Rect& region) const { return region; }

  /// Deep copy.
  virtual std::unique_ptr<Pdf> Clone() const = 0;
};

/// Uniform distribution over its bounding rectangle. Degenerate
/// (zero-length) sides are allowed and concentrate mass on the slab.
class UniformPdf final : public Pdf {
 public:
  /// Requires a non-empty rect (dim >= 1).
  explicit UniformPdf(Rect bounds);

  const Rect& bounds() const override { return bounds_; }
  double Mass(const Rect& region) const override;
  Point Sample(Rng& rng) const override;
  double Density(const Point& p) const override;
  double ConditionalMedian(const Rect& region, size_t axis) const override;
  std::unique_ptr<Pdf> Clone() const override;

 private:
  Rect bounds_;
};

/// Axis-independent Gaussian truncated to (and renormalized within) a
/// bounding rectangle — the model used for the IIP iceberg objects in the
/// paper's real-data experiments.
class TruncatedGaussianPdf final : public Pdf {
 public:
  /// Gaussian with the given per-dimension means and standard deviations,
  /// truncated to `bounds`. Requires sigma[i] >= 0; sigma[i] == 0 forces a
  /// degenerate (point-mass) dimension whose bound side must contain
  /// mean[i]. Requires the truncated mass to be positive.
  TruncatedGaussianPdf(Rect bounds, std::vector<double> mean,
                       std::vector<double> sigma);

  const Rect& bounds() const override { return bounds_; }
  double Mass(const Rect& region) const override;
  Point Sample(Rng& rng) const override;
  double Density(const Point& p) const override;
  double ConditionalMedian(const Rect& region, size_t axis) const override;
  std::unique_ptr<Pdf> Clone() const override;

  /// Per-dimension means / standard deviations of the untruncated
  /// Gaussian (exposed for serialization and diagnostics).
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& sigma() const { return sigma_; }

 private:
  /// Untruncated per-dimension CDF at x.
  double DimCdf(size_t i, double x) const;
  /// Per-dimension truncated mass of [lo, hi] intersected with the bound.
  double DimMass(size_t i, double lo, double hi) const;

  Rect bounds_;
  std::vector<double> mean_;
  std::vector<double> sigma_;
  std::vector<double> dim_norm_;  // per-dim truncation normalizer
};

/// Convex mixture of component PDFs (models multi-modal / correlated
/// uncertainty; Section I-A allows arbitrary bounded PDFs).
class MixturePdf final : public Pdf {
 public:
  /// Requires at least one component, matching dimensions, and positive
  /// weights. Weights are normalized to sum to 1.
  MixturePdf(std::vector<std::unique_ptr<Pdf>> components,
             std::vector<double> weights);

  const Rect& bounds() const override { return bounds_; }
  double Mass(const Rect& region) const override;
  Point Sample(Rng& rng) const override;
  double Density(const Point& p) const override;
  std::unique_ptr<Pdf> Clone() const override;

  size_t num_components() const { return components_.size(); }

  /// Component PDFs / normalized weights (exposed for serialization and
  /// diagnostics, mirroring TruncatedGaussianPdf::mean()/sigma()).
  const std::vector<std::unique_ptr<Pdf>>& components() const {
    return components_;
  }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<std::unique_ptr<Pdf>> components_;
  std::vector<double> weights_;  // normalized
  Rect bounds_;
};

/// Discrete distribution given by weighted sample points — the paper's
/// discrete uncertainty model ("a finite number of alternatives assigned
/// with probabilities", Section I-A), and the model the experiments use for
/// a fair comparison against the Monte-Carlo partner (1000 samples/object).
class DiscreteSamplePdf final : public Pdf {
 public:
  /// Uniformly weighted samples. Requires at least one sample.
  explicit DiscreteSamplePdf(std::vector<Point> samples);

  /// Weighted samples. Requires matching sizes and positive weights;
  /// weights are normalized to sum to 1.
  DiscreteSamplePdf(std::vector<Point> samples, std::vector<double> weights);

  const Rect& bounds() const override { return bounds_; }
  double Mass(const Rect& region) const override;
  Point Sample(Rng& rng) const override;
  double Density(const Point& /*p*/) const override { return 0.0; }

  /// Returns a coordinate strictly *between* distinct sample coordinates,
  /// adjacent to the weighted median — so splitting there never places a
  /// sample on a region boundary. Falls back to the median coordinate
  /// itself when the region holds a single distinct coordinate.
  double ConditionalMedian(const Rect& region, size_t axis) const override;

  /// MBR of the samples inside `region`.
  Rect SupportMbr(const Rect& region) const override;

  std::unique_ptr<Pdf> Clone() const override;

  const std::vector<Point>& samples() const { return samples_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  bool InRegion(const Point& p, const Rect& region) const;

  std::vector<Point> samples_;
  std::vector<double> weights_;  // normalized
  Rect bounds_;
};

/// Standard normal CDF (exposed for tests of the Gaussian model).
double NormalCdf(double z);

}  // namespace updb

#endif  // UPDB_UNCERTAIN_PDF_H_
