#include "core/idca.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "cache/verdict_memo.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "gf/ugf_batch.h"

namespace updb {

namespace {

/// Evaluates the predicate decision from bounds on P(DomCount < k).
PredicateDecision Decide(const ProbabilityBounds& p, double tau) {
  if (p.lb > tau) return PredicateDecision::kTrue;
  if (p.ub <= tau) return PredicateDecision::kFalse;
  return PredicateDecision::kUndecided;
}

/// Fixed chunk count for the parallel pair loop. Partial aggregates are
/// kept per chunk and reduced in chunk order, and chunk boundaries depend
/// only on the pair count — never on the thread count or the schedule —
/// so the floating-point result is identical for any num_threads.
constexpr size_t kPairChunks = 64;

/// Verdict-cache state for a batch of (B', R') partition pairs, stored as
/// a structure of flat arrays (one heap buffer each instead of per-pair
/// allocations). For every pair and candidate it holds the probability
/// mass already resolved as dominating/dominated at an ancestor level plus
/// the candidate frontier nodes whose verdict is still open. Section V's
/// monotonicity argument is what makes the resolved mass inheritable: a
/// triple decided at some level stays decided in every refinement.
struct PairBlock {
  size_t num_pairs = 0;
  size_t num_candidates = 0;

  std::vector<uint32_t> b_node;   // [num_pairs] target-frontier index
  std::vector<uint32_t> r_node;   // [num_pairs] reference-frontier index
  /// [num_pairs][2C]: per pair, C resolved-dominating masses followed by
  /// C resolved-dominated masses.
  std::vector<double> resolved;
  /// [num_pairs][C+1] offsets into `undecided`; candidate c of pair p owns
  /// undecided[und_off[p*(C+1)+c] .. und_off[p*(C+1)+c+1]).
  std::vector<uint32_t> und_off;
  /// Concatenated still-undecided candidate frontier-node indices.
  std::vector<uint32_t> undecided;

  void Clear(size_t candidates) {
    num_pairs = 0;
    num_candidates = candidates;
    b_node.clear();
    r_node.clear();
    resolved.clear();
    und_off.clear();
    undecided.clear();
  }

  /// Appends every pair of `o`, rebasing its undecided offsets. Keeps this
  /// block's buffer capacities (the merge target is reused per iteration).
  void AppendFrom(const PairBlock& o) {
    UPDB_DCHECK(o.num_candidates == num_candidates);
    const uint32_t base = static_cast<uint32_t>(undecided.size());
    b_node.insert(b_node.end(), o.b_node.begin(), o.b_node.end());
    r_node.insert(r_node.end(), o.r_node.begin(), o.r_node.end());
    resolved.insert(resolved.end(), o.resolved.begin(), o.resolved.end());
    und_off.reserve(und_off.size() + o.und_off.size());
    for (uint32_t off : o.und_off) und_off.push_back(off + base);
    undecided.insert(undecided.end(), o.undecided.begin(), o.undecided.end());
    num_pairs += o.num_pairs;
  }
};

/// Per-chunk workspace and partial accumulators of one refinement
/// iteration. Chunks own their state outright, so the parallel loop writes
/// no shared data; everything is reduced serially in chunk order.
///
/// A pair whose candidates are all decided is *frozen*: its contribution
/// is refinement-invariant (children pairs would inherit the identical
/// per-candidate brackets and their weights sum back to the parent's), so
/// instead of expanding it 4x per level forever it is accumulated once
/// into the frozen_* partials, which the Run loop folds into persistent
/// accumulators re-applied every subsequent iteration.
struct ChunkState {
  PairBlock out;                       // next-level pair states
  /// Lane-batched UGF evaluation: up to UgfBatch::kLanes pairs are staged
  /// (their per-candidate factor brackets written column-wise into
  /// stage_lb/stage_ub) and evaluated in one SoA pass. Staging and
  /// flushing happen in pair order within the chunk, so every accumulator
  /// receives exactly the contributions, in exactly the order, of the
  /// former one-UGF-per-pair loop.
  UgfBatch batch;
  std::vector<double> stage_lb;        // [C * kLanes], candidate-major
  std::vector<double> stage_ub;
  double stage_w[UgfBatch::kLanes] = {};
  bool stage_frozen[UgfBatch::kLanes] = {};
  size_t staged = 0;
  CountDistributionBounds lane_bounds; // reused EmitBounds target
  CountDistributionBounds agg;         // weighted count-bound partial
  double agg_lt_lb = 0.0;              // weighted P(count < m) partial
  double agg_lt_ub = 0.0;
  std::vector<double> pdom_lb;         // [C] weighted per-candidate bounds
  std::vector<double> pdom_ub;
  std::vector<double> pair_pdom_lb;    // [C] scratch for the current pair
  std::vector<double> pair_pdom_ub;
  CountDistributionBounds frozen_agg;  // pairs frozen by this chunk
  double frozen_lt_lb = 0.0;
  double frozen_lt_ub = 0.0;
  std::vector<double> frozen_pdom_lb;
  std::vector<double> frozen_pdom_ub;
  size_t pairs = 0;
  size_t tests = 0;
  IdcaCounters counters;               // per-iteration work (chunk-local)
  /// Cross-request memo probes (chunk-local; flushed once per run). Kept
  /// OUT of IdcaCounters: whether a probe hits depends on what concurrent
  /// runs inserted or evicted, so these are not thread-count-invariant.
  cache::VerdictMemoTally memo_tally;

  ChunkState() : lane_bounds(0), agg(0), frozen_agg(0) {}
};

/// Fingerprint of the configuration fields a domination verdict depends
/// on — mixed into every memo key so runs with differing geometry
/// settings can never share entries.
uint64_t ConfigFingerprint(const IdcaConfig& config) {
  return static_cast<uint64_t>(config.criterion) |
         (static_cast<uint64_t>(config.split_policy) << 8) |
         (static_cast<uint64_t>(config.norm.p()) << 16);
}

}  // namespace

IdcaEngine::IdcaEngine(const UncertainDatabase& db, IdcaConfig config)
    : db_(db), config_(config) {
  UPDB_CHECK(config_.max_iterations >= 0);
  UPDB_CHECK(config_.num_threads >= 0);
  UPDB_CHECK(!config_.use_index_filter);  // requires the index constructor
}

IdcaEngine::IdcaEngine(const UncertainDatabase& db, const RTree* index,
                       IdcaConfig config)
    : db_(db), index_(index), config_(config) {
  UPDB_CHECK(config_.max_iterations >= 0);
  UPDB_CHECK(config_.num_threads >= 0);
  if (config_.use_index_filter) {
    UPDB_CHECK(index_ != nullptr);
    UPDB_CHECK(index_->size() == db_.size());
  }
}

IdcaResult IdcaEngine::ComputeDomCount(
    ObjectId b, const Pdf& r, std::optional<IdcaPredicate> predicate) const {
  UPDB_CHECK(b < db_.size());
  return Run(db_.object(b).pdf(), r, b, /*target_is_database_object=*/true,
             predicate);
}

IdcaResult IdcaEngine::ComputeDomCountOfQuery(
    const Pdf& q, ObjectId b_ref,
    std::optional<IdcaPredicate> predicate) const {
  UPDB_CHECK(b_ref < db_.size());
  return Run(q, db_.object(b_ref).pdf(), b_ref,
             /*target_is_database_object=*/false, predicate);
}

void IdcaEngine::Filter(const Pdf& target, const Pdf& reference,
                        ObjectId exclude, size_t& complete,
                        std::vector<const UncertainObject*>& influence) const {
  const Rect& t = target.bounds();
  const Rect& r = reference.bounds();
  auto admit = [this, &influence, &complete](const UncertainObject* a,
                                             bool dominates) {
    // An existentially uncertain object (existence < 1) can never be a
    // *complete* dominator — there are worlds where it is absent — so it
    // stays in the influence set with its probabilities scaled by the
    // existence (the adaptation sketched in Section I-A of the paper).
    if (dominates && a->existentially_certain()) {
      ++complete;
    } else {
      influence.push_back(a);
    }
  };
  if (config_.use_index_filter) {
    // Complete domination is monotone under shrinking rectangles, so a
    // verdict on an R-tree node MBR extends to every object inside:
    // dominated subtrees are pruned, dominating subtrees bulk-counted.
    index_->Traverse(
        [this, &t, &r](const Rect& mbr) {
          if (Dominates(mbr, t, r, config_.criterion, config_.norm)) {
            return RTree::VisitDecision::kTakeAll;
          }
          if (Dominates(t, mbr, r, config_.criterion, config_.norm)) {
            return RTree::VisitDecision::kSkip;
          }
          return RTree::VisitDecision::kDescend;
        },
        [this, exclude, &admit](const RTreeEntry& e,
                                RTree::VisitDecision decision) {
          if (e.id == exclude) return;
          admit(&db_.object(e.id),
                decision == RTree::VisitDecision::kTakeAll);
        });
    return;
  }
  for (const UncertainObject& a : db_.objects()) {
    if (a.id() == exclude) continue;
    switch (ClassifyDomination(a.mbr(), t, r, config_.criterion,
                               config_.norm)) {
      case DominationClass::kDominates:
        admit(&a, /*dominates=*/true);
        break;
      case DominationClass::kDominated:
        break;
      case DominationClass::kUndecided:
        admit(&a, /*dominates=*/false);
        break;
    }
  }
}

IdcaResult IdcaEngine::Run(const Pdf& target, const Pdf& reference,
                           ObjectId exclude, bool target_is_database_object,
                           std::optional<IdcaPredicate> predicate) const {
  Stopwatch timer;
  IdcaResult result;
  const size_t total_ranks = db_.size();
  obs::TraceSpan run_span(config_.trace, "idca_run", "idca");

  // ---- Phase 1: complete-domination filter (Algorithm 1, lines 3-10).
  size_t complete = 0;
  std::vector<const UncertainObject*> influence;
  {
    obs::TraceSpan filter_span(config_.trace, "idca_filter", "idca");
    Filter(target, reference, exclude, complete, influence);
    filter_span.AddArg("complete", complete);
    filter_span.AddArg("influence", influence.size());
  }
  const size_t C = influence.size();
  run_span.AddArg("influence", C);
  result.complete_domination_count = complete;
  result.influence_count = C;
  result.influence_pdom.assign(C, ProbabilityBounds{0.0, 1.0});

  // Candidate-level rank window: DomCount in [complete, complete + C].
  CountDistributionBounds window(C + 1);  // vacuous [0,1] per rank
  result.bounds = window.ShiftRight(complete, total_ranks);

  // Predicate bookkeeping in candidate space: P(DomCount < k) equals
  // P(#dominating candidates < m) with m = k - complete.
  size_t m = 0;  // candidate-space threshold, valid when predicate set
  if (predicate) {
    UPDB_CHECK(predicate->k >= 1);
    if (predicate->k <= complete) {
      // Every world already has >= k dominators.
      result.predicate_prob = ProbabilityBounds{0.0, 0.0};
      result.decision = Decide(result.predicate_prob, predicate->tau);
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    if (predicate->k > complete + C) {
      // No world can reach k dominators.
      result.predicate_prob = ProbabilityBounds{1.0, 1.0};
      result.decision = Decide(result.predicate_prob, predicate->tau);
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    m = predicate->k - complete;
    result.predicate_prob = ProbabilityBounds{0.0, 1.0};
    result.decision = PredicateDecision::kUndecided;
  }

  if (config_.collect_stats) {
    IdcaIterationStats s;
    s.iteration = 0;
    s.total_uncertainty = result.bounds.TotalUncertainty();
    s.avg_influence_uncertainty = C > 0 ? 1.0 : 0.0;
    s.cumulative_seconds = timer.ElapsedSeconds();
    result.iterations.push_back(s);
  }

  if (C == 0) {
    // DomCount is exactly `complete` in every world.
    CountDistributionBounds exact = CountDistributionBounds::Exact({1.0});
    result.bounds = exact.ShiftRight(complete, total_ranks);
    if (predicate) {
      const double p = complete < predicate->k ? 1.0 : 0.0;
      result.predicate_prob = ProbabilityBounds{p, p};
      result.decision = Decide(result.predicate_prob, predicate->tau);
    }
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // ---- Phase 2: iterative refinement (Algorithm 1, lines 14-37).
  DecompositionTree target_tree(&target, config_.split_policy);
  DecompositionTree ref_tree(&reference, config_.split_policy);
  std::vector<std::unique_ptr<DecompositionTree>> cand_trees;
  cand_trees.reserve(C);
  for (const UncertainObject* a : influence) {
    cand_trees.push_back(
        std::make_unique<DecompositionTree>(&a->pdf(), config_.split_policy));
  }

  const bool cache = config_.cache_verdicts;
  // Cross-request memo context: the caller's (snapshot version, query
  // token) context plus this run's database-object operand, its direction
  // and the geometry-relevant configuration. Everything else a verdict
  // depends on (frontier node identities) goes into the per-triple key.
  cache::VerdictMemo* const memo = config_.verdict_memo;
  const uint64_t memo_run_ctx =
      memo != nullptr
          ? cache::VerdictMemo::MixRun(config_.memo_context, exclude,
                                       target_is_database_object,
                                       ConfigFingerprint(config_))
          : 0;
  cache::VerdictMemoTally memo_tally;
  const size_t threads = ThreadPool::EffectiveParallelism(config_.num_threads);
  const size_t ugf_truncation =
      predicate ? m : UncertainGeneratingFunction::kNoTruncation;

  // Level-0 verdict state: one pair (whole B, whole R); every candidate's
  // root node is undecided — that is precisely what the filter left open.
  PairBlock cur;
  cur.Clear(C);
  cur.num_pairs = 1;
  cur.b_node.push_back(0);
  cur.r_node.push_back(0);
  cur.resolved.assign(2 * C, 0.0);
  for (uint32_t c = 0; c <= C; ++c) cur.und_off.push_back(c);
  cur.undecided.assign(C, 0);

  PairBlock merged;                       // reused merge target
  std::vector<ChunkState> chunks;         // reused across iterations
  std::vector<double> pdom_lb(C, 0.0), pdom_ub(C, 0.0);

  // Persistent contributions of frozen pairs (see ChunkState) and the
  // per-candidate liveness map: a candidate whose verdict is resolved in
  // every surviving pair is never read again, so its decomposition tree
  // stops deepening (ConditionalMedian splits are pure waste there).
  CountDistributionBounds frozen_agg = CountDistributionBounds::Zero(C + 1);
  ProbabilityBounds frozen_lt{0.0, 0.0};
  std::vector<double> frozen_pdom_lb(C, 0.0), frozen_pdom_ub(C, 0.0);
  std::vector<char> cand_live(C, 1);

  for (int iter = 1; iter <= config_.max_iterations; ++iter) {
    obs::TraceSpan iter_span(config_.trace, "idca_iter", "idca");
    iter_span.AddArg("iteration", static_cast<uint64_t>(iter));
    // Deepen all still-read decompositions one level (Algorithm 1, line
    // 15). A dead tree's frontier and child offsets are never indexed.
    size_t splits = target_tree.Deepen() + ref_tree.Deepen();
    for (size_t i = 0; i < C; ++i) {
      if (cand_live[i]) splits += cand_trees[i]->Deepen();
    }

    const std::vector<Partition>& target_frontier = target_tree.frontier();
    const std::vector<Partition>& ref_frontier = ref_tree.frontier();
    const std::vector<uint32_t>& b_off = target_tree.child_offsets();
    const std::vector<uint32_t>& r_off = ref_tree.child_offsets();

    const size_t num_chunks = std::min(kPairChunks, cur.num_pairs);
    if (chunks.size() < num_chunks) chunks.resize(num_chunks);

    // Every old pair expands into its children pairs; per child pair the
    // candidates' undecided nodes are re-tested one level deeper while
    // resolved mass is inherited. All writes go to chunk-local state.
    ThreadPool::SharedParallelFor(
        num_chunks, threads,
        [&](size_t chunk, size_t /*worker*/) {
          ChunkState& st = chunks[chunk];
          st.out.Clear(C);
          st.stage_lb.assign(C * UgfBatch::kLanes, 0.0);
          st.stage_ub.assign(C * UgfBatch::kLanes, 0.0);
          st.staged = 0;
          if (!predicate) {
            st.agg = CountDistributionBounds::Zero(C + 1);
            st.frozen_agg = CountDistributionBounds::Zero(C + 1);
            st.lane_bounds = CountDistributionBounds::Zero(C + 1);
          }
          st.agg_lt_lb = 0.0;
          st.agg_lt_ub = 0.0;
          st.frozen_lt_lb = 0.0;
          st.frozen_lt_ub = 0.0;
          st.pdom_lb.assign(C, 0.0);
          st.pdom_ub.assign(C, 0.0);
          st.pair_pdom_lb.assign(C, 0.0);
          st.pair_pdom_ub.assign(C, 0.0);
          st.frozen_pdom_lb.assign(C, 0.0);
          st.frozen_pdom_ub.assign(C, 0.0);
          st.pairs = 0;
          st.tests = 0;
          st.counters = IdcaCounters{};
          st.memo_tally = cache::VerdictMemoTally{};
          const uint64_t ugf_base = st.batch.total_multiplies();

          // Evaluates the staged pairs' UGFs in one batched pass and folds
          // their contributions into the accumulators in pair order.
          const auto flush_staged = [&](ChunkState& cs) {
            if (cs.staged == 0) return;
            cs.batch.Begin(ugf_truncation, cs.staged);
            for (size_t i = 0; i < C; ++i) {
              cs.batch.MultiplyFactors(
                  cs.stage_lb.data() + i * UgfBatch::kLanes,
                  cs.stage_ub.data() + i * UgfBatch::kLanes);
            }
            if (predicate) {
              ProbabilityBounds lt[UgfBatch::kLanes];
              cs.batch.ProbLessThanAll(m, lt);
              for (size_t l = 0; l < cs.staged; ++l) {
                const double lw = cs.stage_w[l];
                if (cs.stage_frozen[l]) {
                  cs.frozen_lt_lb += lw * lt[l].lb;
                  cs.frozen_lt_ub += lw * lt[l].ub;
                } else {
                  cs.agg_lt_lb += lw * lt[l].lb;
                  cs.agg_lt_ub += lw * lt[l].ub;
                }
              }
            } else {
              cs.batch.FinishBounds();
              for (size_t l = 0; l < cs.staged; ++l) {
                cs.batch.EmitBounds(l, &cs.lane_bounds);
                (cs.stage_frozen[l] ? cs.frozen_agg : cs.agg)
                    .AccumulateWeighted(cs.lane_bounds, cs.stage_w[l]);
              }
            }
            cs.staged = 0;
          };

          const size_t p_begin = cur.num_pairs * chunk / num_chunks;
          const size_t p_end = cur.num_pairs * (chunk + 1) / num_chunks;
          for (size_t p = p_begin; p < p_end; ++p) {
            const uint32_t old_b = cur.b_node[p];
            const uint32_t old_r = cur.r_node[p];
            const double* old_res = cur.resolved.data() + p * 2 * C;
            const uint32_t* old_off = cur.und_off.data() + p * (C + 1);
            for (uint32_t bi = b_off[old_b]; bi < b_off[old_b + 1]; ++bi) {
              for (uint32_t ri = r_off[old_r]; ri < r_off[old_r + 1]; ++ri) {
                const Partition& bp = target_frontier[bi];
                const Partition& rp = ref_frontier[ri];
                const double w = bp.mass * rp.mass;
                ++st.pairs;
                PairBlock& out = st.out;
                out.b_node.push_back(bi);
                out.r_node.push_back(ri);
                const size_t res_base = out.resolved.size();
                const size_t und_off_base = out.und_off.size();
                const size_t und_base = out.undecided.size();
                out.resolved.resize(res_base + 2 * C);
                for (size_t i = 0; i < C; ++i) {
                  const std::vector<Partition>& cand_frontier =
                      cand_trees[i]->frontier();
                  const std::vector<uint32_t>& a_off =
                      cand_trees[i]->child_offsets();
                  double dom = old_res[i];
                  double ndom = old_res[C + i];
                  // Any inherited resolved mass means a prior iteration's
                  // verdicts carried over for this (candidate, pair) slot.
                  if (dom != 0.0 || ndom != 0.0) {
                    ++st.counters.verdict_cache_hits;
                  }
                  out.und_off.push_back(
                      static_cast<uint32_t>(out.undecided.size()));
                  const uint64_t cand_id = influence[i]->id();
                  for (uint32_t u = old_off[i]; u < old_off[i + 1]; ++u) {
                    const uint32_t node = cur.undecided[u];
                    for (uint32_t a = a_off[node]; a < a_off[node + 1]; ++a) {
                      ++st.tests;
                      const Partition& ap = cand_frontier[a];
                      // Resolve the triple through the cross-request memo
                      // when one is attached: a hit replays the decided
                      // verdict an identical ClassifyDomination call
                      // produced earlier (possibly in another request
                      // against this snapshot); a decided miss is
                      // recorded for later runs. Undecided stays
                      // unrecorded — it is re-tested one level deeper
                      // either way.
                      DominationClass verdict;
                      if (memo == nullptr) {
                        verdict = ClassifyDomination(ap.region, bp.region,
                                                     rp.region,
                                                     config_.criterion,
                                                     config_.norm);
                      } else {
                        const cache::VerdictMemo::Key key = memo->MakeKey(
                            memo_run_ctx, cand_id,
                            static_cast<uint32_t>(iter), bi, ri, a);
                        const int found = memo->Lookup(key, st.memo_tally);
                        if (found != 0) {
                          verdict = found == cache::VerdictMemo::kDominates
                                        ? DominationClass::kDominates
                                        : DominationClass::kDominated;
                        } else {
                          verdict = ClassifyDomination(ap.region, bp.region,
                                                       rp.region,
                                                       config_.criterion,
                                                       config_.norm);
                          if (verdict != DominationClass::kUndecided) {
                            memo->Insert(
                                key,
                                verdict == DominationClass::kDominates
                                    ? cache::VerdictMemo::kDominates
                                    : cache::VerdictMemo::kDominated,
                                st.memo_tally);
                          }
                        }
                      }
                      switch (verdict) {
                        case DominationClass::kDominates:
                          dom += ap.mass;
                          if (!cache) out.undecided.push_back(a);
                          break;
                        case DominationClass::kDominated:
                          ndom += ap.mass;
                          if (!cache) out.undecided.push_back(a);
                          break;
                        case DominationClass::kUndecided:
                          out.undecided.push_back(a);
                          break;
                      }
                    }
                  }
                  // With the cache off nothing may be inherited next
                  // level — every triple is re-derived from scratch.
                  out.resolved[res_base + i] = cache ? dom : 0.0;
                  out.resolved[res_base + C + i] = cache ? ndom : 0.0;

                  // Lemma 1/2 bracket for this candidate given (B', R'),
                  // scaled by the existential probability: the candidate
                  // dominates only in worlds where it exists.
                  ProbabilityBounds pb{dom, 1.0 - ndom};
                  pb.Normalize();
                  const double e = influence[i]->existence();
                  pb.lb *= e;
                  pb.ub *= e;
                  st.stage_lb[i * UgfBatch::kLanes + st.staged] = pb.lb;
                  st.stage_ub[i * UgfBatch::kLanes + st.staged] = pb.ub;
                  st.pair_pdom_lb[i] = pb.lb;
                  st.pair_pdom_ub[i] = pb.ub;
                }
                out.und_off.push_back(
                    static_cast<uint32_t>(out.undecided.size()));

                // Freeze fully-decided pairs: every refinement would
                // reproduce this exact contribution, so bank it once and
                // drop the pair instead of expanding it next level.
                const bool frozen = cache && out.undecided.size() == und_base;
                if (frozen) {
                  ++st.counters.pairs_frozen;
                  out.b_node.pop_back();
                  out.r_node.pop_back();
                  out.resolved.resize(res_base);
                  out.und_off.resize(und_off_base);
                } else {
                  ++out.num_pairs;
                }
                double* acc_pdom_lb =
                    frozen ? st.frozen_pdom_lb.data() : st.pdom_lb.data();
                double* acc_pdom_ub =
                    frozen ? st.frozen_pdom_ub.data() : st.pdom_ub.data();
                for (size_t i = 0; i < C; ++i) {
                  acc_pdom_lb[i] += w * st.pair_pdom_lb[i];
                  acc_pdom_ub[i] += w * st.pair_pdom_ub[i];
                }
                // The pair's factor column is fully staged; bank its
                // weight/freeze slot and flush once the lanes fill up.
                st.stage_w[st.staged] = w;
                st.stage_frozen[st.staged] = frozen;
                ++st.staged;
                if (st.staged == UgfBatch::kLanes) flush_staged(st);
              }
            }
          }
          flush_staged(st);
          st.counters.pairs_evaluated = st.pairs;
          st.counters.domination_tests = st.tests;
          st.counters.verdict_cache_misses = st.tests;
          st.counters.ugf_multiplies = st.batch.total_multiplies() - ugf_base;
        });

    // Deterministic reduction in chunk order: newly frozen contributions
    // join the persistent accumulators, active partials plus the frozen
    // totals form this iteration's aggregates, and the chunk outputs
    // become the next level's pair states (again in chunk order).
    for (size_t c = 0; c < num_chunks; ++c) {
      const ChunkState& st = chunks[c];
      if (predicate) {
        frozen_lt.lb += st.frozen_lt_lb;
        frozen_lt.ub += st.frozen_lt_ub;
      } else {
        frozen_agg.AccumulateWeighted(st.frozen_agg, 1.0);
      }
      for (size_t i = 0; i < C; ++i) {
        frozen_pdom_lb[i] += st.frozen_pdom_lb[i];
        frozen_pdom_ub[i] += st.frozen_pdom_ub[i];
      }
    }
    CountDistributionBounds agg = CountDistributionBounds::Zero(C + 1);
    if (!predicate) agg.AccumulateWeighted(frozen_agg, 1.0);
    ProbabilityBounds agg_lt = frozen_lt;  // aggregated P(count < m)
    std::copy(frozen_pdom_lb.begin(), frozen_pdom_lb.end(), pdom_lb.begin());
    std::copy(frozen_pdom_ub.begin(), frozen_pdom_ub.end(), pdom_ub.begin());
    size_t pairs = 0;
    size_t candidate_partitions = 0;
    merged.Clear(C);
    for (size_t c = 0; c < num_chunks; ++c) {
      const ChunkState& st = chunks[c];
      pairs += st.pairs;
      candidate_partitions += st.tests;
      result.counters += st.counters;
      memo_tally += st.memo_tally;
      if (predicate) {
        agg_lt.lb += st.agg_lt_lb;
        agg_lt.ub += st.agg_lt_ub;
      } else {
        agg.AccumulateWeighted(st.agg, 1.0);
      }
      for (size_t i = 0; i < C; ++i) {
        pdom_lb[i] += st.pdom_lb[i];
        pdom_ub[i] += st.pdom_ub[i];
      }
      merged.AppendFrom(st.out);
    }
    std::swap(cur, merged);

    // Refresh the liveness map from the surviving pairs.
    std::fill(cand_live.begin(), cand_live.end(), char{0});
    for (size_t p = 0; p < cur.num_pairs; ++p) {
      const uint32_t* off = cur.und_off.data() + p * (C + 1);
      for (size_t i = 0; i < C; ++i) {
        if (off[i + 1] > off[i]) cand_live[i] = 1;
      }
    }

    double avg_influence_uncertainty = 0.0;
    for (size_t i = 0; i < C; ++i) {
      result.influence_pdom[i] = ProbabilityBounds{pdom_lb[i], pdom_ub[i]};
      result.influence_pdom[i].Normalize();
      avg_influence_uncertainty += result.influence_pdom[i].width();
    }
    avg_influence_uncertainty /= static_cast<double>(C);

    if (predicate) {
      agg_lt.Normalize();
      result.predicate_prob = agg_lt;
      result.decision = Decide(agg_lt, predicate->tau);
    } else {
      agg.Normalize();
      result.bounds = agg.ShiftRight(complete, total_ranks);
    }

    const double total_uncertainty =
        predicate ? result.predicate_prob.width()
                  : result.bounds.TotalUncertainty();
    if (config_.collect_stats) {
      IdcaIterationStats s;
      s.iteration = iter;
      s.total_uncertainty = total_uncertainty;
      s.avg_influence_uncertainty = avg_influence_uncertainty;
      s.cumulative_seconds = timer.ElapsedSeconds();
      s.pairs = pairs;
      s.candidate_partitions = candidate_partitions;
      result.iterations.push_back(s);
    }
    iter_span.AddArg("pairs", pairs);
    iter_span.AddArg("tests", candidate_partitions);

    // ---- Stop criteria.
    if (predicate && result.decision != PredicateDecision::kUndecided) break;
    if (total_uncertainty <= config_.uncertainty_epsilon) break;
    if (cur.num_pairs == 0) break;  // every pair frozen: result is final
    if (splits == 0) break;  // decompositions exhausted: result is final
  }

  // One flush per run keeps the inner loop free of shared counters.
  if (memo != nullptr) memo->Flush(memo_tally);

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace updb
