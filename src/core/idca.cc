#include "core/idca.h"

#include <algorithm>
#include <memory>

#include "common/stopwatch.h"

namespace updb {

namespace {

/// Evaluates the predicate decision from bounds on P(DomCount < k).
PredicateDecision Decide(const ProbabilityBounds& p, double tau) {
  if (p.lb > tau) return PredicateDecision::kTrue;
  if (p.ub <= tau) return PredicateDecision::kFalse;
  return PredicateDecision::kUndecided;
}

}  // namespace

IdcaEngine::IdcaEngine(const UncertainDatabase& db, IdcaConfig config)
    : db_(db), config_(config) {
  UPDB_CHECK(config_.max_iterations >= 0);
  UPDB_CHECK(!config_.use_index_filter);  // requires the index constructor
}

IdcaEngine::IdcaEngine(const UncertainDatabase& db, const RTree* index,
                       IdcaConfig config)
    : db_(db), index_(index), config_(config) {
  UPDB_CHECK(config_.max_iterations >= 0);
  if (config_.use_index_filter) {
    UPDB_CHECK(index_ != nullptr);
    UPDB_CHECK(index_->size() == db_.size());
  }
}

IdcaResult IdcaEngine::ComputeDomCount(
    ObjectId b, const Pdf& r, std::optional<IdcaPredicate> predicate) const {
  UPDB_CHECK(b < db_.size());
  return Run(db_.object(b).pdf(), r, b, predicate);
}

IdcaResult IdcaEngine::ComputeDomCountOfQuery(
    const Pdf& q, ObjectId b_ref,
    std::optional<IdcaPredicate> predicate) const {
  UPDB_CHECK(b_ref < db_.size());
  return Run(q, db_.object(b_ref).pdf(), b_ref, predicate);
}

void IdcaEngine::Filter(const Pdf& target, const Pdf& reference,
                        ObjectId exclude, size_t& complete,
                        std::vector<const UncertainObject*>& influence) const {
  const Rect& t = target.bounds();
  const Rect& r = reference.bounds();
  auto admit = [this, &influence, &complete](const UncertainObject* a,
                                             bool dominates) {
    // An existentially uncertain object (existence < 1) can never be a
    // *complete* dominator — there are worlds where it is absent — so it
    // stays in the influence set with its probabilities scaled by the
    // existence (the adaptation sketched in Section I-A of the paper).
    if (dominates && a->existentially_certain()) {
      ++complete;
    } else {
      influence.push_back(a);
    }
  };
  if (config_.use_index_filter) {
    // Complete domination is monotone under shrinking rectangles, so a
    // verdict on an R-tree node MBR extends to every object inside:
    // dominated subtrees are pruned, dominating subtrees bulk-counted.
    index_->Traverse(
        [this, &t, &r](const Rect& mbr) {
          if (Dominates(mbr, t, r, config_.criterion, config_.norm)) {
            return RTree::VisitDecision::kTakeAll;
          }
          if (Dominates(t, mbr, r, config_.criterion, config_.norm)) {
            return RTree::VisitDecision::kSkip;
          }
          return RTree::VisitDecision::kDescend;
        },
        [this, exclude, &admit](const RTreeEntry& e,
                                RTree::VisitDecision decision) {
          if (e.id == exclude) return;
          admit(&db_.object(e.id),
                decision == RTree::VisitDecision::kTakeAll);
        });
    return;
  }
  for (const UncertainObject& a : db_.objects()) {
    if (a.id() == exclude) continue;
    switch (ClassifyDomination(a.mbr(), t, r, config_.criterion,
                               config_.norm)) {
      case DominationClass::kDominates:
        admit(&a, /*dominates=*/true);
        break;
      case DominationClass::kDominated:
        break;
      case DominationClass::kUndecided:
        admit(&a, /*dominates=*/false);
        break;
    }
  }
}

IdcaResult IdcaEngine::Run(const Pdf& target, const Pdf& reference,
                           ObjectId exclude,
                           std::optional<IdcaPredicate> predicate) const {
  Stopwatch timer;
  IdcaResult result;
  const size_t total_ranks = db_.size();

  // ---- Phase 1: complete-domination filter (Algorithm 1, lines 3-10).
  size_t complete = 0;
  std::vector<const UncertainObject*> influence;
  Filter(target, reference, exclude, complete, influence);
  const size_t C = influence.size();
  result.complete_domination_count = complete;
  result.influence_count = C;
  result.influence_pdom.assign(C, ProbabilityBounds{0.0, 1.0});

  // Candidate-level rank window: DomCount in [complete, complete + C].
  CountDistributionBounds window(C + 1);  // vacuous [0,1] per rank
  result.bounds = window.ShiftRight(complete, total_ranks);

  // Predicate bookkeeping in candidate space: P(DomCount < k) equals
  // P(#dominating candidates < m) with m = k - complete.
  size_t m = 0;  // candidate-space threshold, valid when predicate set
  if (predicate) {
    UPDB_CHECK(predicate->k >= 1);
    if (predicate->k <= complete) {
      // Every world already has >= k dominators.
      result.predicate_prob = ProbabilityBounds{0.0, 0.0};
      result.decision = Decide(result.predicate_prob, predicate->tau);
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    if (predicate->k > complete + C) {
      // No world can reach k dominators.
      result.predicate_prob = ProbabilityBounds{1.0, 1.0};
      result.decision = Decide(result.predicate_prob, predicate->tau);
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    m = predicate->k - complete;
    result.predicate_prob = ProbabilityBounds{0.0, 1.0};
    result.decision = PredicateDecision::kUndecided;
  }

  if (config_.collect_stats) {
    IdcaIterationStats s;
    s.iteration = 0;
    s.total_uncertainty = result.bounds.TotalUncertainty();
    s.avg_influence_uncertainty = C > 0 ? 1.0 : 0.0;
    s.cumulative_seconds = timer.ElapsedSeconds();
    result.iterations.push_back(s);
  }

  if (C == 0) {
    // DomCount is exactly `complete` in every world.
    CountDistributionBounds exact = CountDistributionBounds::Exact({1.0});
    result.bounds = exact.ShiftRight(complete, total_ranks);
    if (predicate) {
      const double p = complete < predicate->k ? 1.0 : 0.0;
      result.predicate_prob = ProbabilityBounds{p, p};
      result.decision = Decide(result.predicate_prob, predicate->tau);
    }
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // ---- Phase 2: iterative refinement (Algorithm 1, lines 14-37).
  DecompositionTree target_tree(&target, config_.split_policy);
  DecompositionTree ref_tree(&reference, config_.split_policy);
  std::vector<std::unique_ptr<DecompositionTree>> cand_trees;
  cand_trees.reserve(C);
  for (const UncertainObject* a : influence) {
    cand_trees.push_back(
        std::make_unique<DecompositionTree>(&a->pdf(), config_.split_policy));
  }

  for (int iter = 1; iter <= config_.max_iterations; ++iter) {
    // Deepen all decompositions one level (Algorithm 1, line 15).
    size_t splits = target_tree.Deepen() + ref_tree.Deepen();
    for (auto& tree : cand_trees) splits += tree->Deepen();

    CountDistributionBounds agg = CountDistributionBounds::Zero(C + 1);
    ProbabilityBounds agg_lt{0.0, 0.0};  // aggregated P(count < m)
    std::vector<double> pdom_lb(C, 0.0), pdom_ub(C, 0.0);
    size_t pairs = 0;
    size_t candidate_partitions = 0;

    for (const Partition& bp : target_tree.frontier()) {
      for (const Partition& rp : ref_tree.frontier()) {
        ++pairs;
        const double w = bp.mass * rp.mass;
        UncertainGeneratingFunction ugf(
            predicate ? m : UncertainGeneratingFunction::kNoTruncation);
        for (size_t i = 0; i < C; ++i) {
          ProbabilityBounds pb =
              PDomGivenPair(cand_trees[i]->frontier(), bp.region, rp.region,
                            config_.criterion, config_.norm);
          // Existential scaling: the candidate dominates only in worlds
          // where it exists.
          const double e = influence[i]->existence();
          pb.lb *= e;
          pb.ub *= e;
          candidate_partitions += cand_trees[i]->frontier().size();
          ugf.Multiply(pb);
          pdom_lb[i] += w * pb.lb;
          pdom_ub[i] += w * pb.ub;
        }
        if (predicate) {
          const ProbabilityBounds lt = ugf.ProbLessThan(m);
          agg_lt.lb += w * lt.lb;
          agg_lt.ub += w * lt.ub;
        } else {
          agg.AccumulateWeighted(ugf.Bounds(), w);
        }
      }
    }

    double avg_influence_uncertainty = 0.0;
    for (size_t i = 0; i < C; ++i) {
      result.influence_pdom[i] = ProbabilityBounds{pdom_lb[i], pdom_ub[i]};
      result.influence_pdom[i].Normalize();
      avg_influence_uncertainty += result.influence_pdom[i].width();
    }
    avg_influence_uncertainty /= static_cast<double>(C);

    if (predicate) {
      agg_lt.Normalize();
      result.predicate_prob = agg_lt;
      result.decision = Decide(agg_lt, predicate->tau);
    } else {
      agg.Normalize();
      result.bounds = agg.ShiftRight(complete, total_ranks);
    }

    const double total_uncertainty =
        predicate ? result.predicate_prob.width()
                  : result.bounds.TotalUncertainty();
    if (config_.collect_stats) {
      IdcaIterationStats s;
      s.iteration = iter;
      s.total_uncertainty = total_uncertainty;
      s.avg_influence_uncertainty = avg_influence_uncertainty;
      s.cumulative_seconds = timer.ElapsedSeconds();
      s.pairs = pairs;
      s.candidate_partitions = candidate_partitions;
      result.iterations.push_back(s);
    }

    // ---- Stop criteria.
    if (predicate && result.decision != PredicateDecision::kUndecided) break;
    if (total_uncertainty <= config_.uncertainty_epsilon) break;
    if (splits == 0) break;  // decompositions exhausted: result is final
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace updb
