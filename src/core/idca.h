// Copyright 2026 The updb Authors.
// IDCA — Iterative Domination Count Approximation (Algorithm 1).
//
// Given a target object B, a reference object R and a set of database
// objects, IDCA computes conservative/progressive bounds on the PDF of
// DomCount(B,R) (Definition 3):
//
//  1. Filter: classify every other object against B w.r.t. R with a
//     complete-domination criterion (Section III-A). Objects that dominate
//     B in every world only shift the count; objects dominated by B in
//     every world are dropped; the rest are the "influence objects".
//  2. Refine: per iteration, deepen the kd-decomposition (Section V) of B,
//     R and every influence object by one level. For every pair of
//     partitions (B', R') — a disjoint set of possible worlds, Section
//     IV-E — compute per-candidate probabilistic domination brackets
//     (Lemma 1/2; independent across candidates by Lemma 5), combine them
//     with an uncertain generating function (Section IV-C/D), and
//     aggregate the per-pair count bounds weighted by P(B')P(R').
//  3. Stop: when a query predicate P(DomCount < k) vs tau is decided, the
//     accumulated uncertainty drops below a budget, the decompositions are
//     exhausted (exact result), or max_iterations is reached.

#ifndef UPDB_CORE_IDCA_H_
#define UPDB_CORE_IDCA_H_

#include <optional>
#include <vector>

#include "domination/pdom.h"
#include "gf/count_bounds.h"
#include "gf/ugf.h"
#include "index/rtree.h"
#include "obs/trace.h"
#include "uncertain/database.h"
#include "uncertain/decomposition.h"

namespace updb {

namespace cache {
class VerdictMemo;
}  // namespace cache

/// Tuning knobs of the IDCA engine.
struct IdcaConfig {
  LpNorm norm = LpNorm::Euclidean();
  /// Complete-domination test used in both the filter and the refinement
  /// loop. kOptimal is the paper's contribution; kMinMax is the baseline
  /// compared against in Figure 6.
  DominationCriterion criterion = DominationCriterion::kOptimal;
  SplitPolicy split_policy = SplitPolicy::kRoundRobin;
  /// Maximum number of refinement iterations (kd-tree height h).
  int max_iterations = 8;
  /// Run the complete-domination filter through an R-tree instead of a
  /// linear database scan (the index integration the paper names as
  /// future work). Requires an index to be supplied to the engine;
  /// whole subtrees whose node MBR is dominated (or dominating) are
  /// pruned (or bulk-counted) without touching their objects.
  bool use_index_filter = false;
  /// Stop once the accumulated uncertainty Sum_k (ub_k - lb_k) falls to or
  /// below this value.
  double uncertainty_epsilon = 0.0;
  /// Record per-iteration statistics (uncertainty/time curves).
  bool collect_stats = true;
  /// Threads used for the per-iteration (B', R') partition-pair loop.
  /// 1 = serial (default), 0 = all hardware threads, N = exactly N. The
  /// pair loop aggregates into a fixed number of chunk-local partial
  /// accumulators that are reduced in chunk order, so the result is
  /// identical for every thread count.
  int num_threads = 1;
  /// Reuse domination verdicts across refinement iterations. Complete
  /// domination is monotone under shrinking rectangles, so once a
  /// (candidate-partition, B', R') triple is decided kDominates or
  /// kDominated every refinement of it inherits the verdict; with the
  /// cache only still-undecided triples are re-tested after each Deepen(),
  /// pairs whose candidates are all decided are frozen (their refinement-
  /// invariant contribution is accumulated once instead of being expanded
  /// 4x per level), and decomposition trees of globally-decided candidates
  /// stop deepening. Off recomputes every triple from scratch each
  /// iteration (the seed behavior; kept as an ablation/debug toggle —
  /// bounds agree up to floating-point noise, since the cache groups the
  /// same mass sums at coarser granularity).
  bool cache_verdicts = true;
  /// Optional span sink ("idca_run" + one "idca_iter" per refinement
  /// iteration). nullptr (the default) costs one branch per iteration and
  /// never affects any computed bound or payload.
  obs::TraceRecorder* trace = nullptr;
  /// Optional *cross-request* verdict memo (cache/verdict_memo.h), shared
  /// by every run against one immutable store snapshot: decided
  /// (candidate-partition, B', R') verdicts recorded by one run are
  /// reused by later runs over the same triples instead of re-deriving
  /// the geometry. A memo hit reproduces exactly the verdict
  /// ClassifyDomination would return (the memo stores only decided
  /// triples, and its keys name deterministic frontier nodes), so every
  /// computed bound and payload is bit-identical with the memo on or off.
  /// nullptr (the default) costs one branch per domination test. Distinct
  /// from cache_verdicts, which reuses verdicts *within* one run.
  cache::VerdictMemo* verdict_memo = nullptr;
  /// Caller-supplied memo key context (VerdictMemo::MixContext of the
  /// snapshot version and the query object's canonical serialization
  /// token). Ignored when verdict_memo is null.
  uint64_t memo_context = 0;
};

/// Optional early-termination predicate: decide P(DomCount(B,R) < k)
/// against threshold tau (the threshold-kNN/RkNN shape of Section VI).
struct IdcaPredicate {
  size_t k = 1;
  double tau = 0.5;
};

/// Outcome of predicate evaluation.
enum class PredicateDecision {
  kUndecided,
  kTrue,   // P(DomCount < k) > tau is certain
  kFalse,  // P(DomCount < k) <= tau is certain
};

/// Telemetry captured after the filter step (iteration 0) and after each
/// refinement iteration.
struct IdcaIterationStats {
  int iteration = 0;
  /// Sum_k (ub_k - lb_k) over the full rank array — Figure 6(b)'s metric.
  double total_uncertainty = 0.0;
  /// Mean width of the influence objects' PDom brackets — Figure 7's
  /// metric ("avg. uncertainty of an influenceObject").
  double avg_influence_uncertainty = 0.0;
  /// Wall-clock seconds since the query started (cumulative).
  double cumulative_seconds = 0.0;
  /// Partition pairs (B', R') evaluated this iteration.
  size_t pairs = 0;
  /// Candidate partitions actually tested against pairs this iteration
  /// (upper bounds the number of domination tests up to a factor of 2).
  /// With cache_verdicts this counts only the still-undecided triples, so
  /// it directly exposes the work the verdict cache saves.
  size_t candidate_partitions = 0;
};

/// Deterministic work counters of one IDCA run. Each is accumulated in
/// chunk-local partials and reduced in chunk order (integer addition, so
/// the totals are exactly thread-count-invariant whenever the work
/// partition is — the idca_parallel_test asserts this). They describe cost,
/// never influence it, and stay outside the response digest.
struct IdcaCounters {
  /// Partition pairs (B', R') evaluated across all iterations.
  uint64_t pairs_evaluated = 0;
  /// Pairs whose contribution was banked once and never re-expanded
  /// (verdict cache freeze; 0 when cache_verdicts is off).
  uint64_t pairs_frozen = 0;
  /// Triples resolved in the refinement loop (a ClassifyDomination call,
  /// or the identical decided verdict replayed from a cross-request
  /// verdict memo — counted the same so the totals stay deterministic
  /// whatever the memo's concurrent fill state).
  uint64_t domination_tests = 0;
  /// (candidate, pair) verdicts inherited from a previous iteration via
  /// the verdict cache, vs. resolved by a fresh domination test.
  uint64_t verdict_cache_hits = 0;
  uint64_t verdict_cache_misses = 0;
  /// UGF factor multiplications (the engine's inner-loop unit of work).
  uint64_t ugf_multiplies = 0;

  IdcaCounters& operator+=(const IdcaCounters& o) {
    pairs_evaluated += o.pairs_evaluated;
    pairs_frozen += o.pairs_frozen;
    domination_tests += o.domination_tests;
    verdict_cache_hits += o.verdict_cache_hits;
    verdict_cache_misses += o.verdict_cache_misses;
    ugf_multiplies += o.ugf_multiplies;
    return *this;
  }
};

/// Full output of one IDCA run.
struct IdcaResult {
  /// Bounds on P(DomCount = k) for k = 0..N-1 (N = database size). In
  /// predicate mode, ranks at or above the predicate's k window are only
  /// coarsely bounded (the truncated UGF does not materialize them).
  CountDistributionBounds bounds;
  /// Objects that dominate B w.r.t. R in every possible world.
  size_t complete_domination_count = 0;
  /// Objects whose domination relation stayed undecided after the filter.
  size_t influence_count = 0;
  /// Final marginal PDom brackets of the influence objects (diagnostics).
  std::vector<ProbabilityBounds> influence_pdom;
  /// Bounds on P(DomCount < k); only set when a predicate was given.
  ProbabilityBounds predicate_prob;
  PredicateDecision decision = PredicateDecision::kUndecided;
  /// Iterations actually executed (excluding the filter entry at index 0).
  std::vector<IdcaIterationStats> iterations;
  /// Deterministic work counters (profiling; outside the digest).
  IdcaCounters counters;
  double seconds = 0.0;

  IdcaResult() : bounds(0) {}
};

/// The IDCA query engine. Stateless w.r.t. queries; one engine can serve
/// many calls against the same database.
class IdcaEngine {
 public:
  /// `db` must outlive the engine.
  explicit IdcaEngine(const UncertainDatabase& db, IdcaConfig config = {});

  /// Engine with an R-tree over the database's uncertainty regions,
  /// enabling config.use_index_filter. Both `db` and `index` must outlive
  /// the engine; `index` must index exactly the objects of `db`.
  IdcaEngine(const UncertainDatabase& db, const RTree* index,
             IdcaConfig config);

  /// Bounds for DomCount(B, R): how many database objects are closer to R
  /// than B is. `b` indexes a database object; `r` is an arbitrary
  /// reference PDF (an uncertain query object, or another object's PDF).
  IdcaResult ComputeDomCount(ObjectId b, const Pdf& r,
                             std::optional<IdcaPredicate> predicate =
                                 std::nullopt) const;

  /// Bounds for DomCount(Q, B): how many database objects are closer to
  /// the *database object* `b_ref` than the external object Q is. This is
  /// the quantity RkNN queries need (Corollary 5: B is an RkNN of Q iff
  /// DomCount(Q, B) < k).
  IdcaResult ComputeDomCountOfQuery(const Pdf& q, ObjectId b_ref,
                                    std::optional<IdcaPredicate> predicate =
                                        std::nullopt) const;

  const IdcaConfig& config() const { return config_; }

 private:
  /// Shared implementation: bounds for the number of database objects
  /// (excluding `exclude`) that are closer to `reference` than `target`.
  /// `target_is_database_object` records which operand `exclude` names
  /// (true: ComputeDomCount's target; false: ComputeDomCountOfQuery's
  /// reference) — part of the verdict-memo key, since the two directions
  /// test different geometry.
  IdcaResult Run(const Pdf& target, const Pdf& reference, ObjectId exclude,
                 bool target_is_database_object,
                 std::optional<IdcaPredicate> predicate) const;

  /// Complete-domination filter (Algorithm 1, lines 3-10): counts
  /// existentially certain complete dominators into `complete` and
  /// collects the influence objects. Uses the R-tree when configured.
  void Filter(const Pdf& target, const Pdf& reference, ObjectId exclude,
              size_t& complete,
              std::vector<const UncertainObject*>& influence) const;

  const UncertainDatabase& db_;
  const RTree* index_ = nullptr;
  IdcaConfig config_;
};

}  // namespace updb

#endif  // UPDB_CORE_IDCA_H_
