#include "gf/ugf.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "gf/kernels.h"

// Implementation notes.
//
// The expansion recurrence for one factor (w_x = p_lb, w_y = p_ub - p_lb,
// w_1 = 1 - p_ub) is
//
//   next[i][j] = cur[i][j]*w_1 + cur[i-1][j]*w_x + cur[i][j-1]*w_y,
//
// with truncated mode clamping j into the per-row tail bucket and i into
// the overflow cell. Both modes run out-of-place (flat_ -> scratch_, then
// swap) so each destination cell is *gathered* from its sources in the one
// fused chain the kernel contract fixes (gf/kernels.h: ConvCell /
// BucketCell), and Bounds/ProbLessThan reduce rows with the contract's
// blocked sums. Every arithmetic statement goes through the dispatched
// kernel table or the contract's inline helpers, which is what makes this
// class, NestedVectorUgf, and UgfBatch bit-identical on every input and
// lets the equivalence tests compare with EXPECT_EQ instead of tolerances.

namespace updb {

using gf::ActiveKernels;
using gf::GfKernels;

UncertainGeneratingFunction::UncertainGeneratingFunction(size_t truncate_at)
    : truncate_at_(truncate_at) {
  UPDB_CHECK(truncate_at_ >= 1);
  Reset();
}

void UncertainGeneratingFunction::Reset() {
  // The buffers alternate roles across multiplies, so after a pass of n
  // factors one of them is a triangle smaller than the other. Equalize
  // capacities here (never inside Multiply) so a replay of the same factor
  // count stays allocation-free regardless of which buffer ends up as the
  // scratch on the deepest multiply.
  const size_t cap = std::max(flat_.capacity(), scratch_.capacity());
  flat_.reserve(cap);
  scratch_.reserve(cap);
  num_factors_ = 0;
  core_n_ = 0;
  ones_shift_ = 0;
  zeros_pad_ = 0;
  num_rows_ = 1;
  overflow_ = 0.0;
  if (truncated()) {
    flat_.assign(truncate_at_ + 1, 0.0);  // row 0: j = 0..k, last is bucket
  } else {
    flat_.assign(1, 0.0);
  }
  flat_[0] = 1.0;  // F^0 = 1 x^0 y^0
}

void UncertainGeneratingFunction::Reset(size_t truncate_at) {
  UPDB_CHECK(truncate_at >= 1);
  truncate_at_ = truncate_at;
  Reset();
}

void UncertainGeneratingFunction::Multiply(double p_lb, double p_ub) {
  p_lb = std::clamp(p_lb, 0.0, 1.0);
  p_ub = std::clamp(p_ub, 0.0, 1.0);
  UPDB_DCHECK(p_lb <= p_ub);
  ++total_multiplies_;
  const double w_x = p_lb;          // definite domination
  const double w_y = p_ub - p_lb;   // undecided
  const double w_1 = 1.0 - p_ub;    // definite non-domination

  if (!truncated()) {
    // Degenerate fast paths. A (0,0) factor multiplies by 1 (coefficients
    // untouched, one more rank); a (1,1) factor shifts every row down one
    // rank. Both are exact no-ops on the materialized core: under ConvCell,
    // a weight of exactly 1 reproduces each source cell bit-for-bit and the
    // companion weights are exactly 0, whose fma contributions onto a
    // non-negative cell do not change any bit either.
    if (p_ub == 0.0) {
      ++zeros_pad_;
      ++num_factors_;
      return;
    }
    if (p_lb == 1.0) {
      ++ones_shift_;
      ++num_factors_;
      return;
    }
    MultiplyUntruncated(w_x, w_y, w_1);
    return;
  }

  if (p_ub == 0.0) {
    // (0,0): coefficients, buckets and overflow all stay put; only the
    // materialized row count may grow (by an all-zero row).
    ++num_factors_;
    const size_t rows = std::min(num_factors_ + 1, truncate_at_);
    if (rows > num_rows_) {
      num_rows_ = rows;
      flat_.resize(TruncRowOffset(num_rows_), 0.0);
    }
    return;
  }
  MultiplyTruncated(w_x, w_y, w_1);
}

void UncertainGeneratingFunction::MultiplyUntruncated(double w_x, double w_y,
                                                      double w_1) {
  const GfKernels& K = ActiveKernels();
  const size_t n_old = core_n_;
  const size_t n_new = n_old + 1;
  scratch_.resize_uninitialized(TriangleSize(n_new));
  // Gathered out-of-place pass, destination rows ascending. Destination
  // row i has L = n_new - i + 1 cells; its sources are old row i-1 (the
  // "below" row, L cells) and old row i (the "self" row, L - 1 cells).
  // First/last cells have an absent left/self source and are peeled off as
  // explicit ConvCell edges so the dense kernel runs branch-free.
  size_t off_old_prev = 0;  // old row i-1
  size_t off_old = 0;       // old row i
  size_t off_new = 0;
  for (size_t i = 0; i <= n_new; ++i) {
    const size_t L = n_new - i + 1;
    double* dst = scratch_.data() + off_new;
    if (i == 0) {
      const double* self = flat_.data();
      dst[0] = K.conv_cell(0.0, 0.0, self[0], w_x, w_y, w_1);
      if (L >= 3) K.conv_row_nb(dst + 1, self, self + 1, L - 2, w_y, w_1);
      dst[L - 1] = K.conv_cell(0.0, self[L - 2], 0.0, w_x, w_y, w_1);
    } else if (i <= n_old) {
      const double* below = flat_.data() + off_old_prev;
      const double* self = flat_.data() + off_old;
      dst[0] = K.conv_cell(below[0], 0.0, self[0], w_x, w_y, w_1);
      if (L >= 3) {
        K.conv_row(dst + 1, below + 1, self, self + 1, L - 2, w_x, w_y, w_1);
      }
      dst[L - 1] = K.conv_cell(below[L - 1], self[L - 2], 0.0, w_x, w_y, w_1);
    } else {  // i == n_new: fed only by the x-step of old row n_old
      dst[0] = K.conv_cell(flat_[off_old_prev], 0.0, 0.0, w_x, w_y, w_1);
    }
    off_old_prev = off_old;
    if (i <= n_old) off_old += L - 1;
    off_new += L;
  }
  flat_.swap(scratch_);
  core_n_ = n_new;
  ++num_factors_;
}

void UncertainGeneratingFunction::MultiplyTruncated(double w_x, double w_y,
                                                    double w_1) {
  const GfKernels& K = ActiveKernels();
  const size_t k = truncate_at_;
  const size_t n_new = num_factors_ + 1;
  const size_t old_rows = num_rows_;

  // Overflow picks up the x-step of row k-1 (read before the pass), its
  // two cells chained in ascending j order.
  if (old_rows == k) {
    const double* top = flat_.data() + TruncRowOffset(k - 1);
    overflow_ = std::fma(top[1], w_x, std::fma(top[0], w_x, overflow_));
  }

  // Gathered out-of-place pass, destination rows ascending. Destination
  // row i has cells j = 0..bucket with bucket = k - i; sources are old row
  // i-1 ("below", bucket + 2 cells) and old row i ("self", bucket + 1
  // cells, absent when i is a newly materialized row).
  const size_t new_rows = std::min(n_new + 1, k);
  scratch_.resize_uninitialized(TruncRowOffset(new_rows));
  for (size_t i = 0; i < new_rows; ++i) {
    const size_t bucket = k - i;
    double* dst = scratch_.data() + TruncRowOffset(i);
    const double* self =
        i < old_rows ? flat_.data() + TruncRowOffset(i) : nullptr;
    const double* below =
        i >= 1 ? flat_.data() + TruncRowOffset(i - 1) : nullptr;
    if (self != nullptr && below != nullptr) {
      dst[0] = K.conv_cell(below[0], 0.0, self[0], w_x, w_y, w_1);
      if (bucket >= 2) {
        K.conv_row(dst + 1, below + 1, self, self + 1, bucket - 1, w_x, w_y,
                   w_1);
      }
      dst[bucket] =
          K.bucket_cell(below[bucket], below[bucket + 1], self[bucket - 1],
                        self[bucket], w_x, w_y, w_1);
    } else if (self != nullptr) {  // i == 0
      dst[0] = K.conv_cell(0.0, 0.0, self[0], w_x, w_y, w_1);
      if (bucket >= 2) {
        K.conv_row_nb(dst + 1, self, self + 1, bucket - 1, w_y, w_1);
      }
      dst[bucket] = K.bucket_cell(0.0, 0.0, self[bucket - 1], self[bucket],
                                  w_x, w_y, w_1);
    } else {  // newly materialized row i == old_rows, fed only by x-steps
      K.scale_row(dst, below, bucket, w_x);
      dst[bucket] = K.bucket_cell(below[bucket], below[bucket + 1], 0.0, 0.0,
                                  w_x, w_y, w_1);
    }
  }
  flat_.swap(scratch_);
  num_rows_ = new_rows;
  num_factors_ = n_new;
}

CountDistributionBounds UncertainGeneratingFunction::Bounds() const {
  // Upper bounds via a difference array: a cell c_{i,j} admits every rank
  // in [i, i+j] (bucket cells: [i, end of the rank window]), so it
  // range-adds its mass — one blocked row sum into diff[rank of i], one
  // element-wise row subtraction off the range ends. A scalar prefix sum
  // then yields all upper bounds in O(cells + ranks).
  const GfKernels& K = ActiveKernels();
  if (!truncated()) {
    const size_t num_ranks = num_factors_ + 1;
    const size_t s = ones_shift_;
    std::vector<double> diff(num_ranks + 1, 0.0);
    size_t off = 0;
    for (size_t i = 0; i <= core_n_; ++i) {
      const size_t row_len = core_n_ - i + 1;
      const double* row = flat_.data() + off;
      diff[i + s] += K.block_sum(row, row_len);
      K.sub_row(diff.data() + i + s + 1, row, row_len);
      off += row_len;
    }
    CountDistributionBounds out = CountDistributionBounds::Zero(num_ranks);
    double ub = 0.0;
    for (size_t x = 0; x < num_ranks; ++x) {
      ub += diff[x];
      const double lb = (x >= s && x - s <= core_n_)
                            ? flat_[CoreRowOffset(x - s)]
                            : 0.0;
      out.Set(x, lb, std::min(ub, 1.0));
    }
    out.Normalize();
    return out;
  }

  const size_t k = truncate_at_;
  const size_t num_ranks = std::min(k, num_factors_ + 1);
  std::vector<double> diff(num_ranks + 1, 0.0);
  for (size_t i = 0; i < num_rows_; ++i) {
    const double* row = flat_.data() + TruncRowOffset(i);
    const size_t bucket = k - i;
    diff[i] += K.block_sum(row, bucket + 1);
    // A bucket cell means i+j >= k, reaching every materialized rank >= i,
    // so only plain cells whose range ends inside the window subtract.
    K.sub_row(diff.data() + i + 1, row, std::min(bucket, num_ranks - i));
  }
  CountDistributionBounds out = CountDistributionBounds::Zero(num_ranks);
  double ub = 0.0;
  for (size_t x = 0; x < num_ranks; ++x) {
    ub += diff[x];
    const double lb = x < num_rows_ ? flat_[TruncRowOffset(x)] : 0.0;
    out.Set(x, lb, std::min(ub, 1.0));
  }
  out.Normalize();
  return out;
}

ProbabilityBounds UncertainGeneratingFunction::ProbLessThan(size_t m) const {
  if (truncated()) UPDB_CHECK(m <= truncate_at_);
  const GfKernels& K = ActiveKernels();
  double lb = 0.0;  // mass of cells whose whole interval [i, i+j] is < m
  double ub = 0.0;  // mass of cells that can realize a count < m (i < m)
  if (!truncated()) {
    const size_t s = ones_shift_;
    size_t off = 0;
    for (size_t i = 0; i <= core_n_; ++i) {
      const size_t row_len = core_n_ - i + 1;
      const double* row = flat_.data() + off;
      if (i + s < m) {
        ub += K.block_sum(row, row_len);
        lb += K.block_sum(row, std::min(row_len, m - (i + s)));
      }
      off += row_len;
    }
  } else {
    for (size_t i = 0; i < num_rows_; ++i) {
      const double* row = flat_.data() + TruncRowOffset(i);
      const size_t bucket = truncate_at_ - i;
      if (i < m) {
        ub += K.block_sum(row, bucket + 1);
        lb += K.block_sum(row, std::min(bucket, m - i));  // bucket excluded
      }
    }
  }
  ProbabilityBounds out{lb, ub};
  out.Normalize();
  return out;
}

double UncertainGeneratingFunction::Coefficient(size_t i, size_t j) const {
  if (truncated()) {
    if (i >= num_rows_ || j > truncate_at_ - i) return 0.0;
    return flat_[TruncRowOffset(i) + j];
  }
  if (i < ones_shift_) return 0.0;
  const size_t core_i = i - ones_shift_;
  if (core_i > core_n_ || j > core_n_ - core_i) return 0.0;
  return flat_[CoreRowOffset(core_i) + j];
}

}  // namespace updb
