#include "gf/ugf.h"

#include <algorithm>

#include "common/check.h"

// Implementation notes.
//
// The expansion recurrence for one factor (w_x = p_lb, w_y = p_ub - p_lb,
// w_1 = 1 - p_ub) is
//
//   next[i][j] = cur[i][j]*w_1 + cur[i-1][j]*w_x + cur[i][j-1]*w_y,
//
// with truncated mode clamping j into the per-row tail bucket and i into
// the overflow cell. Floating-point addition is not associative, so every
// code path below — the general untruncated pass, the in-place truncated
// pass, and the degenerate fast paths — accumulates contributions into a
// cell in one fixed order: sources in (row, column) order, and per source
// the w_1 term before the w_y term (mirroring a row-major source sweep).
// NestedVectorUgf in gf/ugf_reference.h follows the same discipline, which
// is what makes the two implementations bit-identical and lets the
// equivalence tests compare with EXPECT_EQ instead of tolerances.

namespace updb {

UncertainGeneratingFunction::UncertainGeneratingFunction(size_t truncate_at)
    : truncate_at_(truncate_at) {
  UPDB_CHECK(truncate_at_ >= 1);
  Reset();
}

void UncertainGeneratingFunction::Reset() {
  // The buffers alternate roles across multiplies, so after a pass of n
  // factors one of them is a triangle smaller than the other. Equalize
  // capacities here (never inside Multiply) so a replay of the same factor
  // count stays allocation-free regardless of which buffer ends up as the
  // scratch on the deepest multiply.
  const size_t cap = std::max(flat_.capacity(), scratch_.capacity());
  flat_.reserve(cap);
  scratch_.reserve(cap);
  num_factors_ = 0;
  core_n_ = 0;
  ones_shift_ = 0;
  zeros_pad_ = 0;
  num_rows_ = 1;
  overflow_ = 0.0;
  if (truncated()) {
    flat_.assign(truncate_at_ + 1, 0.0);  // row 0: j = 0..k, last is bucket
  } else {
    flat_.assign(1, 0.0);
  }
  flat_[0] = 1.0;  // F^0 = 1 x^0 y^0
}

void UncertainGeneratingFunction::Reset(size_t truncate_at) {
  UPDB_CHECK(truncate_at >= 1);
  truncate_at_ = truncate_at;
  Reset();
}

void UncertainGeneratingFunction::Multiply(double p_lb, double p_ub) {
  p_lb = std::clamp(p_lb, 0.0, 1.0);
  p_ub = std::clamp(p_ub, 0.0, 1.0);
  UPDB_DCHECK(p_lb <= p_ub);
  ++total_multiplies_;
  const double w_x = p_lb;          // definite domination
  const double w_y = p_ub - p_lb;   // undecided
  const double w_1 = 1.0 - p_ub;    // definite non-domination

  if (!truncated()) {
    // Degenerate fast paths. A (0,0) factor multiplies by 1 (coefficients
    // untouched, one more rank); a (1,1) factor shifts every row down one
    // rank. Both are exact no-ops on the materialized core: multiplying by
    // a weight of exactly 1 reproduces each cell bit-for-bit, and the
    // companion weights are exactly 0, whose contributions (m * 0.0 added
    // to a non-negative cell) do not change any bit either.
    if (p_ub == 0.0) {
      ++zeros_pad_;
      ++num_factors_;
      return;
    }
    if (p_lb == 1.0) {
      ++ones_shift_;
      ++num_factors_;
      return;
    }
    MultiplyUntruncated(w_x, w_y, w_1);
    return;
  }

  if (p_ub == 0.0) {
    // (0,0): coefficients, buckets and overflow all stay put; only the
    // materialized row count may grow (by an all-zero row).
    ++num_factors_;
    const size_t rows = std::min(num_factors_ + 1, truncate_at_);
    if (rows > num_rows_) {
      num_rows_ = rows;
      flat_.resize(TruncRowOffset(num_rows_), 0.0);
    }
    return;
  }
  MultiplyTruncated(w_x, w_y, w_1);
}

void UncertainGeneratingFunction::MultiplyUntruncated(double w_x, double w_y,
                                                      double w_1) {
  const size_t n_old = core_n_;
  const size_t n_new = n_old + 1;
  scratch_.assign(TriangleSize(n_new), 0.0);
  // Row-major source sweep; offsets advance incrementally. Row i has
  // n_old - i + 1 source cells and n_new - i + 1 target cells.
  size_t off_old = 0;
  size_t off_new = 0;
  for (size_t i = 0; i <= n_old; ++i) {
    const size_t row_len_old = n_old - i + 1;
    const size_t row_len_new = n_new - i + 1;
    for (size_t j = 0; j < row_len_old; ++j) {
      const double m = flat_[off_old + j];
      if (m == 0.0) continue;
      scratch_[off_new + j] += m * w_1;
      scratch_[off_new + row_len_new + j] += m * w_x;  // row i+1, same j
      scratch_[off_new + j + 1] += m * w_y;
    }
    off_old += row_len_old;
    off_new += row_len_new;
  }
  flat_.swap(scratch_);
  core_n_ = n_new;
  ++num_factors_;
}

void UncertainGeneratingFunction::MultiplyTruncated(double w_x, double w_y,
                                                    double w_1) {
  const size_t k = truncate_at_;
  const size_t n_new = num_factors_ + 1;

  // Overflow picks up the x-step of row k-1 (reading the row before it is
  // overwritten below). The j-ascending order matches a row-major sweep.
  if (num_rows_ == k) {
    const double* top = flat_.data() + TruncRowOffset(k - 1);
    for (size_t j = 0; j <= k - (k - 1); ++j) overflow_ += top[j] * w_x;
  }

  // Grow by one (all-zero) row while fewer than k rows are materialized;
  // the in-place pass below then treats old and new rows uniformly.
  const size_t rows = std::min(n_new + 1, k);
  if (rows > num_rows_) {
    num_rows_ = rows;
    flat_.resize(TruncRowOffset(num_rows_), 0.0);
  }

  // In-place update, rows descending so row i still reads the *old* row
  // i-1, columns descending so cell j still reads the old cell j-1. Each
  // cell is written once with its contributions accumulated in source
  // (row, column, op) order: x-steps from row i-1, then the y-step from
  // cell j-1, then the cell's own stay/y terms.
  for (size_t i = num_rows_; i-- > 0;) {
    double* row = flat_.data() + TruncRowOffset(i);
    const double* below = i > 0 ? flat_.data() + TruncRowOffset(i - 1) : nullptr;
    const size_t bucket = k - i;  // last slot of row i
    {
      // Bucket cell: absorbs the clamped x-steps of row i-1 (columns
      // bucket and bucket+1 of the longer row below) and the clamped
      // y-steps of columns bucket-1 and bucket.
      double t = 0.0;
      if (below != nullptr) {
        t += below[bucket] * w_x;
        t += below[bucket + 1] * w_x;
      }
      t += row[bucket - 1] * w_y;
      t += row[bucket] * w_1;
      t += row[bucket] * w_y;
      row[bucket] = t;
    }
    for (size_t j = bucket; j-- > 0;) {
      double t = 0.0;
      if (below != nullptr) t += below[j] * w_x;
      if (j > 0) t += row[j - 1] * w_y;
      t += row[j] * w_1;
      row[j] = t;
    }
  }
  num_factors_ = n_new;
}

CountDistributionBounds UncertainGeneratingFunction::Bounds() const {
  // Upper bounds via a difference array: a cell c_{i,j} admits every rank
  // in [i, i+j] (bucket cells: [i, end of the rank window]), so it
  // range-adds its mass. One prefix sum then yields all upper bounds in
  // O(cells + ranks) instead of the O(ranks * cells) nested rescan.
  if (!truncated()) {
    const size_t num_ranks = num_factors_ + 1;
    const size_t s = ones_shift_;
    std::vector<double> diff(num_ranks + 1, 0.0);
    size_t off = 0;
    for (size_t i = 0; i <= core_n_; ++i) {
      const size_t row_len = core_n_ - i + 1;
      for (size_t j = 0; j < row_len; ++j) {
        const double m = flat_[off + j];
        if (m == 0.0) continue;
        diff[i + s] += m;
        diff[i + s + j + 1] -= m;
      }
      off += row_len;
    }
    CountDistributionBounds out = CountDistributionBounds::Zero(num_ranks);
    double ub = 0.0;
    for (size_t x = 0; x < num_ranks; ++x) {
      ub += diff[x];
      const double lb = (x >= s && x - s <= core_n_)
                            ? flat_[CoreRowOffset(x - s)]
                            : 0.0;
      out.Set(x, lb, std::min(ub, 1.0));
    }
    out.Normalize();
    return out;
  }

  const size_t k = truncate_at_;
  const size_t num_ranks = std::min(k, num_factors_ + 1);
  std::vector<double> diff(num_ranks + 1, 0.0);
  for (size_t i = 0; i < num_rows_; ++i) {
    const double* row = flat_.data() + TruncRowOffset(i);
    const size_t bucket = k - i;
    for (size_t j = 0; j <= bucket; ++j) {
      const double m = row[j];
      if (m == 0.0) continue;
      diff[i] += m;
      // A bucket cell means i+j >= k, reaching every materialized rank
      // >= i; a plain cell with mass has i+j <= num_factors < num_ranks+i.
      if (j != bucket && i + j + 1 <= num_ranks) diff[i + j + 1] -= m;
    }
  }
  CountDistributionBounds out = CountDistributionBounds::Zero(num_ranks);
  double ub = 0.0;
  for (size_t x = 0; x < num_ranks; ++x) {
    ub += diff[x];
    const double lb = x < num_rows_ ? flat_[TruncRowOffset(x)] : 0.0;
    out.Set(x, lb, std::min(ub, 1.0));
  }
  out.Normalize();
  return out;
}

ProbabilityBounds UncertainGeneratingFunction::ProbLessThan(size_t m) const {
  if (truncated()) UPDB_CHECK(m <= truncate_at_);
  double lb = 0.0;  // mass of cells whose whole interval [i, i+j] is < m
  double ub = 0.0;  // mass of cells that can realize a count < m (i < m)
  if (!truncated()) {
    const size_t s = ones_shift_;
    size_t off = 0;
    for (size_t i = 0; i <= core_n_; ++i) {
      const size_t row_len = core_n_ - i + 1;
      for (size_t j = 0; j < row_len; ++j) {
        const double mass = flat_[off + j];
        if (mass == 0.0) continue;
        if (i + s + j < m) lb += mass;
        if (i + s < m) ub += mass;
      }
      off += row_len;
    }
  } else {
    for (size_t i = 0; i < num_rows_; ++i) {
      const double* row = flat_.data() + TruncRowOffset(i);
      const size_t bucket = truncate_at_ - i;
      for (size_t j = 0; j <= bucket; ++j) {
        const double mass = row[j];
        if (mass == 0.0) continue;
        if (j != bucket && i + j < m) lb += mass;  // bucket: i+j >= k >= m
        if (i < m) ub += mass;
      }
    }
  }
  ProbabilityBounds out{lb, ub};
  out.Normalize();
  return out;
}

double UncertainGeneratingFunction::Coefficient(size_t i, size_t j) const {
  if (truncated()) {
    if (i >= num_rows_ || j > truncate_at_ - i) return 0.0;
    return flat_[TruncRowOffset(i) + j];
  }
  if (i < ones_shift_) return 0.0;
  const size_t core_i = i - ones_shift_;
  if (core_i > core_n_ || j > core_n_ - core_i) return 0.0;
  return flat_[CoreRowOffset(core_i) + j];
}

}  // namespace updb
