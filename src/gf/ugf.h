// Copyright 2026 The updb Authors.
// Uncertain Generating Functions (Section IV-C). An UGF expands
//
//   F = Prod_i [ p_lb_i * x  +  (p_ub_i - p_lb_i) * y  +  (1 - p_ub_i) ]
//
// over Bernoulli variables known only through probability brackets
// [p_lb_i, p_ub_i]. The coefficient c_{i,j} of x^i y^j is the probability
// that exactly i variables are definitely 1 and j further variables are
// undecided; the count then lies in [i, i+j]. From the expansion:
//
//   P(Count = k)  >=  c_{k,0}
//   P(Count = k)  <=  Sum_{i<=k, i+j>=k} c_{i,j}
//
// For threshold kNN/RkNN queries only ranks below k matter; the truncated
// mode merges every coefficient with i+j >= k into a per-row tail bucket
// and every row with i >= k into a single overflow cell, reducing the cost
// of n multiplications from O(n^3) to O(k^2 n) (Section VI).
//
// Storage is a single contiguous 32-byte-aligned triangular buffer
// (row-major, row i holding the c_{i,*} slots), not a vector-of-vectors:
// Multiply never allocates once the workspace has grown to its high-water
// mark, which matters because the IDCA refinement loop rebuilds one UGF per
// (B', R') partition pair. Reset() rewinds to F = 1 while keeping capacity,
// so a single workspace is reused across all pairs of an iteration.
// Degenerate factors take fast paths: a (0,0) factor only extends the rank
// range (O(1)) and a (1,1) factor is a row shift (O(1) untruncated via a
// shift counter).
//
// All arithmetic routes through the runtime-dispatched kernel table in
// gf/kernels.h (scalar or AVX2+FMA) and follows the blocked accumulation
// order documented there; NestedVectorUgf (gf/ugf_reference.h) and UgfBatch
// (gf/ugf_batch.h) follow the same order, so all of them agree bit-for-bit
// on every input.

#ifndef UPDB_GF_UGF_H_
#define UPDB_GF_UGF_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "gf/aligned_vec.h"
#include "gf/count_bounds.h"

namespace updb {

/// Incrementally built uncertain generating function.
class UncertainGeneratingFunction {
 public:
  static constexpr size_t kNoTruncation = std::numeric_limits<size_t>::max();

  /// `truncate_at` = k enables the O(k^2 n) truncated mode; ranks >= k are
  /// merged. kNoTruncation keeps the full expansion.
  explicit UncertainGeneratingFunction(size_t truncate_at = kNoTruncation);

  /// Multiplies in one factor with probability bracket [p_lb, p_ub]
  /// (0 <= p_lb <= p_ub <= 1). A definite dominator is (1,1); a definite
  /// non-dominator (0,0); a fully unknown one (0,1). Never allocates once
  /// the workspace capacity has reached its high-water mark.
  void Multiply(double p_lb, double p_ub);

  /// Convenience overload.
  void Multiply(const ProbabilityBounds& b) { Multiply(b.lb, b.ub); }

  /// Rewinds to the empty product F = 1 (same truncation), keeping all
  /// buffer capacity so the workspace can be reused allocation-free.
  void Reset();

  /// Rewinds to F = 1 and switches the truncation threshold.
  void Reset(size_t truncate_at);

  /// Number of factors multiplied so far.
  size_t num_factors() const { return num_factors_; }

  /// Lifetime Multiply() count across Reset()s — a profiling odometer
  /// (IDCA reads the delta around each chunk to attribute UGF work to
  /// requests). Never feeds back into any computed bound.
  uint64_t total_multiplies() const { return total_multiplies_; }

  /// Per-rank bounds. Untruncated: ranks 0..num_factors(). Truncated at k:
  /// ranks 0..k-1 (bounds for higher ranks are not represented).
  CountDistributionBounds Bounds() const;

  /// Bounds on P(Count < m). In truncated mode requires m <= k.
  ProbabilityBounds ProbLessThan(size_t m) const;

  /// Coefficient c_{i,j}; in truncated mode the j = k-i slot is the tail
  /// bucket and i must be < k. Out-of-range (i, j) yields 0. For tests.
  double Coefficient(size_t i, size_t j) const;

  /// Mass merged into the i >= k overflow cell (0 when untruncated).
  double OverflowMass() const { return overflow_; }

 private:
  bool truncated() const { return truncate_at_ != kNoTruncation; }

  /// Cells of a full triangular expansion over n factors (rows 0..n).
  static size_t TriangleSize(size_t n) { return (n + 1) * (n + 2) / 2; }

  /// Offset of row i in the untruncated core layout (row sizes
  /// core_n_-i+1 ... 1).
  size_t CoreRowOffset(size_t i) const {
    return i * (core_n_ + 1) - i * (i - 1) / 2;
  }

  /// Offset of row i in the truncated layout (row i holds k-i+1 slots,
  /// j = 0..k-i, the last being the tail bucket).
  size_t TruncRowOffset(size_t i) const {
    return i * (truncate_at_ + 1) - i * (i - 1) / 2;
  }

  void MultiplyUntruncated(double w_x, double w_y, double w_1);
  void MultiplyTruncated(double w_x, double w_y, double w_1);

  size_t truncate_at_;
  size_t num_factors_ = 0;
  uint64_t total_multiplies_ = 0;  // lifetime, survives Reset()

  // --- untruncated state. The materialized "core" triangle covers the
  // general factors only; degenerate factors are tracked symbolically:
  // ones_shift_ (1,1)-factors shift every row down by one rank, zeros_pad_
  // (0,0)-factors extend the rank range with implicit zero cells.
  // num_factors_ == core_n_ + ones_shift_ + zeros_pad_.
  size_t core_n_ = 0;
  size_t ones_shift_ = 0;
  size_t zeros_pad_ = 0;

  // --- truncated state: rows 0..num_rows_-1 materialized in flat_.
  size_t num_rows_ = 1;

  // Contiguous 32-byte-aligned coefficient storage (layout depends on mode,
  // see above) and the double-buffer scratch for the out-of-place multiply
  // passes. Capacities only ever grow; Reset() keeps them.
  gf::AlignedVec flat_;
  gf::AlignedVec scratch_;
  double overflow_ = 0.0;
};

}  // namespace updb

#endif  // UPDB_GF_UGF_H_
