// Copyright 2026 The updb Authors.
// Uncertain Generating Functions (Section IV-C). An UGF expands
//
//   F = Prod_i [ p_lb_i * x  +  (p_ub_i - p_lb_i) * y  +  (1 - p_ub_i) ]
//
// over Bernoulli variables known only through probability brackets
// [p_lb_i, p_ub_i]. The coefficient c_{i,j} of x^i y^j is the probability
// that exactly i variables are definitely 1 and j further variables are
// undecided; the count then lies in [i, i+j]. From the expansion:
//
//   P(Count = k)  >=  c_{k,0}
//   P(Count = k)  <=  Sum_{i<=k, i+j>=k} c_{i,j}
//
// For threshold kNN/RkNN queries only ranks below k matter; the truncated
// mode merges every coefficient with i+j >= k into a per-row tail bucket
// and every row with i >= k into a single overflow cell, reducing the cost
// of n multiplications from O(n^3) to O(k^2 n) (Section VI).

#ifndef UPDB_GF_UGF_H_
#define UPDB_GF_UGF_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "gf/count_bounds.h"

namespace updb {

/// Incrementally built uncertain generating function.
class UncertainGeneratingFunction {
 public:
  static constexpr size_t kNoTruncation = std::numeric_limits<size_t>::max();

  /// `truncate_at` = k enables the O(k^2 n) truncated mode; ranks >= k are
  /// merged. kNoTruncation keeps the full expansion.
  explicit UncertainGeneratingFunction(size_t truncate_at = kNoTruncation);

  /// Multiplies in one factor with probability bracket [p_lb, p_ub]
  /// (0 <= p_lb <= p_ub <= 1). A definite dominator is (1,1); a definite
  /// non-dominator (0,0); a fully unknown one (0,1).
  void Multiply(double p_lb, double p_ub);

  /// Convenience overload.
  void Multiply(const ProbabilityBounds& b) { Multiply(b.lb, b.ub); }

  /// Number of factors multiplied so far.
  size_t num_factors() const { return num_factors_; }

  /// Per-rank bounds. Untruncated: ranks 0..num_factors(). Truncated at k:
  /// ranks 0..k-1 (bounds for higher ranks are not represented).
  CountDistributionBounds Bounds() const;

  /// Bounds on P(Count < m). In truncated mode requires m <= k.
  ProbabilityBounds ProbLessThan(size_t m) const;

  /// Coefficient c_{i,j}; in truncated mode the j = k-i slot is the tail
  /// bucket and i must be < k. Out-of-range (i, j) yields 0. For tests.
  double Coefficient(size_t i, size_t j) const;

  /// Mass merged into the i >= k overflow cell (0 when untruncated).
  double OverflowMass() const { return overflow_; }

 private:
  bool truncated() const { return truncate_at_ != kNoTruncation; }
  /// Number of j slots in row i (truncated mode: last slot is the bucket).
  size_t RowSize(size_t i) const;

  size_t truncate_at_;
  size_t num_factors_ = 0;
  // rows_[i][j] = c_{i,j}. Untruncated: i = 0..n, j = 0..n-i.
  // Truncated: i = 0..k-1, j = 0..k-i with slot k-i meaning "i+j >= k".
  std::vector<std::vector<double>> rows_;
  double overflow_ = 0.0;
};

}  // namespace updb

#endif  // UPDB_GF_UGF_H_
