#include "gf/poisson_binomial.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "gf/kernels.h"

namespace updb {

std::vector<double> PoissonBinomialPdf(std::span<const double> probs) {
  const gf::GfKernels& K = gf::ActiveKernels();
  std::vector<double> pdf(1, 1.0);
  pdf.reserve(probs.size() + 1);
  for (double p : probs) {
    UPDB_DCHECK(p >= 0.0 && p <= 1.0);
    pdf.push_back(0.0);
    // In-place convolution with (1-p + p x), highest coefficient first so
    // each source value is read before being overwritten.
    K.shift_mul_add(pdf.data(), pdf.size(), p, 1.0 - p);
  }
  return pdf;
}

std::vector<double> PoissonBinomialPrefix(std::span<const double> probs,
                                          size_t k) {
  UPDB_CHECK(k >= 1);
  const gf::GfKernels& K = gf::ActiveKernels();
  // pdf[x] for x < k is exact; pdf[k] accumulates all mass at >= k.
  std::vector<double> pdf(k + 1, 0.0);
  pdf[0] = 1.0;
  for (double p : probs) {
    UPDB_DCHECK(p >= 0.0 && p <= 1.0);
    // Tail absorbs: P(>=k) stays plus inflow from k-1.
    pdf[k] = std::fma(pdf[k - 1], p, pdf[k]);
    K.shift_mul_add(pdf.data(), k, p, 1.0 - p);
  }
  return pdf;
}

CountDistributionBounds RegularGfPairBounds(std::span<const double> lb_probs,
                                            std::span<const double> ub_probs) {
  UPDB_CHECK(lb_probs.size() == ub_probs.size());
  const std::vector<double> pdf_lo = PoissonBinomialPdf(lb_probs);
  const std::vector<double> pdf_hi = PoissonBinomialPdf(ub_probs);
  const size_t n = pdf_lo.size();  // ranks 0..N

  // CDFs. Larger success probabilities shift the count upward, so the true
  // CDF is bracketed as cdf_hi(x) <= CDF(x) <= cdf_lo(x).
  std::vector<double> cdf_lo(n), cdf_hi(n);
  double alo = 0.0, ahi = 0.0;
  for (size_t x = 0; x < n; ++x) {
    alo += pdf_lo[x];
    ahi += pdf_hi[x];
    cdf_lo[x] = std::min(alo, 1.0);
    cdf_hi[x] = std::min(ahi, 1.0);
  }

  CountDistributionBounds out(n);
  for (size_t x = 0; x < n; ++x) {
    const double cdf_lb_prev = x == 0 ? 0.0 : cdf_hi[x - 1];
    const double cdf_ub_prev = x == 0 ? 0.0 : cdf_lo[x - 1];
    const double lb = std::max(0.0, cdf_hi[x] - cdf_ub_prev);
    const double ub = std::min(1.0, cdf_lo[x] - cdf_lb_prev);
    out.Set(x, lb, std::max(lb, ub));
  }
  out.Normalize();
  return out;
}

}  // namespace updb
