// Copyright 2026 The updb Authors.
// Regular generating functions for sums of independent Bernoulli variables
// (Section IV-C, following Li et al. PVLDB'09): expanding
// F = Prod_i (1 - p_i + p_i x) yields the exact Poisson-binomial PDF in
// O(N^2), or O(k N) when only ranks below k are needed.

#ifndef UPDB_GF_POISSON_BINOMIAL_H_
#define UPDB_GF_POISSON_BINOMIAL_H_

#include <span>
#include <vector>

#include "gf/count_bounds.h"

namespace updb {

/// Exact PDF of Sum_i Bernoulli(p_i): result[k] = P(Sum = k) for
/// k = 0..probs.size(). Each p_i must lie in [0, 1].
std::vector<double> PoissonBinomialPdf(std::span<const double> probs);

/// Truncated expansion: result[k'] = P(Sum = k') exactly for k' < k, and
/// result[k] = P(Sum >= k) (the merged tail). Result has k+1 entries.
/// Cost O(k * N). Requires k >= 1.
std::vector<double> PoissonBinomialPrefix(std::span<const double> probs,
                                          size_t k);

/// The technical-report ablation baseline: bound the domination-count PDF
/// with a *pair of regular* generating functions, one over the lower-bound
/// probabilities and one over the upper bounds. Stochastic dominance gives
/// CDF brackets, from which per-rank brackets follow. Provably looser than
/// (or equal to) the UGF bounds — see bench/abl1_ugf_vs_gf_pair.
CountDistributionBounds RegularGfPairBounds(std::span<const double> lb_probs,
                                            std::span<const double> ub_probs);

}  // namespace updb

#endif  // UPDB_GF_POISSON_BINOMIAL_H_
