// Copyright 2026 The updb Authors.
// Reference implementation of the uncertain generating function backed by
// nested std::vector storage — the representation the flat-buffer
// UncertainGeneratingFunction replaced. It allocates a brand-new row set on
// every Multiply and takes no degenerate-factor fast paths, which makes it
//
//   * the oracle for the equivalence tests: it transcribes the blocked
//     accumulation order of gf/kernels.h literally (gathered ConvCell /
//     BucketCell cells, BlockSumScalar row reductions), so the flat scalar
//     path, the AVX2 path and the SoA batch must all match it bit for bit
//     on arbitrary factor sequences, and
//   * the baseline for bench_hotpath_scaling's "vs seed" speedup series.
//
// Not for production use; the flat-buffer UGF is strictly faster.

#ifndef UPDB_GF_UGF_REFERENCE_H_
#define UPDB_GF_UGF_REFERENCE_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "gf/count_bounds.h"

namespace updb {

/// Nested-vector uncertain generating function (reference oracle).
class NestedVectorUgf {
 public:
  static constexpr size_t kNoTruncation = std::numeric_limits<size_t>::max();

  explicit NestedVectorUgf(size_t truncate_at = kNoTruncation);

  /// Multiplies in one factor; allocates a fresh row set (the cost the
  /// flat-buffer implementation eliminates).
  void Multiply(double p_lb, double p_ub);
  void Multiply(const ProbabilityBounds& b) { Multiply(b.lb, b.ub); }

  size_t num_factors() const { return num_factors_; }
  CountDistributionBounds Bounds() const;
  ProbabilityBounds ProbLessThan(size_t m) const;
  double Coefficient(size_t i, size_t j) const;
  double OverflowMass() const { return overflow_; }

 private:
  bool truncated() const { return truncate_at_ != kNoTruncation; }
  size_t RowSize(size_t i) const;

  size_t truncate_at_;
  size_t num_factors_ = 0;
  // rows_[i][j] = c_{i,j}. Untruncated: i = 0..n, j = 0..n-i.
  // Truncated: i = 0..k-1, j = 0..k-i with slot k-i meaning "i+j >= k".
  std::vector<std::vector<double>> rows_;
  double overflow_ = 0.0;
};

}  // namespace updb

#endif  // UPDB_GF_UGF_REFERENCE_H_
