#include "gf/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace updb::gf {

namespace {

// ---- scalar kernel bodies. Each is the literal contract definition; the
// AVX2 table must reproduce these bit-for-bit.

void ConvRowScalar(double* dst, const double* below, const double* left,
                   const double* self, size_t n, double w_x, double w_y,
                   double w_1) {
  for (size_t j = 0; j < n; ++j) {
    dst[j] = ConvCell(below[j], left[j], self[j], w_x, w_y, w_1);
  }
}

void ConvRowNbScalar(double* dst, const double* left, const double* self,
                     size_t n, double w_y, double w_1) {
  for (size_t j = 0; j < n; ++j) {
    dst[j] = ConvCell(0.0, left[j], self[j], 0.0, w_y, w_1);
  }
}

void ScaleRowScalar(double* dst, const double* src, size_t n, double w) {
  for (size_t j = 0; j < n; ++j) dst[j] = src[j] * w;
}

void SubRowScalar(double* dst, const double* src, size_t n) {
  for (size_t j = 0; j < n; ++j) dst[j] -= src[j];
}

void AxpyScalar(double* dst, const double* src, size_t n, double w) {
  for (size_t j = 0; j < n; ++j) dst[j] = std::fma(src[j], w, dst[j]);
}

void ShiftMulAddScalar(double* x, size_t n, double a, double b) {
  for (size_t k = n; k-- > 1;) x[k] = std::fma(x[k - 1], a, x[k] * b);
  if (n > 0) x[0] *= b;
}

// Distinct named wrappers (not the inline helpers' own addresses): each
// table must point at code generated in its own translation unit, so the
// scalar table never executes instructions the baseline target lacks.
double ConvCellScalar(double below, double left, double self, double w_x,
                      double w_y, double w_1) {
  return ConvCell(below, left, self, w_x, w_y, w_1);
}

double BucketCellScalar(double below0, double below1, double left,
                        double self, double w_x, double w_y, double w_1) {
  return BucketCell(below0, below1, left, self, w_x, w_y, w_1);
}

void ConvCells4Scalar(double* dst, const double* below, const double* left,
                      const double* self, size_t ncells, const double* w_x4,
                      const double* w_y4, const double* w_14) {
  for (size_t c = 0; c < ncells; ++c) {
    for (size_t l = 0; l < kSoaLanes; ++l) {
      const size_t i = c * kSoaLanes + l;
      dst[i] = ConvCell(below[i], left[i], self[i], w_x4[l], w_y4[l], w_14[l]);
    }
  }
}

void ConvCells4NbScalar(double* dst, const double* left, const double* self,
                        size_t ncells, const double* w_y4,
                        const double* w_14) {
  for (size_t c = 0; c < ncells; ++c) {
    for (size_t l = 0; l < kSoaLanes; ++l) {
      const size_t i = c * kSoaLanes + l;
      dst[i] = ConvCell(0.0, left[i], self[i], 0.0, w_y4[l], w_14[l]);
    }
  }
}

void ScaleCells4Scalar(double* dst, const double* src, size_t ncells,
                       const double* w4) {
  for (size_t c = 0; c < ncells; ++c) {
    for (size_t l = 0; l < kSoaLanes; ++l) {
      const size_t i = c * kSoaLanes + l;
      dst[i] = src[i] * w4[l];
    }
  }
}

void BlockSum4Scalar(const double* x, size_t ncells, double* out4) {
  double acc[4][kSoaLanes] = {};
  for (size_t c = 0; c < ncells; ++c) {
    for (size_t l = 0; l < kSoaLanes; ++l) {
      acc[c & 3][l] += x[c * kSoaLanes + l];
    }
  }
  for (size_t l = 0; l < kSoaLanes; ++l) {
    out4[l] = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
  }
}

void SubCells4Scalar(double* dst, const double* src, size_t ncells) {
  SubRowScalar(dst, src, ncells * kSoaLanes);
}

void BucketCells4Scalar(double* dst, const double* below0,
                        const double* below1, const double* left,
                        const double* self, const double* w_x4,
                        const double* w_y4, const double* w_14) {
  for (size_t l = 0; l < kSoaLanes; ++l) {
    dst[l] = BucketCell(below0[l], below1[l], left[l], self[l], w_x4[l],
                        w_y4[l], w_14[l]);
  }
}

constexpr GfKernels kScalarTable = {
    "scalar",          ConvRowScalar,      ConvRowNbScalar,
    ScaleRowScalar,    BlockSumScalar,     SubRowScalar,
    AxpyScalar,        ShiftMulAddScalar,  ConvCellScalar,
    BucketCellScalar,  ConvCells4Scalar,   ConvCells4NbScalar,
    ScaleCells4Scalar, BlockSum4Scalar,    SubCells4Scalar,
    BucketCells4Scalar,
};

bool EnvForcesScalar() {
  const char* env = std::getenv("UPDB_FORCE_SCALAR");
  if (env == nullptr || env[0] == '\0') return false;
  return std::strcmp(env, "0") != 0;
}

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::atomic<bool> g_force_scalar{EnvForcesScalar()};

const GfKernels* Select() {
  if (!g_force_scalar.load(std::memory_order_relaxed)) {
    const GfKernels* vec = Avx2Kernels();
    if (vec != nullptr && CpuHasAvx2Fma()) return vec;
  }
  return &kScalarTable;
}

std::atomic<const GfKernels*> g_active{nullptr};

}  // namespace

const GfKernels& ScalarKernels() { return kScalarTable; }

const GfKernels& ActiveKernels() {
  const GfKernels* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = Select();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

const char* ActiveKernelName() { return ActiveKernels().name; }

bool VectorKernelsAvailable() {
  return Avx2Kernels() != nullptr && CpuHasAvx2Fma();
}

void ForceScalarKernels(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
  g_active.store(Select(), std::memory_order_release);
}

}  // namespace updb::gf
