#include "gf/ugf_reference.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "gf/kernels.h"

// The oracle is written as the most literal possible transcription of the
// blocked accumulation order in gf/kernels.h: every destination cell is one
// uniform gather (ConvCell / BucketCell with absent sources passed as 0.0)
// and every row reduction is BlockSumScalar. No dispatch, no fast paths, no
// flat storage — yet bit-identical to UncertainGeneratingFunction and
// UgfBatch on every input, because they all share that one order.

namespace updb {

using gf::BlockSumScalar;
using gf::BucketCell;
using gf::ConvCell;

NestedVectorUgf::NestedVectorUgf(size_t truncate_at)
    : truncate_at_(truncate_at) {
  UPDB_CHECK(truncate_at_ >= 1);
  rows_.resize(1);
  rows_[0].assign(RowSize(0), 0.0);
  rows_[0][0] = 1.0;  // F^0 = 1 x^0 y^0
}

size_t NestedVectorUgf::RowSize(size_t i) const {
  if (truncated()) {
    UPDB_DCHECK(i < truncate_at_);
    return truncate_at_ - i + 1;  // j = 0..k-i, last is the bucket
  }
  return num_factors_ - i + 1;  // j = 0..n-i
}

void NestedVectorUgf::Multiply(double p_lb, double p_ub) {
  p_lb = std::clamp(p_lb, 0.0, 1.0);
  p_ub = std::clamp(p_ub, 0.0, 1.0);
  UPDB_DCHECK(p_lb <= p_ub);
  const double w_x = p_lb;          // definite domination
  const double w_y = p_ub - p_lb;   // undecided
  const double w_1 = 1.0 - p_ub;    // definite non-domination

  const size_t n_old = num_factors_;
  const size_t n_new = n_old + 1;
  if (!truncated()) {
    std::vector<std::vector<double>> next(n_new + 1);
    for (size_t i = 0; i <= n_new; ++i) {
      next[i].assign(n_new - i + 1, 0.0);
      const std::vector<double>* below = i >= 1 ? &rows_[i - 1] : nullptr;
      const std::vector<double>* self = i <= n_old ? &rows_[i] : nullptr;
      for (size_t j = 0; j < next[i].size(); ++j) {
        const double b = below != nullptr ? (*below)[j] : 0.0;
        const double l =
            (self != nullptr && j >= 1) ? (*self)[j - 1] : 0.0;
        const double s =
            (self != nullptr && j < self->size()) ? (*self)[j] : 0.0;
        next[i][j] = ConvCell(b, l, s, w_x, w_y, w_1);
      }
    }
    rows_ = std::move(next);
    num_factors_ = n_new;
    return;
  }

  const size_t k = truncate_at_;
  // Overflow picks up the x-step of row k-1 (read before the pass), its
  // two cells chained in ascending j order.
  if (rows_.size() == k) {
    const std::vector<double>& top = rows_[k - 1];
    overflow_ = std::fma(top[1], w_x, std::fma(top[0], w_x, overflow_));
  }
  const size_t num_rows = std::min(n_new + 1, k);
  std::vector<std::vector<double>> next(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    const size_t bucket = k - i;
    next[i].assign(bucket + 1, 0.0);
    const std::vector<double>* below = i >= 1 ? &rows_[i - 1] : nullptr;
    const std::vector<double>* self = i < rows_.size() ? &rows_[i] : nullptr;
    for (size_t j = 0; j < bucket; ++j) {
      const double b = below != nullptr ? (*below)[j] : 0.0;
      const double l = (self != nullptr && j >= 1) ? (*self)[j - 1] : 0.0;
      const double s = self != nullptr ? (*self)[j] : 0.0;
      next[i][j] = ConvCell(b, l, s, w_x, w_y, w_1);
    }
    // The tail bucket gathers the two clamped x-steps of the longer row
    // below, the clamped y-step of the preceding column, and its own
    // stay/y terms.
    const double b0 = below != nullptr ? (*below)[bucket] : 0.0;
    const double b1 = below != nullptr ? (*below)[bucket + 1] : 0.0;
    const double l = self != nullptr ? (*self)[bucket - 1] : 0.0;
    const double s = self != nullptr ? (*self)[bucket] : 0.0;
    next[i][bucket] = BucketCell(b0, b1, l, s, w_x, w_y, w_1);
  }
  rows_ = std::move(next);
  num_factors_ = n_new;
}

// The bound computations below mirror the flat-buffer implementation
// reduction for reduction (same difference-array construction, same blocked
// row sums) so the two stay bit-identical; only the storage differs.

CountDistributionBounds NestedVectorUgf::Bounds() const {
  const size_t num_ranks =
      truncated() ? std::min(truncate_at_, num_factors_ + 1)
                  : num_factors_ + 1;
  std::vector<double> diff(num_ranks + 1, 0.0);
  for (size_t i = 0; i < rows_.size(); ++i) {
    const std::vector<double>& row = rows_[i];
    diff[i] += BlockSumScalar(row.data(), row.size());
    const size_t sub_len =
        truncated() ? std::min(truncate_at_ - i, num_ranks - i) : row.size();
    for (size_t j = 0; j < sub_len; ++j) diff[i + 1 + j] -= row[j];
  }
  CountDistributionBounds out = CountDistributionBounds::Zero(num_ranks);
  double ub = 0.0;
  for (size_t x = 0; x < num_ranks; ++x) {
    ub += diff[x];
    const double lb = x < rows_.size() ? rows_[x][0] : 0.0;
    out.Set(x, lb, std::min(ub, 1.0));
  }
  out.Normalize();
  return out;
}

ProbabilityBounds NestedVectorUgf::ProbLessThan(size_t m) const {
  if (truncated()) UPDB_CHECK(m <= truncate_at_);
  double lb = 0.0;  // mass of cells whose whole interval [i, i+j] is < m
  double ub = 0.0;  // mass of cells that can realize a count < m (i < m)
  for (size_t i = 0; i < rows_.size() && i < m; ++i) {
    const std::vector<double>& row = rows_[i];
    ub += BlockSumScalar(row.data(), row.size());
    // Bucket cells (truncated mode) mean i+j >= k >= m, so they never
    // join the lower bound.
    const size_t full = truncated() ? truncate_at_ - i : row.size();
    lb += BlockSumScalar(row.data(), std::min(full, m - i));
  }
  ProbabilityBounds out{lb, ub};
  out.Normalize();
  return out;
}

double NestedVectorUgf::Coefficient(size_t i, size_t j) const {
  if (i >= rows_.size() || j >= rows_[i].size()) return 0.0;
  return rows_[i][j];
}

}  // namespace updb
