#include "gf/ugf_reference.h"

#include <algorithm>

#include "common/check.h"

namespace updb {

NestedVectorUgf::NestedVectorUgf(size_t truncate_at)
    : truncate_at_(truncate_at) {
  UPDB_CHECK(truncate_at_ >= 1);
  rows_.resize(1);
  rows_[0].assign(RowSize(0), 0.0);
  rows_[0][0] = 1.0;  // F^0 = 1 x^0 y^0
}

size_t NestedVectorUgf::RowSize(size_t i) const {
  if (truncated()) {
    UPDB_DCHECK(i < truncate_at_);
    return truncate_at_ - i + 1;  // j = 0..k-i, last is the bucket
  }
  return num_factors_ - i + 1;  // j = 0..n-i
}

void NestedVectorUgf::Multiply(double p_lb, double p_ub) {
  p_lb = std::clamp(p_lb, 0.0, 1.0);
  p_ub = std::clamp(p_ub, 0.0, 1.0);
  UPDB_DCHECK(p_lb <= p_ub);
  const double w_x = p_lb;          // definite domination
  const double w_y = p_ub - p_lb;   // undecided
  const double w_1 = 1.0 - p_ub;    // definite non-domination

  const size_t n_new = num_factors_ + 1;
  if (!truncated()) {
    std::vector<std::vector<double>> next(n_new + 1);
    for (size_t i = 0; i <= n_new; ++i) next[i].assign(n_new - i + 1, 0.0);
    for (size_t i = 0; i < rows_.size(); ++i) {
      for (size_t j = 0; j < rows_[i].size(); ++j) {
        const double m = rows_[i][j];
        if (m == 0.0) continue;
        next[i][j] += m * w_1;
        next[i + 1][j] += m * w_x;
        next[i][j + 1] += m * w_y;
      }
    }
    rows_ = std::move(next);
    num_factors_ = n_new;
    return;
  }

  const size_t k = truncate_at_;
  const size_t num_rows = std::min(n_new + 1, k);
  std::vector<std::vector<double>> next(num_rows);
  for (size_t i = 0; i < num_rows; ++i) next[i].assign(k - i + 1, 0.0);
  double next_overflow = overflow_;  // (w_x + w_y + w_1) == 1 keeps it put
  for (size_t i = 0; i < rows_.size(); ++i) {
    const size_t bucket = k - i;
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      const double m = rows_[i][j];
      if (m == 0.0) continue;
      // Stay: same cell (a bucket cell remains a bucket cell).
      next[i][j] += m * w_1;
      // y: one more undecided variable; clamp into the row's bucket.
      next[i][std::min(j + 1, bucket)] += m * w_y;
      // x: one more definite dominator; row i+1 or the overflow cell.
      if (i + 1 >= k) {
        next_overflow += m * w_x;
      } else {
        next[i + 1][std::min(j, k - (i + 1))] += m * w_x;
      }
    }
  }
  rows_ = std::move(next);
  overflow_ = next_overflow;
  num_factors_ = n_new;
}

// The bound computations below intentionally mirror the flat-buffer
// implementation cell for cell (same difference-array construction, same
// iteration order) so the two stay bit-identical; only the storage differs.

CountDistributionBounds NestedVectorUgf::Bounds() const {
  const size_t num_ranks =
      truncated() ? std::min(truncate_at_, num_factors_ + 1)
                  : num_factors_ + 1;
  std::vector<double> diff(num_ranks + 1, 0.0);
  for (size_t i = 0; i < rows_.size(); ++i) {
    const size_t bucket = truncated() ? truncate_at_ - i : SIZE_MAX;
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      const double m = rows_[i][j];
      if (m == 0.0) continue;
      diff[i] += m;
      if (j != bucket && i + j + 1 <= num_ranks) diff[i + j + 1] -= m;
    }
  }
  CountDistributionBounds out = CountDistributionBounds::Zero(num_ranks);
  double ub = 0.0;
  for (size_t x = 0; x < num_ranks; ++x) {
    ub += diff[x];
    const double lb = x < rows_.size() ? rows_[x][0] : 0.0;
    out.Set(x, lb, std::min(ub, 1.0));
  }
  out.Normalize();
  return out;
}

ProbabilityBounds NestedVectorUgf::ProbLessThan(size_t m) const {
  if (truncated()) UPDB_CHECK(m <= truncate_at_);
  double lb = 0.0;  // mass of cells whose whole interval [i, i+j] is < m
  double ub = 0.0;  // mass of cells that can realize a count < m (i < m)
  for (size_t i = 0; i < rows_.size(); ++i) {
    const size_t bucket = truncated() ? truncate_at_ - i : SIZE_MAX;
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      const double mass = rows_[i][j];
      if (mass == 0.0) continue;
      if (j != bucket && i + j < m) lb += mass;  // bucket: i+j >= k >= m
      if (i < m) ub += mass;
    }
  }
  ProbabilityBounds out{lb, ub};
  out.Normalize();
  return out;
}

double NestedVectorUgf::Coefficient(size_t i, size_t j) const {
  if (i >= rows_.size() || j >= rows_[i].size()) return 0.0;
  return rows_[i][j];
}

}  // namespace updb
