// Copyright 2026 The updb Authors.
// Lane-batched uncertain generating functions. UgfBatch evaluates up to
// kLanes independent factor sequences of the same length in one pass over
// one structure-of-arrays workspace: cell (i, j) of lane l lives at
// [cell_index * kLanes + l], so every coefficient cell is exactly one
// vector register wide and the convolution / reduction kernels amortize
// their loads across the whole lane group. The IDCA refinement loop stages
// up to kLanes (B', R') partition pairs per chunk into one batch instead of
// rebuilding a scalar UGF per pair.
//
// Bit-identity: every lane produces exactly the bits the scalar
// UncertainGeneratingFunction would produce for the same factor sequence.
// The batch follows the same blocked accumulation order (gf/kernels.h) via
// the same dispatch table, and the per-lane weights of degenerate factors
// multiply through as exact no-ops (weights 0 and 1 under the fused gather
// preserve every bit), so materializing what the scalar path tracks
// symbolically changes nothing — enforced by EXPECT_EQ sweeps in
// tests/ugf_equivalence_test.cc.

#ifndef UPDB_GF_UGF_BATCH_H_
#define UPDB_GF_UGF_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "gf/aligned_vec.h"
#include "gf/count_bounds.h"
#include "gf/kernels.h"

namespace updb {

/// Up-to-kLanes uncertain generating functions advanced in lockstep.
class UgfBatch {
 public:
  static constexpr size_t kLanes = gf::kSoaLanes;
  static constexpr size_t kNoTruncation = std::numeric_limits<size_t>::max();

  /// Rewinds every lane to F = 1 under the given truncation, keeping all
  /// buffer capacity (the workspace-reuse contract of the scalar UGF).
  /// `active_lanes` (1..kLanes) is how many lanes carry real factor
  /// sequences; the rest are padded with neutral (0,0) factors internally
  /// and must never be emitted.
  void Begin(size_t truncate_at, size_t active_lanes);

  /// Multiplies factor `num_factors()` of every lane: lane l takes the
  /// probability bracket [lb4[l], ub4[l]]. Entries at l >= active_lanes are
  /// ignored. Never allocates at or below the workspace high-water mark.
  void MultiplyFactors(const double* lb4, const double* ub4);

  size_t num_factors() const { return num_factors_; }
  size_t active_lanes() const { return active_lanes_; }

  /// Ranks Bounds()/EmitBounds cover — same rule as the scalar UGF.
  size_t num_ranks() const {
    return truncated() ? std::min(truncate_at_, num_factors_ + 1)
                       : num_factors_ + 1;
  }

  /// Lifetime per-lane Multiply odometer: MultiplyFactors adds one count
  /// per active lane, so a pair evaluated through the batch reports the
  /// same ugf_multiplies it would report through the scalar UGF.
  uint64_t total_multiplies() const { return total_multiplies_; }

  /// Computes per-rank bounds for every lane in one pass over the shared
  /// coefficients. Read them out per lane with EmitBounds.
  void FinishBounds();

  /// Writes lane `lane`'s per-rank bounds (identical bits to the scalar
  /// UGF's Bounds()) into `out`, which must have num_ranks() ranks.
  void EmitBounds(size_t lane, CountDistributionBounds* out) const;

  /// Bounds on P(Count < m) for every lane in one pass; fills
  /// out[0..kLanes). In truncated mode requires m <= k.
  void ProbLessThanAll(size_t m, ProbabilityBounds* out) const;

  /// Lane `lane`'s coefficient c_{i,j} / overflow mass — test hooks
  /// mirroring the scalar UGF accessors.
  double Coefficient(size_t lane, size_t i, size_t j) const;
  double OverflowMass(size_t lane) const { return overflow_[lane]; }

 private:
  bool truncated() const { return truncate_at_ != kNoTruncation; }
  size_t CoreRowOffset(size_t i) const {
    return i * (core_n_ + 1) - i * (i - 1) / 2;
  }
  size_t TruncRowOffset(size_t i) const {
    return i * (truncate_at_ + 1) - i * (i - 1) / 2;
  }
  void MultiplyUntruncated(const double* w_x4, const double* w_y4,
                           const double* w_14);
  void MultiplyTruncated(const double* w_x4, const double* w_y4,
                         const double* w_14);

  size_t truncate_at_ = kNoTruncation;
  size_t active_lanes_ = 0;
  size_t num_factors_ = 0;
  uint64_t total_multiplies_ = 0;  // lifetime, survives Begin()

  // Untruncated symbolic state — applies to the lane group as a whole and
  // is only taken when every active lane degenerates the same way (see
  // MultiplyFactors); otherwise degenerate lanes multiply through
  // materially, which the gather makes bit-exact.
  size_t core_n_ = 0;
  size_t ones_shift_ = 0;
  size_t zeros_pad_ = 0;
  size_t num_rows_ = 1;  // truncated mode

  gf::AlignedVec flat_;     // SoA coefficients: cell c, lane l at [c*4+l]
  gf::AlignedVec scratch_;  // out-of-place multiply target
  double overflow_[kLanes] = {};

  // FinishBounds staging (SoA per rank) + its difference-array scratch.
  gf::AlignedVec bounds_lb_;
  gf::AlignedVec bounds_ub_;
  gf::AlignedVec diff_;
  bool bounds_ready_ = false;
};

}  // namespace updb

#endif  // UPDB_GF_UGF_BATCH_H_
