// Copyright 2026 The updb Authors.
// AVX2+FMA implementations of the GfKernels table. This is the only
// translation unit compiled with -mavx2 -mfma (set per-file in
// CMakeLists.txt), so nothing here may be called unless cpuid reported
// AVX2+FMA — the dispatch in gf/kernels.cc guarantees that.
//
// Every kernel reproduces the blocked accumulation order documented in
// gf/kernels.h bit-for-bit: gathered convolution cells are fused-multiply-add
// chains (std::fma and _mm256_fmadd_pd are both correctly rounded, so the
// scalar tails below can use the very same ConvCell/BucketCell helpers as
// the scalar table), and row sums keep element j in accumulator j mod 4 —
// which is exactly what one 4-lane vector accumulator over aligned 4-chunks
// does, with the (a0+a1)+(a2+a3) combine applied at the end.

#include "gf/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace updb::gf {

namespace {

void ConvRowAvx2(double* dst, const double* below, const double* left,
                 const double* self, size_t n, double w_x, double w_y,
                 double w_1) {
  const __m256d vx = _mm256_set1_pd(w_x);
  const __m256d vy = _mm256_set1_pd(w_y);
  const __m256d v1 = _mm256_set1_pd(w_1);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d t = _mm256_mul_pd(_mm256_loadu_pd(below + j), vx);
    t = _mm256_fmadd_pd(_mm256_loadu_pd(left + j), vy, t);
    t = _mm256_fmadd_pd(_mm256_loadu_pd(self + j), v1, t);
    _mm256_storeu_pd(dst + j, t);
  }
  for (; j < n; ++j) {
    dst[j] = ConvCell(below[j], left[j], self[j], w_x, w_y, w_1);
  }
}

void ConvRowNbAvx2(double* dst, const double* left, const double* self,
                   size_t n, double w_y, double w_1) {
  const __m256d vy = _mm256_set1_pd(w_y);
  const __m256d v1 = _mm256_set1_pd(w_1);
  const __m256d zero = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d t = _mm256_fmadd_pd(_mm256_loadu_pd(left + j), vy, zero);
    t = _mm256_fmadd_pd(_mm256_loadu_pd(self + j), v1, t);
    _mm256_storeu_pd(dst + j, t);
  }
  for (; j < n; ++j) {
    dst[j] = ConvCell(0.0, left[j], self[j], 0.0, w_y, w_1);
  }
}

void ScaleRowAvx2(double* dst, const double* src, size_t n, double w) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(dst + j, _mm256_mul_pd(_mm256_loadu_pd(src + j), vw));
  }
  for (; j < n; ++j) dst[j] = src[j] * w;
}

double BlockSumAvx2(const double* x, size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    vacc = _mm256_add_pd(vacc, _mm256_loadu_pd(x + j));
  }
  alignas(32) double acc[4];
  _mm256_store_pd(acc, vacc);
  for (; j < n; ++j) acc[j & 3] += x[j];
  return CombineBlockSums(acc);
}

void SubRowAvx2(double* dst, const double* src, size_t n) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        dst + j,
        _mm256_sub_pd(_mm256_loadu_pd(dst + j), _mm256_loadu_pd(src + j)));
  }
  for (; j < n; ++j) dst[j] -= src[j];
}

void AxpyAvx2(double* dst, const double* src, size_t n, double w) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(dst + j, _mm256_fmadd_pd(_mm256_loadu_pd(src + j), vw,
                                              _mm256_loadu_pd(dst + j)));
  }
  for (; j < n; ++j) dst[j] = std::fma(src[j], w, dst[j]);
}

void ShiftMulAddAvx2(double* x, size_t n, double a, double b) {
  if (n == 0) return;
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  // Descending so each x[k-1] is read before it is overwritten; a vector
  // step writes x[k-3..k] from the pre-step x[k-4..k].
  size_t k = n - 1;
  while (k >= 4) {
    const __m256d self = _mm256_loadu_pd(x + k - 3);
    const __m256d left = _mm256_loadu_pd(x + k - 4);
    _mm256_storeu_pd(x + k - 3,
                     _mm256_fmadd_pd(left, va, _mm256_mul_pd(self, vb)));
    k -= 4;
  }
  for (; k >= 1; --k) x[k] = std::fma(x[k - 1], a, x[k] * b);
  x[0] *= b;
}

// Same arithmetic as the inline helpers, generated in THIS translation
// unit so the std::fma chains compile to vfmadd instructions — the point
// of routing row-edge cells through the table.
double ConvCellAvx2(double below, double left, double self, double w_x,
                    double w_y, double w_1) {
  return ConvCell(below, left, self, w_x, w_y, w_1);
}

double BucketCellAvx2(double below0, double below1, double left, double self,
                      double w_x, double w_y, double w_1) {
  return BucketCell(below0, below1, left, self, w_x, w_y, w_1);
}

void ConvCells4Avx2(double* dst, const double* below, const double* left,
                    const double* self, size_t ncells, const double* w_x4,
                    const double* w_y4, const double* w_14) {
  const __m256d vx = _mm256_loadu_pd(w_x4);
  const __m256d vy = _mm256_loadu_pd(w_y4);
  const __m256d v1 = _mm256_loadu_pd(w_14);
  for (size_t c = 0; c < ncells; ++c) {
    const size_t i = c * kSoaLanes;
    __m256d t = _mm256_mul_pd(_mm256_loadu_pd(below + i), vx);
    t = _mm256_fmadd_pd(_mm256_loadu_pd(left + i), vy, t);
    t = _mm256_fmadd_pd(_mm256_loadu_pd(self + i), v1, t);
    _mm256_storeu_pd(dst + i, t);
  }
}

void ConvCells4NbAvx2(double* dst, const double* left, const double* self,
                      size_t ncells, const double* w_y4, const double* w_14) {
  const __m256d vy = _mm256_loadu_pd(w_y4);
  const __m256d v1 = _mm256_loadu_pd(w_14);
  const __m256d zero = _mm256_setzero_pd();
  for (size_t c = 0; c < ncells; ++c) {
    const size_t i = c * kSoaLanes;
    __m256d t = _mm256_fmadd_pd(_mm256_loadu_pd(left + i), vy, zero);
    t = _mm256_fmadd_pd(_mm256_loadu_pd(self + i), v1, t);
    _mm256_storeu_pd(dst + i, t);
  }
}

void ScaleCells4Avx2(double* dst, const double* src, size_t ncells,
                     const double* w4) {
  const __m256d vw = _mm256_loadu_pd(w4);
  for (size_t c = 0; c < ncells; ++c) {
    const size_t i = c * kSoaLanes;
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(src + i), vw));
  }
}

void BlockSum4Avx2(const double* x, size_t ncells, double* out4) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t c = 0;
  for (; c + 4 <= ncells; c += 4) {
    const size_t i = c * kSoaLanes;
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + kSoaLanes));
    acc2 = _mm256_add_pd(acc2, _mm256_loadu_pd(x + i + 2 * kSoaLanes));
    acc3 = _mm256_add_pd(acc3, _mm256_loadu_pd(x + i + 3 * kSoaLanes));
  }
  for (; c < ncells; ++c) {
    const __m256d v = _mm256_loadu_pd(x + c * kSoaLanes);
    switch (c & 3) {
      case 0:
        acc0 = _mm256_add_pd(acc0, v);
        break;
      case 1:
        acc1 = _mm256_add_pd(acc1, v);
        break;
      case 2:
        acc2 = _mm256_add_pd(acc2, v);
        break;
      default:
        acc3 = _mm256_add_pd(acc3, v);
        break;
    }
  }
  _mm256_storeu_pd(out4, _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                       _mm256_add_pd(acc2, acc3)));
}

void SubCells4Avx2(double* dst, const double* src, size_t ncells) {
  SubRowAvx2(dst, src, ncells * kSoaLanes);
}

void BucketCells4Avx2(double* dst, const double* below0, const double* below1,
                      const double* left, const double* self,
                      const double* w_x4, const double* w_y4,
                      const double* w_14) {
  const __m256d vx = _mm256_loadu_pd(w_x4);
  const __m256d vy = _mm256_loadu_pd(w_y4);
  const __m256d v1 = _mm256_loadu_pd(w_14);
  const __m256d vs = _mm256_loadu_pd(self);
  __m256d t = _mm256_mul_pd(_mm256_loadu_pd(below0), vx);
  t = _mm256_fmadd_pd(_mm256_loadu_pd(below1), vx, t);
  t = _mm256_fmadd_pd(_mm256_loadu_pd(left), vy, t);
  t = _mm256_fmadd_pd(vs, v1, t);
  t = _mm256_fmadd_pd(vs, vy, t);
  _mm256_storeu_pd(dst, t);
}

constexpr GfKernels kAvx2Table = {
    "avx2+fma",       ConvRowAvx2,      ConvRowNbAvx2,   ScaleRowAvx2,
    BlockSumAvx2,     SubRowAvx2,       AxpyAvx2,        ShiftMulAddAvx2,
    ConvCellAvx2,     BucketCellAvx2,   ConvCells4Avx2,  ConvCells4NbAvx2,
    ScaleCells4Avx2,  BlockSum4Avx2,    SubCells4Avx2,   BucketCells4Avx2,
};

}  // namespace

const GfKernels* Avx2Kernels() { return &kAvx2Table; }

}  // namespace updb::gf

#else  // !x86

namespace updb::gf {

const GfKernels* Avx2Kernels() { return nullptr; }

}  // namespace updb::gf

#endif
