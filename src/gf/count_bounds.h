// Copyright 2026 The updb Authors.
// Container for the conservatively/progressively bounded PDF of an integer
// count random variable (the probabilistic domination count, Definition 3).
// DomCountLB / DomCountUB of Algorithm 1 are a CountDistributionBounds.

#ifndef UPDB_GF_COUNT_BOUNDS_H_
#define UPDB_GF_COUNT_BOUNDS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "domination/pdom.h"

namespace updb {

/// Per-rank probability bounds lb[k] <= P(Count = k) <= ub[k] for
/// k = 0..num_ranks-1, plus derived quantities.
class CountDistributionBounds {
 public:
  /// Vacuous bounds [0, 1] for every rank.
  explicit CountDistributionBounds(size_t num_ranks);

  /// All-zero bounds, the identity for AccumulateWeighted.
  static CountDistributionBounds Zero(size_t num_ranks);

  /// Exact distribution: lb == ub == pdf.
  static CountDistributionBounds Exact(std::vector<double> pdf);

  size_t num_ranks() const { return lb_.size(); }
  double lb(size_t k) const { return lb_[k]; }
  double ub(size_t k) const { return ub_[k]; }
  void Set(size_t k, double lb, double ub);

  /// Sum_k (ub[k] - lb[k]) — the paper's "accumulated uncertainty" metric
  /// (Figure 6(b)); 0 means the distribution is known exactly.
  double TotalUncertainty() const;

  /// Bounds on P(Count < k). Combines the per-rank sums with the
  /// complement (1 - P(Count >= k)) for the tightest derivable bracket.
  ProbabilityBounds ProbLessThan(size_t k) const;

  /// Bounds on the expected rank E[Count + 1] (Corollary 6), obtained by
  /// distributing the not-yet-assigned probability mass to the smallest
  /// (for the lower bound) or largest (upper bound) admissible ranks.
  ProbabilityBounds ExpectedRank() const;

  /// Returns a copy embedded into an array of `total_ranks` ranks with the
  /// counts shifted up by `shift` (the ShiftRight of Algorithm 1, applied
  /// for the CompleteDominationCount). Ranks outside the embedded window
  /// get exact probability 0. Requires shift + num_ranks() <= total_ranks.
  CountDistributionBounds ShiftRight(size_t shift, size_t total_ranks) const;

  /// this += weight * other (per-rank, both lb and ub) — the disjunctive
  /// worlds aggregation of Section IV-E. Rank counts must match.
  void AccumulateWeighted(const CountDistributionBounds& other, double weight);

  /// Clamps bounds into [0, 1] and repairs lb <= ub per rank.
  void Normalize();

  /// True if `pdf` (a full PDF over the same ranks) lies within bounds,
  /// allowing `tol` slack per rank; used by tests.
  bool Brackets(std::span<const double> pdf, double tol) const;

 private:
  std::vector<double> lb_;
  std::vector<double> ub_;
};

}  // namespace updb

#endif  // UPDB_GF_COUNT_BOUNDS_H_
