// Copyright 2026 The updb Authors.
// Runtime-dispatched compute kernels for the probability layer: the UGF
// coefficient convolution, the Bounds/ProbLessThan prefix reductions, the
// Poisson-binomial in-place convolution and the CountDistributionBounds
// element-wise accumulations all route through one function-pointer table
// (GfKernels). One table is the portable scalar implementation; a second,
// compiled in its own translation unit with -mavx2 -mfma (gf/kernels_avx2.cc),
// is selected at startup when cpuid reports AVX2+FMA. `UPDB_FORCE_SCALAR=1`
// (or ForceScalarKernels(true)) pins the scalar table; the selected table's
// name is surfaced through /statusz and the updb_cli banners.
//
// ## The blocked accumulation order (bit-identity contract)
//
// Floating-point addition is not associative, so the repo fixes ONE
// accumulation order and implements it identically in the scalar kernels,
// the AVX2+FMA kernels, the per-lane batched (SoA) kernels, and the
// nested-vector reference oracle. Equivalence tests therefore compare with
// EXPECT_EQ, never tolerances:
//
//  1. Convolution cells are *gathered*: each destination cell is computed
//     from its (at most three) source cells in one fused chain
//
//         t = fma(self, w1, fma(left, wy, below * wx))
//
//     with an absent source contributing exactly +0.0 (ConvCell below;
//     truncated-mode tail buckets use the longer fixed chain BucketCell).
//     fma() is correctly rounded, so the scalar std::fma chain and the
//     vector _mm256_fmadd_pd chain produce the same bits on every input,
//     and there is no cross-cell accumulation to reassociate at all.
//  2. Row reductions use a 4-way interleaved blocked sum: element j is
//     added into accumulator j mod 4 (in ascending j order) and the four
//     accumulators combine as (a0 + a1) + (a2 + a3). One 4-lane vector
//     accumulator with the same final combine is bit-identical by
//     construction — and so is the per-lane form the SoA batch uses.
//  3. Weighted accumulation (axpy) is element-wise dst = fma(src, w, dst);
//     range subtraction is element-wise dst -= src. Element-wise ops are
//     trivially order-free.
//
// All coefficient masses are non-negative, so adding a +0.0 contribution
// (absent source, zero-mass cell, or padding beyond a shorter logical row)
// never changes an accumulator bit — which is what makes the degenerate
// (0,0)/(1,1) fast paths and the batch's materialized zero rows bit-exact
// shortcuts of the general path rather than waived special cases.

#ifndef UPDB_GF_KERNELS_H_
#define UPDB_GF_KERNELS_H_

#include <cmath>
#include <cstddef>

namespace updb::gf {

/// Lane count of the batched (structure-of-arrays) kernels; one AVX2
/// vector of doubles. SoA buffers store cell c of lane l at [c*4 + l].
inline constexpr size_t kSoaLanes = 4;

/// Contract item 1: the gathered convolution cell. Absent sources must be
/// passed as exactly 0.0.
inline double ConvCell(double below, double left, double self, double w_x,
                       double w_y, double w_1) {
  return std::fma(self, w_1, std::fma(left, w_y, below * w_x));
}

/// Truncated-mode tail-bucket cell: absorbs the clamped x-steps of the two
/// below-row columns spilling into the bucket, the clamped y-step of the
/// preceding column, and the cell's own stay/y terms — in that fixed order.
inline double BucketCell(double below0, double below1, double left,
                         double self, double w_x, double w_y, double w_1) {
  double t = below0 * w_x;
  t = std::fma(below1, w_x, t);
  t = std::fma(left, w_y, t);
  t = std::fma(self, w_1, t);
  t = std::fma(self, w_y, t);
  return t;
}

/// Contract item 2: final combine of the four interleaved accumulators.
inline double CombineBlockSums(const double acc[4]) {
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

/// Contract item 2 in scalar form — the definition the vector kernels and
/// the reference oracle must reproduce bit-for-bit.
inline double BlockSumScalar(const double* x, size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < n; ++j) acc[j & 3] += x[j];
  return CombineBlockSums(acc);
}

/// The dispatch table. Every entry implements the blocked accumulation
/// order above; tables differ only in instruction selection.
struct GfKernels {
  /// Selected-path name, e.g. "scalar" or "avx2+fma".
  const char* name;

  // ---- row kernels (dense interior of one coefficient row).
  /// dst[j] = ConvCell(below[j], left[j], self[j]) for j in [0, n).
  void (*conv_row)(double* dst, const double* below, const double* left,
                   const double* self, size_t n, double w_x, double w_y,
                   double w_1);
  /// dst[j] = ConvCell(0, left[j], self[j]) for j in [0, n) (row 0 has no
  /// below-row).
  void (*conv_row_nb)(double* dst, const double* left, const double* self,
                      size_t n, double w_y, double w_1);
  /// dst[j] = src[j] * w for j in [0, n) (a fresh row fed only by x-steps:
  /// ConvCell(src, 0, 0) reduces to exactly src * w_x).
  void (*scale_row)(double* dst, const double* src, size_t n, double w);
  /// Blocked 4-way interleaved sum of x[0..n).
  double (*block_sum)(const double* x, size_t n);
  /// dst[j] -= src[j] for j in [0, n).
  void (*sub_row)(double* dst, const double* src, size_t n);
  /// dst[j] = fma(src[j], w, dst[j]) for j in [0, n).
  void (*axpy)(double* dst, const double* src, size_t n, double w);
  /// In-place descending two-term convolution (Poisson binomial):
  /// x[k] = fma(x[k-1], a, x[k] * b) for k = n-1..1, then x[0] *= b.
  void (*shift_mul_add)(double* x, size_t n, double a, double b);

  // ---- single-cell kernels (row-edge peeling). Arithmetic identical to
  // the inline ConvCell/BucketCell helpers; routed through the table so
  // the hot edge cells of every row execute in the vector translation
  // unit, where std::fma inlines to an FMA instruction instead of the
  // libm call baseline TUs emit.
  double (*conv_cell)(double below, double left, double self, double w_x,
                      double w_y, double w_1);
  double (*bucket_cell)(double below0, double below1, double left,
                        double self, double w_x, double w_y, double w_1);

  // ---- SoA kernels (kSoaLanes lanes per cell, per-lane weights). Every
  // cell is exactly one vector, so there is never a remainder to peel.
  /// Per cell c, lane l: dst[c*4+l] =
  /// ConvCell(below[c*4+l], left[c*4+l], self[c*4+l]) with lane weights.
  void (*conv_cells4)(double* dst, const double* below, const double* left,
                      const double* self, size_t ncells, const double* w_x4,
                      const double* w_y4, const double* w_14);
  /// No-below variant of conv_cells4.
  void (*conv_cells4_nb)(double* dst, const double* left, const double* self,
                         size_t ncells, const double* w_y4,
                         const double* w_14);
  /// Per cell c, lane l: dst[c*4+l] = src[c*4+l] * w4[l].
  void (*scale_cells4)(double* dst, const double* src, size_t ncells,
                       const double* w4);
  /// Per-lane blocked sum over cells: out4[l] = BlockSum of x[c*4+l].
  void (*block_sum4)(const double* x, size_t ncells, double* out4);
  /// Per cell c, lane l: dst[c*4+l] -= src[c*4+l].
  void (*sub_cells4)(double* dst, const double* src, size_t ncells);
  /// One tail-bucket cell (4 lanes): dst[l] = BucketCell(below0[l],
  /// below1[l], left[l], self[l]) with lane weights.
  void (*bucket_cells4)(double* dst, const double* below0,
                        const double* below1, const double* left,
                        const double* self, const double* w_x4,
                        const double* w_y4, const double* w_14);
};

/// The portable scalar table — the bit-exact oracle for every other table.
const GfKernels& ScalarKernels();

/// The table selected for this process: the AVX2+FMA table when the CPU
/// supports both and no override is active, else the scalar table. The
/// selection is cached; reading it is one relaxed atomic load.
const GfKernels& ActiveKernels();

/// ActiveKernels().name.
const char* ActiveKernelName();

/// True when an AVX2+FMA table was compiled in and the CPU supports it
/// (regardless of any forced-scalar override).
bool VectorKernelsAvailable();

/// Pins (or unpins) the scalar table, overriding cpuid selection — the
/// in-process hook behind the UPDB_FORCE_SCALAR environment variable,
/// also used by the equivalence tests and the scalar-vs-vector bench rows.
void ForceScalarKernels(bool force);

/// Defined in gf/kernels_avx2.cc: the vector table, or nullptr when the
/// translation unit was built for a non-x86 target.
const GfKernels* Avx2Kernels();

}  // namespace updb::gf

#endif  // UPDB_GF_KERNELS_H_
