#include "gf/count_bounds.h"

#include <algorithm>

#include "gf/kernels.h"

namespace updb {

CountDistributionBounds::CountDistributionBounds(size_t num_ranks)
    : lb_(num_ranks, 0.0), ub_(num_ranks, 1.0) {}

CountDistributionBounds CountDistributionBounds::Zero(size_t num_ranks) {
  CountDistributionBounds b(num_ranks);
  std::fill(b.ub_.begin(), b.ub_.end(), 0.0);
  return b;
}

CountDistributionBounds CountDistributionBounds::Exact(
    std::vector<double> pdf) {
  CountDistributionBounds b(pdf.size());
  b.lb_ = pdf;
  b.ub_ = std::move(pdf);
  return b;
}

void CountDistributionBounds::Set(size_t k, double lb, double ub) {
  UPDB_DCHECK(k < lb_.size());
  lb_[k] = lb;
  ub_[k] = ub;
}

double CountDistributionBounds::TotalUncertainty() const {
  double u = 0.0;
  for (size_t k = 0; k < lb_.size(); ++k) u += ub_[k] - lb_[k];
  return u;
}

ProbabilityBounds CountDistributionBounds::ProbLessThan(size_t k) const {
  // The count's support is 0..num_ranks-1, so any threshold at or beyond
  // the rank window is certain: P(Count < k) = 1. Clamping k to the window
  // instead would pit a vacuous below-sum against the exact complement and
  // collapse the broken bracket to a meaningless midpoint.
  if (k >= lb_.size()) return ProbabilityBounds{1.0, 1.0};
  const gf::GfKernels& K = gf::ActiveKernels();
  const double sum_lb_below = K.block_sum(lb_.data(), k);
  const double sum_ub_below = K.block_sum(ub_.data(), k);
  const double sum_lb_above = K.block_sum(lb_.data() + k, lb_.size() - k);
  const double sum_ub_above = K.block_sum(ub_.data() + k, ub_.size() - k);
  ProbabilityBounds out;
  out.lb = std::max(sum_lb_below, 1.0 - sum_ub_above);
  out.ub = std::min(sum_ub_below, 1.0 - sum_lb_above);
  out.Normalize();
  return out;
}

ProbabilityBounds CountDistributionBounds::ExpectedRank() const {
  const size_t n = lb_.size();
  // Baseline: every rank takes its guaranteed mass lb[k].
  double assigned = 0.0;
  double base = 0.0;
  for (size_t k = 0; k < n; ++k) {
    assigned += lb_[k];
    base += lb_[k] * static_cast<double>(k + 1);
  }
  double free_mass = std::clamp(1.0 - assigned, 0.0, 1.0);

  // Lower bound: pour the free mass into the smallest ranks first, capped
  // by each rank's remaining capacity ub[k] - lb[k].
  double lo = base, remaining = free_mass;
  for (size_t k = 0; k < n && remaining > 0.0; ++k) {
    const double take = std::min(remaining, std::max(0.0, ub_[k] - lb_[k]));
    lo += take * static_cast<double>(k + 1);
    remaining -= take;
  }
  // Upper bound: largest ranks first.
  double hi = base;
  remaining = free_mass;
  for (size_t k = n; k-- > 0 && remaining > 0.0;) {
    const double take = std::min(remaining, std::max(0.0, ub_[k] - lb_[k]));
    hi += take * static_cast<double>(k + 1);
    remaining -= take;
  }
  return ProbabilityBounds{lo, hi};
}

CountDistributionBounds CountDistributionBounds::ShiftRight(
    size_t shift, size_t total_ranks) const {
  UPDB_CHECK(shift + num_ranks() <= total_ranks);
  CountDistributionBounds out = Zero(total_ranks);
  for (size_t k = 0; k < num_ranks(); ++k) {
    out.lb_[shift + k] = lb_[k];
    out.ub_[shift + k] = ub_[k];
  }
  return out;
}

void CountDistributionBounds::AccumulateWeighted(
    const CountDistributionBounds& other, double weight) {
  UPDB_CHECK(other.num_ranks() == num_ranks());
  UPDB_DCHECK(weight >= 0.0);
  const gf::GfKernels& K = gf::ActiveKernels();
  K.axpy(lb_.data(), other.lb_.data(), lb_.size(), weight);
  K.axpy(ub_.data(), other.ub_.data(), ub_.size(), weight);
}

void CountDistributionBounds::Normalize() {
  for (size_t k = 0; k < lb_.size(); ++k) {
    lb_[k] = std::clamp(lb_[k], 0.0, 1.0);
    ub_[k] = std::clamp(ub_[k], 0.0, 1.0);
    if (lb_[k] > ub_[k]) {
      const double mid = 0.5 * (lb_[k] + ub_[k]);
      lb_[k] = ub_[k] = mid;
    }
  }
}

bool CountDistributionBounds::Brackets(std::span<const double> pdf,
                                       double tol) const {
  if (pdf.size() != lb_.size()) return false;
  for (size_t k = 0; k < pdf.size(); ++k) {
    if (pdf[k] < lb_[k] - tol || pdf[k] > ub_[k] + tol) return false;
  }
  return true;
}

}  // namespace updb
