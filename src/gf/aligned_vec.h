// Copyright 2026 The updb Authors.
// 32-byte-aligned growable double buffer for the generating-function
// workspaces. The vector kernels in gf/kernels_avx2.cc use unaligned loads
// (row starts land at arbitrary offsets inside the triangle), so alignment
// is not required for correctness — but an aligned base keeps whole-buffer
// passes (block sums, SoA batch sweeps) on aligned cache lines and makes
// the first vector of every pass an aligned access.
//
// Same reuse contract as the std::vector it replaced: capacity only ever
// grows, so a Reset()-and-replay of a factor sequence at or below the
// high-water mark performs zero allocations (see tests/ugf_alloc_test.cc,
// which counts aligned operator new calls too).

#ifndef UPDB_GF_ALIGNED_VEC_H_
#define UPDB_GF_ALIGNED_VEC_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <new>
#include <utility>

#include "common/check.h"

namespace updb::gf {

/// Alignment of every workspace buffer, in bytes (one AVX2 vector).
inline constexpr size_t kWorkspaceAlignment = 32;

/// Minimal aligned analogue of std::vector<double> covering exactly the
/// operations the UGF workspaces use.
class AlignedVec {
 public:
  AlignedVec() = default;
  ~AlignedVec() { Free(data_); }

  AlignedVec(const AlignedVec& o) { *this = o; }
  AlignedVec& operator=(const AlignedVec& o) {
    if (this == &o) return *this;
    if (o.size_ > cap_) {
      Free(data_);
      data_ = Allocate(o.size_);
      cap_ = o.size_;
    }
    size_ = o.size_;
    if (size_ > 0) std::memcpy(data_, o.data_, size_ * sizeof(double));
    return *this;
  }

  AlignedVec(AlignedVec&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        cap_(std::exchange(o.cap_, 0)) {}
  AlignedVec& operator=(AlignedVec&& o) noexcept {
    if (this == &o) return *this;
    Free(data_);
    data_ = std::exchange(o.data_, nullptr);
    size_ = std::exchange(o.size_, 0);
    cap_ = std::exchange(o.cap_, 0);
    return *this;
  }

  double* data() { return data_; }
  const double* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }

  double& operator[](size_t i) {
    UPDB_DCHECK(i < size_);
    return data_[i];
  }
  double operator[](size_t i) const {
    UPDB_DCHECK(i < size_);
    return data_[i];
  }

  /// Grows capacity to at least `n`, preserving contents. Never shrinks.
  void reserve(size_t n) {
    if (n <= cap_) return;
    double* grown = Allocate(n);
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(double));
    Free(data_);
    data_ = grown;
    cap_ = n;
  }

  /// Discards contents; becomes `n` copies of `v`.
  void assign(size_t n, double v) {
    if (n > cap_) {
      Free(data_);
      data_ = Allocate(n);
      cap_ = n;
    }
    size_ = n;
    std::fill(data_, data_ + n, v);
  }

  /// Resizes to `n` without initializing newly exposed slots — for scratch
  /// targets whose every cell the caller is about to overwrite.
  void resize_uninitialized(size_t n) {
    reserve(n);
    size_ = n;
  }

  /// Resizes to `n`, preserving the prefix and filling new slots with `v`.
  void resize(size_t n, double v) {
    reserve(n);
    if (n > size_) std::fill(data_ + size_, data_ + n, v);
    size_ = n;
  }

  void swap(AlignedVec& o) noexcept {
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
    std::swap(cap_, o.cap_);
  }

 private:
  static double* Allocate(size_t n) {
    return static_cast<double*>(::operator new(
        n * sizeof(double), std::align_val_t{kWorkspaceAlignment}));
  }
  static void Free(double* p) {
    if (p != nullptr) {
      ::operator delete(p, std::align_val_t{kWorkspaceAlignment});
    }
  }

  double* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

}  // namespace updb::gf

#endif  // UPDB_GF_ALIGNED_VEC_H_
