#include "gf/ugf_batch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

// Structure mirror of gf/ugf.cc: the same out-of-place gathered passes and
// the same blocked reductions, with every cell widened to kLanes doubles
// and every scalar weight widened to a per-lane weight vector. Edges with
// an absent source pass a zero lane-vector instead of peeling a scalar
// ConvCell, so the whole pass stays in the SoA kernels.

namespace updb {

using gf::ActiveKernels;
using gf::GfKernels;
using gf::kSoaLanes;

namespace {

alignas(32) constexpr double kZeros4[kSoaLanes] = {0.0, 0.0, 0.0, 0.0};

}  // namespace

void UgfBatch::Begin(size_t truncate_at, size_t active_lanes) {
  UPDB_CHECK(truncate_at >= 1);
  UPDB_CHECK(active_lanes >= 1 && active_lanes <= kLanes);
  truncate_at_ = truncate_at;
  active_lanes_ = active_lanes;
  num_factors_ = 0;
  core_n_ = 0;
  ones_shift_ = 0;
  zeros_pad_ = 0;
  num_rows_ = 1;
  bounds_ready_ = false;
  for (size_t l = 0; l < kLanes; ++l) overflow_[l] = 0.0;
  // Same reuse rule as the scalar UGF: equalize the double-buffer
  // capacities here so replays at or below the high-water mark never
  // allocate inside MultiplyFactors.
  const size_t cap = std::max(flat_.capacity(), scratch_.capacity());
  flat_.reserve(cap);
  scratch_.reserve(cap);
  const size_t row0 = truncated() ? truncate_at_ + 1 : 1;
  flat_.assign(row0 * kLanes, 0.0);
  for (size_t l = 0; l < kLanes; ++l) flat_[l] = 1.0;  // F^0 = 1, all lanes
}

void UgfBatch::MultiplyFactors(const double* lb4, const double* ub4) {
  UPDB_DCHECK(active_lanes_ >= 1);
  total_multiplies_ += active_lanes_;
  bounds_ready_ = false;
  alignas(32) double w_x4[kLanes];
  alignas(32) double w_y4[kLanes];
  alignas(32) double w_14[kLanes];
  bool all_zero = true;  // every active lane a (0,0) factor
  bool all_one = true;   // every active lane a (1,1) factor
  for (size_t l = 0; l < kLanes; ++l) {
    double lb = 0.0, ub = 0.0;  // padding lanes carry neutral (0,0)
    if (l < active_lanes_) {
      lb = std::clamp(lb4[l], 0.0, 1.0);
      ub = std::clamp(ub4[l], 0.0, 1.0);
      UPDB_DCHECK(lb <= ub);
      all_zero = all_zero && ub == 0.0;
      all_one = all_one && lb == 1.0;
    }
    w_x4[l] = lb;
    w_y4[l] = ub - lb;
    w_14[l] = 1.0 - ub;
  }

  if (!truncated()) {
    // Group-wide symbolic fast paths, only when every active lane
    // degenerates the same way; a mixed group multiplies through
    // materially, with the degenerate lanes' exact-0/1 weights preserving
    // their coefficients bit for bit.
    if (all_zero) {
      ++zeros_pad_;
      ++num_factors_;
      return;
    }
    if (all_one) {
      ++ones_shift_;
      ++num_factors_;
      return;
    }
    MultiplyUntruncated(w_x4, w_y4, w_14);
    return;
  }

  if (all_zero) {
    // (0,0) everywhere: only the materialized row count may grow.
    ++num_factors_;
    const size_t rows = std::min(num_factors_ + 1, truncate_at_);
    if (rows > num_rows_) {
      num_rows_ = rows;
      flat_.resize(TruncRowOffset(num_rows_) * kLanes, 0.0);
    }
    return;
  }
  MultiplyTruncated(w_x4, w_y4, w_14);
}

void UgfBatch::MultiplyUntruncated(const double* w_x4, const double* w_y4,
                                   const double* w_14) {
  const GfKernels& K = ActiveKernels();
  const size_t n_old = core_n_;
  const size_t n_new = n_old + 1;
  scratch_.resize_uninitialized((n_new + 1) * (n_new + 2) / 2 * kLanes);
  size_t off_old_prev = 0;  // old row i-1, in cells
  size_t off_old = 0;       // old row i
  size_t off_new = 0;
  for (size_t i = 0; i <= n_new; ++i) {
    const size_t L = n_new - i + 1;
    double* dst = scratch_.data() + off_new * kLanes;
    if (i == 0) {
      const double* self = flat_.data();
      K.conv_cells4_nb(dst, kZeros4, self, 1, w_y4, w_14);
      if (L >= 3) {
        K.conv_cells4_nb(dst + kLanes, self, self + kLanes, L - 2, w_y4,
                         w_14);
      }
      K.conv_cells4_nb(dst + (L - 1) * kLanes, self + (L - 2) * kLanes,
                       kZeros4, 1, w_y4, w_14);
    } else if (i <= n_old) {
      const double* below = flat_.data() + off_old_prev * kLanes;
      const double* self = flat_.data() + off_old * kLanes;
      K.conv_cells4(dst, below, kZeros4, self, 1, w_x4, w_y4, w_14);
      if (L >= 3) {
        K.conv_cells4(dst + kLanes, below + kLanes, self, self + kLanes,
                      L - 2, w_x4, w_y4, w_14);
      }
      K.conv_cells4(dst + (L - 1) * kLanes, below + (L - 1) * kLanes,
                    self + (L - 2) * kLanes, kZeros4, 1, w_x4, w_y4, w_14);
    } else {  // i == n_new: fed only by the x-step of old row n_old
      K.scale_cells4(dst, flat_.data() + off_old_prev * kLanes, 1, w_x4);
    }
    off_old_prev = off_old;
    if (i <= n_old) off_old += L - 1;
    off_new += L;
  }
  flat_.swap(scratch_);
  core_n_ = n_new;
  ++num_factors_;
}

void UgfBatch::MultiplyTruncated(const double* w_x4, const double* w_y4,
                                 const double* w_14) {
  const GfKernels& K = ActiveKernels();
  const size_t k = truncate_at_;
  const size_t n_new = num_factors_ + 1;
  const size_t old_rows = num_rows_;

  if (old_rows == k) {
    const double* top = flat_.data() + TruncRowOffset(k - 1) * kLanes;
    for (size_t l = 0; l < kLanes; ++l) {
      overflow_[l] = std::fma(top[kLanes + l], w_x4[l],
                              std::fma(top[l], w_x4[l], overflow_[l]));
    }
  }

  const size_t new_rows = std::min(n_new + 1, k);
  scratch_.resize_uninitialized(TruncRowOffset(new_rows) * kLanes);
  for (size_t i = 0; i < new_rows; ++i) {
    const size_t bucket = k - i;
    double* dst = scratch_.data() + TruncRowOffset(i) * kLanes;
    const double* self =
        i < old_rows ? flat_.data() + TruncRowOffset(i) * kLanes : nullptr;
    const double* below =
        i >= 1 ? flat_.data() + TruncRowOffset(i - 1) * kLanes : nullptr;
    if (self != nullptr && below != nullptr) {
      K.conv_cells4(dst, below, kZeros4, self, 1, w_x4, w_y4, w_14);
      if (bucket >= 2) {
        K.conv_cells4(dst + kLanes, below + kLanes, self, self + kLanes,
                      bucket - 1, w_x4, w_y4, w_14);
      }
      K.bucket_cells4(dst + bucket * kLanes, below + bucket * kLanes,
                      below + (bucket + 1) * kLanes,
                      self + (bucket - 1) * kLanes, self + bucket * kLanes,
                      w_x4, w_y4, w_14);
    } else if (self != nullptr) {  // i == 0
      K.conv_cells4_nb(dst, kZeros4, self, 1, w_y4, w_14);
      if (bucket >= 2) {
        K.conv_cells4_nb(dst + kLanes, self, self + kLanes, bucket - 1, w_y4,
                         w_14);
      }
      K.bucket_cells4(dst + bucket * kLanes, kZeros4, kZeros4,
                      self + (bucket - 1) * kLanes, self + bucket * kLanes,
                      w_x4, w_y4, w_14);
    } else {  // newly materialized row i == old_rows
      K.scale_cells4(dst, below, bucket, w_x4);
      K.bucket_cells4(dst + bucket * kLanes, below + bucket * kLanes,
                      below + (bucket + 1) * kLanes, kZeros4, kZeros4, w_x4,
                      w_y4, w_14);
    }
  }
  flat_.swap(scratch_);
  num_rows_ = new_rows;
  num_factors_ = n_new;
}

void UgfBatch::FinishBounds() {
  const GfKernels& K = ActiveKernels();
  const size_t nr = num_ranks();
  diff_.assign((nr + 1) * kLanes, 0.0);
  alignas(32) double s4[kLanes];
  if (!truncated()) {
    const size_t s = ones_shift_;
    size_t off = 0;
    for (size_t i = 0; i <= core_n_; ++i) {
      const size_t row_len = core_n_ - i + 1;
      const double* row = flat_.data() + off * kLanes;
      K.block_sum4(row, row_len, s4);
      for (size_t l = 0; l < kLanes; ++l) diff_[(i + s) * kLanes + l] += s4[l];
      K.sub_cells4(diff_.data() + (i + s + 1) * kLanes, row, row_len);
      off += row_len;
    }
  } else {
    for (size_t i = 0; i < num_rows_; ++i) {
      const size_t bucket = truncate_at_ - i;
      const double* row = flat_.data() + TruncRowOffset(i) * kLanes;
      K.block_sum4(row, bucket + 1, s4);
      for (size_t l = 0; l < kLanes; ++l) diff_[i * kLanes + l] += s4[l];
      K.sub_cells4(diff_.data() + (i + 1) * kLanes, row,
                   std::min(bucket, nr - i));
    }
  }
  bounds_lb_.resize_uninitialized(nr * kLanes);
  bounds_ub_.resize_uninitialized(nr * kLanes);
  for (size_t l = 0; l < kLanes; ++l) {
    double ub = 0.0;
    for (size_t x = 0; x < nr; ++x) {
      ub += diff_[x * kLanes + l];
      double lb = 0.0;
      if (!truncated()) {
        if (x >= ones_shift_ && x - ones_shift_ <= core_n_) {
          lb = flat_[CoreRowOffset(x - ones_shift_) * kLanes + l];
        }
      } else if (x < num_rows_) {
        lb = flat_[TruncRowOffset(x) * kLanes + l];
      }
      bounds_lb_[x * kLanes + l] = lb;
      bounds_ub_[x * kLanes + l] = std::min(ub, 1.0);
    }
  }
  bounds_ready_ = true;
}

void UgfBatch::EmitBounds(size_t lane, CountDistributionBounds* out) const {
  UPDB_DCHECK(bounds_ready_);
  UPDB_DCHECK(lane < active_lanes_);
  const size_t nr = num_ranks();
  UPDB_CHECK(out->num_ranks() == nr);
  for (size_t x = 0; x < nr; ++x) {
    out->Set(x, bounds_lb_[x * kLanes + lane], bounds_ub_[x * kLanes + lane]);
  }
  out->Normalize();
}

void UgfBatch::ProbLessThanAll(size_t m, ProbabilityBounds* out) const {
  if (truncated()) UPDB_CHECK(m <= truncate_at_);
  const GfKernels& K = ActiveKernels();
  alignas(32) double s4[kLanes];
  double lb[kLanes] = {};
  double ub[kLanes] = {};
  if (!truncated()) {
    const size_t s = ones_shift_;
    size_t off = 0;
    for (size_t i = 0; i <= core_n_; ++i) {
      const size_t row_len = core_n_ - i + 1;
      const double* row = flat_.data() + off * kLanes;
      if (i + s < m) {
        K.block_sum4(row, row_len, s4);
        for (size_t l = 0; l < kLanes; ++l) ub[l] += s4[l];
        K.block_sum4(row, std::min(row_len, m - (i + s)), s4);
        for (size_t l = 0; l < kLanes; ++l) lb[l] += s4[l];
      }
      off += row_len;
    }
  } else {
    for (size_t i = 0; i < num_rows_; ++i) {
      const size_t bucket = truncate_at_ - i;
      const double* row = flat_.data() + TruncRowOffset(i) * kLanes;
      if (i < m) {
        K.block_sum4(row, bucket + 1, s4);
        for (size_t l = 0; l < kLanes; ++l) ub[l] += s4[l];
        K.block_sum4(row, std::min(bucket, m - i), s4);  // bucket excluded
        for (size_t l = 0; l < kLanes; ++l) lb[l] += s4[l];
      }
    }
  }
  for (size_t l = 0; l < kLanes; ++l) {
    out[l] = ProbabilityBounds{lb[l], ub[l]};
    out[l].Normalize();
  }
}

double UgfBatch::Coefficient(size_t lane, size_t i, size_t j) const {
  UPDB_DCHECK(lane < kLanes);
  if (truncated()) {
    if (i >= num_rows_ || j > truncate_at_ - i) return 0.0;
    return flat_[(TruncRowOffset(i) + j) * kLanes + lane];
  }
  if (i < ones_shift_) return 0.0;
  const size_t core_i = i - ones_shift_;
  if (core_i > core_n_ || j > core_n_ - core_i) return 0.0;
  return flat_[(CoreRowOffset(core_i) + j) * kLanes + lane];
}

}  // namespace updb
