#include "queries/expected_distance.h"

#include <algorithm>

namespace updb {

double EstimateExpectedDistance(const Pdf& o, const Pdf& q, size_t samples,
                                Rng& rng, const LpNorm& norm) {
  UPDB_CHECK(samples >= 1);
  double total = 0.0;
  for (size_t s = 0; s < samples; ++s) {
    total += norm.Dist(o.Sample(rng), q.Sample(rng));
  }
  return total / static_cast<double>(samples);
}

std::vector<ExpectedDistanceEntry> ExpectedDistanceKnn(
    const UncertainDatabase& db, const Pdf& q, size_t k,
    size_t samples_per_object, uint64_t seed, const LpNorm& norm) {
  UPDB_CHECK(k >= 1);
  Rng rng(seed);
  std::vector<ExpectedDistanceEntry> entries;
  entries.reserve(db.size());
  for (const UncertainObject& o : db.objects()) {
    entries.push_back(ExpectedDistanceEntry{
        o.id(),
        EstimateExpectedDistance(o.pdf(), q, samples_per_object, rng, norm)});
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + take, entries.end(),
                    [](const ExpectedDistanceEntry& a,
                       const ExpectedDistanceEntry& b) {
                      return a.expected_distance < b.expected_distance;
                    });
  entries.resize(take);
  return entries;
}

}  // namespace updb
