#include "queries/queries.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace updb {

namespace {

/// Candidate filter for threshold kNN: an object B cannot be a kNN result
/// in any world once at least k objects are strictly closer to Q in every
/// world. The cheap sufficient test used here compares MinDist(B, Q)
/// against the k-th smallest MaxDist(*, Q): if MinDist(B,Q) exceeds it,
/// at least k objects MinMax-dominate B w.r.t. Q.
std::vector<ObjectId> KnnCandidates(const UncertainDatabase& db,
                                    const RTree& index, const Rect& q_mbr,
                                    size_t k, const LpNorm& norm) {
  const double prune_dist = KnnPruneDistance(db, q_mbr, k, norm);
  if (prune_dist == std::numeric_limits<double>::infinity()) {
    // Fewer than k certain objects: nothing can be pruned spatially.
    std::vector<ObjectId> all(db.size());
    for (ObjectId id = 0; id < db.size(); ++id) all[id] = id;
    return all;
  }

  std::vector<ObjectId> candidates;
  index.ScanByMinDist(
      q_mbr,
      [&candidates, prune_dist](const RTreeEntry& e, double min_dist) {
        if (min_dist > prune_dist) return false;  // all further are pruned
        candidates.push_back(e.id);
        return true;
      },
      norm);
  return candidates;
}

}  // namespace

double KnnPruneDistance(const UncertainDatabase& db, const Rect& q_mbr,
                        size_t k, const LpNorm& norm) {
  UPDB_CHECK(k >= 1);
  // k-th smallest MaxDist (partial selection) over the certain objects.
  std::vector<double> maxdists;
  maxdists.reserve(db.size());
  for (const UncertainObject& o : db.objects()) {
    if (o.existentially_certain()) {
      maxdists.push_back(norm.MaxDist(o.mbr(), q_mbr));
    }
  }
  if (maxdists.size() < k) return std::numeric_limits<double>::infinity();
  const size_t kth = k - 1;
  std::nth_element(maxdists.begin(), maxdists.begin() + kth, maxdists.end());
  return maxdists[kth];
}

std::vector<ThresholdQueryResult> ProbabilisticThresholdKnn(
    const UncertainDatabase& db, const RTree& index, const Pdf& q, size_t k,
    double tau, const IdcaConfig& config, QueryStats* stats) {
  Stopwatch timer;
  const std::vector<ObjectId> candidates =
      KnnCandidates(db, index, q.bounds(), k, config.norm);

  // Candidates are mutually independent IDCA problems: each writes only
  // its own result slot, so the loop parallelizes with no reduction step.
  // Any pair-loop parallelism inside the engine runs inline here (nested
  // regions), keeping this coarser-grained level.
  IdcaEngine engine(db, &index, config);
  std::vector<ThresholdQueryResult> results(candidates.size());
  std::vector<size_t> iterations_per_candidate(candidates.size(), 0);
  ThreadPool::SharedParallelFor(
      candidates.size(), ThreadPool::EffectiveParallelism(config.num_threads),
      [&](size_t c, size_t /*worker*/) {
        const ObjectId id = candidates[c];
        const IdcaResult r =
            engine.ComputeDomCount(id, q, IdcaPredicate{k, tau});
        iterations_per_candidate[c] =
            r.iterations.empty() ? 0 : r.iterations.size() - 1;
        results[c] = ThresholdQueryResult{id, r.predicate_prob, r.decision};
      });
  if (stats != nullptr) {
    stats->candidates = candidates.size();
    stats->idca_iterations =
        std::accumulate(iterations_per_candidate.begin(),
                        iterations_per_candidate.end(), size_t{0});
    stats->seconds = timer.ElapsedSeconds();
  }
  return results;
}

std::vector<ThresholdQueryResult> ProbabilisticThresholdRknn(
    const UncertainDatabase& db, const RTree& index, const Pdf& q, size_t k,
    double tau, const IdcaConfig& config, QueryStats* stats) {
  UPDB_CHECK(k >= 1);
  Stopwatch timer;
  const LpNorm& norm = config.norm;

  // Candidate filter: B is no RkNN of Q once >= k objects dominate Q
  // w.r.t. B in every world. Only objects A with
  // MinDist(A, B) <= MaxDist(Q, B) can possibly dominate Q w.r.t. B, so an
  // index range probe around B bounds the counting work.
  std::vector<ObjectId> candidates;
  for (const UncertainObject& b : db.objects()) {
    const double reach = norm.MaxDist(q.bounds(), b.mbr());
    // Expand B's MBR by `reach` per dimension; any dominating object's MBR
    // must intersect this box.
    std::vector<Interval> sides;
    sides.reserve(b.mbr().dim());
    for (size_t i = 0; i < b.mbr().dim(); ++i) {
      sides.emplace_back(b.mbr().side(i).lo() - reach,
                         b.mbr().side(i).hi() + reach);
    }
    const Rect probe{std::move(sides)};
    size_t dominators = 0;
    index.ForEachIntersecting(probe, [&](const RTreeEntry& e) {
      // Only existentially certain objects dominate Q in *every* world.
      if (e.id != b.id() && db.object(e.id).existentially_certain() &&
          Dominates(e.mbr, q.bounds(), b.mbr(), config.criterion, norm)) {
        ++dominators;
      }
      return dominators < k;
    });
    if (dominators < k) candidates.push_back(b.id());
  }

  IdcaEngine engine(db, &index, config);
  std::vector<ThresholdQueryResult> results(candidates.size());
  std::vector<size_t> iterations_per_candidate(candidates.size(), 0);
  ThreadPool::SharedParallelFor(
      candidates.size(), ThreadPool::EffectiveParallelism(config.num_threads),
      [&](size_t c, size_t /*worker*/) {
        const ObjectId id = candidates[c];
        const IdcaResult r =
            engine.ComputeDomCountOfQuery(q, id, IdcaPredicate{k, tau});
        iterations_per_candidate[c] =
            r.iterations.empty() ? 0 : r.iterations.size() - 1;
        results[c] = ThresholdQueryResult{id, r.predicate_prob, r.decision};
      });
  if (stats != nullptr) {
    stats->candidates = candidates.size();
    stats->idca_iterations =
        std::accumulate(iterations_per_candidate.begin(),
                        iterations_per_candidate.end(), size_t{0});
    stats->seconds = timer.ElapsedSeconds();
  }
  return results;
}

CountDistributionBounds ProbabilisticInverseRanking(
    const UncertainDatabase& db, ObjectId b, const Pdf& r,
    const IdcaConfig& config) {
  IdcaEngine engine(db, config);
  // P(Rank = i) = P(DomCount = i-1): the domination-count bounds are the
  // rank distribution, 0-based.
  return engine.ComputeDomCount(b, r).bounds;
}

std::vector<RankWinner> UkRanksQuery(const UncertainDatabase& db,
                                     const RTree& index, const Pdf& q,
                                     size_t max_rank,
                                     const IdcaConfig& config) {
  UPDB_CHECK(max_rank >= 1);
  // Only objects that can have fewer than max_rank dominators can occupy
  // one of the first max_rank positions — the same spatial filter as
  // threshold kNN.
  const std::vector<ObjectId> candidates =
      KnnCandidates(db, index, q.bounds(), max_rank, config.norm);

  IdcaEngine engine(db, &index, config);
  std::vector<CountDistributionBounds> bounds(candidates.size(),
                                              CountDistributionBounds(0));
  const std::vector<ObjectId>& ids = candidates;
  ThreadPool::SharedParallelFor(
      candidates.size(), ThreadPool::EffectiveParallelism(config.num_threads),
      [&](size_t c, size_t /*worker*/) {
        bounds[c] = engine.ComputeDomCount(candidates[c], q).bounds;
      });

  std::vector<RankWinner> winners;
  winners.reserve(max_rank);
  for (size_t rank = 1; rank <= max_rank; ++rank) {
    const size_t count = rank - 1;  // Corollary 3
    RankWinner w;
    w.rank = rank;
    double best_other_ub = 0.0;
    size_t best = 0;
    for (size_t c = 0; c < bounds.size(); ++c) {
      if (count >= bounds[c].num_ranks()) continue;
      if (w.winner == kInvalidObjectId ||
          bounds[c].lb(count) > bounds[best].lb(count)) {
        best = c;
        w.winner = ids[c];
      }
    }
    if (w.winner != kInvalidObjectId) {
      w.prob = ProbabilityBounds{bounds[best].lb(count),
                                 bounds[best].ub(count)};
      for (size_t c = 0; c < bounds.size(); ++c) {
        if (c == best || count >= bounds[c].num_ranks()) continue;
        best_other_ub = std::max(best_other_ub, bounds[c].ub(count));
      }
      w.decided = w.prob.lb > best_other_ub;
    }
    winners.push_back(w);
  }
  return winners;
}

std::vector<ExpectedRankEntry> ExpectedRankOrder(const UncertainDatabase& db,
                                                 const Pdf& q,
                                                 const IdcaConfig& config,
                                                 const RTree* index,
                                                 size_t* total_iterations,
                                                 IdcaCounters* total_counters) {
  IdcaEngine engine = index != nullptr ? IdcaEngine(db, index, config)
                                       : IdcaEngine(db, config);
  std::vector<ExpectedRankEntry> entries(db.size());
  std::vector<size_t> iterations_per_object(db.size(), 0);
  std::vector<IdcaCounters> counters_per_object(db.size());
  ThreadPool::SharedParallelFor(
      db.size(), ThreadPool::EffectiveParallelism(config.num_threads),
      [&](size_t o, size_t /*worker*/) {
        const ObjectId id = db.objects()[o].id();
        const IdcaResult r = engine.ComputeDomCount(id, q);
        iterations_per_object[o] =
            r.iterations.empty() ? 0 : r.iterations.size() - 1;
        counters_per_object[o] = r.counters;
        entries[o] = ExpectedRankEntry{id, r.bounds.ExpectedRank()};
      });
  if (total_iterations != nullptr) {
    *total_iterations =
        std::accumulate(iterations_per_object.begin(),
                        iterations_per_object.end(), size_t{0});
  }
  if (total_counters != nullptr) {
    for (const IdcaCounters& c : counters_per_object) *total_counters += c;
  }
  std::sort(entries.begin(), entries.end(),
            [](const ExpectedRankEntry& a, const ExpectedRankEntry& b) {
              const double ma = 0.5 * (a.expected_rank.lb + a.expected_rank.ub);
              const double mb = 0.5 * (b.expected_rank.lb + b.expected_rank.ub);
              return ma < mb;
            });
  return entries;
}

}  // namespace updb
