// Copyright 2026 The updb Authors.
// Probabilistic similarity queries built on the probabilistic domination
// count (Section VI):
//
//  * Threshold kNN  (Corollary 4): B qualifies iff
//    P(DomCount(B,Q) < k) > tau.
//  * Threshold RkNN (Corollary 5): B qualifies iff
//    P(DomCount(Q,B) < k) > tau (Q counted w.r.t. reference B).
//  * Inverse ranking (Corollary 3): P(Rank(B,R) = i) =
//    P(DomCount(B,R) = i-1).
//  * Expected rank  (Corollary 6): order objects by E[Rank] = E[DomCount]+1.
//
// All queries share the same two-phase structure: an index-assisted
// spatial candidate filter, then per-candidate IDCA with an early-stopping
// predicate.

#ifndef UPDB_QUERIES_QUERIES_H_
#define UPDB_QUERIES_QUERIES_H_

#include <vector>

#include "core/idca.h"
#include "index/rtree.h"

namespace updb {

/// Per-object outcome of a threshold query.
struct ThresholdQueryResult {
  ObjectId id = kInvalidObjectId;
  /// Bounds on the predicate probability P(DomCount < k) when IDCA ran.
  ProbabilityBounds prob;
  /// kTrue: qualifies; kFalse: does not; kUndecided: bounds did not
  /// separate from tau within the iteration budget (the caller receives
  /// the bracket and decides — the paper's "confidence value" fallback).
  PredicateDecision decision = PredicateDecision::kUndecided;
};

/// Aggregate statistics of a threshold query run.
struct QueryStats {
  /// Objects surviving the cheap index-level spatial filter (and therefore
  /// evaluated with IDCA).
  size_t candidates = 0;
  /// Total IDCA refinement iterations across all candidates.
  size_t idca_iterations = 0;
  double seconds = 0.0;
};

/// Probabilistic threshold k-nearest-neighbor query: returns an entry for
/// every candidate that could not be pruned spatially, with its predicate
/// probability bracket and decision. Objects pruned by the filter are
/// guaranteed non-results and are not reported.
std::vector<ThresholdQueryResult> ProbabilisticThresholdKnn(
    const UncertainDatabase& db, const RTree& index, const Pdf& q, size_t k,
    double tau, const IdcaConfig& config = {}, QueryStats* stats = nullptr);

/// Probabilistic threshold reverse k-nearest-neighbor query.
std::vector<ThresholdQueryResult> ProbabilisticThresholdRknn(
    const UncertainDatabase& db, const RTree& index, const Pdf& q, size_t k,
    double tau, const IdcaConfig& config = {}, QueryStats* stats = nullptr);

/// Probabilistic inverse ranking: bounds on the rank distribution of `b`
/// w.r.t. reference `r`. Entry i (0-based) bounds P(Rank(B,R) = i+1); the
/// array has db.size() entries (ranks 1..N).
CountDistributionBounds ProbabilisticInverseRanking(
    const UncertainDatabase& db, ObjectId b, const Pdf& r,
    const IdcaConfig& config = {});

/// One entry of an expected-rank ordering.
struct ExpectedRankEntry {
  ObjectId id = kInvalidObjectId;
  /// Bounds on E[Rank(object, Q)] (1-based rank).
  ProbabilityBounds expected_rank;
};

/// Orders all database objects by (the midpoint of) their expected-rank
/// bounds w.r.t. the query object Q — the expected-rank semantics of
/// Cormode et al. referenced by Corollary 6. `index` (optional) is handed
/// to the engine for config.use_index_filter; `total_iterations`
/// (optional) receives the summed IDCA refinement iterations, and
/// `total_counters` (optional) accumulates the engine work counters over
/// every per-object run. The serving layer calls this with all three —
/// payloads must stay bit-identical to the direct path, so there is
/// exactly one implementation.
std::vector<ExpectedRankEntry> ExpectedRankOrder(
    const UncertainDatabase& db, const Pdf& q, const IdcaConfig& config = {},
    const RTree* index = nullptr, size_t* total_iterations = nullptr,
    IdcaCounters* total_counters = nullptr);

/// Threshold-kNN prune distance: the k-th smallest MaxDist(object, q_mbr)
/// over the *existentially certain* objects (an object that may be absent
/// cannot guarantee to push a candidate out of the kNN set in every
/// world). Returns +infinity when fewer than k certain objects exist —
/// nothing is spatially prunable then. Shared between the direct query
/// path and the service's batched filter, whose determinism contract is
/// that both compute identical candidate sets.
double KnnPruneDistance(const UncertainDatabase& db, const Rect& q_mbr,
                        size_t k, const LpNorm& norm);

/// Answer entry of a U-kRanks-style query (Soliman & Ilyas, cited as [25]):
/// for one rank position, the object most likely to occupy it.
struct RankWinner {
  /// 1-based rank position.
  size_t rank = 0;
  /// Object with the highest lower-bounded probability of taking `rank`.
  ObjectId winner = kInvalidObjectId;
  /// Bounds on P(Rank(winner, Q) = rank).
  ProbabilityBounds prob;
  /// True when the winner's lower bound beats every other candidate's
  /// upper bound, i.e. the winner is certain whatever the residual
  /// uncertainty. False answers still report the best-known candidate.
  bool decided = false;
};

/// U-kRanks over the first `max_rank` positions: per rank i, the object
/// maximizing P(Rank = i) w.r.t. the uncertain query object Q, derived
/// from the domination-count bounds (Corollary 3: Rank = DomCount + 1).
/// Candidates are pre-filtered through the index like threshold kNN.
std::vector<RankWinner> UkRanksQuery(const UncertainDatabase& db,
                                     const RTree& index, const Pdf& q,
                                     size_t max_rank,
                                     const IdcaConfig& config = {});

}  // namespace updb

#endif  // UPDB_QUERIES_QUERIES_H_
