// Copyright 2026 The updb Authors.
// Expected-distance kNN baseline. Prior work the paper cites (Ljosa &
// Singh [22]) answers kNN queries on uncertain data by ranking objects by
// their *expected distance* to the query. The paper's motivation (Sec. II)
// is that this "does not adhere to the possible world semantics and may
// thus produce very inaccurate results" — results whose probability of
// actually being a kNN is small. updb implements the baseline so that the
// claim can be reproduced quantitatively (bench/abl5_expected_distance).

#ifndef UPDB_QUERIES_EXPECTED_DISTANCE_H_
#define UPDB_QUERIES_EXPECTED_DISTANCE_H_

#include <vector>

#include "common/random.h"
#include "geom/distance.h"
#include "uncertain/database.h"

namespace updb {

/// Monte-Carlo estimate of E[dist(o, q)] over independent draws of both
/// objects. Deterministic for a given rng state; `samples` >= 1.
double EstimateExpectedDistance(const Pdf& o, const Pdf& q, size_t samples,
                                Rng& rng,
                                const LpNorm& norm = LpNorm::Euclidean());

/// One entry of the expected-distance ranking.
struct ExpectedDistanceEntry {
  ObjectId id = kInvalidObjectId;
  double expected_distance = 0.0;
};

/// The k database objects with smallest estimated expected distance to q,
/// ascending. This is the [22]-style baseline — NOT possible-world
/// correct; see header comment.
std::vector<ExpectedDistanceEntry> ExpectedDistanceKnn(
    const UncertainDatabase& db, const Pdf& q, size_t k,
    size_t samples_per_object = 256, uint64_t seed = 99,
    const LpNorm& norm = LpNorm::Euclidean());

}  // namespace updb

#endif  // UPDB_QUERIES_EXPECTED_DISTANCE_H_
