#include "store/recovery.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "obs/metrics.h"
#include "store/checkpoint.h"
#include "store/wal.h"

namespace updb {
namespace store {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string RecoveryReport::ToJson() const {
  std::string json = "{";
  const auto field = [&json](const char* name, uint64_t value) {
    json += "\"";
    json += name;
    json += "\":";
    json += std::to_string(value);
    json += ",";
  };
  field("checkpoint_version", checkpoint_version);
  field("checkpoint_entries", checkpoint_entries);
  field("recovered_version", recovered_version);
  field("replayed_mutations", replayed_mutations);
  field("replayed_publishes", replayed_publishes);
  field("pending_mutations", pending_mutations);
  field("truncated_bytes", truncated_bytes);
  field("dropped_records", dropped_records);
  json += "\"data_loss\":";
  json += data_loss ? "true" : "false";
  json += ",\"warnings\":[";
  for (size_t i = 0; i < warnings.size(); ++i) {
    if (i > 0) json += ",";
    json += "\"" + JsonEscape(warnings[i]) + "\"";
  }
  json += "]}";
  return json;
}

StatusOr<std::unique_ptr<VersionedObjectStore>> RecoverStore(
    const std::string& wal_dir, StoreOptions options,
    RecoveryReport* report) {
  RecoveryReport local_report;
  RecoveryReport& rep = report != nullptr ? *report : local_report;
  rep = RecoveryReport();

  std::error_code ec;
  if (!std::filesystem::is_directory(wal_dir, ec)) {
    return Status::NotFound("no WAL directory at '" + wal_dir + "'");
  }

  // 1. Newest valid checkpoint; damage degrades instead of failing.
  CheckpointState ck;
  StatusOr<LoadedCheckpoint> loaded = LoadNewestCheckpoint(wal_dir);
  if (loaded.ok()) {
    for (const std::string& w : loaded->warnings) {
      rep.warnings.push_back(w);
      rep.data_loss = true;  // a newer checkpoint failed validation
    }
    ck = std::move(loaded->state);
  } else if (loaded.status().code() == StatusCode::kNotFound) {
    // Fresh directory (or WAL-only): empty start is the correct base.
  } else if (loaded.status().code() == StatusCode::kDataLoss) {
    rep.warnings.push_back(loaded.status().ToString() +
                           "; starting empty and replaying the full WAL");
    rep.data_loss = true;
  } else {
    return loaded.status();
  }
  rep.checkpoint_version = ck.version;
  rep.checkpoint_entries = ck.entries.size();

  // 2. Every WAL segment, regardless of the segment count it was written
  // with — replay merges by global sequence, so the file→shard routing of
  // the crashed process is irrelevant here.
  std::vector<std::string> segment_paths;
  for (const auto& it : std::filesystem::directory_iterator(wal_dir, ec)) {
    if (ParseWalShardFileName(it.path().filename().string(), nullptr)) {
      segment_paths.push_back(it.path().string());
    }
  }
  if (ec) {
    return Status::Unavailable("cannot read WAL directory '" + wal_dir +
                               "': " + ec.message());
  }
  std::sort(segment_paths.begin(), segment_paths.end());
  std::vector<WalRecord> records;
  for (const std::string& path : segment_paths) {
    StatusOr<WalReadResult> read = ReadWalFile(path);
    if (!read.ok()) return read.status();
    if (read->truncated_bytes > 0) {
      rep.truncated_bytes += read->truncated_bytes;
      rep.data_loss = true;
      rep.warnings.push_back(
          "'" + path + "': dropped " +
          std::to_string(read->truncated_bytes) + " tail bytes (" +
          read->truncation_reason + ")");
    }
    for (WalRecord& r : read->records) records.push_back(std::move(r));
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const WalRecord& a, const WalRecord& b) {
                     return a.sequence < b.sequence;
                   });

  // 3. Rebuild: checkpoint entries (synthetic ascending sequences — the
  // real watermark is restored right after), publish the checkpointed
  // version, then replay the contiguous tail.
  auto store = std::make_unique<VersionedObjectStore>(options);
  uint64_t restore_seq = 0;
  for (const CheckpointEntry& entry : ck.entries) {
    WalRecord r;
    r.kind = WalRecordKind::kInsert;
    r.sequence = ++restore_seq;
    r.id = entry.stable_id;
    r.existence = entry.existence;
    r.pdf = entry.pdf;
    UPDB_RETURN_IF_ERROR(store->ApplyForRecovery(r));
  }
  if (ck.version > 0) {
    UPDB_RETURN_IF_ERROR(store->PublishForRecovery(ck.version));
  }
  UPDB_RETURN_IF_ERROR(
      store->SetRecoveryWatermarks(ck.next_id, ck.next_sequence, ck.dim));

  uint64_t expected = ck.next_sequence;
  for (size_t i = 0; i < records.size(); ++i) {
    const WalRecord& r = records[i];
    if (r.sequence < ck.next_sequence) continue;  // covered by checkpoint
    const auto drop_rest = [&](const std::string& why) {
      rep.dropped_records += records.size() - i;
      rep.data_loss = true;
      rep.warnings.push_back(why + "; dropped " +
                             std::to_string(records.size() - i) +
                             " later records");
    };
    if (r.sequence < expected) {
      drop_rest("duplicate WAL sequence " + std::to_string(r.sequence));
      break;
    }
    if (r.sequence > expected) {
      drop_rest("WAL sequence gap: expected " + std::to_string(expected) +
                ", found " + std::to_string(r.sequence));
      break;
    }
    Status applied;
    if (r.kind == WalRecordKind::kPublish) {
      applied = store->PublishForRecovery(r.version);
      if (applied.ok()) ++rep.replayed_publishes;
    } else {
      applied = store->ApplyForRecovery(r);
      if (applied.ok()) ++rep.replayed_mutations;
    }
    if (!applied.ok()) {
      drop_rest("record with sequence " + std::to_string(r.sequence) +
                " cannot replay: " + applied.ToString());
      break;
    }
    ++expected;
  }

  rep.recovered_version = store->version();
  rep.pending_mutations = store->pending_mutations();

  // Publish the recovery outcome to the store's registry (the store was
  // constructed with `options`, so this is the same registry — or its
  // private one — that serves the rest of the store's series).
  obs::MetricsRegistry& registry = options.metrics_registry != nullptr
                                       ? *options.metrics_registry
                                       : store->registry();
  registry.Counter("updb_recovery_runs_total", "Store recoveries attempted")
      ->Add();
  registry
      .Counter("updb_recovery_replayed_mutations_total",
               "WAL mutation records replayed during recovery")
      ->Add(rep.replayed_mutations);
  registry
      .Counter("updb_recovery_replayed_publishes_total",
               "WAL publish markers replayed during recovery")
      ->Add(rep.replayed_publishes);
  registry
      .Counter("updb_recovery_truncated_bytes_total",
               "WAL tail bytes dropped as torn or corrupt during recovery")
      ->Add(rep.truncated_bytes);
  registry
      .Counter("updb_recovery_dropped_records_total",
               "Decoded WAL records dropped during recovery")
      ->Add(rep.dropped_records);
  registry
      .Counter("updb_recovery_data_loss_total",
               "Recoveries that detected data loss")
      ->Add(rep.data_loss ? 1 : 0);
  return store;
}

}  // namespace store
}  // namespace updb
