// Copyright 2026 The updb Authors.
// Crash recovery for the durable versioned store: load the newest valid
// checkpoint, then replay the per-shard WAL tails merged by global
// sequence number.
//
// Damage never aborts the process — it bounds what is recovered:
//
//  * A torn or CRC-corrupt frame truncates that segment at the damage
//    (store/wal.h); the dropped byte count is reported.
//  * The merged replay applies the longest *contiguous* sequence run
//    starting at the checkpoint's next_sequence. A gap (e.g. a record
//    lost to one segment's torn tail while later records survive in
//    another segment) stops replay there: everything after the gap is
//    dropped and reported as data loss, so the recovered store is always
//    a consistent prefix of the original history.
//  * A corrupt newest checkpoint falls back to the next older one; when
//    every checkpoint fails validation, recovery degrades to an empty
//    start plus full WAL replay and flags data loss.
//
// Replay reuses the original stable ids, sequence numbers and version
// numbers (kPublish markers), so every recovered snapshot version serves
// payloads bit-identical to what the lost process served — the digest
// oracle recovery_test and bench_store_recovery enforce.
//
// RecoverStore() itself never writes to the directory; the rebuilt store
// is in-memory until the caller re-attaches durability
// (VersionedObjectStore::AttachDurability), which checkpoints the
// recovered state and starts fresh WAL segments.

#ifndef UPDB_STORE_RECOVERY_H_
#define UPDB_STORE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/object_store.h"

namespace updb {
namespace store {

/// What recovery found, rebuilt, and had to drop.
struct RecoveryReport {
  /// Version of the checkpoint recovery started from (0 = empty start).
  uint64_t checkpoint_version = 0;
  /// Live objects loaded from that checkpoint.
  uint64_t checkpoint_entries = 0;
  /// Latest published version of the recovered store.
  uint64_t recovered_version = 0;
  /// WAL mutation records replayed (insert/update/remove).
  uint64_t replayed_mutations = 0;
  /// kPublish markers replayed (versions re-published).
  uint64_t replayed_publishes = 0;
  /// Replayed mutations past the last marker: applied but unpublished,
  /// exactly as they were in the original process.
  uint64_t pending_mutations = 0;
  /// Damaged tail bytes truncated, summed over all WAL segments.
  uint64_t truncated_bytes = 0;
  /// CRC-valid records dropped anyway (sequence gap, covered-by-newer
  /// checkpoint records are NOT counted, unreplayable content).
  uint64_t dropped_records = 0;
  /// True when recovery lost acknowledged state: damaged tails, dropped
  /// records, or checkpoint fallback.
  bool data_loss = false;
  /// Human-readable notes on everything skipped or dropped.
  std::vector<std::string> warnings;

  /// Single-line JSON rendering (updb_cli recover).
  std::string ToJson() const;
};

/// Rebuilds a store from `wal_dir`'s newest valid checkpoint plus the
/// replayable WAL tail. `options.durability` is ignored here — the result
/// is in-memory (see file comment). Fails with:
///  * NotFound    — `wal_dir` does not exist;
///  * Unavailable — it exists but cannot be read.
/// Damage inside the directory is never an error: it is absorbed into the
/// report (`data_loss`, `warnings`) and the longest consistent prefix is
/// recovered, down to an empty store.
StatusOr<std::unique_ptr<VersionedObjectStore>> RecoverStore(
    const std::string& wal_dir, StoreOptions options,
    RecoveryReport* report = nullptr);

}  // namespace store
}  // namespace updb

#endif  // UPDB_STORE_RECOVERY_H_
