// Copyright 2026 The updb Authors.
// Durable write-ahead log for the versioned object store: append-only
// per-shard files of length-prefixed, CRC32C-framed records.
//
// Frame layout (host byte order; one frame per record):
//
//   +----------------+----------------+------+-------------------+
//   | u32 payload len| u32 CRC32C     | u8   | payload bytes ... |
//   | (kind+payload) | (kind+payload) | kind |                   |
//   +----------------+----------------+------+-------------------+
//
// The CRC covers the kind byte and the payload, so a torn tail (partial
// header, partial payload) and a bit-flipped record are both detected.
// ReadWalFile() truncates at the first torn or corrupt frame and reports
// how many tail bytes it dropped — it never aborts on a damaged file.
//
// Record kinds are routed through a registry/dispatch table
// (WalRecordRegistry): each kind registers a named codec, and both the
// encode and the decode path look the codec up by kind byte instead of
// switching inline. New durable record kinds plug in by registering a
// codec, leaving the framing and replay machinery untouched.
//
// Mutation payloads reuse the textual object serialization of
// io/dataset_io (round-trip exact: doubles are printed with %.17g), so a
// replayed insert reconstructs a bit-identical PDF and recovered stores
// serve payloads digest-equal to the original's.

#ifndef UPDB_STORE_WAL_H_
#define UPDB_STORE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "uncertain/object.h"
#include "uncertain/pdf.h"

namespace updb {
namespace store {

/// When WAL appends are flushed to stable storage. Appends always reach
/// the OS (unbuffered writes); the policy only controls fsync frequency.
enum class FsyncPolicy {
  /// Never fsync the WAL (checkpoint installs still sync). Fastest;
  /// durability of the tail depends on the OS surviving the crash.
  kNever = 0,
  /// Fsync all dirty shard WALs once per Publish(), before the snapshot
  /// installs — every published version is durable.
  kEveryPublish = 1,
  /// Additionally fsync after every applied mutation batch (the batch
  /// appliers call VersionedObjectStore::SyncWal()). Strictest and
  /// slowest; every acknowledged batch is durable.
  kEveryBatch = 2,
};

/// Stable name ("never", "every_publish", "every_batch").
const char* FsyncPolicyName(FsyncPolicy policy);
/// Parses a stable name; InvalidArgument on anything else.
StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

/// CRC32C (Castagnoli) of `n` bytes, software table implementation.
uint32_t Crc32c(const void* data, size_t n);

/// Durable record kinds. Values are the on-disk kind bytes and must never
/// be renumbered.
enum class WalRecordKind : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kRemove = 3,
  /// Version-boundary marker: replaying one reproduces the original
  /// publish cadence, so recovered stores re-serve the exact version
  /// numbers (and contents) the original process published.
  kPublish = 4,
};

/// One decoded WAL record — the union of all kinds' fields.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kInsert;
  /// Global 1-based sequence number; every record (mutations and publish
  /// markers alike) consumes one, so recovery can detect gaps.
  uint64_t sequence = 0;
  /// Mutation target (inserts: the id the store assigned). Unused for
  /// kPublish.
  ObjectId id = kInvalidObjectId;
  /// kInsert/kUpdate payload.
  double existence = 1.0;
  std::shared_ptr<const Pdf> pdf;
  /// kPublish: the version the marker published.
  uint64_t version = 0;
};

/// Codec of one record kind: encodes a WalRecord's payload bytes (without
/// the frame header or kind byte) and decodes them back.
struct WalRecordCodec {
  uint8_t kind = 0;
  const char* name = "";
  StatusOr<std::string> (*encode)(const WalRecord& record) = nullptr;
  StatusOr<WalRecord> (*decode)(std::string_view payload) = nullptr;
};

/// Dispatch table of record codecs, keyed by kind byte. The built-in
/// kinds register themselves in the singleton's constructor; Find()
/// returns nullptr for unknown kinds (readers treat those as corruption).
class WalRecordRegistry {
 public:
  static const WalRecordRegistry& Instance();

  /// Registers a codec; refuses duplicate kind bytes.
  void Register(const WalRecordCodec& codec);
  /// The codec for `kind`, or nullptr when none is registered.
  const WalRecordCodec* Find(uint8_t kind) const;

 private:
  WalRecordRegistry();
  WalRecordCodec codecs_[256] = {};
  bool registered_[256] = {};
};

/// Encodes one record as a complete frame (header + kind + payload).
/// Fails with Unimplemented when the PDF type has no serialization.
StatusOr<std::string> EncodeWalFrame(const WalRecord& record);

/// Result of reading one WAL file. A damaged tail is not an error: the
/// valid prefix is returned and the damage is described.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes of the valid frame prefix.
  uint64_t valid_bytes = 0;
  /// Tail bytes dropped at the first torn or corrupt frame (0 = clean).
  uint64_t truncated_bytes = 0;
  /// Why the tail was dropped (empty when clean).
  std::string truncation_reason;
};

/// Reads every valid frame of `path`, truncating at the first torn or
/// CRC-corrupt record. Unavailable when the file cannot be opened.
StatusOr<WalReadResult> ReadWalFile(const std::string& path);

/// Name of shard `s`'s WAL segment within a WAL directory.
std::string WalShardFileName(size_t shard);
/// Parses a WalShardFileName back to its shard number (for directory
/// scans); returns false for non-WAL names.
bool ParseWalShardFileName(std::string_view name, size_t* shard);

/// Append handle for one shard's WAL file. Writes are unbuffered (each
/// append reaches the OS before returning); Sync() forces them to stable
/// storage. Appends must be serialized (the store holds its writer mutex),
/// but Sync() may run concurrently with an append — fsync of a file that
/// is being written simply syncs whatever has reached the OS, and the
/// bookkeeping flags are atomic.
class WalShardWriter {
 public:
  /// Opens (creating if needed) for append; `truncate` discards existing
  /// content first. Unavailable on failure.
  static StatusOr<std::unique_ptr<WalShardWriter>> Open(
      const std::string& path, bool truncate);
  ~WalShardWriter();

  WalShardWriter(const WalShardWriter&) = delete;
  WalShardWriter& operator=(const WalShardWriter&) = delete;

  /// Encodes and appends one record. Unavailable on write failure.
  Status Append(const WalRecord& record);
  /// fsync. Unavailable on failure.
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t fsyncs() const { return fsyncs_; }
  /// True when records were appended since the last Sync().
  bool dirty() const { return dirty_; }

  /// Wires the writer's append/byte/fsync odometers to registry counters
  /// (shared across a store's shard writers — all nullptr by default; the
  /// store calls this once right after opening, before any append).
  void SetMetrics(obs::Counter* appends, obs::Counter* bytes,
                  obs::Counter* syncs) {
    metric_appends_ = appends;
    metric_bytes_ = bytes;
    metric_fsyncs_ = syncs;
  }

 private:
  WalShardWriter(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  std::atomic<uint64_t> appended_records_{0};
  std::atomic<uint64_t> appended_bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<bool> dirty_{false};
  obs::Counter* metric_appends_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
  obs::Counter* metric_fsyncs_ = nullptr;
};

}  // namespace store
}  // namespace updb

#endif  // UPDB_STORE_WAL_H_
