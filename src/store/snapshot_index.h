// Copyright 2026 The updb Authors.
// Index layer of one published store snapshot: a bulk-built (STR) base
// R-tree plus a delta overlay of entries inserted/removed since the base
// was built. The overlay keeps Publish() O(delta) — mutating a handful of
// objects must not pay the O(N log N) bulk re-pack — while query results
// stay identical to a freshly rebuilt tree (the store's tests and the
// churn benchmark enforce this with a digest oracle). Once the overlay
// grows past a configurable fraction of the base, the store compacts it
// into a new bulk build (see StoreOptions::compact_delta_fraction).
//
// Sharding: the store partitions the stable-id space into `num_shards`
// shards (stable id i routes to shard i % num_shards), each with its own
// SnapshotIndex. One snapshot's query surface is the ShardedSnapshotIndex
// view below: it merges the per-shard indexes in deterministic shard
// order — concatenation (shard-then-dense order) for ForEachIntersecting,
// a best-first k-way cursor merge for ScanByMinDist — so callers see one
// index regardless of the shard count, and a single-shard view behaves
// exactly like the unsharded index.
//
// Id spaces: the base tree and the overlay are keyed by *stable* store
// ids, which never change across versions — that is what keeps one base
// tree valid under arbitrary interleavings of inserts and removes. Query
// callers, however, see the *dense* ids of the snapshot's materialized
// UncertainDatabase (0..N-1 in ascending stable-id order); a shard-level
// SnapshotIndex emits shard-local dense ids (dense within the shard's
// live set), and the ShardedSnapshotIndex translates them to the global
// dense space on the way out.

#ifndef UPDB_STORE_SNAPSHOT_INDEX_H_
#define UPDB_STORE_SNAPSHOT_INDEX_H_

#include <memory>
#include <vector>

#include "index/rtree.h"

namespace updb {
namespace store {

/// Immutable index view of one snapshot shard. Thread-safe for concurrent
/// reads (all state is const after construction).
class SnapshotIndex {
 public:
  /// `base` is the bulk-built tree whose entries carry stable ids and
  /// `base_ids` the same ids as a sorted vector (the membership surface
  /// overlay composition needs); `added` are overlay entries (stable ids,
  /// current MBRs) sorted by id; `removed` are stable ids masked out of
  /// the base, sorted; and `stable_by_dense` is the snapshot's ascending
  /// live stable-id list (dense id i names stable id stable_by_dense[i]).
  /// Invariant: the live set equals (base entries \ removed) ∪ added, with
  /// an updated object appearing in both `removed` (old entry) and
  /// `added` (new entry).
  SnapshotIndex(std::shared_ptr<const RTree> base,
                std::shared_ptr<const std::vector<ObjectId>> base_ids,
                std::vector<RTreeEntry> added, std::vector<ObjectId> removed,
                std::shared_ptr<const std::vector<ObjectId>> stable_by_dense);

  /// Live entries served by this index (== shard live-set size).
  size_t entry_count() const { return stable_by_dense_->size(); }

  /// Overlay size: inserted entries + removed base ids. 0 right after a
  /// compaction (bulk rebuild).
  size_t delta_entries() const { return added_.size() + removed_.size(); }
  bool compacted() const { return delta_entries() == 0; }

  /// The underlying bulk-built tree (stable-id entries); diagnostics.
  const RTree& base() const { return *base_; }

  /// Invokes `fn(entry)` — shard-local dense ids — for every live entry
  /// whose MBR intersects `query`; stops early when `fn` returns false.
  /// Overlay entries are visited after the base pass.
  void ForEachIntersecting(const Rect& query,
                           const std::function<bool(const RTreeEntry&)>& fn)
      const;

  /// Incremental best-first scan over the live entries in ascending
  /// MinDist(mbr, query) order (shard-local dense ids), merging the base
  /// tree's scan with the sorted overlay; returning false from `fn` stops
  /// the scan. At equal distance, overlay entries are emitted before base
  /// entries — callers that need a canonical order must impose their own
  /// tie-break (the serving layer re-sorts candidates by id).
  void ScanByMinDist(const Rect& query,
                     const std::function<bool(const RTreeEntry&, double)>& fn,
                     const LpNorm& norm = LpNorm::Euclidean()) const;

  /// Pull-based form of ScanByMinDist: the same entries in the same
  /// order, resumable between entries so the sharded view can k-way merge
  /// shard streams. The index must outlive the cursor.
  class MinDistCursor {
   public:
    MinDistCursor(const SnapshotIndex& index, const Rect& query,
                  const LpNorm& norm);

    /// Advances to the next live entry (shard-local dense id); returns
    /// false when exhausted. `*entry` stays valid until the next call.
    bool Next(const RTreeEntry** entry, double* dist);

   private:
    /// Pulls the base cursor to its next non-removed entry.
    void AdvanceBase();

    const SnapshotIndex& index_;
    RTree::MinDistCursor base_;
    /// Overlay emission order: (distance, index into added_), sorted by
    /// (distance, stable id).
    std::vector<std::pair<double, size_t>> added_order_;
    size_t next_added_ = 0;
    const RTreeEntry* base_entry_ = nullptr;  // pending non-removed entry
    double base_dist_ = 0.0;
    RTreeEntry scratch_{Rect(), 0};
  };

  /// Debug validation: the base tree validates, overlay vectors are sorted
  /// and duplicate-free, every added id is live, every non-removed base id
  /// is live, and the live count reconciles with base/overlay sizes.
  bool Validate() const;

  // Accessors the store uses to compose the next snapshot's overlay from
  // this one; not part of the query surface.
  const std::shared_ptr<const RTree>& base_shared() const { return base_; }
  const std::shared_ptr<const std::vector<ObjectId>>& base_ids_shared() const {
    return base_ids_;
  }
  const std::vector<RTreeEntry>& added() const { return added_; }
  const std::vector<ObjectId>& removed() const { return removed_; }
  const std::shared_ptr<const std::vector<ObjectId>>& stable_by_dense_shared()
      const {
    return stable_by_dense_;
  }

 private:
  /// Shard-local dense id of a live stable id (binary search; the id must
  /// be live).
  ObjectId DenseOf(ObjectId stable) const;
  bool IsRemoved(ObjectId stable) const;

  std::shared_ptr<const RTree> base_;
  std::shared_ptr<const std::vector<ObjectId>> base_ids_;  // sorted
  std::vector<RTreeEntry> added_;    // sorted by stable id
  std::vector<ObjectId> removed_;    // sorted stable ids
  /// Hull over added_ MBRs: an O(1) reject so per-object probe loops
  /// (e.g. the service's RkNN filter, one ForEachIntersecting per
  /// database object) don't pay a linear overlay scan for queries that
  /// cannot hit it. Meaningless when added_ is empty.
  Rect added_hull_;
  std::shared_ptr<const std::vector<ObjectId>> stable_by_dense_;
};

/// The query surface of one published snapshot: per-shard SnapshotIndexes
/// merged in deterministic shard order, emitting *global* dense ids.
/// Immutable and thread-safe for concurrent reads. A one-shard view is a
/// pass-through over the single SnapshotIndex (the translation is the
/// identity), so `num_shards = 1` behaves exactly like the unsharded
/// store.
class ShardedSnapshotIndex {
 public:
  /// `shards[s]` indexes the live objects routed to shard s;
  /// `global_by_local[s][l]` is the global dense id of shard s's local
  /// dense id l; `stable_by_dense` is the snapshot's global ascending
  /// live stable-id list.
  ShardedSnapshotIndex(
      std::vector<SnapshotIndex> shards,
      std::vector<std::shared_ptr<const std::vector<ObjectId>>>
          global_by_local,
      std::shared_ptr<const std::vector<ObjectId>> stable_by_dense);

  size_t num_shards() const { return shards_.size(); }
  const SnapshotIndex& shard(size_t s) const { return shards_[s]; }

  /// Live entries served across all shards (== snapshot database size).
  size_t entry_count() const { return stable_by_dense_->size(); }
  /// Total overlay size over all shards; 0 when every shard is compacted.
  size_t delta_entries() const;
  bool compacted() const { return delta_entries() == 0; }

  /// Invokes `fn(entry)` — global dense ids — for every live entry whose
  /// MBR intersects `query`, shard 0..k-1 concatenated (base-then-overlay
  /// within a shard); stops early when `fn` returns false.
  void ForEachIntersecting(const Rect& query,
                           const std::function<bool(const RTreeEntry&)>& fn)
      const;

  /// Best-first k-way merge of the shard scans in ascending
  /// MinDist(mbr, query) order (global dense ids); at equal distance the
  /// lower shard index is emitted first. Returning false from `fn` stops
  /// the scan.
  void ScanByMinDist(const Rect& query,
                     const std::function<bool(const RTreeEntry&, double)>& fn,
                     const LpNorm& norm = LpNorm::Euclidean()) const;

  /// Single-shard slices of the two scans above, emitting global dense
  /// ids — the fan-out surface the service's per-shard candidate
  /// generation uses (reduce in ascending shard order for determinism).
  void ShardForEachIntersecting(
      size_t s, const Rect& query,
      const std::function<bool(const RTreeEntry&)>& fn) const;
  void ShardScanByMinDist(
      size_t s, const Rect& query,
      const std::function<bool(const RTreeEntry&, double)>& fn,
      const LpNorm& norm = LpNorm::Euclidean()) const;

  /// Debug validation: every shard validates, shard live counts reconcile
  /// with the global live list, and the local→global translation maps
  /// every shard-local stable id to itself in the global list.
  bool Validate() const;

 private:
  std::vector<SnapshotIndex> shards_;
  std::vector<std::shared_ptr<const std::vector<ObjectId>>> global_by_local_;
  std::shared_ptr<const std::vector<ObjectId>> stable_by_dense_;
};

}  // namespace store
}  // namespace updb

#endif  // UPDB_STORE_SNAPSHOT_INDEX_H_
