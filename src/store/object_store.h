// Copyright 2026 The updb Authors.
// MVCC-style versioned store for uncertain objects, the mutable foundation
// under the serving layer (ROADMAP: open the churn scenarios — streaming
// inserts/updates/deletes — without giving up the determinism contracts of
// PR 1/2). Design:
//
//  * The stable-id space is partitioned into `num_shards` shards (stable
//    id i routes to shard i % num_shards). Each shard owns its own WAL
//    window, its own copy-on-write live table, and — per snapshot — its
//    own delta-overlay SnapshotIndex; one snapshot's query surface merges
//    the shards in deterministic shard order (see store/snapshot_index.h).
//  * Writers apply Insert/Update/Remove mutations. Each mutation is
//    appended to the target shard's write-ahead window *before* the live
//    state is touched; the pending windows are the source of truth for
//    what the next snapshot must re-index.
//  * The live table of a shard is copy-on-write: an immutable sorted
//    snapshot array (shared with published snapshots and in-flight
//    builds) plus a small mutable delta map of changes since the last
//    publish. Publish() *drains* in O(delta) under the writer mutex —
//    move the delta map, move the WAL windows, grab the array pointers —
//    and does every O(N) step (table merge, database materialization,
//    index composition) outside it, so publishing never stalls writers or
//    readers for a live-table copy (the drain/build split is measured by
//    bench_store_churn and reported via PublishStats).
//  * Publish() installs an immutable StoreSnapshot {version, db, sharded
//    index}. Snapshots share object PDFs by pointer; per-shard index work
//    is O(shard delta) — a delta overlay over the shard's bulk-built base
//    R-tree, compacted into a fresh bulk build once it exceeds
//    compact_delta_fraction of the base.
//  * Readers acquire latest() (or a retained snapshot(version) for pinned
//    serving) and never block writers; a snapshot stays valid for as long
//    as someone holds it, independent of later mutations or eviction.
//
// Id spaces: the store hands out *stable* ids (monotonic, never reused).
// A snapshot's materialized UncertainDatabase uses *dense* ids 0..N-1
// assigned in ascending stable-id order — that is what the query stack
// expects — and the snapshot carries the translation both ways. For a
// fixed version the translation, the database and the index are all pure
// functions of the mutation history — independent of the shard count —
// so responses served from a version are bit-identical across replays
// and across num_shards (store_test's digest oracles).

#ifndef UPDB_STORE_OBJECT_STORE_H_
#define UPDB_STORE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/snapshot_index.h"
#include "store/wal.h"
#include "uncertain/database.h"

namespace updb {
namespace store {

/// Monotonic snapshot version. 0 is the empty pre-first-publish snapshot.
using Version = uint64_t;

/// One write operation against the store.
struct Mutation {
  enum class Kind { kInsert, kUpdate, kRemove };
  Kind kind = Kind::kInsert;
  /// Target stable id for kUpdate/kRemove; ignored for kInsert (the store
  /// assigns the next stable id).
  ObjectId id = kInvalidObjectId;
  /// New PDF for kInsert/kUpdate; ignored for kRemove.
  std::shared_ptr<const Pdf> pdf;
  /// Existential probability, in (0, 1].
  double existence = 1.0;
};

/// Stable name of a Mutation::Kind ("insert", "update", "remove").
const char* MutationKindName(Mutation::Kind kind);

/// One write-ahead log record: the mutation plus its global sequence
/// number and, for inserts, the stable id the store assigned.
struct LogRecord {
  uint64_t sequence = 0;  // 1-based, global over the store's lifetime
  Mutation mutation;
  ObjectId assigned_id = kInvalidObjectId;
};

/// Durable-mode configuration. A store with a non-empty `wal_dir` (opened
/// via VersionedObjectStore::Open or store::RecoverStore +
/// AttachDurability) appends every mutation to a per-shard WAL file before
/// applying it, writes a kPublish marker per Publish(), and checkpoints
/// the published state every `checkpoint_every` publishes.
struct DurabilityOptions {
  /// Directory holding the per-shard WAL segments and checkpoints. Empty
  /// means in-memory only (the plain constructors always run in-memory
  /// and ignore this struct).
  std::string wal_dir;
  /// When WAL appends are forced to stable storage (see store/wal.h).
  FsyncPolicy fsync = FsyncPolicy::kEveryPublish;
  /// Publishes between snapshot checkpoints. A checkpoint bounds the WAL
  /// tail recovery must replay; checkpoint installs are always fsynced
  /// regardless of the fsync policy.
  uint64_t checkpoint_every = 8;
  /// Checkpoint files retained (newest first); older ones are pruned.
  size_t checkpoint_keep = 2;
};

/// Tuning knobs of the store.
struct StoreOptions {
  /// Publish compacts a shard's index overlay into a fresh bulk build once
  /// its delta_entries exceed this fraction of the shard's base tree size.
  /// 0 forces a full rebuild at every publish (the ablation baseline the
  /// churn benchmark compares against); values >= 1 effectively never
  /// compact.
  double compact_delta_fraction = 0.25;
  /// Leaf capacity of bulk-built base R-trees.
  size_t leaf_capacity = 16;
  /// Published snapshots retained for pinned serving, including the
  /// latest. Must be >= 1; older versions are evicted FIFO (a snapshot a
  /// reader still holds stays alive through its shared_ptr).
  size_t snapshot_retention = 8;
  /// Shards of the stable-id space (id % num_shards). Must be >= 1 and is
  /// fixed for the store's lifetime. 1 reproduces the unsharded store;
  /// snapshot contents and served payloads are identical for every value.
  size_t num_shards = 1;
  /// Durable-mode configuration; honored by Open()/AttachDurability only.
  DurabilityOptions durability;
  /// Registry the store's series register in (publish drain/build
  /// histograms, publish/WAL/checkpoint counters; see README
  /// "Observability"). Must outlive the store. nullptr creates a private
  /// registry — pass obs::MetricsRegistry::Default() for one unified
  /// process export.
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// Span sink for publish_drain/publish_build/wal_fsync/checkpoint_write
  /// spans. nullptr (default) disables store-side tracing; snapshot
  /// contents are identical either way.
  obs::TraceRecorder* trace = nullptr;
};

/// Wall-clock breakdown of one Publish() (see bench_store_churn): the
/// drain step is the only part that holds the writer mutex and is
/// O(drained mutations + num_shards), never O(live-table size).
struct PublishStats {
  double drain_ms = 0.0;
  double build_ms = 0.0;
  size_t drained_mutations = 0;
};

/// Aggregate publish timing over a store's lifetime (CLI metrics JSON).
struct PublishMetrics {
  uint64_t publishes = 0;
  double total_drain_ms = 0.0;
  double max_drain_ms = 0.0;
  double total_build_ms = 0.0;
  double max_build_ms = 0.0;
};

/// Durability counters aggregated over a store's lifetime (the CLI's
/// "wal" metrics section). All-zero while no durability is attached.
struct WalStats {
  bool durable = false;
  FsyncPolicy fsync = FsyncPolicy::kEveryPublish;
  uint64_t appends = 0;
  uint64_t appended_bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t checkpoint_writes = 0;
  uint64_t checkpoint_failures = 0;

  /// Serializes as a JSON object (plus the sticky WAL status string).
  std::string ToJson(const Status& wal_status) const;
};

/// One live object; PDFs are shared by pointer, snapshots copy nothing
/// deep.
struct LiveObject {
  std::shared_ptr<const Pdf> pdf;
  double existence = 1.0;
};

/// Entry of a shard's copy-on-write live table (sorted by stable id).
struct LiveEntry {
  ObjectId id = kInvalidObjectId;
  LiveObject object;
};

/// Immutable sorted-by-stable-id array: the published live table of one
/// shard.
using LiveTable = std::vector<LiveEntry>;

/// One immutable published state of the store. Cheap to hold and share;
/// all members are immutable after Publish() constructs it.
class StoreSnapshot {
 public:
  Version version() const { return version_; }
  /// Dense-id materialization of the live set at this version.
  const std::shared_ptr<const UncertainDatabase>& db() const { return db_; }
  /// The merged (shard-order deterministic) index surface.
  const ShardedSnapshotIndex& index() const { return index_; }
  size_t size() const { return stable_by_dense_->size(); }
  size_t num_shards() const { return index_.num_shards(); }
  /// Live objects routed to shard `s` at this version.
  size_t shard_size(size_t s) const { return index_.shard(s).entry_count(); }

  /// Stable id of a dense id (must be < size()).
  ObjectId StableId(ObjectId dense) const;
  /// Dense id of a live stable id; NotFound when the id is not live at
  /// this version.
  StatusOr<ObjectId> DenseId(ObjectId stable) const;

 private:
  friend class VersionedObjectStore;
  StoreSnapshot(Version version,
                std::shared_ptr<const UncertainDatabase> db,
                ShardedSnapshotIndex index,
                std::shared_ptr<const std::vector<ObjectId>> stable_by_dense)
      : version_(version),
        db_(std::move(db)),
        index_(std::move(index)),
        stable_by_dense_(std::move(stable_by_dense)) {}

  Version version_;
  std::shared_ptr<const UncertainDatabase> db_;
  ShardedSnapshotIndex index_;
  std::shared_ptr<const std::vector<ObjectId>> stable_by_dense_;  // sorted
};

/// The versioned store. Thread-safe: any thread may mutate, publish, or
/// acquire snapshots; publishing serializes against other publishers but
/// overlaps with both writers and readers — the live-table merges, the
/// index builds and the database materialization all run outside the
/// writer lock; only the O(delta) drain step holds it.
class VersionedObjectStore {
 public:
  explicit VersionedObjectStore(StoreOptions options = {});
  /// Seeds the store with `db`'s objects — stable ids equal the seed
  /// database's dense ids — and publishes version 1.
  explicit VersionedObjectStore(const UncertainDatabase& db,
                                StoreOptions options = {});

  VersionedObjectStore(const VersionedObjectStore&) = delete;
  VersionedObjectStore& operator=(const VersionedObjectStore&) = delete;

  /// Creates a *durable* store over a fresh WAL directory
  /// (options.durability.wal_dir, created if missing). Fails with
  /// InvalidArgument when wal_dir is empty and FailedPrecondition when the
  /// directory already holds WAL segments or checkpoints — recover those
  /// with store::RecoverStore instead of silently overwriting them.
  static StatusOr<std::unique_ptr<VersionedObjectStore>> Open(
      StoreOptions options);
  /// Durable variant of the seeding constructor: seeds `db`, publishes
  /// version 1, then attaches durability (the initial checkpoint covers
  /// the seed).
  static StatusOr<std::unique_ptr<VersionedObjectStore>> Open(
      const UncertainDatabase& db, StoreOptions options);

  /// Attaches durability to a store built in memory (freshly constructed
  /// or rebuilt by store::RecoverStore). Writes a checkpoint of the
  /// current published state, rebuilds the per-shard WAL segments from
  /// scratch (stale segments — including those of a different shard count
  /// — are deleted), re-appends any still-pending mutations, and syncs.
  /// Must not race with concurrent mutators/publishers.
  /// FailedPrecondition when durability is already attached.
  Status AttachDurability(const DurabilityOptions& durability);

  /// First WAL/checkpoint IO error, sticky: once an append or checkpoint
  /// fails the store stops accepting durable mutations and reports the
  /// original failure here. Always OK for in-memory stores.
  Status wal_status() const;
  /// Fsyncs every dirty WAL segment (no-op in memory). Batch appliers
  /// call this under FsyncPolicy::kEveryBatch.
  Status SyncWal();
  /// True when durability is attached.
  bool durable() const { return durable_; }

  /// Inserts a new object; returns its stable id. InvalidArgument on a
  /// null PDF, an existence outside (0, 1], or a dimensionality mismatch
  /// (the first insert fixes the store's dimensionality).
  StatusOr<ObjectId> Insert(std::shared_ptr<const Pdf> pdf,
                            double existence = 1.0);
  /// Replaces a live object's PDF/existence. NotFound for unknown ids.
  Status Update(ObjectId id, std::shared_ptr<const Pdf> pdf,
                double existence = 1.0);
  /// Removes a live object. NotFound for unknown ids. Stable ids are
  /// never reused.
  Status Remove(ObjectId id);
  /// Applies one mutation record; returns the affected stable id.
  StatusOr<ObjectId> Apply(const Mutation& mutation);

  /// Drains the pending mutation windows into a new immutable snapshot
  /// and installs it as latest(). The drain holds the writer mutex for
  /// O(delta) only; per-shard index work is O(shard delta) (see file
  /// comment). A no-op window still publishes a new version (callers gate
  /// on pending_mutations() when they care). When `stats` is non-null it
  /// receives this publish's drain/build timing split.
  std::shared_ptr<const StoreSnapshot> Publish(PublishStats* stats = nullptr);

  /// The latest published snapshot; never null (version 0 before the
  /// first Publish).
  std::shared_ptr<const StoreSnapshot> latest() const;
  /// A retained snapshot by version; null when unknown or evicted.
  std::shared_ptr<const StoreSnapshot> snapshot(Version version) const;

  Version version() const;
  size_t live_size() const;
  /// Live object counts per shard, in shard order.
  std::vector<size_t> ShardLiveCounts() const;
  /// Mutations applied but not yet published.
  size_t pending_mutations() const;
  /// Mutations applied over the store's lifetime.
  uint64_t total_mutations() const;
  /// Aggregate drain/build timing over all publishes so far.
  PublishMetrics publish_metrics() const;
  /// Aggregate WAL/checkpoint counters (all-zero for in-memory stores).
  WalStats wal_stats() const;
  /// The registry this store's series live in: options.metrics_registry
  /// when one was supplied, else the store's private registry.
  obs::MetricsRegistry& registry() const {
    return options_.metrics_registry != nullptr ? *options_.metrics_registry
                                                : *owned_registry_;
  }
  /// Copy of the pending write-ahead window, in application order
  /// (ascending global sequence, merged across shards).
  std::vector<LogRecord> PendingLog() const;
  /// Sorted live stable ids (the deterministic targeting surface for
  /// churn generators).
  std::vector<ObjectId> LiveIds() const;
  /// 0 before the first insert.
  size_t dim() const;

  const StoreOptions& options() const { return options_; }
  size_t num_shards() const { return options_.num_shards; }
  /// Shard a stable id routes to.
  size_t ShardOf(ObjectId id) const { return id % options_.num_shards; }

  // Recovery-support hooks (store::RecoverStore only; single-threaded,
  // before durability attaches). They replay history with the *original*
  // ids, sequence numbers and version numbers so recovered snapshots are
  // bit-identical to the lost process's — a replayed record that cannot
  // apply (dead target, duplicate id, dimensionality clash) fails with
  // DataLoss instead of aborting, and the caller stops replay there.

  /// Applies one replayed mutation record with its forced stable id and
  /// sequence number.
  Status ApplyForRecovery(const WalRecord& record);
  /// Publishes with a forced version number (replaying a kPublish
  /// marker). DataLoss when `version` does not advance the store.
  Status PublishForRecovery(Version version);
  /// Restores the id/sequence/dimension watermarks a checkpoint recorded
  /// (monotonic: never moves a watermark backwards).
  Status SetRecoveryWatermarks(ObjectId next_id, uint64_t next_sequence,
                               size_t dim);

 private:
  /// One pending change to a shard's copy-on-write table: the latest
  /// state of a stable id since the last drain (tombstone for removes).
  struct LiveDelta {
    bool removed = false;
    LiveObject object;
  };
  using DeltaMap = std::map<ObjectId, LiveDelta>;

  /// Writer-side state of one shard, guarded by mu_.
  struct Shard {
    /// Immutable published table; replaced wholesale at publish install.
    std::shared_ptr<const LiveTable> table;
    /// Changes since the last drain.
    DeltaMap delta;
    /// Changes drained by an in-flight publish: still part of the logical
    /// live view until the merged table is installed.
    std::shared_ptr<const DeltaMap> draining;
    /// Pending write-ahead window.
    std::vector<LogRecord> wal;
    /// |table ∘ draining ∘ delta| — maintained incrementally.
    size_t live_count = 0;
  };

  StatusOr<ObjectId> ApplyLocked(const Mutation& mutation);
  /// Liveness of `id` in its shard's logical view (delta over draining
  /// over table); requires mu_.
  bool IsLiveLocked(const Shard& shard, ObjectId id) const;
  /// Installs the version-0 empty snapshot at construction.
  void InstallEmptySnapshot();
  /// Appends `record` to the WAL segment of shard ShardOf(record.id)
  /// (kPublish markers go to shard 0); requires mu_ and durable_. On
  /// failure the error becomes the sticky wal_status_.
  Status WalAppendLocked(const WalRecord& record);
  /// Applies an already-validated mutation to its shard: WAL window +
  /// delta map + live count; requires mu_. `sequence` is consumed by the
  /// caller (normal appliers pass next_sequence_++, recovery the replayed
  /// record's).
  void CommitMutationLocked(const Mutation& mutation, ObjectId target,
                            uint64_t sequence);
  /// Registers the store's metric series (constructor helper).
  void RegisterMetrics();

  const StoreOptions options_;

  // Observability handles (obs/metrics.h): registered once at
  // construction in options_.metrics_registry (or the private fallback);
  // all record paths are lock-free.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Histogram* obs_drain_seconds_ = nullptr;
  obs::Histogram* obs_build_seconds_ = nullptr;
  obs::Counter* obs_publishes_ = nullptr;
  obs::Counter* obs_wal_appends_ = nullptr;
  obs::Counter* obs_wal_bytes_ = nullptr;
  obs::Counter* obs_wal_fsyncs_ = nullptr;
  obs::Counter* obs_checkpoint_writes_ = nullptr;
  obs::Counter* obs_checkpoint_failures_ = nullptr;

  /// Writer state: per-shard CoW tables + pending WAL windows. Held
  /// briefly by mutators and by Publish's O(delta) drain/install steps.
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
  ObjectId next_id_ = 0;
  uint64_t next_sequence_ = 1;
  size_t dim_ = 0;
  uint64_t total_mutations_ = 0;
  Version next_version_ = 1;
  PublishMetrics publish_metrics_;
  std::shared_ptr<const StoreSnapshot> latest_;
  std::deque<std::shared_ptr<const StoreSnapshot>> retained_;

  // Durable-mode state. durable_ flips once, inside AttachDurability
  // (which must not race with other operations); afterwards wal_writers_
  // is immutable and appends are serialized under mu_ while Publish()
  // fsyncs concurrently (safe — see WalShardWriter).
  bool durable_ = false;
  DurabilityOptions durability_;
  std::vector<std::unique_ptr<WalShardWriter>> wal_writers_;
  Status wal_status_;                          // guarded by mu_
  uint64_t publishes_since_checkpoint_ = 0;    // guarded by mu_
  std::atomic<uint64_t> checkpoint_writes_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};

  /// Serializes publishers so snapshot builds (which run outside mu_)
  /// install in version order.
  std::mutex publish_mu_;
};

}  // namespace store
}  // namespace updb

#endif  // UPDB_STORE_OBJECT_STORE_H_
