// Copyright 2026 The updb Authors.
// MVCC-style versioned store for uncertain objects, the mutable foundation
// under the serving layer (ROADMAP: open the churn scenarios — streaming
// inserts/updates/deletes — without giving up the determinism contracts of
// PR 1/2). Design:
//
//  * Writers apply Insert/Update/Remove mutations. Each mutation is
//    appended to a write-ahead mutation log *before* the live table is
//    touched; the pending log window is the source of truth for what the
//    next snapshot must re-index.
//  * Publish() drains the pending window and atomically installs an
//    immutable StoreSnapshot {version, db, index}. Snapshots are
//    copy-on-write: object PDFs are shared by pointer, the database
//    materialization is O(N) pointer copies, and the index work is
//    O(delta) — a delta overlay over the bulk-built base R-tree (see
//    store/snapshot_index.h) that is compacted into a fresh bulk build
//    once it exceeds compact_delta_fraction of the base.
//  * Readers acquire latest() (or a retained snapshot(version) for pinned
//    serving) and never block writers; a snapshot stays valid for as long
//    as someone holds it, independent of later mutations or eviction.
//
// Id spaces: the store hands out *stable* ids (monotonic, never reused).
// A snapshot's materialized UncertainDatabase uses *dense* ids 0..N-1
// assigned in ascending stable-id order — that is what the query stack
// expects — and the snapshot carries the translation both ways. For a
// fixed version the translation, the database and the index are all pure
// functions of the mutation history, so responses served from a version
// are bit-identical across replays (store_test's digest oracle).

#ifndef UPDB_STORE_OBJECT_STORE_H_
#define UPDB_STORE_OBJECT_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "store/snapshot_index.h"
#include "uncertain/database.h"

namespace updb {
namespace store {

/// Monotonic snapshot version. 0 is the empty pre-first-publish snapshot.
using Version = uint64_t;

/// One write operation against the store.
struct Mutation {
  enum class Kind { kInsert, kUpdate, kRemove };
  Kind kind = Kind::kInsert;
  /// Target stable id for kUpdate/kRemove; ignored for kInsert (the store
  /// assigns the next stable id).
  ObjectId id = kInvalidObjectId;
  /// New PDF for kInsert/kUpdate; ignored for kRemove.
  std::shared_ptr<const Pdf> pdf;
  /// Existential probability, in (0, 1].
  double existence = 1.0;
};

/// Stable name of a Mutation::Kind ("insert", "update", "remove").
const char* MutationKindName(Mutation::Kind kind);

/// One write-ahead log record: the mutation plus its global sequence
/// number and, for inserts, the stable id the store assigned.
struct LogRecord {
  uint64_t sequence = 0;  // 1-based, global over the store's lifetime
  Mutation mutation;
  ObjectId assigned_id = kInvalidObjectId;
};

/// Tuning knobs of the store.
struct StoreOptions {
  /// Publish compacts the index overlay into a fresh bulk build once
  /// delta_entries exceeds this fraction of the base tree size. 0 forces a
  /// full rebuild at every publish (the ablation baseline the churn
  /// benchmark compares against); values >= 1 effectively never compact.
  double compact_delta_fraction = 0.25;
  /// Leaf capacity of bulk-built base R-trees.
  size_t leaf_capacity = 16;
  /// Published snapshots retained for pinned serving, including the
  /// latest. Must be >= 1; older versions are evicted FIFO (a snapshot a
  /// reader still holds stays alive through its shared_ptr).
  size_t snapshot_retention = 8;
};

/// One immutable published state of the store. Cheap to hold and share;
/// all members are immutable after Publish() constructs it.
class StoreSnapshot {
 public:
  Version version() const { return version_; }
  /// Dense-id materialization of the live set at this version.
  const std::shared_ptr<const UncertainDatabase>& db() const { return db_; }
  const SnapshotIndex& index() const { return index_; }
  size_t size() const { return stable_by_dense_->size(); }

  /// Stable id of a dense id (must be < size()).
  ObjectId StableId(ObjectId dense) const;
  /// Dense id of a live stable id; NotFound when the id is not live at
  /// this version.
  StatusOr<ObjectId> DenseId(ObjectId stable) const;

 private:
  friend class VersionedObjectStore;
  StoreSnapshot(Version version,
                std::shared_ptr<const UncertainDatabase> db,
                SnapshotIndex index,
                std::shared_ptr<const std::vector<ObjectId>> stable_by_dense)
      : version_(version),
        db_(std::move(db)),
        index_(std::move(index)),
        stable_by_dense_(std::move(stable_by_dense)) {}

  Version version_;
  std::shared_ptr<const UncertainDatabase> db_;
  SnapshotIndex index_;
  std::shared_ptr<const std::vector<ObjectId>> stable_by_dense_;  // sorted
};

/// The versioned store. Thread-safe: any thread may mutate, publish, or
/// acquire snapshots; publishing serializes against other publishers but
/// overlaps with both writers and readers — the index build and database
/// materialization run outside the writer lock; only the O(N) live-table
/// copy of the drain step holds it (single-digit milliseconds at 20k
/// objects; a copy-on-write live table would make the drain O(delta) and
/// is noted in the ROADMAP).
class VersionedObjectStore {
 public:
  explicit VersionedObjectStore(StoreOptions options = {});
  /// Seeds the store with `db`'s objects — stable ids equal the seed
  /// database's dense ids — and publishes version 1.
  explicit VersionedObjectStore(const UncertainDatabase& db,
                                StoreOptions options = {});

  VersionedObjectStore(const VersionedObjectStore&) = delete;
  VersionedObjectStore& operator=(const VersionedObjectStore&) = delete;

  /// Inserts a new object; returns its stable id. InvalidArgument on a
  /// null PDF, an existence outside (0, 1], or a dimensionality mismatch
  /// (the first insert fixes the store's dimensionality).
  StatusOr<ObjectId> Insert(std::shared_ptr<const Pdf> pdf,
                            double existence = 1.0);
  /// Replaces a live object's PDF/existence. NotFound for unknown ids.
  Status Update(ObjectId id, std::shared_ptr<const Pdf> pdf,
                double existence = 1.0);
  /// Removes a live object. NotFound for unknown ids. Stable ids are
  /// never reused.
  Status Remove(ObjectId id);
  /// Applies one mutation record; returns the affected stable id.
  StatusOr<ObjectId> Apply(const Mutation& mutation);

  /// Drains the pending mutation window into a new immutable snapshot and
  /// installs it as latest(). O(delta) index work (see file comment); a
  /// no-op window still publishes a new version (callers gate on
  /// pending_mutations() when they care).
  std::shared_ptr<const StoreSnapshot> Publish();

  /// The latest published snapshot; never null (version 0 before the
  /// first Publish).
  std::shared_ptr<const StoreSnapshot> latest() const;
  /// A retained snapshot by version; null when unknown or evicted.
  std::shared_ptr<const StoreSnapshot> snapshot(Version version) const;

  Version version() const;
  size_t live_size() const;
  /// Mutations applied but not yet published.
  size_t pending_mutations() const;
  /// Mutations applied over the store's lifetime.
  uint64_t total_mutations() const;
  /// Copy of the pending write-ahead window, in application order.
  std::vector<LogRecord> PendingLog() const;
  /// Sorted live stable ids (the deterministic targeting surface for
  /// churn generators).
  std::vector<ObjectId> LiveIds() const;
  /// 0 before the first insert.
  size_t dim() const;

  const StoreOptions& options() const { return options_; }

 private:
  struct LiveObject {
    std::shared_ptr<const Pdf> pdf;
    double existence = 1.0;
  };

  StatusOr<ObjectId> ApplyLocked(const Mutation& mutation);
  /// Installs the version-0 empty snapshot at construction.
  void InstallEmptySnapshot();

  const StoreOptions options_;

  /// Writer state: live table + pending WAL window. Held briefly by
  /// mutators and by Publish's drain/install steps.
  mutable std::mutex mu_;
  std::map<ObjectId, LiveObject> live_;  // ordered => deterministic scans
  ObjectId next_id_ = 0;
  uint64_t next_sequence_ = 1;
  size_t dim_ = 0;
  std::vector<LogRecord> wal_;
  uint64_t total_mutations_ = 0;
  Version next_version_ = 1;
  std::shared_ptr<const StoreSnapshot> latest_;
  std::deque<std::shared_ptr<const StoreSnapshot>> retained_;

  /// Serializes publishers so snapshot builds (which run outside mu_)
  /// install in version order.
  std::mutex publish_mu_;
};

}  // namespace store
}  // namespace updb

#endif  // UPDB_STORE_OBJECT_STORE_H_
