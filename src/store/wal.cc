#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "io/dataset_io.h"
#include "uncertain/object.h"

namespace updb {
namespace store {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

// ---------------------------------------------------------------- codecs

/// Appends a fixed-width little-endian-agnostic (host order) scalar.
template <typename T>
void PutScalar(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

/// Bounds-checked scalar reader over a payload view.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  template <typename T>
  Status Read(T* out) {
    if (data_.size() - pos_ < sizeof(T)) {
      return Status::DataLoss("WAL payload underflow");
    }
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(size_t n, std::string* out) {
    if (data_.size() - pos_ < n) {
      return Status::DataLoss("WAL payload underflow");
    }
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Shared payload shape of kInsert/kUpdate: sequence, target id, and the
/// dataset_io object line (type, existence, PDF — %.17g round-trip
/// exact).
StatusOr<std::string> EncodeObjectMutation(const WalRecord& record) {
  if (record.pdf == nullptr) {
    return Status::InvalidArgument("mutation record without PDF");
  }
  const StatusOr<std::string> line = io::SerializeObject(
      UncertainObject(record.id, record.pdf, record.existence));
  if (!line.ok()) return line.status();
  std::string out;
  PutScalar<uint64_t>(out, record.sequence);
  PutScalar<uint64_t>(out, record.id);
  PutScalar<uint32_t>(out, static_cast<uint32_t>(line->size()));
  out += *line;
  return out;
}

StatusOr<WalRecord> DecodeObjectMutation(std::string_view payload,
                                         WalRecordKind kind) {
  WalRecord record;
  record.kind = kind;
  PayloadReader reader(payload);
  uint64_t id64 = 0;
  uint32_t line_len = 0;
  UPDB_RETURN_IF_ERROR(reader.Read(&record.sequence));
  UPDB_RETURN_IF_ERROR(reader.Read(&id64));
  UPDB_RETURN_IF_ERROR(reader.Read(&line_len));
  std::string line;
  UPDB_RETURN_IF_ERROR(reader.ReadString(line_len, &line));
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes after mutation payload");
  }
  const StatusOr<io::ParsedObject> parsed = io::ParseObject(line);
  if (!parsed.ok()) {
    return Status::DataLoss("undecodable object line in WAL record: " +
                            parsed.status().ToString());
  }
  record.id = static_cast<ObjectId>(id64);
  record.pdf = parsed->pdf;
  record.existence = parsed->existence;
  return record;
}

StatusOr<std::string> EncodeInsert(const WalRecord& r) {
  return EncodeObjectMutation(r);
}
StatusOr<WalRecord> DecodeInsert(std::string_view payload) {
  return DecodeObjectMutation(payload, WalRecordKind::kInsert);
}
StatusOr<std::string> EncodeUpdate(const WalRecord& r) {
  return EncodeObjectMutation(r);
}
StatusOr<WalRecord> DecodeUpdate(std::string_view payload) {
  return DecodeObjectMutation(payload, WalRecordKind::kUpdate);
}

StatusOr<std::string> EncodeRemove(const WalRecord& record) {
  std::string out;
  PutScalar<uint64_t>(out, record.sequence);
  PutScalar<uint64_t>(out, record.id);
  return out;
}

StatusOr<WalRecord> DecodeRemove(std::string_view payload) {
  WalRecord record;
  record.kind = WalRecordKind::kRemove;
  PayloadReader reader(payload);
  uint64_t id64 = 0;
  UPDB_RETURN_IF_ERROR(reader.Read(&record.sequence));
  UPDB_RETURN_IF_ERROR(reader.Read(&id64));
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes after remove payload");
  }
  record.id = static_cast<ObjectId>(id64);
  return record;
}

StatusOr<std::string> EncodePublish(const WalRecord& record) {
  std::string out;
  PutScalar<uint64_t>(out, record.sequence);
  PutScalar<uint64_t>(out, record.version);
  return out;
}

StatusOr<WalRecord> DecodePublish(std::string_view payload) {
  WalRecord record;
  record.kind = WalRecordKind::kPublish;
  PayloadReader reader(payload);
  UPDB_RETURN_IF_ERROR(reader.Read(&record.sequence));
  UPDB_RETURN_IF_ERROR(reader.Read(&record.version));
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes after publish payload");
  }
  return record;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kEveryPublish:
      return "every_publish";
    case FsyncPolicy::kEveryBatch:
      return "every_batch";
  }
  return "unknown";
}

StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "never") return FsyncPolicy::kNever;
  if (name == "every_publish") return FsyncPolicy::kEveryPublish;
  if (name == "every_batch") return FsyncPolicy::kEveryBatch;
  return Status::InvalidArgument("unknown fsync policy '" +
                                 std::string(name) +
                                 "' (never|every_publish|every_batch)");
}

uint32_t Crc32c(const void* data, size_t n) {
  // Byte-wise table for the Castagnoli polynomial (reflected 0x82F63B78),
  // built once.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~0u;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

WalRecordRegistry::WalRecordRegistry() {
  Register({static_cast<uint8_t>(WalRecordKind::kInsert), "insert",
            &EncodeInsert, &DecodeInsert});
  Register({static_cast<uint8_t>(WalRecordKind::kUpdate), "update",
            &EncodeUpdate, &DecodeUpdate});
  Register({static_cast<uint8_t>(WalRecordKind::kRemove), "remove",
            &EncodeRemove, &DecodeRemove});
  Register({static_cast<uint8_t>(WalRecordKind::kPublish), "publish",
            &EncodePublish, &DecodePublish});
}

const WalRecordRegistry& WalRecordRegistry::Instance() {
  static const WalRecordRegistry registry;
  return registry;
}

void WalRecordRegistry::Register(const WalRecordCodec& codec) {
  UPDB_CHECK(!registered_[codec.kind]);
  UPDB_CHECK(codec.encode != nullptr && codec.decode != nullptr);
  codecs_[codec.kind] = codec;
  registered_[codec.kind] = true;
}

const WalRecordCodec* WalRecordRegistry::Find(uint8_t kind) const {
  return registered_[kind] ? &codecs_[kind] : nullptr;
}

StatusOr<std::string> EncodeWalFrame(const WalRecord& record) {
  const WalRecordCodec* codec =
      WalRecordRegistry::Instance().Find(static_cast<uint8_t>(record.kind));
  if (codec == nullptr) {
    return Status::InvalidArgument("no codec registered for WAL kind " +
                                   std::to_string(static_cast<int>(
                                       record.kind)));
  }
  const StatusOr<std::string> payload = codec->encode(record);
  if (!payload.ok()) return payload.status();
  std::string body;
  body.reserve(1 + payload->size());
  body.push_back(static_cast<char>(codec->kind));
  body += *payload;
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutScalar<uint32_t>(frame, static_cast<uint32_t>(body.size()));
  PutScalar<uint32_t>(frame, Crc32c(body.data(), body.size()));
  frame += body;
  return frame;
}

StatusOr<WalReadResult> ReadWalFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open WAL file '" + path + "': " +
                               std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Unavailable("read error on WAL file '" + path + "'");
  }

  WalReadResult result;
  const WalRecordRegistry& registry = WalRecordRegistry::Instance();
  size_t pos = 0;
  auto truncate_at = [&](const std::string& reason) {
    result.valid_bytes = pos;
    result.truncated_bytes = data.size() - pos;
    result.truncation_reason = reason;
  };
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderBytes) {
      truncate_at("torn frame header");
      return result;
    }
    uint32_t length = 0, crc = 0;
    std::memcpy(&length, data.data() + pos, sizeof(length));
    std::memcpy(&crc, data.data() + pos + sizeof(length), sizeof(crc));
    if (length == 0) {
      truncate_at("zero-length frame");
      return result;
    }
    if (data.size() - pos - kFrameHeaderBytes < length) {
      truncate_at("torn frame body");
      return result;
    }
    const char* body = data.data() + pos + kFrameHeaderBytes;
    if (Crc32c(body, length) != crc) {
      truncate_at("CRC32C mismatch");
      return result;
    }
    const uint8_t kind = static_cast<uint8_t>(body[0]);
    const WalRecordCodec* codec = registry.Find(kind);
    if (codec == nullptr) {
      truncate_at("unknown record kind " + std::to_string(kind));
      return result;
    }
    StatusOr<WalRecord> record =
        codec->decode(std::string_view(body + 1, length - 1));
    if (!record.ok()) {
      truncate_at(std::string(codec->name) +
                  " payload rejected: " + record.status().ToString());
      return result;
    }
    result.records.push_back(*std::move(record));
    pos += kFrameHeaderBytes + length;
  }
  result.valid_bytes = pos;
  return result;
}

std::string WalShardFileName(size_t shard) {
  return "wal-shard-" + std::to_string(shard) + ".log";
}

bool ParseWalShardFileName(std::string_view name, size_t* shard) {
  constexpr std::string_view kPrefix = "wal-shard-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  const std::string_view digits =
      name.substr(kPrefix.size(),
                  name.size() - kPrefix.size() - kSuffix.size());
  size_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  if (shard != nullptr) *shard = value;
  return true;
}

StatusOr<std::unique_ptr<WalShardWriter>> WalShardWriter::Open(
    const std::string& path, bool truncate) {
  int flags = O_CREAT | O_WRONLY | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open WAL file '" + path + "': " +
                               std::strerror(errno));
  }
  return std::unique_ptr<WalShardWriter>(new WalShardWriter(path, fd));
}

WalShardWriter::~WalShardWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalShardWriter::Append(const WalRecord& record) {
  const StatusOr<std::string> frame = EncodeWalFrame(record);
  if (!frame.ok()) return frame.status();
  size_t written = 0;
  while (written < frame->size()) {
    const ssize_t n =
        ::write(fd_, frame->data() + written, frame->size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("WAL append to '" + path_ +
                                 "' failed: " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  ++appended_records_;
  appended_bytes_ += frame->size();
  dirty_ = true;
  if (metric_appends_ != nullptr) metric_appends_->Add();
  if (metric_bytes_ != nullptr) metric_bytes_->Add(frame->size());
  return Status::OK();
}

Status WalShardWriter::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::Unavailable("fsync of '" + path_ +
                               "' failed: " + std::strerror(errno));
  }
  ++fsyncs_;
  dirty_ = false;
  if (metric_fsyncs_ != nullptr) metric_fsyncs_->Add();
  return Status::OK();
}

}  // namespace store
}  // namespace updb
