// Copyright 2026 The updb Authors.
// Snapshot checkpoints for the durable store: a checkpoint file captures
// one published version (stable ids + objects + id/sequence watermarks)
// so recovery can load it and replay only the WAL tail behind it.
//
// File format (text; doubles %.17g round-trip exact via io/dataset_io):
//
//   # updb-checkpoint v1
//   version=<V> next_id=<I> next_sequence=<S> dim=<D> entries=<N>
//   <stable_id>,<object line>                      (N times, ascending id)
//   # crc32c=<8 hex digits over everything above>
//
// Installation is atomic: the content is written to `<name>.tmp`,
// fsynced, renamed over the final `checkpoint-<version>.updbck` name, and
// the directory is fsynced — a crash mid-checkpoint leaves either the
// previous checkpoint set intact (plus a stale .tmp recovery ignores) or
// the new file complete. Loading validates the trailer CRC and every
// entry; a file that fails validation is skipped with a DataLoss warning
// and the next older checkpoint is tried instead of aborting.

#ifndef UPDB_STORE_CHECKPOINT_H_
#define UPDB_STORE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "uncertain/object.h"
#include "uncertain/pdf.h"

namespace updb {
namespace store {

/// One live object of a checkpointed version.
struct CheckpointEntry {
  ObjectId stable_id = kInvalidObjectId;
  std::shared_ptr<const Pdf> pdf;
  double existence = 1.0;
};

/// The full state a checkpoint captures: the live set of one published
/// version plus the watermarks recovery needs to continue the id and
/// sequence spaces without reuse.
struct CheckpointState {
  /// Published version this checkpoint materializes.
  uint64_t version = 0;
  /// Next stable id the store would assign.
  ObjectId next_id = 0;
  /// First WAL sequence number NOT covered by this checkpoint — recovery
  /// replays records with sequence >= next_sequence.
  uint64_t next_sequence = 1;
  /// Store dimensionality (0 before the first insert).
  size_t dim = 0;
  /// Live objects in ascending stable-id order.
  std::vector<CheckpointEntry> entries;
};

/// "checkpoint-<version, zero padded>.updbck" — padded so lexical order
/// equals version order in directory listings.
std::string CheckpointFileName(uint64_t version);

/// Writes `state` into `dir` atomically (tmp + fsync + rename + dir
/// fsync). Unavailable on IO failure, Unimplemented when an entry's PDF
/// type has no serialization.
Status WriteCheckpoint(const std::string& dir, const CheckpointState& state);

/// A successfully loaded checkpoint plus any older/corrupt siblings that
/// were skipped on the way.
struct LoadedCheckpoint {
  CheckpointState state;
  std::string path;
  /// Human-readable notes about checkpoint files that failed validation.
  std::vector<std::string> warnings;
};

/// Loads the newest valid checkpoint in `dir`, trying older ones when the
/// newest fails validation. Fails with:
///  * Unavailable — `dir` cannot be read;
///  * NotFound    — no checkpoint files exist;
///  * DataLoss    — checkpoint files exist but none validates (the
///                  warnings describing each failure are in the message).
StatusOr<LoadedCheckpoint> LoadNewestCheckpoint(const std::string& dir);

/// Deletes all but the newest `keep` checkpoint files (and any stale
/// .tmp leftovers). Best-effort: returns the first error but keeps going.
Status PruneCheckpoints(const std::string& dir, size_t keep);

}  // namespace store
}  // namespace updb

#endif  // UPDB_STORE_CHECKPOINT_H_
