#include "store/snapshot_index.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace updb {
namespace store {

SnapshotIndex::SnapshotIndex(
    std::shared_ptr<const RTree> base,
    std::shared_ptr<const std::vector<ObjectId>> base_ids,
    std::vector<RTreeEntry> added, std::vector<ObjectId> removed,
    std::shared_ptr<const std::vector<ObjectId>> stable_by_dense)
    : base_(std::move(base)),
      base_ids_(std::move(base_ids)),
      added_(std::move(added)),
      removed_(std::move(removed)),
      stable_by_dense_(std::move(stable_by_dense)) {
  UPDB_CHECK(base_ != nullptr);
  UPDB_CHECK(base_ids_ != nullptr && base_ids_->size() == base_->size());
  UPDB_CHECK(stable_by_dense_ != nullptr);
  if (!added_.empty()) {
    added_hull_ = added_[0].mbr;
    for (size_t i = 1; i < added_.size(); ++i) {
      added_hull_ = Rect::Hull(added_hull_, added_[i].mbr);
    }
  }
}

ObjectId SnapshotIndex::DenseOf(ObjectId stable) const {
  const std::vector<ObjectId>& ids = *stable_by_dense_;
  const auto it = std::lower_bound(ids.begin(), ids.end(), stable);
  UPDB_DCHECK(it != ids.end() && *it == stable);
  return static_cast<ObjectId>(it - ids.begin());
}

bool SnapshotIndex::IsRemoved(ObjectId stable) const {
  return std::binary_search(removed_.begin(), removed_.end(), stable);
}

void SnapshotIndex::ForEachIntersecting(
    const Rect& query, const std::function<bool(const RTreeEntry&)>& fn)
    const {
  bool live = true;
  base_->ForEachIntersecting(query, [&](const RTreeEntry& e) {
    if (IsRemoved(e.id)) return true;
    live = fn(RTreeEntry{e.mbr, DenseOf(e.id)});
    return live;
  });
  if (!live) return;
  if (added_.empty() || !added_hull_.Intersects(query)) return;
  for (const RTreeEntry& a : added_) {
    if (!a.mbr.Intersects(query)) continue;
    if (!fn(RTreeEntry{a.mbr, DenseOf(a.id)})) return;
  }
}

void SnapshotIndex::ScanByMinDist(
    const Rect& query,
    const std::function<bool(const RTreeEntry&, double)>& fn,
    const LpNorm& norm) const {
  MinDistCursor cursor(*this, query, norm);
  const RTreeEntry* entry = nullptr;
  double dist = 0.0;
  while (cursor.Next(&entry, &dist)) {
    if (!fn(*entry, dist)) return;
  }
}

SnapshotIndex::MinDistCursor::MinDistCursor(const SnapshotIndex& index,
                                            const Rect& query,
                                            const LpNorm& norm)
    : index_(index), base_(*index.base_, query, norm) {
  // Distance-sort the overlay up front (it is bounded by the compaction
  // threshold), then merge it into the base tree's best-first stream. At
  // equal distance, overlay entries win; among themselves they order by
  // (distance, stable id).
  added_order_.reserve(index_.added_.size());
  for (size_t i = 0; i < index_.added_.size(); ++i) {
    added_order_.emplace_back(norm.MinDist(index_.added_[i].mbr, query), i);
  }
  std::sort(added_order_.begin(), added_order_.end(),
            [&index](const std::pair<double, size_t>& a,
                     const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first < b.first;
              return index.added_[a.second].id < index.added_[b.second].id;
            });
  AdvanceBase();
}

void SnapshotIndex::MinDistCursor::AdvanceBase() {
  base_entry_ = nullptr;
  const RTreeEntry* e = nullptr;
  double d = 0.0;
  while (base_.Next(&e, &d)) {
    if (index_.IsRemoved(e->id)) continue;
    base_entry_ = e;
    base_dist_ = d;
    return;
  }
}

bool SnapshotIndex::MinDistCursor::Next(const RTreeEntry** entry,
                                        double* dist) {
  if (next_added_ < added_order_.size() &&
      (base_entry_ == nullptr ||
       added_order_[next_added_].first <= base_dist_)) {
    const auto& [d, idx] = added_order_[next_added_++];
    const RTreeEntry& a = index_.added_[idx];
    scratch_ = RTreeEntry{a.mbr, index_.DenseOf(a.id)};
    *entry = &scratch_;
    *dist = d;
    return true;
  }
  if (base_entry_ == nullptr) return false;
  scratch_ = RTreeEntry{base_entry_->mbr, index_.DenseOf(base_entry_->id)};
  *dist = base_dist_;
  *entry = &scratch_;
  AdvanceBase();
  return true;
}

bool SnapshotIndex::Validate() const {
  if (!base_->Validate()) return false;
  const std::vector<ObjectId>& live = *stable_by_dense_;
  const std::vector<ObjectId>& base_ids = *base_ids_;
  const auto sorted_unique = [](const std::vector<ObjectId>& v) {
    return std::is_sorted(v.begin(), v.end()) &&
           std::adjacent_find(v.begin(), v.end()) == v.end();
  };
  if (!sorted_unique(live) || !sorted_unique(removed_) ||
      !sorted_unique(base_ids)) {
    return false;
  }
  const auto is_live = [&live](ObjectId id) {
    return std::binary_search(live.begin(), live.end(), id);
  };
  ObjectId prev_added = 0;
  for (size_t i = 0; i < added_.size(); ++i) {
    if (i > 0 && added_[i].id <= prev_added) return false;  // sorted, unique
    prev_added = added_[i].id;
    if (!is_live(added_[i].id)) return false;
  }
  // Removed ids must mask real base entries; every surviving base entry
  // must be live; and the live count reconciles with base/overlay sizes.
  for (ObjectId id : removed_) {
    if (!std::binary_search(base_ids.begin(), base_ids.end(), id)) {
      return false;
    }
  }
  size_t base_live = 0;
  for (ObjectId id : base_ids) {
    if (IsRemoved(id)) continue;
    ++base_live;
    if (!is_live(id)) return false;
  }
  return base_live + added_.size() == live.size();
}

ShardedSnapshotIndex::ShardedSnapshotIndex(
    std::vector<SnapshotIndex> shards,
    std::vector<std::shared_ptr<const std::vector<ObjectId>>> global_by_local,
    std::shared_ptr<const std::vector<ObjectId>> stable_by_dense)
    : shards_(std::move(shards)),
      global_by_local_(std::move(global_by_local)),
      stable_by_dense_(std::move(stable_by_dense)) {
  UPDB_CHECK(!shards_.empty());
  UPDB_CHECK(global_by_local_.size() == shards_.size());
  UPDB_CHECK(stable_by_dense_ != nullptr);
  for (size_t s = 0; s < shards_.size(); ++s) {
    UPDB_CHECK(global_by_local_[s] != nullptr &&
               global_by_local_[s]->size() == shards_[s].entry_count());
  }
}

size_t ShardedSnapshotIndex::delta_entries() const {
  size_t total = 0;
  for (const SnapshotIndex& shard : shards_) total += shard.delta_entries();
  return total;
}

void ShardedSnapshotIndex::ShardForEachIntersecting(
    size_t s, const Rect& query,
    const std::function<bool(const RTreeEntry&)>& fn) const {
  const std::vector<ObjectId>& translate = *global_by_local_[s];
  shards_[s].ForEachIntersecting(query, [&](const RTreeEntry& e) {
    return fn(RTreeEntry{e.mbr, translate[e.id]});
  });
}

void ShardedSnapshotIndex::ShardScanByMinDist(
    size_t s, const Rect& query,
    const std::function<bool(const RTreeEntry&, double)>& fn,
    const LpNorm& norm) const {
  const std::vector<ObjectId>& translate = *global_by_local_[s];
  shards_[s].ScanByMinDist(
      query,
      [&](const RTreeEntry& e, double dist) {
        return fn(RTreeEntry{e.mbr, translate[e.id]}, dist);
      },
      norm);
}

void ShardedSnapshotIndex::ForEachIntersecting(
    const Rect& query, const std::function<bool(const RTreeEntry&)>& fn)
    const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    bool live = true;
    ShardForEachIntersecting(s, query, [&](const RTreeEntry& e) {
      live = fn(e);
      return live;
    });
    if (!live) return;
  }
}

void ShardedSnapshotIndex::ScanByMinDist(
    const Rect& query,
    const std::function<bool(const RTreeEntry&, double)>& fn,
    const LpNorm& norm) const {
  if (shards_.size() == 1) {
    ShardScanByMinDist(0, query, fn, norm);
    return;
  }
  // K-way best-first merge of the shard cursors; ties break toward the
  // lower shard index so the emission order is deterministic.
  struct Head {
    double dist;
    size_t shard;
  };
  const auto later = [](const Head& a, const Head& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.shard > b.shard;
  };
  std::vector<std::unique_ptr<SnapshotIndex::MinDistCursor>> cursors;
  std::vector<const RTreeEntry*> head_entry(shards_.size(), nullptr);
  std::vector<double> head_dist(shards_.size(), 0.0);
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heads(later);
  cursors.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    cursors.push_back(std::make_unique<SnapshotIndex::MinDistCursor>(
        shards_[s], query, norm));
    if (cursors[s]->Next(&head_entry[s], &head_dist[s])) {
      heads.push(Head{head_dist[s], s});
    }
  }
  while (!heads.empty()) {
    const Head head = heads.top();
    heads.pop();
    const size_t s = head.shard;
    const RTreeEntry out{head_entry[s]->mbr,
                         (*global_by_local_[s])[head_entry[s]->id]};
    if (!fn(out, head.dist)) return;
    if (cursors[s]->Next(&head_entry[s], &head_dist[s])) {
      heads.push(Head{head_dist[s], s});
    }
  }
}

bool ShardedSnapshotIndex::Validate() const {
  const std::vector<ObjectId>& global = *stable_by_dense_;
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].Validate()) return false;
    const std::vector<ObjectId>& locals = *shards_[s].stable_by_dense_shared();
    const std::vector<ObjectId>& translate = *global_by_local_[s];
    if (translate.size() != locals.size()) return false;
    for (size_t l = 0; l < locals.size(); ++l) {
      // Shard routing and translation must agree with the global list.
      if (locals[l] % shards_.size() != s) return false;
      if (translate[l] >= global.size() ||
          global[translate[l]] != locals[l]) {
        return false;
      }
    }
    total += locals.size();
  }
  return total == global.size();
}

}  // namespace store
}  // namespace updb
