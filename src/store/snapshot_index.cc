#include "store/snapshot_index.h"

#include <algorithm>
#include <limits>

namespace updb {
namespace store {

SnapshotIndex::SnapshotIndex(
    std::shared_ptr<const RTree> base,
    std::shared_ptr<const std::vector<ObjectId>> base_ids,
    std::vector<RTreeEntry> added, std::vector<ObjectId> removed,
    std::shared_ptr<const std::vector<ObjectId>> stable_by_dense)
    : base_(std::move(base)),
      base_ids_(std::move(base_ids)),
      added_(std::move(added)),
      removed_(std::move(removed)),
      stable_by_dense_(std::move(stable_by_dense)) {
  UPDB_CHECK(base_ != nullptr);
  UPDB_CHECK(base_ids_ != nullptr && base_ids_->size() == base_->size());
  UPDB_CHECK(stable_by_dense_ != nullptr);
  if (!added_.empty()) {
    added_hull_ = added_[0].mbr;
    for (size_t i = 1; i < added_.size(); ++i) {
      added_hull_ = Rect::Hull(added_hull_, added_[i].mbr);
    }
  }
}

ObjectId SnapshotIndex::DenseOf(ObjectId stable) const {
  const std::vector<ObjectId>& ids = *stable_by_dense_;
  const auto it = std::lower_bound(ids.begin(), ids.end(), stable);
  UPDB_DCHECK(it != ids.end() && *it == stable);
  return static_cast<ObjectId>(it - ids.begin());
}

bool SnapshotIndex::IsRemoved(ObjectId stable) const {
  return std::binary_search(removed_.begin(), removed_.end(), stable);
}

void SnapshotIndex::ForEachIntersecting(
    const Rect& query, const std::function<bool(const RTreeEntry&)>& fn)
    const {
  bool live = true;
  base_->ForEachIntersecting(query, [&](const RTreeEntry& e) {
    if (IsRemoved(e.id)) return true;
    live = fn(RTreeEntry{e.mbr, DenseOf(e.id)});
    return live;
  });
  if (!live) return;
  if (added_.empty() || !added_hull_.Intersects(query)) return;
  for (const RTreeEntry& a : added_) {
    if (!a.mbr.Intersects(query)) continue;
    if (!fn(RTreeEntry{a.mbr, DenseOf(a.id)})) return;
  }
}

void SnapshotIndex::ScanByMinDist(
    const Rect& query,
    const std::function<bool(const RTreeEntry&, double)>& fn,
    const LpNorm& norm) const {
  // Distance-sort the overlay up front (it is bounded by the compaction
  // threshold), then merge it into the base tree's best-first stream.
  struct AddedItem {
    double dist;
    size_t index;  // into added_
  };
  std::vector<AddedItem> order;
  order.reserve(added_.size());
  for (size_t i = 0; i < added_.size(); ++i) {
    order.push_back(AddedItem{norm.MinDist(added_[i].mbr, query), i});
  }
  std::sort(order.begin(), order.end(),
            [this](const AddedItem& a, const AddedItem& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return added_[a.index].id < added_[b.index].id;
            });

  size_t next_added = 0;
  bool live = true;
  // Emits overlay entries at distance <= limit; false once `fn` stops.
  const auto emit_added_up_to = [&](double limit) {
    while (live && next_added < order.size() &&
           order[next_added].dist <= limit) {
      const AddedItem& item = order[next_added++];
      const RTreeEntry& a = added_[item.index];
      live = fn(RTreeEntry{a.mbr, DenseOf(a.id)}, item.dist);
    }
    return live;
  };

  base_->ScanByMinDist(
      query,
      [&](const RTreeEntry& e, double dist) {
        if (!emit_added_up_to(dist)) return false;
        if (IsRemoved(e.id)) return true;
        live = fn(RTreeEntry{e.mbr, DenseOf(e.id)}, dist);
        return live;
      },
      norm);
  if (live) emit_added_up_to(std::numeric_limits<double>::infinity());
}

bool SnapshotIndex::Validate() const {
  if (!base_->Validate()) return false;
  const std::vector<ObjectId>& live = *stable_by_dense_;
  const std::vector<ObjectId>& base_ids = *base_ids_;
  const auto sorted_unique = [](const std::vector<ObjectId>& v) {
    return std::is_sorted(v.begin(), v.end()) &&
           std::adjacent_find(v.begin(), v.end()) == v.end();
  };
  if (!sorted_unique(live) || !sorted_unique(removed_) ||
      !sorted_unique(base_ids)) {
    return false;
  }
  const auto is_live = [&live](ObjectId id) {
    return std::binary_search(live.begin(), live.end(), id);
  };
  ObjectId prev_added = 0;
  for (size_t i = 0; i < added_.size(); ++i) {
    if (i > 0 && added_[i].id <= prev_added) return false;  // sorted, unique
    prev_added = added_[i].id;
    if (!is_live(added_[i].id)) return false;
  }
  // Removed ids must mask real base entries; every surviving base entry
  // must be live; and the live count reconciles with base/overlay sizes.
  for (ObjectId id : removed_) {
    if (!std::binary_search(base_ids.begin(), base_ids.end(), id)) {
      return false;
    }
  }
  size_t base_live = 0;
  for (ObjectId id : base_ids) {
    if (IsRemoved(id)) continue;
    ++base_live;
    if (!is_live(id)) return false;
  }
  return base_live + added_.size() == live.size();
}

}  // namespace store
}  // namespace updb
