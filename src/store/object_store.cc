#include "store/object_store.h"

#include <algorithm>
#include <utility>

namespace updb {
namespace store {

const char* MutationKindName(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kInsert:
      return "insert";
    case Mutation::Kind::kUpdate:
      return "update";
    case Mutation::Kind::kRemove:
      return "remove";
  }
  return "unknown";
}

ObjectId StoreSnapshot::StableId(ObjectId dense) const {
  UPDB_CHECK(dense < stable_by_dense_->size());
  return (*stable_by_dense_)[dense];
}

StatusOr<ObjectId> StoreSnapshot::DenseId(ObjectId stable) const {
  const std::vector<ObjectId>& ids = *stable_by_dense_;
  const auto it = std::lower_bound(ids.begin(), ids.end(), stable);
  if (it == ids.end() || *it != stable) {
    return Status::NotFound("stable id not live at this version");
  }
  return static_cast<ObjectId>(it - ids.begin());
}

VersionedObjectStore::VersionedObjectStore(StoreOptions options)
    : options_(options) {
  UPDB_CHECK(options_.snapshot_retention >= 1);
  UPDB_CHECK(options_.leaf_capacity >= 2);
  InstallEmptySnapshot();
}

VersionedObjectStore::VersionedObjectStore(const UncertainDatabase& db,
                                           StoreOptions options)
    : VersionedObjectStore(options) {
  for (const UncertainObject& o : db.objects()) {
    const StatusOr<ObjectId> id = Insert(o.shared_pdf(), o.existence());
    UPDB_CHECK(id.ok());  // seed objects passed the same checks at Add()
  }
  Publish();
}

void VersionedObjectStore::InstallEmptySnapshot() {
  auto no_ids = std::make_shared<const std::vector<ObjectId>>();
  auto base = std::make_shared<const RTree>(std::vector<RTreeEntry>{},
                                            options_.leaf_capacity);
  auto snap = std::shared_ptr<const StoreSnapshot>(new StoreSnapshot(
      /*version=*/0, std::make_shared<const UncertainDatabase>(),
      SnapshotIndex(base, no_ids, {}, {}, no_ids), no_ids));
  latest_ = snap;
  retained_.push_back(std::move(snap));
}

StatusOr<ObjectId> VersionedObjectStore::Insert(
    std::shared_ptr<const Pdf> pdf, double existence) {
  Mutation m;
  m.kind = Mutation::Kind::kInsert;
  m.pdf = std::move(pdf);
  m.existence = existence;
  return Apply(m);
}

Status VersionedObjectStore::Update(ObjectId id,
                                    std::shared_ptr<const Pdf> pdf,
                                    double existence) {
  Mutation m;
  m.kind = Mutation::Kind::kUpdate;
  m.id = id;
  m.pdf = std::move(pdf);
  m.existence = existence;
  return Apply(m).status();
}

Status VersionedObjectStore::Remove(ObjectId id) {
  Mutation m;
  m.kind = Mutation::Kind::kRemove;
  m.id = id;
  return Apply(m).status();
}

StatusOr<ObjectId> VersionedObjectStore::Apply(const Mutation& mutation) {
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked(mutation);
}

StatusOr<ObjectId> VersionedObjectStore::ApplyLocked(
    const Mutation& mutation) {
  // Validate fully before touching any state: a rejected mutation must
  // leave both the live table and the write-ahead log unchanged.
  ObjectId target = mutation.id;
  switch (mutation.kind) {
    case Mutation::Kind::kInsert:
    case Mutation::Kind::kUpdate: {
      if (mutation.pdf == nullptr) {
        return Status::InvalidArgument("mutation without PDF");
      }
      if (mutation.existence <= 0.0 || mutation.existence > 1.0) {
        return Status::InvalidArgument("existence must be in (0, 1]");
      }
      if (dim_ != 0 && mutation.pdf->bounds().dim() != dim_) {
        return Status::InvalidArgument("object dimensionality mismatch");
      }
      if (mutation.kind == Mutation::Kind::kUpdate &&
          live_.find(target) == live_.end()) {
        return Status::NotFound("update of unknown object id");
      }
      break;
    }
    case Mutation::Kind::kRemove:
      if (live_.find(target) == live_.end()) {
        return Status::NotFound("remove of unknown object id");
      }
      break;
  }
  if (mutation.kind == Mutation::Kind::kInsert) {
    target = next_id_++;
    if (dim_ == 0) dim_ = mutation.pdf->bounds().dim();
  }

  // Write-ahead: log first, then apply to the live table.
  LogRecord record;
  record.sequence = next_sequence_++;
  record.mutation = mutation;
  record.mutation.id = target;
  record.assigned_id = target;
  wal_.push_back(std::move(record));
  ++total_mutations_;

  switch (mutation.kind) {
    case Mutation::Kind::kInsert:
    case Mutation::Kind::kUpdate:
      live_[target] = LiveObject{mutation.pdf, mutation.existence};
      break;
    case Mutation::Kind::kRemove:
      live_.erase(target);
      break;
  }
  return target;
}

std::shared_ptr<const StoreSnapshot> VersionedObjectStore::Publish() {
  // Publishers serialize here so builds (which overlap with writers)
  // install in version order.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);

  std::map<ObjectId, LiveObject> live;
  std::vector<LogRecord> window;
  std::shared_ptr<const StoreSnapshot> prev;
  Version version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live = live_;
    window = std::move(wal_);
    wal_.clear();
    prev = latest_;
    version = next_version_++;
  }

  // Materialize the dense-id view (O(N) pointer copies).
  auto stable_by_dense = std::make_shared<std::vector<ObjectId>>();
  stable_by_dense->reserve(live.size());
  auto db = std::make_shared<UncertainDatabase>();
  for (const auto& [id, obj] : live) {
    stable_by_dense->push_back(id);
    db->Add(obj.pdf, obj.existence);
  }

  // Stable ids touched by this window (insert/update/remove alike).
  std::vector<ObjectId> touched;
  touched.reserve(window.size());
  for (const LogRecord& r : window) touched.push_back(r.assigned_id);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  const auto is_touched = [&touched](ObjectId id) {
    return std::binary_search(touched.begin(), touched.end(), id);
  };

  // Compose the overlay relative to the previous snapshot's base: keep
  // untouched deltas, re-derive every touched id from the live table.
  const SnapshotIndex& prev_index = prev->index();
  std::shared_ptr<const RTree> base = prev_index.base_shared();
  std::shared_ptr<const std::vector<ObjectId>> base_ids =
      prev_index.base_ids_shared();
  std::vector<RTreeEntry> added;
  added.reserve(prev_index.added().size() + touched.size());
  for (const RTreeEntry& e : prev_index.added()) {
    if (!is_touched(e.id)) added.push_back(e);
  }
  std::vector<ObjectId> removed = prev_index.removed();
  for (ObjectId t : touched) {
    if (std::binary_search(base_ids->begin(), base_ids->end(), t)) {
      removed.push_back(t);
    }
    const auto it = live.find(t);
    if (it != live.end()) {
      added.push_back(RTreeEntry{it->second.pdf->bounds(), t});
    }
  }
  std::sort(added.begin(), added.end(),
            [](const RTreeEntry& a, const RTreeEntry& b) {
              return a.id < b.id;
            });
  std::sort(removed.begin(), removed.end());
  removed.erase(std::unique(removed.begin(), removed.end()), removed.end());

  const size_t delta = added.size() + removed.size();
  const bool rebuild =
      options_.compact_delta_fraction <= 0.0 ||
      static_cast<double>(delta) >
          options_.compact_delta_fraction *
              static_cast<double>(std::max<size_t>(base->size(), 1));

  std::shared_ptr<const StoreSnapshot> snap;
  if (rebuild) {
    std::vector<RTreeEntry> entries;
    entries.reserve(live.size());
    for (const auto& [id, obj] : live) {
      entries.push_back(RTreeEntry{obj.pdf->bounds(), id});
    }
    auto fresh = std::make_shared<const RTree>(std::move(entries),
                                               options_.leaf_capacity);
    snap = std::shared_ptr<const StoreSnapshot>(new StoreSnapshot(
        version, db,
        SnapshotIndex(std::move(fresh), stable_by_dense, {}, {},
                      stable_by_dense),
        stable_by_dense));
  } else {
    snap = std::shared_ptr<const StoreSnapshot>(new StoreSnapshot(
        version, db,
        SnapshotIndex(std::move(base), std::move(base_ids), std::move(added),
                      std::move(removed), stable_by_dense),
        stable_by_dense));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = snap;
    retained_.push_back(snap);
    while (retained_.size() > options_.snapshot_retention) {
      retained_.pop_front();
    }
  }
  return snap;
}

std::shared_ptr<const StoreSnapshot> VersionedObjectStore::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

std::shared_ptr<const StoreSnapshot> VersionedObjectStore::snapshot(
    Version version) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& snap : retained_) {
    if (snap->version() == version) return snap;
  }
  return nullptr;
}

Version VersionedObjectStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_->version();
}

size_t VersionedObjectStore::live_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

size_t VersionedObjectStore::pending_mutations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.size();
}

uint64_t VersionedObjectStore::total_mutations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_mutations_;
}

std::vector<LogRecord> VersionedObjectStore::PendingLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_;
}

std::vector<ObjectId> VersionedObjectStore::LiveIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectId> ids;
  ids.reserve(live_.size());
  for (const auto& [id, obj] : live_) ids.push_back(id);
  return ids;
}

size_t VersionedObjectStore::dim() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dim_;
}

}  // namespace store
}  // namespace updb
