#include "store/object_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/stopwatch.h"
#include "store/checkpoint.h"

namespace updb {
namespace store {

namespace {

/// Entry of `id` in a sorted CoW live table, nullptr when absent.
const LiveEntry* FindEntry(const LiveTable& table, ObjectId id) {
  const auto it = std::lower_bound(
      table.begin(), table.end(), id,
      [](const LiveEntry& e, ObjectId v) { return e.id < v; });
  return it != table.end() && it->id == id ? &*it : nullptr;
}

/// On-disk record kind of a mutation kind.
WalRecordKind WalKindOf(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kInsert:
      return WalRecordKind::kInsert;
    case Mutation::Kind::kUpdate:
      return WalRecordKind::kUpdate;
    case Mutation::Kind::kRemove:
      return WalRecordKind::kRemove;
  }
  return WalRecordKind::kInsert;
}

/// The published live set of `snap` as checkpoint entries (ascending
/// stable id — the dense-id order).
std::vector<CheckpointEntry> CheckpointEntriesOf(const StoreSnapshot& snap) {
  std::vector<CheckpointEntry> entries;
  entries.reserve(snap.size());
  const std::vector<UncertainObject>& objects = snap.db()->objects();
  for (size_t dense = 0; dense < snap.size(); ++dense) {
    const UncertainObject& o = objects[dense];
    entries.push_back(
        CheckpointEntry{snap.StableId(static_cast<ObjectId>(dense)),
                        o.shared_pdf(), o.existence()});
  }
  return entries;
}

/// True when `dir` already holds WAL segments or checkpoints.
bool DirHoldsStoreData(const std::string& dir) {
  std::error_code ec;
  for (const auto& it : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = it.path().filename().string();
    if (ParseWalShardFileName(name, nullptr)) return true;
    if (name.rfind("checkpoint-", 0) == 0) return true;
  }
  return false;
}

}  // namespace

const char* MutationKindName(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kInsert:
      return "insert";
    case Mutation::Kind::kUpdate:
      return "update";
    case Mutation::Kind::kRemove:
      return "remove";
  }
  return "unknown";
}

ObjectId StoreSnapshot::StableId(ObjectId dense) const {
  UPDB_CHECK(dense < stable_by_dense_->size());
  return (*stable_by_dense_)[dense];
}

StatusOr<ObjectId> StoreSnapshot::DenseId(ObjectId stable) const {
  const std::vector<ObjectId>& ids = *stable_by_dense_;
  const auto it = std::lower_bound(ids.begin(), ids.end(), stable);
  if (it == ids.end() || *it != stable) {
    return Status::NotFound("stable id not live at this version");
  }
  return static_cast<ObjectId>(it - ids.begin());
}

VersionedObjectStore::VersionedObjectStore(StoreOptions options)
    : options_(options) {
  UPDB_CHECK(options_.snapshot_retention >= 1);
  UPDB_CHECK(options_.leaf_capacity >= 2);
  UPDB_CHECK(options_.num_shards >= 1);
  RegisterMetrics();
  auto empty_table = std::make_shared<const LiveTable>();
  shards_.resize(options_.num_shards);
  for (Shard& shard : shards_) shard.table = empty_table;
  InstallEmptySnapshot();
}

void VersionedObjectStore::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics_registry;
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  obs_drain_seconds_ = registry->Histogram(
      "updb_store_publish_drain_seconds",
      "Writer-mutex hold of the publish drain step");
  obs_build_seconds_ = registry->Histogram(
      "updb_store_publish_build_seconds",
      "Snapshot build time of a publish (outside the writer mutex)");
  obs_publishes_ = registry->Counter("updb_store_publishes_total",
                                     "Snapshots published");
  obs_wal_appends_ = registry->Counter("updb_wal_appends_total",
                                       "WAL records appended");
  obs_wal_bytes_ = registry->Counter("updb_wal_appended_bytes_total",
                                     "WAL frame bytes appended");
  obs_wal_fsyncs_ = registry->Counter("updb_wal_fsyncs_total",
                                      "WAL segment fsyncs");
  obs_checkpoint_writes_ = registry->Counter("updb_checkpoint_writes_total",
                                             "Checkpoints written");
  obs_checkpoint_failures_ = registry->Counter(
      "updb_checkpoint_failures_total", "Checkpoint writes that failed");
}

VersionedObjectStore::VersionedObjectStore(const UncertainDatabase& db,
                                           StoreOptions options)
    : VersionedObjectStore(options) {
  for (const UncertainObject& o : db.objects()) {
    const StatusOr<ObjectId> id = Insert(o.shared_pdf(), o.existence());
    UPDB_CHECK(id.ok());  // seed objects passed the same checks at Add()
  }
  Publish();
}

void VersionedObjectStore::InstallEmptySnapshot() {
  auto no_ids = std::make_shared<const std::vector<ObjectId>>();
  std::vector<SnapshotIndex> shard_indexes;
  std::vector<std::shared_ptr<const std::vector<ObjectId>>> global_by_local;
  shard_indexes.reserve(options_.num_shards);
  global_by_local.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    auto base = std::make_shared<const RTree>(std::vector<RTreeEntry>{},
                                              options_.leaf_capacity);
    shard_indexes.emplace_back(std::move(base), no_ids,
                               std::vector<RTreeEntry>{},
                               std::vector<ObjectId>{}, no_ids);
    global_by_local.push_back(no_ids);
  }
  auto snap = std::shared_ptr<const StoreSnapshot>(new StoreSnapshot(
      /*version=*/0, std::make_shared<const UncertainDatabase>(),
      ShardedSnapshotIndex(std::move(shard_indexes),
                           std::move(global_by_local), no_ids),
      no_ids));
  latest_ = snap;
  retained_.push_back(std::move(snap));
}

StatusOr<ObjectId> VersionedObjectStore::Insert(
    std::shared_ptr<const Pdf> pdf, double existence) {
  Mutation m;
  m.kind = Mutation::Kind::kInsert;
  m.pdf = std::move(pdf);
  m.existence = existence;
  return Apply(m);
}

Status VersionedObjectStore::Update(ObjectId id,
                                    std::shared_ptr<const Pdf> pdf,
                                    double existence) {
  Mutation m;
  m.kind = Mutation::Kind::kUpdate;
  m.id = id;
  m.pdf = std::move(pdf);
  m.existence = existence;
  return Apply(m).status();
}

Status VersionedObjectStore::Remove(ObjectId id) {
  Mutation m;
  m.kind = Mutation::Kind::kRemove;
  m.id = id;
  return Apply(m).status();
}

StatusOr<ObjectId> VersionedObjectStore::Apply(const Mutation& mutation) {
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked(mutation);
}

bool VersionedObjectStore::IsLiveLocked(const Shard& shard,
                                        ObjectId id) const {
  const auto delta_it = shard.delta.find(id);
  if (delta_it != shard.delta.end()) return !delta_it->second.removed;
  if (shard.draining != nullptr) {
    const auto drain_it = shard.draining->find(id);
    if (drain_it != shard.draining->end()) return !drain_it->second.removed;
  }
  return FindEntry(*shard.table, id) != nullptr;
}

StatusOr<ObjectId> VersionedObjectStore::ApplyLocked(
    const Mutation& mutation) {
  // Validate fully before touching any state: a rejected mutation must
  // leave both the live view and the write-ahead windows unchanged.
  ObjectId target = mutation.id;
  switch (mutation.kind) {
    case Mutation::Kind::kInsert:
    case Mutation::Kind::kUpdate: {
      if (mutation.pdf == nullptr) {
        return Status::InvalidArgument("mutation without PDF");
      }
      if (mutation.existence <= 0.0 || mutation.existence > 1.0) {
        return Status::InvalidArgument("existence must be in (0, 1]");
      }
      if (dim_ != 0 && mutation.pdf->bounds().dim() != dim_) {
        return Status::InvalidArgument("object dimensionality mismatch");
      }
      if (mutation.kind == Mutation::Kind::kUpdate &&
          !IsLiveLocked(shards_[ShardOf(target)], target)) {
        return Status::NotFound("update of unknown object id");
      }
      break;
    }
    case Mutation::Kind::kRemove:
      if (!IsLiveLocked(shards_[ShardOf(target)], target)) {
        return Status::NotFound("remove of unknown object id");
      }
      break;
  }
  if (mutation.kind == Mutation::Kind::kInsert) target = next_id_;

  // Durable stores write ahead to the target shard's WAL segment before
  // any in-memory state changes; a failed (or unencodable) append rejects
  // the mutation with no side effects, and IO failures additionally stop
  // the store via the sticky wal_status_.
  if (durable_) {
    WalRecord wal_record;
    wal_record.kind = WalKindOf(mutation.kind);
    wal_record.sequence = next_sequence_;
    wal_record.id = target;
    wal_record.existence = mutation.existence;
    wal_record.pdf = mutation.pdf;
    UPDB_RETURN_IF_ERROR(WalAppendLocked(wal_record));
  }

  if (mutation.kind == Mutation::Kind::kInsert) {
    ++next_id_;
    if (dim_ == 0) dim_ = mutation.pdf->bounds().dim();
  }
  CommitMutationLocked(mutation, target, next_sequence_++);
  return target;
}

void VersionedObjectStore::CommitMutationLocked(const Mutation& mutation,
                                                ObjectId target,
                                                uint64_t sequence) {
  Shard& shard = shards_[ShardOf(target)];

  // Write-ahead: log first, then apply to the shard's live delta.
  LogRecord record;
  record.sequence = sequence;
  record.mutation = mutation;
  record.mutation.id = target;
  record.assigned_id = target;
  shard.wal.push_back(std::move(record));
  ++total_mutations_;

  switch (mutation.kind) {
    case Mutation::Kind::kInsert:
      shard.delta[target] = LiveDelta{false,
                                      LiveObject{mutation.pdf,
                                                 mutation.existence}};
      ++shard.live_count;
      break;
    case Mutation::Kind::kUpdate:
      shard.delta[target] = LiveDelta{false,
                                      LiveObject{mutation.pdf,
                                                 mutation.existence}};
      break;
    case Mutation::Kind::kRemove:
      shard.delta[target] = LiveDelta{true, LiveObject{}};
      --shard.live_count;
      break;
  }
}

Status VersionedObjectStore::WalAppendLocked(const WalRecord& record) {
  UPDB_DCHECK(durable_);
  if (!wal_status_.ok()) {
    return Status::Unavailable("durable store is failed: " +
                               wal_status_.ToString());
  }
  const size_t shard =
      record.kind == WalRecordKind::kPublish ? 0 : ShardOf(record.id);
  const Status appended = wal_writers_[shard]->Append(record);
  if (!appended.ok()) wal_status_ = appended;
  return appended;
}

std::shared_ptr<const StoreSnapshot> VersionedObjectStore::Publish(
    PublishStats* stats) {
  // Publishers serialize here so builds (which overlap with writers)
  // install in version order.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const size_t num_shards = shards_.size();

  PublishStats local_stats;
  std::vector<std::shared_ptr<const LiveTable>> tables(num_shards);
  std::vector<std::shared_ptr<const DeltaMap>> draining(num_shards);
  std::vector<std::vector<LogRecord>> windows(num_shards);
  std::shared_ptr<const StoreSnapshot> prev;
  Version version = 0;
  bool checkpoint_due = false;
  ObjectId ck_next_id = 0;
  uint64_t ck_next_sequence = 1;
  size_t ck_dim = 0;
  {
    // Drain: O(drained mutations + num_shards) — pointer grabs and moves
    // only, never a live-table copy. This is the only step writers wait
    // on; the timer starts after acquisition so drain_ms measures the
    // mutex *hold*, not contention-dependent lock wait.
    std::lock_guard<std::mutex> lock(mu_);
    Stopwatch drain_timer;
    for (size_t s = 0; s < num_shards; ++s) {
      Shard& shard = shards_[s];
      UPDB_DCHECK(shard.draining == nullptr);  // publishers serialize
      if (!shard.delta.empty()) {
        shard.draining = std::make_shared<const DeltaMap>(
            std::move(shard.delta));
        shard.delta.clear();
      }
      draining[s] = shard.draining;
      windows[s] = std::move(shard.wal);
      shard.wal.clear();
      tables[s] = shard.table;
      local_stats.drained_mutations += windows[s].size();
    }
    prev = latest_;
    version = next_version_++;
    if (durable_) {
      // The version-boundary marker consumes the next global sequence
      // number *inside* the drain, so every record drained into this
      // version has a smaller sequence and every still-pending one a
      // larger — recovery replays exactly this boundary. On append
      // failure the sequence is not consumed (no permanent gap); the
      // sticky wal_status_ stops further durable mutations anyway.
      WalRecord marker;
      marker.kind = WalRecordKind::kPublish;
      marker.sequence = next_sequence_;
      marker.version = version;
      if (WalAppendLocked(marker).ok()) ++next_sequence_;
      if (++publishes_since_checkpoint_ >= durability_.checkpoint_every) {
        checkpoint_due = true;
        publishes_since_checkpoint_ = 0;
      }
      ck_next_id = next_id_;
      ck_next_sequence = next_sequence_;
      ck_dim = dim_;
    }
    local_stats.drain_ms = drain_timer.ElapsedMillis();
  }
  obs_drain_seconds_->Record(local_stats.drain_ms / 1e3);
  if (options_.trace != nullptr) {
    // Backdated: the span covers the writer-mutex hold just released.
    const uint64_t dur_ns = static_cast<uint64_t>(local_stats.drain_ms * 1e6);
    const uint64_t now_ns = options_.trace->NowNs();
    const obs::TraceArg args[2] = {
        {"version", version}, {"drained", local_stats.drained_mutations}};
    options_.trace->RecordSpan("publish_drain", "store",
                               now_ns > dur_ns ? now_ns - dur_ns : 0, dur_ns,
                               args, 2);
  }

  Stopwatch build_timer;
  // Per shard: merge the CoW table with the drained delta, then compose
  // the shard's index overlay relative to the previous snapshot — keep
  // untouched deltas, re-derive every touched id from the merged table.
  std::vector<std::shared_ptr<const LiveTable>> merged(num_shards);
  std::vector<SnapshotIndex> shard_indexes;
  shard_indexes.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (draining[s] == nullptr) {
      merged[s] = tables[s];
    } else {
      auto table = std::make_shared<LiveTable>();
      table->reserve(tables[s]->size() + draining[s]->size());
      auto it = tables[s]->begin();
      const auto table_end = tables[s]->end();
      for (const auto& [id, change] : *draining[s]) {
        while (it != table_end && it->id < id) table->push_back(*it++);
        if (it != table_end && it->id == id) ++it;  // superseded
        if (!change.removed) table->push_back(LiveEntry{id, change.object});
      }
      table->insert(table->end(), it, table_end);
      merged[s] = std::move(table);
    }
    const LiveTable& live = *merged[s];

    auto shard_ids = std::make_shared<std::vector<ObjectId>>();
    shard_ids->reserve(live.size());
    for (const LiveEntry& e : live) shard_ids->push_back(e.id);

    // Stable ids touched by this shard's window (insert/update/remove
    // alike).
    std::vector<ObjectId> touched;
    touched.reserve(windows[s].size());
    for (const LogRecord& r : windows[s]) touched.push_back(r.assigned_id);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    const auto is_touched = [&touched](ObjectId id) {
      return std::binary_search(touched.begin(), touched.end(), id);
    };
    const SnapshotIndex& prev_shard = prev->index().shard(s);
    std::shared_ptr<const RTree> base = prev_shard.base_shared();
    std::shared_ptr<const std::vector<ObjectId>> base_ids =
        prev_shard.base_ids_shared();
    std::vector<RTreeEntry> added;
    added.reserve(prev_shard.added().size() + touched.size());
    for (const RTreeEntry& e : prev_shard.added()) {
      if (!is_touched(e.id)) added.push_back(e);
    }
    std::vector<ObjectId> removed = prev_shard.removed();
    for (ObjectId t : touched) {
      if (std::binary_search(base_ids->begin(), base_ids->end(), t)) {
        removed.push_back(t);
      }
      if (const LiveEntry* entry = FindEntry(live, t)) {
        added.push_back(RTreeEntry{entry->object.pdf->bounds(), t});
      }
    }
    std::sort(added.begin(), added.end(),
              [](const RTreeEntry& a, const RTreeEntry& b) {
                return a.id < b.id;
              });
    std::sort(removed.begin(), removed.end());
    removed.erase(std::unique(removed.begin(), removed.end()),
                  removed.end());

    const size_t delta = added.size() + removed.size();
    const bool rebuild =
        options_.compact_delta_fraction <= 0.0 ||
        static_cast<double>(delta) >
            options_.compact_delta_fraction *
                static_cast<double>(std::max<size_t>(base->size(), 1));
    if (rebuild) {
      std::vector<RTreeEntry> entries;
      entries.reserve(live.size());
      for (const LiveEntry& e : live) {
        entries.push_back(RTreeEntry{e.object.pdf->bounds(), e.id});
      }
      auto fresh = std::make_shared<const RTree>(std::move(entries),
                                                 options_.leaf_capacity);
      shard_indexes.emplace_back(std::move(fresh), shard_ids,
                                 std::vector<RTreeEntry>{},
                                 std::vector<ObjectId>{}, shard_ids);
    } else {
      shard_indexes.emplace_back(std::move(base), std::move(base_ids),
                                 std::move(added), std::move(removed),
                                 shard_ids);
    }
  }

  // Global materialization: k-way merge of the shard tables in ascending
  // stable-id order (the dense-id space), building the database, the
  // stable↔dense translation and the per-shard local→global maps.
  size_t total_live = 0;
  for (const auto& table : merged) total_live += table->size();
  auto stable_by_dense = std::make_shared<std::vector<ObjectId>>();
  stable_by_dense->reserve(total_live);
  auto db = std::make_shared<UncertainDatabase>();
  std::vector<std::shared_ptr<std::vector<ObjectId>>> global_by_local(
      num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    global_by_local[s] = std::make_shared<std::vector<ObjectId>>();
    global_by_local[s]->reserve(merged[s]->size());
  }
  std::vector<size_t> heads(num_shards, 0);
  for (size_t dense = 0; dense < total_live; ++dense) {
    size_t pick = num_shards;
    for (size_t s = 0; s < num_shards; ++s) {
      if (heads[s] >= merged[s]->size()) continue;
      if (pick == num_shards ||
          (*merged[s])[heads[s]].id < (*merged[pick])[heads[pick]].id) {
        pick = s;
      }
    }
    const LiveEntry& e = (*merged[pick])[heads[pick]++];
    stable_by_dense->push_back(e.id);
    global_by_local[pick]->push_back(static_cast<ObjectId>(dense));
    db->Add(e.object.pdf, e.object.existence);
  }
  std::vector<std::shared_ptr<const std::vector<ObjectId>>> translations;
  translations.reserve(num_shards);
  for (auto& t : global_by_local) translations.push_back(std::move(t));

  auto snap = std::shared_ptr<const StoreSnapshot>(new StoreSnapshot(
      version, std::move(db),
      ShardedSnapshotIndex(std::move(shard_indexes), std::move(translations),
                           stable_by_dense),
      stable_by_dense));
  local_stats.build_ms = build_timer.ElapsedMillis();
  obs_build_seconds_->Record(local_stats.build_ms / 1e3);
  if (options_.trace != nullptr) {
    const uint64_t dur_ns = static_cast<uint64_t>(local_stats.build_ms * 1e6);
    const uint64_t now_ns = options_.trace->NowNs();
    const obs::TraceArg args[1] = {{"version", version}};
    options_.trace->RecordSpan("publish_build", "store",
                               now_ns > dur_ns ? now_ns - dur_ns : 0, dur_ns,
                               args, 1);
  }

  // Under every_publish/every_batch, force the drained records to stable
  // storage *before* the snapshot becomes visible: a version a reader can
  // observe is a version recovery can rebuild. Runs outside mu_ —
  // concurrent appends belong to later versions and syncing them early is
  // harmless.
  Status sync_error;
  if (durable_ && durability_.fsync != FsyncPolicy::kNever) {
    obs::TraceSpan fsync_span(options_.trace, "wal_fsync", "store");
    fsync_span.AddArg("version", version);
    for (const auto& writer : wal_writers_) {
      if (!writer->dirty()) continue;
      const Status synced = writer->Sync();
      if (!synced.ok() && sync_error.ok()) sync_error = synced;
    }
  }

  {
    // Install: swap in the merged tables and the snapshot — O(num_shards)
    // pointer stores.
    std::lock_guard<std::mutex> lock(mu_);
    if (!sync_error.ok() && wal_status_.ok()) wal_status_ = sync_error;
    for (size_t s = 0; s < num_shards; ++s) {
      shards_[s].table = merged[s];
      shards_[s].draining = nullptr;
    }
    latest_ = snap;
    retained_.push_back(snap);
    while (retained_.size() > options_.snapshot_retention) {
      retained_.pop_front();
    }
    ++publish_metrics_.publishes;
    publish_metrics_.total_drain_ms += local_stats.drain_ms;
    publish_metrics_.max_drain_ms =
        std::max(publish_metrics_.max_drain_ms, local_stats.drain_ms);
    publish_metrics_.total_build_ms += local_stats.build_ms;
    publish_metrics_.max_build_ms =
        std::max(publish_metrics_.max_build_ms, local_stats.build_ms);
  }
  obs_publishes_->Add();

  if (checkpoint_due) {
    // Checkpoint the just-installed version (outside mu_, still under
    // publish_mu_). Always fsynced + atomically renamed regardless of the
    // WAL fsync policy; a failure is sticky but the in-memory snapshot
    // stays valid.
    obs::TraceSpan ck_span(options_.trace, "checkpoint_write", "store");
    ck_span.AddArg("version", version);
    CheckpointState ck;
    ck.version = version;
    ck.next_id = ck_next_id;
    ck.next_sequence = ck_next_sequence;
    ck.dim = ck_dim;
    ck.entries = CheckpointEntriesOf(*snap);
    Status ck_status = WriteCheckpoint(durability_.wal_dir, ck);
    if (ck_status.ok()) {
      ++checkpoint_writes_;
      obs_checkpoint_writes_->Add();
      ck_status =
          PruneCheckpoints(durability_.wal_dir, durability_.checkpoint_keep);
    } else {
      ++checkpoint_failures_;
      obs_checkpoint_failures_->Add();
    }
    if (!ck_status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (wal_status_.ok()) wal_status_ = ck_status;
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return snap;
}

StatusOr<std::unique_ptr<VersionedObjectStore>> VersionedObjectStore::Open(
    StoreOptions options) {
  const std::string& dir = options.durability.wal_dir;
  if (dir.empty()) {
    return Status::InvalidArgument("Open() requires durability.wal_dir");
  }
  if (DirHoldsStoreData(dir)) {
    return Status::FailedPrecondition(
        "'" + dir + "' already holds WAL segments or checkpoints; recover "
        "them with store::RecoverStore instead of overwriting");
  }
  auto store = std::make_unique<VersionedObjectStore>(options);
  UPDB_RETURN_IF_ERROR(store->AttachDurability(options.durability));
  return store;
}

StatusOr<std::unique_ptr<VersionedObjectStore>> VersionedObjectStore::Open(
    const UncertainDatabase& db, StoreOptions options) {
  const std::string& dir = options.durability.wal_dir;
  if (dir.empty()) {
    return Status::InvalidArgument("Open() requires durability.wal_dir");
  }
  if (DirHoldsStoreData(dir)) {
    return Status::FailedPrecondition(
        "'" + dir + "' already holds WAL segments or checkpoints; recover "
        "them with store::RecoverStore instead of overwriting");
  }
  auto store = std::make_unique<VersionedObjectStore>(db, options);
  UPDB_RETURN_IF_ERROR(store->AttachDurability(options.durability));
  return store;
}

Status VersionedObjectStore::AttachDurability(
    const DurabilityOptions& durability) {
  // publish_mu_ keeps any concurrent Publish out of the capture below;
  // the caller guarantees no concurrent mutators (see header).
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  if (durable_) {
    return Status::FailedPrecondition("durability already attached");
  }
  if (durability.wal_dir.empty()) {
    return Status::InvalidArgument("durability requires a wal_dir");
  }
  if (durability.checkpoint_every == 0 || durability.checkpoint_keep == 0) {
    return Status::InvalidArgument(
        "checkpoint_every and checkpoint_keep must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(durability.wal_dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create WAL directory '" +
                               durability.wal_dir + "': " + ec.message());
  }

  // Capture the published state and the still-pending windows. The
  // checkpoint's next_sequence points at the first pending record, so a
  // crash at any point below replays the pending tail from whichever
  // segment set (old or fresh) survives.
  CheckpointState ck;
  std::vector<LogRecord> pending;
  std::shared_ptr<const StoreSnapshot> snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = latest_;
    ck.version = snap->version();
    ck.next_id = next_id_;
    ck.dim = dim_;
    for (const Shard& shard : shards_) {
      pending.insert(pending.end(), shard.wal.begin(), shard.wal.end());
    }
    std::sort(pending.begin(), pending.end(),
              [](const LogRecord& a, const LogRecord& b) {
                return a.sequence < b.sequence;
              });
    ck.next_sequence =
        pending.empty() ? next_sequence_ : pending.front().sequence;
  }
  ck.entries = CheckpointEntriesOf(*snap);
  UPDB_RETURN_IF_ERROR(WriteCheckpoint(durability.wal_dir, ck));
  ++checkpoint_writes_;
  obs_checkpoint_writes_->Add();

  // Rebuild the WAL segment set from scratch: delete every stale segment
  // (including those of a different shard count — replay routes by
  // sequence, but leftovers would shadow fresh appends), open fresh ones,
  // re-append the pending mutations, and sync.
  for (const auto& it :
       std::filesystem::directory_iterator(durability.wal_dir, ec)) {
    if (ParseWalShardFileName(it.path().filename().string(), nullptr)) {
      std::error_code rm_ec;
      std::filesystem::remove(it.path(), rm_ec);
      if (rm_ec) {
        return Status::Unavailable("cannot remove stale WAL segment '" +
                                   it.path().string() + "'");
      }
    }
  }
  std::vector<std::unique_ptr<WalShardWriter>> writers;
  writers.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    StatusOr<std::unique_ptr<WalShardWriter>> writer = WalShardWriter::Open(
        durability.wal_dir + "/" + WalShardFileName(s), /*truncate=*/true);
    if (!writer.ok()) return writer.status();
    writer.value()->SetMetrics(obs_wal_appends_, obs_wal_bytes_,
                               obs_wal_fsyncs_);
    writers.push_back(std::move(writer).value());
  }
  for (const LogRecord& r : pending) {
    WalRecord wal_record;
    wal_record.kind = WalKindOf(r.mutation.kind);
    wal_record.sequence = r.sequence;
    wal_record.id = r.assigned_id;
    wal_record.existence = r.mutation.existence;
    wal_record.pdf = r.mutation.pdf;
    UPDB_RETURN_IF_ERROR(
        writers[ShardOf(r.assigned_id)]->Append(wal_record));
  }
  for (const auto& writer : writers) {
    UPDB_RETURN_IF_ERROR(writer->Sync());
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    durable_ = true;
    durability_ = durability;
    wal_writers_ = std::move(writers);
    wal_status_ = Status::OK();
    publishes_since_checkpoint_ = 0;
  }
  // Best-effort: stale checkpoints never affect correctness.
  (void)PruneCheckpoints(durability.wal_dir, durability.checkpoint_keep);
  return Status::OK();
}

Status VersionedObjectStore::wal_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_status_;
}

std::string WalStats::ToJson(const Status& wal_status) const {
  std::string status_text = wal_status.ToString();
  std::string escaped;
  escaped.reserve(status_text.size());
  for (char c : status_text) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped.push_back(c);
    }
  }
  std::string json = "{\"durable\":";
  json += durable ? "true" : "false";
  json += ",\"fsync_policy\":\"";
  json += FsyncPolicyName(fsync);
  json += "\",\"appends\":" + std::to_string(appends);
  json += ",\"appended_bytes\":" + std::to_string(appended_bytes);
  json += ",\"fsyncs\":" + std::to_string(fsyncs);
  json += ",\"checkpoint_writes\":" + std::to_string(checkpoint_writes);
  json += ",\"checkpoint_failures\":" + std::to_string(checkpoint_failures);
  json += ",\"status\":\"" + escaped + "\"}";
  return json;
}

WalStats VersionedObjectStore::wal_stats() const {
  WalStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.durable = durable_;
    out.fsync = durability_.fsync;
    // Writer odometers are atomics; summing under mu_ keeps the set of
    // writers stable (AttachDurability swaps the vector under mu_).
    for (const auto& writer : wal_writers_) {
      out.appends += writer->appended_records();
      out.appended_bytes += writer->appended_bytes();
      out.fsyncs += writer->fsyncs();
    }
  }
  out.checkpoint_writes = checkpoint_writes_;
  out.checkpoint_failures = checkpoint_failures_;
  return out;
}

Status VersionedObjectStore::SyncWal() {
  if (!durable_) return Status::OK();
  Status first;
  for (const auto& writer : wal_writers_) {
    if (!writer->dirty()) continue;
    const Status synced = writer->Sync();
    if (!synced.ok() && first.ok()) first = synced;
  }
  if (!first.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_status_.ok()) wal_status_ = first;
  }
  return first;
}

Status VersionedObjectStore::ApplyForRecovery(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_) {
    return Status::FailedPrecondition(
        "recovery replay after durability attached");
  }
  Mutation m;
  switch (record.kind) {
    case WalRecordKind::kInsert:
      m.kind = Mutation::Kind::kInsert;
      break;
    case WalRecordKind::kUpdate:
      m.kind = Mutation::Kind::kUpdate;
      break;
    case WalRecordKind::kRemove:
      m.kind = Mutation::Kind::kRemove;
      break;
    case WalRecordKind::kPublish:
      return Status::InvalidArgument(
          "publish marker is not a mutation record");
  }
  m.id = record.id;
  m.pdf = record.pdf;
  m.existence = record.existence;
  if (m.id == kInvalidObjectId) {
    return Status::DataLoss("replayed record without a target id");
  }

  // A CRC-valid record whose content cannot apply is corruption too —
  // reject with DataLoss (the caller truncates replay there), never abort.
  switch (m.kind) {
    case Mutation::Kind::kInsert:
    case Mutation::Kind::kUpdate: {
      if (m.pdf == nullptr) {
        return Status::DataLoss("replayed mutation without PDF");
      }
      if (m.existence <= 0.0 || m.existence > 1.0) {
        return Status::DataLoss("replayed existence outside (0, 1]");
      }
      if (dim_ != 0 && m.pdf->bounds().dim() != dim_) {
        return Status::DataLoss("replayed object dimensionality mismatch");
      }
      if (m.kind == Mutation::Kind::kInsert) {
        if (m.id < next_id_) {
          return Status::DataLoss("replayed insert id regresses");
        }
      } else if (!IsLiveLocked(shards_[ShardOf(m.id)], m.id)) {
        return Status::DataLoss("replayed update of a dead id");
      }
      break;
    }
    case Mutation::Kind::kRemove:
      if (!IsLiveLocked(shards_[ShardOf(m.id)], m.id)) {
        return Status::DataLoss("replayed remove of a dead id");
      }
      break;
  }

  if (m.kind == Mutation::Kind::kInsert) {
    next_id_ = m.id + 1;
    if (dim_ == 0) dim_ = m.pdf->bounds().dim();
  }
  CommitMutationLocked(m, m.id, record.sequence);
  if (record.sequence >= next_sequence_) {
    next_sequence_ = record.sequence + 1;
  }
  return Status::OK();
}

Status VersionedObjectStore::PublishForRecovery(Version version) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (durable_) {
      return Status::FailedPrecondition(
          "recovery replay after durability attached");
    }
    if (version < next_version_) {
      return Status::DataLoss("replayed publish version regresses");
    }
    next_version_ = version;
  }
  Publish();
  return Status::OK();
}

Status VersionedObjectStore::SetRecoveryWatermarks(ObjectId next_id,
                                                   uint64_t next_sequence,
                                                   size_t dim) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_) {
    return Status::FailedPrecondition(
        "recovery replay after durability attached");
  }
  if (dim != 0) {
    if (dim_ != 0 && dim_ != dim) {
      return Status::DataLoss(
          "checkpoint dimensionality disagrees with restored state");
    }
    dim_ = dim;
  }
  next_id_ = std::max(next_id_, next_id);
  next_sequence_ = std::max(next_sequence_, next_sequence);
  return Status::OK();
}

std::shared_ptr<const StoreSnapshot> VersionedObjectStore::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

std::shared_ptr<const StoreSnapshot> VersionedObjectStore::snapshot(
    Version version) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& snap : retained_) {
    if (snap->version() == version) return snap;
  }
  return nullptr;
}

Version VersionedObjectStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_->version();
}

size_t VersionedObjectStore::live_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.live_count;
  return total;
}

std::vector<size_t> VersionedObjectStore::ShardLiveCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const Shard& shard : shards_) counts.push_back(shard.live_count);
  return counts;
}

size_t VersionedObjectStore::pending_mutations() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.wal.size();
  return total;
}

uint64_t VersionedObjectStore::total_mutations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_mutations_;
}

PublishMetrics VersionedObjectStore::publish_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return publish_metrics_;
}

std::vector<LogRecord> VersionedObjectStore::PendingLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> log;
  for (const Shard& shard : shards_) {
    log.insert(log.end(), shard.wal.begin(), shard.wal.end());
  }
  std::sort(log.begin(), log.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.sequence < b.sequence;
            });
  return log;
}

std::vector<ObjectId> VersionedObjectStore::LiveIds() const {
  // Consistent per-shard views — immutable table/draining pointers plus an
  // O(delta) copy of the pending map — so the walks and the final sort run
  // off the writer mutex (the mutex-hold discipline is O(delta), same as
  // the publish drain).
  struct ShardView {
    std::shared_ptr<const LiveTable> table;
    std::shared_ptr<const DeltaMap> draining;
    DeltaMap delta;
  };
  std::vector<ShardView> views;
  {
    std::lock_guard<std::mutex> lock(mu_);
    views.reserve(shards_.size());
    for (const Shard& shard : shards_) {
      views.push_back(ShardView{shard.table, shard.draining, shard.delta});
    }
  }
  static const DeltaMap kEmptyDelta;
  std::vector<ObjectId> ids;
  for (const ShardView& view : views) {
    // Three-way ascending walk of table ∘ draining ∘ delta (rightmost
    // wins), appending this shard's live ids.
    const LiveTable& table = *view.table;
    const DeltaMap& draining =
        view.draining != nullptr ? *view.draining : kEmptyDelta;
    size_t ti = 0;
    auto di = draining.begin();
    auto pi = view.delta.begin();
    while (ti < table.size() || di != draining.end() ||
           pi != view.delta.end()) {
      ObjectId id = kInvalidObjectId;
      if (ti < table.size()) id = std::min(id, table[ti].id);
      if (di != draining.end()) id = std::min(id, di->first);
      if (pi != view.delta.end()) id = std::min(id, pi->first);
      bool removed = false;
      if (pi != view.delta.end() && pi->first == id) {
        removed = pi->second.removed;
      } else if (di != draining.end() && di->first == id) {
        removed = di->second.removed;
      }
      if (!removed) ids.push_back(id);
      if (ti < table.size() && table[ti].id == id) ++ti;
      if (di != draining.end() && di->first == id) ++di;
      if (pi != view.delta.end() && pi->first == id) ++pi;
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t VersionedObjectStore::dim() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dim_;
}

}  // namespace store
}  // namespace updb
