#include "store/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "io/dataset_io.h"
#include "store/wal.h"
#include "uncertain/object.h"

namespace updb {
namespace store {

namespace {

constexpr char kHeaderLine[] = "# updb-checkpoint v1\n";
constexpr char kFilePrefix[] = "checkpoint-";
constexpr char kFileSuffix[] = ".updbck";
constexpr char kTmpSuffix[] = ".tmp";

/// Writes `data` to `path` and fsyncs it. Unavailable on failure.
Status WriteFileDurably(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot create '" + path + "': " +
                               std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Unavailable("write to '" + path + "' failed: " + err);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("fsync of '" + path + "' failed: " + err);
  }
  ::close(fd);
  return Status::OK();
}

/// fsyncs a directory so a just-renamed entry is durable.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Unavailable("cannot open directory '" + dir + "': " +
                               std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable("fsync of directory '" + dir + "' failed");
  }
  return Status::OK();
}

/// Extracts the version from a checkpoint file name; false for other
/// names (including .tmp leftovers).
bool ParseCheckpointFileName(std::string_view name, uint64_t* version) {
  const std::string_view prefix(kFilePrefix);
  const std::string_view suffix(kFileSuffix);
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (version != nullptr) *version = value;
  return true;
}

/// Validates and parses one checkpoint file's full content.
StatusOr<CheckpointState> ParseCheckpoint(const std::string& data) {
  // Split off the CRC trailer: the last non-empty line.
  const size_t trailer_pos = data.rfind("# crc32c=");
  if (trailer_pos == std::string::npos || trailer_pos == 0) {
    return Status::DataLoss("missing crc32c trailer");
  }
  unsigned long long crc_value = 0;
  if (std::sscanf(data.c_str() + trailer_pos, "# crc32c=%llx",
                  &crc_value) != 1) {
    return Status::DataLoss("unparseable crc32c trailer");
  }
  if (Crc32c(data.data(), trailer_pos) !=
      static_cast<uint32_t>(crc_value)) {
    return Status::DataLoss("checkpoint CRC32C mismatch");
  }

  // Line-wise parse of the validated body.
  const std::string_view body(data.data(), trailer_pos);
  if (body.substr(0, std::strlen(kHeaderLine)) != kHeaderLine) {
    return Status::DataLoss("bad checkpoint header");
  }
  size_t pos = std::strlen(kHeaderLine);
  const auto next_line = [&body, &pos]() -> std::string {
    const size_t end = body.find('\n', pos);
    const size_t line_end = end == std::string_view::npos ? body.size() : end;
    std::string line(body.substr(pos, line_end - pos));
    pos = line_end == body.size() ? body.size() : line_end + 1;
    return line;
  };

  CheckpointState state;
  unsigned long long version = 0, next_id = 0, next_sequence = 0, dim = 0,
                     entries = 0;
  const std::string meta = next_line();
  if (std::sscanf(meta.c_str(),
                  "version=%llu next_id=%llu next_sequence=%llu dim=%llu "
                  "entries=%llu",
                  &version, &next_id, &next_sequence, &dim, &entries) != 5) {
    return Status::DataLoss("unparseable checkpoint metadata line");
  }
  state.version = version;
  state.next_id = static_cast<ObjectId>(next_id);
  state.next_sequence = next_sequence;
  state.dim = static_cast<size_t>(dim);
  state.entries.reserve(static_cast<size_t>(entries));
  ObjectId prev_id = 0;
  for (uint64_t i = 0; i < entries; ++i) {
    if (pos >= body.size()) {
      return Status::DataLoss("checkpoint entry count exceeds content");
    }
    const std::string line = next_line();
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::DataLoss("checkpoint entry without stable id");
    }
    char* end = nullptr;
    const unsigned long long stable =
        std::strtoull(line.c_str(), &end, 10);
    if (end != line.c_str() + comma) {
      return Status::DataLoss("unparseable stable id in checkpoint entry");
    }
    const StatusOr<io::ParsedObject> parsed =
        io::ParseObject(line.substr(comma + 1));
    if (!parsed.ok()) {
      return Status::DataLoss("undecodable checkpoint entry: " +
                              parsed.status().ToString());
    }
    CheckpointEntry entry;
    entry.stable_id = static_cast<ObjectId>(stable);
    entry.pdf = parsed->pdf;
    entry.existence = parsed->existence;
    if (i > 0 && entry.stable_id <= prev_id) {
      return Status::DataLoss("checkpoint entries not ascending");
    }
    if (entry.stable_id >= state.next_id) {
      return Status::DataLoss("checkpoint entry beyond next_id watermark");
    }
    prev_id = entry.stable_id;
    state.entries.push_back(std::move(entry));
  }
  if (pos != body.size()) {
    return Status::DataLoss("trailing content after checkpoint entries");
  }
  return state;
}

}  // namespace

std::string CheckpointFileName(uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", kFilePrefix, version,
                kFileSuffix);
  return buf;
}

Status WriteCheckpoint(const std::string& dir, const CheckpointState& state) {
  std::string content = kHeaderLine;
  char meta[192];
  std::snprintf(meta, sizeof(meta),
                "version=%llu next_id=%llu next_sequence=%llu dim=%zu "
                "entries=%zu\n",
                static_cast<unsigned long long>(state.version),
                static_cast<unsigned long long>(state.next_id),
                static_cast<unsigned long long>(state.next_sequence),
                state.dim, state.entries.size());
  content += meta;
  for (const CheckpointEntry& entry : state.entries) {
    const StatusOr<std::string> line = io::SerializeObject(
        UncertainObject(entry.stable_id, entry.pdf, entry.existence));
    if (!line.ok()) return line.status();
    content += std::to_string(entry.stable_id);
    content += ',';
    content += *line;
    content += '\n';
  }
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "# crc32c=%08x\n",
                Crc32c(content.data(), content.size()));
  content += trailer;

  const std::string final_name = CheckpointFileName(state.version);
  const std::string tmp_path = dir + "/" + final_name + kTmpSuffix;
  const std::string final_path = dir + "/" + final_name;
  UPDB_RETURN_IF_ERROR(WriteFileDurably(tmp_path, content));
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Unavailable("rename of checkpoint into '" + final_path +
                               "' failed: " + std::strerror(errno));
  }
  return SyncDir(dir);
}

StatusOr<LoadedCheckpoint> LoadNewestCheckpoint(const std::string& dir) {
  std::error_code ec;
  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const auto& it : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t version = 0;
    const std::string name = it.path().filename().string();
    if (ParseCheckpointFileName(name, &version)) {
      candidates.emplace_back(version, it.path().string());
    }
  }
  if (ec) {
    return Status::Unavailable("cannot read WAL directory '" + dir +
                               "': " + ec.message());
  }
  if (candidates.empty()) {
    return Status::NotFound("no checkpoint files in '" + dir + "'");
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  LoadedCheckpoint loaded;
  for (const auto& [version, path] : candidates) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      loaded.warnings.push_back("cannot open '" + path + "'");
      continue;
    }
    std::string data;
    char buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
      loaded.warnings.push_back("read error on '" + path + "'");
      continue;
    }
    StatusOr<CheckpointState> state = ParseCheckpoint(data);
    if (!state.ok()) {
      loaded.warnings.push_back("'" + path +
                                "' rejected: " + state.status().ToString());
      continue;
    }
    if (state->version != version) {
      loaded.warnings.push_back("'" + path + "' names version " +
                                std::to_string(state->version));
      continue;
    }
    loaded.state = *std::move(state);
    loaded.path = path;
    return loaded;
  }
  std::string detail;
  for (const std::string& w : loaded.warnings) {
    if (!detail.empty()) detail += "; ";
    detail += w;
  }
  return Status::DataLoss("no checkpoint in '" + dir +
                          "' validates: " + detail);
}

Status PruneCheckpoints(const std::string& dir, size_t keep) {
  std::error_code ec;
  std::vector<std::pair<uint64_t, std::string>> checkpoints;
  std::vector<std::string> stale_tmps;
  for (const auto& it : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = it.path().filename().string();
    uint64_t version = 0;
    if (ParseCheckpointFileName(name, &version)) {
      checkpoints.emplace_back(version, it.path().string());
    } else if (name.size() > std::strlen(kTmpSuffix) &&
               name.rfind(kTmpSuffix) == name.size() -
                                             std::strlen(kTmpSuffix) &&
               name.rfind(kFilePrefix, 0) == 0) {
      stale_tmps.push_back(it.path().string());
    }
  }
  if (ec) {
    return Status::Unavailable("cannot read WAL directory '" + dir +
                               "': " + ec.message());
  }
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  Status first_error;
  const auto remove_file = [&first_error](const std::string& path) {
    std::error_code rm_ec;
    std::filesystem::remove(path, rm_ec);
    if (rm_ec && first_error.ok()) {
      first_error = Status::Unavailable("cannot remove '" + path +
                                        "': " + rm_ec.message());
    }
  };
  for (size_t i = keep; i < checkpoints.size(); ++i) {
    remove_file(checkpoints[i].second);
  }
  for (const std::string& tmp : stale_tmps) remove_file(tmp);
  return first_error;
}

}  // namespace store
}  // namespace updb
