#include "index/rtree.h"

#include <algorithm>
#include <cmath>

namespace updb {

namespace {

/// Recursive Sort-Tile-Recursive ordering: arranges entries so that
/// consecutive chunks of `leaf_capacity` are spatially coherent.
void TileSort(std::vector<RTreeEntry>& entries, size_t begin, size_t end,
              size_t axis, size_t dim, size_t leaf_capacity) {
  const size_t n = end - begin;
  if (n <= leaf_capacity) return;
  auto by_center = [axis](const RTreeEntry& a, const RTreeEntry& b) {
    return a.mbr.side(axis).mid() < b.mbr.side(axis).mid();
  };
  std::sort(entries.begin() + begin, entries.begin() + end, by_center);
  if (axis + 1 == dim) return;

  const double leaves =
      std::ceil(static_cast<double>(n) / static_cast<double>(leaf_capacity));
  const double dims_left = static_cast<double>(dim - axis);
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::pow(leaves, 1.0 / dims_left))));
  const size_t slab_size = (n + slabs - 1) / slabs;
  for (size_t s = begin; s < end; s += slab_size) {
    TileSort(entries, s, std::min(s + slab_size, end), axis + 1, dim,
             leaf_capacity);
  }
}

Rect HullOfEntries(const std::vector<RTreeEntry>& entries, size_t begin,
                   size_t end) {
  Rect mbr = entries[begin].mbr;
  for (size_t i = begin + 1; i < end; ++i) {
    mbr = Rect::Hull(mbr, entries[i].mbr);
  }
  return mbr;
}

}  // namespace

RTree::RTree(std::vector<RTreeEntry> entries, size_t leaf_capacity)
    : entries_(std::move(entries)), leaf_capacity_(leaf_capacity) {
  UPDB_CHECK(leaf_capacity_ >= 2);
  num_entries_ = entries_.size();
  if (entries_.empty()) return;

  const size_t dim = entries_[0].mbr.dim();
  TileSort(entries_, 0, entries_.size(), 0, dim, leaf_capacity_);

  // Pack leaves over consecutive chunks.
  std::vector<uint32_t> level;
  for (size_t b = 0; b < entries_.size(); b += leaf_capacity_) {
    const size_t e = std::min(b + leaf_capacity_, entries_.size());
    nodes_.push_back(Node{HullOfEntries(entries_, b, e), /*leaf=*/true,
                          static_cast<uint32_t>(b), static_cast<uint32_t>(e)});
    level.push_back(static_cast<uint32_t>(nodes_.size() - 1));
  }
  height_ = 1;

  // Pack internal levels bottom-up; each level's nodes are contiguous in
  // nodes_, so a parent's children form an index range.
  while (level.size() > 1) {
    std::vector<uint32_t> parents;
    for (size_t b = 0; b < level.size(); b += leaf_capacity_) {
      const size_t e = std::min(b + leaf_capacity_, level.size());
      Rect mbr = nodes_[level[b]].mbr;
      for (size_t i = b + 1; i < e; ++i) {
        mbr = Rect::Hull(mbr, nodes_[level[i]].mbr);
      }
      nodes_.push_back(Node{std::move(mbr), /*leaf=*/false, level[b],
                            static_cast<uint32_t>(level[e - 1] + 1)});
      parents.push_back(static_cast<uint32_t>(nodes_.size() - 1));
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level[0];
}

std::vector<ObjectId> RTree::RangeIntersect(const Rect& query) const {
  std::vector<ObjectId> out;
  ForEachIntersecting(query, [&out](const RTreeEntry& e) {
    out.push_back(e.id);
    return true;
  });
  return out;
}

void RTree::ForEachIntersecting(
    const Rect& query,
    const std::function<bool(const RTreeEntry&)>& fn) const {
  if (empty()) return;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.mbr.Intersects(query)) continue;
    if (node.leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (entries_[i].mbr.Intersects(query)) {
          if (!fn(entries_[i])) return;
        }
      }
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) stack.push_back(c);
    }
  }
}

void RTree::ScanByMinDist(
    const Rect& query,
    const std::function<bool(const RTreeEntry&, double)>& fn,
    const LpNorm& norm) const {
  MinDistCursor cursor(*this, query, norm);
  const RTreeEntry* entry = nullptr;
  double dist = 0.0;
  while (cursor.Next(&entry, &dist)) {
    if (!fn(*entry, dist)) return;
  }
}

RTree::MinDistCursor::MinDistCursor(const RTree& tree, const Rect& query,
                                    const LpNorm& norm)
    : tree_(tree), query_(query), norm_(norm) {
  if (!tree_.empty()) {
    pq_.push(Item{norm_.MinDist(tree_.nodes_[tree_.root_].mbr, query_),
                  false, tree_.root_});
  }
}

bool RTree::MinDistCursor::Next(const RTreeEntry** entry, double* dist) {
  while (!pq_.empty()) {
    const Item item = pq_.top();
    pq_.pop();
    if (item.is_entry) {
      *entry = &tree_.entries_[item.idx];
      *dist = item.dist;
      return true;
    }
    const Node& node = tree_.nodes_[item.idx];
    if (node.leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        pq_.push(Item{norm_.MinDist(tree_.entries_[i].mbr, query_), true, i});
      }
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        pq_.push(Item{norm_.MinDist(tree_.nodes_[c].mbr, query_), false, c});
      }
    }
  }
  return false;
}

void RTree::Traverse(
    const std::function<VisitDecision(const Rect&)>& classify,
    const std::function<void(const RTreeEntry&, VisitDecision)>& emit) const {
  if (empty()) return;
  // Stack entries: (node index, already accepted as a whole?).
  std::vector<std::pair<uint32_t, bool>> stack = {{root_, false}};
  while (!stack.empty()) {
    const auto [idx, accepted] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    VisitDecision decision = VisitDecision::kTakeAll;
    if (!accepted) {
      decision = classify(node.mbr);
      if (decision == VisitDecision::kSkip) continue;
    }
    const bool take_all = accepted || decision == VisitDecision::kTakeAll;
    if (node.leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (take_all) {
          emit(entries_[i], VisitDecision::kTakeAll);
          continue;
        }
        const VisitDecision ed = classify(entries_[i].mbr);
        if (ed == VisitDecision::kSkip) continue;
        emit(entries_[i], ed);
      }
    } else {
      for (uint32_t c = node.begin; c < node.end; ++c) {
        stack.push_back({c, take_all});
      }
    }
  }
}

std::vector<RTreeEntry> RTree::KnnByMinDist(const Rect& query, size_t k,
                                            const LpNorm& norm) const {
  std::vector<RTreeEntry> out;
  out.reserve(std::min(k, num_entries_));
  ScanByMinDist(
      query,
      [&out, k](const RTreeEntry& e, double /*dist*/) {
        out.push_back(e);
        return out.size() < k;
      },
      norm);
  return out;
}

bool RTree::Validate() const {
  if (empty()) return entries_.empty();
  size_t reachable = 0;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.begin >= node.end) return false;
    if (node.leaf) {
      if (node.end > entries_.size()) return false;
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (!node.mbr.Contains(entries_[i].mbr)) return false;
      }
      reachable += node.end - node.begin;
    } else {
      if (node.end > nodes_.size()) return false;
      for (uint32_t c = node.begin; c < node.end; ++c) {
        if (!node.mbr.Contains(nodes_[c].mbr)) return false;
        stack.push_back(c);
      }
    }
  }
  return reachable == num_entries_;
}

RTree BuildRTree(const std::vector<UncertainObject>& objects,
                 size_t leaf_capacity) {
  std::vector<RTreeEntry> entries;
  entries.reserve(objects.size());
  for (const UncertainObject& o : objects) {
    entries.push_back(RTreeEntry{o.mbr(), o.id()});
  }
  return RTree(std::move(entries), leaf_capacity);
}

}  // namespace updb
