// Copyright 2026 The updb Authors.
// STR bulk-loaded R-tree over the rectangular uncertainty regions of the
// database objects. The paper lists index integration as the natural way
// to obtain candidates for its queries ("we will integrate our concepts
// into existing index supported kNN- and RkNN-query algorithms"); updb uses
// this tree to (a) pick the experiment object B by MinDist rank and (b)
// pre-filter query candidates before running IDCA.

#ifndef UPDB_INDEX_RTREE_H_
#define UPDB_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "geom/distance.h"
#include "geom/rect.h"
#include "uncertain/object.h"

namespace updb {

/// One indexed entry: an object's MBR plus its id.
struct RTreeEntry {
  Rect mbr;
  ObjectId id;
};

/// Read-optimized R-tree built once with Sort-Tile-Recursive packing.
class RTree {
 public:
  /// Builds the tree over `entries`. `leaf_capacity` is the maximum number
  /// of entries per leaf and also the internal fanout; must be >= 2.
  explicit RTree(std::vector<RTreeEntry> entries, size_t leaf_capacity = 16);

  size_t size() const { return num_entries_; }
  /// Alias of size(); the store/index layers use the explicit name.
  size_t entry_count() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Ids of all entries whose MBR intersects `query`.
  std::vector<ObjectId> RangeIntersect(const Rect& query) const;

  /// Invokes `fn(entry)` for every entry whose MBR intersects `query`;
  /// stops early if `fn` returns false.
  void ForEachIntersecting(const Rect& query,
                           const std::function<bool(const RTreeEntry&)>& fn)
      const;

  /// The k entries with smallest MinDist(mbr, query), in ascending MinDist
  /// order (best-first search). Returns fewer when the tree is smaller.
  std::vector<RTreeEntry> KnnByMinDist(const Rect& query, size_t k,
                                       const LpNorm& norm = LpNorm::Euclidean())
      const;

  /// Incremental best-first scan in ascending MinDist(mbr, query) order.
  /// `fn(entry, min_dist)` is called per entry; returning false stops the
  /// scan. This is the candidate stream for threshold kNN processing.
  void ScanByMinDist(const Rect& query,
                     const std::function<bool(const RTreeEntry&, double)>& fn,
                     const LpNorm& norm = LpNorm::Euclidean()) const;

  /// Pull-based form of ScanByMinDist: yields exactly the entries
  /// ScanByMinDist would emit, in the same order, but resumable between
  /// entries — what merging layers (the sharded store index) need to
  /// k-way merge several trees' streams without materializing them. The
  /// tree must outlive the cursor.
  class MinDistCursor {
   public:
    MinDistCursor(const RTree& tree, const Rect& query, const LpNorm& norm);

    /// Advances to the next entry in ascending MinDist order; returns
    /// false when the scan is exhausted. `*entry` points into the tree.
    bool Next(const RTreeEntry** entry, double* dist);

   private:
    struct Item {
      double dist;
      bool is_entry;
      uint32_t idx;
      bool operator>(const Item& other) const { return dist > other.dist; }
    };

    const RTree& tree_;
    const Rect query_;
    const LpNorm norm_;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq_;
  };

  /// Verdict of a classification traversal on a node MBR or entry MBR.
  enum class VisitDecision {
    /// Look inside (for an entry: report it as individually undecided).
    kDescend,
    /// The whole subtree (or the entry) satisfies the predicate; every
    /// entry below is emitted with kTakeAll without further tests.
    kTakeAll,
    /// The whole subtree (or the entry) fails the predicate; prune.
    kSkip,
  };

  /// Classification traversal: `classify` is invoked on node MBRs to prune
  /// or bulk-accept whole subtrees, and on individual entry MBRs at the
  /// leaves. Every surviving entry is passed to `emit` together with the
  /// decision that admitted it (kTakeAll for bulk/direct acceptance,
  /// kDescend for individually undecided entries). This is the hook the
  /// complete-domination filter of IDCA uses to avoid the linear database
  /// scan — valid because complete domination is monotone under shrinking
  /// rectangles, so a verdict on a node MBR holds for everything inside.
  void Traverse(
      const std::function<VisitDecision(const Rect&)>& classify,
      const std::function<void(const RTreeEntry&, VisitDecision)>& emit)
      const;

  /// Height of the tree (1 = a single leaf level); diagnostics.
  size_t height() const { return height_; }

  /// Debug validation: every node MBR contains its children (entry MBRs at
  /// the leaves, child-node MBRs internally) and the number of entries
  /// reachable from the root equals entry_count(). O(N); used by the
  /// store/index tests.
  bool Validate() const;

 private:
  struct Node {
    Rect mbr;
    bool leaf = false;
    // Leaf: [entry_begin, entry_end) into entries_.
    // Internal: [child_begin, child_end) into nodes_.
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  /// Recursively tiles `items` (a slice of entries_) into up to `fanout`
  /// groups along dimension `axis`, packing leaves bottom-up.
  uint32_t Build(size_t begin, size_t end, size_t level);

  std::vector<RTreeEntry> entries_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t leaf_capacity_;
  size_t num_entries_ = 0;
  size_t height_ = 0;
};

/// Builds an RTree over all objects of `db`.
RTree BuildRTree(const std::vector<UncertainObject>& objects,
                 size_t leaf_capacity = 16);

}  // namespace updb

#endif  // UPDB_INDEX_RTREE_H_
