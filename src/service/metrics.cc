#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace updb {
namespace service {

namespace {

/// Nearest-rank percentile of an ascending-sorted series.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

void AppendField(std::string& out, const char* key, double value,
                 bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g%s", key, value,
                last ? "" : ", ");
  out += buf;
}

void AppendField(std::string& out, const char* key, uint64_t value,
                 bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), last ? "" : ", ");
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  AppendField(out, "submitted", submitted);
  AppendField(out, "admitted", admitted);
  AppendField(out, "rejected", rejected);
  AppendField(out, "invalid", invalid);
  AppendField(out, "completed", completed);
  AppendField(out, "expired", expired);
  AppendField(out, "invalidated", invalidated);
  AppendField(out, "batches", batches);
  AppendField(out, "mean_batch_fill", mean_batch_fill);
  AppendField(out, "queue_depth", static_cast<uint64_t>(queue_depth));
  AppendField(out, "max_queue_depth", static_cast<uint64_t>(max_queue_depth));
  AppendField(out, "elapsed_seconds", elapsed_seconds);
  AppendField(out, "throughput_qps", throughput_qps);
  out += "\"latency_ms\": {";
  AppendField(out, "mean", latency_mean_ms);
  AppendField(out, "p50", latency_p50_ms);
  AppendField(out, "p95", latency_p95_ms);
  AppendField(out, "p99", latency_p99_ms);
  AppendField(out, "max", latency_max_ms, /*last=*/true);
  out += "}}";
  return out;
}

void ServiceMetrics::RecordAdmitted(size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  ++admitted_;
  queue_depth_ = queue_depth_after;
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth_after);
  if (first_admit_at_ < 0.0) first_admit_at_ = clock_.ElapsedSeconds();
}

void ServiceMetrics::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  ++rejected_;
}

void ServiceMetrics::RecordInvalid() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  ++invalid_;
}

void ServiceMetrics::RecordCompleted(ResponseStatus status,
                                     double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  if (status == ResponseStatus::kExpired) ++expired_;
  if (status == ResponseStatus::kInvalid) ++invalidated_;
  latencies_seconds_.push_back(latency_seconds);
  last_complete_at_ = clock_.ElapsedSeconds();
}

void ServiceMetrics::RecordBatch(size_t fill) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batched_requests_ += fill;
}

void ServiceMetrics::RecordQueueDepth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_depth_ = depth;
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.invalid = invalid_;
  s.completed = completed_;
  s.expired = expired_;
  s.invalidated = invalidated_;
  s.batches = batches_;
  s.mean_batch_fill =
      batches_ > 0
          ? static_cast<double>(batched_requests_) / static_cast<double>(batches_)
          : 0.0;
  s.queue_depth = queue_depth_;
  s.max_queue_depth = max_queue_depth_;
  if (first_admit_at_ >= 0.0 && last_complete_at_ >= first_admit_at_) {
    s.elapsed_seconds = last_complete_at_ - first_admit_at_;
  }
  if (s.elapsed_seconds > 0.0) {
    s.throughput_qps = static_cast<double>(completed_) / s.elapsed_seconds;
  }
  if (!latencies_seconds_.empty()) {
    std::vector<double> sorted = latencies_seconds_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double v : sorted) sum += v;
    s.latency_mean_ms = sum / static_cast<double>(sorted.size()) * 1e3;
    s.latency_p50_ms = Percentile(sorted, 0.50) * 1e3;
    s.latency_p95_ms = Percentile(sorted, 0.95) * 1e3;
    s.latency_p99_ms = Percentile(sorted, 0.99) * 1e3;
    s.latency_max_ms = sorted.back() * 1e3;
  }
  return s;
}

}  // namespace service
}  // namespace updb
