#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace updb {
namespace service {

namespace {

void AppendField(std::string& out, const char* key, double value,
                 bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g%s", key, value,
                last ? "" : ", ");
  out += buf;
}

void AppendField(std::string& out, const char* key, uint64_t value,
                 bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), last ? "" : ", ");
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  AppendField(out, "submitted", submitted);
  AppendField(out, "admitted", admitted);
  AppendField(out, "rejected", rejected);
  AppendField(out, "invalid", invalid);
  AppendField(out, "completed", completed);
  AppendField(out, "expired", expired);
  AppendField(out, "invalidated", invalidated);
  AppendField(out, "batches", batches);
  AppendField(out, "mean_batch_fill", mean_batch_fill);
  AppendField(out, "queue_depth", static_cast<uint64_t>(queue_depth));
  AppendField(out, "max_queue_depth", static_cast<uint64_t>(max_queue_depth));
  AppendField(out, "elapsed_seconds", elapsed_seconds);
  AppendField(out, "throughput_qps", throughput_qps);
  out += "\"latency_ms\": {";
  AppendField(out, "mean", latency_mean_ms);
  AppendField(out, "p50", latency_p50_ms);
  AppendField(out, "p95", latency_p95_ms);
  AppendField(out, "p99", latency_p99_ms);
  AppendField(out, "max", latency_max_ms, /*last=*/true);
  out += "}}";
  return out;
}

ServiceMetrics::ServiceMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_.get();
  }
  registry_ = registry;
  submitted_ = registry_->Counter("updb_service_submitted_total",
                                  "Submit calls (any outcome)");
  admitted_ = registry_->Counter("updb_service_admitted_total",
                                 "Requests admitted to the queue");
  rejected_ = registry_->Counter("updb_service_rejected_total",
                                 "Rejections due to a full admission queue");
  invalid_ = registry_->Counter("updb_service_invalid_total",
                                "Requests failing admission validation");
  completed_ = registry_->Counter("updb_service_completed_total",
                                  "Requests completed (any status)");
  expired_ = registry_->Counter("updb_service_expired_total",
                                "Completions with status expired");
  invalidated_ = registry_->Counter(
      "updb_service_invalidated_total",
      "Completions invalidated by live updates after admission");
  batches_ = registry_->Counter("updb_service_batches_total",
                                "Batches executed");
  batched_requests_ = registry_->Counter(
      "updb_service_batched_requests_total", "Requests across all batches");
  queue_depth_ = registry_->Gauge("updb_service_queue_depth",
                                  "Requests admitted but not yet dispatched");
  max_queue_depth_ = registry_->Gauge("updb_service_queue_depth_max",
                                      "High-water mark of the queue depth");
  latency_seconds_ = registry_->Histogram(
      "updb_service_latency_seconds",
      "Submit -> response-ready latency in seconds");
}

void ServiceMetrics::MarkFirstAdmit() {
  double expected = -1.0;
  first_admit_at_.compare_exchange_strong(expected, clock_.ElapsedSeconds(),
                                          std::memory_order_relaxed);
}

void ServiceMetrics::RecordAdmitted(size_t queue_depth_after) {
  submitted_->Add();
  admitted_->Add();
  queue_depth_->Set(static_cast<int64_t>(queue_depth_after));
  max_queue_depth_->SetMax(static_cast<int64_t>(queue_depth_after));
  MarkFirstAdmit();
}

void ServiceMetrics::RecordRejected() {
  submitted_->Add();
  rejected_->Add();
}

void ServiceMetrics::RecordInvalid() {
  submitted_->Add();
  invalid_->Add();
}

void ServiceMetrics::RecordCompleted(ResponseStatus status,
                                     double latency_seconds) {
  completed_->Add();
  if (status == ResponseStatus::kExpired) expired_->Add();
  if (status == ResponseStatus::kInvalid) invalidated_->Add();
  latency_seconds_->Record(latency_seconds);
  // Completion marks only ever advance (CAS-max): concurrent recorders
  // may land out of order in wall-clock terms.
  const double now = clock_.ElapsedSeconds();
  double prev = last_complete_at_.load(std::memory_order_relaxed);
  while (now > prev && !last_complete_at_.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
  }
}

void ServiceMetrics::RecordBatch(size_t fill) {
  batches_->Add();
  batched_requests_->Add(fill);
}

void ServiceMetrics::RecordQueueDepth(size_t depth) {
  queue_depth_->Set(static_cast<int64_t>(depth));
  max_queue_depth_->SetMax(static_cast<int64_t>(depth));
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted_->Value();
  s.admitted = admitted_->Value();
  s.rejected = rejected_->Value();
  s.invalid = invalid_->Value();
  s.completed = completed_->Value();
  s.expired = expired_->Value();
  s.invalidated = invalidated_->Value();
  s.batches = batches_->Value();
  const uint64_t batched = batched_requests_->Value();
  s.mean_batch_fill =
      s.batches > 0
          ? static_cast<double>(batched) / static_cast<double>(s.batches)
          : 0.0;
  s.queue_depth = static_cast<size_t>(queue_depth_->Value());
  s.max_queue_depth = static_cast<size_t>(max_queue_depth_->Value());
  const double first = first_admit_at_.load(std::memory_order_relaxed);
  const double last = last_complete_at_.load(std::memory_order_relaxed);
  if (first >= 0.0 && last >= first) s.elapsed_seconds = last - first;
  if (s.elapsed_seconds > 0.0) {
    s.throughput_qps = static_cast<double>(s.completed) / s.elapsed_seconds;
  }
  const obs::HistogramSnapshot lat = latency_seconds_->Snapshot();
  if (lat.count > 0) {
    s.latency_mean_ms = lat.Mean() * 1e3;
    s.latency_p50_ms = lat.Quantile(0.50) * 1e3;
    s.latency_p95_ms = lat.Quantile(0.95) * 1e3;
    s.latency_p99_ms = lat.Quantile(0.99) * 1e3;
    s.latency_max_ms = lat.max * 1e3;
  }
  return s;
}

}  // namespace service
}  // namespace updb
