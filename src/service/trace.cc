#include "service/trace.h"

#include <chrono>
#include <thread>

namespace updb {
namespace service {

std::vector<QueryRequest> MakeTrace(const UncertainDatabase& db,
                                    const TraceConfig& config) {
  UPDB_CHECK(!db.empty());
  Rng rng(config.seed);
  const double weights[] = {config.knn_weight, config.rknn_weight,
                            config.inverse_weight,
                            config.expected_rank_weight};
  const QueryKind kinds[] = {QueryKind::kThresholdKnn,
                             QueryKind::kThresholdRknn,
                             QueryKind::kInverseRanking,
                             QueryKind::kExpectedRank};
  double total_weight = 0.0;
  for (double w : weights) {
    UPDB_CHECK(w >= 0.0);
    total_weight += w;
  }
  UPDB_CHECK(total_weight > 0.0);

  std::vector<QueryRequest> trace;
  trace.reserve(config.num_requests);
  for (size_t n = 0; n < config.num_requests; ++n) {
    QueryRequest req;
    double pick = rng.NextDouble() * total_weight;
    req.kind = kinds[3];
    for (size_t i = 0; i < 4; ++i) {
      if (pick < weights[i]) {
        req.kind = kinds[i];
        break;
      }
      pick -= weights[i];
    }
    Point center(db.dim());
    for (size_t i = 0; i < db.dim(); ++i) center[i] = rng.NextDouble();
    req.query =
        workload::MakeQueryObject(center, config.query_extent,
                                  config.query_model,
                                  config.samples_per_object, rng);
    req.k = 1 + rng.NextBounded(config.k_max);
    req.tau = config.tau;
    if (req.kind == QueryKind::kInverseRanking) {
      req.target = static_cast<ObjectId>(rng.NextBounded(db.size()));
    }
    req.budget = config.budget;
    if (config.deadline_fraction > 0.0 &&
        rng.Bernoulli(config.deadline_fraction)) {
      req.budget.deadline_ms = config.deadline_ms;
    } else {
      req.budget.deadline_ms = 0.0;
    }
    trace.push_back(std::move(req));
  }
  return trace;
}

ReplayResult ReplayTrace(QueryService& service,
                         const std::vector<QueryRequest>& trace,
                         double offered_qps) {
  ReplayResult out;
  out.responses.resize(trace.size());
  Stopwatch wall;
  std::vector<std::pair<size_t, uint64_t>> tickets;  // trace index, ticket
  tickets.reserve(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    if (offered_qps > 0.0) {
      const double scheduled_s = static_cast<double>(i) / offered_qps;
      const double ahead_s = scheduled_s - wall.ElapsedSeconds();
      if (ahead_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(ahead_s));
      }
    }
    const StatusOr<uint64_t> ticket = service.Submit(trace[i]);
    if (ticket.ok()) {
      ++out.admitted;
      tickets.emplace_back(i, *ticket);
      continue;
    }
    QueryResponse& stub = out.responses[i];
    stub.kind = trace[i].kind;
    if (ticket.status().code() == StatusCode::kResourceExhausted) {
      ++out.rejected;
      stub.status = ResponseStatus::kRejected;
    } else {
      ++out.invalid;
      stub.status = ResponseStatus::kInvalid;
    }
  }
  service.Flush();
  for (const auto& [index, ticket] : tickets) {
    out.responses[index] = service.Take(ticket);
  }
  out.wall_seconds = wall.ElapsedSeconds();
  return out;
}

}  // namespace service
}  // namespace updb
