#include "service/introspection.h"

#include <cstdio>

#include "gf/kernels.h"
#include "store/wal.h"

namespace updb {
namespace service {

namespace {

template <typename... Args>
void Appendf(std::string& out, const char* fmt, Args... args) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

obs::AdminReadiness StoreReadiness(const store::VersionedObjectStore* store,
                                   const store::RecoveryReport* recovery) {
  obs::AdminReadiness readiness;
  if (store == nullptr) {
    readiness.ready = false;
    readiness.reason = "no store attached";
    return readiness;
  }
  if (recovery != nullptr && recovery->data_loss) {
    readiness.ready = false;
    readiness.reason = "recovery completed with data loss";
    return readiness;
  }
  const Status wal = store->wal_status();
  if (!wal.ok()) {
    readiness.ready = false;
    readiness.reason = "wal failed: " + wal.ToString();
    return readiness;
  }
  return readiness;  // ready, "ok"
}

std::string StatuszFields(const QueryService* service,
                          const store::VersionedObjectStore* store) {
  std::string out;
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out += ", ";
    first = false;
  };
  sep();
  Appendf(out, "\"kernel_dispatch\": \"%s\"", gf::ActiveKernelName());
  if (store != nullptr) {
    sep();
    Appendf(out, "\"snapshot_version\": %llu",
            static_cast<unsigned long long>(store->version()));
    Appendf(out, ", \"live_objects\": %zu", store->live_size());
    Appendf(out, ", \"pending_mutations\": %zu", store->pending_mutations());
    out += ", \"shard_live_counts\": [";
    const std::vector<size_t> counts = store->ShardLiveCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      Appendf(out, "%zu", counts[i]);
    }
    out += "]";
    const store::WalStats wal = store->wal_stats();
    out += std::string(", \"durable\": ") + (wal.durable ? "true" : "false");
    out += std::string(", \"fsync\": \"") +
           store::FsyncPolicyName(wal.fsync) + "\"";
  }
  if (service != nullptr) {
    sep();
    const MetricsSnapshot m = service->metrics().Snapshot();
    Appendf(out, "\"queue_depth\": %zu", m.queue_depth);
    Appendf(out, ", \"admitted\": %llu",
            static_cast<unsigned long long>(m.admitted));
    Appendf(out, ", \"completed\": %llu",
            static_cast<unsigned long long>(m.completed));
    const auto& response_cache = service->response_cache();
    if (response_cache != nullptr) {
      Appendf(out,
              ", \"response_cache\": {\"size\": %zu, \"capacity\": %zu, "
              "\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu}",
              response_cache->size(), response_cache->capacity(),
              static_cast<unsigned long long>(response_cache->hits()),
              static_cast<unsigned long long>(response_cache->misses()),
              static_cast<unsigned long long>(response_cache->evictions()));
    } else {
      out += ", \"response_cache\": null";
    }
    const auto& memo = service->verdict_memo();
    if (memo != nullptr) {
      Appendf(out,
              ", \"verdict_memo\": {\"capacity\": %zu, \"hits\": %llu, "
              "\"misses\": %llu, \"inserts\": %llu, \"evictions\": %llu}",
              memo->capacity(), static_cast<unsigned long long>(memo->hits()),
              static_cast<unsigned long long>(memo->misses()),
              static_cast<unsigned long long>(memo->inserts()),
              static_cast<unsigned long long>(memo->evictions()));
    } else {
      out += ", \"verdict_memo\": null";
    }
  }
  return out;
}

obs::AdminServerOptions MakeAdminOptions(
    const QueryService* service, const store::VersionedObjectStore* store,
    const store::RecoveryReport* recovery) {
  obs::AdminServerOptions options;
  options.readiness = [store, recovery] {
    return StoreReadiness(store, recovery);
  };
  options.statusz_fields = [service, store] {
    return StatuszFields(service, store);
  };
  return options;
}

}  // namespace service
}  // namespace updb
