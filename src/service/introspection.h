// Copyright 2026 The updb Authors.
// Glue between the generic admin plane (obs/admin_server.h) and the
// serving stack: the canonical store-backed readiness probe and the
// /statusz field set. Lives in service/ so obs/ stays free of service and
// store dependencies; updb_cli and the admin tests both wire these
// callbacks into AdminServerOptions instead of hand-rolling them.
//
// Readiness model (README "Introspection plane"): a process is ready to
// serve exactly when a store is attached, the store's sticky wal_status()
// is OK (a failed durable store must stop taking traffic before it
// diverges from its log), and — when the process recovered from a WAL —
// recovery completed without data loss. Liveness (/healthz) is
// intentionally weaker: the admin thread responding at all.

#ifndef UPDB_SERVICE_INTROSPECTION_H_
#define UPDB_SERVICE_INTROSPECTION_H_

#include <string>

#include "obs/admin_server.h"
#include "service/query_service.h"
#include "store/object_store.h"
#include "store/recovery.h"

namespace updb {
namespace service {

/// The store-backed /readyz probe. `store` null means no store is attached
/// (not ready); `recovery` null means the process did not recover from a
/// WAL (that check passes vacuously). Evaluated per probe, so a WAL
/// failure after startup flips readiness to 503 on the next scrape.
obs::AdminReadiness StoreReadiness(const store::VersionedObjectStore* store,
                                   const store::RecoveryReport* recovery);

/// The /statusz JSON fragment (no surrounding braces): snapshot version,
/// live/shard counts, pending mutations, queue depth, cache occupancy and
/// the fsync policy. Null arguments omit their sections. Everything is
/// read from lock-free counters or short store-internal critical sections
/// — never from the query hot path.
std::string StatuszFields(const QueryService* service,
                          const store::VersionedObjectStore* store);

/// Convenience: AdminServerOptions pre-wired with StoreReadiness and
/// StatuszFields over `service`/`store`/`recovery` (all may be null; the
/// pointed-to objects must outlive the AdminServer).
obs::AdminServerOptions MakeAdminOptions(
    const QueryService* service, const store::VersionedObjectStore* store,
    const store::RecoveryReport* recovery);

}  // namespace service
}  // namespace updb

#endif  // UPDB_SERVICE_INTROSPECTION_H_
