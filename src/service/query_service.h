// Copyright 2026 The updb Authors.
// QueryService — the concurrent serving layer over the query stack
// (ROADMAP north star: accept many heterogeneous requests, schedule them,
// bound their cost, report tail latency). Architecture:
//
//   Submit() -> bounded admission queue -> dispatcher thread -> rounds of
//   consecutive batches executed by N workers (ThreadPool::ParallelFor)
//   against one store snapshot per round -> response table.
//
// Snapshots: the service serves a VersionedObjectStore (store/). In live
// mode the dispatcher acquires the latest published snapshot once per
// round, so every batch of a round sees one consistent version and
// writers/publishers never block queries; in pinned mode (constructed
// from a StoreSnapshot, or from a plain database which is wrapped into a
// single published version) every round serves the same fixed version.
// Every response is stamped with the snapshot_version it executed
// against.
//
// Scheduling/batching: the dispatcher pops up to num_workers * batch_size
// queued requests per round, partitions them into consecutive
// submission-order chunks of batch_size, and runs the chunks in parallel
// on its own ThreadPool (the dispatcher participates as worker 0). Within
// a batch, same-kind requests share one pass over the snapshot's index
// for the candidate filter (union-MBR scan / union-reach probe), fanned
// out per store shard (ThreadPool::SharedParallelFor over the snapshot's
// shard indexes, reduced in fixed shard order — a distance cutoff and a
// dominator count are partition-invariant, so candidate sets are
// identical for every num_shards), then each request refines its own
// candidates with IDCA under its compiled budget. The shard fan-out runs
// genuinely parallel in single-batch rounds (ParallelFor(n == 1) keeps
// the nested loop's parallelism); in multi-batch rounds the nested call
// runs inline and batch-level parallelism dominates — either way the
// reduction order, and with it the payload, is fixed. Rounds are a
// barrier: a worker that finishes its batch idles
// until the round's slowest batch completes (ThreadPool exposes
// ParallelFor, not task handoff). That costs tail latency when one
// expensive request (e.g. expected-rank) shares a round with cheap ones —
// an accepted tradeoff here; continuous per-batch handoff would need a
// task-queue pool and changes no response payload, so it can land later
// without breaking the determinism contract.
//
// Determinism: batch *composition* may depend on timing (a drained queue
// dispatches partial batches), and so may the version a round serves
// under live updates — so both are constructed to be result-invariant
// per (request, version): the shared filters compute, per request,
// exactly the candidate set a solo run against that version would (the
// union scan only over-collects, and each request re-filters with its own
// prune distance), and every response is a pure function of (request,
// snapshot version, compiled budget). Replaying a request pinned to the
// version its response names reproduces the payload bit-identically for
// any num_workers/batch_size/num_shards and any arrival timing; only the
// wall-clock stats fields differ. Deadlines are compiled to iteration
// budgets at admission (see service/request.h) — the wall clock never
// steers execution.
//
// Caching (optional, off by default): that same determinism contract is
// what makes cross-request caching sound. With response_cache_capacity
// set, Submit first probes a (canonical request, snapshot_version)-keyed
// response cache — a hit bypasses queueing and execution entirely and
// returns the cached payload re-stamped with a fresh ticket (bit-identical
// otherwise; only the wall-clock/batch/cache_hit stats fields differ, and
// the digest covers none of them). Lookups key on the version current at
// submission and inserts on the version the response executed against, so
// a publish — which mints a new version — can never serve a stale payload;
// a hit is indistinguishable from the request having been dispatched
// before the publish, which the admission-time contract already permits.
// With verdict_memo_capacity set, engine runs additionally share decided
// domination verdicts through a snapshot-scoped lock-free memo
// (cache/verdict_memo.h) — same payloads, fewer geometry tests.

#ifndef UPDB_SERVICE_QUERY_SERVICE_H_
#define UPDB_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/response_cache.h"
#include "cache/verdict_memo.h"
#include "obs/audit_log.h"
#include "common/thread_pool.h"
#include "core/idca.h"
#include "service/metrics.h"
#include "service/request.h"
#include "store/object_store.h"
#include "uncertain/database.h"

namespace updb {
namespace service {

/// Tuning knobs of the service.
struct QueryServiceOptions {
  /// Workers executing batches in parallel (the dispatcher thread is
  /// worker 0; num_workers - 1 pool threads are spawned). Must be >= 1.
  size_t num_workers = 1;
  /// Admitted requests grouped into one batch (>= 1). Larger batches share
  /// more filter work per index pass but coarsen the parallel grain.
  size_t batch_size = 8;
  /// Bound of the admission queue; Submit rejects (ResourceExhausted) when
  /// this many requests are queued and not yet dispatched. Must be >= 1.
  size_t max_queue = 1024;
  /// Baseline engine configuration (norm, criterion, split policy, verdict
  /// cache). Per-request budgets override max_iterations and
  /// uncertainty_epsilon; num_threads is forced to 1 inside workers — the
  /// service owns the coarse-grained parallelism — and use_index_filter is
  /// forced off (the service runs its own candidate filters against the
  /// snapshot index; the engine-level filter would need a per-version
  /// dense-id tree and changes no response payload).
  IdcaConfig base_config;
  /// Deadline compilation constant: a request with deadline_ms is granted
  /// floor(deadline_ms / est_iteration_ms) refinement iterations (capped
  /// by its max_iterations). A fixed constant, not a measurement, so the
  /// granted budget — and with it the response — is deterministic.
  double est_iteration_ms = 5.0;
  /// Construct the service paused: admitted requests queue up but no batch
  /// is dispatched until Resume(). Lets tests and closed-loop drivers
  /// control batch composition exactly.
  bool start_paused = false;
  /// Registry the service's metric series register in (must outlive the
  /// service). nullptr creates a private registry, still exportable via
  /// metrics().registry() — processes wanting one unified export pass
  /// obs::MetricsRegistry::Default().
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// Span sink for per-request tracing (submit, queue wait, batch, request
  /// execution, and — threaded into the compiled IdcaConfig — the engine's
  /// filter/iteration spans). nullptr (default) disables tracing; every
  /// instrumentation site then costs one pointer test, and payloads are
  /// bit-identical either way (digest-oracle enforced).
  obs::TraceRecorder* trace = nullptr;
  /// Entries of the cross-request response cache, keyed by (canonical
  /// serialized request, snapshot_version): a repeated request against the
  /// same published version bypasses execution and returns the cached —
  /// bit-identical — payload. 0 (default) disables the cache. Responses
  /// whose request has no canonical serialization, or that terminated
  /// kRejected/kInvalid, are never cached.
  size_t response_cache_capacity = 0;
  /// Pre-built response cache shared with other services or passes (e.g. a
  /// warm-replay service reusing a cold pass's entries); overrides
  /// response_cache_capacity when non-null.
  std::shared_ptr<cache::ResponseCache> response_cache;
  /// Slots of the snapshot-scoped cross-request verdict memo threaded into
  /// every engine run (cache/verdict_memo.h): decided domination verdicts
  /// recorded by one request are reused by later requests against the same
  /// snapshot version. Payloads stay bit-identical with the memo on or
  /// off. 0 (default) disables the memo.
  size_t verdict_memo_capacity = 0;
  /// Pre-built verdict memo shared across services; overrides
  /// verdict_memo_capacity when non-null.
  std::shared_ptr<cache::VerdictMemo> verdict_memo;
  /// Slow-request audit ring (obs/audit_log.h) the service records every
  /// completed request into — cache hits included — for /requestz. The
  /// record path is mutex-free and runs after the response is final, so
  /// payloads are bit-identical with auditing on or off. nullptr
  /// (default) disables auditing; must outlive the service.
  obs::RequestAuditLog* audit_log = nullptr;
};

/// The concurrent query service. Thread-safe: any thread may Submit/Take;
/// one internal dispatcher schedules execution.
class QueryService {
 public:
  /// Pinned-single-version convenience: wraps `db` into an internal
  /// versioned store, publishes version 1, and serves that snapshot
  /// forever. A null or empty `db` yields an empty snapshot (requests
  /// complete with empty payloads) — the service no longer requires a
  /// populated database to come up.
  QueryService(std::shared_ptr<const UncertainDatabase> db,
               QueryServiceOptions options);

  /// Live mode: serves `store`, acquiring the latest published snapshot
  /// once per dispatch round. Writers mutate and Publish() concurrently;
  /// the service never blocks them. `store` must be non-null.
  QueryService(std::shared_ptr<store::VersionedObjectStore> db_store,
               QueryServiceOptions options);

  /// Pinned mode: serves exactly `snapshot` (any retained version) for the
  /// service's lifetime, regardless of later publishes — the replay path
  /// of the version-determinism contract. `snapshot` must be non-null.
  QueryService(std::shared_ptr<const store::StoreSnapshot> snapshot,
               QueryServiceOptions options);

  /// Drains admitted requests, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Validates (against the current snapshot) and enqueues a request.
  /// Returns the ticket to redeem with Take(), InvalidArgument when
  /// validation fails, ResourceExhausted when the admission queue is full,
  /// FailedPrecondition after Shutdown().
  StatusOr<uint64_t> Submit(QueryRequest request);

  /// Blocks until the response for `ticket` is ready and returns it. Each
  /// ticket is redeemable exactly once.
  QueryResponse Take(uint64_t ticket);

  /// Blocks until every admitted request has completed.
  void Flush();

  /// Pauses dispatching (admission continues); no-op when paused.
  void Pause();
  /// Resumes dispatching; no-op when running.
  void Resume();

  /// Drains and stops the dispatcher; further Submits fail. Idempotent.
  void Shutdown();

  const QueryServiceOptions& options() const { return options_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  /// The effective caches (configured or injected; null when disabled) —
  /// counters for oracles, and the handles warm-replay passes share.
  const std::shared_ptr<cache::ResponseCache>& response_cache() const {
    return response_cache_;
  }
  const std::shared_ptr<cache::VerdictMemo>& verdict_memo() const {
    return verdict_memo_;
  }
  /// The snapshot a round dispatched now would serve (pinned snapshot, or
  /// the store's latest). Never null.
  std::shared_ptr<const store::StoreSnapshot> CurrentSnapshot() const;

 private:
  /// A request in flight: ticket, payload, submit-time stopwatch, and the
  /// response being assembled.
  struct Pending {
    uint64_t ticket = 0;
    QueryRequest request;
    Stopwatch since_submit;
    double queue_seconds = 0.0;
    QueryResponse response;
    /// Canonical request serialization (empty when the request has none:
    /// such requests bypass the response cache and the verdict memo).
    std::string cache_key;
    /// Query-PDF identity token for the verdict memo (0 iff cache_key is
    /// empty).
    uint64_t query_token = 0;
  };

  QueryService(std::shared_ptr<store::VersionedObjectStore> db_store,
               std::shared_ptr<const store::StoreSnapshot> pinned,
               QueryServiceOptions options);

  void DispatcherMain();
  /// Executes one batch (consecutive slice of a round) serially against
  /// `snap`, sharing per-kind filter passes; fills each Pending's
  /// response.
  void RunBatch(const store::StoreSnapshot& snap, Pending* batch,
                size_t count, uint64_t batch_seq) const;

  /// Deadline-compiled engine configuration for one request.
  IdcaConfig CompileBudget(const QueryBudget& budget,
                           int* iterations_granted) const;

  /// Threads the cross-request verdict memo into a compiled config, keyed
  /// to the round's snapshot version (no-op when the memo is disabled or
  /// the request has no canonical serialization).
  void AttachMemo(IdcaConfig* cfg, const Pending& p,
                  uint64_t snapshot_version) const;

  void ExecThresholdBatch(const store::StoreSnapshot& snap,
                          Pending** requests, size_t count, bool reverse)
      const;
  /// `dense_target` is the round snapshot's translation of the request's
  /// stable target id.
  void ExecInverseRanking(const store::StoreSnapshot& snap, Pending& p,
                          ObjectId dense_target) const;
  void ExecExpectedRank(const store::StoreSnapshot& snap, Pending& p) const;

  const std::shared_ptr<store::VersionedObjectStore> store_;  // live mode
  const std::shared_ptr<const store::StoreSnapshot> pinned_;  // pinned mode
  const QueryServiceOptions options_;
  ServiceMetrics metrics_;
  /// Cross-request caches (null when disabled). Both register their
  /// series in the service's effective metrics registry when the service
  /// creates them; injected instances keep their own registration.
  std::shared_ptr<cache::ResponseCache> response_cache_;
  std::shared_ptr<cache::VerdictMemo> verdict_memo_;
  ThreadPool pool_;  // num_workers - 1 threads; dispatcher is worker 0

  std::mutex mu_;
  std::condition_variable queue_cv_;  // dispatcher: work or stop
  std::condition_variable done_cv_;   // Take/Flush: responses landed
  std::deque<Pending> pending_;
  std::unordered_map<uint64_t, QueryResponse> done_;
  uint64_t next_ticket_ = 0;
  uint64_t next_batch_seq_ = 0;
  uint64_t admitted_ = 0;
  uint64_t completed_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace service
}  // namespace updb

#endif  // UPDB_SERVICE_QUERY_SERVICE_H_
