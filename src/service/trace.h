// Copyright 2026 The updb Authors.
// Workload traces for the query service: a seed-deterministic mixed
// request generator (built on workload::MakeQueryObject) and an open-loop
// replayer that offers the trace to a service at a target rate. The trace
// for a fixed (database, TraceConfig) is always the same request
// sequence, which is what makes serve-bench runs reproducible from their
// logged seed.

#ifndef UPDB_SERVICE_TRACE_H_
#define UPDB_SERVICE_TRACE_H_

#include <cstdint>
#include <vector>

#include "service/query_service.h"
#include "workload/generators.h"

namespace updb {
namespace service {

/// Shape of a generated request mix. Kind weights need not sum to 1; a
/// weight of 0 removes the kind from the mix.
struct TraceConfig {
  size_t num_requests = 100;
  uint64_t seed = 1;
  double knn_weight = 0.45;
  double rknn_weight = 0.25;
  double inverse_weight = 0.2;
  /// Expected-rank requests cost one IDCA run per database object — keep
  /// the weight small for large databases.
  double expected_rank_weight = 0.1;
  /// k for threshold kinds is uniform in [1, k_max].
  size_t k_max = 10;
  double tau = 0.5;
  /// Relative extent of generated query rectangles.
  double query_extent = 0.01;
  workload::ObjectModel query_model = workload::ObjectModel::kUniform;
  /// Samples per query object for ObjectModel::kDiscrete.
  size_t samples_per_object = 64;
  /// Budget stamped on every request.
  QueryBudget budget;
  /// Fraction of requests carrying `deadline_ms` (the rest run to their
  /// full iteration budget).
  double deadline_fraction = 0.0;
  double deadline_ms = 0.0;
};

/// Generates the request trace. Deterministic in (db, config).
std::vector<QueryRequest> MakeTrace(const UncertainDatabase& db,
                                    const TraceConfig& config);

/// Outcome of replaying a trace.
struct ReplayResult {
  /// One response per trace entry, in trace order. Rejected/invalid
  /// submissions yield a stub response with the corresponding terminal
  /// status (kRejected/kInvalid) and an empty payload.
  std::vector<QueryResponse> responses;
  size_t admitted = 0;
  size_t rejected = 0;
  size_t invalid = 0;
  /// Submission span + drain, seconds.
  double wall_seconds = 0.0;
};

/// Replays `trace` against `service`: submits request i at its scheduled
/// arrival time i / offered_qps (offered_qps <= 0 submits as fast as
/// possible — the closed-loop/benchmark mode), then flushes the service
/// and collects every response. Rejections are not retried; they become
/// kRejected stubs, so the offered-load experiment observes admission
/// control directly.
ReplayResult ReplayTrace(QueryService& service,
                         const std::vector<QueryRequest>& trace,
                         double offered_qps);

}  // namespace service
}  // namespace updb

#endif  // UPDB_SERVICE_TRACE_H_
