// Copyright 2026 The updb Authors.
// Serving-layer metrics: admission counters, queue depth, batching shape,
// throughput and tail latency, with a JSON dump. All recorded quantities
// are wall-clock observations — they describe one run of the service and
// are deliberately *outside* the determinism contract (only response
// payloads are reproducible; see service/request.h).
//
// Backed by the obs substrate (obs/metrics.h): every series registers in a
// MetricsRegistry — the caller's, so the service shows up in the unified
// JSON/Prometheus export, or a private one when none is supplied — and the
// record paths are mutex-free. Latency lives in a log-bucketed bounded
// histogram: memory is O(buckets), not O(completed requests), and the
// reported p50/p95/p99 carry the histogram's documented relative error
// (growth - 1, default 20%) while mean/max stay exact.

#ifndef UPDB_SERVICE_METRICS_H_
#define UPDB_SERVICE_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "service/request.h"

namespace updb {
namespace service {

/// Point-in-time aggregate of everything the registry observed.
struct MetricsSnapshot {
  uint64_t submitted = 0;  // Submit calls (admitted + rejected + invalid)
  uint64_t admitted = 0;
  uint64_t rejected = 0;   // admission-queue-full rejections
  uint64_t invalid = 0;    // failed validation
  uint64_t completed = 0;
  uint64_t expired = 0;      // completed with ResponseStatus::kExpired
  /// Completed with ResponseStatus::kInvalid: admitted requests whose
  /// validation no longer held against the snapshot they executed on
  /// (live updates landed in between). Distinct from `invalid`, which
  /// counts admission-time validation failures.
  uint64_t invalidated = 0;
  uint64_t batches = 0;
  double mean_batch_fill = 0.0;  // requests per executed batch
  size_t queue_depth = 0;        // current
  size_t max_queue_depth = 0;
  /// First admission -> last completion (0 before the first completion).
  double elapsed_seconds = 0.0;
  double throughput_qps = 0.0;  // completed / elapsed_seconds
  /// Submit -> response-ready latency, milliseconds. mean/max are exact;
  /// the percentiles come from the bounded histogram (relative error
  /// bounded by its bucket growth - 1).
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Serializes the snapshot as a JSON object (the schema documented in
  /// README "Serving layer").
  std::string ToJson() const;
};

/// Thread-safe metrics facade; one instance per QueryService. No record
/// path takes a mutex: counters are striped atomics, the latency
/// histogram's memory is fixed at construction (O(1) in request count).
class ServiceMetrics {
 public:
  /// Registers the service series in `registry`; nullptr creates a private
  /// registry (test isolation). Series names are listed in README
  /// "Observability".
  explicit ServiceMetrics(obs::MetricsRegistry* registry = nullptr);

  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  void RecordAdmitted(size_t queue_depth_after);
  void RecordRejected();
  void RecordInvalid();
  /// `latency_seconds` covers Submit -> response ready. Lock-free.
  void RecordCompleted(ResponseStatus status, double latency_seconds);
  void RecordBatch(size_t fill);
  void RecordQueueDepth(size_t depth);

  MetricsSnapshot Snapshot() const;

  /// The registry the series live in (the injected one, or the private
  /// fallback) — export with ToJson()/ToPrometheus().
  obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  /// Lowers wall-clock marks into `cell` (CAS loop; keeps the maximum for
  /// last_complete_at_, the first write for first_admit_at_).
  void MarkFirstAdmit();

  std::unique_ptr<obs::MetricsRegistry> owned_;  // when none was injected
  obs::MetricsRegistry* registry_ = nullptr;

  Stopwatch clock_;  // time base for first-admission/last-completion
  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* invalid_;
  obs::Counter* completed_;
  obs::Counter* expired_;
  obs::Counter* invalidated_;
  obs::Counter* batches_;
  obs::Counter* batched_requests_;
  obs::Gauge* queue_depth_;
  obs::Gauge* max_queue_depth_;
  obs::Histogram* latency_seconds_;
  std::atomic<double> first_admit_at_{-1.0};
  std::atomic<double> last_complete_at_{-1.0};
};

}  // namespace service
}  // namespace updb

#endif  // UPDB_SERVICE_METRICS_H_
