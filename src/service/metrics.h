// Copyright 2026 The updb Authors.
// Serving-layer metrics registry: admission counters, queue depth,
// batching shape, throughput and tail latency, with a JSON dump. All
// recorded quantities are wall-clock observations — they describe one run
// of the service and are deliberately *outside* the determinism contract
// (only response payloads are reproducible; see service/request.h).

#ifndef UPDB_SERVICE_METRICS_H_
#define UPDB_SERVICE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "service/request.h"

namespace updb {
namespace service {

/// Point-in-time aggregate of everything the registry observed.
struct MetricsSnapshot {
  uint64_t submitted = 0;  // Submit calls (admitted + rejected + invalid)
  uint64_t admitted = 0;
  uint64_t rejected = 0;   // admission-queue-full rejections
  uint64_t invalid = 0;    // failed validation
  uint64_t completed = 0;
  uint64_t expired = 0;      // completed with ResponseStatus::kExpired
  /// Completed with ResponseStatus::kInvalid: admitted requests whose
  /// validation no longer held against the snapshot they executed on
  /// (live updates landed in between). Distinct from `invalid`, which
  /// counts admission-time validation failures.
  uint64_t invalidated = 0;
  uint64_t batches = 0;
  double mean_batch_fill = 0.0;  // requests per executed batch
  size_t queue_depth = 0;        // current
  size_t max_queue_depth = 0;
  /// First admission -> last completion (0 before the first completion).
  double elapsed_seconds = 0.0;
  double throughput_qps = 0.0;  // completed / elapsed_seconds
  /// Submit -> response-ready latency, milliseconds.
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Serializes the snapshot as a JSON object (the schema documented in
  /// README "Serving layer").
  std::string ToJson() const;
};

/// Thread-safe metrics registry; one instance per QueryService. Latencies
/// are retained exactly (one double per completed request) — the service
/// is an in-process layer, so a run's request count is bounded by memory
/// the caller already spent on responses.
class ServiceMetrics {
 public:
  ServiceMetrics() = default;

  void RecordAdmitted(size_t queue_depth_after);
  void RecordRejected();
  void RecordInvalid();
  /// `latency_seconds` covers Submit -> response ready.
  void RecordCompleted(ResponseStatus status, double latency_seconds);
  void RecordBatch(size_t fill);
  void RecordQueueDepth(size_t depth);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  Stopwatch clock_;  // time base for first-admission/last-completion
  uint64_t submitted_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t invalid_ = 0;
  uint64_t completed_ = 0;
  uint64_t expired_ = 0;
  uint64_t invalidated_ = 0;
  uint64_t batches_ = 0;
  uint64_t batched_requests_ = 0;
  size_t queue_depth_ = 0;
  size_t max_queue_depth_ = 0;
  double first_admit_at_ = -1.0;
  double last_complete_at_ = -1.0;
  std::vector<double> latencies_seconds_;
};

}  // namespace service
}  // namespace updb

#endif  // UPDB_SERVICE_METRICS_H_
