#include "service/request.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

#include "io/dataset_io.h"
#include "store/object_store.h"
#include "uncertain/database.h"

namespace updb {
namespace service {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashU64(uint64_t v, uint64_t& h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void HashDouble(double v, uint64_t& h) {
  // +0.0 and -0.0 have distinct bit patterns; fold them so a sign-of-zero
  // difference (possible through summation order) never flips a digest.
  HashU64(std::bit_cast<uint64_t>(v == 0.0 ? 0.0 : v), h);
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kThresholdKnn:
      return "knn";
    case QueryKind::kThresholdRknn:
      return "rknn";
    case QueryKind::kInverseRanking:
      return "inverse";
    case QueryKind::kExpectedRank:
      return "expected_rank";
  }
  return "unknown";
}

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kExpired:
      return "expired";
    case ResponseStatus::kRejected:
      return "rejected";
    case ResponseStatus::kInvalid:
      return "invalid";
  }
  return "unknown";
}

namespace {

/// Everything ValidateRequest checks except the inverse-ranking target,
/// whose id space depends on the overload (dense vs stable).
Status ValidateCommon(const QueryRequest& request,
                      const UncertainDatabase& db) {
  if (request.query == nullptr) {
    return Status::InvalidArgument("request without query object");
  }
  if (!db.empty() && request.query->bounds().dim() != db.dim()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (request.budget.max_iterations < 0) {
    return Status::InvalidArgument("negative iteration budget");
  }
  if (request.budget.deadline_ms < 0.0) {
    return Status::InvalidArgument("negative deadline");
  }
  switch (request.kind) {
    case QueryKind::kThresholdKnn:
    case QueryKind::kThresholdRknn:
      if (request.k < 1) return Status::InvalidArgument("k must be >= 1");
      if (request.tau < 0.0 || request.tau > 1.0) {
        return Status::InvalidArgument("tau must be in [0, 1]");
      }
      break;
    case QueryKind::kInverseRanking:
    case QueryKind::kExpectedRank:
      break;
  }
  return Status::OK();
}

}  // namespace

Status ValidateRequest(const QueryRequest& request,
                       const UncertainDatabase& db) {
  UPDB_RETURN_IF_ERROR(ValidateCommon(request, db));
  if (request.kind == QueryKind::kInverseRanking &&
      request.target >= db.size()) {
    return Status::InvalidArgument("inverse-ranking target out of range");
  }
  return Status::OK();
}

Status ValidateRequest(const QueryRequest& request,
                       const store::StoreSnapshot& snapshot) {
  UPDB_RETURN_IF_ERROR(ValidateCommon(request, *snapshot.db()));
  if (request.kind == QueryKind::kInverseRanking &&
      !snapshot.DenseId(request.target).ok()) {
    return Status::InvalidArgument(
        "inverse-ranking target not live at the current version");
  }
  return Status::OK();
}

uint64_t ResponseDigest(const QueryResponse& response) {
  uint64_t h = kFnvOffset;
  HashU64(response.id, h);
  HashU64(static_cast<uint64_t>(response.kind), h);
  HashU64(static_cast<uint64_t>(response.status), h);
  HashU64(response.snapshot_version, h);
  HashU64(static_cast<uint64_t>(response.stats.iterations_granted), h);
  HashU64(response.stats.candidates, h);
  HashU64(response.stats.idca_iterations, h);
  for (const ThresholdQueryResult& r : response.threshold) {
    HashU64(r.id, h);
    HashU64(static_cast<uint64_t>(r.decision), h);
    HashDouble(r.prob.lb, h);
    HashDouble(r.prob.ub, h);
  }
  HashU64(response.rank_bounds.num_ranks(), h);
  for (size_t k = 0; k < response.rank_bounds.num_ranks(); ++k) {
    HashDouble(response.rank_bounds.lb(k), h);
    HashDouble(response.rank_bounds.ub(k), h);
  }
  for (const ExpectedRankEntry& e : response.expected) {
    HashU64(e.id, h);
    HashDouble(e.expected_rank.lb, h);
    HashDouble(e.expected_rank.ub, h);
  }
  return h;
}

uint64_t ResponseDigest(std::span<const QueryResponse> responses) {
  uint64_t h = kFnvOffset;
  for (const QueryResponse& r : responses) HashU64(ResponseDigest(r), h);
  return h;
}

namespace {

/// Bit-exact double field: "name=<hex of the IEEE pattern>;". Text
/// formatting would round; the bit pattern can't.
void AppendDouble(std::string& out, const char* name, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s=%016" PRIx64 ";", name,
                std::bit_cast<uint64_t>(v));
  out.append(buf);
}

}  // namespace

StatusOr<CanonicalRequest> CanonicalizeRequest(const QueryRequest& request) {
  if (request.query == nullptr) {
    return Status::InvalidArgument("request without query object");
  }
  // The PDF's line serialization is the canonical query identity (id 0 is
  // a placeholder — SerializeObject never emits it).
  StatusOr<std::string> serialized =
      io::SerializeObject(UncertainObject(0, request.query, 1.0));
  if (!serialized.ok()) return serialized.status();
  const std::string& pdf_line = *serialized;

  CanonicalRequest canon;
  canon.key.reserve(pdf_line.size() + 96);
  canon.key.append("kind=");
  canon.key.append(QueryKindName(request.kind));
  canon.key.push_back(';');
  canon.key.append("k=");
  canon.key.append(std::to_string(request.k));
  canon.key.push_back(';');
  AppendDouble(canon.key, "tau", request.tau);
  canon.key.append("target=");
  canon.key.append(std::to_string(request.target));
  canon.key.push_back(';');
  canon.key.append("mi=");
  canon.key.append(std::to_string(request.budget.max_iterations));
  canon.key.push_back(';');
  AppendDouble(canon.key, "eps", request.budget.uncertainty_epsilon);
  AppendDouble(canon.key, "dl", request.budget.deadline_ms);
  canon.key.append("q=");
  canon.key.append(pdf_line);

  uint64_t token = kFnvOffset;
  for (unsigned char c : pdf_line) {
    token ^= c;
    token *= kFnvPrime;
  }
  canon.query_token = token != 0 ? token : 1;
  return canon;
}

}  // namespace service
}  // namespace updb
