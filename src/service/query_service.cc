#include "service/query_service.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "queries/queries.h"

namespace updb {
namespace service {

namespace {

/// Refinement iterations an IdcaResult actually executed (entry 0 of the
/// stats series is the filter phase).
size_t IterationsRun(const IdcaResult& r) {
  return r.iterations.empty() ? 0 : r.iterations.size() - 1;
}

/// Expands `mbr` by `reach` in every dimension.
Rect ExpandRect(const Rect& mbr, double reach) {
  std::vector<Interval> sides;
  sides.reserve(mbr.dim());
  for (size_t i = 0; i < mbr.dim(); ++i) {
    sides.emplace_back(mbr.side(i).lo() - reach, mbr.side(i).hi() + reach);
  }
  return Rect(std::move(sides));
}

size_t CheckedPoolSize(size_t num_workers) {
  UPDB_CHECK(num_workers >= 1);
  return num_workers - 1;
}

/// Internal store for the pinned-single-version convenience constructor.
std::shared_ptr<const store::StoreSnapshot> SeededSnapshot(
    const std::shared_ptr<const UncertainDatabase>& db) {
  if (db == nullptr || db->empty()) {
    return store::VersionedObjectStore().latest();
  }
  return store::VersionedObjectStore(*db).latest();
}

/// Flattens one completed response into the slow-request audit ring
/// (no-op when auditing is off). Mutex-free; called after the response is
/// final so it can never influence a payload.
void RecordAudit(obs::RequestAuditLog* log, const QueryResponse& response,
                 double total_seconds) {
  if (log == nullptr) return;
  obs::AuditRecord rec;
  rec.ticket = response.id;
  rec.kind = QueryKindName(response.kind);
  rec.status = ResponseStatusName(response.status);
  rec.snapshot_version = response.snapshot_version;
  rec.queue_seconds = response.stats.queue_seconds;
  rec.exec_seconds = response.stats.exec_seconds;
  rec.total_seconds = total_seconds;
  rec.batch = response.stats.batch;
  rec.candidates = response.stats.candidates;
  rec.idca_iterations = response.stats.idca_iterations;
  rec.ugf_multiplies = response.stats.ugf_multiplies;
  rec.verdict_cache_hits = response.stats.verdict_cache_hits;
  rec.verdict_cache_misses = response.stats.verdict_cache_misses;
  rec.cache_hit = response.stats.cache_hit;
  log->Record(rec);
}

}  // namespace

QueryService::QueryService(std::shared_ptr<const UncertainDatabase> db,
                           QueryServiceOptions options)
    : QueryService(nullptr, SeededSnapshot(db), options) {}

QueryService::QueryService(
    std::shared_ptr<store::VersionedObjectStore> db_store,
    QueryServiceOptions options)
    : QueryService(std::move(db_store), nullptr, options) {
  UPDB_CHECK(store_ != nullptr);
}

QueryService::QueryService(
    std::shared_ptr<const store::StoreSnapshot> snapshot,
    QueryServiceOptions options)
    : QueryService(nullptr, std::move(snapshot), options) {
  UPDB_CHECK(pinned_ != nullptr);
}

QueryService::QueryService(
    std::shared_ptr<store::VersionedObjectStore> db_store,
    std::shared_ptr<const store::StoreSnapshot> pinned,
    QueryServiceOptions options)
    : store_(std::move(db_store)),
      pinned_(std::move(pinned)),
      options_(options),
      metrics_(options_.metrics_registry),
      pool_(CheckedPoolSize(options.num_workers)),
      paused_(options.start_paused) {
  UPDB_CHECK(store_ != nullptr || pinned_ != nullptr);
  UPDB_CHECK(options_.batch_size >= 1);
  UPDB_CHECK(options_.max_queue >= 1);
  UPDB_CHECK(options_.est_iteration_ms > 0.0);
  // Service-created caches register in the effective registry (the
  // injected one or metrics_'s private fallback), so their series join
  // the same JSON/Prometheus export as the service counters.
  if (options_.response_cache != nullptr) {
    response_cache_ = options_.response_cache;
  } else if (options_.response_cache_capacity > 0) {
    response_cache_ = std::make_shared<cache::ResponseCache>(
        options_.response_cache_capacity, &metrics_.registry());
  }
  if (options_.verdict_memo != nullptr) {
    verdict_memo_ = options_.verdict_memo;
  } else if (options_.verdict_memo_capacity > 0) {
    verdict_memo_ = std::make_shared<cache::VerdictMemo>(
        options_.verdict_memo_capacity, &metrics_.registry());
  }
  dispatcher_ = std::thread([this] { DispatcherMain(); });
}

QueryService::~QueryService() { Shutdown(); }

std::shared_ptr<const store::StoreSnapshot> QueryService::CurrentSnapshot()
    const {
  return pinned_ != nullptr ? pinned_ : store_->latest();
}

StatusOr<uint64_t> QueryService::Submit(QueryRequest request) {
  // Admission-time validation runs against the current snapshot; under
  // live updates execution may see a newer version, which re-validates
  // whatever can drift (see RunBatch).
  const std::shared_ptr<const store::StoreSnapshot> snap = CurrentSnapshot();
  const Status valid = ValidateRequest(request, *snap);
  if (!valid.ok()) {
    metrics_.RecordInvalid();
    return valid;
  }

  // Canonicalize once when any cross-request cache is enabled; a request
  // whose query PDF has no line serialization keeps an empty key and
  // bypasses both caches.
  std::string cache_key;
  uint64_t query_token = 0;
  if (response_cache_ != nullptr || verdict_memo_ != nullptr) {
    StatusOr<CanonicalRequest> canon = CanonicalizeRequest(request);
    if (canon.ok()) {
      cache_key = std::move(canon->key);
      query_token = canon->query_token;
    }
  }

  // Response-cache fast path: a hit for (request, current version)
  // bypasses queueing and execution entirely. The cached payload is the
  // determinism contract's pure function of exactly that key, re-stamped
  // with a fresh ticket; the deterministic stats stay verbatim and the
  // wall-clock fields are zeroed (a hit waits in no queue and runs no
  // batch). Serving the version current at submission is
  // indistinguishable from the request having been dispatched before any
  // concurrent publish — the ordering the admission contract already
  // allows — and a publish mints a new version, i.e. a new key, so a
  // stale payload is unreachable by construction.
  if (response_cache_ != nullptr && !cache_key.empty()) {
    QueryResponse hit;
    if (response_cache_->Lookup(cache_key, snap->version(), &hit)) {
      const ResponseStatus status = hit.status;
      uint64_t hit_ticket = 0;
      size_t hit_depth = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return Status::FailedPrecondition("service is shut down");
        hit_ticket = next_ticket_++;
        hit.id = hit_ticket;
        hit.stats.cache_hit = true;
        hit.stats.queue_seconds = 0.0;
        hit.stats.exec_seconds = 0.0;
        // The ring write itself is lock-free; it sits here only because
        // the response is moved out on the next line.
        RecordAudit(options_.audit_log, hit, 0.0);
        done_.emplace(hit_ticket, std::move(hit));
        ++admitted_;
        ++completed_;  // never enters pending_: Flush's invariant holds
        hit_depth = pending_.size();
      }
      metrics_.RecordAdmitted(hit_depth);
      metrics_.RecordCompleted(status, 0.0);
      if (options_.trace != nullptr) {
        const obs::TraceArg args[1] = {{"ticket", hit_ticket}};
        options_.trace->RecordInstant("cache_hit", "service", args, 1);
      }
      done_cv_.notify_all();
      return hit_ticket;
    }
  }

  uint64_t ticket = 0;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::FailedPrecondition("service is shut down");
    if (pending_.size() >= options_.max_queue) {
      metrics_.RecordRejected();
      return Status::ResourceExhausted("admission queue full");
    }
    ticket = next_ticket_++;
    Pending p;
    p.ticket = ticket;
    p.request = std::move(request);
    p.response.id = ticket;
    p.response.kind = p.request.kind;
    p.cache_key = std::move(cache_key);
    p.query_token = query_token;
    pending_.push_back(std::move(p));
    ++admitted_;
    depth = pending_.size();
  }
  metrics_.RecordAdmitted(depth);
  if (options_.trace != nullptr) {
    const obs::TraceArg args[2] = {{"ticket", ticket},
                                   {"queue_depth", depth}};
    options_.trace->RecordInstant("submit", "service", args, 2);
  }
  queue_cv_.notify_one();
  return ticket;
}

QueryResponse QueryService::Take(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_.find(ticket) != done_.end(); });
  auto it = done_.find(ticket);
  QueryResponse response = std::move(it->second);
  done_.erase(it);
  return response;
}

void QueryService::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return completed_ == admitted_; });
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void QueryService::DispatcherMain() {
  for (;;) {
    std::vector<Pending> round;
    uint64_t batch_seq_base = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] {
        return stop_ || (!paused_ && !pending_.empty());
      });
      // On stop, keep draining (even when paused) and exit once empty.
      if (pending_.empty()) {
        if (stop_) return;
        continue;
      }
      const size_t take = std::min(
          pending_.size(), options_.num_workers * options_.batch_size);
      round.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        round.push_back(std::move(pending_.front()));
        pending_.pop_front();
        round.back().queue_seconds = round.back().since_submit.ElapsedSeconds();
      }
      const size_t num_batches =
          (take + options_.batch_size - 1) / options_.batch_size;
      batch_seq_base = next_batch_seq_;
      next_batch_seq_ += num_batches;
      metrics_.RecordQueueDepth(pending_.size());
    }

    // One snapshot per round: every batch of this round executes against
    // the same version, acquired after the round's composition is fixed.
    const std::shared_ptr<const store::StoreSnapshot> snap =
        CurrentSnapshot();

    const size_t bs = options_.batch_size;
    const size_t num_batches = (round.size() + bs - 1) / bs;
    pool_.ParallelFor(
        num_batches, options_.num_workers, [&](size_t b, size_t /*worker*/) {
          const size_t begin = b * bs;
          const size_t count = std::min(bs, round.size() - begin);
          RunBatch(*snap, round.data() + begin, count, batch_seq_base + b);
          metrics_.RecordBatch(count);
        });

    // Record completed responses for later identical requests before
    // handing them out (outside mu_: inserts copy payloads and only take
    // the cache's stripe locks). Inserts key on the version the response
    // actually executed against; kRejected never reaches here and
    // kInvalid is snapshot-churn-specific, so only kOk/kExpired — the
    // reproducible terminal states — are cached.
    if (response_cache_ != nullptr) {
      for (const Pending& p : round) {
        if (!p.cache_key.empty() &&
            (p.response.status == ResponseStatus::kOk ||
             p.response.status == ResponseStatus::kExpired)) {
          response_cache_->Insert(p.cache_key, p.response.snapshot_version,
                                  p.response);
        }
      }
    }

    // Audit before the completion lock: the ring's record path is
    // mutex-free and the responses are final here.
    for (const Pending& p : round) {
      RecordAudit(options_.audit_log, p.response,
                  p.since_submit.ElapsedSeconds());
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Pending& p : round) {
        metrics_.RecordCompleted(p.response.status,
                                 p.since_submit.ElapsedSeconds());
        done_.emplace(p.ticket, std::move(p.response));
      }
      completed_ += round.size();
    }
    done_cv_.notify_all();
  }
}

IdcaConfig QueryService::CompileBudget(const QueryBudget& budget,
                                       int* iterations_granted) const {
  IdcaConfig cfg = options_.base_config;
  // The service owns the coarse-grained (batch-level) parallelism; engine
  // runs stay serial so workers never contend for the shared pool. The
  // engine-level index filter is bypassed too — the service already feeds
  // the engine index-filtered candidates, and the linear filter computes
  // the identical influence set, so the payload cannot change.
  cfg.num_threads = 1;
  cfg.use_index_filter = false;
  cfg.collect_stats = true;
  cfg.trace = options_.trace;
  int granted = budget.max_iterations;
  if (budget.deadline_ms > 0.0) {
    const double by_deadline =
        std::floor(budget.deadline_ms / options_.est_iteration_ms);
    if (by_deadline < static_cast<double>(granted)) {
      // A deadline shorter than one estimated iteration compiles to an
      // explicit zero-iteration grant — NOT to an unexecuted request: the
      // engine still runs its complete-domination filter, every payload
      // field carries the valid filter-phase bracket (vacuous-or-better,
      // kUndecided where a predicate applies), and the response
      // terminates kExpired. The max with 0 also keeps a sub-millisecond
      // deadline from going negative through the floor/int conversion.
      granted = std::max(0, static_cast<int>(by_deadline));
    }
  }
  cfg.max_iterations = granted;
  cfg.uncertainty_epsilon = budget.uncertainty_epsilon;
  *iterations_granted = granted;
  return cfg;
}

void QueryService::AttachMemo(IdcaConfig* cfg, const Pending& p,
                              uint64_t snapshot_version) const {
  if (verdict_memo_ == nullptr || p.cache_key.empty()) return;
  cfg->verdict_memo = verdict_memo_.get();
  cfg->memo_context =
      cache::VerdictMemo::MixContext(snapshot_version, p.query_token);
}

void QueryService::RunBatch(const store::StoreSnapshot& snap, Pending* batch,
                            size_t count, uint64_t batch_seq) const {
  const UncertainDatabase& db = *snap.db();
  obs::TraceSpan batch_span(options_.trace, "batch", "service");
  batch_span.AddArg("batch_seq", batch_seq);
  batch_span.AddArg("count", count);
  batch_span.AddArg("version", snap.version());
  // Group same-kind requests so they share one filter pass. Requests whose
  // admission-time validation no longer holds against this round's
  // snapshot (live updates landed in between) terminate as kInvalid;
  // requests against an empty snapshot complete with empty payloads.
  std::vector<Pending*> knn, rknn;
  for (size_t i = 0; i < count; ++i) {
    Pending& p = batch[i];
    p.response.snapshot_version = snap.version();
    p.response.stats.batch = batch_seq;
    p.response.stats.queue_seconds = p.queue_seconds;
    if (options_.trace != nullptr) {
      // Queue wait reconstructed backwards from batch start: the span
      // ends now and began when the request was admitted. The recorder
      // clamps start AND duration consistently, so a wait measured
      // against the request's own stopwatch can never overstate itself
      // or precede the recorder's epoch on the trace timeline.
      const obs::TraceArg args[1] = {{"ticket", p.ticket}};
      options_.trace->RecordBackdatedSpan(
          "queue_wait", "service", options_.trace->NowNs(),
          static_cast<uint64_t>(p.queue_seconds * 1e9), args, 1);
    }
    if (!db.empty() && p.request.query->bounds().dim() != db.dim()) {
      p.response.status = ResponseStatus::kInvalid;
      continue;
    }
    switch (p.request.kind) {
      case QueryKind::kThresholdKnn:
        if (!db.empty()) knn.push_back(&p);
        break;
      case QueryKind::kThresholdRknn:
        if (!db.empty()) rknn.push_back(&p);
        break;
      case QueryKind::kInverseRanking: {
        // The target is a stable store id; re-translate it against this
        // round's snapshot so churn between admission and execution can
        // never re-bind the request to whichever object inherited the
        // dense slot. A target no longer live terminates as kInvalid.
        const StatusOr<ObjectId> dense = snap.DenseId(p.request.target);
        if (!dense.ok()) {
          p.response.status = ResponseStatus::kInvalid;
        } else {
          ExecInverseRanking(snap, p, *dense);
        }
        break;
      }
      case QueryKind::kExpectedRank:
        if (!db.empty()) ExecExpectedRank(snap, p);
        break;
    }
  }
  if (!knn.empty()) {
    ExecThresholdBatch(snap, knn.data(), knn.size(), /*reverse=*/false);
  }
  if (!rknn.empty()) {
    ExecThresholdBatch(snap, rknn.data(), rknn.size(), /*reverse=*/true);
  }
}

void QueryService::ExecThresholdBatch(const store::StoreSnapshot& snap,
                                      Pending** requests, size_t count,
                                      bool reverse) const {
  const LpNorm& norm = options_.base_config.norm;
  const UncertainDatabase& db = *snap.db();
  const store::ShardedSnapshotIndex& index = snap.index();
  const size_t num_shards = index.num_shards();

  // Phase 1 — candidate filter, one index pass shared across the batch,
  // fanned out per shard and reduced in fixed shard order. Every request
  // ends up with exactly the candidate set a solo run of queries.cc
  // would produce (see the class comment on determinism), in
  // ascending-id order — a distance cutoff (kNN) and a dominator count
  // (RkNN) are both partition-invariant, so the shard count never
  // changes a candidate set.
  const uint64_t filter_start_ns =
      options_.trace != nullptr ? options_.trace->NowNs() : 0;
  std::vector<std::vector<ObjectId>> candidates(count);
  if (!reverse) {
    // Threshold kNN: per-request prune distance (KnnPruneDistance — the
    // same rule the direct query path uses); one ScanByMinDist per shard
    // against the union MBR with the maximum prune distance over-collects
    // a superset, re-filtered per request with its own prune distance.
    std::vector<double> prune(count);
    bool any_bounded = false;
    Rect union_mbr = requests[0]->request.query->bounds();
    double max_prune = 0.0;
    for (size_t r = 0; r < count; ++r) {
      const Rect& q_mbr = requests[r]->request.query->bounds();
      union_mbr = Rect::Hull(union_mbr, q_mbr);
      prune[r] = KnnPruneDistance(db, q_mbr, requests[r]->request.k, norm);
      if (prune[r] == std::numeric_limits<double>::infinity()) continue;
      max_prune = std::max(max_prune, prune[r]);
      any_bounded = true;
    }
    std::vector<ObjectId> shared;
    if (any_bounded) {
      std::vector<std::vector<ObjectId>> per_shard(num_shards);
      ThreadPool::SharedParallelFor(
          num_shards, num_shards, [&](size_t s, size_t /*worker*/) {
            index.ShardScanByMinDist(
                s, union_mbr,
                [&per_shard, s, max_prune](const RTreeEntry& e,
                                           double min_dist) {
                  if (min_dist > max_prune) return false;
                  per_shard[s].push_back(e.id);
                  return true;
                },
                norm);
          });
      for (const std::vector<ObjectId>& ids : per_shard) {
        shared.insert(shared.end(), ids.begin(), ids.end());
      }
      std::sort(shared.begin(), shared.end());
    }
    for (size_t r = 0; r < count; ++r) {
      if (prune[r] == std::numeric_limits<double>::infinity()) {
        candidates[r].resize(db.size());
        for (ObjectId id = 0; id < db.size(); ++id) candidates[r][id] = id;
        continue;
      }
      const Rect& q_mbr = requests[r]->request.query->bounds();
      for (ObjectId id : shared) {
        if (norm.MinDist(db.object(id).mbr(), q_mbr) <= prune[r]) {
          candidates[r].push_back(id);
        }
      }
    }
  } else {
    // Threshold RkNN: B survives while fewer than k certain objects
    // completely dominate Q w.r.t. B. One probe per (B, shard) with the
    // union reach over the batch; any true dominator for any request lies
    // within that request's own reach (complete domination implies
    // MinDist(A,B) <= MaxDist(Q,B)), so counting over the superset is
    // exact per request. Each shard counts its own dominators (capped at
    // the request's k — once a single shard holds k the total is
    // decided) and the per-object totals reduce over shards in fixed
    // shard order.
    std::vector<double> reach(db.size(), 0.0);
    for (ObjectId b = 0; b < db.size(); ++b) {
      const Rect& b_mbr = db.object(b).mbr();
      for (size_t r = 0; r < count; ++r) {
        reach[b] = std::max(
            reach[b],
            norm.MaxDist(requests[r]->request.query->bounds(), b_mbr));
      }
    }
    // Objects are processed in fixed-size blocks so the per-shard count
    // buffers stay O(num_shards × batch × block) — never O(database
    // size) — and each block reduces in shard order before the next one
    // starts (block and shard order are both fixed, so the candidate
    // sets stay deterministic).
    constexpr size_t kBlock = 1024;
    std::vector<std::vector<std::vector<uint32_t>>> dominators(num_shards);
    for (size_t block_begin = 0; block_begin < db.size();
         block_begin += kBlock) {
      const size_t block = std::min(kBlock, db.size() - block_begin);
      ThreadPool::SharedParallelFor(
          num_shards, num_shards, [&](size_t s, size_t /*worker*/) {
            std::vector<std::vector<uint32_t>>& counts = dominators[s];
            counts.assign(count, std::vector<uint32_t>(block, 0));
            std::vector<RTreeEntry> hits;
            for (size_t i = 0; i < block; ++i) {
              const ObjectId b = static_cast<ObjectId>(block_begin + i);
              const Rect& b_mbr = db.object(b).mbr();
              hits.clear();
              index.ShardForEachIntersecting(s, ExpandRect(b_mbr, reach[b]),
                                             [&hits](const RTreeEntry& e) {
                                               hits.push_back(e);
                                               return true;
                                             });
              for (size_t r = 0; r < count; ++r) {
                const QueryRequest& req = requests[r]->request;
                uint32_t& found = counts[r][i];
                for (const RTreeEntry& e : hits) {
                  if (e.id != b &&
                      db.object(e.id).existentially_certain() &&
                      Dominates(e.mbr, req.query->bounds(), b_mbr,
                                options_.base_config.criterion, norm)) {
                    if (++found >= req.k) break;
                  }
                }
              }
            }
          });
      for (size_t i = 0; i < block; ++i) {
        const ObjectId b = static_cast<ObjectId>(block_begin + i);
        for (size_t r = 0; r < count; ++r) {
          size_t total = 0;
          for (size_t s = 0; s < num_shards; ++s) {
            total += dominators[s][r][i];
          }
          if (total < requests[r]->request.k) candidates[r].push_back(b);
        }
      }
    }
  }

  if (options_.trace != nullptr) {
    const obs::TraceArg args[1] = {{"requests", count}};
    options_.trace->RecordSpan(reverse ? "rknn_filter" : "knn_filter",
                               "service", filter_start_ns,
                               options_.trace->NowNs() - filter_start_ns,
                               args, 1);
  }

  // Phase 2 — per-request IDCA refinement under the compiled budget.
  for (size_t r = 0; r < count; ++r) {
    Pending& p = *requests[r];
    obs::TraceSpan req_span(options_.trace, QueryKindName(p.request.kind),
                            "exec");
    req_span.AddArg("ticket", p.ticket);
    req_span.AddArg("candidates", candidates[r].size());
    Stopwatch exec;
    int granted = 0;
    IdcaConfig cfg = CompileBudget(p.request.budget, &granted);
    AttachMemo(&cfg, p, snap.version());
    const IdcaEngine engine(db, cfg);
    const IdcaPredicate predicate{p.request.k, p.request.tau};
    p.response.threshold.reserve(candidates[r].size());
    size_t iterations = 0;
    IdcaCounters counters;
    bool undecided = false;
    for (ObjectId id : candidates[r]) {
      const IdcaResult result =
          reverse ? engine.ComputeDomCountOfQuery(*p.request.query, id,
                                                  predicate)
                  : engine.ComputeDomCount(id, *p.request.query, predicate);
      iterations += IterationsRun(result);
      counters += result.counters;
      undecided |= result.decision == PredicateDecision::kUndecided;
      p.response.threshold.push_back(
          ThresholdQueryResult{id, result.predicate_prob, result.decision});
    }
    p.response.stats.iterations_granted = granted;
    p.response.stats.candidates = candidates[r].size();
    p.response.stats.idca_iterations = iterations;
    p.response.stats.ugf_multiplies = counters.ugf_multiplies;
    p.response.stats.verdict_cache_hits = counters.verdict_cache_hits;
    p.response.stats.verdict_cache_misses = counters.verdict_cache_misses;
    p.response.status = granted < p.request.budget.max_iterations && undecided
                            ? ResponseStatus::kExpired
                            : ResponseStatus::kOk;
    p.response.stats.exec_seconds = exec.ElapsedSeconds();
  }
}

void QueryService::ExecInverseRanking(const store::StoreSnapshot& snap,
                                      Pending& p, ObjectId dense_target)
    const {
  obs::TraceSpan req_span(options_.trace, QueryKindName(p.request.kind),
                          "exec");
  req_span.AddArg("ticket", p.ticket);
  Stopwatch exec;
  int granted = 0;
  IdcaConfig cfg = CompileBudget(p.request.budget, &granted);
  AttachMemo(&cfg, p, snap.version());
  const IdcaEngine engine(*snap.db(), cfg);
  const IdcaResult result =
      engine.ComputeDomCount(dense_target, *p.request.query);
  p.response.rank_bounds = result.bounds;
  p.response.stats.iterations_granted = granted;
  p.response.stats.candidates = result.influence_count;
  p.response.stats.idca_iterations = IterationsRun(result);
  p.response.stats.ugf_multiplies = result.counters.ugf_multiplies;
  p.response.stats.verdict_cache_hits = result.counters.verdict_cache_hits;
  p.response.stats.verdict_cache_misses =
      result.counters.verdict_cache_misses;
  p.response.status =
      granted < p.request.budget.max_iterations &&
              result.bounds.TotalUncertainty() >
                  p.request.budget.uncertainty_epsilon
          ? ResponseStatus::kExpired
          : ResponseStatus::kOk;
  p.response.stats.exec_seconds = exec.ElapsedSeconds();
}

void QueryService::ExecExpectedRank(const store::StoreSnapshot& snap,
                                    Pending& p) const {
  const UncertainDatabase& db = *snap.db();
  obs::TraceSpan req_span(options_.trace, QueryKindName(p.request.kind),
                          "exec");
  req_span.AddArg("ticket", p.ticket);
  Stopwatch exec;
  int granted = 0;
  IdcaConfig cfg = CompileBudget(p.request.budget, &granted);
  AttachMemo(&cfg, p, snap.version());
  // Delegate to the direct query path (serial here: cfg.num_threads == 1)
  // so the service payload cannot diverge from ExpectedRankOrder.
  size_t iterations = 0;
  IdcaCounters counters;
  p.response.expected = ExpectedRankOrder(db, *p.request.query, cfg, nullptr,
                                          &iterations, &counters);
  double total_width = 0.0;
  for (const ExpectedRankEntry& e : p.response.expected) {
    total_width += e.expected_rank.width();
  }
  p.response.stats.iterations_granted = granted;
  p.response.stats.candidates = db.size();
  p.response.stats.idca_iterations = iterations;
  p.response.stats.ugf_multiplies = counters.ugf_multiplies;
  p.response.stats.verdict_cache_hits = counters.verdict_cache_hits;
  p.response.stats.verdict_cache_misses = counters.verdict_cache_misses;
  p.response.status = granted < p.request.budget.max_iterations &&
                              total_width > p.request.budget.uncertainty_epsilon
                          ? ResponseStatus::kExpired
                          : ResponseStatus::kOk;
  p.response.stats.exec_seconds = exec.ElapsedSeconds();
}

}  // namespace service
}  // namespace updb
