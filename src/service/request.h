// Copyright 2026 The updb Authors.
// Typed request/response model of the query service: one tagged request
// shape covering the four query kinds of Section VI (threshold kNN,
// threshold RkNN, inverse ranking, expected-rank ordering), a per-request
// cost budget, and a response carrying the kind-specific payload plus a
// terminal status and per-request statistics.
//
// Determinism contract: everything in a QueryResponse except the wall-clock
// fields of RequestStats (queue_seconds/exec_seconds) is a pure function of
// (request, snapshot version, compiled budget) — with live updates, the
// snapshot a request executes against is named by the snapshot_version the
// response is stamped with, and replaying the request pinned to that
// version reproduces the payload bit-identically. ResponseDigest hashes
// exactly that deterministic part (version included), which is what the
// 1-vs-N-worker tests, the store churn tests, and the service benchmarks
// compare.

#ifndef UPDB_SERVICE_REQUEST_H_
#define UPDB_SERVICE_REQUEST_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "gf/count_bounds.h"
#include "queries/queries.h"
#include "uncertain/pdf.h"

namespace updb {
namespace store {
class StoreSnapshot;
}  // namespace store

namespace service {

/// Which query a request asks for.
enum class QueryKind {
  kThresholdKnn,
  kThresholdRknn,
  kInverseRanking,
  kExpectedRank,
};

/// Stable name of a QueryKind ("knn", "rknn", "inverse", "expected_rank").
const char* QueryKindName(QueryKind kind);

/// Per-request cost budget. Deadlines are *compiled to a deterministic
/// iteration budget at admission* (deadline_ms / estimated per-iteration
/// cost, see QueryServiceOptions::est_iteration_ms) instead of being
/// enforced against the wall clock mid-run: an expiring request then
/// returns its best-so-far brackets as kUndecided after a bounded number
/// of iterations, and responses stay bit-identical across runs and worker
/// counts.
struct QueryBudget {
  /// Hard cap on IDCA refinement iterations (0 = filter phase only, which
  /// still yields valid vacuous-or-better brackets).
  int max_iterations = 8;
  /// Early-stop once accumulated uncertainty falls to or below this.
  double uncertainty_epsilon = 0.0;
  /// Soft deadline in milliseconds; 0 disables deadline compilation.
  double deadline_ms = 0.0;
};

/// One query request. `query` is the uncertain query object Q for
/// kThresholdKnn/kThresholdRknn/kExpectedRank and the reference object R
/// for kInverseRanking; `target` is the ranked database object B for
/// kInverseRanking (unused otherwise); `k`/`tau` apply to the threshold
/// kinds only.
///
/// `target` names a *stable store id* (see store/object_store.h), which
/// equals the dense database id for any single-version database (a store
/// seeded from a plain db publishes with identity mapping). Under live
/// updates the service re-translates the stable id against each round's
/// snapshot, so the request keeps naming the same object across versions;
/// a target no longer live terminates as kInvalid rather than silently
/// binding to whichever object inherited its dense slot.
struct QueryRequest {
  QueryKind kind = QueryKind::kThresholdKnn;
  std::shared_ptr<const Pdf> query;
  ObjectId target = kInvalidObjectId;
  size_t k = 1;
  double tau = 0.5;
  QueryBudget budget;
};

/// Terminal status of a request.
enum class ResponseStatus {
  /// Executed; decisions/bounds are as converged as the budget allowed.
  kOk,
  /// The deadline-compiled budget cut iterations short of the requested
  /// max_iterations and the result is still not fully converged. Payload
  /// fields hold the valid best-so-far brackets.
  kExpired,
  /// Never executed: the admission queue was full (set by ReplayTrace;
  /// QueryService::Submit reports rejection as a Status).
  kRejected,
  /// Not executed: the request failed validation at admission (set by
  /// ReplayTrace), or — under live updates — no longer validated against
  /// the snapshot it was dispatched on (e.g. its inverse-ranking target
  /// was removed between admission and execution).
  kInvalid,
};

/// Stable name of a ResponseStatus ("ok", "expired", ...).
const char* ResponseStatusName(ResponseStatus status);

/// Per-request execution statistics.
struct RequestStats {
  /// Iteration budget after deadline compilation (<= budget.max_iterations).
  int iterations_granted = 0;
  /// Candidates surviving the (shared) spatial filter / objects evaluated.
  size_t candidates = 0;
  /// IDCA refinement iterations actually executed across all candidates.
  size_t idca_iterations = 0;
  /// Engine work counters summed over every IDCA run this request issued
  /// (profiling: per-request cost is visible without tracing). Each is a
  /// deterministic function of (request, snapshot version, budget) and
  /// thread-count-invariant, but — like the wall-clock fields — they stay
  /// OUTSIDE ResponseDigest so digests committed by earlier releases
  /// remain comparable.
  uint64_t ugf_multiplies = 0;
  uint64_t verdict_cache_hits = 0;
  uint64_t verdict_cache_misses = 0;
  /// Batch sequence number the request executed in (diagnostics).
  uint64_t batch = 0;
  /// True when the response was served from the service's cross-request
  /// response cache instead of executing (the payload is bit-identical to
  /// a recomputed response — digest-oracle enforced). Like the wall-clock
  /// fields this describes *how* one run answered, not *what* the answer
  /// is, so it stays outside ResponseDigest.
  bool cache_hit = false;
  /// Wall-clock admission -> batch start. NOT covered by the determinism
  /// contract; excluded from ResponseDigest.
  double queue_seconds = 0.0;
  /// Wall-clock execution time of this request within its batch. NOT
  /// covered by the determinism contract; excluded from ResponseDigest.
  double exec_seconds = 0.0;
};

/// Response to one request. Exactly one payload member is populated,
/// selected by `kind`; threshold results and expected-rank entries are
/// ordered by ascending object id (respectively expected-rank midpoint),
/// never by index-scan order, so the payload is reproducible.
struct QueryResponse {
  /// Ticket assigned by QueryService::Submit (submission order).
  uint64_t id = 0;
  QueryKind kind = QueryKind::kThresholdKnn;
  ResponseStatus status = ResponseStatus::kOk;
  /// Version of the store snapshot the request executed against (0 for
  /// never-executed stubs). Part of the determinism contract: the payload
  /// is reproducible by replaying the request pinned to this version.
  uint64_t snapshot_version = 0;
  /// kThresholdKnn / kThresholdRknn: per-candidate bracket + decision.
  std::vector<ThresholdQueryResult> threshold;
  /// kInverseRanking: bounds on P(Rank = i+1), db-size ranks.
  CountDistributionBounds rank_bounds = CountDistributionBounds(0);
  /// kExpectedRank: all objects ordered by expected-rank midpoint.
  std::vector<ExpectedRankEntry> expected;
  RequestStats stats;
};

/// Validates a request against a database: non-null query PDF of matching
/// dimensionality, k >= 1 and tau in [0, 1] for threshold kinds, a valid
/// target id for inverse ranking (dense-range semantics — use the
/// snapshot overload when stable ids may diverge), non-negative budget
/// fields. An empty database is not an error for most kinds (the service
/// answers with an empty payload so an unpublished store can come up);
/// only inverse ranking fails then, since no target id can be valid.
Status ValidateRequest(const QueryRequest& request,
                       const UncertainDatabase& db);

/// Snapshot-aware validation — what QueryService::Submit uses: identical
/// to the database overload except that the inverse-ranking target is
/// checked as a *stable* store id (must be live at the snapshot).
Status ValidateRequest(const QueryRequest& request,
                       const store::StoreSnapshot& snapshot);

/// FNV-1a hash over the deterministic part of a response (id, kind,
/// status, snapshot version, payload values bit-patterns, deterministic
/// stats). Wall-clock stats fields are excluded. Equal digests across
/// worker counts — and across replays pinned to the same version — is the
/// service's determinism acceptance check.
uint64_t ResponseDigest(const QueryResponse& response);

/// Combined digest of a whole response sequence (order-sensitive).
uint64_t ResponseDigest(std::span<const QueryResponse> responses);

/// Canonical serialized form of a request — the request half of the
/// response cache's (request, snapshot_version) key, and the source of
/// the verdict memo's query-identity token. Two requests get the same key
/// iff every semantic field matches: kind, k, tau, target, the full
/// budget (deadline included — it compiles into the iteration grant), and
/// the query PDF's canonical line serialization. Doubles are keyed by
/// their exact bit pattern, so the key is byte-stable across runs.
struct CanonicalRequest {
  std::string key;
  /// FNV-1a of the PDF serialization (never 0); feeds
  /// cache::VerdictMemo::MixContext.
  uint64_t query_token = 0;
};

/// Fails (Unimplemented) for query PDF types without a line
/// serialization — such requests simply bypass both caches.
StatusOr<CanonicalRequest> CanonicalizeRequest(const QueryRequest& request);

}  // namespace service
}  // namespace updb

#endif  // UPDB_SERVICE_REQUEST_H_
