#include "geom/rect.h"

#include <algorithm>
#include <cmath>

namespace updb {

std::string Point::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < coords_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(coords_[i]);
  }
  out += ")";
  return out;
}

std::string Interval::ToString() const {
  return "[" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]";
}

Rect::Rect(const Point& a, const Point& b) {
  UPDB_DCHECK(a.dim() == b.dim());
  sides_.reserve(a.dim());
  for (size_t i = 0; i < a.dim(); ++i) {
    sides_.emplace_back(std::min(a[i], b[i]), std::max(a[i], b[i]));
  }
}

Rect Rect::FromPoint(const Point& p) {
  std::vector<Interval> sides;
  sides.reserve(p.dim());
  for (size_t i = 0; i < p.dim(); ++i) sides.push_back(Interval::FromPoint(p[i]));
  return Rect(std::move(sides));
}

Rect Rect::Centered(const Point& center, const std::vector<double>& half) {
  UPDB_CHECK(center.dim() == half.size());
  std::vector<Interval> sides;
  sides.reserve(center.dim());
  for (size_t i = 0; i < center.dim(); ++i) {
    UPDB_CHECK(half[i] >= 0.0);
    sides.emplace_back(center[i] - half[i], center[i] + half[i]);
  }
  return Rect(std::move(sides));
}

Point Rect::Center() const {
  Point p(dim());
  for (size_t i = 0; i < dim(); ++i) p[i] = sides_[i].mid();
  return p;
}

Point Rect::LowerCorner() const {
  Point p(dim());
  for (size_t i = 0; i < dim(); ++i) p[i] = sides_[i].lo();
  return p;
}

Point Rect::UpperCorner() const {
  Point p(dim());
  for (size_t i = 0; i < dim(); ++i) p[i] = sides_[i].hi();
  return p;
}

double Rect::Volume() const {
  double v = 1.0;
  for (const Interval& s : sides_) v *= s.length();
  return v;
}

size_t Rect::LongestSide() const {
  UPDB_DCHECK(!sides_.empty());
  size_t best = 0;
  for (size_t i = 1; i < sides_.size(); ++i) {
    if (sides_[i].length() > sides_[best].length()) best = i;
  }
  return best;
}

bool Rect::Contains(const Point& p) const {
  UPDB_DCHECK(p.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (!sides_[i].Contains(p[i])) return false;
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  UPDB_DCHECK(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (!sides_[i].Contains(other.sides_[i])) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  UPDB_DCHECK(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (!sides_[i].Intersects(other.sides_[i])) return false;
  }
  return true;
}

std::pair<Rect, Rect> Rect::Split(size_t axis, double at) const {
  UPDB_DCHECK(axis < dim());
  auto [lo, hi] = sides_[axis].SplitAt(at);
  Rect lower = *this;
  Rect upper = *this;
  lower.sides_[axis] = lo;
  upper.sides_[axis] = hi;
  return {std::move(lower), std::move(upper)};
}

Rect Rect::Hull(const Rect& a, const Rect& b) {
  UPDB_DCHECK(a.dim() == b.dim());
  std::vector<Interval> sides;
  sides.reserve(a.dim());
  for (size_t i = 0; i < a.dim(); ++i) {
    sides.push_back(Interval::Hull(a.sides_[i], b.sides_[i]));
  }
  return Rect(std::move(sides));
}

std::vector<Point> Rect::Corners() const {
  UPDB_CHECK(dim() <= 30);
  const size_t n = size_t{1} << dim();
  std::vector<Point> corners;
  corners.reserve(n);
  for (size_t mask = 0; mask < n; ++mask) {
    Point p(dim());
    for (size_t i = 0; i < dim(); ++i) {
      p[i] = (mask >> i) & 1 ? sides_[i].hi() : sides_[i].lo();
    }
    corners.push_back(std::move(p));
  }
  return corners;
}

std::string Rect::ToString() const {
  std::string out;
  for (size_t i = 0; i < sides_.size(); ++i) {
    if (i > 0) out += " x ";
    out += sides_[i].ToString();
  }
  return out;
}

}  // namespace updb
