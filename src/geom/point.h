// Copyright 2026 The updb Authors.

#ifndef UPDB_GEOM_POINT_H_
#define UPDB_GEOM_POINT_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace updb {

/// A point in d-dimensional Euclidean space. Dimensionality is a runtime
/// property; all geometry routines UPDB_DCHECK that operand dimensions
/// agree.
class Point {
 public:
  Point() = default;

  /// Zero point with `dim` coordinates.
  explicit Point(size_t dim) : coords_(dim, 0.0) {}

  /// Point from explicit coordinates, e.g. Point({0.5, 0.25}).
  Point(std::initializer_list<double> coords) : coords_(coords) {}

  /// Point adopting an existing coordinate vector.
  explicit Point(std::vector<double> coords) : coords_(std::move(coords)) {}

  size_t dim() const { return coords_.size(); }

  double operator[](size_t i) const {
    UPDB_DCHECK(i < coords_.size());
    return coords_[i];
  }
  double& operator[](size_t i) {
    UPDB_DCHECK(i < coords_.size());
    return coords_[i];
  }

  const std::vector<double>& coords() const { return coords_; }

  bool operator==(const Point& other) const = default;

  /// "(c0, c1, ...)" for debugging and logs.
  std::string ToString() const;

 private:
  std::vector<double> coords_;
};

}  // namespace updb

#endif  // UPDB_GEOM_POINT_H_
