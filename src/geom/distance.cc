#include "geom/distance.h"

#include <cmath>

namespace updb {

double LpNorm::Pow(double v) const {
  v = std::abs(v);
  switch (p_) {
    case 1:
      return v;
    case 2:
      return v * v;
    default:
      return std::pow(v, static_cast<double>(p_));
  }
}

double LpNorm::Root(double sum_of_powers) const {
  UPDB_DCHECK(sum_of_powers >= 0.0);
  switch (p_) {
    case 1:
      return sum_of_powers;
    case 2:
      return std::sqrt(sum_of_powers);
    default:
      return std::pow(sum_of_powers, 1.0 / static_cast<double>(p_));
  }
}

double LpNorm::Dist(const Point& a, const Point& b) const {
  UPDB_DCHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) sum += Pow(a[i] - b[i]);
  return Root(sum);
}

double LpNorm::MinDist(const Rect& r, const Point& q) const {
  UPDB_DCHECK(r.dim() == q.dim());
  double sum = 0.0;
  for (size_t i = 0; i < r.dim(); ++i) sum += Pow(r.side(i).MinDist(q[i]));
  return Root(sum);
}

double LpNorm::MaxDist(const Rect& r, const Point& q) const {
  UPDB_DCHECK(r.dim() == q.dim());
  double sum = 0.0;
  for (size_t i = 0; i < r.dim(); ++i) sum += Pow(r.side(i).MaxDist(q[i]));
  return Root(sum);
}

double LpNorm::MinDist(const Rect& a, const Rect& b) const {
  UPDB_DCHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) sum += Pow(a.side(i).MinDist(b.side(i)));
  return Root(sum);
}

double LpNorm::MaxDist(const Rect& a, const Rect& b) const {
  UPDB_DCHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) sum += Pow(a.side(i).MaxDist(b.side(i)));
  return Root(sum);
}

}  // namespace updb
