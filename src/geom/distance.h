// Copyright 2026 The updb Authors.
// Lp-norm distances between points and rectangles. The paper's techniques
// apply to any Lp norm (footnote 1); Euclidean (p = 2) is the default used
// by all experiments.

#ifndef UPDB_GEOM_DISTANCE_H_
#define UPDB_GEOM_DISTANCE_H_

#include "geom/point.h"
#include "geom/rect.h"

namespace updb {

/// An Lp norm with finite integer order p >= 1. Finite p is required by the
/// per-dimension decomposition of the optimal domination criterion
/// (Corollary 1 sums per-dimension p-th powers of coordinate distances).
class LpNorm {
 public:
  /// Constructs the norm; requires p >= 1.
  explicit LpNorm(int p = 2) : p_(p) { UPDB_CHECK(p >= 1); }

  static LpNorm Euclidean() { return LpNorm(2); }
  static LpNorm Manhattan() { return LpNorm(1); }

  int p() const { return p_; }

  /// |v|^p for a single coordinate difference.
  double Pow(double v) const;

  /// Recovers the distance from an accumulated sum of per-dimension powers.
  double Root(double sum_of_powers) const;

  /// Distance between two points.
  double Dist(const Point& a, const Point& b) const;

  /// Minimal distance between a rect and a point (0 when inside).
  double MinDist(const Rect& r, const Point& q) const;

  /// Maximal distance between a rect and a point.
  double MaxDist(const Rect& r, const Point& q) const;

  /// Minimal distance between two rects (0 when intersecting).
  double MinDist(const Rect& a, const Rect& b) const;

  /// Maximal distance between two rects.
  double MaxDist(const Rect& a, const Rect& b) const;

  bool operator==(const LpNorm& other) const = default;

 private:
  int p_;
};

}  // namespace updb

#endif  // UPDB_GEOM_DISTANCE_H_
