// Copyright 2026 The updb Authors.

#ifndef UPDB_GEOM_RECT_H_
#define UPDB_GEOM_RECT_H_

#include <string>
#include <vector>

#include "geom/interval.h"
#include "geom/point.h"

namespace updb {

/// An axis-parallel d-dimensional hyper-rectangle (MBR). Rects model the
/// bounded uncertainty regions of objects as well as R-tree node boxes.
class Rect {
 public:
  Rect() = default;

  /// Rect from per-dimension intervals.
  explicit Rect(std::vector<Interval> sides) : sides_(std::move(sides)) {}

  /// Rect spanned by two corner points (per-dimension min/max is taken).
  Rect(const Point& a, const Point& b);

  /// Degenerate rect covering exactly `p`.
  static Rect FromPoint(const Point& p);

  /// Rect centered at `center` with per-dimension half-extent `half`.
  static Rect Centered(const Point& center, const std::vector<double>& half);

  size_t dim() const { return sides_.size(); }

  const Interval& side(size_t i) const {
    UPDB_DCHECK(i < sides_.size());
    return sides_[i];
  }
  Interval& side(size_t i) {
    UPDB_DCHECK(i < sides_.size());
    return sides_[i];
  }

  Point Center() const;
  Point LowerCorner() const;
  Point UpperCorner() const;

  /// Product of side lengths (0 for degenerate rects).
  double Volume() const;

  /// Length of the longest side and its dimension index.
  size_t LongestSide() const;

  bool Contains(const Point& p) const;
  bool Contains(const Rect& other) const;
  bool Intersects(const Rect& other) const;

  /// Splits perpendicular to dimension `axis` at coordinate `at`
  /// (must be inside the side interval). Returns {lower, upper} halves.
  std::pair<Rect, Rect> Split(size_t axis, double at) const;

  /// Smallest rect containing both operands (dimensions must agree).
  static Rect Hull(const Rect& a, const Rect& b);

  /// Enumerates all 2^d corner points (d <= 30 enforced).
  std::vector<Point> Corners() const;

  bool operator==(const Rect& other) const = default;

  /// "[lo,hi] x [lo,hi] x ...".
  std::string ToString() const;

 private:
  std::vector<Interval> sides_;
};

}  // namespace updb

#endif  // UPDB_GEOM_RECT_H_
