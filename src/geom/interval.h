// Copyright 2026 The updb Authors.

#ifndef UPDB_GEOM_INTERVAL_H_
#define UPDB_GEOM_INTERVAL_H_

#include <algorithm>
#include <string>

#include "common/check.h"

namespace updb {

/// A closed one-dimensional interval [lo, hi] with lo <= hi.
///
/// Intervals are the per-dimension building block of Rect and of the
/// optimal domination criterion (Corollary 1 of the paper), which works on
/// projection intervals of uncertainty regions.
class Interval {
 public:
  /// Degenerate interval [0, 0].
  Interval() : lo_(0.0), hi_(0.0) {}

  /// Requires lo <= hi.
  Interval(double lo, double hi) : lo_(lo), hi_(hi) { UPDB_DCHECK(lo <= hi); }

  /// Degenerate interval [v, v].
  static Interval FromPoint(double v) { return Interval(v, v); }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double length() const { return hi_ - lo_; }
  double mid() const { return 0.5 * (lo_ + hi_); }
  bool degenerate() const { return lo_ == hi_; }

  bool Contains(double v) const { return lo_ <= v && v <= hi_; }
  bool Contains(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  bool Intersects(const Interval& other) const {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// Minimal distance from any point of this interval to the scalar r;
  /// zero when r lies inside.
  double MinDist(double r) const {
    if (r < lo_) return lo_ - r;
    if (r > hi_) return r - hi_;
    return 0.0;
  }

  /// Maximal distance from any point of this interval to the scalar r.
  double MaxDist(double r) const {
    return std::max(std::abs(r - lo_), std::abs(hi_ - r));
  }

  /// Minimal distance between the two intervals (0 when they intersect).
  double MinDist(const Interval& other) const {
    if (Intersects(other)) return 0.0;
    return other.lo_ > hi_ ? other.lo_ - hi_ : lo_ - other.hi_;
  }

  /// Maximal distance between the two intervals.
  double MaxDist(const Interval& other) const {
    return std::max(std::abs(other.hi_ - lo_), std::abs(hi_ - other.lo_));
  }

  /// Clamps v into [lo, hi].
  double Clamp(double v) const { return std::clamp(v, lo_, hi_); }

  /// Splits at `at` (must lie inside) into [lo, at] and [at, hi].
  std::pair<Interval, Interval> SplitAt(double at) const {
    UPDB_DCHECK(Contains(at));
    return {Interval(lo_, at), Interval(at, hi_)};
  }

  /// Smallest interval containing both operands.
  static Interval Hull(const Interval& a, const Interval& b) {
    return Interval(std::min(a.lo_, b.lo_), std::max(a.hi_, b.hi_));
  }

  bool operator==(const Interval& other) const = default;

  /// "[lo, hi]".
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
};

}  // namespace updb

#endif  // UPDB_GEOM_INTERVAL_H_
