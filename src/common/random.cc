#include "common/random.h"

#include <cmath>

namespace updb {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  has_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  UPDB_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  UPDB_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  UPDB_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

double Rng::Gaussian(double mean, double stddev) {
  UPDB_DCHECK(stddev >= 0.0);
  return mean + stddev * NextGaussian();
}

double Rng::Exponential(double lambda) {
  UPDB_DCHECK(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  UPDB_DCHECK(p >= 0.0 && p <= 1.0);
  return NextDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  UPDB_CHECK(k <= n);
  // Floyd's algorithm: k iterations, set membership via sorted vector is
  // fine for the small k used in workloads.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBounded(j + 1));
    bool seen = false;
    for (size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

}  // namespace updb
