// Copyright 2026 The updb Authors.
// Invariant-checking macros. UPDB_CHECK is always on and is used for
// contract violations at public API boundaries; UPDB_DCHECK compiles out in
// release builds and guards internal invariants on hot paths.

#ifndef UPDB_COMMON_CHECK_H_
#define UPDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace updb::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "UPDB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace updb::internal

#define UPDB_CHECK(cond)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      ::updb::internal::CheckFail(__FILE__, __LINE__, #cond);   \
    }                                                           \
  } while (false)

#ifdef NDEBUG
#define UPDB_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define UPDB_DCHECK(cond) UPDB_CHECK(cond)
#endif

#endif  // UPDB_COMMON_CHECK_H_
