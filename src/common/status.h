// Copyright 2026 The updb Authors.
// Status-based error model, in the style of RocksDB / Abseil: fallible
// library operations return Status (or StatusOr<T>) instead of throwing.
// Exceptions are reserved for programming errors surfaced via UPDB_CHECK.

#ifndef UPDB_COMMON_STATUS_H_
#define UPDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace updb {

/// Machine-readable failure category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  /// Unrecoverable loss or corruption of persisted data (torn or
  /// CRC-corrupt WAL tails, checkpoint files that fail validation). The
  /// operation may still have produced a usable partial result — recovery
  /// reports what was dropped instead of aborting.
  kDataLoss = 8,
  /// A required resource (file, directory, device) cannot be reached right
  /// now; retrying or fixing the environment may succeed where the same
  /// call just failed.
  kUnavailable = 9,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Status is cheap to copy (code +
/// shared message string) and is expected to be checked by callers; the
/// UPDB_RETURN_IF_ERROR macro helps propagate failures.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code with a
  /// non-empty message is allowed but unusual.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. Accessing value() on a non-OK StatusOr aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing from
  /// an OK status is a programming error and is converted to kInternal.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the contained status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace updb

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define UPDB_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::updb::Status _updb_status = (expr);      \
    if (!_updb_status.ok()) return _updb_status; \
  } while (false)

#endif  // UPDB_COMMON_STATUS_H_
