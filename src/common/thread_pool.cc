#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace updb {

namespace {

/// True while the current thread is executing a ParallelFor body (on any
/// pool); nested parallel loops detect this and run inline.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunInline(size_t n, const Body& body) {
  if (n == 1) {
    // Degenerate loop: run directly, without marking a parallel region, so
    // a nested ParallelFor in the body keeps its requested parallelism.
    body(0, 0);
    return;
  }
  // Serial / nested path: no locks, no pool interaction. The region flag
  // still guards against the body spawning further parallel loops.
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  for (size_t i = 0; i < n; ++i) body(i, 0);
  t_in_parallel_region = was_in_region;
}

void ThreadPool::ParallelFor(size_t n, size_t parallelism, const Body& body) {
  if (n == 0) return;
  parallelism = std::min(parallelism, n);
  if (n == 1 || t_in_parallel_region || parallelism <= 1 ||
      workers_.empty()) {
    RunInline(n, body);
    return;
  }

  // Serialize concurrent top-level callers: a second caller waits here
  // rather than corrupting the single job slot. (Nested calls never reach
  // this point.)
  static std::mutex caller_mu;
  std::lock_guard<std::mutex> caller_lock(caller_mu);

  const size_t extra_workers =
      std::min(parallelism - 1, workers_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    end_ = n;
    next_.store(0, std::memory_order_relaxed);
    worker_limit_ = extra_workers;
    workers_joined_ = 0;
    ++job_epoch_;
  }
  work_cv_.notify_all();

  t_in_parallel_region = true;
  RunLoop(/*worker_slot=*/0, body);
  t_in_parallel_region = false;

  std::unique_lock<std::mutex> lock(mu_);
  worker_limit_ = 0;  // close the job: no further workers may join
  done_cv_.wait(lock, [this] { return workers_active_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerMain() {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ ||
             (body_ != nullptr && job_epoch_ != seen_epoch &&
              worker_limit_ > 0);
    });
    if (shutdown_) return;
    seen_epoch = job_epoch_;
    // Dense participant ids: the caller is 0; the worker consuming the
    // p-th join permit is p. (workers_active_ would not do — it can reuse
    // an id still held by a running participant.)
    --worker_limit_;
    ++workers_active_;
    const size_t slot = ++workers_joined_;
    const Body* body = body_;
    lock.unlock();

    t_in_parallel_region = true;
    RunLoop(slot, *body);
    t_in_parallel_region = false;

    lock.lock();
    --workers_active_;
    if (workers_active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunLoop(size_t worker_slot, const Body& body) {
  const size_t end = end_;
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end) break;
    body(i, worker_slot);
  }
}

ThreadPool& ThreadPool::Shared() {
  // At least 3 workers (4-way parallelism) even on small machines, so
  // explicitly requested thread counts exercise real threads there.
  static ThreadPool pool(
      std::max<size_t>(std::thread::hardware_concurrency(), 4) - 1);
  return pool;
}

size_t ThreadPool::EffectiveParallelism(int configured) {
  if (configured >= 1) return static_cast<size_t>(configured);
  return std::max<size_t>(std::thread::hardware_concurrency(), 1);
}

void ThreadPool::SharedParallelFor(size_t n, size_t parallelism,
                                   const Body& body) {
  if (n == 0) return;
  if (n == 1 || parallelism <= 1 || t_in_parallel_region) {
    // Would run inline anyway — keep Shared() (and its worker threads)
    // unconstructed for fully serial configurations.
    RunInline(n, body);
    return;
  }
  Shared().ParallelFor(n, parallelism, body);
}

}  // namespace updb
