// Copyright 2026 The updb Authors.

#ifndef UPDB_COMMON_STOPWATCH_H_
#define UPDB_COMMON_STOPWATCH_H_

#include <chrono>

namespace updb {

/// Monotonic wall-clock stopwatch used by the benchmark harness and by
/// IDCA's per-iteration telemetry.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace updb

#endif  // UPDB_COMMON_STOPWATCH_H_
