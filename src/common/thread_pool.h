// Copyright 2026 The updb Authors.
// A small persistent thread pool with a ParallelFor primitive, built for
// the IDCA hot paths: the per-iteration (B', R') pair loop and the
// per-candidate loops of the query layer.
//
// Design constraints, in order:
//
//  1. Determinism is the caller's job, and the pool makes it cheap: indices
//     are handed out dynamically (work stealing via one atomic counter),
//     so callers that need reproducible floating-point results accumulate
//     into per-index (or per-chunk) partials and reduce in index order
//     after ParallelFor returns. Nothing about the result may then depend
//     on the schedule or the thread count.
//  2. Nested ParallelFor calls execute inline on the calling thread. The
//     query layer parallelizes over candidates while each candidate's IDCA
//     run may itself request a parallel pair loop; running the inner loop
//     inline keeps the outer, coarser-grained parallelism and cannot
//     deadlock the pool.
//  3. ParallelFor(n, 1, body) never touches the pool or any lock — the
//     serial configuration stays exactly as debuggable as a plain loop.
//
// Bodies must not throw: a escaping exception would terminate (the pool
// runs bodies noexcept-equivalent). updb signals contract violations via
// UPDB_CHECK (abort), never exceptions, so this is not a restriction in
// practice.

#ifndef UPDB_COMMON_THREAD_POOL_H_
#define UPDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace updb {

/// Persistent worker pool. One pool can serve many ParallelFor calls (from
/// one caller at a time; concurrent top-level calls from distinct threads
/// are serialized internally per job slot and simply see fewer idle
/// workers).
class ThreadPool {
 public:
  /// Body of a parallel loop: called once per index with the index and the
  /// id of the executing participant (0 = the calling thread, 1..P-1 = pool
  /// workers). Participant ids are dense and unique within one ParallelFor,
  /// so they can address per-worker scratch workspaces.
  using Body = std::function<void(size_t index, size_t worker)>;

  /// Spawns `num_workers` persistent worker threads (0 is allowed and makes
  /// every ParallelFor run inline).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Runs body(i, worker) for every i in [0, n), using at most
  /// `parallelism` threads (the calling thread plus up to parallelism-1
  /// pool workers). Blocks until every index has completed. Nested calls —
  /// ParallelFor from inside a body, on any pool — run inline serially.
  /// n == 1 is not a parallel region at all: the body runs directly and a
  /// nested ParallelFor inside it keeps its full parallelism (a query with
  /// a single candidate must not serialize the engine's pair loop).
  void ParallelFor(size_t n, size_t parallelism, const Body& body);

  /// Process-wide shared pool created on first use, sized with a few
  /// spare workers beyond the hardware thread count so explicit requests
  /// (e.g. num_threads = 4 on a 1-core CI box) still exercise real
  /// threads. Engines and queries draw workers from here instead of
  /// spawning per-instance pools, so a query that parallelizes candidates
  /// and an engine that parallelizes partition pairs never oversubscribe.
  static ThreadPool& Shared();

  /// Resolves a configured thread count: values >= 1 are returned as-is,
  /// 0 means all hardware threads.
  static size_t EffectiveParallelism(int configured);

  /// ParallelFor on the shared pool — but when the loop would run inline
  /// anyway (n <= 1, parallelism <= 1, or already inside a parallel
  /// region) it does so WITHOUT instantiating Shared(), so fully serial
  /// configurations never spawn the pool's worker threads. This is the
  /// entry point the engine and query layer use.
  static void SharedParallelFor(size_t n, size_t parallelism,
                                const Body& body);

 private:
  void WorkerMain();
  /// Pulls indices from the open job until exhausted.
  void RunLoop(size_t worker_slot, const Body& body);
  /// Serial fallback shared by ParallelFor and SharedParallelFor.
  static void RunInline(size_t n, const Body& body);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: a job opened
  std::condition_variable done_cv_;   // caller: all participants finished
  std::vector<std::thread> workers_;

  // Current job, guarded by mu_ (next_ is the only hot shared word).
  const Body* body_ = nullptr;
  std::atomic<size_t> next_{0};
  size_t end_ = 0;
  size_t worker_limit_ = 0;     // pool workers still allowed to join
  size_t workers_joined_ = 0;   // pool workers that joined the current job
  size_t workers_active_ = 0;   // pool workers currently running the body
  uint64_t job_epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace updb

#endif  // UPDB_COMMON_THREAD_POOL_H_
