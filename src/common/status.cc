#include "common/status.h"

namespace updb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace updb
