// Copyright 2026 The updb Authors.
// Deterministic, seedable pseudo-random machinery used throughout updb.
// All experiments in the paper reproduction are driven through Rng so runs
// are reproducible from a single seed; std::mt19937 is deliberately avoided
// in favor of a small, fast, well-understood xoshiro256** generator.

#ifndef UPDB_COMMON_RANDOM_H_
#define UPDB_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace updb {

/// xoshiro256** pseudo-random generator, seeded via splitmix64.
///
/// Deterministic across platforms for a given seed. Satisfies the
/// UniformRandomBitGenerator requirements so it can also be plugged into
/// <random> distributions, though updb code uses the member helpers.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator state from `seed` with splitmix64 expansion.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  /// Re-initializes the state as if freshly constructed with `seed`.
  void Reseed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when equal.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the result is exactly uniform.
  uint64_t NextBounded(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Marsaglia polar method (cached spare value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement
  /// (reservoir-style; output order unspecified). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// splitmix64 step — also useful standalone for hashing seeds.
uint64_t SplitMix64(uint64_t& state);

}  // namespace updb

#endif  // UPDB_COMMON_RANDOM_H_
