// Copyright 2026 The updb Authors.
// HTTP admin endpoint of the introspection plane (ROADMAP: live
// introspection): serves the unified MetricsRegistry as a Prometheus
// scrape, a liveness/readiness health model, a JSON /statusz process
// overview and the slow-request audit log, over the minimal net/http
// responder. The admin plane is read-only and stays off the query hot
// path entirely: every endpoint renders from lock-free snapshots (metric
// loads, audit-ring seqlock reads) or from caller-supplied callbacks, so
// scraping a live process never changes a served payload (digest oracle in
// bench_obs_overhead and CI).
//
// Endpoints:
//   /          index of the endpoints below (text/plain)
//   /metrics   Prometheus text exposition of the registry
//   /healthz   liveness: 200 "ok" whenever the server thread is up
//   /readyz    readiness: 200 only when the readiness callback says the
//              process can serve (store attached, WAL healthy, recovery
//              clean); 503 with the reason otherwise
//   /statusz   JSON: build info, uptime, plus caller-supplied fields
//              (snapshot version, shard live counts, queue depth, cache
//              occupancy, fsync policy)
//   /requestz  JSON slow-request audit log (see obs/audit_log.h)

#ifndef UPDB_OBS_ADMIN_SERVER_H_
#define UPDB_OBS_ADMIN_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/stopwatch.h"
#include "net/http.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"

namespace updb {
namespace obs {

/// Result of the readiness probe. `reason` is surfaced verbatim in the
/// /readyz body so an operator sees *why* the process is not ready.
struct AdminReadiness {
  bool ready = true;
  std::string reason = "ok";
};

struct AdminServerOptions {
  /// Port on 127.0.0.1; 0 picks an ephemeral port (AdminServer::port()).
  uint16_t port = 0;
  /// Registry behind /metrics. nullptr serves an empty exposition.
  MetricsRegistry* registry = nullptr;
  /// Audit log behind /requestz. nullptr serves an empty log shape.
  const RequestAuditLog* audit_log = nullptr;
  /// Readiness probe; unset means "always ready" (no store attached is a
  /// valid single-binary mode — service/introspection.h supplies the
  /// store-backed probe).
  std::function<AdminReadiness()> readiness;
  /// Extra /statusz fields, returned as a JSON fragment of the form
  /// `"key": value, ...` (no surrounding braces); empty string for none.
  std::function<std::string()> statusz_fields;
  /// Free-form build identification echoed in /statusz.
  std::string build_info = "updb";
  size_t max_connections = 32;
};

/// Owns the HTTP server thread and renders the admin endpoints. Start()
/// binds and serves; Stop() (and the destructor) joins. The referenced
/// registry/audit log/callbacks must outlive the server.
class AdminServer {
 public:
  explicit AdminServer(AdminServerOptions options);
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return http_->port(); }
  bool running() const { return http_->running(); }
  const net::HttpServer& http() const { return *http_; }

  /// Endpoint dispatch, exposed for direct (serverless) unit testing.
  net::HttpResponse Handle(const net::HttpRequest& request) const;

 private:
  net::HttpResponse Statusz() const;
  net::HttpResponse Readyz() const;

  const AdminServerOptions options_;
  Stopwatch uptime_;
  std::unique_ptr<net::HttpServer> http_;
};

}  // namespace obs
}  // namespace updb

#endif  // UPDB_OBS_ADMIN_SERVER_H_
