#include "obs/admin_server.h"

#include <cstdio>

namespace updb {
namespace obs {

namespace {

constexpr char kIndexBody[] =
    "updb admin plane\n"
    "  /metrics   Prometheus exposition of the metrics registry\n"
    "  /healthz   liveness probe\n"
    "  /readyz    readiness probe (store attached, WAL ok, recovery clean)\n"
    "  /statusz   process overview (JSON)\n"
    "  /requestz  slow-request audit log (JSON)\n";

net::HttpResponse Plain(int status, std::string body) {
  net::HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

net::HttpResponse Json(std::string body) {
  net::HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

/// Minimal JSON string escaping for operator-supplied text (build info,
/// readiness reasons): quotes, backslashes and control bytes.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {
  net::HttpServerOptions http_options;
  http_options.port = options_.port;
  http_options.max_connections = options_.max_connections;
  http_ = std::make_unique<net::HttpServer>(
      http_options,
      [this](const net::HttpRequest& req) { return Handle(req); });
}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  uptime_.Reset();
  return http_->Start();
}

void AdminServer::Stop() { http_->Stop(); }

net::HttpResponse AdminServer::Handle(
    const net::HttpRequest& request) const {
  const std::string path = request.Path();
  if (path == "/" || path == "/index") return Plain(200, kIndexBody);
  if (path == "/healthz") return Plain(200, "ok\n");
  if (path == "/readyz") return Readyz();
  if (path == "/statusz") return Statusz();
  if (path == "/metrics") {
    net::HttpResponse resp;
    // The exposition content type Prometheus scrapers expect.
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body =
        options_.registry != nullptr ? options_.registry->ToPrometheus() : "";
    return resp;
  }
  if (path == "/requestz") {
    if (options_.audit_log == nullptr) {
      return Json(
          "{\"capacity\": 0, \"observed\": 0, \"recorded\": 0, "
          "\"records\": []}");
    }
    return Json(options_.audit_log->ToJson());
  }
  return Plain(404, "no such endpoint; see / for the index\n");
}

net::HttpResponse AdminServer::Readyz() const {
  AdminReadiness readiness;
  if (options_.readiness) readiness = options_.readiness();
  if (readiness.ready) return Plain(200, "ok\n");
  return Plain(503, "not ready: " + readiness.reason + "\n");
}

net::HttpResponse AdminServer::Statusz() const {
  std::string body = "{";
  body += "\"build\": \"" + JsonEscape(options_.build_info) + "\", ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"uptime_seconds\": %.3f",
                uptime_.ElapsedSeconds());
  body += buf;
  AdminReadiness readiness;
  if (options_.readiness) readiness = options_.readiness();
  body += std::string(", \"ready\": ") +
          (readiness.ready ? "true" : "false");
  body += ", \"ready_reason\": \"" + JsonEscape(readiness.reason) + "\"";
  if (options_.statusz_fields) {
    const std::string fields = options_.statusz_fields();
    if (!fields.empty()) body += ", " + fields;
  }
  body += "}";
  return Json(std::move(body));
}

}  // namespace obs
}  // namespace updb
