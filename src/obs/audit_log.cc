#include "obs/audit_log.h"

#include <cstdio>
#include <cstring>

namespace updb {
namespace obs {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

template <typename... Args>
void Appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

RequestAuditLog::RequestAuditLog(AuditLogOptions options)
    : options_(options),
      capacity_(RoundUpPow2(options.capacity < 2 ? 2 : options.capacity)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {
  if (options_.registry != nullptr) {
    observed_counter_ = options_.registry->Counter(
        "updb_audit_observed_total",
        "Completed requests observed by the slow-request audit log");
    slow_counter_ = options_.registry->Counter(
        LabeledSeries("updb_audit_recorded_total", {{"class", "slow"}}),
        "Requests recorded into the audit ring");
    sampled_counter_ = options_.registry->Counter(
        LabeledSeries("updb_audit_recorded_total", {{"class", "sampled"}}),
        "Requests recorded into the audit ring");
    options_.registry
        ->Gauge("updb_audit_capacity", "Slots in the audit ring")
        ->Set(static_cast<int64_t>(capacity_));
  }
}

bool RequestAuditLog::Record(AuditRecord record) {
  const uint64_t seen = observed_.fetch_add(1, std::memory_order_relaxed);
  if (observed_counter_ != nullptr) observed_counter_->Add(1);

  record.slow = record.total_seconds >= options_.slow_threshold_seconds;
  if (!record.slow) {
    // Fast request: admit every sample_every-th observation only.
    if (options_.sample_every == 0 || seen % options_.sample_every != 0) {
      return false;
    }
  }

  const uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & mask_];
  // Claim the slot. Seeing kWriting here means another writer lapped the
  // whole ring while this record's slot was mid-copy — vanishingly rare
  // with a sane capacity; drop instead of spinning on the hot path.
  const uint64_t prev =
      slot.seq.exchange(kWriting, std::memory_order_acquire);
  if (prev == kWriting) {
    collisions_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint64_t words[kPayloadWords] = {};
  std::memcpy(words, &record, sizeof(AuditRecord));
  for (size_t w = 0; w < kPayloadWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(idx + 1, std::memory_order_release);

  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (record.slow) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    if (slow_counter_ != nullptr) slow_counter_->Add(1);
  } else if (sampled_counter_ != nullptr) {
    sampled_counter_->Add(1);
  }
  return true;
}

std::vector<AuditRecord> RequestAuditLog::Snapshot() const {
  std::vector<AuditRecord> out;
  out.reserve(capacity_);
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t oldest =
      head > capacity_ ? head - capacity_ : 0;
  // Newest first: logical indices [head-1 .. oldest]. A slot is accepted
  // only when its sequence word equals the expected logical index both
  // before and after the copy (seqlock read side).
  for (uint64_t i = head; i > oldest; --i) {
    const uint64_t logical = i - 1;
    const Slot& slot = slots_[logical & mask_];
    const uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 != logical + 1) continue;  // overwritten, torn, or never valid
    uint64_t words[kPayloadWords];
    for (size_t w = 0; w < kPayloadWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
    if (seq2 != seq1) continue;
    AuditRecord copy;
    std::memcpy(&copy, words, sizeof(AuditRecord));
    out.push_back(copy);
  }
  return out;
}

std::string RequestAuditLog::ToJson() const {
  const std::vector<AuditRecord> records = Snapshot();
  std::string out = "{";
  Appendf(out, "\"capacity\": %zu, ", capacity_);
  Appendf(out, "\"slow_threshold_seconds\": %.6g, ",
          options_.slow_threshold_seconds);
  Appendf(out, "\"sample_every\": %llu, ",
          static_cast<unsigned long long>(options_.sample_every));
  Appendf(out, "\"observed\": %llu, ",
          static_cast<unsigned long long>(observed()));
  Appendf(out, "\"recorded\": %llu, ",
          static_cast<unsigned long long>(recorded()));
  Appendf(out, "\"slow\": %llu, ",
          static_cast<unsigned long long>(slow_recorded()));
  Appendf(out, "\"collisions\": %llu, ",
          static_cast<unsigned long long>(collisions()));
  out += "\"records\": [";
  bool first = true;
  for (const AuditRecord& r : records) {
    if (!first) out += ", ";
    first = false;
    out += "{";
    Appendf(out, "\"ticket\": %llu, ",
            static_cast<unsigned long long>(r.ticket));
    out += std::string("\"kind\": \"") + r.kind + "\", ";
    out += std::string("\"status\": \"") + r.status + "\", ";
    Appendf(out, "\"snapshot_version\": %llu, ",
            static_cast<unsigned long long>(r.snapshot_version));
    out += std::string("\"slow\": ") + (r.slow ? "true" : "false") + ", ";
    out += std::string("\"cache_hit\": ") +
           (r.cache_hit ? "true" : "false") + ", ";
    Appendf(out, "\"queue_seconds\": %.6g, ", r.queue_seconds);
    Appendf(out, "\"exec_seconds\": %.6g, ", r.exec_seconds);
    Appendf(out, "\"total_seconds\": %.6g, ", r.total_seconds);
    Appendf(out, "\"batch\": %llu, ",
            static_cast<unsigned long long>(r.batch));
    Appendf(out, "\"candidates\": %llu, ",
            static_cast<unsigned long long>(r.candidates));
    Appendf(out, "\"idca_iterations\": %llu, ",
            static_cast<unsigned long long>(r.idca_iterations));
    Appendf(out, "\"ugf_multiplies\": %llu, ",
            static_cast<unsigned long long>(r.ugf_multiplies));
    Appendf(out, "\"verdict_cache_hits\": %llu, ",
            static_cast<unsigned long long>(r.verdict_cache_hits));
    Appendf(out, "\"verdict_cache_misses\": %llu",
            static_cast<unsigned long long>(r.verdict_cache_misses));
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace updb
