// Copyright 2026 The updb Authors.
// Slow-request audit log of the introspection plane (ROADMAP: live
// introspection): a fixed-size lock-free ring that records, per completed
// request above a latency threshold (plus a 1-in-N sample of the rest),
// the request's identity and per-stage attribution — queue wait vs
// execution, engine counters, cache hit — so /requestz can answer "which
// requests are slow and where" without retaining anything O(requests).
//
// Hot-path contract (same bar as metrics.h): Record() takes no mutex. The
// writer claims a slot with one fetch_add and publishes through a per-slot
// sequence word (seqlock style): the slot is marked in-progress, the
// payload is copied, then the slot's logical index is stored with release
// order. Readers copy the payload and accept it only when the sequence
// word is identical and stable before and after the copy — torn slots are
// skipped, never blocked on. A concurrent writer landing on the same slot
// (ring wrapped a full turn mid-write) is counted as a collision and
// dropped rather than spun on.
//
// Memory contract: capacity slots, fixed at construction; everything else
// is a handful of atomics. Determinism: the audit log observes completed
// responses and never feeds back into execution — payloads are
// bit-identical with auditing on or off (admin plane digest oracle).

#ifndef UPDB_OBS_AUDIT_LOG_H_
#define UPDB_OBS_AUDIT_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace updb {
namespace obs {

/// One completed request, flattened to a POD so the ring can copy it
/// without allocation. `kind` and `status` must point at static strings
/// (service/request.h's QueryKindName / ResponseStatusName literals).
struct AuditRecord {
  uint64_t ticket = 0;
  const char* kind = "";
  const char* status = "";
  uint64_t snapshot_version = 0;
  /// Per-stage attribution from RequestStats.
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t batch = 0;
  uint64_t candidates = 0;
  uint64_t idca_iterations = 0;
  uint64_t ugf_multiplies = 0;
  uint64_t verdict_cache_hits = 0;
  uint64_t verdict_cache_misses = 0;
  bool cache_hit = false;
  /// True when the record was admitted by the latency threshold, false
  /// when it is a 1-in-N sample of the fast remainder.
  bool slow = false;
};

struct AuditLogOptions {
  /// Ring slots; rounded up to a power of two, minimum 2.
  size_t capacity = 256;
  /// Requests at or above this total latency are always recorded.
  double slow_threshold_seconds = 0.050;
  /// Of the requests below the threshold, record every Nth (0 disables
  /// sampling entirely: the ring then holds only slow requests).
  uint64_t sample_every = 64;
  /// When set, the audit log mirrors its totals into registry series
  /// (updb_audit_observed_total, updb_audit_recorded_total{class=...},
  /// updb_audit_capacity).
  MetricsRegistry* registry = nullptr;
};

/// Bounded lock-free audit ring; see the file comment for the publication
/// protocol. One instance per QueryService.
class RequestAuditLog {
 public:
  explicit RequestAuditLog(AuditLogOptions options = {});
  RequestAuditLog(const RequestAuditLog&) = delete;
  RequestAuditLog& operator=(const RequestAuditLog&) = delete;

  /// Observes one completed request; decides threshold/sampling and, when
  /// admitted, writes it into the ring. Mutex-free; safe from any thread.
  /// Returns true when the record entered the ring.
  bool Record(AuditRecord record);

  /// Consistent copies of the live records, newest first. Slots being
  /// rewritten concurrently are skipped.
  std::vector<AuditRecord> Snapshot() const;

  /// {"capacity": ..., "observed": ..., "records": [...]} — newest first,
  /// with per-stage attribution per record. This is /requestz's payload.
  std::string ToJson() const;

  size_t capacity() const { return capacity_; }
  const AuditLogOptions& options() const { return options_; }
  uint64_t observed() const {
    return observed_.load(std::memory_order_relaxed);
  }
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t slow_recorded() const {
    return slow_.load(std::memory_order_relaxed);
  }
  uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }

 private:
  /// Sequence word states: 0 = never written, kWriting = writer mid-copy,
  /// otherwise logical_index + 1 of the record the slot holds.
  static constexpr uint64_t kWriting = ~uint64_t{0};

  /// The payload lives in the slot as relaxed-atomic words rather than an
  /// AuditRecord directly: a seqlock reader may copy a slot mid-write and
  /// only then discard it, so the copy itself must not be a (formal) data
  /// race. Relaxed word ops cost nothing on the hot path; the seq word's
  /// release store / acquire load still provide the ordering.
  static_assert(std::is_trivially_copyable_v<AuditRecord>,
                "the audit ring copies records as raw words");
  static constexpr size_t kPayloadWords =
      (sizeof(AuditRecord) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kPayloadWords] = {};
  };

  const AuditLogOptions options_;
  const size_t capacity_;  // power of two
  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // next logical index to claim

  std::atomic<uint64_t> observed_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> slow_{0};
  std::atomic<uint64_t> collisions_{0};

  /// Registry mirrors (nullptr when options_.registry is null).
  obs::Counter* observed_counter_ = nullptr;
  obs::Counter* slow_counter_ = nullptr;
  obs::Counter* sampled_counter_ = nullptr;
};

}  // namespace obs
}  // namespace updb

#endif  // UPDB_OBS_AUDIT_LOG_H_
