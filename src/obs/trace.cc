#include "obs/trace.h"

#include <atomic>
#include <cstdio>

namespace updb {
namespace obs {

TraceRecorder::TraceRecorder(size_t max_events)
    : max_events_(max_events > 0 ? max_events : 1),
      epoch_(std::chrono::steady_clock::now()) {
  events_.reserve(std::min<size_t>(max_events_, 4096));
}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t TraceRecorder::ThreadId() {
  // Dense process-wide ids: stable per thread, assigned on first use.
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void TraceRecorder::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    if (dropped_gauge_ != nullptr) {
      dropped_gauge_->Set(static_cast<int64_t>(dropped_));
    }
    return;
  }
  events_.push_back(event);
}

void TraceRecorder::RegisterGauges(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry
      ->Gauge("updb_trace_buffer_capacity",
              "Event bound of the trace recorder's buffer")
      ->Set(static_cast<int64_t>(max_events_));
  Gauge* dropped_gauge = registry->Gauge(
      "updb_trace_dropped_events",
      "Trace events discarded because the buffer was full");
  std::lock_guard<std::mutex> lock(mu_);
  dropped_gauge_ = dropped_gauge;
  dropped_gauge_->Set(static_cast<int64_t>(dropped_));
}

void TraceRecorder::RecordSpan(const char* name, const char* category,
                               uint64_t ts_ns, uint64_t dur_ns,
                               const TraceArg* args, uint32_t num_args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.tid = ThreadId();
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns == TraceEvent::kInstant ? dur_ns - 1 : dur_ns;
  e.num_args = num_args > 4 ? 4 : num_args;
  for (uint32_t i = 0; i < e.num_args; ++i) e.args[i] = args[i];
  Record(e);
}

void TraceRecorder::RecordBackdatedSpan(const char* name,
                                        const char* category, uint64_t end_ns,
                                        uint64_t dur_ns, const TraceArg* args,
                                        uint32_t num_args) {
  // Clamp start and duration *together*: a wait measured on another clock
  // (or spanning the recorder's construction) truncates to the portion
  // inside this recorder's timeline instead of keeping the full duration
  // against a zeroed start, which would overstate the wait and render
  // before process start in Perfetto.
  const uint64_t start_ns = end_ns > dur_ns ? end_ns - dur_ns : 0;
  RecordSpan(name, category, start_ns, end_ns - start_ns, args, num_args);
}

void TraceRecorder::RecordInstant(const char* name, const char* category,
                                  const TraceArg* args, uint32_t num_args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.tid = ThreadId();
  e.ts_ns = NowNs();
  e.dur_ns = TraceEvent::kInstant;
  e.num_args = num_args > 4 ? 4 : num_args;
  for (uint32_t i = 0; i < e.num_args; ++i) e.args[i] = args[i];
  Record(e);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceRecorder::ToChromeJson() const {
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  {
    // One lock for a consistent (events, dropped) pair in the header.
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    dropped = dropped_;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"updbTrace\": {\"maxEvents\": %llu, "
                "\"recordedEvents\": %llu, \"droppedEvents\": %llu},\n"
                "\"traceEvents\": [",
                static_cast<unsigned long long>(max_events_),
                static_cast<unsigned long long>(events.size()),
                static_cast<unsigned long long>(dropped));
  std::string out = buf;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += "\n";
    // Chrome trace units: ts/dur in microseconds.
    const double ts_us = static_cast<double>(e.ts_ns) / 1e3;
    if (e.dur_ns == TraceEvent::kInstant) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                    "\"s\": \"t\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f",
                    e.name, e.category, e.tid, ts_us);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                    "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f",
                    e.name, e.category, e.tid, ts_us,
                    static_cast<double>(e.dur_ns) / 1e3);
    }
    out += buf;
    if (e.num_args > 0) {
      out += ", \"args\": {";
      for (uint32_t a = 0; a < e.num_args; ++a) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                      a > 0 ? ", " : "", e.args[a].key,
                      static_cast<unsigned long long>(e.args[a].value));
        out += buf;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open trace output '" + path + "'");
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Unavailable("short write to trace output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace updb
