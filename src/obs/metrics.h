// Copyright 2026 The updb Authors.
// Process-wide metrics substrate of the observability layer (ROADMAP:
// unified observability): counters, gauges and log-bucketed bounded-memory
// histograms owned by a MetricsRegistry that exports every registered
// series as one JSON dump and one Prometheus text exposition.
//
// Hot-path contract: recording is lock-free. Counters add into
// cache-line-aligned striped atomics (a thread picks its stripe once and
// keeps it), gauges are single atomics, and histograms add into per-bucket
// atomics plus CAS-maintained sum/min/max cells — no mutex is taken on any
// Record/Add/Set path. The registry's mutex guards registration and export
// only, so get-or-create happens at component construction, never per
// observation.
//
// Memory contract: a histogram's footprint is fixed at construction
// (`buckets` cells), independent of the number of recorded samples — this
// is what replaced ServiceMetrics' exact-retention latency vector.
// Quantiles interpolate within the containing bucket; with bucket edges
// le_i = min * growth^i the relative quantile error is bounded by
// growth - 1 (default 0.2) for values inside [min, min * growth^buckets].
// The observed max/min are tracked exactly, so Quantile(1.0) and the
// reported maximum are not subject to the bucket error.
//
// Determinism: nothing here feeds back into query execution. All recorded
// quantities are wall-clock observations outside the determinism contract,
// exactly as service/metrics.h documents for the serving layer.

#ifndef UPDB_OBS_METRICS_H_
#define UPDB_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace updb {
namespace obs {

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash -> \\, double quote -> \", newline -> \n. Use when building
/// a {label="value"} series suffix from non-literal text.
std::string EscapeLabelValue(const std::string& value);

/// Builds a labeled series key — name{k1="v1",k2="v2"} with every value
/// escaped — suitable for MetricsRegistry::Counter/Gauge/Histogram, whose
/// series keys keep the label suffix verbatim. Labels are emitted in the
/// given order; an empty list returns the bare name.
std::string LabeledSeries(
    const std::string& name,
    std::initializer_list<std::pair<const char*, std::string>> labels);

/// Monotonic counter. Add() is wait-free on x86: each thread picks one of
/// kStripes cache-line-aligned atomics by a cheap per-thread hash, so
/// concurrent recorders do not contend on one line. Value() sums the
/// stripes (racy-exact: every Add lands in exactly one stripe).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    stripes_[StripeIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;

  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  static size_t StripeIndex();

  Stripe stripes_[kStripes];
};

/// Last-write-wins instantaneous value with atomic Set/Add/SetMax.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below (CAS loop, never lowers).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Bucket layout of a histogram: `buckets` cells with upper edges
/// le_i = min * growth^i for i = 1..buckets-1; cell 0 absorbs everything
/// at or below `min` and the last cell everything above the largest edge.
struct HistogramOptions {
  /// Upper edge of the first bucket. The default covers 10 microseconds
  /// when recording seconds.
  double min = 1e-5;
  /// Geometric bucket growth; the relative quantile error bound is
  /// growth - 1. Must be > 1.
  double growth = 1.2;
  /// Fixed cell count (= the histogram's entire memory footprint). The
  /// defaults span 1e-5 * 1.2^99, about 10 microseconds to 13 minutes in
  /// seconds units.
  size_t buckets = 100;
};

/// Point-in-time copy of a histogram, with quantile interpolation.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  /// Exact observed extremes (not bucket-quantized).
  double min = 0.0;
  double max = 0.0;
  /// Inclusive upper edge of each bucket; the last entry is +infinity.
  std::vector<double> upper_edges;
  std::vector<uint64_t> counts;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile q in [0, 1] by rank walk + linear interpolation within the
  /// containing bucket, clamped to the exact [min, max]. 0 when empty.
  double Quantile(double q) const;
};

/// Log-bucketed bounded-memory histogram. Record() is lock-free: one
/// branchless-ish upper-edge binary search, one atomic bucket increment,
/// one atomic sum add and two CAS-loop extreme updates.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  HistogramSnapshot Snapshot() const;
  const HistogramOptions& options() const { return options_; }

 private:
  const HistogramOptions options_;
  std::vector<double> upper_edges_;  // size buckets - 1; last bucket open
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
};

/// Named metrics, get-or-create by name (Prometheus-client style): the
/// first Counter()/Gauge()/Histogram() call for a name creates and owns
/// the metric, later calls return the same object, so components sharing a
/// registry share series. Returned pointers are stable for the registry's
/// lifetime. Names must follow Prometheus conventions
/// ([a-zA-Z_:][a-zA-Z0-9_:]*); an optional {label="value"} suffix is kept
/// verbatim as part of the series key and emitted as-is in the exposition.
///
/// Components take a MetricsRegistry* option: nullptr means "create a
/// private registry" (test isolation), while a process wires every
/// component to Default() to get one unified export.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (what updb_cli wires everywhere).
  static MetricsRegistry& Default();

  obs::Counter* Counter(const std::string& name, const std::string& help);
  obs::Gauge* Gauge(const std::string& name, const std::string& help);
  obs::Histogram* Histogram(const std::string& name, const std::string& help,
                            HistogramOptions options = {});

  /// One JSON object keyed by series name. Counters/gauges map to their
  /// value; histograms to {count, sum, mean, min, max, p50, p95, p99}.
  std::string ToJson() const;

  /// Prometheus text exposition (# HELP / # TYPE, histogram
  /// _bucket{le=...}/_sum/_count series), sorted by series name.
  std::string ToPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<obs::Counter> counter;
    std::unique_ptr<obs::Gauge> gauge;
    std::unique_ptr<obs::Histogram> histogram;
  };

  /// Sorted (name, entry) view for the exporters; holds mu_.
  std::vector<std::pair<std::string, const Entry*>> SortedEntries() const;

  mutable std::mutex mu_;
  /// unique_ptr values keep metric addresses stable across rehashes.
  std::vector<std::pair<std::string, std::unique_ptr<Entry>>> entries_;
};

}  // namespace obs
}  // namespace updb

#endif  // UPDB_OBS_METRICS_H_
